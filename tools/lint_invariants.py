#!/usr/bin/env python3
"""Project-invariant linter — layer 3 of the static-analysis gate.

Checks rules that no general-purpose tool knows about, because they
encode THIS project's architecture (see BUILDING.md "Static analysis"):

  getenv-confinement   std::getenv is read exactly once, in
                       platform/context.cpp (Context::from_env).  Env
                       reads anywhere else would bypass the descriptor
                       API and make kernel behavior depend on ambient
                       state the benchmarks can't record.
  thread-confinement   std::thread / std::jthread / std::async only in
                       platform/parallel.* — every data-parallel loop
                       goes through the chunk-stealing pool so `width`
                       stays the single thread-count knob.  (The serving
                       layer's lifecycle-managed workers are an audited
                       allow-list exemption, not a second runtime.)
  no-ambient-rng       No rand()/srand()/std::random_device in src/:
                       all randomness flows from seeds carried in
                       options structs (GraphOptions::sample_seed,
                       FaultInjector), so every run is replayable.
  punning-audit        Every reinterpret_cast in src/ must be on the
                       allow-list with a written justification.  The
                       kernels use memcpy-based helpers (simd.cpp
                       loadu256/store256) instead of pointer punning.
  hot-path-alloc       No naked new[] / malloc / calloc / realloc in
                       the kernel hot paths (src/core/, platform/simd.cpp):
                       kernel scratch lives in caller-owned Workspaces
                       and std::vector, so the wave path stays
                       allocation-free and exception-safe.

Findings print as `path:line: rule-id: message` and exit non-zero.
Suppressions live in tools/lint_allowlist.txt, one per line:

    rule-id  relative/path  justification text...

A suppression without a justification, or one that no longer matches
anything, is itself an error — the list cannot silently rot.

`--self-test` seeds one synthetic violation per rule in a temp tree and
asserts the engine catches each (and stays quiet on a clean tree), so a
regex regression cannot turn the gate green forever.
"""

from __future__ import annotations

import argparse
import dataclasses
import pathlib
import re
import sys
import tempfile

SOURCE_GLOBS = ("src/**/*.cpp", "src/**/*.hpp")
ALLOWLIST = "tools/lint_allowlist.txt"


@dataclasses.dataclass(frozen=True)
class Rule:
    rule_id: str
    pattern: re.Pattern
    message: str
    # Paths (relative, '/'-separated) where the construct is legitimate
    # BY DESIGN — the rule's own home, not case-by-case exemptions
    # (those go in the allow-list with justifications).
    home: tuple = ()
    # If non-empty, only these path prefixes are scanned.
    scope: tuple = ()


RULES = (
    Rule(
        rule_id="getenv-confinement",
        pattern=re.compile(r"\bgetenv\s*\("),
        message="environment reads belong in platform/context.cpp "
                "(Context::from_env), nowhere else",
        home=("src/platform/context.cpp",),
    ),
    Rule(
        rule_id="thread-confinement",
        pattern=re.compile(r"\bstd::(thread|jthread|async)\b"),
        message="thread spawning belongs in platform/parallel.* "
                "(the chunk-stealing pool)",
        home=("src/platform/parallel.cpp", "src/platform/parallel.hpp"),
    ),
    Rule(
        rule_id="no-ambient-rng",
        pattern=re.compile(r"\bstd::random_device\b|\b(?:std::)?s?rand\s*\("),
        message="ambient randomness breaks replayability; thread a seed "
                "through an options struct instead",
    ),
    Rule(
        rule_id="punning-audit",
        pattern=re.compile(r"\breinterpret_cast\b"),
        message="pointer punning must be allow-listed with a written "
                "justification (prefer memcpy / std::bit_cast / "
                "std::as_bytes)",
    ),
    Rule(
        rule_id="hot-path-alloc",
        pattern=re.compile(
            r"\bnew\s+[A-Za-z_][\w:<>, ]*\[|\b(?:m|c|re)alloc\s*\("),
        message="kernel hot paths allocate through caller-owned "
                "Workspaces / std::vector, never naked new[]/malloc",
        scope=("src/core/", "src/platform/simd.cpp"),
    ),
)

_RULE_IDS = {r.rule_id for r in RULES}


def scrub(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure, so rules only match code."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2
                                                   else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


@dataclasses.dataclass(frozen=True)
class Suppression:
    rule_id: str
    path: str
    justification: str


def load_allowlist(root: pathlib.Path) -> list:
    path = root / ALLOWLIST
    entries = []
    if not path.exists():
        return entries
    for lineno, raw in enumerate(path.read_text().splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 2)
        if len(parts) < 3:
            print(f"{ALLOWLIST}:{lineno}: allowlist: entry needs "
                  f"'rule-id path justification...'", file=sys.stderr)
            sys.exit(2)
        rule_id, rel, justification = parts
        if rule_id not in _RULE_IDS:
            print(f"{ALLOWLIST}:{lineno}: allowlist: unknown rule "
                  f"'{rule_id}'", file=sys.stderr)
            sys.exit(2)
        entries.append(Suppression(rule_id, rel, justification))
    return entries


def lint(root: pathlib.Path) -> int:
    suppressions = load_allowlist(root)
    used = set()
    findings = []

    files = sorted({p for g in SOURCE_GLOBS for p in root.glob(g)})
    for path in files:
        rel = path.relative_to(root).as_posix()
        code = scrub(path.read_text(errors="replace"))
        for rule in RULES:
            if rule.scope and not any(rel.startswith(s)
                                      for s in rule.scope):
                continue
            if rel in rule.home:
                continue
            for lineno, line in enumerate(code.splitlines(), 1):
                if not rule.pattern.search(line):
                    continue
                sup = next((s for s in suppressions
                            if s.rule_id == rule.rule_id
                            and s.path == rel), None)
                if sup is not None:
                    used.add((sup.rule_id, sup.path))
                    continue
                findings.append(
                    f"{rel}:{lineno}: {rule.rule_id}: {rule.message}")

    for sup in suppressions:
        if (sup.rule_id, sup.path) not in used:
            findings.append(
                f"{ALLOWLIST}: stale suppression "
                f"'{sup.rule_id} {sup.path}' matches nothing — remove it")

    for f in findings:
        print(f)
    if findings:
        print(f"\n{len(findings)} invariant violation(s).", file=sys.stderr)
    return 1 if findings else 0


# --- self-test -------------------------------------------------------------

_VIOLATIONS = {
    "getenv-confinement": 'const char* e = std::getenv("X");\n',
    "thread-confinement": "std::thread t([]{});\n",
    "no-ambient-rng": "int x = rand();\n",
    "punning-audit": "auto* p = reinterpret_cast<int*>(q);\n",
    "hot-path-alloc": "int* p = new int[16];\n",
}


def self_test() -> int:
    failures = []
    with tempfile.TemporaryDirectory() as td:
        root = pathlib.Path(td)
        core = root / "src" / "core"
        core.mkdir(parents=True)
        (root / "tools").mkdir()

        # 1. Clean tree: no findings.
        probe = core / "probe.cpp"
        probe.write_text("int ok() { return 1; }\n")
        if lint(root) != 0:
            failures.append("clean tree reported findings")

        # 2. Each seeded violation fires its rule (planted in src/core/
        #    so even the scoped hot-path rule sees it).
        for rule_id, code in _VIOLATIONS.items():
            probe.write_text(code)
            if lint(root) == 0:
                failures.append(f"rule {rule_id} missed its violation")

        # 3. Comments and strings never fire.
        probe.write_text('// std::thread in a comment\n'
                         'const char* s = "rand( getenv( ";\n')
        if lint(root) != 0:
            failures.append("matched inside a comment or string literal")

        # 4. A justified allow-list entry suppresses; a stale one fails.
        probe.write_text(_VIOLATIONS["punning-audit"])
        allow = root / ALLOWLIST
        allow.write_text(
            "punning-audit src/core/probe.cpp test justification\n")
        if lint(root) != 0:
            failures.append("allow-list entry did not suppress")
        probe.write_text("int ok() { return 1; }\n")
        if lint(root) == 0:
            failures.append("stale allow-list entry went unflagged")

    for f in failures:
        print(f"self-test FAILED: {f}", file=sys.stderr)
    if not failures:
        print("self-test: all rules fire and suppress as specified")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parent.parent,
                    help="repository root (default: the checkout "
                         "containing this script)")
    ap.add_argument("--self-test", action="store_true",
                    help="prove every rule fires on a seeded violation")
    args = ap.parse_args()
    if args.self_test:
        return self_test()
    return lint(args.root.resolve())


if __name__ == "__main__":
    sys.exit(main())
