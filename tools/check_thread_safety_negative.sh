#!/usr/bin/env bash
# Negative-compile probe for the Thread Safety Analysis gate.
#
# -Werror=thread-safety only proves something if a VIOLATION actually
# fails to compile — otherwise a typo'd macro (GUARDED_BY expanding to
# nothing under clang, say) would leave the whole layer silently inert.
# This script asserts both directions under clang:
#
#   1. a well-locked access to a GUARDED_BY member compiles, and
#   2. the same access WITHOUT the lock is rejected.
#
# Exit 0 = both hold; exit 1 = the gate is broken; exit 77 = no clang
# on this machine (ctest SKIP_RETURN_CODE — GCC cannot run the
# analysis, the clang CI lanes will).
set -u

root="${1:?usage: check_thread_safety_negative.sh <repo-root>}"

clangxx=""
for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16 \
         clang++-15 clang++-14; do
  if command -v "$c" >/dev/null 2>&1; then clangxx="$c"; break; fi
done
if [ -z "$clangxx" ]; then
  echo "SKIP: no clang++ found; thread-safety analysis needs clang" >&2
  exit 77
fi

flags="-std=c++20 -fsyntax-only -I$root/src -Wthread-safety -Werror=thread-safety"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

good="$tmpdir/good.cpp"
bad="$tmpdir/bad.cpp"

cat >"$good" <<'EOF'
#include "platform/thread_annotations.hpp"
struct Counter {
  int bump() {
    const bitgb::MutexLock lk(mu_);
    return ++n_;
  }
  bitgb::Mutex mu_;
  int n_ GUARDED_BY(mu_) = 0;
};
EOF

# Identical but for the missing MutexLock: must NOT compile.
cat >"$bad" <<'EOF'
#include "platform/thread_annotations.hpp"
struct Counter {
  int bump() { return ++n_; }
  bitgb::Mutex mu_;
  int n_ GUARDED_BY(mu_) = 0;
};
EOF

if ! $clangxx $flags "$good" 2>"$tmpdir/good.err"; then
  echo "FAIL: the well-locked probe does not compile — the gate is" \
       "rejecting correct code:" >&2
  cat "$tmpdir/good.err" >&2
  exit 1
fi

if $clangxx $flags "$bad" 2>"$tmpdir/bad.err"; then
  echo "FAIL: an unguarded GUARDED_BY access compiled cleanly — the" \
       "thread-safety gate has no teeth (macro expansion broken?)" >&2
  exit 1
fi
if ! grep -q "thread-safety" "$tmpdir/bad.err"; then
  echo "FAIL: the unguarded probe failed for a reason other than the" \
       "analysis:" >&2
  cat "$tmpdir/bad.err" >&2
  exit 1
fi

echo "OK: guarded access compiles; unguarded access is rejected ($clangxx)"
