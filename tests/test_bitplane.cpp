// Bit-plane decomposition tests — the §VII future-work extension.
#include "core/bitplane.hpp"
#include "core/pack.hpp"
#include "baseline/csrmv.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace bitgb {
namespace {

Csr random_weighted(vidx_t n, eidx_t nnz, int max_weight, std::uint64_t seed) {
  // Distinct coordinates only: COO dedup would otherwise *sum*
  // duplicate weights past the decomposition's clamp range.
  Coo a{n, n, {}, {}, {}};
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> w(1, max_weight);
  std::uniform_int_distribution<vidx_t> pick(0, n - 1);
  std::set<std::pair<vidx_t, vidx_t>> seen;
  while (static_cast<eidx_t>(seen.size()) < nnz) {
    const vidx_t r = pick(rng);
    const vidx_t c = pick(rng);
    if (seen.emplace(r, c).second) {
      a.push(r, c, static_cast<value_t>(w(rng)));
    }
  }
  return coo_to_csr(a);
}

TEST(BitPlane, RequiredBitWidth) {
  Coo a{3, 3, {}, {}, {}};
  a.push(0, 1, 1.0f);
  EXPECT_EQ(1, required_bit_width(coo_to_csr(a)));
  a.push(1, 2, 7.0f);
  EXPECT_EQ(3, required_bit_width(coo_to_csr(a)));
  a.push(2, 0, 8.0f);
  EXPECT_EQ(4, required_bit_width(coo_to_csr(a)));
}

TEST(BitPlane, DecompositionReconstructsWeights) {
  const Csr a = random_weighted(60, 400, 15, 1);
  const auto planes = decompose_bitplanes<8>(a, 4);
  EXPECT_EQ(4u, planes.planes.size());
  // Reconstruct: weight(r,c) = sum over planes of 2^p * bit.
  const auto dense = csr_to_dense(a);
  std::vector<value_t> recon(dense.size(), 0.0f);
  for (int p = 0; p < 4; ++p) {
    const Csr plane = unpack_to_csr(planes.planes[static_cast<std::size_t>(p)]);
    for (vidx_t r = 0; r < plane.nrows; ++r) {
      for (const vidx_t c : plane.row_cols(r)) {
        recon[static_cast<std::size_t>(r) * 60 + c] +=
            static_cast<value_t>(1 << p);
      }
    }
  }
  for (std::size_t i = 0; i < dense.size(); ++i) {
    EXPECT_FLOAT_EQ(dense[i], recon[i]) << "at " << i;
  }
}

class BitPlaneSpmvTest : public ::testing::TestWithParam<int> {};

TEST_P(BitPlaneSpmvTest, SpmvMatchesWeightedCsrmv) {
  const int dim = GetParam();
  const Csr a = random_weighted(80, 600, 31, 2);
  const auto x = test::random_vector(80, 0.2, 3);
  std::vector<value_t> expected;
  baseline::csrmv(a, x, expected);

  dispatch_tile_dim(dim, [&]<int Dim>() {
    const auto planes = decompose_bitplanes<Dim>(a, required_bit_width(a));
    std::vector<value_t> y;
    bitplane_spmv(planes, x, y);
    test::expect_vectors_near(expected, y, 1e-2);
    return 0;
  });
}

TEST_P(BitPlaneSpmvTest, UnitWeightsNeedOnePlane) {
  const int dim = GetParam();
  const Csr a = coo_to_csr(with_unit_values(gen_random(50, 300, 4)));
  EXPECT_EQ(1, required_bit_width(a));
  dispatch_tile_dim(dim, [&]<int Dim>() {
    const auto planes = decompose_bitplanes<Dim>(a, 1);
    EXPECT_EQ(1u, planes.planes.size());
    EXPECT_EQ(a.nnz(), planes.planes[0].nnz());
    return 0;
  });
}

INSTANTIATE_TEST_SUITE_P(AllDims, BitPlaneSpmvTest,
                         ::testing::ValuesIn({4, 8, 16, 32}),
                         [](const auto& info) {
                           return "dim" + std::to_string(info.param);
                         });

TEST(BitPlane, Width1SpmvMatchesCsrmvAcrossFixturePatterns) {
  // A unit-weighted matrix is exactly its own single bit-plane, so
  // bit-plane SpMV must agree with the float baseline on every fixture
  // pattern category.
  for (const auto& [name, m] : test::small_matrices_cached()) {
    if (m.nnz() == 0) continue;
    SCOPED_TRACE(name);
    const Csr unit = coo_to_csr(with_unit_values(csr_to_coo(m)));
    EXPECT_EQ(1, required_bit_width(unit));
    const auto x = test::random_vector(unit.ncols, 0.3, 6);
    std::vector<value_t> expected;
    baseline::csrmv(unit, x, expected);
    const auto planes = decompose_bitplanes<8>(unit, 1);
    std::vector<value_t> y;
    bitplane_spmv(planes, x, y);
    test::expect_vectors_near(expected, y, 1e-3);
  }
}

TEST(BitPlane, WeightsClampToRange) {
  Coo a{2, 2, {}, {}, {}};
  a.push(0, 1, 100.0f);  // above 2^3-1=7
  const auto planes = decompose_bitplanes<4>(coo_to_csr(a), 3);
  std::vector<value_t> y;
  bitplane_spmv(planes, {0.0f, 1.0f}, y);
  EXPECT_FLOAT_EQ(7.0f, y[0]);  // clamped to max representable
}

TEST(BitPlane, ZeroWeightDropsEdge) {
  Coo a{2, 2, {}, {}, {}};
  a.push(0, 1, 0.0f);
  a.push(1, 0, 2.0f);
  const auto planes = decompose_bitplanes<4>(coo_to_csr(a), 2);
  std::vector<value_t> y;
  bitplane_spmv(planes, {1.0f, 1.0f}, y);
  EXPECT_FLOAT_EQ(0.0f, y[0]);
  EXPECT_FLOAT_EQ(2.0f, y[1]);
}

TEST(BitPlane, StorageSmallerThanFloatCsrForSmallWidths) {
  const Csr a = random_weighted(256, 6000, 3, 5);  // 2-bit weights
  const auto planes = decompose_bitplanes<8>(a, 2);
  EXPECT_LT(planes.storage_bytes(), a.storage_bytes());
}

}  // namespace
}  // namespace bitgb
