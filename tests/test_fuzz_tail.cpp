// Fuzz-style tail-bit invariant tests.
//
// Randomized matrices whose size is deliberately NOT a multiple of any
// tile dim are driven through pack -> batched BMM -> unpack, asserting
// after every batched op that the structural invariants hold: B2SR
// operands keep their out-of-range bits zero (B2srT::validate), every
// FrontierBatch keeps its lane-tail bits zero (FrontierBatch::validate),
// and the unpacked pattern round-trips exactly.  The complemented-mask
// kernels are the reason these invariants are load-bearing: ~mask turns
// tail bits ON, and only the kernels' clamping keeps them out of the
// stored result.
#include "core/bit_spgemm.hpp"
#include "core/frontier_batch.hpp"
#include "core/pack.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace bitgb {
namespace {

/// Dense reference of the batched expansion for one lane.
void expect_lane_matches_dense(const Csr& a, const FrontierBatch& f,
                               const FrontierBatch& next, int b) {
  const auto expect = test::ref_bool_mxv(a, f.column(b));
  for (vidx_t v = 0; v < a.nrows; ++v) {
    ASSERT_EQ(expect[static_cast<std::size_t>(v)], next.get(v, b))
        << "lane " << b << " vertex " << v;
  }
}

template <int Dim>
void run_fuzz_round(std::mt19937_64& rng, int round) {
  // A shape that is never a multiple of Dim, so every packed operand
  // has a tail tile in both directions.
  std::uniform_int_distribution<vidx_t> size_dist(Dim + 1, 4 * Dim + 11);
  vidx_t n = size_dist(rng);
  if (n % Dim == 0) ++n;
  std::uniform_int_distribution<eidx_t> nnz_dist(
      0, static_cast<eidx_t>(n) * 4);
  std::uniform_int_distribution<int> batch_dist(1, FrontierBatch::kMaxBatch);
  const auto seed = rng();

  const Csr csr = coo_to_csr(gen_random(n, nnz_dist(rng), seed));
  ASSERT_TRUE(csr.validate()) << "round " << round;

  // pack: the B2SR operand itself must carry no out-of-range bits.
  const B2srT<Dim> a = pack_from_csr<Dim>(csr);
  ASSERT_TRUE(a.validate()) << "round " << round << " n=" << n;

  // A random frontier batch of random width.
  const int batch = batch_dist(rng);
  FrontierBatch f(n, batch);
  std::bernoulli_distribution member(0.3);
  for (vidx_t v = 0; v < n; ++v) {
    for (int b = 0; b < batch; ++b) {
      if (member(rng)) f.set(v, b);
    }
  }
  ASSERT_TRUE(f.validate());

  // BMM, unmasked: result lanes must stay inside the batch width.
  FrontierBatch next;
  bmm_frontier(a, f, next);
  ASSERT_TRUE(next.validate()) << "round " << round << " n=" << n
                               << " batch=" << batch;
  expect_lane_matches_dense(csr, f, next, 0);
  expect_lane_matches_dense(csr, f, next, batch - 1);

  // BMM with a complemented mask: ~mask sets every tail bit; the store
  // clamp must keep them out of the result.
  FrontierBatch mask(n, batch);
  for (vidx_t v = 0; v < n; ++v) {
    for (int b = 0; b < batch; ++b) {
      if (member(rng)) mask.set(v, b);
    }
  }
  FrontierBatch masked;
  bmm_frontier_masked(a, f, mask, /*complement=*/true, masked);
  ASSERT_TRUE(masked.validate()) << "round " << round;
  for (vidx_t v = 0; v < n; ++v) {
    ASSERT_EQ(next.rows[static_cast<std::size_t>(v)] &
                  ~mask.rows[static_cast<std::size_t>(v)] & f.lane_mask(),
              masked.rows[static_cast<std::size_t>(v)])
        << "round " << round << " vertex " << v;
  }

  // Boolean spgemm over the same operand: the matrix product must also
  // respect the B2SR invariants on a tail-tiled shape.
  const B2srT<Dim> sq = bit_spgemm(a, a);
  ASSERT_TRUE(sq.validate()) << "round " << round;

  // unpack: the pattern round-trips exactly.
  const Csr back = unpack_to_csr<Dim>(a);
  ASSERT_TRUE(back.validate()) << "round " << round;
  ASSERT_EQ(test::dense_pattern(csr), test::dense_pattern(back))
      << "round " << round;
}

template <int Dim>
void fuzz_dim() {
  std::mt19937_64 rng(0xb17ba7c4u + Dim);
  for (int round = 0; round < 25; ++round) {
    run_fuzz_round<Dim>(rng, round);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(FuzzTailBits, Dim4) { fuzz_dim<4>(); }
TEST(FuzzTailBits, Dim8) { fuzz_dim<8>(); }
TEST(FuzzTailBits, Dim16) { fuzz_dim<16>(); }
TEST(FuzzTailBits, Dim32) { fuzz_dim<32>(); }

// The batched traversal loop preserves the invariants end to end on a
// tail-heavy shape: 67 vertices at every dim, 64-wide batch.
TEST(FuzzTailBits, MsBfsShapedLoopKeepsInvariants) {
  std::mt19937_64 rng(1234);
  const vidx_t n = 67;
  const Csr csr = coo_to_csr(gen_random(n, 300, 99));
  const auto run = [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(csr);
    ASSERT_TRUE(a.validate());
    std::vector<vidx_t> sources(64);
    std::uniform_int_distribution<vidx_t> pick(0, n - 1);
    for (auto& s : sources) s = pick(rng);
    sources[63] = n - 1;  // tail-tile source
    FrontierBatch frontier = FrontierBatch::from_sources(n, sources);
    FrontierBatch visited = frontier;
    FrontierBatch next;
    for (int level = 0; level < 8 && frontier.any(); ++level) {
      bmm_frontier_masked(a, frontier, visited, /*complement=*/true, next);
      ASSERT_TRUE(next.validate()) << "dim " << Dim << " level " << level;
      for (vidx_t v = 0; v < n; ++v) {
        visited.rows[static_cast<std::size_t>(v)] |=
            next.rows[static_cast<std::size_t>(v)];
      }
      ASSERT_TRUE(visited.validate()) << "dim " << Dim << " level " << level;
      std::swap(frontier, next);
    }
  };
  run.operator()<4>();
  run.operator()<8>();
  run.operator()<16>();
  run.operator()<32>();
}

}  // namespace
}  // namespace bitgb
