// Baseline (cuSPARSE-substitute) tests: float CSR SpMV and SpGEMM
// against dense references.
#include "baseline/csrgemm.hpp"
#include "baseline/csrmv.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

std::vector<value_t> dense_mv(const Csr& a, const std::vector<value_t>& x) {
  const auto d = csr_to_dense(a);
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows), 0.0f);
  for (vidx_t r = 0; r < a.nrows; ++r) {
    for (vidx_t c = 0; c < a.ncols; ++c) {
      y[static_cast<std::size_t>(r)] +=
          d[static_cast<std::size_t>(r) * a.ncols + c] *
          x[static_cast<std::size_t>(c)];
    }
  }
  return y;
}

TEST(Csrmv, MatchesDenseOnBinaryMatrices) {
  for (const auto& [name, m] : test::small_matrices_cached()) {
    SCOPED_TRACE(name);
    const auto x = test::random_vector(m.ncols, 0.3, 200);
    std::vector<value_t> y;
    baseline::csrmv(m, x, y);
    test::expect_vectors_near(dense_mv(m, x), y, 1e-3);
  }
}

TEST(Csrmv, UsesWeightsWhenPresent) {
  Coo a{3, 3, {}, {}, {}};
  a.push(0, 1, 2.0f);
  a.push(1, 2, -3.0f);
  const Csr c = coo_to_csr(a);
  std::vector<value_t> y;
  baseline::csrmv(c, {1.0f, 10.0f, 100.0f}, y);
  EXPECT_FLOAT_EQ(20.0f, y[0]);
  EXPECT_FLOAT_EQ(-300.0f, y[1]);
  EXPECT_FLOAT_EQ(0.0f, y[2]);
}

TEST(Csrmv, AxpbyFullSignature) {
  const Csr m = coo_to_csr(gen_random(40, 200, 201));
  const auto x = test::random_vector(m.ncols, 0.2, 202);
  std::vector<value_t> base;
  baseline::csrmv(m, x, base);

  std::vector<value_t> y(static_cast<std::size_t>(m.nrows), 2.0f);
  baseline::csrmv_axpby(m, 3.0f, x, 0.5f, y);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(3.0f * base[i] + 0.5f * 2.0f, y[i], 1e-3);
  }
}

TEST(Csrgemm, MatchesDenseProduct) {
  const Csr a = coo_to_csr(gen_random(30, 200, 203));
  const Csr b = coo_to_csr(gen_random(30, 200, 204));
  const Csr c = baseline::csrgemm(a, b);
  EXPECT_TRUE(c.validate());

  const auto da = csr_to_dense(a);
  const auto db = csr_to_dense(b);
  const auto dc = csr_to_dense(c);
  for (vidx_t i = 0; i < 30; ++i) {
    for (vidx_t j = 0; j < 30; ++j) {
      value_t acc = 0.0f;
      for (vidx_t k = 0; k < 30; ++k) {
        acc += da[static_cast<std::size_t>(i) * 30 + k] *
               db[static_cast<std::size_t>(k) * 30 + j];
      }
      EXPECT_NEAR(acc, dc[static_cast<std::size_t>(i) * 30 + j], 1e-3)
          << i << "," << j;
    }
  }
}

TEST(Csrgemm, RectangularShapes) {
  Coo ac{10, 20, {}, {}, {}};
  Coo bc{20, 15, {}, {}, {}};
  std::mt19937_64 rng(205);
  for (int i = 0; i < 60; ++i) {
    ac.push(static_cast<vidx_t>(rng() % 10), static_cast<vidx_t>(rng() % 20));
    bc.push(static_cast<vidx_t>(rng() % 20), static_cast<vidx_t>(rng() % 15));
  }
  const Csr c = baseline::csrgemm(coo_to_csr(ac), coo_to_csr(bc));
  EXPECT_EQ(10, c.nrows);
  EXPECT_EQ(15, c.ncols);
  EXPECT_TRUE(c.validate());
}

TEST(Csrgemm, EmptyOperands) {
  const Csr empty = coo_to_csr(Coo{16, 16, {}, {}, {}});
  const Csr some = coo_to_csr(gen_random(16, 50, 206));
  EXPECT_EQ(0, baseline::csrgemm(empty, some).nnz());
  EXPECT_EQ(0, baseline::csrgemm(some, empty).nnz());
}

TEST(CsrgemmMaskedSum, MatchesReferenceTripleProduct) {
  const Csr a = coo_to_csr(gen_random(25, 150, 207));
  const Csr b = coo_to_csr(gen_random(25, 150, 208));
  const Csr mask = coo_to_csr(gen_random(25, 100, 209));
  EXPECT_DOUBLE_EQ(
      static_cast<double>(test::ref_abt_masked_sum(a, b, mask)),
      baseline::csrgemm_masked_sum(a, b, mask));
}

TEST(CsrgemmMaskedSum, LowerTriangleTriangleIdentity) {
  // sum((L*L^T) .* L) counts triangles once each: K4 has 4 triangles.
  Coo k4{4, 4, {}, {}, {}};
  for (vidx_t i = 0; i < 4; ++i) {
    for (vidx_t j = 0; j < 4; ++j) {
      if (i != j) k4.push(i, j);
    }
  }
  const Csr l = lower_triangle(coo_to_csr(k4));
  EXPECT_DOUBLE_EQ(4.0, baseline::csrgemm_masked_sum(l, l, l));
}

}  // namespace
}  // namespace bitgb
