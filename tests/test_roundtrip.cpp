// Property tests: pack -> unpack is the identity on the sparsity
// pattern, for every tile size and every pattern category in
// small_matrices().  Unlike test_pack (which compares CSR arrays
// exactly), these tests compare dense pattern expansions, so they hold
// independently of how the round-tripped CSR happens to lay out its
// arrays — and they anchor the fixture itself against the oracle table.
#include "core/pack.hpp"
#include "core/tile_traits.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

using test::dense_pattern;

// The fixture matrices must match the oracle table before any
// Range-parameterized suite below (or in the other test binaries)
// trusts its indices.
TEST(SmallMatrices, MatchOracleTable) {
  test::expect_small_matrices_match_oracle();
}

TEST(SmallMatrices, IndexAccessorRejectsOutOfRange) {
  EXPECT_THROW(test::small_matrix(-1), std::out_of_range);
  EXPECT_THROW(test::small_matrix(test::kSmallMatrixCount),
               std::out_of_range);
  EXPECT_THROW(test::small_matrix_by_name("no_such_matrix"),
               std::out_of_range);
  // In-range access agrees with the oracle's naming.
  for (int mi = 0; mi < test::kSmallMatrixCount; ++mi) {
    EXPECT_EQ(test::kSmallMatrixOracle[static_cast<std::size_t>(mi)].name,
              test::small_matrix(mi).first);
  }
}

class RoundTrip : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RoundTrip, PackUnpackPreservesSparsityPattern) {
  const auto [dim, mi] = GetParam();
  const auto& [name, m] = test::small_matrix(mi);
  const Csr back = unpack_any(pack_any(m, dim));
  ASSERT_EQ(m.nrows, back.nrows) << name;
  ASSERT_EQ(m.ncols, back.ncols) << name;
  EXPECT_TRUE(back.validate()) << name;
  EXPECT_TRUE(back.is_binary()) << name;
  EXPECT_EQ(dense_pattern(m), dense_pattern(back)) << name << " dim=" << dim;
}

TEST_P(RoundTrip, PackIsIdempotentOnUnpackedForm) {
  // pack(unpack(pack(m))) sees a binary CSR instead of the original
  // (possibly valued) one; the packed image must be identical.
  const auto [dim, mi] = GetParam();
  const auto& [name, m] = test::small_matrix(mi);
  const B2srAny b1 = pack_any(m, dim);
  const B2srAny b2 = pack_any(unpack_any(b1), dim);
  EXPECT_EQ(b1.nnz(), b2.nnz()) << name;
  EXPECT_EQ(b1.nnz_tiles(), b2.nnz_tiles()) << name;
  EXPECT_EQ(dense_pattern(unpack_any(b2)), dense_pattern(m))
      << name << " dim=" << dim;
}

TEST_P(RoundTrip, DoubleTransposePreservesPattern) {
  const auto [dim, mi] = GetParam();
  const auto& [name, m] = test::small_matrix(mi);
  dispatch_tile_dim(dim, [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(m);
    const B2srT<Dim> att = transpose(transpose(a));
    EXPECT_EQ(dense_pattern(m), dense_pattern(unpack_to_csr(att)))
        << name << " dim=" << Dim;
    return 0;
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllDimsAllPatterns, RoundTrip,
    ::testing::Combine(::testing::ValuesIn(kTileDims),
                       ::testing::Range(0, test::kSmallMatrixCount)),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_" +
             test::kSmallMatrixOracle[static_cast<std::size_t>(
                                          std::get<1>(info.param))]
                 .name;
    });

class NibbleRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(NibbleRoundTrip, NibblePathPreservesSparsityPattern) {
  const auto& [name, m] = test::small_matrix(GetParam());
  const Csr back = unpack_to_csr(from_nibble4(pack_nibble4(m)));
  EXPECT_EQ(dense_pattern(m), dense_pattern(back)) << name;
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, NibbleRoundTrip,
                         ::testing::Range(0, test::kSmallMatrixCount),
                         [](const auto& info) {
                           return std::string(
                               test::kSmallMatrixOracle
                                   [static_cast<std::size_t>(info.param)]
                                       .name);
                         });

}  // namespace
}  // namespace bitgb
