// MIS and graph-coloring tests — the max-times-semiring algorithms of
// paper Table IV, on both backends.
#include "algorithms/coloring.hpp"
#include "algorithms/mis.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace bitgb {
namespace {

class MisColoringTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  gb::Graph make_graph() {
    const auto [dim, mi] = GetParam();
    gb::GraphOptions opts;
    opts.tile_dim = dim;
    return gb::Graph::from_csr(test::small_matrix(mi).second, opts);
  }
};

TEST_P(MisColoringTest, MisIsIndependentAndMaximalOnBothBackends) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    const auto res = algo::maximal_independent_set(test::ctx(backend).with_seed(7), g);
    EXPECT_TRUE(algo::is_valid_mis(g.adjacency(), res.in_set))
        << gb::backend_name(backend);
    EXPECT_GT(res.rounds, 0);
  }
}

TEST_P(MisColoringTest, ColoringIsProperOnBothBackends) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    const auto res = algo::greedy_coloring(test::ctx(backend).with_seed(7), g);
    EXPECT_TRUE(algo::is_valid_coloring(g.adjacency(), res.color))
        << gb::backend_name(backend);
    // num_colors consistent with the labels used.
    const auto max_c =
        *std::max_element(res.color.begin(), res.color.end());
    EXPECT_EQ(res.num_colors >= 1, true);
    EXPECT_LT(max_c, res.num_colors);
  }
}

TEST_P(MisColoringTest, BackendsAgreeGivenSameSeed) {
  // Both backends run the same deterministic priority sequence, so the
  // resulting sets/colorings must be identical.
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto mis_ref =
      algo::maximal_independent_set(test::ctx(gb::Backend::kReference).with_seed(3), g);
  const auto mis_bit = algo::maximal_independent_set(test::ctx(gb::Backend::kBit).with_seed(3), g);
  EXPECT_EQ(mis_ref.in_set, mis_bit.in_set);

  const auto col_ref = algo::greedy_coloring(test::ctx(gb::Backend::kReference).with_seed(3), g);
  const auto col_bit = algo::greedy_coloring(test::ctx(gb::Backend::kBit).with_seed(3), g);
  EXPECT_EQ(col_ref.color, col_bit.color);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndMatrices, MisColoringTest,
    ::testing::Combine(::testing::ValuesIn({4, 8, 16, 32}),
                       ::testing::ValuesIn({2, 5, 7, 9, 10})),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_" +
             test::kSmallMatrixOracle[static_cast<std::size_t>(
                                          std::get<1>(info.param))]
                 .name;
    });

TEST(Mis, IsolatedVerticesAllJoinTheSet) {
  const gb::Graph g = gb::Graph::from_coo(Coo{6, 6, {}, {}, {}});
  const auto res = algo::maximal_independent_set(test::ctx(gb::Backend::kBit), g);
  for (const auto b : res.in_set) EXPECT_EQ(1, b);
}

TEST(Mis, CompleteGraphPicksExactlyOne) {
  Coo k5{5, 5, {}, {}, {}};
  for (vidx_t i = 0; i < 5; ++i) {
    for (vidx_t j = 0; j < 5; ++j) {
      if (i != j) k5.push(i, j);
    }
  }
  const gb::Graph g = gb::Graph::from_coo(k5);
  const auto res = algo::maximal_independent_set(test::ctx(gb::Backend::kBit), g);
  int count = 0;
  for (const auto b : res.in_set) count += b;
  EXPECT_EQ(1, count);
}

TEST(Coloring, BipartiteNeedsTwoColors) {
  // Even cycle: chromatic number 2; the randomized greedy may use a
  // couple more, but must stay proper and small.
  Coo c8{8, 8, {}, {}, {}};
  for (vidx_t i = 0; i < 8; ++i) c8.push(i, (i + 1) % 8);
  const gb::Graph g = gb::Graph::from_coo(c8);
  const auto res = algo::greedy_coloring(test::ctx(gb::Backend::kBit), g);
  EXPECT_TRUE(algo::is_valid_coloring(g.adjacency(), res.color));
  EXPECT_GE(res.num_colors, 2);
  EXPECT_LE(res.num_colors, 4);
}

TEST(Coloring, CompleteGraphNeedsAllColors) {
  Coo k4{4, 4, {}, {}, {}};
  for (vidx_t i = 0; i < 4; ++i) {
    for (vidx_t j = 0; j < 4; ++j) {
      if (i != j) k4.push(i, j);
    }
  }
  const gb::Graph g = gb::Graph::from_coo(k4);
  const auto res = algo::greedy_coloring(test::ctx(gb::Backend::kBit), g);
  EXPECT_TRUE(algo::is_valid_coloring(g.adjacency(), res.color));
  EXPECT_EQ(4, res.num_colors);
}

TEST(Validators, RejectBrokenInputs) {
  Coo e{3, 3, {}, {}, {}};
  e.push(0, 1);
  e.push(1, 0);
  const Csr a = coo_to_csr(e);
  // Both endpoints of the edge in the set: not independent.
  EXPECT_FALSE(algo::is_valid_mis(a, {1, 1, 1}));
  // Vertex 2 isolated and outside: not maximal.
  EXPECT_FALSE(algo::is_valid_mis(a, {1, 0, 0}));
  EXPECT_TRUE(algo::is_valid_mis(a, {1, 0, 1}));
  // Same color across the edge: invalid.
  EXPECT_FALSE(algo::is_valid_coloring(a, {0, 0, 0}));
  // Uncolored vertex: invalid.
  EXPECT_FALSE(algo::is_valid_coloring(a, {0, 1, -1}));
  EXPECT_TRUE(algo::is_valid_coloring(a, {0, 1, 0}));
}

}  // namespace
}  // namespace bitgb
