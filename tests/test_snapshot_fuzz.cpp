// Snapshot corruption fuzz: every load of a mutated snapshot must
// either throw a typed SnapshotError or produce a graph bit-identical
// to the original — never UB, never a partial graph, never a wrong
// answer.  The mutation corpus is exhaustive over the container's
// framing (the Snapshot index exposes every section boundary):
//
//   * truncation at and around every header/payload boundary,
//   * a single bit flip inside every section header and every payload,
//   * wrong magic, future version (with a RECOMPUTED header CRC, so the
//     version check itself is what must fire), unsupported tile dim,
//   * a CRC-clean semantic lie: colind tampered WITH its payload and
//     section-header CRCs recomputed, which only the structural layer
//     (validate / fingerprint) can catch.
//
// Runs green under ASan/UBSan — that is the point: corrupted input
// exercises the exact paths where unchecked trust becomes UB.
#include "graphblas/graph.hpp"
#include "platform/crc32c.hpp"
#include "sparse/snapshot.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

namespace bitgb {
namespace {

namespace fs = std::filesystem;
using snap::SnapshotError;

class SnapshotFuzz : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "bitgb-snap-fuzz";
    fs::remove_all(dir_);
    fs::create_directories(dir_);

    graph_ = std::make_unique<gb::Graph>(
        gb::Graph::from_csr(test::small_matrix(3).second));
    good_path_ = (dir_ / "good.bgbs").string();
    graph_->save(good_path_, gb::kBitFormats);

    std::ifstream f(good_path_, std::ios::binary);
    bytes_.assign(std::istreambuf_iterator<char>(f),
                  std::istreambuf_iterator<char>());
    ASSERT_GT(bytes_.size(), snap::kHeaderBytes);
    snapshot_ = std::make_unique<snap::Snapshot>(
        snap::Snapshot::read_file(good_path_));
    ASSERT_FALSE(snapshot_->sections().empty());
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Write `bytes` as a candidate snapshot and classify the load: OK
  /// (and then REQUIRED bit-identical) or a typed SnapshotError.  Any
  /// other exception — or a structurally different graph — fails.
  void expect_rejected_or_identical(const std::vector<char>& bytes,
                                    const std::string& what) {
    const std::string p = (dir_ / "mutant.bgbs").string();
    std::ofstream(p, std::ios::binary)
        .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    try {
      const gb::Graph loaded = gb::Graph::load(p);
      // Survived every defense: then it must BE the original.
      EXPECT_EQ(loaded.adjacency().rowptr, graph_->adjacency().rowptr) << what;
      EXPECT_EQ(loaded.adjacency().colind, graph_->adjacency().colind) << what;
      EXPECT_EQ(loaded.fingerprint(), graph_->fingerprint()) << what;
      EXPECT_EQ(loaded.packed().nnz(), graph_->packed().nnz()) << what;
    } catch (const SnapshotError&) {
      // The expected outcome for nearly every mutation.
    } catch (const std::exception& e) {
      FAIL() << what << ": untyped exception escaped: " << e.what();
    }
  }

  /// Expect load to throw specifically `kind`.
  void expect_kind(const std::vector<char>& bytes, SnapshotError::Kind kind,
                   const std::string& what) {
    const std::string p = (dir_ / "mutant.bgbs").string();
    std::ofstream(p, std::ios::binary)
        .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    try {
      (void)gb::Graph::load(p);
      FAIL() << what << ": load did not throw";
    } catch (const SnapshotError& e) {
      EXPECT_EQ(static_cast<int>(e.kind()), static_cast<int>(kind)) << what;
    }
  }

  /// Recompute the fixed header's trailing CRC after a field edit, so
  /// the next-deeper defense is the one under test.
  static void fix_header_crc(std::vector<char>& b) {
    const std::uint32_t c = crc32c(b.data(), 60);
    std::memcpy(b.data() + 60, &c, 4);
  }

  fs::path dir_;
  std::unique_ptr<gb::Graph> graph_;
  std::unique_ptr<snap::Snapshot> snapshot_;
  std::string good_path_;
  std::vector<char> bytes_;
};

TEST_F(SnapshotFuzz, BaselineLoadsBitIdentical) {
  expect_rejected_or_identical(bytes_, "untouched bytes");
}

TEST_F(SnapshotFuzz, TruncationAtEveryBoundary) {
  std::vector<std::size_t> cuts = {0, 1, 7, 8, 32, 63, snap::kHeaderBytes};
  for (const auto& s : snapshot_->sections()) {
    for (const std::size_t at :
         {s.header_offset, s.header_offset + 1,
          s.header_offset + snap::kSectionHeaderBytes - 1, s.payload_offset,
          s.payload_offset + s.payload_bytes / 2,
          s.payload_offset + s.payload_bytes - 1}) {
      cuts.push_back(at);
    }
  }
  cuts.push_back(bytes_.size() - 1);
  for (const std::size_t cut : cuts) {
    if (cut >= bytes_.size()) continue;
    expect_rejected_or_identical(
        std::vector<char>(bytes_.begin(),
                          bytes_.begin() + static_cast<std::ptrdiff_t>(cut)),
        "truncate to " + std::to_string(cut));
  }
  // Growing the file is framing corruption too (trailing bytes).
  auto grown = bytes_;
  grown.push_back('\0');
  expect_kind(grown, SnapshotError::Kind::kMalformed, "one trailing byte");
}

TEST_F(SnapshotFuzz, OneBitFlipInEverySection) {
  // Deterministic spread: several bit positions per region — the fixed
  // header, every section header, every payload.
  auto flip_at = [&](std::size_t byte, int bit, const std::string& what) {
    auto mutant = bytes_;
    mutant[byte] = static_cast<char>(mutant[byte] ^ (1u << bit));
    expect_rejected_or_identical(mutant, what);
  };
  for (std::size_t byte = 0; byte < snap::kHeaderBytes; byte += 5) {
    flip_at(byte, static_cast<int>(byte % 8),
            "header bit flip @" + std::to_string(byte));
  }
  for (const auto& s : snapshot_->sections()) {
    for (std::size_t i = 0; i < snap::kSectionHeaderBytes; i += 3) {
      flip_at(s.header_offset + i, static_cast<int>(i % 8),
              "section " + std::to_string(static_cast<int>(s.id)) +
                  " header bit flip +" + std::to_string(i));
    }
    const std::size_t step = std::max<std::size_t>(1, s.payload_bytes / 7);
    for (std::size_t i = 0; i < s.payload_bytes; i += step) {
      flip_at(s.payload_offset + i, static_cast<int>((i + 3) % 8),
              "section " + std::to_string(static_cast<int>(s.id)) +
                  " payload bit flip +" + std::to_string(i));
    }
  }
}

TEST_F(SnapshotFuzz, WrongMagicIsBadMagic) {
  auto mutant = bytes_;
  mutant[0] = 'X';
  expect_kind(mutant, SnapshotError::Kind::kBadMagic, "wrong magic");
  // An unrelated file format entirely.
  std::vector<char> text = {'h', 'e', 'l', 'l', 'o', '\n'};
  expect_rejected_or_identical(text, "text file");  // kTruncated (< 64 B)
  std::vector<char> big_text(200, 'a');
  expect_kind(big_text, SnapshotError::Kind::kBadMagic, "200-byte text file");
}

TEST_F(SnapshotFuzz, FutureVersionIsVersionSkewNotParseAttempt) {
  auto mutant = bytes_;
  const std::uint32_t v2 = snap::kFormatVersion + 1;
  std::memcpy(mutant.data() + 8, &v2, 4);
  fix_header_crc(mutant);  // CRC is valid: the version gate must fire
  expect_kind(mutant, SnapshotError::Kind::kVersionSkew, "version+1");
}

TEST_F(SnapshotFuzz, UnsupportedTileDimIsMalformed) {
  auto mutant = bytes_;
  const std::uint32_t dim = 7;
  std::memcpy(mutant.data() + 12, &dim, 4);
  fix_header_crc(mutant);
  expect_kind(mutant, SnapshotError::Kind::kMalformed, "tile_dim 7");
}

TEST_F(SnapshotFuzz, CrcCleanSemanticTamperIsCaughtStructurally) {
  // Rewrite one colind entry to an out-of-range vertex, then recompute
  // BOTH the payload CRC and the section header CRC: the container
  // layer now believes the file, and only Csr::validate / the content
  // fingerprint stand between the lie and a serving graph.
  const auto& sections = snapshot_->sections();
  const snap::Snapshot::SectionInfo* colind = nullptr;
  for (const auto& s : sections) {
    if (s.id == snap::SectionId::kCsrColind) colind = &s;
  }
  ASSERT_NE(colind, nullptr);
  ASSERT_GE(colind->payload_bytes, sizeof(vidx_t));

  auto mutant = bytes_;
  const vidx_t evil = graph_->num_vertices() + 100;
  std::memcpy(mutant.data() + colind->payload_offset, &evil, sizeof(vidx_t));
  const std::uint32_t payload_crc =
      crc32c(mutant.data() + colind->payload_offset, colind->payload_bytes);
  std::memcpy(mutant.data() + colind->header_offset + 16, &payload_crc, 4);
  const std::uint32_t header_crc =
      crc32c(mutant.data() + colind->header_offset, 20);
  std::memcpy(mutant.data() + colind->header_offset + 20, &header_crc, 4);
  expect_kind(mutant, SnapshotError::Kind::kInvalidStructure,
              "CRC-clean out-of-range colind");

  // Same tamper but in-range (vertex 0): the CSR may stay valid, so the
  // fingerprint is the defense that must fire.
  auto mutant2 = bytes_;
  const vidx_t zero = 0;
  std::memcpy(mutant2.data() + colind->payload_offset, &zero, sizeof(vidx_t));
  const std::uint32_t p2 =
      crc32c(mutant2.data() + colind->payload_offset, colind->payload_bytes);
  std::memcpy(mutant2.data() + colind->header_offset + 16, &p2, 4);
  const std::uint32_t h2 =
      crc32c(mutant2.data() + colind->header_offset, 20);
  std::memcpy(mutant2.data() + colind->header_offset + 20, &h2, 4);
  expect_rejected_or_identical(mutant2, "CRC-clean in-range colind tamper");
}

TEST_F(SnapshotFuzz, SectionCountLiesAreFramingErrors) {
  // section_count = 0 with sections still on disk: trailing bytes.
  auto fewer = bytes_;
  const std::uint32_t zero = 0;
  std::memcpy(fewer.data() + 44, &zero, 4);
  fix_header_crc(fewer);
  expect_kind(fewer, SnapshotError::Kind::kMalformed, "section_count 0");

  // section_count + 1: the reader walks off the end.
  auto more = bytes_;
  std::uint32_t count;
  std::memcpy(&count, more.data() + 44, 4);
  ++count;
  std::memcpy(more.data() + 44, &count, 4);
  fix_header_crc(more);
  expect_kind(more, SnapshotError::Kind::kTruncated, "section_count + 1");
}

TEST_F(SnapshotFuzz, EveryOracleMatrixSurvivesItsOwnFuzzPass) {
  // A lighter sweep (truncations + a few flips) over the whole corpus,
  // so empty/single/dense/non-multiple-of-dim shapes all get the
  // treatment.
  for (const auto& [name, a] : test::small_matrices()) {
    const gb::Graph g = gb::Graph::from_csr(a);
    const std::string p = (dir_ / (name + ".bgbs")).string();
    g.save(p, gb::kBitFormats);
    std::ifstream f(p, std::ios::binary);
    const std::vector<char> orig((std::istreambuf_iterator<char>(f)),
                                 std::istreambuf_iterator<char>());

    for (const std::size_t cut :
         {orig.size() / 3, orig.size() / 2, orig.size() - 1}) {
      const std::vector<char> t(orig.begin(),
                                orig.begin() +
                                    static_cast<std::ptrdiff_t>(cut));
      const std::string mp = (dir_ / "m.bgbs").string();
      std::ofstream(mp, std::ios::binary)
          .write(t.data(), static_cast<std::streamsize>(t.size()));
      EXPECT_THROW((void)gb::Graph::load(mp), SnapshotError)
          << name << " cut " << cut;
    }
    for (std::size_t byte = 16; byte < orig.size();
         byte += std::max<std::size_t>(1, orig.size() / 11)) {
      auto m = orig;
      m[byte] = static_cast<char>(m[byte] ^ 0x10);
      const std::string mp = (dir_ / "m.bgbs").string();
      std::ofstream(mp, std::ios::binary)
          .write(m.data(), static_cast<std::streamsize>(m.size()));
      try {
        const gb::Graph loaded = gb::Graph::load(mp);
        EXPECT_EQ(loaded.adjacency().rowptr, g.adjacency().rowptr)
            << name << " flip @" << byte;
        EXPECT_EQ(loaded.adjacency().colind, g.adjacency().colind)
            << name << " flip @" << byte;
      } catch (const SnapshotError&) {
      }
    }
  }
}

}  // namespace
}  // namespace bitgb
