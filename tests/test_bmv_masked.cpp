// Masked BMV tests — the paper's §V masking design (bitmask AND-ed at
// the output store; complement masks for "unvisited" filtering).
#include "core/bmv.hpp"
#include "core/pack.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

class MaskedBmvTest : public ::testing::TestWithParam<int> {};

TEST_P(MaskedBmvTest, BinBinBinMaskedDropsMaskedRows) {
  const int dim = GetParam();
  const Csr m = coo_to_csr(gen_banded(75, 5, 0.7, 60));
  const auto xb = test::random_vector(m.ncols, 0.4, 61);
  const auto mb = test::random_vector(m.nrows, 0.5, 62);
  std::vector<bool> xbool(static_cast<std::size_t>(m.ncols));
  for (vidx_t i = 0; i < m.ncols; ++i) {
    xbool[static_cast<std::size_t>(i)] = xb[static_cast<std::size_t>(i)] != 0.0f;
  }
  const auto expected_unmasked = test::ref_bool_mxv(m, xbool);

  dispatch_tile_dim(dim, [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(m);
    const auto x = PackedVecT<Dim>::from_bools(xbool);
    const auto mask = PackedVecT<Dim>::from_values(mb);

    for (const bool complement : {false, true}) {
      PackedVecT<Dim> y;
      bmv_bin_bin_bin_masked(a, x, mask, complement, y);
      for (vidx_t r = 0; r < m.nrows; ++r) {
        const bool pass = mask.get(r) != complement;
        const bool want =
            pass && expected_unmasked[static_cast<std::size_t>(r)];
        EXPECT_EQ(want, y.get(r)) << "row " << r << " comp=" << complement;
      }
    }
    return 0;
  });
}

TEST_P(MaskedBmvTest, BinBinFullMaskedKeepsPreviousWhereMasked) {
  const int dim = GetParam();
  const Csr m = coo_to_csr(gen_random(66, 500, 63));
  const auto xb = test::random_vector(m.ncols, 0.4, 64);
  const auto mb = test::random_vector(m.nrows, 0.5, 65);
  std::vector<bool> xbool(static_cast<std::size_t>(m.ncols));
  for (vidx_t i = 0; i < m.ncols; ++i) {
    xbool[static_cast<std::size_t>(i)] = xb[static_cast<std::size_t>(i)] != 0.0f;
  }
  const auto expected = test::ref_count_mxv(m, xbool);

  dispatch_tile_dim(dim, [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(m);
    const auto x = PackedVecT<Dim>::from_bools(xbool);
    const auto mask = PackedVecT<Dim>::from_values(mb);

    const value_t sentinel = -123.0f;
    std::vector<value_t> y(static_cast<std::size_t>(m.nrows), sentinel);
    bmv_bin_bin_full_masked(a, x, mask, /*complement=*/false, y);
    for (vidx_t r = 0; r < m.nrows; ++r) {
      if (mask.get(r)) {
        EXPECT_FLOAT_EQ(expected[static_cast<std::size_t>(r)],
                        y[static_cast<std::size_t>(r)]);
      } else {
        EXPECT_FLOAT_EQ(sentinel, y[static_cast<std::size_t>(r)]);
      }
    }
    return 0;
  });
}

TEST_P(MaskedBmvTest, BinFullFullMaskedMinPlus) {
  const int dim = GetParam();
  const Csr m = coo_to_csr(gen_stripe(80, 3, 0.8, 66));
  const auto xf = test::random_vector(m.ncols, 0.2, 67);
  const auto mb = test::random_vector(m.nrows, 0.5, 68);
  const auto expected = test::ref_semiring_mxv<MinPlusOp>(m, xf);

  dispatch_tile_dim(dim, [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(m);
    const auto mask = PackedVecT<Dim>::from_values(mb);

    const value_t sentinel = -7.0f;
    std::vector<value_t> y(static_cast<std::size_t>(m.nrows), sentinel);
    bmv_bin_full_full_masked<Dim, MinPlusOp>(a, xf, mask,
                                             /*complement=*/true, y);
    for (vidx_t r = 0; r < m.nrows; ++r) {
      if (!mask.get(r)) {  // complement: pass where mask bit clear
        EXPECT_EQ(expected[static_cast<std::size_t>(r)],
                  y[static_cast<std::size_t>(r)]);
      } else {
        EXPECT_FLOAT_EQ(sentinel, y[static_cast<std::size_t>(r)]);
      }
    }
    return 0;
  });
}

TEST_P(MaskedBmvTest, PushEqualsPullOnSymmetricMatrices) {
  // vxm(f, A) push over A == mxv(A^T, f) pull; on a symmetric matrix
  // both kernels take the same operand, so results must be word-equal
  // for every frontier/visited combination.
  const int dim = GetParam();
  const Csr m = symmetrize(coo_to_csr(gen_random(85, 600, 73)));
  const auto fb = test::random_vector(m.nrows, 0.7, 74);
  const auto vb = test::random_vector(m.nrows, 0.5, 75);

  dispatch_tile_dim(dim, [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(m);
    const auto frontier = PackedVecT<Dim>::from_values(fb);
    const auto visited = PackedVecT<Dim>::from_values(vb);

    PackedVecT<Dim> pull;
    bmv_bin_bin_bin_masked(a, frontier, visited, true, pull);
    PackedVecT<Dim> push;
    bmv_bin_bin_bin_push_masked(a, frontier, visited, true, push);
    EXPECT_EQ(pull.words, push.words);
    return 0;
  });
}

TEST_P(MaskedBmvTest, PushOnAsymmetricMatchesReference) {
  // Push vxm on a directed matrix: y_j = OR_{i in frontier} A(i,j),
  // masked.  Check against a scalar reference.
  const int dim = GetParam();
  const Csr m = coo_to_csr(gen_random(77, 500, 76));
  const auto fb = test::random_vector(m.nrows, 0.6, 77);
  const auto vb = test::random_vector(m.ncols, 0.5, 78);

  std::vector<bool> expected(static_cast<std::size_t>(m.ncols), false);
  for (vidx_t i = 0; i < m.nrows; ++i) {
    if (fb[static_cast<std::size_t>(i)] == 0.0f) continue;
    for (const vidx_t j : m.row_cols(i)) {
      if (vb[static_cast<std::size_t>(j)] == 0.0f) {  // unvisited only
        expected[static_cast<std::size_t>(j)] = true;
      }
    }
  }

  dispatch_tile_dim(dim, [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(m);
    const auto frontier = PackedVecT<Dim>::from_values(fb);
    const auto visited = PackedVecT<Dim>::from_values(vb);
    PackedVecT<Dim> y;
    bmv_bin_bin_bin_push_masked(a, frontier, visited, true, y);
    EXPECT_EQ(expected, y.to_bools());
    return 0;
  });
}

TEST_P(MaskedBmvTest, PushWithEmptyFrontierIsEmpty) {
  const int dim = GetParam();
  const Csr m = coo_to_csr(gen_banded(60, 5, 0.8, 79));
  dispatch_tile_dim(dim, [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(m);
    const PackedVecT<Dim> frontier(m.nrows);
    const PackedVecT<Dim> visited(m.ncols);
    PackedVecT<Dim> y;
    bmv_bin_bin_bin_push_masked(a, frontier, visited, true, y);
    EXPECT_FALSE(y.any());
    return 0;
  });
}

TEST_P(MaskedBmvTest, FullMaskEqualsUnmasked) {
  const int dim = GetParam();
  const Csr m = coo_to_csr(gen_hybrid(90, 69));
  const auto xf = test::random_vector(m.ncols, 0.3, 70);

  dispatch_tile_dim(dim, [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(m);
    PackedVecT<Dim> all(m.nrows);
    for (vidx_t i = 0; i < m.nrows; ++i) all.set(i);

    std::vector<value_t> unmasked;
    bmv_bin_full_full<Dim, PlusTimesOp>(a, xf, unmasked);
    std::vector<value_t> masked(static_cast<std::size_t>(m.nrows), 0.0f);
    bmv_bin_full_full_masked<Dim, PlusTimesOp>(a, xf, all, false, masked);
    test::expect_vectors_near(unmasked, masked);
    return 0;
  });
}

TEST_P(MaskedBmvTest, EmptyMaskLeavesOutputUntouched) {
  const int dim = GetParam();
  const Csr m = coo_to_csr(gen_random(40, 300, 71));
  const auto xf = test::random_vector(m.ncols, 0.3, 72);

  dispatch_tile_dim(dim, [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(m);
    const PackedVecT<Dim> none(m.nrows);  // all clear
    std::vector<value_t> y(static_cast<std::size_t>(m.nrows), 5.5f);
    bmv_bin_full_full_masked<Dim, PlusTimesOp>(a, xf, none, false, y);
    for (const value_t v : y) EXPECT_FLOAT_EQ(5.5f, v);
    return 0;
  });
}

TEST_P(MaskedBmvTest, ComplementHalvesPartitionTheUnmaskedResult) {
  // For any mask, the masked result and its complement-masked result
  // partition the unmasked result row set: OR-ing them row-wise must
  // reproduce the unmasked output on every fixture pattern.
  const int dim = GetParam();
  for (const auto& [name, m] : test::small_matrices_cached()) {
    SCOPED_TRACE(name);
    const auto xb = test::random_vector(m.ncols, 0.4, 90);
    const auto mb = test::random_vector(m.nrows, 0.5, 91);
    std::vector<bool> xbool(static_cast<std::size_t>(m.ncols));
    for (vidx_t i = 0; i < m.ncols; ++i) {
      xbool[static_cast<std::size_t>(i)] =
          xb[static_cast<std::size_t>(i)] != 0.0f;
    }
    dispatch_tile_dim(dim, [&]<int Dim>() {
      const B2srT<Dim> a = pack_from_csr<Dim>(m);
      const auto x = PackedVecT<Dim>::from_bools(xbool);
      const auto mask = PackedVecT<Dim>::from_values(mb);
      PackedVecT<Dim> unmasked;
      bmv_bin_bin_bin(a, x, unmasked);
      PackedVecT<Dim> kept;
      bmv_bin_bin_bin_masked(a, x, mask, false, kept);
      PackedVecT<Dim> dropped;
      bmv_bin_bin_bin_masked(a, x, mask, true, dropped);
      for (vidx_t r = 0; r < m.nrows; ++r) {
        EXPECT_EQ(unmasked.get(r), kept.get(r) || dropped.get(r))
            << "row " << r << " dim=" << Dim;
      }
      return 0;
    });
  }
}

INSTANTIATE_TEST_SUITE_P(AllDims, MaskedBmvTest,
                         ::testing::ValuesIn({4, 8, 16, 32}),
                         [](const auto& info) {
                           return "dim" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bitgb
