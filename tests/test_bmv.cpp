// BMV kernel tests — every scheme of paper Table II, every tile size,
// every pattern category, against dense references.
#include "core/bmv.hpp"
#include "core/pack.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

class BmvTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  // Runs `body` with the matrix and a deterministic bool input vector.
  template <typename Body>
  void with_fixture(Body&& body) {
    const auto [dim, mi] = GetParam();
    const auto& [name, m] = test::small_matrix(mi);
    const auto xf = test::random_vector(m.ncols, 0.5, 99);
    std::vector<bool> xb(static_cast<std::size_t>(m.ncols));
    for (vidx_t i = 0; i < m.ncols; ++i) {
      xb[static_cast<std::size_t>(i)] = xf[static_cast<std::size_t>(i)] != 0.0f;
    }
    body(dim, name, m, xf, xb);
  }
};

TEST_P(BmvTest, BinBinBinMatchesBooleanReference) {
  with_fixture([](int dim, const std::string& name, const Csr& m,
                  const std::vector<value_t>&, const std::vector<bool>& xb) {
    const auto expected = test::ref_bool_mxv(m, xb);
    dispatch_tile_dim(dim, [&]<int Dim>() {
      const B2srT<Dim> a = pack_from_csr<Dim>(m);
      const auto x = PackedVecT<Dim>::from_bools(xb);
      PackedVecT<Dim> y;
      bmv_bin_bin_bin(a, x, y);
      EXPECT_EQ(expected, y.to_bools()) << name << " dim=" << Dim;
      return 0;
    });
  });
}

TEST_P(BmvTest, BinBinFullMatchesCountingReference) {
  with_fixture([](int dim, const std::string& name, const Csr& m,
                  const std::vector<value_t>&, const std::vector<bool>& xb) {
    SCOPED_TRACE(name);
    const auto expected = test::ref_count_mxv(m, xb);
    dispatch_tile_dim(dim, [&]<int Dim>() {
      const B2srT<Dim> a = pack_from_csr<Dim>(m);
      const auto x = PackedVecT<Dim>::from_bools(xb);
      std::vector<value_t> y;
      bmv_bin_bin_full(a, x, y);
      test::expect_vectors_near(expected, y);
      return 0;
    });
  });
}

TEST_P(BmvTest, BinFullFullPlusTimes) {
  with_fixture([](int dim, const std::string&, const Csr& m,
                  const std::vector<value_t>& xf, const std::vector<bool>&) {
    const auto expected = test::ref_semiring_mxv<PlusTimesOp>(m, xf);
    dispatch_tile_dim(dim, [&]<int Dim>() {
      const B2srT<Dim> a = pack_from_csr<Dim>(m);
      std::vector<value_t> y;
      bmv_bin_full_full<Dim, PlusTimesOp>(a, xf, y);
      test::expect_vectors_near(expected, y, 1e-3);
      return 0;
    });
  });
}

TEST_P(BmvTest, BinFullFullMinPlus) {
  with_fixture([](int dim, const std::string&, const Csr& m,
                  const std::vector<value_t>& xf, const std::vector<bool>&) {
    const auto expected = test::ref_semiring_mxv<MinPlusOp>(m, xf);
    dispatch_tile_dim(dim, [&]<int Dim>() {
      const B2srT<Dim> a = pack_from_csr<Dim>(m);
      std::vector<value_t> y;
      bmv_bin_full_full<Dim, MinPlusOp>(a, xf, y);
      test::expect_vectors_near(expected, y);
      return 0;
    });
  });
}

TEST_P(BmvTest, BinFullFullMinIdentity) {
  with_fixture([](int dim, const std::string&, const Csr& m,
                  const std::vector<value_t>& xf, const std::vector<bool>&) {
    const auto expected = test::ref_semiring_mxv<MinIdentityOp>(m, xf);
    dispatch_tile_dim(dim, [&]<int Dim>() {
      const B2srT<Dim> a = pack_from_csr<Dim>(m);
      std::vector<value_t> y;
      bmv_bin_full_full<Dim, MinIdentityOp>(a, xf, y);
      test::expect_vectors_near(expected, y);
      return 0;
    });
  });
}

TEST_P(BmvTest, BinFullFullMaxTimes) {
  with_fixture([](int dim, const std::string&, const Csr& m,
                  const std::vector<value_t>& xf, const std::vector<bool>&) {
    const auto expected = test::ref_semiring_mxv<MaxTimesOp>(m, xf);
    dispatch_tile_dim(dim, [&]<int Dim>() {
      const B2srT<Dim> a = pack_from_csr<Dim>(m);
      std::vector<value_t> y;
      bmv_bin_full_full<Dim, MaxTimesOp>(a, xf, y);
      test::expect_vectors_near(expected, y);
      return 0;
    });
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllDimsAllPatterns, BmvTest,
    ::testing::Combine(::testing::ValuesIn({4, 8, 16, 32}),
                       ::testing::Range(0, test::kSmallMatrixCount)),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_" +
             test::kSmallMatrixOracle[static_cast<std::size_t>(
                                          std::get<1>(info.param))]
                 .name;
    });

TEST(Bmv, AllOnesVectorCountsRowDegrees) {
  const Csr m = coo_to_csr(gen_banded(70, 4, 0.8, 55));
  const B2sr16 a = pack_from_csr<16>(m);
  PackedVec16 x(m.ncols);
  for (vidx_t i = 0; i < m.ncols; ++i) x.set(i);
  std::vector<value_t> y;
  bmv_bin_bin_full(a, x, y);
  const auto deg = out_degrees(m);
  for (vidx_t r = 0; r < m.nrows; ++r) {
    EXPECT_FLOAT_EQ(static_cast<value_t>(deg[static_cast<std::size_t>(r)]),
                    y[static_cast<std::size_t>(r)]);
  }
}

TEST(Bmv, ZeroVectorGivesIdentityOutputs) {
  const Csr m = coo_to_csr(gen_random(50, 400, 56));
  const B2sr8 a = pack_from_csr<8>(m);
  // Boolean: empty frontier -> empty result.
  PackedVec8 x(m.ncols);
  PackedVec8 yb;
  bmv_bin_bin_bin(a, x, yb);
  EXPECT_FALSE(yb.any());
  // MinPlus over an all-inf vector: stays inf everywhere.
  std::vector<value_t> xinf(static_cast<std::size_t>(m.ncols),
                            MinPlusOp::identity);
  std::vector<value_t> y;
  bmv_bin_full_full<8, MinPlusOp>(a, xinf, y);
  for (const value_t v : y) EXPECT_EQ(MinPlusOp::identity, v);
}

}  // namespace
}  // namespace bitgb
