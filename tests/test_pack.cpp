// Packing tests: CSR <-> B2SR round trips over every tile size and
// pattern category, format invariants, tile counting, nibble packing.
#include "core/pack.hpp"
#include "core/stats.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

// Parameterized over (tile dim, matrix index into small_matrices()).
class PackRoundTrip
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PackRoundTrip, UnpackOfPackEqualsOriginal) {
  const auto [dim, mi] = GetParam();
  const auto& [name, m] = test::small_matrix(mi);

  const B2srAny b = pack_any(m, dim);
  const Csr back = unpack_any(b);
  EXPECT_EQ(m.rowptr, back.rowptr) << name << " dim=" << dim;
  EXPECT_EQ(m.colind, back.colind) << name << " dim=" << dim;
}

TEST_P(PackRoundTrip, PackedFormatSatisfiesInvariants) {
  const auto [dim, mi] = GetParam();
  const auto& [name, m] = test::small_matrix(mi);

  const B2srAny b = pack_any(m, dim);
  const bool ok = b.visit([](const auto& t) { return t.validate(); });
  EXPECT_TRUE(ok) << name << " dim=" << dim;
  EXPECT_EQ(m.nnz(), b.nnz()) << name << " dim=" << dim;
  EXPECT_EQ(m.nrows, b.nrows());
  EXPECT_EQ(m.ncols, b.ncols());
}

TEST_P(PackRoundTrip, TileCountMatchesPackedTiles) {
  const auto [dim, mi] = GetParam();
  const auto& [name, m] = test::small_matrix(mi);
  EXPECT_EQ(count_nonempty_tiles(m, dim), pack_any(m, dim).nnz_tiles())
      << name << " dim=" << dim;
}

INSTANTIATE_TEST_SUITE_P(
    AllDimsAllPatterns, PackRoundTrip,
    ::testing::Combine(::testing::ValuesIn({4, 8, 16, 32}),
                       ::testing::Range(0, test::kSmallMatrixCount)),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_" +
             test::kSmallMatrixOracle[static_cast<std::size_t>(
                                          std::get<1>(info.param))]
                 .name;
    });

TEST(Pack, EmptyMatrixPacksToNoTiles) {
  const Csr empty = coo_to_csr(Coo{64, 64, {}, {}, {}});
  for (const int dim : kTileDims) {
    const B2srAny b = pack_any(empty, dim);
    EXPECT_EQ(0, b.nnz_tiles());
    EXPECT_EQ(0, b.nnz());
  }
}

TEST(Pack, SingleEntryLandsInRightTile) {
  Coo a{100, 100, {}, {}, {}};
  a.push(37, 85);
  const B2sr8 b = pack_from_csr<8>(coo_to_csr(a));
  ASSERT_EQ(1, b.nnz_tiles());
  // Tile row 37/8 = 4, tile col 85/8 = 10, bit row 5, bit col 5.
  EXPECT_EQ(10, b.tile_colind[0]);
  EXPECT_EQ(0, b.tile_rowptr[4]);
  EXPECT_EQ(1, b.tile_rowptr[5]);
  EXPECT_EQ(std::uint8_t{1u << 5}, b.tile(0)[5]);
}

TEST(Pack, TailTilesCarryNoOutOfRangeBits) {
  // 33x33 dense: with dim 32 the edge tiles are 1 wide/tall.
  const Csr& dense33 = test::small_matrix_by_name("dense_33");
  ASSERT_EQ(33, dense33.nrows);
  const B2sr32 b = pack_from_csr<32>(dense33);
  EXPECT_TRUE(b.validate());  // validate() rejects out-of-range bits
  // 2x2 tile grid; the (1,1) corner tile would only hold the diagonal
  // entry (32,32), which dense_33 omits, so 3 tiles are non-empty.
  EXPECT_EQ(3, b.nnz_tiles());
}

TEST(Pack, StorageBytesMatchesFormula) {
  const Csr m = coo_to_csr(gen_banded(200, 6, 0.5, 3));
  const B2sr16 b = pack_from_csr<16>(m);
  const std::size_t expected =
      b.tile_rowptr.size() * 4 + b.tile_colind.size() * 4 +
      b.bits.size() * 2;  // uint16 words
  EXPECT_EQ(expected, b.storage_bytes());
}

TEST(Pack, ValidateRejectsStoredEmptyTile) {
  Coo a{8, 8, {}, {}, {}};
  a.push(0, 0);
  B2sr4 b = pack_from_csr<4>(coo_to_csr(a));
  ASSERT_TRUE(b.validate());
  // Zero out the only tile's bits: now it stores an empty tile.
  for (auto& w : b.bits) w = 0;
  EXPECT_FALSE(b.validate());
}

TEST(Pack, ValidateRejectsUnsortedTileColumns) {
  const Csr m = coo_to_csr(gen_banded(64, 10, 1.0, 4));
  B2sr8 b = pack_from_csr<8>(m);
  ASSERT_GE(b.tile_rowptr[1], 2);  // first tile-row has >= 2 tiles
  std::swap(b.tile_colind[0], b.tile_colind[1]);
  EXPECT_FALSE(b.validate());
}

TEST(PackDispatch, RejectsUnsupportedDim) {
  const Csr m = coo_to_csr(gen_random(16, 30, 5));
  EXPECT_THROW(pack_any(m, 7), std::invalid_argument);
  EXPECT_THROW(pack_any(m, 64), std::invalid_argument);
}

// --- nibble-packed B2SR-4 (paper §III-B 4-bit packing) ---

TEST(NibblePack, RoundTripThroughNibbleForm) {
  for (const auto& [name, m] : test::small_matrices_cached()) {
    const B2sr4 b = pack_from_csr<4>(m);
    const NibbleB2sr4 n = to_nibble4(b);
    const B2sr4 back = from_nibble4(n);
    EXPECT_EQ(b.bits, back.bits) << name;
    EXPECT_EQ(b.tile_colind, back.tile_colind) << name;
  }
}

TEST(NibblePack, HalvesTileStorage) {
  const Csr m = coo_to_csr(gen_banded(128, 3, 0.8, 6));
  const B2sr4 b = pack_from_csr<4>(m);
  const NibbleB2sr4 n = pack_nibble4(m);
  EXPECT_EQ(b.nnz_tiles(), n.nnz_tiles());
  // bytes: 2 per tile instead of 4.
  EXPECT_EQ(static_cast<std::size_t>(n.nnz_tiles()) * 2, n.bytes.size());
  EXPECT_LT(n.storage_bytes(), b.storage_bytes());
}

TEST(NibblePack, RowAccessorReadsBothNibbles) {
  Coo a{4, 4, {}, {}, {}};
  a.push(0, 1);  // row 0 -> low nibble of byte 0
  a.push(1, 2);  // row 1 -> high nibble of byte 0
  a.push(2, 3);  // row 2 -> low nibble of byte 1
  a.push(3, 0);  // row 3 -> high nibble of byte 1
  const NibbleB2sr4 n = pack_nibble4(coo_to_csr(a));
  ASSERT_EQ(1, n.nnz_tiles());
  EXPECT_EQ(0b0010, n.row(0, 0));
  EXPECT_EQ(0b0100, n.row(0, 1));
  EXPECT_EQ(0b1000, n.row(0, 2));
  EXPECT_EQ(0b0001, n.row(0, 3));
}

}  // namespace
}  // namespace bitgb
