// Warp-sim kernel validation — the reproduction's GPU-substitute proof:
// the paper's Listing 1/2 warp programs, run on the lane-accurate warp
// model, must agree bit-for-bit with the portable OpenMP kernels.
#include "core/bmm.hpp"
#include "core/bmm_sim.hpp"
#include "core/bmv.hpp"
#include "core/bmv_sim.hpp"
#include "core/pack.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

TEST(SimKernels, Listing1BmvBinBinFullMatchesPortable) {
  for (const auto& [name, m] : test::small_matrices_cached()) {
    SCOPED_TRACE(name);
    const B2sr32 a = pack_from_csr<32>(m);
    const auto xf = test::random_vector(m.ncols, 0.5, 100);
    const auto x = PackedVec32::from_values(xf);

    std::vector<value_t> portable;
    bmv_bin_bin_full(a, x, portable);
    std::vector<value_t> simulated;
    sim::bmv_bin_bin_full_sim(a, x, simulated);
    test::expect_vectors_near(portable, simulated, 0.0);
  }
}

TEST(SimKernels, BooleanWarpProgramMatchesPortable) {
  for (const auto& [name, m] : test::small_matrices_cached()) {
    const B2sr32 a = pack_from_csr<32>(m);
    const auto xf = test::random_vector(m.ncols, 0.5, 101);
    const auto x = PackedVec32::from_values(xf);

    PackedVec32 portable;
    bmv_bin_bin_bin(a, x, portable);
    PackedVec32 simulated;
    sim::bmv_bin_bin_bin_sim(a, x, simulated);
    EXPECT_EQ(portable.words, simulated.words) << name;
  }
}

TEST(SimKernels, Listing2BmmSumMatchesPortable) {
  for (const auto& [name, m] : test::small_matrices_cached()) {
    const B2sr32 a = pack_from_csr<32>(m);
    EXPECT_EQ(bmm_bin_bin_sum(a, a), sim::bmm_bin_bin_sum_sim(a, a)) << name;
  }
}

TEST(SimKernels, Listing2AgreesWithDenseReference) {
  const Csr m = coo_to_csr(gen_random(70, 600, 102));
  const B2sr32 a = pack_from_csr<32>(m);
  EXPECT_EQ(test::ref_product_sum(m, m), sim::bmm_bin_bin_sum_sim(a, a));
}

TEST(SimKernels, BallotPackingMatchesPaperBrevRelation) {
  // pack_vector_ballot returns both the paper's __brev(__ballot(...))
  // words and the library-normalized words; they must be bit reversals
  // of each other, and the normalized form must equal from_values().
  const auto f = test::random_vector(100, 0.5, 103);
  const auto packed = sim::pack_vector_ballot(f);
  const auto direct = PackedVec32::from_values(f);
  EXPECT_EQ(direct.words, packed.normalized.words);
  ASSERT_EQ(packed.raw_brev.size(), packed.normalized.words.size());
  for (std::size_t i = 0; i < packed.raw_brev.size(); ++i) {
    EXPECT_EQ(packed.raw_brev[i], brev(packed.normalized.words[i]));
  }
}

TEST(SimKernels, BallotPackingTailBitsAreZero) {
  // 70 elements -> 3 words, last word has 6 valid bits.
  const std::vector<value_t> f(70, 1.0f);
  const auto packed = sim::pack_vector_ballot(f);
  ASSERT_EQ(3u, packed.normalized.words.size());
  EXPECT_EQ(0xFFFFFFFFu, packed.normalized.words[0]);
  EXPECT_EQ(0xFFFFFFFFu, packed.normalized.words[1]);
  EXPECT_EQ(0x3Fu, packed.normalized.words[2]);
}

}  // namespace
}  // namespace bitgb
