// Graph facade and GraphBLAS-layer operation tests.
#include "graphblas/graph.hpp"
#include "graphblas/ops.hpp"
#include "graphblas/semiring.hpp"
#include "core/pack.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

TEST(Graph, FromCooSymmetrizesAndStripsLoops) {
  Coo a{5, 5, {}, {}, {}};
  a.push(0, 1);
  a.push(2, 2);  // self loop
  a.push(3, 4);
  const gb::Graph g = gb::Graph::from_coo(a);
  EXPECT_TRUE(is_symmetric(g.adjacency()));
  for (vidx_t r = 0; r < g.num_vertices(); ++r) {
    for (const vidx_t c : g.adjacency().row_cols(r)) EXPECT_NE(r, c);
  }
  EXPECT_EQ(4, g.num_edges());  // 2 undirected edges
}

TEST(Graph, DirectedOptionKeepsAsymmetry) {
  Coo a{4, 4, {}, {}, {}};
  a.push(0, 1);
  gb::GraphOptions opts;
  opts.symmetrize = false;
  const gb::Graph g = gb::Graph::from_coo(a, opts);
  EXPECT_EQ(1, g.num_edges());
  EXPECT_FALSE(is_symmetric(g.adjacency()));
}

TEST(Graph, ExplicitTileDimIsHonored) {
  gb::GraphOptions opts;
  opts.tile_dim = 16;
  const gb::Graph g =
      gb::Graph::from_coo(gen_random(64, 300, 1), opts);
  EXPECT_EQ(16, g.tile_dim());
  EXPECT_EQ(16, g.packed().tile_dim());
}

TEST(Graph, AutoTileDimPicksSupportedSize) {
  const gb::Graph g = gb::Graph::from_coo(gen_banded(256, 8, 0.8, 2));
  const int d = g.tile_dim();
  EXPECT_TRUE(d == 4 || d == 8 || d == 16 || d == 32);
}

TEST(Graph, PackedMatchesAdjacency) {
  const gb::Graph g = gb::Graph::from_coo(gen_hybrid(128, 3));
  const Csr back = unpack_any(g.packed());
  EXPECT_EQ(g.adjacency().rowptr, back.rowptr);
  EXPECT_EQ(g.adjacency().colind, back.colind);
}

TEST(Graph, PackedTransposeMatchesAdjacencyTranspose) {
  gb::GraphOptions opts;
  opts.symmetrize = false;  // make transpose non-trivial
  const gb::Graph g = gb::Graph::from_coo(gen_random(90, 700, 4), opts);
  const Csr back = unpack_any(g.packed_t());
  EXPECT_EQ(g.adjacency_t().rowptr, back.rowptr);
  EXPECT_EQ(g.adjacency_t().colind, back.colind);
}

TEST(Graph, DegreesMatchRowLengths) {
  const gb::Graph g = gb::Graph::from_coo(gen_road(9, 9, 0.0, 5));
  const auto& deg = g.degrees();
  for (vidx_t r = 0; r < g.num_vertices(); ++r) {
    EXPECT_EQ(static_cast<vidx_t>(g.adjacency().row_cols(r).size()),
              deg[static_cast<std::size_t>(r)]);
  }
}

TEST(Graph, FixturePatternsRoundTripThroughEveryTileDim) {
  // The facade must keep adjacency and packed form in sync for every
  // pattern category at every supported tile size.
  for (const auto& [name, m] : test::small_matrices_cached()) {
    SCOPED_TRACE(name);
    for (const int dim : kTileDims) {
      gb::GraphOptions opts;
      opts.tile_dim = dim;
      const gb::Graph g = gb::Graph::from_csr(m, opts);
      EXPECT_EQ(dim, g.tile_dim());
      EXPECT_EQ(g.adjacency().nnz(), g.num_edges());
      const Csr back = unpack_any(g.packed());
      EXPECT_EQ(g.adjacency().rowptr, back.rowptr) << "dim " << dim;
      EXPECT_EQ(g.adjacency().colind, back.colind) << "dim " << dim;
    }
  }
}

TEST(Semiring, NamesAndSchemes) {
  using gb::Semiring;
  EXPECT_STREQ("boolean", gb::semiring_name(Semiring::kBoolean));
  EXPECT_STREQ("min-plus", gb::semiring_name(Semiring::kMinPlus));
  EXPECT_STREQ("bmv_bin_bin_bin", gb::semiring_scheme(Semiring::kBoolean));
  EXPECT_STREQ("bmv_bin_full_full", gb::semiring_scheme(Semiring::kMinPlus));
}

TEST(RefOps, PushAndPullAgree) {
  const Csr a = symmetrize(coo_to_csr(gen_random(80, 500, 6)));
  const Csr at = transpose(a);
  std::vector<std::uint8_t> visited(80, 0);
  std::vector<vidx_t> frontier = {0, 5, 17};
  std::vector<std::uint8_t> frontier_dense(80, 0);
  for (const vidx_t u : frontier) frontier_dense[u] = 1;
  visited[0] = visited[5] = visited[17] = 1;

  const Context ctx;
  const auto pushed = gb::ref_vxm_bool_push(ctx, a, frontier, visited);
  std::vector<std::uint8_t> pulled;
  gb::ref_vxm_bool_pull(ctx, at, frontier_dense, visited, pulled);
  std::vector<vidx_t> pulled_list;
  for (vidx_t v = 0; v < 80; ++v) {
    if (pulled[static_cast<std::size_t>(v)]) pulled_list.push_back(v);
  }
  EXPECT_EQ(pushed, pulled_list);
}

TEST(RefOps, WeightedMxvWithUnitValuesEqualsBinaryMxv) {
  const Csr a = coo_to_csr(gen_banded(60, 4, 0.7, 12));
  Csr unit = a;
  unit.val.assign(static_cast<std::size_t>(a.nnz()), 1.0f);
  const auto x = test::random_vector(60, 0.3, 13);

  const Context ctx;
  std::vector<value_t> y_bin;
  std::vector<value_t> y_wgt;
  gb::ref_mxv<MinPlusOp>(ctx, a, x, y_bin);
  gb::ref_mxv_weighted<MinPlusOp>(ctx, unit, x, y_wgt);
  test::expect_vectors_near(y_bin, y_wgt);

  gb::ref_mxv<PlusTimesOp>(ctx, a, x, y_bin);
  gb::ref_mxv_weighted<PlusTimesOp>(ctx, unit, x, y_wgt);
  test::expect_vectors_near(y_bin, y_wgt, 1e-4);
}

TEST(RefOps, WeightedMxvUsesStoredWeights) {
  Coo a{2, 2, {}, {}, {}};
  a.push(0, 1, 5.0f);  // min-plus: dist + 5
  const Csr c = coo_to_csr(a);
  std::vector<value_t> y;
  gb::ref_mxv_weighted<MinPlusOp>(Context{}, c, {0.0f, 2.0f}, y);
  EXPECT_FLOAT_EQ(7.0f, y[0]);  // 2 + 5
  EXPECT_EQ(MinPlusOp::identity, y[1]);
}

TEST(Graph, UnitAdjacencyCarriesOnes) {
  const gb::Graph g = gb::Graph::from_coo(gen_random(30, 120, 14));
  const Csr& u = g.unit_adjacency();
  EXPECT_EQ(g.adjacency().colind, u.colind);
  ASSERT_EQ(static_cast<std::size_t>(u.nnz()), u.val.size());
  for (const value_t v : u.val) EXPECT_FLOAT_EQ(1.0f, v);
  const Csr& ut = g.unit_adjacency_t();
  EXPECT_EQ(g.adjacency_t().colind, ut.colind);
}

TEST(RefOps, MaskedMxvEarlyExitsOnMask) {
  const Csr a = coo_to_csr(gen_banded(50, 4, 0.8, 7));
  const auto x = test::random_vector(50, 0.2, 8);
  std::vector<std::uint8_t> mask(50, 0);
  for (vidx_t i = 0; i < 50; i += 2) mask[static_cast<std::size_t>(i)] = 1;

  std::vector<value_t> y(50, -1.0f);
  gb::ref_mxv_masked<PlusTimesOp>(Context{}, a, x, mask, false, y);
  const auto full = test::ref_semiring_mxv<PlusTimesOp>(a, x);
  for (vidx_t i = 0; i < 50; ++i) {
    if (mask[static_cast<std::size_t>(i)]) {
      EXPECT_NEAR(full[static_cast<std::size_t>(i)],
                  y[static_cast<std::size_t>(i)], 1e-4);
    } else {
      EXPECT_FLOAT_EQ(-1.0f, y[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(BitOps, VxmBoolMaskedMatchesRefPush) {
  const Csr a = symmetrize(coo_to_csr(gen_random(96, 600, 9)));
  const Csr at = transpose(a);
  const B2sr8 at_packed = pack_from_csr<8>(at);

  std::vector<std::uint8_t> visited(96, 0);
  std::vector<vidx_t> frontier = {3, 40};
  visited[3] = visited[40] = 1;
  const auto expected =
      gb::ref_vxm_bool_push(Context{}, a, frontier, visited);

  PackedVec8 f(96);
  PackedVec8 vis(96);
  f.set(3);
  f.set(40);
  vis.set(3);
  vis.set(40);
  PackedVec8 next;
  gb::bit_vxm_bool_masked<8>(Context{}, at_packed, f, vis, next);

  std::vector<vidx_t> got;
  for (vidx_t v = 0; v < 96; ++v) {
    if (next.get(v)) got.push_back(v);
  }
  EXPECT_EQ(expected, got);
}

TEST(KernelTimer, OpsAccumulateIntoContextSink) {
  KernelTimeSink sink;
  const Context ctx = Context{}.with_timer(&sink);
  const Csr a = coo_to_csr(gen_banded(300, 8, 0.8, 10));
  const auto x = test::random_vector(300, 0.2, 11);
  std::vector<value_t> y;
  gb::ref_mxv<PlusTimesOp>(ctx, a, x, y);
  EXPECT_GT(sink.ms(), 0.0);
  sink.reset();
  EXPECT_EQ(0.0, sink.ms());
  // A null-sink Context accumulates nowhere and costs nothing.
  gb::ref_mxv<PlusTimesOp>(Context{}, a, x, y);
  EXPECT_EQ(0.0, sink.ms());
}

}  // namespace
}  // namespace bitgb
