// B2SR transpose tests — the format's "simpler transpose" merit
// (paper §III-A): upper level CSR->CSC plus per-tile bit transpose.
#include "core/pack.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

TEST(TransposeTile, SingleBitMovesToMirroredPosition) {
  TileTraits<8>::word_t in[8] = {};
  in[2] = set_bit(TileTraits<8>::word_t{0}, 5);  // (r=2, c=5)
  TileTraits<8>::word_t out[8] = {};
  transpose_tile<8>(in, out);
  EXPECT_EQ(1u, get_bit(out[5], 2));  // (r=5, c=2)
  int bits = 0;
  for (const auto w : out) bits += popcount(w);
  EXPECT_EQ(1, bits);
}

TEST(TransposeTile, DoubleTransposeIsIdentityAllDims) {
  std::mt19937_64 rng(3);
  const auto check = [&]<int Dim>() {
    using W = typename TileTraits<Dim>::word_t;
    for (int trial = 0; trial < 50; ++trial) {
      W in[Dim];
      for (int r = 0; r < Dim; ++r) {
        in[r] = static_cast<W>(rng()) & low_mask<W>(Dim);
      }
      W once[Dim];
      W twice[Dim];
      transpose_tile<Dim>(in, once);
      transpose_tile<Dim>(once, twice);
      for (int r = 0; r < Dim; ++r) EXPECT_EQ(in[r], twice[r]);
    }
  };
  check.template operator()<4>();
  check.template operator()<8>();
  check.template operator()<16>();
  check.template operator()<32>();
}

class B2srTransposeTest : public ::testing::TestWithParam<int> {};

TEST_P(B2srTransposeTest, EqualsPackOfCsrTranspose) {
  const int dim = GetParam();
  for (const auto& [name, m] : test::small_matrices_cached()) {
    const B2srAny direct = pack_any(transpose(m), dim);
    const B2srAny via_b2sr = transpose_any(pack_any(m, dim));
    // Compare through unpacking (canonical form).
    const Csr a = unpack_any(direct);
    const Csr b = unpack_any(via_b2sr);
    EXPECT_EQ(a.rowptr, b.rowptr) << name << " dim=" << dim;
    EXPECT_EQ(a.colind, b.colind) << name << " dim=" << dim;
  }
}

TEST_P(B2srTransposeTest, TransposeValidatesAndPreservesNnz) {
  const int dim = GetParam();
  const Csr m = coo_to_csr(gen_random(77, 800, 31));
  const B2srAny t = transpose_any(pack_any(m, dim));
  EXPECT_TRUE(t.visit([](const auto& x) { return x.validate(); }));
  EXPECT_EQ(m.nnz(), t.nnz());
  EXPECT_EQ(m.ncols, t.nrows());
  EXPECT_EQ(m.nrows, t.ncols());
}

TEST_P(B2srTransposeTest, DoubleTransposeRoundTrips) {
  const int dim = GetParam();
  const Csr m = coo_to_csr(gen_banded(90, 7, 0.6, 32));
  const Csr back = unpack_any(transpose_any(transpose_any(pack_any(m, dim))));
  EXPECT_EQ(m.rowptr, back.rowptr);
  EXPECT_EQ(m.colind, back.colind);
}

INSTANTIATE_TEST_SUITE_P(AllDims, B2srTransposeTest,
                         ::testing::ValuesIn({4, 8, 16, 32}),
                         [](const auto& info) {
                           return "dim" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bitgb
