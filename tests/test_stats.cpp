// Storage-statistics tests — the quantities behind Table I and
// Figures 3/5.
#include "core/pack.hpp"
#include "core/stats.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

TEST(Stats, PerTileSavingMatchesPaperTable1) {
  EXPECT_DOUBLE_EQ(16.0, per_tile_saving(4));   // 64B float -> 4B
  EXPECT_DOUBLE_EQ(32.0, per_tile_saving(8));   // 256B -> 8B
  EXPECT_DOUBLE_EQ(32.0, per_tile_saving(16));  // 1KB -> 32B
  EXPECT_DOUBLE_EQ(32.0, per_tile_saving(32));  // 4KB -> 128B
}

TEST(Stats, CompressionRatioDefinition) {
  EXPECT_DOUBLE_EQ(50.0, compression_ratio(50, 100));
  EXPECT_DOUBLE_EQ(200.0, compression_ratio(200, 100));  // expansion
  EXPECT_DOUBLE_EQ(0.0, compression_ratio(10, 0));       // degenerate
}

TEST(Stats, DenseBandCompressesWell) {
  // A dense band packs tiles full of nonzeros: B2SR should be far
  // smaller than float CSR.
  const Csr m = coo_to_csr(gen_banded(512, 16, 1.0, 1));
  const auto fps = all_footprints(m);
  for (const auto& fp : fps) {
    EXPECT_LT(fp.compression_pct, 100.0) << "dim " << fp.dim;
  }
}

TEST(Stats, UltraSparseRandomExpandsAtLargeTiles) {
  // 1 nonzero per ~universe: every nonzero drags in a whole tile, so
  // large tiles expand storage (the paper's §III-C caveat).
  const Csr m = coo_to_csr(gen_random(2048, 2048, 2));  // ~1 nnz per row
  const auto fps = all_footprints(m);
  EXPECT_GT(fps[3].compression_pct, 100.0);  // 32x32 expands
}

TEST(Stats, NonemptyTileRatioIsMonotoneInDim) {
  // Figure 3a's trend: larger tiles -> higher non-empty tile ratio
  // (fewer total tiles shrink the denominator faster than the count).
  const Csr m = coo_to_csr(gen_random(512, 4000, 3));
  double prev = 0.0;
  for (const int dim : kTileDims) {
    const double r = nonempty_tile_ratio_pct(m, dim);
    EXPECT_GE(r, prev) << "dim " << dim;
    prev = r;
  }
}

TEST(Stats, OccupancyFallsAsDimGrows) {
  // Figure 3b's trend: occupancy inside non-empty tiles decreases with
  // tile dimension for scattered patterns.
  const Csr m = coo_to_csr(gen_random(512, 4000, 4));
  double prev = 100.0;
  for (const int dim : kTileDims) {
    const double occ = nonzero_occupancy_pct(m, dim);
    EXPECT_LE(occ, prev + 1e-9) << "dim " << dim;
    prev = occ;
  }
}

TEST(Stats, OccupancyOfFullDenseTileIs100) {
  // An exactly tile-aligned dense matrix fills its tiles completely.
  Coo a{8, 8, {}, {}, {}};
  for (vidx_t r = 0; r < 8; ++r) {
    for (vidx_t c = 0; c < 8; ++c) a.push(r, c);
  }
  const Csr m = coo_to_csr(a);
  EXPECT_DOUBLE_EQ(100.0, nonzero_occupancy_pct(m, 8));
  EXPECT_DOUBLE_EQ(100.0, nonempty_tile_ratio_pct(m, 8));
}

TEST(Stats, FootprintsAgreeWithDirectPacking) {
  const Csr m = coo_to_csr(gen_block(256, 32, 6, 0.5, 5, true));
  const auto fps = all_footprints(m);
  for (const auto& fp : fps) {
    const B2srAny b = pack_any(m, fp.dim);
    EXPECT_EQ(b.storage_bytes(), fp.b2sr_bytes);
    EXPECT_EQ(b.nnz_tiles(), fp.nonempty_tiles);
  }
}

TEST(Stats, OptimalTileDimMinimizesBytes) {
  const Csr m = coo_to_csr(gen_banded(300, 3, 0.9, 6));
  const int best = optimal_tile_dim(m);
  const auto fps = all_footprints(m);
  std::size_t best_bytes = 0;
  for (const auto& fp : fps) {
    if (fp.dim == best) best_bytes = fp.b2sr_bytes;
  }
  for (const auto& fp : fps) {
    EXPECT_LE(best_bytes, fp.b2sr_bytes);
  }
}

TEST(Stats, EmptyMatrixHasZeroTilesAtEveryDim) {
  // Degenerate input the figure sweeps must survive: no tiles, no
  // division blow-ups, and the index-only B2SR stays below float CSR.
  const Csr& empty = test::small_matrix_by_name("empty");
  ASSERT_EQ(0, empty.nnz());
  const auto fps = all_footprints(empty);
  for (const auto& fp : fps) {
    EXPECT_EQ(0, fp.nonempty_tiles) << "dim " << fp.dim;
    EXPECT_LT(fp.compression_pct, 100.0) << "dim " << fp.dim;
  }
  for (const int dim : kTileDims) {
    EXPECT_DOUBLE_EQ(0.0, nonempty_tile_ratio_pct(empty, dim));
  }
}

TEST(Stats, TrafficModelReductionForDenseBand) {
  // §VI-C narrative: B2SR reads far fewer bytes than CSR for
  // well-packed matrices (mycielskian8-style 4x reduction).
  const Csr m = coo_to_csr(gen_banded(512, 16, 1.0, 7));
  const TrafficModel t = spmv_traffic(m, 8);
  EXPECT_GT(t.reduction(), 2.0);
}

}  // namespace
}  // namespace bitgb
