// AdaptiveBatch property tests (ctest label "serving"): the
// depth-feedback coalescing-window policy exercised in ISOLATION — no
// server, no threads, just the pure value and recorded arrival traces.
//
// The policy's contract (serving/batcher.hpp):
//   1. the window never exceeds the cap, under any trace;
//   2. the steady-state window is monotone in sustained queue depth;
//   3. the window decays back to 1 when the queue drains;
//   4. a backlog attacks fast — saturation reaches the cap within a
//      handful of waves (this is what protects the batched-vs-unbatched
//      saturation throughput ratio end to end);
//   5. bursty on/off arrivals do not collapse the window between
//      bursts faster than the decay constant allows.
//
// Traces are replayed through a tiny discrete wave-loop simulator:
// each step draws arrivals, serves min(queue, window) as one wave, and
// feeds the policy the depth it left behind plus the width it ran —
// exactly the observation Server::worker_main records.
#include "serving/batcher.hpp"

#include "core/frontier_batch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <random>
#include <vector>

namespace bitgb {
namespace {

using serving::AdaptiveBatch;

/// One simulated serving wave against a queue of `depth` outstanding
/// queries: pop up to the policy's window, then report the leftover
/// depth and the executed width back to the policy (the same feedback
/// Server::worker_main provides).
int step(AdaptiveBatch& adapt, std::size_t& depth) {
  const auto width = static_cast<std::size_t>(
      std::min<std::size_t>(depth, static_cast<std::size_t>(adapt.window())));
  depth -= width;
  return adapt.update(depth, static_cast<int>(width));
}

/// Replay an arrival trace (queries arriving before each wave) and
/// return the window after every wave.
std::vector<int> replay(AdaptiveBatch& adapt,
                        const std::vector<int>& arrivals) {
  std::vector<int> windows;
  windows.reserve(arrivals.size());
  std::size_t depth = 0;
  for (const int a : arrivals) {
    depth += static_cast<std::size_t>(a);
    windows.push_back(step(adapt, depth));
  }
  return windows;
}

std::vector<int> poisson_trace(double mean, std::size_t waves,
                               std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::poisson_distribution<int> arrivals(mean);
  std::vector<int> trace(waves);
  for (auto& a : trace) a = arrivals(rng);
  return trace;
}

TEST(AdaptiveBatch, WindowNeverExceedsCapOnAnyTrace) {
  for (const int cap : {1, 3, 4, 16, 64}) {
    for (const double mean : {0.5, 4.0, 32.0, 128.0}) {
      for (const std::uint64_t seed : {11u, 12u, 13u}) {
        AdaptiveBatch adapt(cap);
        for (const int w : replay(adapt, poisson_trace(mean, 400, seed))) {
          ASSERT_GE(w, 1);
          ASSERT_LE(w, cap) << "cap=" << cap << " mean=" << mean;
        }
      }
    }
  }
}

TEST(AdaptiveBatch, CapIsClampedToTheEngineBatchWidth) {
  EXPECT_EQ(FrontierBatch::kMaxBatch, AdaptiveBatch(10'000).cap());
  EXPECT_EQ(1, AdaptiveBatch(0).cap());
  EXPECT_EQ(1, AdaptiveBatch(-5).cap());
  EXPECT_EQ(FrontierBatch::kMaxBatch, AdaptiveBatch().cap());
}

TEST(AdaptiveBatch, SteadyWindowIsMonotoneInSustainedQueueDepth) {
  // Hold each depth constant (refill whatever a wave served) long
  // enough to converge, and compare the settled windows.
  int previous = 0;
  for (const std::size_t depth : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 64u, 256u}) {
    AdaptiveBatch adapt;
    int window = adapt.window();
    for (int i = 0; i < 64; ++i) window = adapt.update(depth, window);
    EXPECT_GE(window, previous) << "depth=" << depth;
    previous = window;
  }
  // The extremes pin down the range: empty queue -> 1, deep queue -> cap.
  AdaptiveBatch idle;
  int w = idle.window();
  for (int i = 0; i < 16; ++i) w = idle.update(0, w);
  EXPECT_EQ(1, w);
  AdaptiveBatch deep;
  w = deep.window();
  for (int i = 0; i < 16; ++i) w = deep.update(256, w);
  EXPECT_EQ(FrontierBatch::kMaxBatch, w);
}

TEST(AdaptiveBatch, BacklogAttacksToTheCapWithinAFewWaves) {
  // A saturated queue must widen the window to the full 64-way
  // amortization almost immediately — this bound is what keeps the
  // end-to-end batched/unbatched saturation ratio intact when the
  // server starts cold.
  AdaptiveBatch adapt;
  int window = adapt.window();
  int waves = 0;
  while (window < adapt.cap()) {
    window = adapt.update(512, window);
    ASSERT_LE(++waves, 8) << "attack too slow: window=" << window;
  }
  EXPECT_LE(waves, 4);
}

TEST(AdaptiveBatch, DecaysToOneWhenTheQueueDrains) {
  AdaptiveBatch adapt;
  int window = adapt.window();
  for (int i = 0; i < 8; ++i) window = adapt.update(512, window);
  ASSERT_EQ(adapt.cap(), window);
  // Drain: depth 0, width 1 (the single-query pops an idle worker
  // runs).  The window must come back down to 1 — and smoothly, never
  // rising along the way.
  int waves = 0;
  while (window > 1) {
    const int next = adapt.update(0, 1);
    ASSERT_LE(next, window) << "decay must be monotone";
    window = next;
    ASSERT_LE(++waves, 64) << "decay too slow";
  }
  EXPECT_EQ(1, adapt.window());
}

TEST(AdaptiveBatch, PoissonLoadSweepTracksOfferedLoad) {
  // Poisson arrivals at 0.5x / 1x / 2x of a reference 8-query-per-wave
  // rate.  Because each wave serves up to the window, the settled
  // window is the arrival rate the worker must coalesce per wave — the
  // policy's whole point is that it tracks offered load: settled means
  // must be ordered by load and sit near it (within a 2x band), not
  // stuck at 1 or pinned at the cap.
  const std::size_t kWaves = 600, kWarmup = 100;
  double mean_window[3] = {0, 0, 0};
  const double loads[3] = {4.0, 8.0, 16.0};
  for (int i = 0; i < 3; ++i) {
    AdaptiveBatch adapt;
    const auto windows =
        replay(adapt, poisson_trace(loads[i], kWaves,
                                    0xadaBa7c4u + static_cast<unsigned>(i)));
    for (std::size_t t = kWarmup; t < kWaves; ++t) {
      mean_window[i] += windows[t];
    }
    mean_window[i] /= static_cast<double>(kWaves - kWarmup);
  }
  EXPECT_LT(mean_window[0], mean_window[1]);
  EXPECT_LT(mean_window[1], mean_window[2]);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(mean_window[i], loads[i] / 2) << "load=" << loads[i];
    EXPECT_LT(mean_window[i], loads[i] * 2) << "load=" << loads[i];
  }
}

TEST(AdaptiveBatch, BurstyOnOffTraceHoldsTheWindowThroughGaps) {
  // On/off arrivals: 32 queries per wave for 20 waves, then silence for
  // 5, repeated.  The slow decay constant must keep the window well
  // above 1 across the short gaps (no batching-collapse between
  // bursts), while a LONG silence still releases it back to 1.
  AdaptiveBatch adapt;
  std::vector<int> trace;
  for (int cycle = 0; cycle < 10; ++cycle) {
    trace.insert(trace.end(), 20, 32);
    trace.insert(trace.end(), 5, 0);
  }
  const auto windows = replay(adapt, trace);
  // Sample the window at the end of each silent gap (just before the
  // next burst): it must not have collapsed.
  for (int cycle = 1; cycle < 10; ++cycle) {
    const std::size_t gap_end = static_cast<std::size_t>(cycle) * 25 - 1;
    EXPECT_GT(windows[gap_end], 4)
        << "window collapsed during gap " << cycle;
  }
  // A long drain after the final burst does release it.
  int window = adapt.window();
  for (int i = 0; i < 64; ++i) window = adapt.update(0, 1);
  EXPECT_EQ(1, window);
}

}  // namespace
}  // namespace bitgb
