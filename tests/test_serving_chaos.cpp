// Serving chaos suite (ctest label "serving-stress"; runs in the ASan
// and TSan lanes): randomized fault injection against the full
// multi-tenant serving stack.
//
// Each seed runs one storm: submitter threads fire random kinds with
// random deadlines (some already expired at submit) at three registered
// graphs — plus a name that was never registered — while a chaos thread
// removes and re-registers graphs mid-storm and, on half the seeds,
// calls shutdown() while submitters are still firing.  The FaultStorm
// seeds additionally arm a shared FaultInjector (seeded Bernoulli
// bad_alloc and kernel faults, induced wave/kernel delays) and a
// hair-trigger circuit breaker, so injected failures, breaker trips,
// registry churn, and mid-storm shutdown all interleave.  The
// invariants that must hold under EVERY seed are the serving core's
// contract:
//
//   * every future is fulfilled — no reply is ever dropped, no matter
//     how the storm interleaves with remove()/shutdown(), and no matter
//     which waves the injector kills (containment: a fault fails its
//     wave with kInternalError, never the worker);
//   * conservation: submitted == completed + failed + every shed
//     bucket, exactly (ServerStats::accounted()), per the server's own
//     counters and per the replies the callers actually observed;
//   * no reply leaks a dangling graph: a kOk payload always has the
//     full vertex count of the graph its request targeted, readable
//     after the registry dropped that registration (shared slot
//     ownership — ASan is the judge of "readable");
//   * per-kind counters partition the totals and the wave-width
//     histogram accounts for every executed wave.
#include "serving/server.hpp"

#include "serving/registry.hpp"
#include "sparse/generators.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <numeric>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace bitgb {
namespace {

using namespace std::chrono_literals;
using serving::GraphRegistry;
using serving::QueryKind;
using serving::Reply;
using serving::Server;
using serving::ServerOptions;
using serving::Status;

struct TenantSpec {
  const char* name;
  vidx_t n;
};

/// Three tenants with distinct vertex counts, so a payload sized for
/// the wrong graph is unmistakable.  Re-adds keep each name's size
/// fixed (fresh edges, same n) — the size IS the per-name oracle.
constexpr TenantSpec kTenants[] = {
    {"small", 128}, {"medium", 256}, {"large", 384}};
constexpr int kNumTenants = 3;

gb::Graph tenant_graph(vidx_t n, std::uint64_t seed) {
  gb::GraphOptions opts;
  opts.tile_dim = 8;
  return gb::Graph::from_coo(gen_random(n, 4 * n, seed), opts);
}

/// One submitted query and what its reply must look like if it is kOk.
struct Pending {
  std::future<Reply> fut;
  QueryKind kind = QueryKind::kBfs;
  int tenant = -1;  ///< index into kTenants, or -1 for the ghost name
};

void run_storm(std::uint64_t seed, bool inject_faults) {
  constexpr int kSubmitters = 4;
  constexpr int kPerSubmitter = 120;

  GraphRegistry reg;
  for (const auto& t : kTenants) {
    reg.add(t.name, tenant_graph(t.n, seed ^ static_cast<std::uint64_t>(t.n)));
  }

  // The fault plan for the FaultStorm seeds: sustained seeded Bernoulli
  // faults at both hooks (enough to trip breakers), plus induced delays
  // that push waves past the tight 500us deadlines some submits carry —
  // exercising the mid-flight cancellation path, not just the pre-wave
  // shed.  One injector shared by every worker: the storm is
  // reproducible in distribution.
  FaultPlan plan;
  plan.seed = seed * 0x9e3779b97f4a7c15ULL + 1;
  plan.alloc_fault_rate = inject_faults ? 0.04 : 0.0;
  plan.kernel_fault_rate = inject_faults ? 0.02 : 0.0;
  plan.wave_delay = inject_faults ? 200us : 0us;
  plan.kernel_delay = inject_faults ? 20us : 0us;
  FaultInjector injector(plan);

  ServerOptions opts;
  opts.workers = 3;
  opts.queue_capacity = 48;  // small on purpose: force queue-full sheds
  if (inject_faults) {
    opts.context = opts.context.with_fault(&injector);
    // Hair-trigger breaker with a cooldown short enough to re-close
    // mid-storm: both the trip path and the half-open recovery path
    // run many times per seed.
    opts.breaker.trip_after = 2;
    opts.breaker.cooldown = 2ms;
  }
  Server server(reg, opts);

  std::vector<std::vector<Pending>> submitted(kSubmitters);
  std::atomic<bool> storm_done{false};

  std::vector<std::thread> submitters;
  submitters.reserve(kSubmitters);
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&, s] {
      std::mt19937_64 rng(seed * 7919 + static_cast<std::uint64_t>(s));
      auto& mine = submitted[static_cast<std::size_t>(s)];
      mine.reserve(kPerSubmitter);
      for (int i = 0; i < kPerSubmitter; ++i) {
        Pending p;
        p.kind = static_cast<QueryKind>(rng() % serving::kNumQueryKinds);
        // 1-in-12 submits target a name that was never registered.
        p.tenant = rng() % 12 == 0 ? -1 : static_cast<int>(rng() % kNumTenants);
        const char* name = p.tenant < 0 ? "ghost" : kTenants[p.tenant].name;
        const vidx_t source =
            p.tenant < 0 ? 0
                         : static_cast<vidx_t>(
                               rng() % static_cast<std::uint64_t>(
                                           kTenants[p.tenant].n));
        // Deadlines: mostly none, 1-in-10 already expired at submit,
        // 1-in-10 tight enough to be a coin flip under load.
        auto deadline = serving::clock::time_point::max();
        const auto dice = rng() % 10;
        if (dice == 0) {
          deadline = serving::clock::now() - 1ms;
        } else if (dice == 1) {
          deadline = serving::clock::now() + 500us;
        }
        p.fut = p.kind == QueryKind::kPagerank
                    ? server.submit_pagerank(name, {}, deadline)
                    : server.submit(name, p.kind, source, deadline);
        mine.push_back(std::move(p));
        if (rng() % 4 == 0) std::this_thread::yield();
      }
    });
  }

  // The chaos thread: remove and re-register random tenants while the
  // storm runs; on even seeds, also shut the server down mid-storm
  // (submits after close shed at the door — their futures must still
  // resolve).
  std::thread chaos([&] {
    std::mt19937_64 rng(seed ^ 0xc4a05u);
    const bool early_shutdown = seed % 2 == 0;
    const int shutdown_after = 3 + static_cast<int>(rng() % 8);
    int iteration = 0;
    while (!storm_done.load(std::memory_order_relaxed)) {
      const auto& t = kTenants[rng() % kNumTenants];
      reg.remove(t.name);
      std::this_thread::yield();
      reg.add(t.name, tenant_graph(t.n, rng()));
      if (early_shutdown && ++iteration == shutdown_after) {
        server.shutdown();
      }
      std::this_thread::sleep_for(
          std::chrono::microseconds(rng() % 300));
    }
  });

  for (auto& s : submitters) s.join();
  storm_done.store(true, std::memory_order_relaxed);
  chaos.join();
  server.shutdown();  // idempotent with any early shutdown

  // Every future must resolve (a hang here trips the ctest timeout),
  // and the callers' view must reconcile exactly with the server's.
  std::uint64_t ok = 0, shed_full = 0, shed_deadline = 0, bad_graph = 0;
  std::uint64_t shed_shutdown = 0, shed_circuit = 0, failed = 0;
  for (auto& lane : submitted) {
    for (auto& p : lane) {
      const Reply r = p.fut.get();
      switch (r.status) {
        case Status::kOk: {
          ++ok;
          ASSERT_GE(p.tenant, 0) << "ghost name answered kOk";
          const auto n =
              static_cast<std::size_t>(kTenants[p.tenant].n);
          EXPECT_EQ(kTenants[p.tenant].name, r.graph);
          // The payload must be full-size for the graph the request
          // targeted — and fully readable even though the registry may
          // have dropped that registration long ago.
          switch (p.kind) {
            case QueryKind::kBfs:
              ASSERT_EQ(n, r.levels.size());
              EXPECT_GE(r.levels[n - 1], -1);
              break;
            case QueryKind::kReach:
              ASSERT_EQ(n, r.reached.size());
              EXPECT_LE(static_cast<int>(r.reached[n - 1]), 1);
              break;
            case QueryKind::kPagerank: {
              ASSERT_EQ(n, r.rank.size());
              const double mass = std::accumulate(
                  r.rank.begin(), r.rank.end(), 0.0);
              EXPECT_GT(mass, 0.0);
              break;
            }
            case QueryKind::kComponents:
              ASSERT_EQ(n, r.component.size());
              EXPECT_GE(r.component[n - 1], 0);
              break;
          }
          break;
        }
        case Status::kShedQueueFull:
          ++shed_full;
          break;
        case Status::kShedDeadline:
          ++shed_deadline;
          break;
        case Status::kBadGraph:
          ++bad_graph;
          break;
        case Status::kShedShutdown:
          ++shed_shutdown;
          break;
        case Status::kShedCircuitOpen:
          ++shed_circuit;
          break;
        case Status::kInternalError:
          ++failed;
          // Containment must say WHAT died: the contained exception's
          // text rides in the reply.
          EXPECT_FALSE(r.error.empty());
          break;
      }
    }
  }

  const auto st = server.stats();
  const std::uint64_t total =
      static_cast<std::uint64_t>(kSubmitters) * kPerSubmitter;
  EXPECT_EQ(total, st.submitted);
  EXPECT_EQ(ok, st.completed);
  EXPECT_EQ(shed_full, st.shed_queue_full);
  EXPECT_EQ(shed_deadline, st.shed_deadline);
  EXPECT_EQ(bad_graph, st.shed_bad_graph);
  EXPECT_EQ(shed_shutdown, st.shed_shutdown);
  EXPECT_EQ(shed_circuit, st.shed_circuit_open);
  EXPECT_EQ(failed, st.failed);
  EXPECT_EQ(st.submitted, st.accounted());
  if (!inject_faults) {
    // Without an injector nothing may fail or trip a breaker — the
    // fault paths must be strictly opt-in.
    EXPECT_EQ(0u, st.failed);
    EXPECT_EQ(0u, st.shed_circuit_open);
  }

  std::uint64_t by_kind_submitted = 0, by_kind_completed = 0;
  for (std::size_t k = 0; k < serving::kNumQueryKinds; ++k) {
    by_kind_submitted += st.submitted_by_kind[k];
    by_kind_completed += st.completed_by_kind[k];
  }
  EXPECT_EQ(st.submitted, by_kind_submitted);
  EXPECT_EQ(st.completed, by_kind_completed);
  const std::uint64_t hist_total =
      std::accumulate(st.wave_width_hist.begin(), st.wave_width_hist.end(),
                      std::uint64_t{0});
  EXPECT_EQ(st.waves, hist_total);
}

class ServingChaos : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServingChaos, InvariantsHoldUnderRandomizedStorm) {
  run_storm(GetParam(), /*inject_faults=*/false);
}

class ServingFaultStorm : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ServingFaultStorm, InvariantsHoldUnderInjectedFaults) {
  run_storm(GetParam(), /*inject_faults=*/true);
}

// Six distinct seeds each: three with mid-storm shutdown (even), three
// that drain normally (odd).  Add a failing seed here to pin a
// regression.  The FaultStorm set layers seeded Bernoulli faults and a
// hair-trigger breaker on the same storm (its ctest registration is
// separate — see tests/CMakeLists.txt — so each half gets its own
// explicit timeout).
INSTANTIATE_TEST_SUITE_P(Seeds, ServingChaos,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));
INSTANTIATE_TEST_SUITE_P(Seeds, ServingFaultStorm,
                         ::testing::Values(11u, 12u, 13u, 14u, 15u, 16u));

}  // namespace
}  // namespace bitgb
