// BMM kernel tests — paper Table III: the counting-sum product, the
// masked dot-product sum (triangle counting's workhorse), and the
// bit-SpGEMM extension.
#include "core/bit_spgemm.hpp"
#include "core/bmm.hpp"
#include "core/pack.hpp"
#include "baseline/csrgemm.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

class BmmTest : public ::testing::TestWithParam<int> {};

TEST_P(BmmTest, SumMatchesDenseProductSum) {
  const int dim = GetParam();
  for (const auto& [name, m] : test::small_matrices_cached()) {
    const std::int64_t expected = test::ref_product_sum(m, m);
    dispatch_tile_dim(dim, [&]<int Dim>() {
      const B2srT<Dim> a = pack_from_csr<Dim>(m);
      EXPECT_EQ(expected, bmm_bin_bin_sum(a, a)) << name << " dim=" << Dim;
      return 0;
    });
  }
}

TEST_P(BmmTest, SumOfRectangularProduct) {
  const int dim = GetParam();
  // A: 40x60, B: 60x52 — distinct inner/outer sizes cross the tile
  // boundary logic.
  Coo ac{40, 60, {}, {}, {}};
  Coo bc{60, 52, {}, {}, {}};
  std::mt19937_64 rng(80);
  for (int i = 0; i < 300; ++i) {
    ac.push(static_cast<vidx_t>(rng() % 40), static_cast<vidx_t>(rng() % 60));
    bc.push(static_cast<vidx_t>(rng() % 60), static_cast<vidx_t>(rng() % 52));
  }
  const Csr a = coo_to_csr(ac);
  const Csr b = coo_to_csr(bc);
  const std::int64_t expected = test::ref_product_sum(a, b);
  dispatch_tile_dim(dim, [&]<int Dim>() {
    EXPECT_EQ(expected,
              bmm_bin_bin_sum(pack_from_csr<Dim>(a), pack_from_csr<Dim>(b)));
    return 0;
  });
}

TEST_P(BmmTest, MaskedSumMatchesReference) {
  const int dim = GetParam();
  for (const auto& [name, m] : test::small_matrices_cached()) {
    const Csr l = lower_triangle(m);
    const std::int64_t expected = test::ref_abt_masked_sum(l, l, l);
    dispatch_tile_dim(dim, [&]<int Dim>() {
      const B2srT<Dim> lb = pack_from_csr<Dim>(l);
      EXPECT_EQ(expected, bmm_bin_bin_sum_masked(lb, lb, lb))
          << name << " dim=" << Dim;
      return 0;
    });
  }
}

TEST_P(BmmTest, MaskedSumWithDistinctOperands) {
  const int dim = GetParam();
  const Csr a = coo_to_csr(gen_random(45, 350, 81));
  const Csr b = coo_to_csr(gen_random(45, 350, 82));
  const Csr mask = coo_to_csr(gen_random(45, 200, 83));
  const std::int64_t expected = test::ref_abt_masked_sum(a, b, mask);
  dispatch_tile_dim(dim, [&]<int Dim>() {
    EXPECT_EQ(expected, bmm_bin_bin_sum_masked(pack_from_csr<Dim>(a),
                                               pack_from_csr<Dim>(b),
                                               pack_from_csr<Dim>(mask)));
    return 0;
  });
}

TEST_P(BmmTest, EmptyOperandsGiveZero) {
  const int dim = GetParam();
  const Csr empty = coo_to_csr(Coo{32, 32, {}, {}, {}});
  const Csr some = coo_to_csr(gen_random(32, 100, 84));
  dispatch_tile_dim(dim, [&]<int Dim>() {
    const auto e = pack_from_csr<Dim>(empty);
    const auto s = pack_from_csr<Dim>(some);
    EXPECT_EQ(0, bmm_bin_bin_sum(e, s));
    EXPECT_EQ(0, bmm_bin_bin_sum(s, e));
    EXPECT_EQ(0, bmm_bin_bin_sum_masked(s, s, e));
    return 0;
  });
}

INSTANTIATE_TEST_SUITE_P(AllDims, BmmTest, ::testing::ValuesIn({4, 8, 16, 32}),
                         [](const auto& info) {
                           return "dim" + std::to_string(info.param);
                         });

// --- bit SpGEMM extension ---

class BitSpgemmTest : public ::testing::TestWithParam<int> {};

TEST_P(BitSpgemmTest, MatchesBooleanizedFloatSpgemm) {
  const int dim = GetParam();
  for (const auto& [name, m] : test::small_matrices_cached()) {
    // Boolean product pattern == pattern of the float product.
    const Csr ref = baseline::csrgemm(m, m);
    dispatch_tile_dim(dim, [&]<int Dim>() {
      const B2srT<Dim> a = pack_from_csr<Dim>(m);
      const Csr got = unpack_to_csr(bit_spgemm(a, a));
      EXPECT_EQ(ref.rowptr, got.rowptr) << name << " dim=" << Dim;
      EXPECT_EQ(ref.colind, got.colind) << name << " dim=" << Dim;
      return 0;
    });
  }
}

TEST_P(BitSpgemmTest, ProducesValidFormat) {
  const int dim = GetParam();
  const Csr m = coo_to_csr(gen_stripe(100, 4, 0.7, 85));
  dispatch_tile_dim(dim, [&]<int Dim>() {
    const B2srT<Dim> c = bit_spgemm(pack_from_csr<Dim>(m), pack_from_csr<Dim>(m));
    EXPECT_TRUE(c.validate());
    return 0;
  });
}

TEST_P(BitSpgemmTest, RectangularChainAssociativityPattern) {
  const int dim = GetParam();
  // (A*B) computed bitwise equals pattern of float product for
  // rectangular operands.
  Coo ac{30, 50, {}, {}, {}};
  Coo bc{50, 20, {}, {}, {}};
  std::mt19937_64 rng(86);
  for (int i = 0; i < 250; ++i) {
    ac.push(static_cast<vidx_t>(rng() % 30), static_cast<vidx_t>(rng() % 50));
    bc.push(static_cast<vidx_t>(rng() % 50), static_cast<vidx_t>(rng() % 20));
  }
  const Csr a = coo_to_csr(ac);
  const Csr b = coo_to_csr(bc);
  const Csr ref = baseline::csrgemm(a, b);
  dispatch_tile_dim(dim, [&]<int Dim>() {
    const Csr got =
        unpack_to_csr(bit_spgemm(pack_from_csr<Dim>(a), pack_from_csr<Dim>(b)));
    EXPECT_EQ(ref.rowptr, got.rowptr);
    EXPECT_EQ(ref.colind, got.colind);
    return 0;
  });
}

TEST(BitSpgemmAny, RejectsMixedDims) {
  const Csr m = coo_to_csr(gen_random(20, 60, 87));
  const B2srAny a4 = pack_any(m, 4);
  const B2srAny a8 = pack_any(m, 8);
  EXPECT_THROW(bit_spgemm_any(a4, a8), std::invalid_argument);
  // Same dims work.
  const B2srAny c = bit_spgemm_any(a4, a4);
  EXPECT_EQ(4, c.tile_dim());
}

INSTANTIATE_TEST_SUITE_P(AllDims, BitSpgemmTest,
                         ::testing::ValuesIn({4, 8, 16, 32}),
                         [](const auto& info) {
                           return "dim" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bitgb
