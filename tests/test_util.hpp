// Shared helpers for the test suite: small deterministic matrices,
// dense reference implementations of every kernel semantics, and
// comparison utilities.
#pragma once

#include "platform/context.hpp"
#include "sparse/convert.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <random>
#include <stdexcept>
#include <vector>

namespace bitgb::test {

/// A Context pinned to one backend — the per-call descriptor most tests
/// thread through the algorithm API.
inline Context ctx(Backend b) { return Context{}.with_backend(b); }


/// Expected shape of every entry in small_matrices(), in order.  This is
/// the oracle the suite checks the fixture against (see
/// expect_small_matrices_match_oracle): parameterized tests index into
/// small_matrices() by position, so an entry added, removed, reordered, or
/// regenerated differently must update this table — otherwise Range-based
/// parameterizations silently skip (or read past) entries.
struct SmallMatrixOracle {
  const char* name;
  vidx_t nrows;
  vidx_t ncols;
  eidx_t nnz;
};

inline constexpr SmallMatrixOracle kSmallMatrixOracle[] = {
    {"empty", 64, 64, 0},         {"single", 65, 65, 1},
    {"random_61", 61, 61, 300},   {"random_128", 128, 128, 2000},
    {"band_100", 100, 100, 661},  {"band_129", 129, 129, 1158},
    {"block_96", 96, 96, 593},    {"stripe_90", 90, 90, 226},
    {"road_10x7", 70, 70, 246},   {"hybrid_120", 120, 120, 562},
    {"mycielskian6", 47, 47, 472}, {"dense_33", 33, 33, 1056},
};

/// Number of fixture matrices — use this (not a literal) as the exclusive
/// upper bound of ::testing::Range over matrix indices.
inline constexpr int kSmallMatrixCount =
    static_cast<int>(std::size(kSmallMatrixOracle));

/// A spread of small matrices covering the pattern categories plus the
/// awkward shapes (empty, single entry, dense, non-multiple-of-dim).
inline std::vector<std::pair<std::string, Csr>> small_matrices() {
  std::vector<std::pair<std::string, Csr>> out;
  out.emplace_back("empty", coo_to_csr(Coo{64, 64, {}, {}, {}}));
  {
    Coo one{65, 65, {}, {}, {}};
    one.push(33, 17);
    out.emplace_back("single", coo_to_csr(one));
  }
  out.emplace_back("random_61", coo_to_csr(gen_random(61, 300, 11)));
  out.emplace_back("random_128", coo_to_csr(gen_random(128, 2000, 12)));
  out.emplace_back("band_100", coo_to_csr(gen_banded(100, 5, 0.7, 13)));
  out.emplace_back("band_129", coo_to_csr(gen_banded(129, 9, 0.5, 14)));
  out.emplace_back("block_96", coo_to_csr(gen_block(96, 16, 5, 0.5, 15, true)));
  out.emplace_back("stripe_90", coo_to_csr(gen_stripe(90, 3, 0.8, 16)));
  out.emplace_back("road_10x7", coo_to_csr(gen_road(10, 7, 0.05, 17)));
  out.emplace_back("hybrid_120", coo_to_csr(gen_hybrid(120, 18)));
  out.emplace_back("mycielskian6", coo_to_csr(gen_mycielskian(6)));
  {
    // Fully dense 33x33 (every off-diagonal entry).
    Coo dense{33, 33, {}, {}, {}};
    for (vidx_t r = 0; r < 33; ++r) {
      for (vidx_t c = 0; c < 33; ++c) {
        if (r != c) dense.push(r, c);
      }
    }
    out.emplace_back("dense_33", coo_to_csr(dense));
  }
  return out;
}

/// The fixture set, generated once per process.  Parameterized suites draw
/// from this instead of regenerating all twelve matrices per test case.
inline const std::vector<std::pair<std::string, Csr>>&
small_matrices_cached() {
  static const auto mats = small_matrices();
  return mats;
}

/// Bounds-checked access by parameter index.  Throwing (rather than UB on
/// a raw mats[mi]) turns a stale Range(0, N) parameterization into a
/// clean test failure naming the bad index.
inline const std::pair<std::string, Csr>& small_matrix(int mi) {
  const auto& mats = small_matrices_cached();
  if (mi < 0 || static_cast<std::size_t>(mi) >= mats.size()) {
    throw std::out_of_range("small_matrix index " + std::to_string(mi) +
                            " outside [0, " + std::to_string(mats.size()) +
                            ") — update kSmallMatrixOracle and the Range() "
                            "parameterizations together");
  }
  return mats[static_cast<std::size_t>(mi)];
}

/// Lookup by oracle name; throws if the fixture no longer carries it.
inline const Csr& small_matrix_by_name(const std::string& name) {
  for (const auto& [n, m] : small_matrices_cached()) {
    if (n == name) return m;
  }
  throw std::out_of_range("small_matrices() has no entry named " + name);
}

/// Dense row-major pattern expansion of a CSR matrix (small only).
inline std::vector<bool> dense_pattern(const Csr& m) {
  std::vector<bool> cell(static_cast<std::size_t>(m.nrows) *
                         static_cast<std::size_t>(m.ncols));
  for (vidx_t r = 0; r < m.nrows; ++r) {
    for (const vidx_t c : m.row_cols(r)) {
      cell[static_cast<std::size_t>(r) * static_cast<std::size_t>(m.ncols) +
           static_cast<std::size_t>(c)] = true;
    }
  }
  return cell;
}

/// Dense-reference nnz recount: expand the CSR into a dense bitmap and
/// count set cells.  Catches duplicate or out-of-range column indices
/// that a plain colind.size() would miss.
inline eidx_t dense_recount_nnz(const Csr& m) {
  eidx_t n = 0;
  for (const bool b : dense_pattern(m)) n += b ? 1 : 0;
  return n;
}

/// Oracle check: small_matrices() matches kSmallMatrixOracle entry for
/// entry (count, order, names, dims, dense-recounted nnz) and every
/// matrix satisfies the CSR structural invariants.  Call this from any
/// suite that parameterizes over matrix indices.
inline void expect_small_matrices_match_oracle() {
  const auto& mats = small_matrices_cached();
  ASSERT_EQ(static_cast<std::size_t>(kSmallMatrixCount), mats.size())
      << "small_matrices() and kSmallMatrixOracle disagree on the entry "
         "count; update the oracle and every Range(0, kSmallMatrixCount) "
         "parameterization together";
  for (int i = 0; i < kSmallMatrixCount; ++i) {
    const auto& oracle = kSmallMatrixOracle[static_cast<std::size_t>(i)];
    const auto& [name, m] = mats[static_cast<std::size_t>(i)];
    EXPECT_EQ(oracle.name, name) << "entry " << i;
    EXPECT_EQ(oracle.nrows, m.nrows) << name;
    EXPECT_EQ(oracle.ncols, m.ncols) << name;
    EXPECT_TRUE(m.validate()) << name;
    EXPECT_EQ(m.nnz(), dense_recount_nnz(m)) << name;
#ifdef __GLIBCXX__
    // The exact nnz fingerprints come from std::uniform_* draws, whose
    // sequences are implementation-defined; they are pinned for
    // libstdc++ (what CI runs) and skipped on other standard libraries.
    EXPECT_EQ(oracle.nnz, m.nnz()) << name;
#endif
  }
}

/// Deterministic float vector with the given fraction of zeros (BMV
/// inputs need both zero and nonzero entries to exercise binarization).
inline std::vector<value_t> random_vector(vidx_t n, double zero_fraction,
                                          std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> val(0.5f, 4.0f);
  std::bernoulli_distribution zero(zero_fraction);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = zero(rng) ? 0.0f : val(rng);
  return v;
}

/// Dense reference: Boolean y = A x over OR-AND.
inline std::vector<bool> ref_bool_mxv(const Csr& a,
                                      const std::vector<bool>& x) {
  std::vector<bool> y(static_cast<std::size_t>(a.nrows), false);
  for (vidx_t r = 0; r < a.nrows; ++r) {
    for (const vidx_t c : a.row_cols(r)) {
      if (x[static_cast<std::size_t>(c)]) {
        y[static_cast<std::size_t>(r)] = true;
        break;
      }
    }
  }
  return y;
}

/// Dense reference: counting y[i] = |{j in adj(i) : x[j]}|.
inline std::vector<value_t> ref_count_mxv(const Csr& a,
                                          const std::vector<bool>& x) {
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows), 0.0f);
  for (vidx_t r = 0; r < a.nrows; ++r) {
    int c0 = 0;
    for (const vidx_t c : a.row_cols(r)) {
      if (x[static_cast<std::size_t>(c)]) ++c0;
    }
    y[static_cast<std::size_t>(r)] = static_cast<value_t>(c0);
  }
  return y;
}

/// Dense reference: semiring y[i] = reduce_j map(x[j]) over adj(i).
template <typename Op>
std::vector<value_t> ref_semiring_mxv(const Csr& a,
                                      const std::vector<value_t>& x) {
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows), Op::identity);
  for (vidx_t r = 0; r < a.nrows; ++r) {
    value_t acc = Op::identity;
    for (const vidx_t c : a.row_cols(r)) {
      acc = Op::reduce(acc, Op::map(x[static_cast<std::size_t>(c)]));
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

/// Sum over the counting product A*B via dense expansion (small only).
inline std::int64_t ref_product_sum(const Csr& a, const Csr& b) {
  std::int64_t sum = 0;
  for (vidx_t r = 0; r < a.nrows; ++r) {
    for (const vidx_t k : a.row_cols(r)) {
      sum += b.rowptr[static_cast<std::size_t>(k) + 1] -
             b.rowptr[static_cast<std::size_t>(k)];
    }
  }
  return sum;
}

/// Sum over (A * B^T) .* M via sorted-row dot products (small only).
inline std::int64_t ref_abt_masked_sum(const Csr& a, const Csr& b,
                                       const Csr& m) {
  std::int64_t sum = 0;
  for (vidx_t i = 0; i < m.nrows; ++i) {
    for (const vidx_t j : m.row_cols(i)) {
      const auto ra = a.row_cols(i);
      const auto rb = b.row_cols(j);
      std::size_t p = 0;
      std::size_t q = 0;
      while (p < ra.size() && q < rb.size()) {
        if (ra[p] < rb[q]) {
          ++p;
        } else if (rb[q] < ra[p]) {
          ++q;
        } else {
          ++sum;
          ++p;
          ++q;
        }
      }
    }
  }
  return sum;
}

/// EXPECT float vectors equal element-wise within tol (inf == inf ok).
inline void expect_vectors_near(const std::vector<value_t>& expected,
                                const std::vector<value_t>& actual,
                                double tol = 1e-5) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (std::isinf(expected[i]) || std::isinf(actual[i])) {
      EXPECT_EQ(expected[i], actual[i]) << "at index " << i;
    } else {
      EXPECT_NEAR(expected[i], actual[i], tol) << "at index " << i;
    }
  }
}

}  // namespace bitgb::test
