// Shared helpers for the test suite: small deterministic matrices,
// dense reference implementations of every kernel semantics, and
// comparison utilities.
#pragma once

#include "sparse/convert.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"

#include <gtest/gtest.h>

#include <random>
#include <vector>

namespace bitgb::test {

/// A spread of small matrices covering the pattern categories plus the
/// awkward shapes (empty, single entry, dense, non-multiple-of-dim).
inline std::vector<std::pair<std::string, Csr>> small_matrices() {
  std::vector<std::pair<std::string, Csr>> out;
  out.emplace_back("empty", coo_to_csr(Coo{64, 64, {}, {}, {}}));
  {
    Coo one{65, 65, {}, {}, {}};
    one.push(33, 17);
    out.emplace_back("single", coo_to_csr(one));
  }
  out.emplace_back("random_61", coo_to_csr(gen_random(61, 300, 11)));
  out.emplace_back("random_128", coo_to_csr(gen_random(128, 2000, 12)));
  out.emplace_back("band_100", coo_to_csr(gen_banded(100, 5, 0.7, 13)));
  out.emplace_back("band_129", coo_to_csr(gen_banded(129, 9, 0.5, 14)));
  out.emplace_back("block_96", coo_to_csr(gen_block(96, 16, 5, 0.5, 15, true)));
  out.emplace_back("stripe_90", coo_to_csr(gen_stripe(90, 3, 0.8, 16)));
  out.emplace_back("road_10x7", coo_to_csr(gen_road(10, 7, 0.05, 17)));
  out.emplace_back("hybrid_120", coo_to_csr(gen_hybrid(120, 18)));
  out.emplace_back("mycielskian6", coo_to_csr(gen_mycielskian(6)));
  {
    // Fully dense 33x33 (every off-diagonal entry).
    Coo dense{33, 33, {}, {}, {}};
    for (vidx_t r = 0; r < 33; ++r) {
      for (vidx_t c = 0; c < 33; ++c) {
        if (r != c) dense.push(r, c);
      }
    }
    out.emplace_back("dense_33", coo_to_csr(dense));
  }
  return out;
}

/// Deterministic float vector with the given fraction of zeros (BMV
/// inputs need both zero and nonzero entries to exercise binarization).
inline std::vector<value_t> random_vector(vidx_t n, double zero_fraction,
                                          std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<float> val(0.5f, 4.0f);
  std::bernoulli_distribution zero(zero_fraction);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = zero(rng) ? 0.0f : val(rng);
  return v;
}

/// Dense reference: Boolean y = A x over OR-AND.
inline std::vector<bool> ref_bool_mxv(const Csr& a,
                                      const std::vector<bool>& x) {
  std::vector<bool> y(static_cast<std::size_t>(a.nrows), false);
  for (vidx_t r = 0; r < a.nrows; ++r) {
    for (const vidx_t c : a.row_cols(r)) {
      if (x[static_cast<std::size_t>(c)]) {
        y[static_cast<std::size_t>(r)] = true;
        break;
      }
    }
  }
  return y;
}

/// Dense reference: counting y[i] = |{j in adj(i) : x[j]}|.
inline std::vector<value_t> ref_count_mxv(const Csr& a,
                                          const std::vector<bool>& x) {
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows), 0.0f);
  for (vidx_t r = 0; r < a.nrows; ++r) {
    int c0 = 0;
    for (const vidx_t c : a.row_cols(r)) {
      if (x[static_cast<std::size_t>(c)]) ++c0;
    }
    y[static_cast<std::size_t>(r)] = static_cast<value_t>(c0);
  }
  return y;
}

/// Dense reference: semiring y[i] = reduce_j map(x[j]) over adj(i).
template <typename Op>
std::vector<value_t> ref_semiring_mxv(const Csr& a,
                                      const std::vector<value_t>& x) {
  std::vector<value_t> y(static_cast<std::size_t>(a.nrows), Op::identity);
  for (vidx_t r = 0; r < a.nrows; ++r) {
    value_t acc = Op::identity;
    for (const vidx_t c : a.row_cols(r)) {
      acc = Op::reduce(acc, Op::map(x[static_cast<std::size_t>(c)]));
    }
    y[static_cast<std::size_t>(r)] = acc;
  }
  return y;
}

/// Sum over the counting product A*B via dense expansion (small only).
inline std::int64_t ref_product_sum(const Csr& a, const Csr& b) {
  std::int64_t sum = 0;
  for (vidx_t r = 0; r < a.nrows; ++r) {
    for (const vidx_t k : a.row_cols(r)) {
      sum += b.rowptr[static_cast<std::size_t>(k) + 1] -
             b.rowptr[static_cast<std::size_t>(k)];
    }
  }
  return sum;
}

/// Sum over (A * B^T) .* M via sorted-row dot products (small only).
inline std::int64_t ref_abt_masked_sum(const Csr& a, const Csr& b,
                                       const Csr& m) {
  std::int64_t sum = 0;
  for (vidx_t i = 0; i < m.nrows; ++i) {
    for (const vidx_t j : m.row_cols(i)) {
      const auto ra = a.row_cols(i);
      const auto rb = b.row_cols(j);
      std::size_t p = 0;
      std::size_t q = 0;
      while (p < ra.size() && q < rb.size()) {
        if (ra[p] < rb[q]) {
          ++p;
        } else if (rb[q] < ra[p]) {
          ++q;
        } else {
          ++sum;
          ++p;
          ++q;
        }
      }
    }
  }
  return sum;
}

/// EXPECT float vectors equal element-wise within tol (inf == inf ok).
inline void expect_vectors_near(const std::vector<value_t>& expected,
                                const std::vector<value_t>& actual,
                                double tol = 1e-5) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (std::isinf(expected[i]) || std::isinf(actual[i])) {
      EXPECT_EQ(expected[i], actual[i]) << "at index " << i;
    } else {
      EXPECT_NEAR(expected[i], actual[i], tol) << "at index " << i;
    }
  }
}

}  // namespace bitgb::test
