// Context/Descriptor execution API tests — the concurrent-serving
// contract of the redesign:
//
//   * Context::from_env() is the single, validating environment parser
//     (garbage fails loudly; valid values land in the descriptor);
//   * two Contexts with different kernel variants / thread budgets /
//     backends can run concurrently over ONE shared Graph and produce
//     results bit-identical to serial runs;
//   * the Graph's lazy format caches are safe to hammer from many
//     threads (the dedicated regression test for the pre-redesign
//     unsynchronized `mutable` caches);
//   * a reused Workspace run equals a fresh-allocation run for
//     BFS / PR / CC.
//
// The whole file runs under the ThreadSanitizer CI lane (label
// "context"; BITGB_SANITIZE=thread) — safe concurrent reads of shared
// Graphs are the tentpole's whole claim.
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/msbfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/tc.hpp"
#include "algorithms/workspace.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/parallel.hpp"
#include "sparse/generators.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace bitgb {
namespace {

// ---------------------------------------------------------------------
// Context::from_env — one place, validated (satellite: reject garbage
// with a clear error instead of silently falling back).
// ---------------------------------------------------------------------

/// Scoped setenv: restores the previous value on destruction so the
/// env-sensitive tests compose with the dual env-pinned ctest
/// registrations of the parity/pipeline suites.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    const char* old = std::getenv(name);
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    if (value != nullptr) {
      ::setenv(name, value, 1);
    } else {
      ::unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (had_old_) {
      ::setenv(name_, old_.c_str(), 1);
    } else {
      ::unsetenv(name_);
    }
  }

 private:
  const char* name_;
  bool had_old_ = false;
  std::string old_;
};

TEST(ContextFromEnv, DefaultsWhenUnset) {
  const ScopedEnv v("BITGB_KERNEL_VARIANT", nullptr);
  const ScopedEnv t("BITGB_THREADS", nullptr);
  const ScopedEnv b("BITGB_BACKEND", nullptr);
  const Context ctx = Context::from_env();
  EXPECT_EQ(KernelVariant::kAuto, ctx.variant);
  EXPECT_EQ(0, ctx.threads);
  EXPECT_EQ(Backend::kBit, ctx.backend);
}

TEST(ContextFromEnv, ParsesValidValues) {
  const ScopedEnv v("BITGB_KERNEL_VARIANT", "scalar");
  const ScopedEnv t("BITGB_THREADS", "3");
  const ScopedEnv b("BITGB_BACKEND", "reference");
  const Context ctx = Context::from_env();
  EXPECT_EQ(KernelVariant::kScalar, ctx.variant);
  EXPECT_EQ(3, ctx.threads);
  EXPECT_EQ(Backend::kReference, ctx.backend);
}

TEST(ContextFromEnv, RejectsGarbageVariant) {
  const ScopedEnv v("BITGB_KERNEL_VARIANT", "turbo");
  EXPECT_THROW((void)Context::from_env(), std::invalid_argument);
}

TEST(ContextFromEnv, RejectsGarbageThreads) {
  for (const char* bad : {"0", "-4", "2x", "", "four", "99999"}) {
    const ScopedEnv t("BITGB_THREADS", bad);
    EXPECT_THROW((void)Context::from_env(), std::invalid_argument)
        << "BITGB_THREADS=" << bad;
  }
}

TEST(ContextFromEnv, RejectsGarbageBackend) {
  const ScopedEnv b("BITGB_BACKEND", "gpu");
  EXPECT_THROW((void)Context::from_env(), std::invalid_argument);
}

TEST(ContextFromEnv, ErrorNamesVariableAndValue) {
  const ScopedEnv v("BITGB_KERNEL_VARIANT", "turbo");
  try {
    (void)Context::from_env();
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(std::string::npos, msg.find("BITGB_KERNEL_VARIANT"));
    EXPECT_NE(std::string::npos, msg.find("turbo"));
  }
}

TEST(Context, FluentCopiesCompose) {
  KernelTimeSink sink;
  const Context ctx = Context{}
                          .with_backend(Backend::kReference)
                          .with_variant(KernelVariant::kScalar)
                          .with_threads(2)
                          .with_timer(&sink)
                          .with_seed(99);
  EXPECT_EQ(Backend::kReference, ctx.backend);
  EXPECT_EQ(KernelVariant::kScalar, ctx.variant);
  EXPECT_EQ(2, ctx.threads);
  EXPECT_EQ(&sink, ctx.timer);
  EXPECT_EQ(99u, ctx.seed);
  const Exec e = ctx.exec();
  EXPECT_EQ(KernelVariant::kScalar, e.variant);
  EXPECT_EQ(2, e.threads);
  // The original is untouched — descriptors are values.
  EXPECT_EQ(Backend::kBit, Context{}.backend);
}

// ---------------------------------------------------------------------
// Lazy multi-format Graph: introspection, prewarm, and the 8-thread
// cache-hammer regression test.
// ---------------------------------------------------------------------

TEST(GraphFormats, LazyMaterializationIsObservable) {
  const gb::Graph g = gb::Graph::from_coo(gen_rmat(8, 1500, 5));
  EXPECT_EQ(gb::kFmtCsr, g.formats());  // only the CSR exists up front
  (void)g.adjacency_t();
  EXPECT_EQ(gb::kFmtCsr | gb::kFmtCsrT, g.formats());
  (void)g.packed();
  EXPECT_TRUE(g.formats() & gb::kFmtB2sr);
  EXPECT_FALSE(g.formats() & gb::kFmtB2srT);
}

TEST(GraphFormats, PrewarmMaterializesRequestedSet) {
  const gb::Graph g = gb::Graph::from_coo(gen_rmat(8, 1500, 6));
  g.prewarm(gb::kBitFormats);
  EXPECT_EQ(gb::kBitFormats, g.formats() & gb::kBitFormats);
  g.prewarm(gb::kAllFormats);
  EXPECT_EQ(gb::kAllFormats, g.formats());
}

TEST(GraphFormats, TileDimIsLazyAndStable) {
  gb::GraphOptions opts;  // tile_dim = 0: sampling advisor decides
  const gb::Graph g = gb::Graph::from_coo(gen_banded(512, 6, 0.8, 7), opts);
  const int d1 = g.tile_dim();
  EXPECT_TRUE(d1 == 4 || d1 == 8 || d1 == 16 || d1 == 32);
  EXPECT_EQ(d1, g.tile_dim());  // decided once
}

// The dedicated regression test for the pre-redesign data race:
// adjacency_t() and friends mutated unsynchronized `mutable` members on
// first call.  Hammer every lazy accessor of ONE shared const Graph
// from 8 threads; under the TSan lane any residual race is fatal, and
// in every build the views must agree across threads.
TEST(GraphFormats, ConcurrentLazyMaterializationIsSafe) {
  const gb::Graph g = gb::Graph::from_coo(gen_rmat(10, 12000, 8));
  constexpr int kThreads = 8;
  std::atomic<int> barrier{0};
  std::vector<eidx_t> t_nnz(kThreads, 0);
  std::vector<vidx_t> tiles(kThreads, 0);
  std::vector<int> dims(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Rough rendezvous so the first calls really do collide.
      barrier.fetch_add(1);
      while (barrier.load() < kThreads) {
      }
      dims[static_cast<std::size_t>(t)] = g.tile_dim();
      t_nnz[static_cast<std::size_t>(t)] =
          g.adjacency_t().nnz() + g.unit_adjacency().nnz() +
          g.unit_adjacency_t().nnz() + g.lower().nnz() +
          static_cast<eidx_t>(g.degrees().size());
      tiles[static_cast<std::size_t>(t)] = g.packed().nnz_tiles() +
                                           g.packed_t().nnz_tiles() +
                                           g.packed_lower().nnz_tiles();
      (void)g.formats();
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(dims[0], dims[static_cast<std::size_t>(t)]);
    EXPECT_EQ(t_nnz[0], t_nnz[static_cast<std::size_t>(t)]);
    EXPECT_EQ(tiles[0], tiles[static_cast<std::size_t>(t)]);
  }
  EXPECT_EQ(gb::kAllFormats, g.formats());
}

// ---------------------------------------------------------------------
// Concurrent Contexts over one shared Graph — the serving contract.
// ---------------------------------------------------------------------

// Serial ground truth, then 8 concurrent workers with DIFFERENT
// descriptors (variants scalar/simd, thread budgets 1/2, both backends)
// over the same Graph.  Every concurrent result must be bit-identical
// to the serial result of the same backend.
TEST(ConcurrentContexts, MixedDescriptorsMatchSerialRuns) {
  const gb::Graph g = gb::Graph::from_coo(gen_rmat(10, 12000, 9));
  g.prewarm(gb::kAllFormats);
  const vidx_t src = 1;

  const Context serial_bit = Context{}.with_threads(1);
  const Context serial_ref = serial_bit.with_backend(Backend::kReference);
  const auto bfs_bit = algo::bfs(serial_bit, g, {src});
  const auto bfs_ref = algo::bfs(serial_ref, g, {src});
  const auto pr_bit = algo::pagerank(serial_bit, g);
  const auto cc_bit = algo::connected_components(serial_bit, g);
  const auto sssp_ref = algo::sssp(serial_ref, g, {src});

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      // Every worker gets a distinct descriptor mix.
      KernelTimeSink sink;  // per-query sink: no shared accumulator
      const Context ctx =
          Context{}
              .with_variant(t % 2 == 0 ? KernelVariant::kSimd
                                       : KernelVariant::kScalar)
              .with_threads(1 + t % 2)
              .with_timer(&sink);
      for (int rep = 0; rep < 3; ++rep) {
        if (t % 4 == 3) {
          // Reference-backend worker among bit-backend workers.
          const auto r =
              algo::sssp(ctx.with_backend(Backend::kReference), g, {src});
          if (r.dist != sssp_ref.dist) failures.fetch_add(1);
          continue;
        }
        const auto b = algo::bfs(ctx, g, {src});
        if (b.levels != bfs_bit.levels) failures.fetch_add(1);
        const auto p = algo::pagerank(ctx, g);
        if (p.rank != pr_bit.rank) failures.fetch_add(1);
        const auto c = algo::connected_components(ctx, g);
        if (c.component != cc_bit.component) failures.fetch_add(1);
      }
      if (sink.ms() < 0.0) failures.fetch_add(1);  // sink stays sane
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(0, failures.load());
  // And the two backends agree with each other on the Boolean result.
  EXPECT_EQ(bfs_ref.levels, bfs_bit.levels);
}

// A cold Graph shared by concurrent queries: the first queries trigger
// the lazy packing themselves, racing the caches through real
// algorithm entry points (not just accessors).
TEST(ConcurrentContexts, ColdGraphFirstQueriesRaceSafely) {
  const gb::Graph g = gb::Graph::from_coo(gen_banded(2048, 8, 0.7, 10));
  const Context serial = Context{}.with_threads(1);

  constexpr int kThreads = 8;
  std::vector<algo::BfsResult> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      const Context ctx = Context{}.with_threads(1).with_variant(
          t % 2 == 0 ? KernelVariant::kScalar : KernelVariant::kSimd);
      results[static_cast<std::size_t>(t)] =
          algo::bfs(ctx, g, {static_cast<vidx_t>(t)});
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 0; t < kThreads; ++t) {
    const auto serial_res = algo::bfs(serial, g, {static_cast<vidx_t>(t)});
    EXPECT_EQ(serial_res.levels, results[static_cast<std::size_t>(t)].levels)
        << "source " << t;
  }
}

// ---------------------------------------------------------------------
// Workspace reuse == fresh allocation (satellite: BFS / PR / CC).
// ---------------------------------------------------------------------

TEST(Workspace, ReusedRunsEqualFreshRuns) {
  const gb::Graph g = gb::Graph::from_coo(gen_rmat(9, 6000, 11));
  for (const Backend backend : {Backend::kBit, Backend::kReference}) {
    const Context ctx = Context{}.with_backend(backend);
    algo::Workspace ws;
    algo::BfsResult bfs_out;
    algo::PageRankResult pr_out;
    algo::CcResult cc_out;
    // Several rounds through ONE workspace and ONE result buffer set —
    // dirty scratch from round k must not leak into round k+1, and
    // sources change between rounds.
    for (int round = 0; round < 3; ++round) {
      const auto src = static_cast<vidx_t>(round * 7);
      algo::bfs(ctx, g, {src}, ws, bfs_out);
      EXPECT_EQ(algo::bfs(ctx, g, {src}).levels, bfs_out.levels)
          << backend_name(backend) << " round " << round;
      algo::pagerank(ctx, g, {}, ws, pr_out);
      EXPECT_EQ(algo::pagerank(ctx, g).rank, pr_out.rank)
          << backend_name(backend) << " round " << round;
      algo::connected_components(ctx, g, {}, ws, cc_out);
      EXPECT_EQ(algo::connected_components(ctx, g).component,
                cc_out.component)
          << backend_name(backend) << " round " << round;
    }
  }
}

TEST(Workspace, SurvivesGraphAndDimChanges) {
  // One workspace reused across graphs with different tile dims: the
  // typed slots re-materialize on the type change instead of reading
  // stale buffers.
  algo::Workspace ws;
  algo::BfsResult out;
  const Context ctx;
  for (const int dim : {4, 32, 8}) {
    gb::GraphOptions opts;
    opts.tile_dim = dim;
    const gb::Graph g =
        gb::Graph::from_coo(gen_banded(300 + dim, 5, 0.8, dim), opts);
    algo::bfs(ctx, g, {0}, ws, out);
    EXPECT_EQ(algo::bfs_gold(g.adjacency(), 0), out.levels) << dim;
  }
}

TEST(Workspace, MsBfsAndSeededAlgosReuse) {
  const gb::Graph g = gb::Graph::from_coo(gen_road(24, 24, 0.02, 12));
  const Context ctx = Context{}.with_seed(1234);
  algo::Workspace ws;
  algo::MsBfsResult ms_out;
  const std::vector<vidx_t> sources{0, 5, 100, g.num_vertices() - 1};
  for (int round = 0; round < 2; ++round) {
    algo::msbfs(ctx, g, {sources}, ws, ms_out);
    EXPECT_EQ(algo::msbfs(ctx, g, {sources}).levels, ms_out.levels);
  }
  // Seed rides in the Context: same seed -> same MIS, different seed
  // may differ but must stay valid.
  const auto m1 = algo::maximal_independent_set(ctx, g);
  const auto m2 = algo::maximal_independent_set(ctx, g);
  EXPECT_EQ(m1.in_set, m2.in_set);
  EXPECT_TRUE(algo::is_valid_mis(g.adjacency(), m1.in_set));
  const auto m3 =
      algo::maximal_independent_set(ctx.with_seed(777), g);
  EXPECT_TRUE(algo::is_valid_mis(g.adjacency(), m3.in_set));
}

}  // namespace
}  // namespace bitgb
