// Unit tests for the portable bit intrinsics (platform/intrinsics.hpp).
#include "platform/intrinsics.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

namespace bitgb {
namespace {

TEST(Intrinsics, PopcountMatchesManualCount) {
  std::mt19937_64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto w = static_cast<std::uint32_t>(rng());
    int manual = 0;
    for (int b = 0; b < 32; ++b) manual += static_cast<int>((w >> b) & 1u);
    EXPECT_EQ(manual, popcount(w));
  }
}

TEST(Intrinsics, PopcountAllWidths) {
  EXPECT_EQ(0, popcount<std::uint8_t>(0));
  EXPECT_EQ(8, popcount<std::uint8_t>(0xFF));
  EXPECT_EQ(16, popcount<std::uint16_t>(0xFFFF));
  EXPECT_EQ(32, popcount<std::uint32_t>(0xFFFFFFFFu));
  EXPECT_EQ(64, popcount<std::uint64_t>(~std::uint64_t{0}));
  EXPECT_EQ(1, popcount<std::uint32_t>(0x80000000u));
}

TEST(Intrinsics, BrevIsInvolution) {
  std::mt19937_64 rng(2);
  for (int i = 0; i < 1000; ++i) {
    const auto w = static_cast<std::uint32_t>(rng());
    EXPECT_EQ(w, brev(brev(w)));
  }
}

TEST(Intrinsics, BrevMapsBitIToOppositeEnd) {
  for (int i = 0; i < 32; ++i) {
    const std::uint32_t w = 1u << i;
    EXPECT_EQ(1u << (31 - i), brev(w));
  }
  // 8-bit width reverses within 8 bits.
  EXPECT_EQ(std::uint8_t{0x80}, brev<std::uint8_t>(0x01));
  EXPECT_EQ(std::uint8_t{0x01}, brev<std::uint8_t>(0x80));
}

TEST(Intrinsics, BrevLowReversesOnlyLowBits) {
  // 4-bit nibble reversal: 0b0001 -> 0b1000.
  EXPECT_EQ(std::uint8_t{0b1000}, brev_low<std::uint8_t>(0b0001, 4));
  EXPECT_EQ(std::uint8_t{0b0101}, brev_low<std::uint8_t>(0b1010, 4));
  // Full-width brev_low equals brev.
  std::mt19937_64 rng(3);
  for (int i = 0; i < 100; ++i) {
    const auto w = static_cast<std::uint16_t>(rng());
    EXPECT_EQ(brev(w), brev_low(w, 16));
  }
}

TEST(Intrinsics, BrevLowIsInvolutionWithinWidth) {
  // brev_low must be its own inverse for every sub-width — the nibble
  // packing relies on this for the 4-bit rows.
  std::mt19937_64 rng(5);
  for (const int k : {1, 4, 7, 8, 12, 16}) {
    for (int i = 0; i < 200; ++i) {
      const auto w = static_cast<std::uint16_t>(
          rng() & low_mask<std::uint16_t>(k));
      EXPECT_EQ(w, brev_low(brev_low(w, k), k)) << "width " << k;
    }
  }
}

TEST(Intrinsics, ClzCtz) {
  EXPECT_EQ(32, clz<std::uint32_t>(0));
  EXPECT_EQ(32, ctz<std::uint32_t>(0));
  EXPECT_EQ(31, clz<std::uint32_t>(1));
  EXPECT_EQ(0, ctz<std::uint32_t>(1));
  EXPECT_EQ(0, clz<std::uint32_t>(0x80000000u));
  EXPECT_EQ(31, ctz<std::uint32_t>(0x80000000u));
}

TEST(Intrinsics, GetSetBit) {
  std::uint32_t w = 0;
  w = set_bit(w, 0);
  w = set_bit(w, 31);
  w = set_bit(w, 7);
  EXPECT_EQ(1u, get_bit(w, 0));
  EXPECT_EQ(1u, get_bit(w, 31));
  EXPECT_EQ(1u, get_bit(w, 7));
  EXPECT_EQ(0u, get_bit(w, 15));
  EXPECT_EQ(3, popcount(w));
}

TEST(Intrinsics, LowMask) {
  EXPECT_EQ(0u, low_mask<std::uint32_t>(0));
  EXPECT_EQ(0x7u, low_mask<std::uint32_t>(3));
  EXPECT_EQ(0xFFFFFFFFu, low_mask<std::uint32_t>(32));
  EXPECT_EQ(std::uint8_t{0x0F}, low_mask<std::uint8_t>(4));
  EXPECT_EQ(std::uint8_t{0xFF}, low_mask<std::uint8_t>(8));
}

TEST(Intrinsics, ForEachSetBitVisitsExactlySetBitsInOrder) {
  const std::uint32_t w = 0x80000401u;  // bits 0, 10, 31
  std::vector<int> seen;
  for_each_set_bit(w, [&](int b) { seen.push_back(b); });
  EXPECT_EQ((std::vector<int>{0, 10, 31}), seen);
}

TEST(Intrinsics, ForEachSetBitEmptyAndFull) {
  int count = 0;
  for_each_set_bit<std::uint16_t>(0, [&](int) { ++count; });
  EXPECT_EQ(0, count);
  for_each_set_bit<std::uint16_t>(0xFFFF, [&](int) { ++count; });
  EXPECT_EQ(16, count);
}

TEST(Intrinsics, ForEachSetBitMatchesPopcount) {
  std::mt19937_64 rng(4);
  for (int i = 0; i < 500; ++i) {
    const auto w = static_cast<std::uint64_t>(rng());
    int count = 0;
    for_each_set_bit(w, [&](int b) {
      EXPECT_EQ(1u, get_bit(w, b));
      ++count;
    });
    EXPECT_EQ(popcount(w), count);
  }
}

}  // namespace
}  // namespace bitgb
