// Randomized property tests: format and kernel invariants checked over
// many random matrices (seed-parameterized, deterministic).  These
// complement the targeted unit tests with breadth — every invariant
// here is one the rest of the library silently relies on.
#include "baseline/csrgemm.hpp"
#include "baseline/csrmv.hpp"
#include "core/bit_spgemm.hpp"
#include "core/bmm.hpp"
#include "core/bmv.hpp"
#include "core/pack.hpp"
#include "core/sampling.hpp"
#include "core/stats.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>

namespace bitgb {
namespace {

// One random matrix per (seed); shapes and densities vary with it too.
Csr random_matrix(std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  const vidx_t n = 16 + static_cast<vidx_t>(rng() % 150);
  const double density = std::pow(10.0, -3.0 + 2.5 * (rng() % 1000) / 1000.0);
  const auto nnz = static_cast<eidx_t>(
      density * static_cast<double>(n) * static_cast<double>(n));
  switch (rng() % 4) {
    case 0: return coo_to_csr(gen_random(n, nnz, seed));
    case 1: return coo_to_csr(gen_banded(n, 1 + static_cast<vidx_t>(rng() % 9),
                                         0.3 + 0.6 * (rng() % 100) / 100.0,
                                         seed));
    case 2: return coo_to_csr(gen_stripe(n, 1 + static_cast<int>(rng() % 4),
                                         0.5, seed));
    default: return coo_to_csr(gen_hybrid(n, seed));
  }
}

class PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PropertyTest, PackUnpackIsIdentityForAllDims) {
  const Csr m = random_matrix(static_cast<std::uint64_t>(GetParam()));
  for (const int dim : kTileDims) {
    const B2srAny b = pack_any(m, dim);
    EXPECT_TRUE(b.visit([](const auto& t) { return t.validate(); }));
    const Csr back = unpack_any(b);
    EXPECT_EQ(m.rowptr, back.rowptr) << "dim " << dim;
    EXPECT_EQ(m.colind, back.colind) << "dim " << dim;
  }
}

TEST_P(PropertyTest, NnzIsFormatInvariant) {
  const Csr m = random_matrix(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (const int dim : kTileDims) {
    EXPECT_EQ(m.nnz(), pack_any(m, dim).nnz()) << "dim " << dim;
  }
}

TEST_P(PropertyTest, TransposeCommutesWithPacking) {
  const Csr m = random_matrix(static_cast<std::uint64_t>(GetParam()) + 2000);
  for (const int dim : {8, 32}) {
    const Csr via_csr = unpack_any(pack_any(transpose(m), dim));
    const Csr via_b2sr = unpack_any(transpose_any(pack_any(m, dim)));
    EXPECT_EQ(via_csr.colind, via_b2sr.colind) << "dim " << dim;
  }
}

TEST_P(PropertyTest, BmvAgreesWithCsrmvOnBinaryMatrices) {
  const Csr m = random_matrix(static_cast<std::uint64_t>(GetParam()) + 3000);
  const auto x = test::random_vector(m.ncols, 0.4, 1);
  std::vector<value_t> y_ref;
  baseline::csrmv(m, x, y_ref);
  for (const int dim : kTileDims) {
    dispatch_tile_dim(dim, [&]<int Dim>() {
      std::vector<value_t> y;
      bmv_bin_full_full<Dim, PlusTimesOp>(pack_from_csr<Dim>(m), x, y);
      test::expect_vectors_near(y_ref, y, 1e-2);
      return 0;
    });
  }
}

TEST_P(PropertyTest, BooleanProductPatternEqualsCountingSupport) {
  // bit_spgemm (Boolean) must have exactly the support of the counting
  // product, and bmm_bin_bin_sum must equal the counting product's
  // total mass.
  const Csr m = random_matrix(static_cast<std::uint64_t>(GetParam()) + 4000);
  const Csr ref = baseline::csrgemm(m, m);
  double mass = 0.0;
  for (const value_t v : ref.val) mass += v;
  dispatch_tile_dim(8, [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(m);
    EXPECT_EQ(static_cast<std::int64_t>(std::llround(mass)),
              bmm_bin_bin_sum(a, a));
    const Csr boolean = unpack_to_csr(bit_spgemm(a, a));
    EXPECT_EQ(ref.rowptr, boolean.rowptr);
    EXPECT_EQ(ref.colind, boolean.colind);
    return 0;
  });
}

TEST_P(PropertyTest, CompressionBoundsHold) {
  // The format can never beat the information bound of its tiles and
  // the sampler's full-sample estimate must match the packer exactly.
  const Csr m = random_matrix(static_cast<std::uint64_t>(GetParam()) + 5000);
  if (m.nnz() == 0) return;
  const auto fps = all_footprints(m);
  const SamplingProfile prof = sample_profile(m, m.nrows, 9);
  for (int i = 0; i < kNumTileDims; ++i) {
    const auto& fp = fps[static_cast<std::size_t>(i)];
    // At least 1 word per dim rows of a non-empty tile.
    EXPECT_GT(fp.b2sr_bytes, 0u);
    EXPECT_NEAR(
        fp.compression_pct,
        prof.per_dim[static_cast<std::size_t>(i)].est_compression_pct, 0.05);
  }
}

TEST_P(PropertyTest, MaskedBmmIsSubsetOfUnmaskedMass) {
  const Csr m = random_matrix(static_cast<std::uint64_t>(GetParam()) + 6000);
  const Csr l = lower_triangle(m);
  dispatch_tile_dim(16, [&]<int Dim>() {
    const B2srT<Dim> lb = pack_from_csr<Dim>(l);
    const std::int64_t masked = bmm_bin_bin_sum_masked(lb, lb, lb);
    // The masked sum counts a subset of (L*L^T)'s entries; the full
    // product mass of L*L^T equals sum over t colcount_t(L)^2.
    std::vector<std::int64_t> colcount(static_cast<std::size_t>(l.ncols), 0);
    for (const vidx_t c : l.colind) ++colcount[static_cast<std::size_t>(c)];
    std::int64_t full = 0;
    for (const std::int64_t c : colcount) full += c * c;
    EXPECT_LE(masked, full);
    EXPECT_GE(masked, 0);
    return 0;
  });
}

TEST_P(PropertyTest, NibblePackingAgreesWithPlainB2sr4) {
  // The nibble form is an alternate encoding of the same tiles: both
  // construction paths (direct from CSR, via B2SR-4) must agree, and
  // the round trip back to B2SR-4 must be exact.
  const Csr m = random_matrix(static_cast<std::uint64_t>(GetParam()) + 7000);
  const B2sr4 b = pack_from_csr<4>(m);
  const NibbleB2sr4 direct = pack_nibble4(m);
  const NibbleB2sr4 via = to_nibble4(b);
  EXPECT_EQ(direct.tile_rowptr, via.tile_rowptr);
  EXPECT_EQ(direct.tile_colind, via.tile_colind);
  EXPECT_EQ(direct.bytes, via.bytes);
  const B2sr4 back = from_nibble4(direct);
  EXPECT_EQ(b.bits, back.bits);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range(0, 12),
                         [](const auto& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace bitgb
