// Sampling-profiler tests — Algorithm 1's estimate must track the exact
// packer closely enough to pick sane tile sizes.
#include "core/sampling.hpp"
#include "core/stats.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

TEST(Sampling, FullSampleReproducesExactFootprints) {
  // Sampling every row covers every tile-row window, so the estimator
  // must reproduce the exact packer's tile count and byte size.
  for (const auto& [name, m] : test::small_matrices_cached()) {
    if (m.nnz() == 0) continue;
    const SamplingProfile prof = sample_profile(m, m.nrows, 1);
    const auto exact = all_footprints(m);
    for (int i = 0; i < kNumTileDims; ++i) {
      const auto& e = prof.per_dim[static_cast<std::size_t>(i)];
      const auto& x = exact[static_cast<std::size_t>(i)];
      EXPECT_NEAR(static_cast<double>(x.nonempty_tiles), e.est_nonempty_tiles,
                  1e-6)
          << name << " dim " << kTileDims[i];
      EXPECT_NEAR(x.compression_pct, e.est_compression_pct, 0.05)
          << name << " dim " << kTileDims[i];
    }
  }
}

TEST(Sampling, SubsampleIsDeterministicPerSeed) {
  const Csr m = coo_to_csr(gen_random(500, 5000, 2));
  const SamplingProfile a = sample_profile(m, 50, 7);
  const SamplingProfile b = sample_profile(m, 50, 7);
  for (int i = 0; i < kNumTileDims; ++i) {
    EXPECT_DOUBLE_EQ(a.per_dim[static_cast<std::size_t>(i)].est_compression_pct,
                     b.per_dim[static_cast<std::size_t>(i)].est_compression_pct);
  }
}

TEST(Sampling, RecommendedDimMatchesNearOptimal) {
  // On a strongly structured matrix the sampler's pick must be within
  // 1.5x of the true optimum's byte size.
  const Csr m = coo_to_csr(gen_banded(1024, 8, 0.9, 3));
  const SamplingProfile prof = sample_profile(m, m.nrows, 4);
  const auto exact = all_footprints(m);
  std::size_t best = SIZE_MAX;
  std::size_t picked = 0;
  for (const auto& fp : exact) {
    best = std::min(best, fp.b2sr_bytes);
    if (fp.dim == prof.recommended_dim()) picked = fp.b2sr_bytes;
  }
  EXPECT_LE(static_cast<double>(picked), 1.5 * static_cast<double>(best));
}

TEST(Sampling, WorthConvertingSaysYesForDenseBand) {
  const Csr m = coo_to_csr(gen_banded(512, 16, 1.0, 5));
  EXPECT_TRUE(sample_profile(m, 128, 6).worth_converting());
}

TEST(Sampling, ScatterExpandsAtLargeTilesCompressesAtSmall) {
  // 1 nnz per row scattered: at dim 32 every nonzero drags in a whole
  // 128-byte tile (massive expansion — the §III-C caveat); at dim 4 the
  // 4-byte tile still beats the 4-byte float value plus index overhead.
  const Csr m = coo_to_csr(gen_random(4096, 4096, 7));
  const SamplingProfile prof = sample_profile(m, 512, 8);
  EXPECT_GT(prof.per_dim[3].est_compression_pct, 100.0);  // dim 32
  EXPECT_LT(prof.per_dim[0].est_compression_pct, 100.0);  // dim 4
  EXPECT_EQ(4, prof.recommended_dim());
}

TEST(Sampling, SampleCountIsRespected) {
  const Csr m = coo_to_csr(gen_random(300, 2000, 9));
  EXPECT_EQ(40, sample_profile(m, 40, 10).rows_sampled);
  EXPECT_EQ(300, sample_profile(m, 4000, 11).rows_sampled);  // clamped
}

TEST(Sampling, OccupancyEstimateIsPlausible) {
  const Csr m = coo_to_csr(gen_banded(256, 4, 1.0, 12));
  const SamplingProfile prof = sample_profile(m, m.nrows, 13);
  for (const auto& e : prof.per_dim) {
    EXPECT_GT(e.est_occupancy_pct, 0.0);
    EXPECT_LE(e.est_occupancy_pct, 110.0);  // rough estimate, near <=100
  }
}

}  // namespace
}  // namespace bitgb
