// Regression tests for the shared worker pool and the atomic helpers
// (src/platform/parallel.*).
//
// The pool tests call detail::pool_run directly: parallel_for guards
// empty ranges itself, but pool_run is an exported entry point and an
// inverted range used to drive the participant accounting negative and
// hang the caller forever on done_cv_ (the ctest TIMEOUT would fire).
#include "platform/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace bitgb {
namespace {

struct SumCtx {
  std::atomic<std::int64_t> sum{0};
  std::atomic<std::int64_t> calls{0};
};

void sum_body(const void* ctx, std::int64_t lo, std::int64_t hi) {
  auto* c = const_cast<SumCtx*>(static_cast<const SumCtx*>(ctx));
  std::int64_t s = 0;
  for (std::int64_t i = lo; i < hi; ++i) s += i;
  c->sum.fetch_add(s, std::memory_order_relaxed);
  c->calls.fetch_add(1, std::memory_order_relaxed);
}

TEST(PoolRun, InvertedRangeReturnsImmediately) {
  // end < begin: must be a no-op, not a negative-participant hang.
  SumCtx c;
  detail::pool_run(10, 0, 4, sum_body, &c, 4);
  EXPECT_EQ(0, c.sum.load());
  EXPECT_EQ(0, c.calls.load());
}

TEST(PoolRun, EmptyRangeReturnsImmediately) {
  SumCtx c;
  detail::pool_run(5, 5, 4, sum_body, &c, 4);
  EXPECT_EQ(0, c.sum.load());
  EXPECT_EQ(0, c.calls.load());
}

TEST(PoolRun, InvertedRangeDoesNotPoisonLaterJobs) {
  // A discarded job must leave the pool able to run real work (the old
  // failure mode left busy_ negative, wedging every later caller).
  SumCtx bad;
  detail::pool_run(100, -100, 8, sum_body, &bad, 8);
  SumCtx good;
  detail::pool_run(0, 1000, 16, sum_body, &good, 8);
  EXPECT_EQ(1000 * 999 / 2, good.sum.load());
}

TEST(PoolRun, SingleElementRange) {
  SumCtx c;
  detail::pool_run(7, 8, 4, sum_body, &c, 4);
  EXPECT_EQ(7, c.sum.load());
  EXPECT_EQ(1, c.calls.load());
}

TEST(PoolRun, CoversRangeExactlyOnce) {
  for (const int width : {1, 2, 4, 16}) {
    SumCtx c;
    detail::pool_run(0, 4097, 64, sum_body, &c, width);
    EXPECT_EQ(static_cast<std::int64_t>(4097) * 4096 / 2, c.sum.load())
        << "width " << width;
  }
}

TEST(ParallelFor, InvertedRangeIsANoOp) {
  std::atomic<int> hits{0};
  parallel_for(4, 10, 0, [&](int) { hits.fetch_add(1); });
  EXPECT_EQ(0, hits.load());
}

TEST(AtomicOrU32, ConcurrentOrsAllLand) {
  // 32 threads OR one distinct bit each into the same word; every bit
  // must survive (the old reinterpret_cast version worked by accident,
  // the atomic_ref version works by contract — TSan runs this too).
  std::uint32_t word = 0;
  std::vector<std::thread> ts;
  for (int b = 0; b < 32; ++b) {
    ts.emplace_back([&word, b] {
      for (int rep = 0; rep < 1000; ++rep) {
        atomic_or_u32(&word, std::uint32_t{1} << b);
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(0xffffffffu, word);
}

TEST(AtomicOrU32, UnderParallelForFrontierScatter) {
  // The real usage shape: parallel region scattering frontier bits into
  // shared packed words.
  std::vector<std::uint32_t> words(64, 0);
  parallel_for(0, 64 * 32, [&](int i) {
    atomic_or_u32(&words[static_cast<std::size_t>(i / 32)],
                  std::uint32_t{1} << (i % 32));
  });
  for (const auto w : words) EXPECT_EQ(0xffffffffu, w);
}

}  // namespace
}  // namespace bitgb
