// SIMD/scalar parity: every vectorized kernel must be bit-for-bit
// identical to the scalar fallback — over the small_matrices() oracle
// corpus plus randomized tail-dim graphs (sizes deliberately not
// multiples of any tile dim), at all four tile dims, against both the
// pull BMV kernels, both BMM sums, and the FrontierBatch pull/push
// kernels.  All reductions are integer (OR / popcount-add), so the
// comparison is exact equality, not tolerance.
//
// ctest runs this binary twice, under both BITGB_KERNEL_VARIANT
// values.  Kernels no longer read the environment (variants arrive
// per call via Exec/Context), so the pair is an env-invariance
// regression: ambient env must not change any result.
#include "core/bmm.hpp"
#include "core/bmv.hpp"
#include "core/frontier_batch.hpp"
#include "core/pack.hpp"
#include "platform/device_profile.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <utility>
#include <vector>

namespace bitgb {
namespace {

/// Randomized graphs with awkward tail dims (none a multiple of 4),
/// spanning sparse to dense tiles so every SIMD inner-loop branch
/// (multi-tile batches, tails, dense-mask vector path, sparse-mask
/// scalar path) executes.
const std::vector<std::pair<std::string, Csr>>& fuzz_graphs() {
  static const auto graphs = [] {
    std::vector<std::pair<std::string, Csr>> out;
    out.emplace_back("fuzz_random_157", coo_to_csr(gen_random(157, 2500, 71)));
    out.emplace_back("fuzz_random_dense_83",
                     coo_to_csr(gen_random(83, 3400, 72)));
    out.emplace_back("fuzz_banded_203", coo_to_csr(gen_banded(203, 11, 0.7, 73)));
    out.emplace_back("fuzz_stripe_149", coo_to_csr(gen_stripe(149, 5, 0.6, 74)));
    out.emplace_back("fuzz_rmat_s7", coo_to_csr(gen_rmat(7, 1100, 75)));
    out.emplace_back("fuzz_road_9x13", coo_to_csr(gen_road(9, 13, 0.05, 76)));
    return out;
  }();
  return graphs;
}

const std::pair<std::string, Csr>& parity_matrix(int mi) {
  if (mi < test::kSmallMatrixCount) return test::small_matrix(mi);
  return fuzz_graphs().at(
      static_cast<std::size_t>(mi - test::kSmallMatrixCount));
}

const int kParityMatrixCount =
    test::kSmallMatrixCount + static_cast<int>(fuzz_graphs().size());

class SimdParityTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int dim() const { return std::get<0>(GetParam()); }
  const Csr& csr() const { return parity_matrix(std::get<1>(GetParam())).second; }
  std::string name() const {
    return parity_matrix(std::get<1>(GetParam())).first + "/dim" +
           std::to_string(dim());
  }

  template <int Dim>
  PackedVecT<Dim> random_packed(vidx_t n, std::uint64_t seed,
                                double density) const {
    PackedVecT<Dim> v(n);
    std::mt19937_64 rng(seed);
    std::bernoulli_distribution on(density);
    for (vidx_t i = 0; i < n; ++i) {
      if (on(rng)) v.set(i);
    }
    return v;
  }

  FrontierBatch random_batch(vidx_t n, int batch, std::uint64_t seed,
                             double density) const {
    FrontierBatch f(n, batch);
    std::mt19937_64 rng(seed);
    std::bernoulli_distribution on(density);
    for (vidx_t v = 0; v < n; ++v) {
      for (int b = 0; b < batch; ++b) {
        if (on(rng)) f.set(v, b);
      }
    }
    return f;
  }
};

TEST_P(SimdParityTest, BmvBinBinBin) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const auto a = pack_from_csr<Dim>(csr());
    for (const double density : {0.05, 0.5, 0.95}) {
      const auto x = random_packed<Dim>(a.ncols, 11 + dim(), density);
      PackedVecT<Dim> ys, yv;
      bmv_bin_bin_bin(a, x, ys, KernelVariant::kScalar);
      bmv_bin_bin_bin(a, x, yv, KernelVariant::kSimd);
      EXPECT_EQ(ys.words, yv.words) << name() << " density " << density;
    }
  });
}

TEST_P(SimdParityTest, BmvBinBinBinMasked) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const auto a = pack_from_csr<Dim>(csr());
    const auto x = random_packed<Dim>(a.ncols, 13 + dim(), 0.4);
    const auto mask = random_packed<Dim>(a.nrows, 17 + dim(), 0.5);
    for (const bool complement : {false, true}) {
      PackedVecT<Dim> ys, yv;
      bmv_bin_bin_bin_masked(a, x, mask, complement, ys,
                             KernelVariant::kScalar);
      bmv_bin_bin_bin_masked(a, x, mask, complement, yv,
                             KernelVariant::kSimd);
      EXPECT_EQ(ys.words, yv.words) << name() << " complement " << complement;
    }
  });
}

TEST_P(SimdParityTest, BmvBinBinFull) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const auto a = pack_from_csr<Dim>(csr());
    for (const double density : {0.1, 0.9}) {
      const auto x = random_packed<Dim>(a.ncols, 19 + dim(), density);
      std::vector<value_t> ys, yv;
      bmv_bin_bin_full(a, x, ys, KernelVariant::kScalar);
      bmv_bin_bin_full(a, x, yv, KernelVariant::kSimd);
      EXPECT_EQ(ys, yv) << name() << " density " << density;
    }
  });
}

TEST_P(SimdParityTest, BmvBinBinFullMasked) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const auto a = pack_from_csr<Dim>(csr());
    const auto x = random_packed<Dim>(a.ncols, 23 + dim(), 0.5);
    const auto mask = random_packed<Dim>(a.nrows, 29 + dim(), 0.3);
    for (const bool complement : {false, true}) {
      std::vector<value_t> ys(static_cast<std::size_t>(a.nrows), -1.0f);
      std::vector<value_t> yv(static_cast<std::size_t>(a.nrows), -1.0f);
      bmv_bin_bin_full_masked(a, x, mask, complement, ys,
                              KernelVariant::kScalar);
      bmv_bin_bin_full_masked(a, x, mask, complement, yv,
                              KernelVariant::kSimd);
      EXPECT_EQ(ys, yv) << name() << " complement " << complement;
    }
  });
}

TEST_P(SimdParityTest, BmmBinBinSum) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const auto a = pack_from_csr<Dim>(csr());
    EXPECT_EQ(bmm_bin_bin_sum(a, a, KernelVariant::kScalar),
              bmm_bin_bin_sum(a, a, KernelVariant::kSimd))
        << name();
  });
}

TEST_P(SimdParityTest, BmmBinBinSumMasked) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const auto a = pack_from_csr<Dim>(csr());
    // Mask = A exercises the sparse-mask scalar path; a dense mask (the
    // full pattern of A*A^T would be big — use A again with itself as
    // both operands) plus the dense fuzz graphs cover the vector path.
    EXPECT_EQ(bmm_bin_bin_sum_masked(a, a, a, KernelVariant::kScalar),
              bmm_bin_bin_sum_masked(a, a, a, KernelVariant::kSimd))
        << name();
  });
}

TEST_P(SimdParityTest, BmmFrontierPull) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const auto a = pack_from_csr<Dim>(csr());
    if (a.ncols == 0) return;
    for (const int batch : {3, 64}) {
      const FrontierBatch f = random_batch(a.ncols, batch, 31 + dim(), 0.3);
      FrontierBatch ns, nv;
      bmm_frontier(a, f, ns, KernelVariant::kScalar);
      bmm_frontier(a, f, nv, KernelVariant::kSimd);
      EXPECT_EQ(ns.rows, nv.rows) << name() << " batch " << batch;

      const FrontierBatch mask = random_batch(a.nrows, batch, 37 + dim(), 0.5);
      FrontierBatch ms, mv;
      bmm_frontier_masked(a, f, mask, true, ms, KernelVariant::kScalar);
      bmm_frontier_masked(a, f, mask, true, mv, KernelVariant::kSimd);
      EXPECT_EQ(ms.rows, mv.rows) << name() << " batch " << batch;
    }
  });
}

TEST_P(SimdParityTest, BmmFrontierPushMatchesPull) {
  // The push kernel is scalar in both variants; assert it still agrees
  // with the (variant-ablated) pull kernel on the same expansion, which
  // pins the two directions together under the SIMD engine.
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const auto a = pack_from_csr<Dim>(csr());
    if (a.nrows == 0) return;
    const auto at = transpose(a);
    const FrontierBatch f = random_batch(a.nrows, 64, 41 + dim(), 0.15);
    const FrontierBatch mask = random_batch(a.ncols, 64, 43 + dim(), 0.5);

    // Pull expansion over A^T == push expansion over A.
    FrontierBatch pull;
    bmm_frontier_masked(at, f, mask, true, pull, KernelVariant::kSimd);

    FrontierBatch push(a.ncols, 64);
    std::vector<vidx_t> active;
    for (vidx_t tr = 0; tr < a.n_tile_rows(); ++tr) active.push_back(tr);
    std::vector<vidx_t> touched;
    bmm_frontier_push_masked(a, f, active, mask, true, push, touched);
    EXPECT_EQ(pull.rows, push.rows) << name();
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllDimsAllMatrices, SimdParityTest,
    ::testing::Combine(::testing::ValuesIn(std::vector<int>{4, 8, 16, 32}),
                       ::testing::Range(0, kParityMatrixCount)));

TEST(SimdEngine, BackendIsRuntimeVerified) {
  // Whatever the build produced, the active backend must be one the
  // host actually supports — active_backend() is CPUID-gated, so just
  // pin the invariants the dispatchers rely on.
  const auto b = simd::active_backend();
  EXPECT_EQ(simd::vector_backend_available(),
            b != simd::Backend::kScalar);
  EXPECT_NE(std::string(simd::backend_name(b)), "?");
}

TEST(SimdEngine, VariantPlumbing) {
  // resolve_kernel_variant is a pure function of its arguments now — no
  // process-wide state to set, observe, or restore.
  EXPECT_EQ(resolve_kernel_variant(KernelVariant::kScalar),
            KernelVariant::kScalar);
  EXPECT_EQ(resolve_kernel_variant(KernelVariant::kSimd),
            KernelVariant::kSimd);
  for (const int dim : {4, 8, 16, 32}) {
    for (const HotKernel k :
         {HotKernel::kBmvBinBinBin, HotKernel::kBmvBinBinFull,
          HotKernel::kBmmBinBinSum, HotKernel::kSpgemmAccum}) {
      // kAuto resolves through the preference table, never to kAuto.
      const KernelVariant r =
          resolve_kernel_variant(KernelVariant::kAuto, k, dim);
      EXPECT_NE(r, KernelVariant::kAuto);
      EXPECT_EQ(r, preferred_variant(k, dim));
      // Explicit pins beat the table.
      EXPECT_EQ(resolve_kernel_variant(KernelVariant::kScalar, k, dim),
                KernelVariant::kScalar);
    }
  }
  // The with_variant profile helper still names the ablation axis.
  EXPECT_EQ(with_variant(pascal_analog(), KernelVariant::kSimd).name,
            "pascal-analog+simd");
}

TEST(SimdEngine, TileStoreIsCacheLineAligned) {
  const auto a =
      pack_from_csr<8>(test::small_matrix_by_name("random_128"));
  ASSERT_FALSE(a.bits.empty());
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.bits.data()) %
                kTileStoreAlign,
            0u);
}

}  // namespace
}  // namespace bitgb
