// Unit tests for the binarized dense vector (core/packed_vector.hpp).
#include "core/packed_vector.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

template <typename T>
class PackedVecTest : public ::testing::Test {};

using AllDims = ::testing::Types<PackedVecT<4>, PackedVecT<8>, PackedVecT<16>,
                                 PackedVecT<32>>;
TYPED_TEST_SUITE(PackedVecTest, AllDims);

TYPED_TEST(PackedVecTest, ResizeAllocatesCeilDivWords) {
  TypeParam v(0);
  EXPECT_EQ(0u, v.words.size());
  v.resize(1);
  EXPECT_EQ(1u, v.words.size());
  v.resize(TypeParam::dim);
  EXPECT_EQ(1u, v.words.size());
  v.resize(TypeParam::dim + 1);
  EXPECT_EQ(2u, v.words.size());
}

TYPED_TEST(PackedVecTest, SetGetResetRoundTrip) {
  const vidx_t n = 3 * TypeParam::dim + 2;
  TypeParam v(n);
  for (vidx_t i = 0; i < n; i += 3) v.set(i);
  for (vidx_t i = 0; i < n; ++i) {
    EXPECT_EQ(i % 3 == 0, v.get(i)) << i;
  }
  for (vidx_t i = 0; i < n; i += 3) v.reset(i);
  EXPECT_FALSE(v.any());
  EXPECT_EQ(0, v.count());
}

TYPED_TEST(PackedVecTest, CountAndAny) {
  TypeParam v(2 * TypeParam::dim);
  EXPECT_FALSE(v.any());
  v.set(0);
  v.set(TypeParam::dim);       // second word
  v.set(TypeParam::dim + 1);
  EXPECT_TRUE(v.any());
  EXPECT_EQ(3, v.count());
}

TYPED_TEST(PackedVecTest, FromValuesBinarizesNonzeros) {
  std::vector<value_t> f = {0.0f, 1.5f, -2.0f, 0.0f, 0.25f};
  const auto v = TypeParam::from_values(f);
  EXPECT_EQ(5, v.n);
  EXPECT_FALSE(v.get(0));
  EXPECT_TRUE(v.get(1));
  EXPECT_TRUE(v.get(2));  // negative is nonzero
  EXPECT_FALSE(v.get(3));
  EXPECT_TRUE(v.get(4));
}

TYPED_TEST(PackedVecTest, BoolsRoundTrip) {
  std::vector<bool> b(2 * TypeParam::dim + 1);
  for (std::size_t i = 0; i < b.size(); i += 2) b[i] = true;
  const auto v = TypeParam::from_bools(b);
  EXPECT_EQ(b, v.to_bools());
}

TYPED_TEST(PackedVecTest, ClearBitsKeepsSize) {
  TypeParam v(TypeParam::dim * 2);
  v.set(1);
  v.clear_bits();
  EXPECT_EQ(TypeParam::dim * 2, v.n);
  EXPECT_FALSE(v.any());
}

TYPED_TEST(PackedVecTest, FromBoolsAndFromValuesKeepTailZero) {
  // The kernels AND whole words, so conversion constructors must leave
  // the invalid tail of the last word clear just like set() does.
  const vidx_t n = 2 * TypeParam::dim + 3;
  std::vector<bool> b(static_cast<std::size_t>(n), true);
  std::vector<value_t> f(static_cast<std::size_t>(n), 1.0f);
  using W = typename TypeParam::word_t;
  const W tail_mask = low_mask<W>(3);
  EXPECT_EQ(tail_mask, TypeParam::from_bools(b).words.back());
  EXPECT_EQ(tail_mask, TypeParam::from_values(f).words.back());
  EXPECT_EQ(n, TypeParam::from_bools(b).count());
}

TYPED_TEST(PackedVecTest, TailBitsStayZero) {
  // Setting only valid positions never dirties the tail of the last
  // word (the kernels rely on this).
  const vidx_t n = TypeParam::dim + TypeParam::dim / 2;
  TypeParam v(n);
  for (vidx_t i = 0; i < n; ++i) v.set(i);
  using W = typename TypeParam::word_t;
  const W tail = v.words.back();
  EXPECT_EQ(low_mask<W>(TypeParam::dim / 2), tail);
}

}  // namespace
}  // namespace bitgb
