// Graph-algorithm tests: BFS, SSSP, PR, CC, TC — both backends against
// serial gold references, across pattern categories and tile sizes.
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/tc.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

namespace bitgb {
namespace {

// (tile dim, matrix index) — every algorithm must agree with its gold
// reference on every backend for every combination.
class AlgoTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  gb::Graph make_graph() {
    const auto [dim, mi] = GetParam();
    gb::GraphOptions opts;
    opts.tile_dim = dim;
    return gb::Graph::from_csr(test::small_matrix(mi).second, opts);
  }
};

TEST_P(AlgoTest, BfsBothBackendsMatchGold) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto gold = algo::bfs_gold(g.adjacency(), 0);
  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    const auto res = algo::bfs(test::ctx(backend), g, {0});
    EXPECT_EQ(gold, res.levels) << gb::backend_name(backend);
  }
}

TEST_P(AlgoTest, SsspBothBackendsMatchGold) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto gold = algo::sssp_gold(g.adjacency(), 0);
  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    const auto res = algo::sssp(test::ctx(backend), g, {0});
    test::expect_vectors_near(gold, res.dist);
  }
}

TEST_P(AlgoTest, PageRankBothBackendsMatchGold) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto gold = algo::pagerank_gold(g.adjacency());
  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    const auto res = algo::pagerank(test::ctx(backend), g);
    test::expect_vectors_near(gold, res.rank, 1e-4);
  }
}

TEST_P(AlgoTest, CcBothBackendsMatchGold) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto gold = algo::cc_gold(g.adjacency());
  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    const auto res = algo::connected_components(test::ctx(backend), g);
    EXPECT_EQ(gold, res.component) << gb::backend_name(backend);
  }
}

TEST_P(AlgoTest, TcBothBackendsMatchGold) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto gold = algo::tc_gold(g.adjacency());
  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    EXPECT_EQ(gold, algo::triangle_count(test::ctx(backend), g))
        << gb::backend_name(backend);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndMatrices, AlgoTest,
    ::testing::Combine(::testing::ValuesIn({4, 8, 16, 32}),
                       ::testing::ValuesIn({2, 4, 6, 7, 8, 9, 10, 11})),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_" +
             test::kSmallMatrixOracle[static_cast<std::size_t>(
                                          std::get<1>(info.param))]
                 .name;
    });

// --- targeted semantic checks on known graphs ---

TEST(Bfs, PathGraphLevelsAreDistances) {
  Coo path{6, 6, {}, {}, {}};
  for (vidx_t i = 0; i + 1 < 6; ++i) path.push(i, i + 1);
  const gb::Graph g = gb::Graph::from_coo(path);
  const auto res = algo::bfs(test::ctx(gb::Backend::kBit), g, {0});
  for (vidx_t i = 0; i < 6; ++i) {
    EXPECT_EQ(i, res.levels[static_cast<std::size_t>(i)]);
  }
  EXPECT_EQ(5, res.iterations);
}

TEST(Bfs, DisconnectedComponentStaysUnreached) {
  Coo two{6, 6, {}, {}, {}};
  two.push(0, 1);
  two.push(3, 4);
  const gb::Graph g = gb::Graph::from_coo(two);
  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    const auto res = algo::bfs(test::ctx(backend), g, {0});
    EXPECT_EQ(algo::kUnreached, res.levels[3]);
    EXPECT_EQ(algo::kUnreached, res.levels[5]);
    EXPECT_EQ(1, res.levels[1]);
  }
}

TEST(Bfs, SourceOnlyGraph) {
  const gb::Graph g = gb::Graph::from_coo(Coo{4, 4, {}, {}, {}});
  const auto res = algo::bfs(test::ctx(gb::Backend::kBit), g, {2});
  EXPECT_EQ(0, res.levels[2]);
  EXPECT_EQ(algo::kUnreached, res.levels[0]);
}

TEST(Sssp, UnitWeightsEqualBfsLevels) {
  const gb::Graph g = gb::Graph::from_coo(gen_road(8, 8, 0.0, 20));
  const auto bfs_res = algo::bfs(test::ctx(gb::Backend::kBit), g, {0});
  const auto sssp_res = algo::sssp(test::ctx(gb::Backend::kBit), g, {0});
  for (vidx_t v = 0; v < g.num_vertices(); ++v) {
    const auto lvl = bfs_res.levels[static_cast<std::size_t>(v)];
    const auto d = sssp_res.dist[static_cast<std::size_t>(v)];
    if (lvl == algo::kUnreached) {
      EXPECT_TRUE(std::isinf(d));
    } else {
      EXPECT_FLOAT_EQ(static_cast<value_t>(lvl), d);
    }
  }
}

TEST(PageRank, SumsToOneAndUniformOnRegularGraph) {
  // On a cycle (2-regular), PageRank is exactly uniform.
  Coo cycle{8, 8, {}, {}, {}};
  for (vidx_t i = 0; i < 8; ++i) cycle.push(i, (i + 1) % 8);
  const gb::Graph g = gb::Graph::from_coo(cycle);
  const auto res = algo::pagerank(test::ctx(gb::Backend::kBit), g);
  double sum = 0.0;
  for (const value_t r : res.rank) {
    EXPECT_NEAR(1.0 / 8.0, r, 1e-5);
    sum += r;
  }
  EXPECT_NEAR(1.0, sum, 1e-4);
}

TEST(PageRank, DanglingMassIsRedistributed) {
  // Directed edge 0->1 only: vertex 1 is dangling; ranks must still
  // sum to 1.
  Coo a{3, 3, {}, {}, {}};
  a.push(0, 1);
  gb::GraphOptions opts;
  opts.symmetrize = false;
  const gb::Graph g = gb::Graph::from_coo(a, opts);
  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    const auto res = algo::pagerank(test::ctx(backend), g);
    double sum = 0.0;
    for (const value_t r : res.rank) sum += r;
    EXPECT_NEAR(1.0, sum, 1e-4) << gb::backend_name(backend);
    // 1 receives 0's rank on top of the teleport share.
    EXPECT_GT(res.rank[1], res.rank[0]);
  }
}

TEST(PageRank, LargeDanglingHeavyGraphMatchesDoubleOracle) {
  // Regression for the float dangling-mass accumulation: on a large
  // dangling-heavy graph, summing n rank terms of magnitude ~1/n in a
  // float accumulator loses the tail (the accumulator dwarfs each
  // increment), the redistributed mass drifts every iteration, and
  // convergence stalls near epsilon.  One hub fans out to 8 targets;
  // the other ~1M vertices are all dangling.
  constexpr vidx_t n = 1 << 20;
  Coo a{n, n, {}, {}, {}};
  for (vidx_t t = 1; t <= 8; ++t) a.push(0, t);
  gb::GraphOptions gopts;
  gopts.symmetrize = false;
  gopts.tile_dim = 8;
  const gb::Graph g = gb::Graph::from_coo(a, gopts);

  algo::PageRankParams opts;
  opts.max_iterations = 200;
  opts.epsilon = 1e-9;

  // Test-side all-double oracle of the same formula.
  std::vector<double> pr(static_cast<std::size_t>(n), 1.0 / n);
  const double teleport = (1.0 - static_cast<double>(opts.alpha)) / n;
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    double dangling = 0.0;
    for (vidx_t v = 1; v < n; ++v) dangling += pr[static_cast<std::size_t>(v)];
    const double hub_share = pr[0] / 8.0;
    double delta = 0.0;
    for (vidx_t v = 0; v < n; ++v) {
      const double next = teleport + static_cast<double>(opts.alpha) *
                                         ((v >= 1 && v <= 8 ? hub_share : 0.0) +
                                          dangling / n);
      delta += std::abs(next - pr[static_cast<std::size_t>(v)]);
      pr[static_cast<std::size_t>(v)] = next;
    }
    if (delta < opts.epsilon) break;
  }

  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    const auto res = algo::pagerank(test::ctx(backend), g, opts);
    // The fixed accumulation reaches a float fixpoint well before the
    // cap instead of oscillating on the lost-mass noise floor.
    EXPECT_LT(res.iterations, opts.max_iterations)
        << gb::backend_name(backend);
    // And the ranks track the double oracle to float accuracy; the old
    // accumulation was off by ~1e-3 relative on the dangling share.
    double max_rel = 0.0;
    for (vidx_t v = 0; v < n; ++v) {
      const double got = res.rank[static_cast<std::size_t>(v)];
      const double want = pr[static_cast<std::size_t>(v)];
      max_rel = std::max(max_rel, std::abs(got - want) / want);
    }
    EXPECT_LT(max_rel, 1e-4) << gb::backend_name(backend);
  }
}

TEST(PageRank, HonorsIterationCap) {
  const gb::Graph g = gb::Graph::from_coo(gen_rmat(8, 1500, 21));
  algo::PageRankParams opts;
  opts.max_iterations = 3;
  opts.epsilon = 0.0;  // never converges early
  const auto res = algo::pagerank(test::ctx(gb::Backend::kBit), g, opts);
  EXPECT_EQ(3, res.iterations);
}

TEST(Cc, CountsComponentsOfForest) {
  // Three separate edges + 2 isolated vertices = 5 components.
  Coo f{8, 8, {}, {}, {}};
  f.push(0, 1);
  f.push(2, 3);
  f.push(4, 5);
  const gb::Graph g = gb::Graph::from_coo(f);
  const auto res = algo::connected_components(test::ctx(gb::Backend::kBit), g);
  std::map<vidx_t, int> sizes;
  for (const vidx_t c : res.component) ++sizes[c];
  EXPECT_EQ(5u, sizes.size());
  // Labels are component minima.
  EXPECT_EQ(0, res.component[1]);
  EXPECT_EQ(2, res.component[3]);
  EXPECT_EQ(6, res.component[6]);
}

TEST(Tc, KnownTriangleCounts) {
  // K4 has 4 triangles.
  Coo k4{4, 4, {}, {}, {}};
  for (vidx_t i = 0; i < 4; ++i) {
    for (vidx_t j = 0; j < 4; ++j) {
      if (i != j) k4.push(i, j);
    }
  }
  const gb::Graph g4 = gb::Graph::from_coo(k4);
  EXPECT_EQ(4, algo::triangle_count(test::ctx(gb::Backend::kBit), g4));
  EXPECT_EQ(4, algo::triangle_count(test::ctx(gb::Backend::kReference), g4));

  // Mycielskian graphs are triangle-free by construction.
  const gb::Graph gm = gb::Graph::from_coo(gen_mycielskian(7));
  EXPECT_EQ(0, algo::triangle_count(test::ctx(gb::Backend::kBit), gm));
}

TEST(Tc, CycleHasNoTrianglesSquareOfCycleDoes) {
  Coo c5{5, 5, {}, {}, {}};
  for (vidx_t i = 0; i < 5; ++i) c5.push(i, (i + 1) % 5);
  const gb::Graph g = gb::Graph::from_coo(c5);
  EXPECT_EQ(0, algo::triangle_count(test::ctx(gb::Backend::kBit), g));
}

}  // namespace
}  // namespace bitgb
