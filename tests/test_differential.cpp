// Differential backend tests: for every algorithm, the bit (B2SR)
// backend must produce the same result as the reference (GraphBLAST-
// substitute) backend — directly against each other, not only via the
// gold references — over the small_matrices() oracle corpus plus a set
// of seeded random generator graphs at every tile size.
//
// Exactness notes: BFS/MSBFS levels, CC labels, SSSP distances
// (min-plus over identical candidate sets), MIS membership, coloring,
// and TC counts are combinatorial or min/max-exact, so equality is
// bitwise.  PageRank sums floats in backend-specific order (the bit
// backend tree-reduces full words), so it compares within tolerance.
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/coloring.hpp"
#include "algorithms/mis.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/tc.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace bitgb {
namespace {

/// Seeded generator graphs beyond the oracle corpus: one per pattern
/// family, sized to cross several tile-rows at every dim, none a
/// multiple of 32.
const std::vector<std::pair<std::string, Csr>>& generator_graphs() {
  static const auto graphs = [] {
    std::vector<std::pair<std::string, Csr>> out;
    out.emplace_back("gen_random_201", coo_to_csr(gen_random(201, 4000, 91)));
    out.emplace_back("gen_banded_190", coo_to_csr(gen_banded(190, 7, 0.6, 92)));
    out.emplace_back("gen_stripe_170", coo_to_csr(gen_stripe(170, 4, 0.7, 93)));
    out.emplace_back("gen_road_13x11", coo_to_csr(gen_road(13, 11, 0.05, 94)));
    out.emplace_back("gen_rmat_s7", coo_to_csr(gen_rmat(7, 900, 95)));
    out.emplace_back("gen_hybrid_145", coo_to_csr(gen_hybrid(145, 96)));
    return out;
  }();
  return graphs;
}

/// All differential inputs: the oracle corpus followed by the generator
/// graphs (indices [0, kSmallMatrixCount) are the corpus).
const std::pair<std::string, Csr>& differential_matrix(int mi) {
  if (mi < test::kSmallMatrixCount) return test::small_matrix(mi);
  return generator_graphs().at(
      static_cast<std::size_t>(mi - test::kSmallMatrixCount));
}

const int kDifferentialMatrixCount =
    test::kSmallMatrixCount + static_cast<int>(generator_graphs().size());

// (tile dim, matrix index): every algorithm must agree across backends
// for every combination.
class DifferentialTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  gb::Graph make_graph() const {
    const auto [dim, mi] = GetParam();
    gb::GraphOptions opts;
    opts.tile_dim = dim;
    return gb::Graph::from_csr(differential_matrix(mi).second, opts);
  }
  std::string name() const { return differential_matrix(std::get<1>(GetParam())).first; }
};

TEST_P(DifferentialTest, Bfs) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto ref = algo::bfs(test::ctx(gb::Backend::kReference), g, {0});
  const auto bit = algo::bfs(test::ctx(gb::Backend::kBit), g, {0});
  EXPECT_EQ(ref.levels, bit.levels) << name();
}

TEST_P(DifferentialTest, Cc) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto ref = algo::connected_components(test::ctx(gb::Backend::kReference), g);
  const auto bit = algo::connected_components(test::ctx(gb::Backend::kBit), g);
  EXPECT_EQ(ref.component, bit.component) << name();
}

TEST_P(DifferentialTest, PageRank) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto ref = algo::pagerank(test::ctx(gb::Backend::kReference), g);
  const auto bit = algo::pagerank(test::ctx(gb::Backend::kBit), g);
  test::expect_vectors_near(ref.rank, bit.rank, 1e-4);
}

TEST_P(DifferentialTest, Sssp) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto ref = algo::sssp(test::ctx(gb::Backend::kReference), g, {0});
  const auto bit = algo::sssp(test::ctx(gb::Backend::kBit), g, {0});
  test::expect_vectors_near(ref.dist, bit.dist);
}

TEST_P(DifferentialTest, Mis) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto ref = algo::maximal_independent_set(test::ctx(gb::Backend::kReference).with_seed(5), g);
  const auto bit = algo::maximal_independent_set(test::ctx(gb::Backend::kBit).with_seed(5), g);
  EXPECT_EQ(ref.in_set, bit.in_set) << name();
  EXPECT_TRUE(algo::is_valid_mis(g.adjacency(), bit.in_set)) << name();
}

TEST_P(DifferentialTest, Coloring) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  const auto ref = algo::greedy_coloring(test::ctx(gb::Backend::kReference).with_seed(5), g);
  const auto bit = algo::greedy_coloring(test::ctx(gb::Backend::kBit).with_seed(5), g);
  EXPECT_EQ(ref.color, bit.color) << name();
  EXPECT_TRUE(algo::is_valid_coloring(g.adjacency(), bit.color)) << name();
}

TEST_P(DifferentialTest, Tc) {
  const gb::Graph g = make_graph();
  if (g.num_vertices() == 0) return;
  EXPECT_EQ(algo::triangle_count(test::ctx(gb::Backend::kReference), g),
            algo::triangle_count(test::ctx(gb::Backend::kBit), g))
      << name();
}

INSTANTIATE_TEST_SUITE_P(
    AllDimsAllMatrices, DifferentialTest,
    ::testing::Combine(::testing::ValuesIn(kTileDims),
                       ::testing::Range(0, kDifferentialMatrixCount)),
    [](const auto& info) {
      return "dim" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

TEST(DifferentialFixture, OracleCorpusIsIntact) {
  test::expect_small_matrices_match_oracle();
  for (const auto& [name, m] : generator_graphs()) {
    EXPECT_TRUE(m.validate()) << name;
    EXPECT_GT(m.nnz(), 0) << name;
  }
}

}  // namespace
}  // namespace bitgb
