// Ingest-pipeline differential suite: the rewritten conversion path
// (merge-based fused count+fill pack, COO-direct streaming pack,
// two-phase flat-output bit SpGEMM) must be bit-for-bit identical to
// the pre-rewrite reference implementations, under both kernel
// variants, over the oracle corpus plus randomized tail-dim generator
// graphs at all four tile dims.  bit_spgemm is additionally checked
// against the float csrgemm baseline's structural product.
//
// ctest runs this binary twice, under both BITGB_KERNEL_VARIANT
// values (an env-invariance regression — kernels take their variant
// per call via Exec and read no environment), under the "pipeline"
// label.
#include "baseline/csrgemm.hpp"
#include "core/bit_spgemm.hpp"
#include "core/pack.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <utility>
#include <vector>

namespace bitgb {
namespace {

/// Tail-dim fuzz graphs: sizes deliberately not multiples of any tile
/// dim, spanning sparse scatter to dense blocks so the merge walk hits
/// single-column runs, full-tile runs, and everything between.
const std::vector<std::pair<std::string, Csr>>& fuzz_graphs() {
  static const auto graphs = [] {
    std::vector<std::pair<std::string, Csr>> out;
    out.emplace_back("fuzz_random_211", coo_to_csr(gen_random(211, 3500, 91)));
    out.emplace_back("fuzz_random_dense_77",
                     coo_to_csr(gen_random(77, 3000, 92)));
    out.emplace_back("fuzz_banded_197", coo_to_csr(gen_banded(197, 13, 0.8, 93)));
    out.emplace_back("fuzz_stripe_151", coo_to_csr(gen_stripe(151, 4, 0.7, 94)));
    out.emplace_back("fuzz_rmat_s7", coo_to_csr(gen_rmat(7, 1300, 95)));
    out.emplace_back("fuzz_road_11x13", coo_to_csr(gen_road(11, 13, 0.08, 96)));
    return out;
  }();
  return graphs;
}

const std::pair<std::string, Csr>& pipeline_matrix(int mi) {
  if (mi < test::kSmallMatrixCount) return test::small_matrix(mi);
  return fuzz_graphs().at(
      static_cast<std::size_t>(mi - test::kSmallMatrixCount));
}

const int kPipelineMatrixCount =
    test::kSmallMatrixCount + static_cast<int>(fuzz_graphs().size());

template <int Dim>
void expect_b2sr_equal(const B2srT<Dim>& expected, const B2srT<Dim>& actual,
                       const std::string& what) {
  EXPECT_EQ(expected.nrows, actual.nrows) << what;
  EXPECT_EQ(expected.ncols, actual.ncols) << what;
  EXPECT_EQ(expected.tile_rowptr, actual.tile_rowptr) << what;
  EXPECT_EQ(expected.tile_colind, actual.tile_colind) << what;
  ASSERT_EQ(expected.bits.size(), actual.bits.size()) << what;
  EXPECT_TRUE(std::equal(expected.bits.begin(), expected.bits.end(),
                         actual.bits.begin()))
      << what;
}

class PackPipelineTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  int dim() const { return std::get<0>(GetParam()); }
  const Csr& csr() const {
    return pipeline_matrix(std::get<1>(GetParam())).second;
  }
  std::string name() const {
    return pipeline_matrix(std::get<1>(GetParam())).first + "/dim" +
           std::to_string(dim());
  }
};

TEST_P(PackPipelineTest, RewrittenPackMatchesReferenceBitForBit) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const B2srT<Dim> ref = pack_from_csr_reference<Dim>(csr());
    const B2srT<Dim> now = pack_from_csr<Dim>(csr());
    expect_b2sr_equal(ref, now, name());
    EXPECT_TRUE(now.validate()) << name();
  });
}

TEST_P(PackPipelineTest, PackVariantsAgree) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const B2srT<Dim> scalar =
        pack_from_csr<Dim>(csr(), KernelVariant::kScalar);
    const B2srT<Dim> simd = pack_from_csr<Dim>(csr(), KernelVariant::kSimd);
    expect_b2sr_equal(scalar, simd, name());
  });
}

TEST_P(PackPipelineTest, CooDirectMatchesCsrRouted) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    // The COO path must be order-independent and duplicate-tolerant:
    // shuffle the entries and re-append a sample of them before packing.
    Coo coo = csr_to_coo(csr());
    std::mt19937_64 rng(1234 + static_cast<std::uint64_t>(Dim));
    std::vector<std::size_t> perm(coo.row.size());
    for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::shuffle(perm.begin(), perm.end(), rng);
    Coo shuffled{coo.nrows, coo.ncols, {}, {}, {}};
    for (const std::size_t i : perm) {
      shuffled.push(coo.row[i], coo.col[i]);
    }
    for (std::size_t i = 0; i < perm.size(); i += 7) {
      shuffled.push(coo.row[perm[i]], coo.col[perm[i]]);  // duplicates
    }
    const B2srT<Dim> direct = pack_from_coo<Dim>(shuffled);
    const B2srT<Dim> routed = pack_from_csr<Dim>(coo_to_csr(shuffled));
    expect_b2sr_equal(routed, direct, name());
  });
}

TEST_P(PackPipelineTest, CooAnyDispatchesLikeTyped) {
  const Coo coo = csr_to_coo(csr());
  const B2srAny any = pack_coo_any(coo, dim());
  EXPECT_EQ(dim(), any.tile_dim()) << name();
  EXPECT_EQ(pack_any(csr(), dim()).nnz_tiles(), any.nnz_tiles()) << name();
  EXPECT_EQ(csr().nnz(), any.nnz()) << name();
}

TEST_P(PackPipelineTest, CountNonemptyTilesMatchesPack) {
  // count_nonempty_tiles and the pack count pass share one merge; this
  // pins the shared discovery against the packed result.
  EXPECT_EQ(count_nonempty_tiles(csr(), dim()),
            pack_any(csr(), dim()).nnz_tiles())
      << name();
}

TEST_P(PackPipelineTest, SpgemmMatchesReferenceBitForBit) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(csr());
    const B2srT<Dim> ref = bit_spgemm_reference(a, a);
    const B2srT<Dim> now = bit_spgemm(a, a);
    expect_b2sr_equal(ref, now, name());
    EXPECT_TRUE(now.validate()) << name();
  });
}

TEST_P(PackPipelineTest, SpgemmMatchesCsrgemmPattern) {
  dispatch_tile_dim(dim(), [&]<int Dim>() {
    const B2srT<Dim> a = pack_from_csr<Dim>(csr());
    const Csr ours = unpack_to_csr(bit_spgemm(a, a));
    Csr unit = csr();
    unit.val.assign(static_cast<std::size_t>(unit.nnz()), 1.0f);
    const Csr gold = baseline::csrgemm(unit, unit);
    EXPECT_EQ(gold.rowptr, ours.rowptr) << name();
    EXPECT_EQ(gold.colind, ours.colind) << name();
  });
}

INSTANTIATE_TEST_SUITE_P(
    AllDimsAllMatrices, PackPipelineTest,
    ::testing::Combine(::testing::ValuesIn(std::vector<int>{4, 8, 16, 32}),
                       ::testing::Range(0, kPipelineMatrixCount)));

TEST(PackPipeline, EmptyCooPacksToNoTiles) {
  const Coo empty{64, 64, {}, {}, {}};
  for (const int dim : kTileDims) {
    const B2srAny b = pack_coo_any(empty, dim);
    EXPECT_EQ(0, b.nnz_tiles());
    EXPECT_EQ(0, b.nnz());
  }
}

TEST(PackPipeline, WeightedCooPacksPatternOnly) {
  Coo w{16, 16, {}, {}, {}};
  w.push(3, 5, 2.5f);
  w.push(3, 5, -2.5f);  // values ignored; the pattern bit stays set
  w.push(9, 14, 0.25f);
  const B2sr8 b = pack_from_coo<8>(w);
  EXPECT_EQ(2, b.nnz());
  const Csr routed = coo_to_csr(w);
  expect_b2sr_equal(pack_from_csr<8>(routed), b, "weighted coo");
}

TEST(PackPipeline, SpgemmAnnihilatedTilesAreDropped) {
  // A's only tile points at a zero row of B's only tile, so every
  // product annihilates; the flat path's compaction must drop the tile
  // (validate() rejects stored all-zero tiles).
  Coo ca{8, 8, {}, {}, {}};
  ca.push(0, 0);  // A: bit (0,0) -> selects B's bit-row 0
  Coo cb{8, 8, {}, {}, {}};
  cb.push(3, 5);  // B: row 0 of the tile is empty
  const B2sr8 a = pack_from_csr<8>(coo_to_csr(ca));
  const B2sr8 b = pack_from_csr<8>(coo_to_csr(cb));
  const B2sr8 c = bit_spgemm(a, b);
  EXPECT_EQ(0, c.nnz_tiles());
  EXPECT_TRUE(c.validate());
  expect_b2sr_equal(bit_spgemm_reference(a, b), c, "annihilated");
}

}  // namespace
}  // namespace bitgb
