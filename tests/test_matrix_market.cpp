// Unit tests for the Matrix Market reader/writer.
#include "sparse/convert.hpp"
#include "sparse/matrix_market.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <sstream>

namespace bitgb {
namespace {

TEST(MatrixMarket, ReadsPatternGeneral) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "% a comment\n"
      "3 3 2\n"
      "1 2\n"
      "3 1\n");
  const Coo a = read_matrix_market(in);
  EXPECT_EQ(3, a.nrows);
  EXPECT_EQ(3, a.ncols);
  EXPECT_EQ(2, a.nnz());
  EXPECT_TRUE(a.is_binary());
  EXPECT_EQ(0, a.row[0]);  // 1-based -> 0-based
  EXPECT_EQ(1, a.col[0]);
}

TEST(MatrixMarket, ReadsRealValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.5\n"
      "2 2 -2.0\n");
  const Coo a = read_matrix_market(in);
  ASSERT_EQ(2u, a.val.size());
  EXPECT_FLOAT_EQ(1.5f, a.val[0]);
  EXPECT_FLOAT_EQ(-2.0f, a.val[1]);
}

TEST(MatrixMarket, SymmetricExpandsBothTriangles) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  const Coo a = read_matrix_market(in);
  // (1,0) expands to (0,1); diagonal (2,2) does not double.
  EXPECT_EQ(3, a.nnz());
}

TEST(MatrixMarket, SkewSymmetricNegatesMirror) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const Coo a = read_matrix_market(in);
  ASSERT_EQ(2, a.nnz());
  // Entries sorted: (0,1) = -3, (1,0) = 3.
  EXPECT_FLOAT_EQ(-3.0f, a.val[0]);
  EXPECT_FLOAT_EQ(3.0f, a.val[1]);
}

TEST(MatrixMarket, RejectsMissingBanner) {
  std::istringstream in("3 3 0\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, RejectsOutOfRangeIndex) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 1\n"
      "3 1\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, RejectsTruncatedEntryList) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, RejectsTrailingDataAfterDeclaredEntries) {
  // More entries than the size line declares: the old reader silently
  // dropped the tail, handing back a graph missing edges the file
  // plainly contains.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 1\n"
      "1 1\n"
      "2 2\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
  // Non-entry garbage after the last entry is rejected too.
  std::istringstream garbage(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 1\n"
      "1 1\n"
      "unexpected trailer\n");
  EXPECT_THROW(read_matrix_market(garbage), MatrixMarketError);
  // Trailing comments and blank/whitespace lines remain legal.
  std::istringstream benign(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3 1\n"
      "1 1\n"
      "% a trailing comment\n"
      "\n"
      "   \n");
  EXPECT_EQ(read_matrix_market(benign).nnz(), 1);
}

TEST(MatrixMarket, RejectsUnsupportedFormat) {
  std::istringstream in(
      "%%MatrixMarket matrix array real general\n"
      "2 2\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, RejectsDimensionBeyondIndexType) {
  // 3e9 rows exceeds the 32-bit vidx_t; the old reader truncated the
  // cast silently and mis-indexed every entry.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3000000000 3 1\n"
      "1 1\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
  std::istringstream in2(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "3 3000000000 1\n"
      "1 1\n");
  EXPECT_THROW(read_matrix_market(in2), MatrixMarketError);
}

TEST(MatrixMarket, AcceptsDimensionAtIndexTypeLimit) {
  // Exactly INT32_MAX rows is representable and must keep working.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2147483647 2147483647 1\n"
      "2147483647 1\n");
  const Coo a = read_matrix_market(in);
  EXPECT_EQ(std::numeric_limits<vidx_t>::max(), a.nrows);
  EXPECT_EQ(std::numeric_limits<vidx_t>::max() - 1, a.row[0]);
}

TEST(MatrixMarket, RejectsSymmetricNnzBeyondEdgeType) {
  // Symmetric inputs store up to 2*nz entries; a declared count whose
  // doubling overflows eidx_t must be rejected up front, not after an
  // hours-long parse.
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "100 100 5000000000000000000\n"
      "2 1\n");
  EXPECT_THROW(read_matrix_market(in), MatrixMarketError);
}

TEST(MatrixMarket, SymmetricReserveAvoidsMidParseRealloc) {
  // Functional cover for the 2*nz reserve: a fully off-diagonal
  // symmetric pattern mirrors every entry and must land intact.
  std::ostringstream src;
  src << "%%MatrixMarket matrix coordinate pattern symmetric\n"
      << "64 64 63\n";
  for (int r = 2; r <= 64; ++r) src << r << " " << (r - 1) << "\n";
  std::istringstream in(src.str());
  const Coo a = read_matrix_market(in);
  EXPECT_EQ(2 * 63, a.nnz());
}

TEST(MatrixMarket, WriteReadRoundTripPattern) {
  Coo a{5, 5, {}, {}, {}};
  a.push(0, 4);
  a.push(3, 1);
  a.push(4, 4);
  a.sort_and_dedup();
  std::ostringstream out;
  write_matrix_market(out, a);
  std::istringstream in(out.str());
  const Coo b = read_matrix_market(in);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.col, b.col);
  EXPECT_TRUE(b.is_binary());
}

TEST(MatrixMarket, WriteReadRoundTripAcrossFixturePatterns) {
  // Every pattern category (including empty and dense) survives a trip
  // through the text format.
  for (const auto& [name, m] : test::small_matrices_cached()) {
    SCOPED_TRACE(name);
    const Coo a = csr_to_coo(m);
    std::ostringstream out;
    write_matrix_market(out, a);
    std::istringstream in(out.str());
    const Coo b = read_matrix_market(in);
    EXPECT_EQ(m.nrows, b.nrows);
    EXPECT_EQ(m.ncols, b.ncols);
    EXPECT_EQ(a.row, b.row);
    EXPECT_EQ(a.col, b.col);
  }
}

TEST(MatrixMarket, WriteReadRoundTripWeighted) {
  Coo a{3, 4, {}, {}, {}};
  a.push(0, 1, 2.25f);
  a.push(2, 3, -1.5f);
  a.sort_and_dedup();
  std::ostringstream out;
  write_matrix_market(out, a);
  std::istringstream in(out.str());
  const Coo b = read_matrix_market(in);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.col, b.col);
  ASSERT_EQ(a.val.size(), b.val.size());
  for (std::size_t i = 0; i < a.val.size(); ++i) {
    EXPECT_FLOAT_EQ(a.val[i], b.val[i]);
  }
}

}  // namespace
}  // namespace bitgb
