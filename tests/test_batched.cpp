// Batched-oracle tests: the multi-source engine against independent
// single-source runs.
//
// The contract under test is ISSUE-level: msbfs over a batch must equal
// the same number of independent single-source bfs() runs bit-for-bit —
// including sources living in the tail tile of a non-multiple-of-Dim
// matrix and batches narrower than the 64-bit lane word — and
// batched_cc must equal the gold component labelling exactly.
#include "algorithms/batched_cc.hpp"
#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/msbfs.hpp"
#include "graphblas/ops.hpp"
#include "sparse/convert.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

namespace bitgb {
namespace {

/// Deterministic batch of `batch` sources spread over [0, n), always
/// including the last vertex (the tail-tile source) when batch > 1.
std::vector<vidx_t> spread_sources(vidx_t n, int batch) {
  std::vector<vidx_t> s(static_cast<std::size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    s[static_cast<std::size_t>(b)] =
        static_cast<vidx_t>(static_cast<std::int64_t>(b) * n / batch);
  }
  if (batch > 1) s.back() = n - 1;
  return s;
}

// ---------------------------------------------------------------------
// FrontierBatch unit behaviour
// ---------------------------------------------------------------------

TEST(FrontierBatch, FromSourcesSetsOneBitPerColumn) {
  const std::vector<vidx_t> sources = {3, 0, 3, 61};  // duplicates allowed
  const auto f = FrontierBatch::from_sources(62, sources);
  EXPECT_TRUE(f.validate());
  EXPECT_EQ(4, f.batch);
  EXPECT_EQ(4, f.count());
  for (int b = 0; b < f.batch; ++b) {
    EXPECT_EQ(1, f.column_count(b)) << b;
    EXPECT_TRUE(f.get(sources[static_cast<std::size_t>(b)], b)) << b;
  }
}

TEST(FrontierBatch, FromSourcesRejectsBadBatches) {
  EXPECT_THROW((void)FrontierBatch::from_sources(10, {}),
               std::invalid_argument);
  EXPECT_THROW((void)FrontierBatch::from_sources(10, {10}),
               std::invalid_argument);
  EXPECT_THROW((void)FrontierBatch::from_sources(10, {-1}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)FrontierBatch::from_sources(100, std::vector<vidx_t>(65, 1)),
      std::invalid_argument);
}

TEST(FrontierBatch, ValidateCatchesLaneTailBits) {
  FrontierBatch f(8, 3);
  f.set(2, 1);
  EXPECT_TRUE(f.validate());
  f.rows[2] |= FrontierBatch::word_t{1} << 3;  // beyond batch: invalid
  EXPECT_FALSE(f.validate());
  f.reset(2, 3);
  EXPECT_TRUE(f.validate());
}

TEST(FrontierBatch, SetResetCountColumn) {
  FrontierBatch f(70, 64);
  f.set(69, 63);
  f.set(0, 0);
  EXPECT_EQ(2, f.count());
  EXPECT_EQ(1, f.column_count(63));
  const auto col = f.column(63);
  EXPECT_TRUE(col[69]);
  EXPECT_FALSE(col[0]);
  f.reset(69, 63);
  EXPECT_FALSE(f.get(69, 63));
  EXPECT_EQ(1, f.count());
}

// ---------------------------------------------------------------------
// Batched ops: ref column loop == bit BMM sweep == dense reference
// ---------------------------------------------------------------------

class BatchedOpTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BatchedOpTest, RefAndBitExpansionAgree) {
  const auto [dim, mi] = GetParam();
  const auto& [name, csr] = test::small_matrix(mi);
  gb::GraphOptions opts;
  opts.tile_dim = dim;
  const gb::Graph g = gb::Graph::from_csr(csr, opts);
  const vidx_t n = g.num_vertices();
  if (n == 0) return;

  const int batch = 17;  // narrower than the 64-bit lane word
  const auto sources = spread_sources(n, std::min<int>(batch, n));
  const FrontierBatch f = FrontierBatch::from_sources(n, sources);
  FrontierBatch visited = f;

  FrontierBatch next_ref;
  FrontierBatch next_bit;
  const Context ctx;
  gb::ref_mxm_frontier_masked(ctx, g.adjacency_t(), f, visited, next_ref);
  dispatch_tile_dim(g.tile_dim(), [&]<int Dim>() {
    gb::bit_mxm_frontier_masked<Dim>(ctx, g.packed_t().as<Dim>(), f, visited,
                                     next_bit);
    return 0;
  });
  ASSERT_TRUE(next_ref.validate()) << name;
  ASSERT_TRUE(next_bit.validate()) << name;
  EXPECT_EQ(next_ref.rows, next_bit.rows) << name;

  // Dense column-by-column reference: next(., b) = (A^T x f_b) & ~vis_b.
  for (int b = 0; b < f.batch; ++b) {
    const auto expect = test::ref_bool_mxv(g.adjacency_t(), f.column(b));
    for (vidx_t v = 0; v < n; ++v) {
      const bool want =
          expect[static_cast<std::size_t>(v)] && !visited.get(v, b);
      EXPECT_EQ(want, next_bit.get(v, b)) << name << " v=" << v << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDims, BatchedOpTest,
    ::testing::Combine(::testing::ValuesIn(kTileDims),
                       ::testing::Range(0, test::kSmallMatrixCount)));

// ---------------------------------------------------------------------
// msbfs == independent single-source bfs, bit for bit
// ---------------------------------------------------------------------

class MsBfsTest : public ::testing::TestWithParam<std::tuple<int, int>> {
 protected:
  gb::Graph make_graph() const {
    const auto [dim, mi] = GetParam();
    gb::GraphOptions opts;
    opts.tile_dim = dim;
    return gb::Graph::from_csr(test::small_matrix(mi).second, opts);
  }
};

TEST_P(MsBfsTest, FullWidthBatchMatchesSingleSourceRuns) {
  const gb::Graph g = make_graph();
  const vidx_t n = g.num_vertices();
  if (n == 0) return;
  const int batch = static_cast<int>(
      std::min<vidx_t>(n, FrontierBatch::kMaxBatch));
  // Includes n - 1: a tail-tile source whenever n % Dim != 0.
  const auto sources = spread_sources(n, batch);

  const auto gold = algo::msbfs_gold(g.adjacency(), sources);
  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    const auto res = algo::msbfs(test::ctx(backend), g, {sources});
    ASSERT_EQ(batch, res.batch);
    EXPECT_EQ(gold, res.levels) << gb::backend_name(backend);
    // Column extraction must equal the single-source bfs() result.
    for (int b = 0; b < batch; b += 13) {
      const auto single = algo::bfs(
          test::ctx(backend), g, {sources[static_cast<std::size_t>(b)]});
      EXPECT_EQ(single.levels, res.column(n, b))
          << gb::backend_name(backend) << " column " << b;
    }
  }
}

TEST_P(MsBfsTest, NarrowBatchMatchesSingleSourceRuns) {
  const gb::Graph g = make_graph();
  const vidx_t n = g.num_vertices();
  if (n == 0) return;
  // Batches narrower than the word width, including a lone column.
  for (const int batch : {1, 3, 17}) {
    if (batch > n) continue;
    const auto sources = spread_sources(n, batch);
    const auto gold = algo::msbfs_gold(g.adjacency(), sources);
    for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
      const auto res = algo::msbfs(test::ctx(backend), g, {sources});
      EXPECT_EQ(gold, res.levels)
          << gb::backend_name(backend) << " batch=" << batch;
    }
  }
}

TEST_P(MsBfsTest, BatchedReachMatchesLevels) {
  const gb::Graph g = make_graph();
  const vidx_t n = g.num_vertices();
  if (n == 0) return;
  const auto sources = spread_sources(n, std::min<int>(5, n));
  const auto res = algo::msbfs(test::ctx(gb::Backend::kBit), g, {sources});
  const auto reach = algo::batched_reach(test::ctx(gb::Backend::kBit), g, sources);
  ASSERT_TRUE(reach.validate());
  for (vidx_t v = 0; v < n; ++v) {
    for (int b = 0; b < res.batch; ++b) {
      EXPECT_EQ(res.level(v, b) != algo::kUnreached, reach.get(v, b))
          << "v=" << v << " b=" << b;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDims, MsBfsTest,
    ::testing::Combine(::testing::ValuesIn(kTileDims),
                       ::testing::Range(0, test::kSmallMatrixCount)));

TEST(MsBfs, RejectsBadBatches) {
  const gb::Graph g =
      gb::Graph::from_csr(test::small_matrix_by_name("random_61"));
  const Context ctx;
  EXPECT_THROW((void)algo::msbfs(ctx, g, {{}}), std::invalid_argument);
  EXPECT_THROW((void)algo::msbfs(ctx, g, {{61}}), std::invalid_argument);
  EXPECT_THROW(
      (void)algo::msbfs(ctx, g, {std::vector<vidx_t>(65, 0)}),
      std::invalid_argument);
}

// ---------------------------------------------------------------------
// batched_cc == FastSV == union-find gold
// ---------------------------------------------------------------------

class BatchedCcTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BatchedCcTest, MatchesGoldAndFastSv) {
  const auto [dim, mi] = GetParam();
  gb::GraphOptions opts;
  opts.tile_dim = dim;
  const gb::Graph g =
      gb::Graph::from_csr(test::small_matrix(mi).second, opts);
  if (g.num_vertices() == 0) return;
  const auto gold = algo::cc_gold(g.adjacency());
  for (const auto backend : {gb::Backend::kReference, gb::Backend::kBit}) {
    const auto res = algo::batched_cc(test::ctx(backend), g);
    EXPECT_EQ(gold, res.component) << gb::backend_name(backend);
    EXPECT_GE(res.waves, 1);
    const auto fastsv = algo::connected_components(test::ctx(backend), g);
    EXPECT_EQ(fastsv.component, res.component) << gb::backend_name(backend);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDims, BatchedCcTest,
    ::testing::Combine(::testing::ValuesIn(kTileDims),
                       ::testing::Range(0, test::kSmallMatrixCount)));

// batched_cc amortization: an all-isolated-vertex graph of 130 vertices
// needs ceil(130 / 64) = 3 reach waves, not 130.
TEST(BatchedCc, WavesAmortizeAcrossComponents) {
  const Csr empty = coo_to_csr(Coo{130, 130, {}, {}, {}});
  const gb::Graph g = gb::Graph::from_csr(empty);
  const auto res = algo::batched_cc(test::ctx(gb::Backend::kBit), g);
  EXPECT_EQ(3, res.waves);
  EXPECT_EQ(algo::cc_gold(g.adjacency()), res.component);
}

TEST(Batched, FixtureOracleIntact) {
  test::expect_small_matrices_match_oracle();
}

}  // namespace
}  // namespace bitgb
