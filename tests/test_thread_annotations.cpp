// The annotated locking primitives (platform/thread_annotations.hpp)
// must behave exactly like the std primitives they wrap — the
// annotations are compile-time only, so these tests pin the RUNTIME
// contract: mutual exclusion, try_lock semantics, shared/exclusive
// coexistence rules, RAII release, and condition-variable wakeups
// (including the adopt_lock/release round-trip CondVar::wait plays to
// keep the native fast path).  The whole file runs under the TSan lane
// like every other test, so a wrapper that dropped a real unlock or
// woke without the lock would surface as a race or a deadlock here.
#include "platform/thread_annotations.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

namespace bitgb {
namespace {

TEST(ThreadAnnotations, MutexProvidesMutualExclusion) {
  Mutex mu;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 20000;
  std::vector<std::thread> ts;
  ts.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    ts.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        const MutexLock lk(mu);
        ++counter;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kIters);
}

TEST(ThreadAnnotations, TryLockReflectsOwnership) {
  Mutex mu;
  {
    const MutexLock lk(mu);
    std::thread probe([&] { EXPECT_FALSE(mu.try_lock()); });
    probe.join();
  }
  // MutexLock released at scope exit: the lock must be available again.
  std::thread probe([&] {
    ASSERT_TRUE(mu.try_lock());
    mu.unlock();
  });
  probe.join();
}

TEST(ThreadAnnotations, SharedMutexAllowsConcurrentReaders) {
  SharedMutex mu;
  const SharedLock reader(mu);
  std::thread probe([&] {
    // A second shared acquisition coexists with the first...
    ASSERT_TRUE(mu.try_lock_shared());
    mu.unlock_shared();
    // ...but an exclusive one does not.
    EXPECT_FALSE(mu.try_lock());
  });
  probe.join();
}

TEST(ThreadAnnotations, SharedMutexWriterExcludesReaders) {
  SharedMutex mu;
  const MutexLock writer(mu);
  std::thread probe([&] {
    EXPECT_FALSE(mu.try_lock());
    EXPECT_FALSE(mu.try_lock_shared());
  });
  probe.join();
}

TEST(ThreadAnnotations, SharedMutexReadersSeePublishedWrites) {
  SharedMutex mu;
  int value = 0;
  std::atomic<bool> go{false};
  constexpr int kReaders = 4;
  constexpr int kWrites = 2000;
  std::vector<std::thread> ts;
  ts.reserve(kReaders + 1);
  ts.emplace_back([&] {
    go.store(true);
    for (int i = 1; i <= kWrites; ++i) {
      const MutexLock lk(mu);
      value = i;
    }
  });
  for (int r = 0; r < kReaders; ++r) {
    ts.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      int last = 0;
      for (int i = 0; i < kWrites; ++i) {
        const SharedLock lk(mu);
        // The writer only moves the value forward; a reader observing
        // it going backward means the lock pair is broken.
        EXPECT_LE(last, value);
        last = value;
      }
    });
  }
  for (auto& t : ts) t.join();
  EXPECT_EQ(value, kWrites);
}

TEST(ThreadAnnotations, CondVarWaitReleasesAndReacquires) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int observed = -1;

  std::thread consumer([&] {
    const MutexLock lk(mu);
    while (!ready) cv.wait(mu);
    // Holding mu again after the wait: the write below is ordered
    // against the producer's critical section.
    observed = 42;
  });

  {
    // The consumer's wait must have RELEASED mu or this acquisition
    // would deadlock.
    const MutexLock lk(mu);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_EQ(observed, 42);
}

TEST(ThreadAnnotations, CondVarNotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool open = false;
  int through = 0;
  constexpr int kWaiters = 6;
  std::vector<std::thread> ts;
  ts.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    ts.emplace_back([&] {
      const MutexLock lk(mu);
      while (!open) cv.wait(mu);
      ++through;
    });
  }
  {
    const MutexLock lk(mu);
    open = true;
  }
  cv.notify_all();
  for (auto& t : ts) t.join();
  EXPECT_EQ(through, kWaiters);
}

TEST(ThreadAnnotations, CondVarSpuriousWakeupTolerantLoop) {
  // The canonical use shape in this codebase is an explicit while-loop
  // (the analysis cannot see through predicate lambdas); prove a
  // stale notify with the predicate still false leaves the waiter
  // waiting instead of running.
  Mutex mu;
  CondVar cv;
  bool ready = false;
  std::atomic<bool> ran{false};

  std::thread consumer([&] {
    const MutexLock lk(mu);
    while (!ready) cv.wait(mu);
    ran.store(true);
  });

  cv.notify_all();  // predicate still false: must not release the waiter
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(ran.load());

  {
    const MutexLock lk(mu);
    ready = true;
  }
  cv.notify_one();
  consumer.join();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace bitgb
