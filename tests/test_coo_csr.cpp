// Unit tests for the sparse substrate: COO, CSR, conversions and the
// structural operations (transpose, triangles, symmetrize, ...).
#include "sparse/convert.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"
#include "sparse/generators.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

TEST(Coo, SortAndDedupBinaryKeepsSingleEntry) {
  Coo a{4, 4, {}, {}, {}};
  a.push(2, 1);
  a.push(0, 3);
  a.push(2, 1);  // duplicate
  a.push(0, 0);
  a.sort_and_dedup();
  ASSERT_EQ(3, a.nnz());
  EXPECT_EQ(0, a.row[0]);
  EXPECT_EQ(0, a.col[0]);
  EXPECT_EQ(0, a.row[1]);
  EXPECT_EQ(3, a.col[1]);
  EXPECT_EQ(2, a.row[2]);
  EXPECT_EQ(1, a.col[2]);
}

TEST(Coo, SortAndDedupWeightedSumsDuplicates) {
  Coo a{4, 4, {}, {}, {}};
  a.push(1, 2, 1.5f);
  a.push(1, 2, 2.5f);
  a.push(0, 0, 1.0f);
  a.sort_and_dedup();
  ASSERT_EQ(2, a.nnz());
  EXPECT_FLOAT_EQ(1.0f, a.val[0]);
  EXPECT_FLOAT_EQ(4.0f, a.val[1]);  // 1.5 + 2.5 merged
}

TEST(Coo, ValidateCatchesOutOfRange) {
  Coo good{4, 4, {0}, {3}, {}};
  EXPECT_TRUE(good.validate());
  Coo bad_row{4, 4, {4}, {0}, {}};
  EXPECT_FALSE(bad_row.validate());
  Coo bad_col{4, 4, {0}, {-1}, {}};
  EXPECT_FALSE(bad_col.validate());
  Coo bad_val{4, 4, {0, 1}, {0, 1}, {1.0f}};  // val size mismatch
  EXPECT_FALSE(bad_val.validate());
}

TEST(Coo, PatternAndUnitValueViews) {
  Coo a{3, 3, {0, 1}, {1, 2}, {5.0f, 6.0f}};
  const Coo p = pattern_of(a);
  EXPECT_TRUE(p.is_binary());
  EXPECT_EQ(2, p.nnz());
  const Coo u = with_unit_values(p);
  ASSERT_EQ(2u, u.val.size());
  EXPECT_FLOAT_EQ(1.0f, u.val[0]);
  EXPECT_FLOAT_EQ(1.0f, u.val[1]);
}

TEST(CooCsr, RoundTripPreservesPattern) {
  const Coo a = gen_random(50, 400, 42);
  const Csr c = coo_to_csr(a);
  EXPECT_TRUE(c.validate());
  const Coo back = csr_to_coo(c);
  Coo sorted = a;
  sorted.sort_and_dedup();
  EXPECT_EQ(sorted.row, back.row);
  EXPECT_EQ(sorted.col, back.col);
}

TEST(CooCsr, UnsortedInputProducesSortedCsr) {
  Coo a{5, 5, {}, {}, {}};
  a.push(4, 1);
  a.push(0, 4);
  a.push(4, 0);
  a.push(0, 2);
  const Csr c = coo_to_csr(a);
  EXPECT_TRUE(c.validate());  // validate() checks per-row sortedness
  const auto r0 = c.row_cols(0);
  ASSERT_EQ(2u, r0.size());
  EXPECT_EQ(2, r0[0]);
  EXPECT_EQ(4, r0[1]);
}

TEST(Csr, DenseRoundTrip) {
  const Csr c = coo_to_csr(gen_banded(40, 4, 0.6, 7));
  const auto d = csr_to_dense(c);
  const Csr back = dense_to_csr(d, c.nrows, c.ncols);
  EXPECT_EQ(c.rowptr, back.rowptr);
  EXPECT_EQ(c.colind, back.colind);
}

TEST(Csr, TransposeMatchesDenseTranspose) {
  const Csr c = coo_to_csr(gen_random(37, 250, 8));
  const Csr t = transpose(c);
  EXPECT_TRUE(t.validate());
  const auto d = csr_to_dense(c);
  const auto dt = csr_to_dense(t);
  for (vidx_t r = 0; r < c.nrows; ++r) {
    for (vidx_t col = 0; col < c.ncols; ++col) {
      EXPECT_EQ(d[static_cast<std::size_t>(r) * 37 + col],
                dt[static_cast<std::size_t>(col) * 37 + r]);
    }
  }
}

TEST(Csr, DoubleTransposeIsIdentity) {
  for (const auto& [name, m] : test::small_matrices_cached()) {
    const Csr tt = transpose(transpose(m));
    EXPECT_EQ(m.rowptr, tt.rowptr) << name;
    EXPECT_EQ(m.colind, tt.colind) << name;
  }
}

TEST(Csr, SymmetrizeIsIdempotentAcrossPatterns) {
  for (const auto& [name, m] : test::small_matrices_cached()) {
    SCOPED_TRACE(name);
    const Csr s = symmetrize(m);
    EXPECT_TRUE(is_symmetric(s));
    const Csr ss = symmetrize(s);
    EXPECT_EQ(s.rowptr, ss.rowptr);
    EXPECT_EQ(s.colind, ss.colind);
  }
}

TEST(Csr, TransposePreservesWeights) {
  Coo a{3, 3, {}, {}, {}};
  a.push(0, 1, 2.0f);
  a.push(1, 2, 3.0f);
  a.push(2, 0, 4.0f);
  const Csr t = transpose(coo_to_csr(a));
  // t(1,0) == 2, t(2,1) == 3, t(0,2) == 4.
  EXPECT_FLOAT_EQ(4.0f, t.row_vals(0)[0]);
  EXPECT_FLOAT_EQ(2.0f, t.row_vals(1)[0]);
  EXPECT_FLOAT_EQ(3.0f, t.row_vals(2)[0]);
}

TEST(Csr, LowerTriangleStrict) {
  const Csr c = coo_to_csr(gen_random(30, 200, 9));
  const Csr l = lower_triangle(c);
  EXPECT_TRUE(l.validate());
  for (vidx_t r = 0; r < l.nrows; ++r) {
    for (const vidx_t col : l.row_cols(r)) {
      EXPECT_LT(col, r);
    }
  }
}

TEST(Csr, SymmetrizeProducesSymmetricUnion) {
  const Csr c = coo_to_csr(gen_random(25, 120, 10));
  const Csr s = symmetrize(c);
  EXPECT_TRUE(s.validate());
  EXPECT_TRUE(is_symmetric(s));
  // Every original edge survives.
  for (vidx_t r = 0; r < c.nrows; ++r) {
    for (const vidx_t col : c.row_cols(r)) {
      const auto row = s.row_cols(r);
      EXPECT_TRUE(std::binary_search(row.begin(), row.end(), col))
          << r << "," << col;
    }
  }
}

TEST(Csr, StripDiagonalRemovesExactlyDiagonal) {
  Coo a{4, 4, {}, {}, {}};
  a.push(0, 0);
  a.push(0, 1);
  a.push(2, 2);
  a.push(3, 1);
  const Csr d = strip_diagonal(coo_to_csr(a));
  EXPECT_EQ(2, d.nnz());
  for (vidx_t r = 0; r < d.nrows; ++r) {
    for (const vidx_t col : d.row_cols(r)) EXPECT_NE(r, col);
  }
}

TEST(Csr, OutDegrees) {
  const Csr c = coo_to_csr(gen_banded(20, 2, 1.0, 0));
  const auto deg = out_degrees(c);
  for (vidx_t r = 0; r < c.nrows; ++r) {
    EXPECT_EQ(static_cast<vidx_t>(c.row_cols(r).size()),
              deg[static_cast<std::size_t>(r)]);
  }
}

TEST(Csr, DensityAndStorage) {
  const Csr c = coo_to_csr(gen_random(100, 500, 21));
  EXPECT_NEAR(500.0 / (100.0 * 100.0), c.density(), 1e-12);
  // (nrows+1 + nnz) * 4 + nnz * 4 bytes.
  EXPECT_EQ((101u + 500u) * 4u + 500u * 4u, c.storage_bytes());
}

TEST(Csr, ValidateCatchesBrokenRowptr) {
  Csr c = coo_to_csr(gen_random(10, 30, 22));
  c.rowptr[3] = c.rowptr[5];  // may break monotonicity/sortedness bounds
  c.rowptr[5] = 1;
  EXPECT_FALSE(c.validate());
}

TEST(Csr, IsSymmetricDetectsAsymmetry) {
  Coo a{3, 3, {}, {}, {}};
  a.push(0, 1);
  EXPECT_FALSE(is_symmetric(coo_to_csr(a)));
  a.push(1, 0);
  EXPECT_TRUE(is_symmetric(coo_to_csr(a)));
}

}  // namespace
}  // namespace bitgb
