// Durable snapshot suite: crc32c vectors and SW/HW parity, the
// save/load roundtrip over the oracle corpus (bit-identical files and
// prewarmed caches), crash-consistency under the injected I/O faults,
// registry save_all/recover (including quarantine), and the
// fingerprint-keyed re-add dedup.
#include "algorithms/bfs.hpp"
#include "graphblas/graph.hpp"
#include "platform/crc32c.hpp"
#include "platform/fault_injector.hpp"
#include "serving/server.hpp"
#include "sparse/snapshot.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

namespace bitgb {
namespace {

namespace fs = std::filesystem;
using snap::SnapshotError;

/// Fresh scratch directory per test, removed on teardown.
class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("bitgb-snap-" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

std::vector<char> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f) << path;
  return std::vector<char>(std::istreambuf_iterator<char>(f),
                           std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------
// crc32c
// ---------------------------------------------------------------------

TEST(Crc32c, Rfc3720Vector) {
  // The iSCSI check value: crc32c("123456789") == 0xE3069283.
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
}

TEST(Crc32c, KnownValues) {
  EXPECT_EQ(crc32c("", 0), 0u);
  const std::vector<unsigned char> zeros(32, 0);
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  const std::vector<unsigned char> ffs(32, 0xFF);
  EXPECT_EQ(crc32c(ffs.data(), ffs.size()), 0x62A8AB43u);
}

TEST(Crc32c, IncrementalComposition) {
  const char* s = "the quick brown fox jumps over the lazy dog";
  const std::size_t n = 43;
  const std::uint32_t whole = crc32c(s, n);
  for (const std::size_t split : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{8},
                                  std::size_t{21}, n}) {
    EXPECT_EQ(crc32c(s + split, n - split, crc32c(s, split)), whole);
  }
}

TEST(Crc32c, SoftwareHardwareParity) {
  if (!detail::crc32c_hw_active()) {
    GTEST_SKIP() << "no SSE4.2 CRC32 on this host";
  }
  std::mt19937_64 rng(0xc4c);
  for (const std::size_t len : {std::size_t{0}, std::size_t{1},
                                std::size_t{7}, std::size_t{8},
                                std::size_t{9}, std::size_t{63},
                                std::size_t{64}, std::size_t{1000},
                                std::size_t{4096}}) {
    std::vector<unsigned char> buf(len);
    for (auto& b : buf) b = static_cast<unsigned char>(rng());
    EXPECT_EQ(crc32c(buf.data(), len), detail::crc32c_sw(buf.data(), len))
        << "len " << len;
  }
}

// ---------------------------------------------------------------------
// Graph save/load roundtrip
// ---------------------------------------------------------------------

TEST_F(SnapshotTest, RoundtripOracleCorpusBitIdentical) {
  for (const auto& [name, a] : test::small_matrices()) {
    const gb::Graph g = gb::Graph::from_csr(a);
    const std::string p = path(name + ".bgbs");
    g.save(p, gb::kBitFormats);

    const gb::Graph loaded = gb::Graph::load(p);
    EXPECT_EQ(loaded.num_vertices(), g.num_vertices()) << name;
    EXPECT_EQ(loaded.num_edges(), g.num_edges()) << name;
    EXPECT_EQ(loaded.fingerprint(), g.fingerprint()) << name;
    EXPECT_EQ(loaded.adjacency().rowptr, g.adjacency().rowptr) << name;
    EXPECT_EQ(loaded.adjacency().colind, g.adjacency().colind) << name;

    // Every persisted format is already materialized — the warm-restart
    // contract: no re-prewarm, no re-pack.
    EXPECT_EQ(loaded.formats() & gb::kBitFormats, gb::kBitFormats) << name;

    // Re-saving the loaded graph must reproduce the file byte for byte:
    // the strongest cheap statement that nothing was lost or recomputed
    // differently.
    const std::string p2 = path(name + ".resave.bgbs");
    loaded.save(p2, gb::kBitFormats);
    EXPECT_EQ(slurp(p), slurp(p2)) << name;
  }
}

TEST_F(SnapshotTest, LoadedGraphServesBitIdenticalQueries) {
  const gb::Graph g = gb::Graph::from_csr(test::small_matrix(3).second);
  const std::string p = path("g.bgbs");
  g.save(p);
  const gb::Graph loaded = gb::Graph::load(p);
  const Context ctx = Context{}.with_threads(1);
  for (const vidx_t s : {vidx_t{0}, vidx_t{17}, vidx_t{127}}) {
    EXPECT_EQ(algo::bfs(ctx, loaded, {s}).levels,
              algo::bfs(ctx, g, {s}).levels)
        << "source " << s;
  }
}

TEST_F(SnapshotTest, UnitFormatsAreDerivedNotPersisted) {
  const gb::Graph g = gb::Graph::from_csr(test::small_matrix(2).second);
  const std::string p = path("g.bgbs");
  // Ask for everything: the writer must strip the unit-CSR bits.
  g.save(p, gb::kAllFormats);
  const gb::Graph loaded = gb::Graph::load(p);
  EXPECT_EQ(loaded.formats() & (gb::kFmtUnitCsr | gb::kFmtUnitCsrT), 0u);
  // They still materialize lazily on demand.
  EXPECT_EQ(loaded.unit_adjacency().val.size(),
            static_cast<std::size_t>(loaded.num_edges()));
  EXPECT_NE(loaded.formats() & gb::kFmtUnitCsr, 0u);
}

TEST_F(SnapshotTest, CsrOnlySnapshotRewarmsLazily) {
  const gb::Graph g = gb::Graph::from_csr(test::small_matrix(4).second);
  const std::string p = path("csr-only.bgbs");
  g.save(p, gb::kFmtCsr);  // nothing but the canonical adjacency
  const gb::Graph loaded = gb::Graph::load(p);
  EXPECT_EQ(loaded.formats(), gb::kFmtCsr);
  // Derived formats still build on demand and agree with the original.
  EXPECT_EQ(loaded.packed().nnz(), g.num_edges());
  EXPECT_EQ(loaded.degrees(), g.degrees());
}

TEST_F(SnapshotTest, FingerprintKeysContentNotConstructionPath) {
  const Csr& a = test::small_matrix(3).second;
  const gb::Graph g1 = gb::Graph::from_csr(a);
  const gb::Graph g2 = gb::Graph::from_csr(a);
  EXPECT_EQ(g1.fingerprint(), g2.fingerprint());
  const gb::Graph other = gb::Graph::from_csr(test::small_matrix(5).second);
  EXPECT_NE(g1.fingerprint(), other.fingerprint());
}

TEST_F(SnapshotTest, LoadRejectsMissingFile) {
  try {
    (void)gb::Graph::load(path("nope.bgbs"));
    FAIL() << "load of a missing file did not throw";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kIo);
  }
}

// ---------------------------------------------------------------------
// Crash consistency under injected I/O faults
// ---------------------------------------------------------------------

TEST_F(SnapshotTest, InjectedWriteErrorLeavesOldSnapshotIntact) {
  const gb::Graph g = gb::Graph::from_csr(test::small_matrix(3).second);
  const std::string p = path("g.bgbs");
  g.save(p);
  const auto good = slurp(p);

  // Every possible failing write index: the durable file must survive
  // the ENOSPC analog at any point in the stream.
  for (std::uint64_t at = 1;; ++at) {
    FaultPlan plan;
    plan.io_error_after = at;
    FaultInjector fault(plan);
    try {
      g.save(p, gb::kBitFormats, &fault);
      break;  // `at` is beyond the write count: the save succeeded
    } catch (const SnapshotError& e) {
      EXPECT_EQ(e.kind(), SnapshotError::Kind::kIo);
    }
    EXPECT_EQ(slurp(p), good) << "old snapshot damaged by failed write " << at;
    EXPECT_FALSE(fs::exists(p + ".tmp"))
        << "clean failure must not leave a temp file";
    ASSERT_LT(at, 1000u) << "fault never went off";
  }
  EXPECT_EQ(slurp(p), good);
}

TEST_F(SnapshotTest, ShortWriteCrashLeavesTornTempAndIntactSnapshot) {
  const gb::Graph g = gb::Graph::from_csr(test::small_matrix(3).second);
  const std::string p = path("g.bgbs");
  g.save(p);
  const auto good = slurp(p);

  FaultPlan plan;
  plan.io_short_write_after = 3;  // die mid-file, after some bytes landed
  FaultInjector fault(plan);
  try {
    g.save(p, gb::kBitFormats, &fault);
    FAIL() << "simulated crash did not surface";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kIo);
  }
  // The crash left its torn temp file (a real crash would), and the
  // durably renamed snapshot is untouched.
  EXPECT_TRUE(fs::exists(p + ".tmp"));
  EXPECT_EQ(slurp(p), good);
  // The torn temp is not loadable — recovery ignores it by name, and
  // even loading it by hand fails the container checks.
  EXPECT_THROW((void)gb::Graph::load(p + ".tmp"), SnapshotError);
  // The original still loads.
  EXPECT_EQ(gb::Graph::load(p).fingerprint(), g.fingerprint());
}

TEST_F(SnapshotTest, InFlightBitFlipIsCaughtAtLoad) {
  const gb::Graph g = gb::Graph::from_csr(test::small_matrix(3).second);
  // Flip one bit inside some write: the write "succeeds", the CRCs (or
  // the structural validators) catch it at load time.  Sweep the first
  // several writes so header, section headers, and payloads all get hit.
  for (std::uint64_t at = 1; at <= 8; ++at) {
    const std::string p = path("flip" + std::to_string(at) + ".bgbs");
    FaultPlan plan;
    plan.io_bit_flip_after = at;
    plan.seed = at * 1337;
    FaultInjector fault(plan);
    g.save(p, gb::kBitFormats, &fault);
    if (fault.faults_thrown() == 0) break;  // past the last write
    EXPECT_THROW((void)gb::Graph::load(p), SnapshotError) << "write " << at;
  }
}

// ---------------------------------------------------------------------
// Registry durability: save_all / recover / dedup
// ---------------------------------------------------------------------

void fill_registry(serving::GraphRegistry& reg) {
  reg.add("alpha", gb::Graph::from_csr(test::small_matrix(2).second));
  reg.add("beta", gb::Graph::from_csr(test::small_matrix(3).second));
  reg.add("gamma twin", gb::Graph::from_csr(test::small_matrix(2).second));
}

TEST_F(SnapshotTest, RegistrySaveAllRecoverRoundtrip) {
  serving::GraphRegistry reg;
  fill_registry(reg);
  const std::uint64_t alpha_fp =
      reg.lookup("alpha")->graph().fingerprint();
  reg.save_all(dir_.string());
  // alpha and "gamma twin" share content, so only two snapshot files.
  std::size_t snapshots = 0;
  for (const auto& e : fs::directory_iterator(dir_)) {
    snapshots += (e.path().extension() == ".bgbs") ? 1 : 0;
  }
  EXPECT_EQ(snapshots, 2u);

  serving::GraphRegistry fresh;
  const auto report = fresh.recover(dir_.string());
  EXPECT_EQ(report.entries.size(), 3u);
  EXPECT_EQ(report.recovered(), 3u);
  EXPECT_EQ(report.quarantined(), 0u);
  EXPECT_EQ(fresh.size(), 3u);
  ASSERT_NE(fresh.lookup("gamma twin"), nullptr);  // spaces survive
  EXPECT_EQ(fresh.lookup("alpha")->graph().fingerprint(), alpha_fp);
  // Recovered graphs come back prewarmed.
  EXPECT_EQ(fresh.lookup("beta")->graph().formats() & gb::kBitFormats,
            gb::kBitFormats);
  EXPECT_EQ(fresh.recovered_count(), 3u);
  EXPECT_EQ(fresh.quarantined_count(), 0u);
}

TEST_F(SnapshotTest, RecoverServesBitIdenticalQueries) {
  serving::GraphRegistry reg;
  fill_registry(reg);
  const Context ctx = Context{}.with_threads(1);
  const auto before =
      algo::bfs(ctx, reg.lookup("beta")->graph(), {vidx_t{5}}).levels;
  reg.save_all(dir_.string());

  serving::GraphRegistry fresh;
  (void)fresh.recover(dir_.string());
  const auto after =
      algo::bfs(ctx, fresh.lookup("beta")->graph(), {vidx_t{5}}).levels;
  EXPECT_EQ(before, after);
}

TEST_F(SnapshotTest, RecoverQuarantinesCorruptionWithoutFailingOthers) {
  serving::GraphRegistry reg;
  fill_registry(reg);
  reg.save_all(dir_.string());

  // Corrupt beta's snapshot (flip one payload byte) and delete nothing.
  const std::uint64_t beta_fp = reg.lookup("beta")->graph().fingerprint();
  char fp_hex[17];
  std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                static_cast<unsigned long long>(beta_fp));
  const std::string beta_file =
      (dir_ / ("snap-" + std::string(fp_hex) + ".bgbs")).string();
  auto bytes = slurp(beta_file);
  ASSERT_GT(bytes.size(), 100u);
  bytes[90] = static_cast<char>(bytes[90] ^ 0x40);
  std::ofstream(beta_file, std::ios::binary)
      .write(bytes.data(), static_cast<std::streamsize>(bytes.size()));

  serving::GraphRegistry fresh;
  const auto report = fresh.recover(dir_.string());
  EXPECT_EQ(report.entries.size(), 3u);
  EXPECT_EQ(report.recovered(), 2u);
  EXPECT_EQ(report.quarantined(), 1u);
  EXPECT_EQ(fresh.lookup("beta"), nullptr);
  EXPECT_NE(fresh.lookup("alpha"), nullptr);
  EXPECT_NE(fresh.lookup("gamma twin"), nullptr);
  for (const auto& e : report.entries) {
    if (e.name == "beta") {
      EXPECT_EQ(e.status, serving::RecoveryStatus::kQuarantined);
      EXPECT_FALSE(e.error.empty());
    } else {
      EXPECT_EQ(e.status, serving::RecoveryStatus::kRecovered);
    }
  }
  // The quarantined file is left in place for forensics.
  EXPECT_TRUE(fs::exists(beta_file));
}

TEST_F(SnapshotTest, RecoverReportsMissingSnapshotFiles) {
  serving::GraphRegistry reg;
  fill_registry(reg);
  reg.save_all(dir_.string());
  const std::uint64_t beta_fp = reg.lookup("beta")->graph().fingerprint();
  char fp_hex[17];
  std::snprintf(fp_hex, sizeof(fp_hex), "%016llx",
                static_cast<unsigned long long>(beta_fp));
  fs::remove(dir_ / ("snap-" + std::string(fp_hex) + ".bgbs"));

  serving::GraphRegistry fresh;
  const auto report = fresh.recover(dir_.string());
  EXPECT_EQ(report.missing(), 1u);
  EXPECT_EQ(report.recovered(), 2u);
  EXPECT_EQ(fresh.lookup("beta"), nullptr);
}

TEST_F(SnapshotTest, RecoverWithNoManifestIsEmpty) {
  serving::GraphRegistry fresh;
  const auto report = fresh.recover(dir_.string());
  EXPECT_TRUE(report.entries.empty());
  EXPECT_EQ(fresh.size(), 0u);
}

TEST_F(SnapshotTest, RecoverAfterMidSaveCrashRestoresExactlyTheDurableWorld) {
  // Crash matrix: generation one (alpha) saves cleanly, then generation
  // two (alpha + beta) crashes at EVERY possible physical write — mid
  // snapshot, mid section, mid manifest.  After each crash, recover()
  // must see a consistent world: at minimum the durably-renamed
  // generation-one state, never a quarantine, never a torn read.
  serving::GraphRegistry gen1;
  gen1.add("alpha", gb::Graph::from_csr(test::small_matrix(2).second));
  serving::GraphRegistry gen2;
  gen2.add("alpha", gb::Graph::from_csr(test::small_matrix(2).second));
  gen2.add("beta", gb::Graph::from_csr(test::small_matrix(3).second));

  std::size_t crash_points = 0;
  for (std::uint64_t at = 1; at < 1000; ++at) {
    const fs::path sub = dir_ / ("crash" + std::to_string(at));
    fs::create_directories(sub);
    gen1.save_all(sub.string());

    FaultPlan plan;
    plan.io_short_write_after = at;
    FaultInjector fault(plan);
    bool crashed = false;
    try {
      gen2.save_all(sub.string(), gb::kBitFormats, &fault);
    } catch (const SnapshotError&) {
      crashed = true;
      ++crash_points;
    }

    serving::GraphRegistry fresh;
    const auto report = fresh.recover(sub.string());
    EXPECT_EQ(report.quarantined(), 0u) << "crash at write " << at;
    EXPECT_EQ(report.missing(), 0u) << "crash at write " << at;
    // alpha was durable before the crash; it must always come back.
    ASSERT_NE(fresh.lookup("alpha"), nullptr) << "crash at write " << at;
    if (crashed) {
      // The torn save published nothing beyond already-renamed files:
      // whatever the manifest names, it loads.
      EXPECT_GE(report.recovered(), 1u);
    } else {
      // Past the last write: the full generation-two state landed.
      EXPECT_EQ(report.recovered(), 2u);
      EXPECT_NE(fresh.lookup("beta"), nullptr);
      break;
    }
  }
  EXPECT_GT(crash_points, 10u) << "the sweep never exercised real crashes";
}

TEST_F(SnapshotTest, SaveAllRejectsNewlineNames) {
  serving::GraphRegistry reg;
  reg.add("bad\nname", gb::Graph::from_csr(test::small_matrix(2).second));
  try {
    reg.save_all(dir_.string());
    FAIL() << "newline name must not be manifested";
  } catch (const SnapshotError& e) {
    EXPECT_EQ(e.kind(), SnapshotError::Kind::kMalformed);
  }
}

TEST_F(SnapshotTest, ReAddDedupReusesPrewarmedGraph) {
  serving::GraphRegistry reg;
  const Csr& a = test::small_matrix(3).second;
  const auto slot1 = reg.add("g", gb::Graph::from_csr(a));
  EXPECT_EQ(reg.dedup_hits(), 0u);

  // Same name, same content: the new slot must share the SAME Graph
  // object (no re-prewarm) under a NEW generation.
  const auto slot2 = reg.add("g", gb::Graph::from_csr(a));
  EXPECT_EQ(reg.dedup_hits(), 1u);
  EXPECT_GT(slot2->generation(), slot1->generation());
  EXPECT_EQ(&slot2->graph(), &slot1->graph());

  // Different content under the same name: a real replacement.
  const auto slot3 =
      reg.add("g", gb::Graph::from_csr(test::small_matrix(5).second));
  EXPECT_EQ(reg.dedup_hits(), 1u);
  EXPECT_NE(&slot3->graph(), &slot1->graph());

  // Same content as slot3 but wanting MORE formats than it has: the
  // dedup must not hand back an under-warmed graph.
  const auto slot4 =
      reg.add("g", gb::Graph::from_csr(test::small_matrix(5).second),
              gb::kAllFormats);
  EXPECT_EQ(reg.dedup_hits(), 1u);
  EXPECT_EQ(slot4->graph().formats() & gb::kAllFormats, gb::kAllFormats);
}

TEST_F(SnapshotTest, ServerStatsSurfaceRegistryDurabilityCounters) {
  serving::GraphRegistry reg;
  fill_registry(reg);
  reg.save_all(dir_.string());
  reg.add("alpha", gb::Graph::from_csr(test::small_matrix(2).second));
  (void)reg.recover(dir_.string());  // re-adds dedup against live slots

  serving::Server server(reg, [] {
    serving::ServerOptions o;
    o.workers = 1;
    return o;
  }());
  const auto st = server.stats();
  EXPECT_EQ(st.registry_dedup_hits, reg.dedup_hits());
  EXPECT_EQ(st.graphs_recovered, reg.recovered_count());
  EXPECT_EQ(st.graphs_quarantined, reg.quarantined_count());
  EXPECT_GE(st.registry_dedup_hits, 1u);
  EXPECT_EQ(st.graphs_recovered, 3u);
  server.shutdown();

  // Single-graph mode: the counters are defined (zero), not garbage.
  const gb::Graph g = gb::Graph::from_csr(test::small_matrix(2).second);
  g.prewarm(gb::kBitFormats);
  serving::Server single(g);
  EXPECT_EQ(single.stats().registry_dedup_hits, 0u);
  EXPECT_EQ(single.stats().graphs_recovered, 0u);
  single.shutdown();
}

}  // namespace
}  // namespace bitgb
