// Unit tests for the synthetic matrix generators (the dataset
// substitute) — determinism, structural properties, category shapes.
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"
#include "sparse/csr.hpp"

#include <gtest/gtest.h>

namespace bitgb {
namespace {

TEST(Generators, RandomHitsExactNnzAndNoDiagonal) {
  const Coo a = gen_random(100, 500, 1);
  EXPECT_TRUE(a.validate());
  EXPECT_EQ(500, a.nnz());
  for (eidx_t i = 0; i < a.nnz(); ++i) {
    EXPECT_NE(a.row[static_cast<std::size_t>(i)],
              a.col[static_cast<std::size_t>(i)]);
  }
}

TEST(Generators, RandomIsDeterministicPerSeed) {
  const Coo a = gen_random(64, 256, 7);
  const Coo b = gen_random(64, 256, 7);
  const Coo c = gen_random(64, 256, 8);
  EXPECT_EQ(a.row, b.row);
  EXPECT_EQ(a.col, b.col);
  EXPECT_NE(a.col, c.col);  // different seed, different matrix
}

TEST(Generators, RandomCapsAtMaximumOffDiagonal) {
  const Coo a = gen_random(5, 10000, 2);  // asks for more than 5*4=20
  EXPECT_EQ(20, a.nnz());
}

TEST(Generators, BandedStaysInBand) {
  const vidx_t bw = 3;
  const Coo a = gen_banded(50, bw, 1.0, 3);
  EXPECT_TRUE(a.validate());
  for (eidx_t i = 0; i < a.nnz(); ++i) {
    const auto d = std::abs(a.row[static_cast<std::size_t>(i)] -
                            a.col[static_cast<std::size_t>(i)]);
    EXPECT_LE(d, bw);
    EXPECT_GT(d, 0);  // no diagonal
  }
  // fill=1.0 band is full: 2*bw*n - boundary corrections.
  EXPECT_EQ(2 * 3 * 50 - 2 * (1 + 2 + 3), a.nnz());
}

TEST(Generators, BlockEntriesLieInBlocks) {
  const Coo a = gen_block(64, 8, 3, 1.0, 4, false);
  EXPECT_TRUE(a.validate());
  EXPECT_GT(a.nnz(), 0);
}

TEST(Generators, StripeFollowsLines) {
  const Coo a = gen_stripe(97, 2, 1.0, 5);
  EXPECT_TRUE(a.validate());
  // Two full stripes minus diagonal hits: close to 2n.
  EXPECT_GT(a.nnz(), 97);
  EXPECT_LE(a.nnz(), 2 * 97);
}

TEST(Generators, RoadIsSymmetricPlanarGrid) {
  const Coo a = gen_road(8, 6, 0.0, 6);
  EXPECT_TRUE(a.validate());
  const Csr c = coo_to_csr(a);
  EXPECT_TRUE(is_symmetric(c));
  // 4-neighbour grid: (w-1)*h + w*(h-1) undirected edges, doubled.
  EXPECT_EQ(2 * (7 * 6 + 8 * 5), c.nnz());
}

TEST(Generators, HybridCombinesPatterns) {
  const Coo a = gen_hybrid(128, 7);
  EXPECT_TRUE(a.validate());
  EXPECT_GT(a.nnz(), 128);  // band + blocks + dots
}

TEST(Generators, RmatRespectsScaleAndDedup) {
  const Coo a = gen_rmat(8, 1000, 8);
  EXPECT_TRUE(a.validate());
  EXPECT_EQ(256, a.nrows);
  EXPECT_LE(a.nnz(), 1000);
  EXPECT_GT(a.nnz(), 500);  // most attempts land (dedup drops a few)
}

TEST(Generators, MycielskianSizesMatchSuiteSparse) {
  // The SuiteSparse mycielskianN graphs are this exact construction:
  // n(k) = 2*n(k-1)+1 from n(2)=2 -> 5, 11, 23, 47, 95, 191, 383, ...
  EXPECT_EQ(2, gen_mycielskian(2).nrows);
  EXPECT_EQ(5, gen_mycielskian(3).nrows);
  EXPECT_EQ(11, gen_mycielskian(4).nrows);
  EXPECT_EQ(47, gen_mycielskian(6).nrows);
  EXPECT_EQ(383, gen_mycielskian(9).nrows);
  EXPECT_EQ(767, gen_mycielskian(10).nrows);
  EXPECT_EQ(3071, gen_mycielskian(12).nrows);
}

TEST(Generators, MycielskianIsSymmetricAndTriangleFreeAtK3) {
  // The Mycielski construction preserves triangle-freeness; starting
  // from K2 every mycielskianN is triangle-free.
  const Csr c = coo_to_csr(gen_mycielskian(5));
  EXPECT_TRUE(is_symmetric(c));
  // Brute-force triangle check.
  const auto dense = csr_to_dense(c);
  const auto at = [&](vidx_t r, vidx_t cc) {
    return dense[static_cast<std::size_t>(r) * c.ncols + cc] != 0.0f;
  };
  for (vidx_t i = 0; i < c.nrows; ++i) {
    for (vidx_t j = i + 1; j < c.nrows; ++j) {
      if (!at(i, j)) continue;
      for (vidx_t k = j + 1; k < c.nrows; ++k) {
        EXPECT_FALSE(at(i, j) && at(j, k) && at(i, k))
            << "triangle " << i << "," << j << "," << k;
      }
    }
  }
}

TEST(Generators, ChainOfCliquesIsSymmetricAndConnectedish) {
  const Coo a = gen_chain_of_cliques(10, 5, 9);
  EXPECT_TRUE(a.validate());
  EXPECT_EQ(50, a.nrows);
  EXPECT_TRUE(is_symmetric(coo_to_csr(a)));
}

TEST(Generators, PatternDispatcherCoversAllCategories) {
  for (const Pattern p :
       {Pattern::kDot, Pattern::kDiagonal, Pattern::kBlock, Pattern::kStripe,
        Pattern::kRoad, Pattern::kHybrid}) {
    const Coo a = gen_pattern(p, 200, 0.01, 10);
    EXPECT_TRUE(a.validate()) << pattern_name(p);
    EXPECT_GT(a.nnz(), 0) << pattern_name(p);
  }
}

TEST(Generators, PatternDispatcherIsDeterministicPerSeed) {
  // The corpus builder and the test fixture both depend on generator
  // determinism; a platform-dependent RNG use would silently skew every
  // reproduced figure.
  for (const Pattern p :
       {Pattern::kDot, Pattern::kDiagonal, Pattern::kBlock, Pattern::kStripe,
        Pattern::kRoad, Pattern::kHybrid}) {
    const Coo a = gen_pattern(p, 150, 0.02, 11);
    const Coo b = gen_pattern(p, 150, 0.02, 11);
    EXPECT_EQ(a.row, b.row) << pattern_name(p);
    EXPECT_EQ(a.col, b.col) << pattern_name(p);
  }
  // And the seed actually matters for the randomized categories.
  const Coo a = gen_pattern(Pattern::kDot, 150, 0.02, 11);
  const Coo c = gen_pattern(Pattern::kDot, 150, 0.02, 12);
  EXPECT_NE(a.col, c.col);
}

TEST(Generators, PatternNamesAreStable) {
  EXPECT_STREQ("dot", pattern_name(Pattern::kDot));
  EXPECT_STREQ("diagonal", pattern_name(Pattern::kDiagonal));
  EXPECT_STREQ("block", pattern_name(Pattern::kBlock));
  EXPECT_STREQ("stripe", pattern_name(Pattern::kStripe));
  EXPECT_STREQ("road", pattern_name(Pattern::kRoad));
  EXPECT_STREQ("hybrid", pattern_name(Pattern::kHybrid));
}

}  // namespace
}  // namespace bitgb
