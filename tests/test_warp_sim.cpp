// Unit tests for the warp execution model (platform/warp_sim.hpp) —
// the CUDA-intrinsics substitute must reproduce __ballot_sync /
// __shfl_sync semantics exactly for full-mask convergent use.
#include "platform/intrinsics.hpp"
#include "platform/warp_sim.hpp"

#include <gtest/gtest.h>

namespace bitgb::sim {
namespace {

TEST(WarpSim, BallotBitNIsLaneNPredicate) {
  Warp warp;
  // Even lanes true: 0b...0101 pattern.
  const std::uint32_t w = warp.ballot([](int lane) { return lane % 2 == 0; });
  EXPECT_EQ(0x55555555u, w);
  const std::uint32_t odd = warp.ballot([](int lane) { return lane % 2 == 1; });
  EXPECT_EQ(0xAAAAAAAAu, odd);
}

TEST(WarpSim, BallotAllAndNone) {
  Warp warp;
  EXPECT_EQ(0xFFFFFFFFu, warp.ballot([](int) { return true; }));
  EXPECT_EQ(0u, warp.ballot([](int) { return false; }));
}

TEST(WarpSim, BallotSingleLane) {
  Warp warp;
  for (int target = 0; target < kWarpSize; ++target) {
    const std::uint32_t w =
        warp.ballot([&](int lane) { return lane == target; });
    EXPECT_EQ(1u << target, w);
  }
}

TEST(WarpSim, GatherIsShflSemantics) {
  Warp warp;
  // Each lane holds lane*3+1; gather[src] must be src's value for all
  // readers (shfl broadcasts one lane's register to the full warp).
  const auto vals = warp.gather(
      [](int lane) { return static_cast<std::uint32_t>(lane * 3 + 1); });
  for (int src = 0; src < kWarpSize; ++src) {
    EXPECT_EQ(static_cast<std::uint32_t>(src * 3 + 1),
              vals[static_cast<std::size_t>(src)]);
  }
}

TEST(WarpSim, ForEachLaneVisitsAll32Once) {
  Warp warp;
  int visits[kWarpSize] = {};
  warp.for_each_lane([&](int lane) { ++visits[lane]; });
  for (int lane = 0; lane < kWarpSize; ++lane) EXPECT_EQ(1, visits[lane]);
}

TEST(WarpSim, AtomicAnalogs) {
  float f = 1.0f;
  atomic_add(f, 2.5f);
  EXPECT_FLOAT_EQ(3.5f, f);
  atomic_min(f, 2.0f);
  EXPECT_FLOAT_EQ(2.0f, f);
  atomic_min(f, 9.0f);  // larger: no change
  EXPECT_FLOAT_EQ(2.0f, f);
  std::uint32_t w = 0x0F;
  atomic_or(w, 0xF0);
  EXPECT_EQ(0xFFu, w);
  std::int32_t i = -3;
  atomic_add(i, 5);
  EXPECT_EQ(2, i);
}

TEST(WarpSim, BallotComposesWithBrevLikeThePaperPacking) {
  // The paper packs with __brev(__ballot_sync(...)): lane L's predicate
  // lands at bit (31-L) after brev.  Validate that composition here so
  // the packing tests can rely on it — for every lane, not just one.
  Warp warp;
  for (int target = 0; target < kWarpSize; ++target) {
    const std::uint32_t ballot =
        warp.ballot([&](int lane) { return lane == target; });
    EXPECT_EQ(1u << target, ballot);
    EXPECT_EQ(1u << (31 - target), brev(ballot)) << "lane " << target;
  }
}

}  // namespace
}  // namespace bitgb::sim
