// Fault containment, cooperative cancellation, and the circuit breaker
// (ctest label "serving"; runs in the TSan lane with the rest of the
// serving core).  Deterministic counterpart to the randomized
// serving-stress storm: every fault here is scheduled exactly — a
// one-shot Nth-call trigger, a pre-fired cancel token, a breaker driven
// through its whole state machine — so each containment path is pinned
// by itself, not by seed luck.
//
// The headline properties:
//   * a throwing wave (kernel fault or allocator exhaustion) fulfills
//     exactly its own requests with kInternalError and the worker
//     survives — and the queries served AFTER the fault are
//     bit-identical to serial oracle runs (a contained fault leaves no
//     residue in the worker's Workspace);
//   * an expired deadline aborts a PageRank wave mid-flight: the shed
//     reply's iteration counter is >= 1 and < the requested maximum —
//     the proof the wave stopped burning its budget instead of
//     finishing and discarding;
//   * the per-slot circuit breaker trips after K consecutive internal
//     errors, sheds fast while open, and re-closes through the
//     half-open probe;
//   * submit() after shutdown() is defined: immediate kShedShutdown,
//     never a hang;
//   * malformed PageRank params throw std::invalid_argument at the
//     door.
#include "serving/server.hpp"

#include "algorithms/bfs.hpp"
#include "algorithms/pagerank.hpp"
#include "platform/cancel.hpp"
#include "platform/fault_injector.hpp"
#include "serving/registry.hpp"
#include "sparse/generators.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <stdexcept>
#include <thread>
#include <vector>

namespace bitgb {
namespace {

using namespace std::chrono_literals;
using serving::CircuitBreaker;
using serving::CircuitBreakerPolicy;
using serving::GraphRegistry;
using serving::QueryKind;
using serving::Reply;
using serving::Server;
using serving::ServerOptions;
using serving::Status;

gb::Graph fault_graph(vidx_t n = 512, std::uint64_t seed = 99) {
  gb::GraphOptions opts;
  opts.tile_dim = 8;
  gb::Graph g = gb::Graph::from_coo(gen_random(n, 4 * n, seed), opts);
  g.prewarm(gb::kBitFormats);
  return g;
}

/// Single-worker server options: deterministic request ordering, so a
/// one-shot Nth-call fault lands on a known query.
ServerOptions one_worker(FaultInjector* injector = nullptr) {
  ServerOptions opts;
  opts.workers = 1;
  if (injector != nullptr) {
    opts.context = opts.context.with_fault(injector);
  }
  return opts;
}

// ---------------------------------------------------------------------
// CancelToken + algorithm-level cancellation semantics
// ---------------------------------------------------------------------

TEST(CancelToken, FlagAndDeadlineBothFire) {
  CancelToken none;
  EXPECT_FALSE(none.cancelled());
  none.request_cancel();
  EXPECT_TRUE(none.cancelled());
  EXPECT_TRUE(none.cancel_requested());

  CancelToken expired(CancelToken::clock::now() - 1ms);
  EXPECT_TRUE(expired.cancelled());
  EXPECT_FALSE(expired.cancel_requested());  // deadline, not the flag

  CancelToken future_tok(CancelToken::clock::now() + 1h);
  EXPECT_FALSE(future_tok.cancelled());
  future_tok.request_cancel();  // the flag can beat the deadline
  EXPECT_TRUE(future_tok.cancelled());
}

TEST(Cancellation, BfsReturnsValidPrefixNotGarbage) {
  const gb::Graph g = fault_graph();
  CancelToken fired;
  fired.request_cancel();
  const Context ctx = Context{}.with_threads(1).with_cancel(&fired);
  algo::Workspace ws;
  algo::BfsResult out;
  algo::bfs(ctx, g, {0}, ws, out);  // must return, not hang or throw
  // The prefix contract: buffers are fully sized and the source is
  // finalized even when the token fired before the first sweep.
  ASSERT_EQ(static_cast<std::size_t>(g.num_vertices()), out.levels.size());
  EXPECT_EQ(0, out.levels[0]);
  for (const auto lvl : out.levels) EXPECT_GE(lvl, algo::kUnreached);
}

TEST(Cancellation, PagerankStopsAtIterationBoundary) {
  const gb::Graph g = fault_graph();
  CancelToken fired;
  fired.request_cancel();
  const Context ctx = Context{}.with_threads(1).with_cancel(&fired);
  algo::Workspace ws;
  algo::PageRankResult out;
  algo::PageRankParams params;
  params.max_iterations = 50;
  algo::pagerank(ctx, g, params, ws, out);
  // Pre-fired token: not a single iteration may run.
  EXPECT_EQ(0, out.iterations);
  ASSERT_EQ(static_cast<std::size_t>(g.num_vertices()), out.rank.size());
}

// ---------------------------------------------------------------------
// FaultInjector determinism
// ---------------------------------------------------------------------

TEST(FaultInjector, SameSeedSameFaultSchedule) {
  FaultPlan plan;
  plan.seed = 42;
  plan.kernel_fault_rate = 0.3;
  FaultInjector a(plan), b(plan);
  constexpr int kCalls = 200;
  std::vector<bool> pattern_a, pattern_b;
  for (int i = 0; i < kCalls; ++i) {
    bool threw = false;
    try {
      a.on_kernel();
    } catch (const FaultInjectedError&) {
      threw = true;
    }
    pattern_a.push_back(threw);
  }
  for (int i = 0; i < kCalls; ++i) {
    bool threw = false;
    try {
      b.on_kernel();
    } catch (const FaultInjectedError&) {
      threw = true;
    }
    pattern_b.push_back(threw);
  }
  EXPECT_EQ(pattern_a, pattern_b);  // pure function of (seed, counter)
  EXPECT_EQ(a.faults_thrown(), b.faults_thrown());
  EXPECT_GT(a.faults_thrown(), 0u);          // 0.3 over 200 calls fires
  EXPECT_LT(a.faults_thrown(), kCalls);      // ... but not every call
}

TEST(FaultInjector, OneShotTriggersFireExactlyOnce) {
  FaultPlan plan;
  plan.bad_alloc_after = 3;
  FaultInjector inj(plan);
  inj.on_alloc();
  inj.on_alloc();
  EXPECT_THROW(inj.on_alloc(), std::bad_alloc);
  inj.on_alloc();  // the trigger is spent
  EXPECT_EQ(1u, inj.faults_thrown());
}

// ---------------------------------------------------------------------
// Containment: a throwing wave fails its requests, not the worker —
// and leaves no residue behind
// ---------------------------------------------------------------------

TEST(FaultContainment, KernelFaultIsContainedAndLaterQueriesAreBitIdentical) {
  const gb::Graph g = fault_graph();
  const vidx_t n = g.num_vertices();
  FaultPlan plan;
  plan.kernel_fault_after = 1;  // the very first level boundary throws
  FaultInjector injector(plan);
  Server server(g, one_worker(&injector));

  auto poisoned = server.submit(QueryKind::kBfs, 7);
  const Reply dead = poisoned.get();
  EXPECT_EQ(Status::kInternalError, dead.status);
  EXPECT_FALSE(dead.error.empty());

  // The worker must have survived, and the queries after the fault must
  // be BIT-IDENTICAL to serial oracle runs on a fresh workspace — the
  // contained fault left nothing behind in the worker's scratch.
  const Context oracle_ctx = Context{}.with_threads(1);
  for (const vidx_t src : {vidx_t{0}, vidx_t{7}, n - 1}) {
    const Reply r = server.submit(QueryKind::kBfs, src).get();
    ASSERT_EQ(Status::kOk, r.status);
    const algo::BfsResult gold = algo::bfs(oracle_ctx, g, {src});
    EXPECT_EQ(gold.levels, r.levels) << "post-fault divergence from src "
                                     << src;
  }
  const Reply pr = server.submit_pagerank().get();
  ASSERT_EQ(Status::kOk, pr.status);
  const algo::PageRankResult pr_gold = algo::pagerank(oracle_ctx, g, {});
  EXPECT_EQ(pr_gold.rank, pr.rank);  // bit-identical, not approximately
  EXPECT_EQ(pr_gold.iterations, pr.iterations);

  server.shutdown();
  const auto st = server.stats();
  EXPECT_EQ(1u, st.failed);
  EXPECT_EQ(4u, st.completed);
  EXPECT_EQ(st.submitted, st.accounted());
}

TEST(FaultContainment, AllocatorExhaustionIsContained) {
  const gb::Graph g = fault_graph();
  FaultPlan plan;
  plan.bad_alloc_after = 1;  // the first buffer-sizing prologue throws
  FaultInjector injector(plan);
  Server server(g, one_worker(&injector));

  const Reply dead = server.submit(QueryKind::kBfs, 0).get();
  EXPECT_EQ(Status::kInternalError, dead.status);
  EXPECT_EQ("std::bad_alloc", dead.error);

  const Reply alive = server.submit(QueryKind::kBfs, 0).get();
  EXPECT_EQ(Status::kOk, alive.status);

  server.shutdown();
  const auto st = server.stats();
  EXPECT_EQ(1u, st.failed);
  EXPECT_EQ(st.submitted, st.accounted());
}

TEST(FaultContainment, ThrowingComponentsMemoIsRetriedNotCached) {
  const gb::Graph g = fault_graph();
  FaultPlan plan;
  plan.kernel_fault_after = 1;  // kills the FIRST memo attempt
  FaultInjector injector(plan);
  Server server(g, one_worker(&injector));

  const Reply dead = server.submit(QueryKind::kComponents, 0).get();
  EXPECT_EQ(Status::kInternalError, dead.status);

  // The memo treats the throwing attempt as never-ran: the next
  // components query recomputes and must succeed with a full labelling.
  const Reply alive = server.submit(QueryKind::kComponents, 0).get();
  ASSERT_EQ(Status::kOk, alive.status);
  EXPECT_EQ(static_cast<std::size_t>(g.num_vertices()),
            alive.component.size());
}

// ---------------------------------------------------------------------
// Cooperative cancellation through the serving stack
// ---------------------------------------------------------------------

TEST(Cancellation, ExpiredPagerankAbortsMidFlight) {
  const gb::Graph g = fault_graph();
  FaultPlan plan;
  plan.kernel_delay = 3ms;  // every iteration boundary stalls 3ms
  FaultInjector injector(plan);
  Server server(g, one_worker(&injector));

  algo::PageRankParams params;
  params.max_iterations = 100;
  params.epsilon = std::numeric_limits<double>::min();  // never converges

  // With ~3ms per iteration and a ~30ms budget the token fires around
  // iteration 10 — far from both 0 (pre-wave shed) and 100 (ran to
  // completion).  Scheduling jitter can still land an attempt at the
  // pre-wave gate (iterations == 0), so retry for the mid-flight shape;
  // any single attempt must already satisfy the hard bounds.
  bool observed_midflight = false;
  for (int attempt = 0; attempt < 20 && !observed_midflight; ++attempt) {
    const auto deadline = serving::clock::now() + 30ms;
    const Reply r = server.submit_pagerank("default", params, deadline).get();
    ASSERT_EQ(Status::kShedDeadline, r.status);
    ASSERT_LT(r.iterations, params.max_iterations)
        << "an expired 100-iteration pagerank must not run to completion";
    if (r.iterations >= 1) observed_midflight = true;
  }
  EXPECT_TRUE(observed_midflight)
      << "20 attempts never aborted mid-flight (iterations stayed 0)";
  server.shutdown();
  EXPECT_EQ(server.stats().submitted, server.stats().accounted());
}

// ---------------------------------------------------------------------
// Circuit breaker: the state machine in isolation, then through the
// server
// ---------------------------------------------------------------------

TEST(CircuitBreaker, TripsSshedsCoolsAndRecloses) {
  CircuitBreaker cb;
  const CircuitBreakerPolicy policy{/*trip_after=*/3,
                                    /*cooldown=*/std::chrono::milliseconds(50)};
  auto now = CircuitBreaker::clock::now();

  EXPECT_TRUE(cb.allow(policy, now));
  cb.record_failure(policy, now);
  cb.record_failure(policy, now);
  EXPECT_TRUE(cb.allow(policy, now));  // 2 < trip_after: still closed
  cb.record_failure(policy, now);      // third consecutive: trips
  EXPECT_TRUE(cb.is_open(now));
  EXPECT_EQ(1u, cb.trips());
  EXPECT_FALSE(cb.allow(policy, now));                  // open: shed fast
  EXPECT_FALSE(cb.allow(policy, now + 49ms));           // still cooling
  EXPECT_TRUE(cb.allow(policy, now + 51ms));            // half-open probe
  EXPECT_FALSE(cb.allow(policy, now + 51ms));           // ONE probe only
  cb.record_success();                                  // probe succeeded
  EXPECT_FALSE(cb.is_open(now + 51ms));
  EXPECT_TRUE(cb.allow(policy, now + 51ms));            // closed again
  EXPECT_EQ(0, cb.consecutive_failures());
}

TEST(CircuitBreaker, FailedProbeReopensAndAbandonedProbeReleases) {
  CircuitBreaker cb;
  const CircuitBreakerPolicy policy{/*trip_after=*/1,
                                    /*cooldown=*/std::chrono::milliseconds(50)};
  auto now = CircuitBreaker::clock::now();
  cb.record_failure(policy, now);  // trip_after = 1: trips immediately
  ASSERT_TRUE(cb.is_open(now));

  // Probe fails -> re-opens for another full cooldown.  trips() counts
  // closed->open transitions only: a failed probe extends the SAME
  // outage rather than starting a new one.
  ASSERT_TRUE(cb.allow(policy, now + 60ms));
  cb.record_failure(policy, now + 60ms);
  EXPECT_FALSE(cb.allow(policy, now + 60ms + 49ms));
  EXPECT_EQ(1u, cb.trips());

  // Probe abandoned (its wave was deadline-shed): the claim is
  // released and the NEXT caller gets to probe.
  ASSERT_TRUE(cb.allow(policy, now + 60ms + 51ms));
  cb.abandon_probe();
  EXPECT_TRUE(cb.allow(policy, now + 60ms + 51ms));
}

TEST(CircuitBreaker, DisabledPolicyNeverTrips) {
  CircuitBreaker cb;
  const CircuitBreakerPolicy off{/*trip_after=*/0,
                                 /*cooldown=*/std::chrono::milliseconds(1)};
  const auto now = CircuitBreaker::clock::now();
  for (int i = 0; i < 10; ++i) cb.record_failure(off, now);
  EXPECT_TRUE(cb.allow(off, now));
  EXPECT_FALSE(cb.is_open(now));
}

TEST(CircuitBreakerServing, SlotTripsThenRecoversAcrossServers) {
  GraphRegistry reg;
  reg.add("tenant", fault_graph());

  // Server A: every kernel boundary throws, breaker trips after 2.
  FaultPlan storm;
  storm.kernel_fault_rate = 1.0;
  FaultInjector injector(storm);
  ServerOptions opts_a = one_worker(&injector);
  opts_a.breaker.trip_after = 2;
  // Wide enough that server B's first query reliably lands inside the
  // cooldown even on a loaded CI machine.
  opts_a.breaker.cooldown = 250ms;
  Server a(reg, opts_a);

  EXPECT_EQ(Status::kInternalError,
            a.submit("tenant", QueryKind::kBfs, 0).get().status);
  EXPECT_EQ(Status::kInternalError,
            a.submit("tenant", QueryKind::kBfs, 1).get().status);
  // Tripped: the slot now sheds fast without touching the graph.
  EXPECT_EQ(Status::kShedCircuitOpen,
            a.submit("tenant", QueryKind::kBfs, 2).get().status);
  // Counters are posted by the worker after the promise resolves, so
  // join the workers (shutdown) before snapshotting.
  a.shutdown();
  const auto st_a = a.stats();
  EXPECT_EQ(2u, st_a.failed);
  EXPECT_EQ(1u, st_a.shed_circuit_open);
  EXPECT_EQ(st_a.submitted, st_a.accounted());

  // The breaker STATE lives in the slot, shared by every server on the
  // registry: a healthy server B sees the tripped slot, waits out the
  // cooldown, and its first query is the half-open probe that re-closes
  // it.
  ServerOptions opts_b = one_worker();
  opts_b.breaker = opts_a.breaker;
  Server b(reg, opts_b);
  EXPECT_EQ(Status::kShedCircuitOpen,
            b.submit("tenant", QueryKind::kBfs, 0).get().status);
  std::this_thread::sleep_for(300ms);
  EXPECT_EQ(Status::kOk,
            b.submit("tenant", QueryKind::kBfs, 0).get().status);  // probe
  EXPECT_EQ(Status::kOk,
            b.submit("tenant", QueryKind::kBfs, 1).get().status);  // closed
  b.shutdown();
  EXPECT_EQ(b.stats().submitted, b.stats().accounted());
}

// ---------------------------------------------------------------------
// Defined-shutdown and admission validation
// ---------------------------------------------------------------------

TEST(Shutdown, SubmitAfterShutdownResolvesImmediatelyWithShedShutdown) {
  const gb::Graph g = fault_graph();
  Server server(g, one_worker());
  server.shutdown();

  auto fut = server.submit(QueryKind::kBfs, 0);
  ASSERT_EQ(std::future_status::ready, fut.wait_for(0s))
      << "a post-shutdown submit must resolve immediately, never hang";
  EXPECT_EQ(Status::kShedShutdown, fut.get().status);

  auto pr = server.submit_pagerank();
  EXPECT_EQ(Status::kShedShutdown, pr.get().status);

  const auto st = server.stats();
  EXPECT_EQ(2u, st.shed_shutdown);
  EXPECT_EQ(st.submitted, st.accounted());
}

TEST(Validation, MalformedPagerankParamsThrowAtTheDoor) {
  const gb::Graph g = fault_graph();
  Server server(g, one_worker());

  algo::PageRankParams p;
  p.alpha = std::numeric_limits<value_t>::quiet_NaN();
  EXPECT_THROW(server.submit_pagerank(p), std::invalid_argument);
  p.alpha = 1.0f;  // damping must stay strictly below 1
  EXPECT_THROW(server.submit_pagerank(p), std::invalid_argument);
  p.alpha = -0.25f;
  EXPECT_THROW(server.submit_pagerank(p), std::invalid_argument);

  p = {};
  p.max_iterations = 0;
  EXPECT_THROW(server.submit_pagerank(p), std::invalid_argument);

  p = {};
  p.epsilon = 0.0;
  EXPECT_THROW(server.submit_pagerank(p), std::invalid_argument);
  p.epsilon = -1e-9;
  EXPECT_THROW(server.submit_pagerank(p), std::invalid_argument);

  // A rejected submit is never admitted: nothing to account for, and
  // the server still serves valid work.
  EXPECT_EQ(0u, server.stats().submitted);
  EXPECT_EQ(Status::kOk, server.submit_pagerank().get().status);
}

}  // namespace
}  // namespace bitgb
