// Bench-library tests: corpus construction and figure/table rendering.
#include "benchlib/corpus.hpp"
#include "benchlib/reporting.hpp"
#include "platform/context.hpp"
#include "platform/device_profile.hpp"
#include "platform/parallel.hpp"
#include "platform/timer.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>

namespace bitgb::bench {
namespace {

TEST(Corpus, SmokeScaleBuildsValidMatrices) {
  const auto corpus = full_corpus(CorpusScale::kSmoke);
  EXPECT_EQ(static_cast<std::size_t>(corpus_size(CorpusScale::kSmoke)),
            corpus.size());
  for (const auto& e : corpus) {
    EXPECT_TRUE(e.matrix.validate()) << e.name;
    EXPECT_EQ(e.matrix.nrows, e.matrix.ncols) << e.name;  // square
    EXPECT_TRUE(e.matrix.is_binary()) << e.name;
  }
}

TEST(Corpus, FullScaleIs521Matrices) {
  EXPECT_EQ(521, corpus_size(CorpusScale::kFull));
}

TEST(Corpus, CategoryMixFollowsTableV) {
  const auto corpus = full_corpus(CorpusScale::kSmoke);
  std::map<Pattern, int> counts;
  for (const auto& e : corpus) ++counts[e.category];
  // Diagonal is the largest share (45.87 of 151.43), dot second.
  EXPECT_GE(counts[Pattern::kDiagonal], counts[Pattern::kDot]);
  EXPECT_GE(counts[Pattern::kDot], counts[Pattern::kRoad]);
  EXPECT_GT(counts[Pattern::kHybrid], 0);
  EXPECT_GT(counts[Pattern::kStripe], 0);
}

TEST(Corpus, DeterministicAcrossCalls) {
  const auto a = full_corpus(CorpusScale::kSmoke);
  const auto b = full_corpus(CorpusScale::kSmoke);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].name, b[i].name);
    EXPECT_EQ(a[i].matrix.colind, b[i].matrix.colind);
  }
}

TEST(Corpus, SmokeMatrixNamesAreUnique) {
  // named_matrix() lookups and per-row table rendering both assume the
  // corpus has no duplicate names.
  const auto corpus = full_corpus(CorpusScale::kSmoke);
  std::map<std::string, int> counts;
  for (const auto& e : corpus) ++counts[e.name];
  for (const auto& [name, n] : counts) {
    EXPECT_EQ(1, n) << "duplicate corpus name " << name;
  }
}

TEST(Corpus, NamedMatricesExistAndAreExactWhereDefined) {
  // mycielskianN analogs are the *exact* graphs (deterministic
  // construction), so their sizes match SuiteSparse.
  EXPECT_EQ(383, named_matrix("mycielskian9").matrix.nrows);
  EXPECT_EQ(767, named_matrix("mycielskian10").matrix.nrows);
  EXPECT_EQ(3071, named_matrix("mycielskian12").matrix.nrows);
  // ash292 keeps the original's size.
  EXPECT_EQ(292, named_matrix("ash292").matrix.nrows);
  EXPECT_THROW(named_matrix("no_such_matrix"), std::out_of_range);
}

TEST(Corpus, TableRostersMatchPaper) {
  EXPECT_EQ(16u, table7_matrices().size());
  EXPECT_EQ(16u, table9_matrices().size());
  EXPECT_EQ(5u, figure3_matrices().size());
  EXPECT_EQ("delaunay_n14", table7_matrices().front().name);
  EXPECT_EQ("G47", figure3_matrices().front().name);
}

TEST(Reporting, DensityBuckets) {
  EXPECT_EQ(-7, density_bucket(0.0));
  EXPECT_EQ(-7, density_bucket(1e-9));  // clamped
  EXPECT_EQ(-4, density_bucket(5e-4));
  EXPECT_EQ(-1, density_bucket(0.3));
  EXPECT_EQ("E-3", bucket_label(-3));
}

TEST(Reporting, Geomean) {
  EXPECT_DOUBLE_EQ(0.0, geomean({}));
  EXPECT_NEAR(2.0, geomean({1.0, 4.0}), 1e-12);
  EXPECT_NEAR(3.0, geomean({3.0, 3.0, 3.0}), 1e-12);
}

TEST(Reporting, PercentileInterpolatesOrderStatistics) {
  EXPECT_DOUBLE_EQ(0.0, percentile({}, 50.0));
  EXPECT_DOUBLE_EQ(7.0, percentile({7.0}, 99.9));
  // Unsorted input; {1..4}: p50 sits halfway between 2 and 3.
  EXPECT_NEAR(2.5, percentile({4.0, 1.0, 3.0, 2.0}, 50.0), 1e-12);
  EXPECT_NEAR(1.0, percentile({4.0, 1.0, 3.0, 2.0}, 0.0), 1e-12);
  EXPECT_NEAR(4.0, percentile({4.0, 1.0, 3.0, 2.0}, 100.0), 1e-12);
  // 1..1000: p99 = 990.01, p999 = 999.001 (linear interpolation).
  std::vector<double> xs(1000);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    xs[i] = static_cast<double>(1000 - i);
  }
  EXPECT_NEAR(990.01, percentile(xs, 99.0), 1e-9);
  EXPECT_NEAR(999.001, percentile(xs, 99.9), 1e-9);
}

TEST(Reporting, SpeedupString) {
  EXPECT_EQ("3.0x", speedup_str(3.0, 1.0));
  EXPECT_EQ("152x", speedup_str(152.0, 1.0));
  EXPECT_EQ("0.5x", speedup_str(1.0, 2.0));
  EXPECT_EQ("-", speedup_str(1.0, 0.0));
}

TEST(Reporting, SweepFigureRendersAllSeries) {
  std::vector<SweepPoint> pts;
  for (const int dim : {4, 8, 16, 32}) {
    pts.push_back({"m1", 1e-3, dim, 2.0});
    pts.push_back({"m2", 1e-5, dim, 4.0});
  }
  std::ostringstream os;
  print_sweep_figure(os, "test figure", pts);
  const std::string s = os.str();
  EXPECT_NE(std::string::npos, s.find("4x4"));
  EXPECT_NE(std::string::npos, s.find("32x32"));
  EXPECT_NE(std::string::npos, s.find("E-3"));
  EXPECT_NE(std::string::npos, s.find("2.00"));
}

TEST(Reporting, AlgoTableRendersRows) {
  std::vector<AlgoRow> rows = {{"m", 2.0, 1.0, 1.5, 0.5}};
  std::ostringstream os;
  print_algo_table(os, "Table VII analog", "BFS", rows);
  const std::string s = os.str();
  EXPECT_NE(std::string::npos, s.find("algorithm"));
  EXPECT_NE(std::string::npos, s.find("kernel"));
  EXPECT_NE(std::string::npos, s.find("2.0x"));  // 2.0/1.0
  EXPECT_NE(std::string::npos, s.find("3.0x"));  // 1.5/0.5
}

TEST(DeviceProfile, ProfilesDescribeContexts) {
  const auto pascal = pascal_analog();
  const auto volta = volta_analog();
  EXPECT_EQ(1, pascal.num_threads);
  EXPECT_GE(volta.num_threads, 1);
  // A profile is descriptor material: context_for() carries its width
  // and variant into a Context without touching any process state.
  KernelTimeSink sink;
  const Context ctx = context_for(pascal, &sink);
  EXPECT_EQ(1, ctx.threads);
  EXPECT_EQ(&sink, ctx.timer);
  EXPECT_EQ(volta.num_threads, context_for(volta).threads);
}

TEST(Timer, SplitTimingMeasuresBothBuckets) {
  KernelTimeSink sink;
  const auto t = time_split_ms(
      sink,
      [&sink] {
        KernelTimerScope scope(&sink);
        volatile double x = 0;
        for (int i = 0; i < 100000; ++i) x = x + 1.0;
      },
      2);
  EXPECT_GT(t.algorithm_ms, 0.0);
  EXPECT_GT(t.kernel_ms, 0.0);
  EXPECT_LE(t.kernel_ms, t.algorithm_ms * 1.5);
}

}  // namespace
}  // namespace bitgb::bench
