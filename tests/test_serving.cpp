// Serving-core tests (ctest label "serving"; runs in the TSan lane):
// the bounded queue's backpressure and batch-pop contract, the
// GraphRegistry's snapshot semantics, and the Server end to end —
// batched answers bit-identical to per-query serial runs under
// concurrent submission, the kPagerank/kComponents differentials over
// the oracle corpus (including memo invalidation across a registry
// re-add), deadline-shed accounting, queue-full shedding, bad-graph
// routing, adaptive-window accounting, and drain-on-shutdown.
#include "serving/server.hpp"

#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/pagerank.hpp"
#include "serving/batcher.hpp"
#include "serving/queue.hpp"
#include "serving/registry.hpp"
#include "sparse/generators.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

namespace bitgb {
namespace {

using namespace std::chrono_literals;
using serving::GraphRegistry;
using serving::PushOutcome;
using serving::QueryKind;
using serving::Reply;
using serving::Request;
using serving::RequestQueue;
using serving::Server;
using serving::ServerOptions;
using serving::Status;

gb::Graph serving_graph() {
  gb::GraphOptions opts;
  opts.tile_dim = 8;
  gb::Graph g = gb::Graph::from_coo(gen_rmat(10, 4096, 7), opts);
  g.prewarm(gb::kBitFormats);
  return g;
}

Request make_request(QueryKind kind, vidx_t source) {
  Request r;
  r.kind = kind;
  r.source = source;
  r.submitted = serving::clock::now();
  return r;
}

// ---------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------

TEST(RequestQueue, ShedsOnFullDeterministically) {
  RequestQueue q(4);
  std::vector<std::future<Reply>> futs;
  for (int i = 0; i < 4; ++i) {
    Request r = make_request(QueryKind::kBfs, i);
    futs.push_back(r.promise.get_future());
    EXPECT_EQ(PushOutcome::kAccepted, q.try_push(std::move(r)));
  }
  EXPECT_EQ(4u, q.depth());
  // The fifth push must be refused, and must leave the request (and
  // its promise) with the caller.
  Request fifth = make_request(QueryKind::kBfs, 4);
  auto fifth_fut = fifth.promise.get_future();
  EXPECT_EQ(PushOutcome::kFull, q.try_push(std::move(fifth)));
  EXPECT_EQ(4u, q.depth());
  fifth.promise.set_value(Reply{});  // still ours: fulfillable
  EXPECT_EQ(Status::kOk, fifth_fut.get().status);
}

TEST(RequestQueue, PopBatchCoalescesSameKindInFifoOrder) {
  RequestQueue q(64);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(PushOutcome::kAccepted, q.try_push(make_request(QueryKind::kBfs, i)));
  }
  std::vector<Request> batch;
  EXPECT_EQ(10u, q.pop_batch(batch, 64));
  ASSERT_EQ(10u, batch.size());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(i, batch[static_cast<std::size_t>(i)].source);
  for (auto& r : batch) r.promise.set_value(Reply{});
}

TEST(RequestQueue, PopBatchNeverMixesKinds) {
  RequestQueue q(64);
  ASSERT_EQ(PushOutcome::kAccepted, q.try_push(make_request(QueryKind::kBfs, 0)));
  ASSERT_EQ(PushOutcome::kAccepted, q.try_push(make_request(QueryKind::kReach, 1)));
  ASSERT_EQ(PushOutcome::kAccepted, q.try_push(make_request(QueryKind::kBfs, 2)));
  std::vector<Request> batch;
  // First pop: the BFS FIFO head is oldest -> both BFS requests, and
  // only those.
  EXPECT_EQ(2u, q.pop_batch(batch, 64));
  for (const auto& r : batch) EXPECT_EQ(QueryKind::kBfs, r.kind);
  for (auto& r : batch) r.promise.set_value(Reply{});
  EXPECT_EQ(1u, q.pop_batch(batch, 64));
  EXPECT_EQ(QueryKind::kReach, batch[0].kind);
  for (auto& r : batch) r.promise.set_value(Reply{});
}

TEST(RequestQueue, PopBatchHonorsMaxBatch) {
  RequestQueue q(64);
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(PushOutcome::kAccepted, q.try_push(make_request(QueryKind::kBfs, i)));
  }
  std::vector<Request> batch;
  EXPECT_EQ(1u, q.pop_batch(batch, 1));  // unbatched ablation shape
  for (auto& r : batch) r.promise.set_value(Reply{});
  EXPECT_EQ(4u, q.pop_batch(batch, 4));
  for (auto& r : batch) r.promise.set_value(Reply{});
  EXPECT_EQ(5u, q.depth());
  while (q.pop_batch(batch, 64) > 0) {
    for (auto& r : batch) r.promise.set_value(Reply{});
    if (q.depth() == 0) break;
  }
}

TEST(RequestQueue, CloseDrainsThenReturnsZero) {
  RequestQueue q(8);
  ASSERT_EQ(PushOutcome::kAccepted, q.try_push(make_request(QueryKind::kBfs, 3)));
  q.close();
  EXPECT_EQ(PushOutcome::kClosed, q.try_push(make_request(QueryKind::kBfs, 4)));
  std::vector<Request> batch;
  EXPECT_EQ(1u, q.pop_batch(batch, 64));  // queued work still drains
  for (auto& r : batch) r.promise.set_value(Reply{});
  EXPECT_EQ(0u, q.pop_batch(batch, 64));  // then every pop sees "done"
}

// ---------------------------------------------------------------------
// Server end to end
// ---------------------------------------------------------------------

TEST(Serving, BatchedMatchesSerialUnderConcurrentSubmission) {
  const gb::Graph g = serving_graph();
  constexpr int kQueries = 256;
  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<vidx_t> pick(0, g.num_vertices() - 1);
  std::vector<vidx_t> sources(kQueries);
  for (auto& s : sources) s = pick(rng);

  // Serial per-query reference (the bit-identity oracle).
  const Context serial_ctx = Context{}.with_threads(1);
  std::vector<std::vector<std::int32_t>> expected;
  expected.reserve(kQueries);
  for (const vidx_t s : sources) {
    expected.push_back(algo::bfs(serial_ctx, g, {s}).levels);
  }

  ServerOptions opts;
  opts.workers = 4;
  opts.queue_capacity = kQueries;
  Server server(g, opts);

  // 4 submitter threads racing 4 workers: replies must be bit-identical
  // to the serial pass regardless of which wave each query rode.
  std::vector<std::future<Reply>> futs(kQueries);
  {
    std::vector<std::thread> submitters;
    std::atomic<int> next{0};
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        for (;;) {
          const int i = next.fetch_add(1);
          if (i >= kQueries) return;
          futs[static_cast<std::size_t>(i)] = server.submit(
              QueryKind::kBfs, sources[static_cast<std::size_t>(i)]);
        }
      });
    }
    for (auto& t : submitters) t.join();
  }
  for (int i = 0; i < kQueries; ++i) {
    const Reply r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(Status::kOk, r.status) << "query " << i;
    EXPECT_EQ(expected[static_cast<std::size_t>(i)], r.levels)
        << "query " << i << " source " << sources[static_cast<std::size_t>(i)]
        << " rode a wave of " << r.batch_width;
  }
  server.shutdown();
  const auto st = server.stats();
  EXPECT_EQ(kQueries, static_cast<int>(st.submitted));
  EXPECT_EQ(kQueries, static_cast<int>(st.completed));
  EXPECT_EQ(0u, st.shed_queue_full);
  EXPECT_EQ(0u, st.shed_deadline);
  EXPECT_EQ(kQueries, static_cast<int>(st.batched_queries));
}

TEST(Serving, ReachRepliesMatchBfsDerivedReachability) {
  const gb::Graph g = serving_graph();
  constexpr int kQueries = 96;  // > one wave, with odd tail
  const Context serial_ctx = Context{}.with_threads(1);

  ServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = kQueries;
  Server server(g, opts);
  std::vector<std::future<Reply>> futs;
  futs.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    futs.push_back(server.submit(QueryKind::kReach,
                                 static_cast<vidx_t>(i * 7) %
                                     g.num_vertices()));
  }
  for (auto& f : futs) {
    const Reply r = f.get();
    ASSERT_EQ(Status::kOk, r.status);
    ASSERT_EQ(static_cast<std::size_t>(g.num_vertices()), r.reached.size());
    const auto levels = algo::bfs(serial_ctx, g, {r.source}).levels;
    for (vidx_t v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(levels[static_cast<std::size_t>(v)] != algo::kUnreached,
                r.reached[static_cast<std::size_t>(v)] != 0)
          << "source " << r.source << " vertex " << v;
    }
  }
}

TEST(Serving, UnbatchedAblationMatchesBatched) {
  const gb::Graph g = serving_graph();
  constexpr int kQueries = 64;
  std::vector<std::future<Reply>> batched, unbatched;
  {
    ServerOptions opts;
    opts.workers = 2;
    opts.queue_capacity = kQueries;
    Server server(g, opts);
    for (int i = 0; i < kQueries; ++i) {
      batched.push_back(server.submit(QueryKind::kBfs,
                                      static_cast<vidx_t>(i * 13) %
                                          g.num_vertices()));
    }
  }  // destructor drains
  {
    ServerOptions opts;
    opts.workers = 2;
    opts.queue_capacity = kQueries;
    opts.max_batch = 1;  // the ablation: per-query execution
    Server server(g, opts);
    for (int i = 0; i < kQueries; ++i) {
      unbatched.push_back(server.submit(QueryKind::kBfs,
                                        static_cast<vidx_t>(i * 13) %
                                            g.num_vertices()));
    }
    server.shutdown();
    EXPECT_EQ(1u, server.stats().widest_wave);
  }
  for (int i = 0; i < kQueries; ++i) {
    const Reply b = batched[static_cast<std::size_t>(i)].get();
    const Reply u = unbatched[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(Status::kOk, b.status);
    ASSERT_EQ(Status::kOk, u.status);
    EXPECT_EQ(u.levels, b.levels) << "query " << i;
    EXPECT_EQ(1, u.batch_width);
  }
}

TEST(Serving, ExpiredDeadlinesAreShedAndAccounted) {
  const gb::Graph g = serving_graph();
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 64;
  Server server(g, opts);

  // A deadline already in the past when submitted is guaranteed to be
  // past when a worker reaches it: deterministically shed.
  const auto expired = serving::clock::now() - 1ms;
  std::vector<std::future<Reply>> doomed;
  for (int i = 0; i < 8; ++i) {
    doomed.push_back(server.submit(QueryKind::kBfs, i, expired));
  }
  // And a live one rides through normally.
  auto ok = server.submit(QueryKind::kBfs, 0);
  for (auto& f : doomed) {
    const Reply r = f.get();
    EXPECT_EQ(Status::kShedDeadline, r.status);
    EXPECT_TRUE(r.levels.empty());
  }
  EXPECT_EQ(Status::kOk, ok.get().status);
  server.shutdown();
  const auto st = server.stats();
  EXPECT_EQ(8u, st.shed_deadline);
  EXPECT_EQ(1u, st.completed);
  EXPECT_EQ(st.submitted, st.completed + st.shed_queue_full + st.shed_deadline);
}

TEST(Serving, QueueFullBackpressureShedsAtTheDoor) {
  const gb::Graph g = serving_graph();
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;  // every pop is width 1; storms must shed
  Server server(g, opts);

  constexpr int kStorm = 400;
  std::vector<std::future<Reply>> futs;
  futs.reserve(kStorm);
  for (int i = 0; i < kStorm; ++i) {
    futs.push_back(server.submit(QueryKind::kBfs,
                                 static_cast<vidx_t>(i) % g.num_vertices()));
  }
  int ok = 0, shed = 0;
  for (auto& f : futs) {
    const Reply r = f.get();
    if (r.status == Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(Status::kShedQueueFull, r.status);
      ++shed;
    }
  }
  server.shutdown();
  const auto st = server.stats();
  // Conservation: every submission is accounted exactly once.
  EXPECT_EQ(kStorm, ok + shed);
  EXPECT_EQ(static_cast<std::uint64_t>(kStorm), st.submitted);
  EXPECT_EQ(st.submitted, st.completed + st.shed_queue_full + st.shed_deadline);
  EXPECT_EQ(static_cast<std::uint64_t>(ok), st.completed);
  EXPECT_EQ(static_cast<std::uint64_t>(shed), st.shed_queue_full);
  // A 400-query burst against capacity 1 and ms-scale queries cannot
  // all be admitted.
  EXPECT_GT(shed, 0);
}

TEST(Serving, SubmitRejectsOutOfRangeSource) {
  const gb::Graph g = serving_graph();
  Server server(g, {});
  EXPECT_THROW((void)server.submit(QueryKind::kBfs, -1),
               std::invalid_argument);
  EXPECT_THROW((void)server.submit(QueryKind::kBfs, g.num_vertices()),
               std::invalid_argument);
  server.shutdown();
}

TEST(Serving, ShutdownDrainsEveryPendingFuture) {
  const gb::Graph g = serving_graph();
  std::vector<std::future<Reply>> futs;
  {
    ServerOptions opts;
    opts.workers = 2;
    opts.queue_capacity = 512;
    Server server(g, opts);
    for (int i = 0; i < 200; ++i) {
      futs.push_back(server.submit(QueryKind::kBfs,
                                   static_cast<vidx_t>(i) %
                                       g.num_vertices()));
    }
  }  // destructor: close + drain + join
  for (auto& f : futs) {
    const Reply r = f.get();  // would block forever on a dropped promise
    EXPECT_EQ(Status::kOk, r.status);
  }
}

TEST(Serving, MixedKindsUnderLoadStaySegregatedAndCorrect) {
  const gb::Graph g = serving_graph();
  const Context serial_ctx = Context{}.with_threads(1);
  ServerOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 256;
  Server server(g, opts);
  std::vector<std::future<Reply>> futs;
  for (int i = 0; i < 128; ++i) {
    futs.push_back(server.submit(i % 2 == 0 ? QueryKind::kBfs
                                            : QueryKind::kReach,
                                 static_cast<vidx_t>(i * 5) %
                                     g.num_vertices()));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Reply r = futs[i].get();
    ASSERT_EQ(Status::kOk, r.status);
    const auto levels = algo::bfs(serial_ctx, g, {r.source}).levels;
    if (r.kind == QueryKind::kBfs) {
      EXPECT_EQ(levels, r.levels);
    } else {
      for (vidx_t v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(levels[static_cast<std::size_t>(v)] != algo::kUnreached,
                  r.reached[static_cast<std::size_t>(v)] != 0);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Kind/status name tables
// ---------------------------------------------------------------------

TEST(ServingNames, QueryKindNamesAreTableDrivenAndComplete) {
  // Every enumerator prints its own name — the two-way-ternary
  // regression this table replaced made every new kind print "reach".
  EXPECT_STREQ("bfs", serving::query_kind_name(QueryKind::kBfs));
  EXPECT_STREQ("reach", serving::query_kind_name(QueryKind::kReach));
  EXPECT_STREQ("pagerank", serving::query_kind_name(QueryKind::kPagerank));
  EXPECT_STREQ("components",
               serving::query_kind_name(QueryKind::kComponents));
  // Pairwise distinct.
  for (std::size_t a = 0; a < serving::kNumQueryKinds; ++a) {
    for (std::size_t b = a + 1; b < serving::kNumQueryKinds; ++b) {
      EXPECT_STRNE(serving::query_kind_name(static_cast<QueryKind>(a)),
                   serving::query_kind_name(static_cast<QueryKind>(b)));
    }
  }
}

TEST(ServingNames, StatusNamesAreTableDrivenAndComplete) {
  EXPECT_STREQ("ok", serving::status_name(Status::kOk));
  EXPECT_STREQ("shed-queue-full",
               serving::status_name(Status::kShedQueueFull));
  EXPECT_STREQ("shed-deadline", serving::status_name(Status::kShedDeadline));
  EXPECT_STREQ("bad-graph", serving::status_name(Status::kBadGraph));
  EXPECT_STREQ("shed-shutdown", serving::status_name(Status::kShedShutdown));
  EXPECT_STREQ("shed-circuit-open",
               serving::status_name(Status::kShedCircuitOpen));
  EXPECT_STREQ("internal-error",
               serving::status_name(Status::kInternalError));
}

// ---------------------------------------------------------------------
// GraphRegistry
// ---------------------------------------------------------------------

gb::Graph small_graph(std::uint64_t seed, vidx_t n = 256) {
  gb::GraphOptions opts;
  opts.tile_dim = 8;
  return gb::Graph::from_coo(gen_random(n, 4 * n, seed), opts);
}

TEST(Registry, AddLookupRemoveAndGenerations) {
  GraphRegistry reg;
  EXPECT_EQ(nullptr, reg.lookup("a"));
  EXPECT_EQ(0u, reg.size());

  const auto a1 = reg.add("a", small_graph(1));
  ASSERT_NE(nullptr, a1);
  EXPECT_EQ("a", a1->name());
  // add() prewarms before publication: the bit formats are ready.
  EXPECT_EQ(gb::kBitFormats,
            a1->graph().formats() & gb::kBitFormats);
  EXPECT_EQ(a1.get(), reg.lookup("a").get());
  EXPECT_EQ(1u, reg.size());

  const auto b1 = reg.add("b", small_graph(2));
  EXPECT_GT(b1->generation(), a1->generation());
  EXPECT_EQ(2u, reg.size());
  const auto names = reg.names();
  EXPECT_NE(names.end(), std::find(names.begin(), names.end(), "a"));
  EXPECT_NE(names.end(), std::find(names.begin(), names.end(), "b"));

  // Re-add under the same name: a NEW slot with a HIGHER generation;
  // the old snapshot stays alive for whoever still holds it.
  const auto a2 = reg.add("a", small_graph(3));
  EXPECT_NE(a1.get(), a2.get());
  EXPECT_GT(a2->generation(), a1->generation());
  EXPECT_EQ(a2.get(), reg.lookup("a").get());
  EXPECT_EQ(256, a1->graph().num_vertices());  // snapshot still usable

  EXPECT_TRUE(reg.remove("a"));
  EXPECT_FALSE(reg.remove("a"));
  EXPECT_EQ(nullptr, reg.lookup("a"));
  EXPECT_EQ(1u, reg.size());
}

TEST(Registry, UnknownGraphRepliesBadGraphImmediately) {
  GraphRegistry reg;
  reg.add("known", small_graph(4));
  ServerOptions opts;
  opts.workers = 1;
  Server server(reg, opts);
  auto bad = server.submit("unknown", QueryKind::kBfs, 0);
  const Reply r = bad.get();
  EXPECT_EQ(Status::kBadGraph, r.status);
  EXPECT_TRUE(r.levels.empty());
  auto ok = server.submit("known", QueryKind::kBfs, 0);
  EXPECT_EQ(Status::kOk, ok.get().status);
  server.shutdown();
  const auto st = server.stats();
  EXPECT_EQ(2u, st.submitted);
  EXPECT_EQ(1u, st.completed);
  EXPECT_EQ(1u, st.shed_bad_graph);
  EXPECT_EQ(st.submitted, st.completed + st.shed_queue_full +
                              st.shed_deadline + st.shed_bad_graph);
}

TEST(Registry, NamedRoutingServesTheNamedGraph) {
  GraphRegistry reg;
  reg.add("g64", small_graph(5, 64));
  reg.add("g256", small_graph(6, 256));
  ServerOptions opts;
  opts.workers = 2;
  Server server(reg, opts);
  auto f64 = server.submit("g64", QueryKind::kBfs, 0);
  auto f256 = server.submit("g256", QueryKind::kBfs, 0);
  const Reply r64 = f64.get();
  const Reply r256 = f256.get();
  ASSERT_EQ(Status::kOk, r64.status);
  ASSERT_EQ(Status::kOk, r256.status);
  EXPECT_EQ(64u, r64.levels.size());
  EXPECT_EQ("g64", r64.graph);
  EXPECT_EQ(256u, r256.levels.size());
  EXPECT_EQ("g256", r256.graph);
  // Source validation is per-graph: 100 is valid on g256, not on g64.
  EXPECT_THROW((void)server.submit("g64", QueryKind::kBfs, 100),
               std::invalid_argument);
  EXPECT_EQ(Status::kOk,
            server.submit("g256", QueryKind::kBfs, 100).get().status);
}

TEST(Registry, RemoveWithInFlightQueriesDrainsSafely) {
  GraphRegistry reg;
  reg.add("doomed", small_graph(7, 512));
  ServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = 512;
  Server server(reg, opts);
  std::vector<std::future<Reply>> futs;
  for (int i = 0; i < 128; ++i) {
    futs.push_back(server.submit("doomed", QueryKind::kBfs,
                                 static_cast<vidx_t>(i * 3) % 512));
  }
  // Remove while the storm is (likely) still in flight: queued
  // requests co-own the slot, so every future must still resolve with
  // a full-size result from the removed graph.
  EXPECT_TRUE(reg.remove("doomed"));
  for (auto& f : futs) {
    const Reply r = f.get();
    ASSERT_EQ(Status::kOk, r.status);
    EXPECT_EQ(512u, r.levels.size());
    EXPECT_EQ("doomed", r.graph);
  }
  // After removal, new submits route nowhere.
  EXPECT_EQ(Status::kBadGraph,
            server.submit("doomed", QueryKind::kBfs, 0).get().status);
}

// ---------------------------------------------------------------------
// kPagerank / kComponents differentials (oracle corpus)
// ---------------------------------------------------------------------

TEST(ServingKinds, PagerankRepliesMatchDirectCallsOverOracleCorpus) {
  const Context serial_ctx = Context{}.with_threads(1);
  for (const auto& [name, csr] : test::small_matrices()) {
    GraphRegistry reg;
    gb::GraphOptions gopts;
    gopts.tile_dim = 8;
    reg.add(name, gb::Graph::from_csr(csr, gopts));
    const auto slot = reg.lookup(name);
    ASSERT_NE(nullptr, slot);

    ServerOptions opts;
    opts.workers = 2;
    Server server(reg, opts);
    const algo::PageRankParams defaults{};
    algo::PageRankParams tweaked;
    tweaked.max_iterations = 25;
    tweaked.alpha = 0.9f;
    auto f_default = server.submit_pagerank(name);
    auto f_tweaked = server.submit_pagerank(name, tweaked);
    const Reply r_default = f_default.get();
    const Reply r_tweaked = f_tweaked.get();
    server.shutdown();

    ASSERT_EQ(Status::kOk, r_default.status) << name;
    ASSERT_EQ(Status::kOk, r_tweaked.status) << name;
    // Bit-identical to the direct call on the same graph handle under
    // the same (serial, bit-backend) descriptor the workers use.
    const auto direct_default =
        algo::pagerank(serial_ctx, slot->graph(), defaults);
    const auto direct_tweaked =
        algo::pagerank(serial_ctx, slot->graph(), tweaked);
    EXPECT_EQ(direct_default.rank, r_default.rank) << name;
    EXPECT_EQ(direct_default.iterations, r_default.iterations) << name;
    EXPECT_EQ(direct_tweaked.rank, r_tweaked.rank) << name;
    EXPECT_EQ(direct_tweaked.iterations, r_tweaked.iterations) << name;
  }
}

TEST(ServingKinds, ComponentsRepliesMatchDirectCallsOverOracleCorpus) {
  const Context serial_ctx = Context{}.with_threads(1);
  for (const auto& [name, csr] : test::small_matrices()) {
    GraphRegistry reg;
    gb::GraphOptions gopts;
    gopts.tile_dim = 8;
    reg.add(name, gb::Graph::from_csr(csr, gopts));
    const auto slot = reg.lookup(name);
    ASSERT_NE(nullptr, slot);

    ServerOptions opts;
    opts.workers = 2;
    Server server(reg, opts);
    auto f1 = server.submit(name, QueryKind::kComponents);
    auto f2 = server.submit(name, QueryKind::kComponents);  // memo hit
    const Reply r1 = f1.get();
    const Reply r2 = f2.get();
    server.shutdown();

    ASSERT_EQ(Status::kOk, r1.status) << name;
    ASSERT_EQ(Status::kOk, r2.status) << name;
    // Element-identical to FastSV and to the batched labelling (all
    // three normalize to min-vertex-id labels).
    const auto fastsv =
        algo::connected_components(serial_ctx, slot->graph());
    EXPECT_EQ(fastsv.component, r1.component) << name;
    EXPECT_EQ(r1.component, r2.component) << name;
    EXPECT_EQ(r1.graph_generation, r2.graph_generation) << name;
  }
}

TEST(ServingKinds, ComponentsMemoInvalidatedByRegistryReAdd) {
  const Context serial_ctx = Context{}.with_threads(1);
  GraphRegistry reg;
  gb::GraphOptions gopts;
  gopts.tile_dim = 8;
  // Two structurally different graphs destined for the same name.
  reg.add("g", gb::Graph::from_coo(gen_block(96, 16, 5, 0.5, 15, true),
                                   gopts));
  ServerOptions opts;
  opts.workers = 1;
  Server server(reg, opts);

  const auto first_slot = reg.lookup("g");
  const Reply before = server.submit("g", QueryKind::kComponents).get();
  ASSERT_EQ(Status::kOk, before.status);
  EXPECT_EQ(algo::connected_components(serial_ctx, first_slot->graph())
                .component,
            before.component);

  // Re-add: new slot, new generation — the memoized labelling of the
  // old registration must NOT survive into the new one.
  reg.add("g", gb::Graph::from_coo(gen_road(10, 7, 0.05, 17), gopts));
  const auto second_slot = reg.lookup("g");
  ASSERT_NE(first_slot.get(), second_slot.get());
  const Reply after = server.submit("g", QueryKind::kComponents).get();
  ASSERT_EQ(Status::kOk, after.status);
  EXPECT_GT(after.graph_generation, before.graph_generation);
  EXPECT_EQ(algo::connected_components(serial_ctx, second_slot->graph())
                .component,
            after.component);
  EXPECT_NE(before.component.size(), after.component.size());
}

TEST(ServingKinds, AllFourKindsMixedUnderLoadStayCorrect) {
  GraphRegistry reg;
  gb::GraphOptions gopts;
  gopts.tile_dim = 8;
  reg.add("mix", gb::Graph::from_coo(gen_rmat(9, 2048, 7), gopts));
  const auto slot = reg.lookup("mix");
  const vidx_t n = slot->graph().num_vertices();
  const Context serial_ctx = Context{}.with_threads(1);

  ServerOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 512;
  Server server(reg, opts);
  std::vector<std::future<Reply>> futs;
  for (int i = 0; i < 128; ++i) {
    const auto kind = static_cast<QueryKind>(i % serving::kNumQueryKinds);
    if (kind == QueryKind::kPagerank) {
      futs.push_back(server.submit_pagerank("mix"));
    } else {
      futs.push_back(
          server.submit("mix", kind, static_cast<vidx_t>(i * 5) % n));
    }
  }
  const auto expected_pr = algo::pagerank(serial_ctx, slot->graph());
  const auto expected_cc =
      algo::connected_components(serial_ctx, slot->graph());
  for (auto& f : futs) {
    const Reply r = f.get();
    ASSERT_EQ(Status::kOk, r.status);
    switch (r.kind) {
      case QueryKind::kBfs: {
        EXPECT_EQ(algo::bfs(serial_ctx, slot->graph(), {r.source}).levels,
                  r.levels);
        break;
      }
      case QueryKind::kReach: {
        const auto levels =
            algo::bfs(serial_ctx, slot->graph(), {r.source}).levels;
        ASSERT_EQ(static_cast<std::size_t>(n), r.reached.size());
        for (vidx_t v = 0; v < n; ++v) {
          EXPECT_EQ(levels[static_cast<std::size_t>(v)] != algo::kUnreached,
                    r.reached[static_cast<std::size_t>(v)] != 0);
        }
        break;
      }
      case QueryKind::kPagerank:
        EXPECT_EQ(expected_pr.rank, r.rank);
        break;
      case QueryKind::kComponents:
        EXPECT_EQ(expected_cc.component, r.component);
        break;
    }
  }
  server.shutdown();
  const auto st = server.stats();
  EXPECT_EQ(128u, st.submitted);
  EXPECT_EQ(128u, st.completed);
  // Per-kind counters partition the totals.
  std::uint64_t by_kind_submitted = 0, by_kind_completed = 0;
  for (std::size_t k = 0; k < serving::kNumQueryKinds; ++k) {
    by_kind_submitted += st.submitted_by_kind[k];
    by_kind_completed += st.completed_by_kind[k];
    EXPECT_EQ(32u, st.submitted_by_kind[k]);
  }
  EXPECT_EQ(st.submitted, by_kind_submitted);
  EXPECT_EQ(st.completed, by_kind_completed);
  // Every executed wave landed in exactly one histogram bucket.
  const std::uint64_t hist_total =
      std::accumulate(st.wave_width_hist.begin(), st.wave_width_hist.end(),
                      std::uint64_t{0});
  EXPECT_EQ(st.waves, hist_total);
}

// ---------------------------------------------------------------------
// Adaptive batching through the server
// ---------------------------------------------------------------------

TEST(AdaptiveServing, BacklogWidensWavesAndDrainNarrowsThem) {
  const gb::Graph g = serving_graph();
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1024;
  ASSERT_TRUE(opts.adaptive);  // the default
  Server server(g, opts);
  std::vector<std::future<Reply>> futs;
  for (int i = 0; i < 512; ++i) {
    futs.push_back(server.submit(QueryKind::kBfs,
                                 static_cast<vidx_t>(i * 11) %
                                     g.num_vertices()));
  }
  for (auto& f : futs) EXPECT_EQ(Status::kOk, f.get().status);
  server.shutdown();
  const auto st = server.stats();
  // A 512-deep backlog against one worker must have widened the window
  // well past 1 (the depth signal saturates the 64 cap within a wave
  // or two) and recorded the growth decisions.
  EXPECT_GT(st.widest_wave, 8u);
  EXPECT_GT(st.window_grew, 0u);
  EXPECT_GT(st.mean_wave_width(), 4.0);
}

TEST(AdaptiveServing, OverrideCapStillPinsTheWindow) {
  const gb::Graph g = serving_graph();
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 512;
  opts.max_batch = 4;  // the override: adaptive may never exceed it
  Server server(g, opts);
  std::vector<std::future<Reply>> futs;
  for (int i = 0; i < 256; ++i) {
    futs.push_back(server.submit(QueryKind::kBfs,
                                 static_cast<vidx_t>(i * 7) %
                                     g.num_vertices()));
  }
  for (auto& f : futs) EXPECT_EQ(Status::kOk, f.get().status);
  server.shutdown();
  EXPECT_LE(server.stats().widest_wave, 4u);
}

TEST(AdaptiveServing, StaticKnobStillAvailable) {
  const gb::Graph g = serving_graph();
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 256;
  opts.adaptive = false;  // the pre-adaptive static pop width
  opts.max_batch = 1;     // the unbatched ablation
  Server server(g, opts);
  std::vector<std::future<Reply>> futs;
  for (int i = 0; i < 64; ++i) {
    futs.push_back(server.submit(QueryKind::kBfs,
                                 static_cast<vidx_t>(i) %
                                     g.num_vertices()));
  }
  for (auto& f : futs) EXPECT_EQ(Status::kOk, f.get().status);
  server.shutdown();
  const auto st = server.stats();
  EXPECT_EQ(1u, st.widest_wave);
  EXPECT_EQ(0u, st.window_grew + st.window_shrank);
}

}  // namespace
}  // namespace bitgb
