// Serving-core tests (ctest label "serving"; runs in the TSan lane):
// the bounded queue's backpressure and batch-pop contract, and the
// Server end to end — batched answers bit-identical to per-query
// serial runs under concurrent submission, deadline-shed accounting,
// queue-full shedding, and drain-on-shutdown.
#include "serving/server.hpp"

#include "algorithms/bfs.hpp"
#include "serving/batcher.hpp"
#include "serving/queue.hpp"
#include "sparse/generators.hpp"

#include "test_util.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <random>
#include <thread>
#include <vector>

namespace bitgb {
namespace {

using namespace std::chrono_literals;
using serving::QueryKind;
using serving::Reply;
using serving::Request;
using serving::RequestQueue;
using serving::Server;
using serving::ServerOptions;
using serving::Status;

gb::Graph serving_graph() {
  gb::GraphOptions opts;
  opts.tile_dim = 8;
  gb::Graph g = gb::Graph::from_coo(gen_rmat(10, 4096, 7), opts);
  g.prewarm(gb::kBitFormats);
  return g;
}

Request make_request(QueryKind kind, vidx_t source) {
  Request r;
  r.kind = kind;
  r.source = source;
  r.submitted = serving::clock::now();
  return r;
}

// ---------------------------------------------------------------------
// RequestQueue
// ---------------------------------------------------------------------

TEST(RequestQueue, ShedsOnFullDeterministically) {
  RequestQueue q(4);
  std::vector<std::future<Reply>> futs;
  for (int i = 0; i < 4; ++i) {
    Request r = make_request(QueryKind::kBfs, i);
    futs.push_back(r.promise.get_future());
    EXPECT_TRUE(q.try_push(std::move(r)));
  }
  EXPECT_EQ(4u, q.depth());
  // The fifth push must be refused, and must leave the request (and
  // its promise) with the caller.
  Request fifth = make_request(QueryKind::kBfs, 4);
  auto fifth_fut = fifth.promise.get_future();
  EXPECT_FALSE(q.try_push(std::move(fifth)));
  EXPECT_EQ(4u, q.depth());
  fifth.promise.set_value(Reply{});  // still ours: fulfillable
  EXPECT_EQ(Status::kOk, fifth_fut.get().status);
}

TEST(RequestQueue, PopBatchCoalescesSameKindInFifoOrder) {
  RequestQueue q(64);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.try_push(make_request(QueryKind::kBfs, i)));
  }
  std::vector<Request> batch;
  EXPECT_EQ(10u, q.pop_batch(batch, 64));
  ASSERT_EQ(10u, batch.size());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(i, batch[static_cast<std::size_t>(i)].source);
  for (auto& r : batch) r.promise.set_value(Reply{});
}

TEST(RequestQueue, PopBatchNeverMixesKinds) {
  RequestQueue q(64);
  ASSERT_TRUE(q.try_push(make_request(QueryKind::kBfs, 0)));
  ASSERT_TRUE(q.try_push(make_request(QueryKind::kReach, 1)));
  ASSERT_TRUE(q.try_push(make_request(QueryKind::kBfs, 2)));
  std::vector<Request> batch;
  // First pop: the BFS FIFO head is oldest -> both BFS requests, and
  // only those.
  EXPECT_EQ(2u, q.pop_batch(batch, 64));
  for (const auto& r : batch) EXPECT_EQ(QueryKind::kBfs, r.kind);
  for (auto& r : batch) r.promise.set_value(Reply{});
  EXPECT_EQ(1u, q.pop_batch(batch, 64));
  EXPECT_EQ(QueryKind::kReach, batch[0].kind);
  for (auto& r : batch) r.promise.set_value(Reply{});
}

TEST(RequestQueue, PopBatchHonorsMaxBatch) {
  RequestQueue q(64);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(q.try_push(make_request(QueryKind::kBfs, i)));
  }
  std::vector<Request> batch;
  EXPECT_EQ(1u, q.pop_batch(batch, 1));  // unbatched ablation shape
  for (auto& r : batch) r.promise.set_value(Reply{});
  EXPECT_EQ(4u, q.pop_batch(batch, 4));
  for (auto& r : batch) r.promise.set_value(Reply{});
  EXPECT_EQ(5u, q.depth());
  while (q.pop_batch(batch, 64) > 0) {
    for (auto& r : batch) r.promise.set_value(Reply{});
    if (q.depth() == 0) break;
  }
}

TEST(RequestQueue, CloseDrainsThenReturnsZero) {
  RequestQueue q(8);
  ASSERT_TRUE(q.try_push(make_request(QueryKind::kBfs, 3)));
  q.close();
  EXPECT_FALSE(q.try_push(make_request(QueryKind::kBfs, 4)));
  std::vector<Request> batch;
  EXPECT_EQ(1u, q.pop_batch(batch, 64));  // queued work still drains
  for (auto& r : batch) r.promise.set_value(Reply{});
  EXPECT_EQ(0u, q.pop_batch(batch, 64));  // then every pop sees "done"
}

// ---------------------------------------------------------------------
// Server end to end
// ---------------------------------------------------------------------

TEST(Serving, BatchedMatchesSerialUnderConcurrentSubmission) {
  const gb::Graph g = serving_graph();
  constexpr int kQueries = 256;
  std::mt19937_64 rng(2026);
  std::uniform_int_distribution<vidx_t> pick(0, g.num_vertices() - 1);
  std::vector<vidx_t> sources(kQueries);
  for (auto& s : sources) s = pick(rng);

  // Serial per-query reference (the bit-identity oracle).
  const Context serial_ctx = Context{}.with_threads(1);
  std::vector<std::vector<std::int32_t>> expected;
  expected.reserve(kQueries);
  for (const vidx_t s : sources) {
    expected.push_back(algo::bfs(serial_ctx, g, {s}).levels);
  }

  ServerOptions opts;
  opts.workers = 4;
  opts.queue_capacity = kQueries;
  Server server(g, opts);

  // 4 submitter threads racing 4 workers: replies must be bit-identical
  // to the serial pass regardless of which wave each query rode.
  std::vector<std::future<Reply>> futs(kQueries);
  {
    std::vector<std::thread> submitters;
    std::atomic<int> next{0};
    for (int t = 0; t < 4; ++t) {
      submitters.emplace_back([&] {
        for (;;) {
          const int i = next.fetch_add(1);
          if (i >= kQueries) return;
          futs[static_cast<std::size_t>(i)] = server.submit(
              QueryKind::kBfs, sources[static_cast<std::size_t>(i)]);
        }
      });
    }
    for (auto& t : submitters) t.join();
  }
  for (int i = 0; i < kQueries; ++i) {
    const Reply r = futs[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(Status::kOk, r.status) << "query " << i;
    EXPECT_EQ(expected[static_cast<std::size_t>(i)], r.levels)
        << "query " << i << " source " << sources[static_cast<std::size_t>(i)]
        << " rode a wave of " << r.batch_width;
  }
  server.shutdown();
  const auto st = server.stats();
  EXPECT_EQ(kQueries, static_cast<int>(st.submitted));
  EXPECT_EQ(kQueries, static_cast<int>(st.completed));
  EXPECT_EQ(0u, st.shed_queue_full);
  EXPECT_EQ(0u, st.shed_deadline);
  EXPECT_EQ(kQueries, static_cast<int>(st.batched_queries));
}

TEST(Serving, ReachRepliesMatchBfsDerivedReachability) {
  const gb::Graph g = serving_graph();
  constexpr int kQueries = 96;  // > one wave, with odd tail
  const Context serial_ctx = Context{}.with_threads(1);

  ServerOptions opts;
  opts.workers = 2;
  opts.queue_capacity = kQueries;
  Server server(g, opts);
  std::vector<std::future<Reply>> futs;
  futs.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    futs.push_back(server.submit(QueryKind::kReach,
                                 static_cast<vidx_t>(i * 7) %
                                     g.num_vertices()));
  }
  for (auto& f : futs) {
    const Reply r = f.get();
    ASSERT_EQ(Status::kOk, r.status);
    ASSERT_EQ(static_cast<std::size_t>(g.num_vertices()), r.reached.size());
    const auto levels = algo::bfs(serial_ctx, g, {r.source}).levels;
    for (vidx_t v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(levels[static_cast<std::size_t>(v)] != algo::kUnreached,
                r.reached[static_cast<std::size_t>(v)] != 0)
          << "source " << r.source << " vertex " << v;
    }
  }
}

TEST(Serving, UnbatchedAblationMatchesBatched) {
  const gb::Graph g = serving_graph();
  constexpr int kQueries = 64;
  std::vector<std::future<Reply>> batched, unbatched;
  {
    ServerOptions opts;
    opts.workers = 2;
    opts.queue_capacity = kQueries;
    Server server(g, opts);
    for (int i = 0; i < kQueries; ++i) {
      batched.push_back(server.submit(QueryKind::kBfs,
                                      static_cast<vidx_t>(i * 13) %
                                          g.num_vertices()));
    }
  }  // destructor drains
  {
    ServerOptions opts;
    opts.workers = 2;
    opts.queue_capacity = kQueries;
    opts.max_batch = 1;  // the ablation: per-query execution
    Server server(g, opts);
    for (int i = 0; i < kQueries; ++i) {
      unbatched.push_back(server.submit(QueryKind::kBfs,
                                        static_cast<vidx_t>(i * 13) %
                                            g.num_vertices()));
    }
    server.shutdown();
    EXPECT_EQ(1u, server.stats().widest_wave);
  }
  for (int i = 0; i < kQueries; ++i) {
    const Reply b = batched[static_cast<std::size_t>(i)].get();
    const Reply u = unbatched[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(Status::kOk, b.status);
    ASSERT_EQ(Status::kOk, u.status);
    EXPECT_EQ(u.levels, b.levels) << "query " << i;
    EXPECT_EQ(1, u.batch_width);
  }
}

TEST(Serving, ExpiredDeadlinesAreShedAndAccounted) {
  const gb::Graph g = serving_graph();
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 64;
  Server server(g, opts);

  // A deadline already in the past when submitted is guaranteed to be
  // past when a worker reaches it: deterministically shed.
  const auto expired = serving::clock::now() - 1ms;
  std::vector<std::future<Reply>> doomed;
  for (int i = 0; i < 8; ++i) {
    doomed.push_back(server.submit(QueryKind::kBfs, i, expired));
  }
  // And a live one rides through normally.
  auto ok = server.submit(QueryKind::kBfs, 0);
  for (auto& f : doomed) {
    const Reply r = f.get();
    EXPECT_EQ(Status::kShedDeadline, r.status);
    EXPECT_TRUE(r.levels.empty());
  }
  EXPECT_EQ(Status::kOk, ok.get().status);
  server.shutdown();
  const auto st = server.stats();
  EXPECT_EQ(8u, st.shed_deadline);
  EXPECT_EQ(1u, st.completed);
  EXPECT_EQ(st.submitted, st.completed + st.shed_queue_full + st.shed_deadline);
}

TEST(Serving, QueueFullBackpressureShedsAtTheDoor) {
  const gb::Graph g = serving_graph();
  ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 1;  // every pop is width 1; storms must shed
  Server server(g, opts);

  constexpr int kStorm = 400;
  std::vector<std::future<Reply>> futs;
  futs.reserve(kStorm);
  for (int i = 0; i < kStorm; ++i) {
    futs.push_back(server.submit(QueryKind::kBfs,
                                 static_cast<vidx_t>(i) % g.num_vertices()));
  }
  int ok = 0, shed = 0;
  for (auto& f : futs) {
    const Reply r = f.get();
    if (r.status == Status::kOk) {
      ++ok;
    } else {
      ASSERT_EQ(Status::kShedQueueFull, r.status);
      ++shed;
    }
  }
  server.shutdown();
  const auto st = server.stats();
  // Conservation: every submission is accounted exactly once.
  EXPECT_EQ(kStorm, ok + shed);
  EXPECT_EQ(static_cast<std::uint64_t>(kStorm), st.submitted);
  EXPECT_EQ(st.submitted, st.completed + st.shed_queue_full + st.shed_deadline);
  EXPECT_EQ(static_cast<std::uint64_t>(ok), st.completed);
  EXPECT_EQ(static_cast<std::uint64_t>(shed), st.shed_queue_full);
  // A 400-query burst against capacity 1 and ms-scale queries cannot
  // all be admitted.
  EXPECT_GT(shed, 0);
}

TEST(Serving, SubmitRejectsOutOfRangeSource) {
  const gb::Graph g = serving_graph();
  Server server(g, {});
  EXPECT_THROW((void)server.submit(QueryKind::kBfs, -1),
               std::invalid_argument);
  EXPECT_THROW((void)server.submit(QueryKind::kBfs, g.num_vertices()),
               std::invalid_argument);
  server.shutdown();
}

TEST(Serving, ShutdownDrainsEveryPendingFuture) {
  const gb::Graph g = serving_graph();
  std::vector<std::future<Reply>> futs;
  {
    ServerOptions opts;
    opts.workers = 2;
    opts.queue_capacity = 512;
    Server server(g, opts);
    for (int i = 0; i < 200; ++i) {
      futs.push_back(server.submit(QueryKind::kBfs,
                                   static_cast<vidx_t>(i) %
                                       g.num_vertices()));
    }
  }  // destructor: close + drain + join
  for (auto& f : futs) {
    const Reply r = f.get();  // would block forever on a dropped promise
    EXPECT_EQ(Status::kOk, r.status);
  }
}

TEST(Serving, MixedKindsUnderLoadStaySegregatedAndCorrect) {
  const gb::Graph g = serving_graph();
  const Context serial_ctx = Context{}.with_threads(1);
  ServerOptions opts;
  opts.workers = 4;
  opts.queue_capacity = 256;
  Server server(g, opts);
  std::vector<std::future<Reply>> futs;
  for (int i = 0; i < 128; ++i) {
    futs.push_back(server.submit(i % 2 == 0 ? QueryKind::kBfs
                                            : QueryKind::kReach,
                                 static_cast<vidx_t>(i * 5) %
                                     g.num_vertices()));
  }
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Reply r = futs[i].get();
    ASSERT_EQ(Status::kOk, r.status);
    const auto levels = algo::bfs(serial_ctx, g, {r.source}).levels;
    if (r.kind == QueryKind::kBfs) {
      EXPECT_EQ(levels, r.levels);
    } else {
      for (vidx_t v = 0; v < g.num_vertices(); ++v) {
        EXPECT_EQ(levels[static_cast<std::size_t>(v)] != algo::kUnreached,
                  r.reached[static_cast<std::size_t>(v)] != 0);
      }
    }
  }
}

}  // namespace
}  // namespace bitgb
