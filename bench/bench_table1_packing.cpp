// Table I reproduction: binarized packing format and per-tile space
// saving.  The saving is analytic (tile geometry) but each row is also
// verified on a real packed matrix so the implementation's accounting
// is exercised, not just arithmetic.
#include "core/pack.hpp"
#include "core/stats.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"

#include <cstdio>

int main() {
  using namespace bitgb;

  std::printf("== Table I: binarized packing format ==\n");
  std::printf("%-10s %-22s %-26s %12s\n", "tile", "CSR storage (at most)",
              "binarized packing", "saving/tile");

  struct Row {
    int dim;
    const char* csr;
    const char* packed;
  };
  const Row rows[] = {
      {4, "4x4 float (64 B)", "4 x 1 unsigned char (4 B)"},
      {8, "8x8 float (256 B)", "8 x 1 unsigned char (8 B)"},
      {16, "16x16 float (1024 B)", "16 x 1 unsigned short (32 B)"},
      {32, "32x32 float (4096 B)", "32 x 1 unsigned int (128 B)"},
  };
  for (const auto& r : rows) {
    std::printf("%2dx%-7d %-22s %-26s %11.0fx\n", r.dim, r.dim, r.csr,
                r.packed, per_tile_saving(r.dim));
  }

  // Verification on a dense-tile matrix: an aligned fully-dense band
  // realizes the per-tile saving (up to index-array overhead).
  std::printf("\nverification on a dense 512x512 matrix "
              "(every tile full):\n");
  Coo dense{512, 512, {}, {}, {}};
  for (vidx_t r = 0; r < 512; ++r) {
    for (vidx_t c = 0; c < 512; ++c) dense.push(r, c);
  }
  const Csr m = coo_to_csr(dense);
  const std::size_t csr_values_bytes =
      static_cast<std::size_t>(m.nnz()) * sizeof(value_t);
  for (const int dim : kTileDims) {
    const B2srAny b = pack_any(m, dim);
    const std::size_t tile_bytes =
        b.storage_bytes() -
        (static_cast<std::size_t>(b.nnz_tiles()) + b.visit([](const auto& x) {
          return x.tile_rowptr.size();
        })) * sizeof(vidx_t);
    std::printf("  B2SR-%-3d tiles=%6d  value bytes %8zu -> bit bytes %7zu "
                "(%.0fx)\n",
                dim, b.nnz_tiles(), csr_values_bytes, tile_bytes,
                static_cast<double>(csr_values_bytes) /
                    static_cast<double>(tile_bytes));
  }
  std::printf("\nnote: Table I counts value storage only; whole-format "
              "ratios (with index arrays) are Figure 5's subject.\n");
  return 0;
}
