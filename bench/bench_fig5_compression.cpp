// Figure 5 reproduction: compression results over the 521-matrix
// corpus.
//   (a) histogram of compression ratios (B2SR bytes / float-CSR bytes)
//       per tile size;
//   (b) per tile size, how many matrices have it as their *optimal*
//       (smallest) format and how many it *compresses* (<100%).
// Paper reference points: optimal 162/291/26/12 for 4/8/16/32;
// compressed 491/421/329/263.
#include "benchlib/corpus.hpp"
#include "core/stats.hpp"

#include <array>
#include <cstdio>
#include <map>

int main() {
  using namespace bitgb;
  using namespace bitgb::bench;

  const auto corpus = full_corpus(CorpusScale::kFull);

  std::map<int, std::array<int, 11>> histogram;  // dim -> 10%-wide bins
  std::map<int, int> optimal;
  std::map<int, int> compressed;
  for (const int dim : kTileDims) {
    histogram[dim] = {};
    optimal[dim] = 0;
    compressed[dim] = 0;
  }

  for (const auto& e : corpus) {
    if (e.matrix.nnz() == 0) continue;
    const auto fps = all_footprints(e.matrix);
    std::size_t best_bytes = SIZE_MAX;
    int best_dim = 4;
    for (const auto& fp : fps) {
      const int bin =
          std::min(10, static_cast<int>(fp.compression_pct / 10.0));
      ++histogram[fp.dim][static_cast<std::size_t>(bin)];
      if (fp.compression_pct < 100.0) ++compressed[fp.dim];
      if (fp.b2sr_bytes < best_bytes) {
        best_bytes = fp.b2sr_bytes;
        best_dim = fp.dim;
      }
    }
    ++optimal[best_dim];
  }

  std::printf("== Figure 5a: compression-ratio histogram "
              "(count of matrices per 10%% bin) ==\n");
  std::printf("%-8s", "ratio");
  for (int b = 0; b < 11; ++b) {
    if (b < 10) {
      std::printf(" %3d-%3d", b * 10, b * 10 + 9);
    } else {
      std::printf("   >=100");
    }
  }
  std::printf("\n");
  for (const int dim : kTileDims) {
    std::printf("%2dx%-5d", dim, dim);
    for (int b = 0; b < 11; ++b) {
      std::printf(" %7d", histogram[dim][static_cast<std::size_t>(b)]);
    }
    std::printf("\n");
  }

  std::printf("\n== Figure 5b: optimal & compressed counts per tile size ==\n");
  std::printf("%-8s %10s %12s %18s %20s\n", "tile", "optimal", "compressed",
              "paper optimal", "paper compressed");
  const std::map<int, std::pair<int, int>> paper = {
      {4, {162, 491}}, {8, {291, 421}}, {16, {26, 329}}, {32, {12, 263}}};
  for (const int dim : kTileDims) {
    std::printf("%2dx%-5d %10d %12d %18d %20d\n", dim, dim, optimal[dim],
                compressed[dim], paper.at(dim).first, paper.at(dim).second);
  }
  return 0;
}
