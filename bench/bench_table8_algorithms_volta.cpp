// Table VIII reproduction: the Table VII workload on the volta-analog
// device profile (full host parallel width) — the paper's second-GPU
// column of the algorithm evaluation.
#include "benchlib/algo_table.hpp"
#include "platform/device_profile.hpp"

#include <iostream>

int main() {
  using namespace bitgb;
  using namespace bitgb::bench;

  const DeviceProfile profile = volta_analog();
  std::cout << "device profile: " << profile.name << " (stand-in for "
            << profile.paper_gpu << ")\n\n";
  print_spmv_algorithm_table(std::cout, profile,
                             "Table VIII (volta-analog)",
                             table7_matrices());
  return 0;
}
