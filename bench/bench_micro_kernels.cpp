// google-benchmark microbenchmarks of the core kernels: per-call
// latency of packing, each BMV scheme, the BMM sum, and the baseline
// CSR ops on a fixed representative matrix, for regression tracking.
#include "baseline/csrgemm.hpp"
#include "baseline/csrmv.hpp"
#include "core/bit_spgemm.hpp"
#include "core/bmm.hpp"
#include "core/bmv.hpp"
#include "core/pack.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace bitgb;

const Csr& fixture_matrix() {
  static const Csr m = coo_to_csr(gen_banded(4096, 16, 0.6, 42));
  return m;
}

const Csr& fixture_unit() {
  static const Csr m = [] {
    Csr u = fixture_matrix();
    u.val.assign(static_cast<std::size_t>(u.nnz()), 1.0f);
    return u;
  }();
  return m;
}

template <int Dim>
const B2srT<Dim>& fixture_packed() {
  static const B2srT<Dim> b = pack_from_csr<Dim>(fixture_matrix());
  return b;
}

std::vector<value_t> fixture_vector() {
  std::vector<value_t> x(static_cast<std::size_t>(fixture_matrix().ncols));
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = (i % 2 == 0) ? 1.5f : 0.0f;
  }
  return x;
}

template <int Dim>
void BM_Pack(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(pack_from_csr<Dim>(fixture_matrix()));
  }
}
BENCHMARK(BM_Pack<4>);
BENCHMARK(BM_Pack<8>);
BENCHMARK(BM_Pack<16>);
BENCHMARK(BM_Pack<32>);

void BM_BaselineCsrmv(benchmark::State& state) {
  const auto x = fixture_vector();
  std::vector<value_t> y;
  for (auto _ : state) {
    baseline::csrmv(fixture_unit(), x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BaselineCsrmv);

template <int Dim>
void BM_BmvBinBinBin(benchmark::State& state) {
  const auto x = PackedVecT<Dim>::from_values(fixture_vector());
  PackedVecT<Dim> y;
  for (auto _ : state) {
    bmv_bin_bin_bin(fixture_packed<Dim>(), x, y);
    benchmark::DoNotOptimize(y.words.data());
  }
}
BENCHMARK(BM_BmvBinBinBin<4>);
BENCHMARK(BM_BmvBinBinBin<8>);
BENCHMARK(BM_BmvBinBinBin<16>);
BENCHMARK(BM_BmvBinBinBin<32>);

template <int Dim>
void BM_BmvBinBinFull(benchmark::State& state) {
  const auto x = PackedVecT<Dim>::from_values(fixture_vector());
  std::vector<value_t> y;
  for (auto _ : state) {
    bmv_bin_bin_full(fixture_packed<Dim>(), x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BmvBinBinFull<4>);
BENCHMARK(BM_BmvBinBinFull<8>);
BENCHMARK(BM_BmvBinBinFull<16>);
BENCHMARK(BM_BmvBinBinFull<32>);

template <int Dim>
void BM_BmvBinFullFull(benchmark::State& state) {
  const auto x = fixture_vector();
  std::vector<value_t> y;
  for (auto _ : state) {
    bmv_bin_full_full<Dim, PlusTimesOp>(fixture_packed<Dim>(), x, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BmvBinFullFull<4>);
BENCHMARK(BM_BmvBinFullFull<8>);
BENCHMARK(BM_BmvBinFullFull<16>);
BENCHMARK(BM_BmvBinFullFull<32>);

template <int Dim>
void BM_BmmSum(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bmm_bin_bin_sum(fixture_packed<Dim>(), fixture_packed<Dim>()));
  }
}
BENCHMARK(BM_BmmSum<8>);
BENCHMARK(BM_BmmSum<32>);

template <int Dim>
void BM_BmmMaskedSum(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(bmm_bin_bin_sum_masked(
        fixture_packed<Dim>(), fixture_packed<Dim>(), fixture_packed<Dim>()));
  }
}
BENCHMARK(BM_BmmMaskedSum<8>);
BENCHMARK(BM_BmmMaskedSum<32>);

template <int Dim>
void BM_BitSpgemm(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        bit_spgemm(fixture_packed<Dim>(), fixture_packed<Dim>()));
  }
}
BENCHMARK(BM_BitSpgemm<8>);
BENCHMARK(BM_BitSpgemm<32>);

void BM_BaselineCsrgemm(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        baseline::csrgemm(fixture_unit(), fixture_unit()));
  }
}
BENCHMARK(BM_BaselineCsrgemm);

template <int Dim>
void BM_Transpose(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(transpose(fixture_packed<Dim>()));
  }
}
BENCHMARK(BM_Transpose<8>);
BENCHMARK(BM_Transpose<32>);

}  // namespace

BENCHMARK_MAIN();
