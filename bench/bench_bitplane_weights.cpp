// Extension bench (paper §VII future work): heterogeneous graphs with
// short integer weights via bit-plane decomposition.
// Measures weighted SpMV as b concurrent binary BMVs (b = bit width of
// the weights) against the float-CSR baseline, sweeping the bit width:
// the decomposition wins while b stays small — exactly the regime the
// paper proposes it for.
#include "baseline/csrmv.hpp"
#include "core/bitplane.hpp"
#include "platform/timer.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"

#include <cmath>
#include <cstdio>
#include <random>

int main() {
  using namespace bitgb;

  const vidx_t n = 8192;
  std::printf("== §VII extension: bit-plane SpMV for w-bit weights ==\n");
  std::printf("matrix: band %d, ~%d nnz per row\n\n", n, 2 * 12);
  std::printf("%-10s %14s %16s %10s %14s\n", "bit width", "csrmv (ms)",
              "bitplane (ms)", "speedup", "storage ratio");

  std::mt19937_64 rng(1);
  for (const int width : {1, 2, 4, 8}) {
    // Band pattern with width-bit random weights.
    Coo coo = gen_banded(n, 12, 0.8, 7);
    coo.val.resize(coo.row.size());
    std::uniform_int_distribution<int> w(1, (1 << width) - 1);
    for (auto& v : coo.val) v = static_cast<value_t>(w(rng));
    const Csr m = coo_to_csr(coo);

    std::vector<value_t> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = 1.0f;
    std::vector<value_t> y_ref;
    const double t_csr = time_avg_ms([&] { baseline::csrmv(m, x, y_ref); });

    const auto planes = decompose_bitplanes<32>(m, width);
    std::vector<value_t> y_bp;
    const double t_bp = time_avg_ms([&] { bitplane_spmv(planes, x, y_bp); });

    // Verify.
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      if (std::abs(y_ref[i] - y_bp[i]) > 1e-2f) {
        std::printf("MISMATCH at %zu: %f vs %f\n", i, y_ref[i], y_bp[i]);
        return 1;
      }
    }

    std::printf("%-10d %14.3f %16.3f %9.2fx %13.1f%%\n", width, t_csr, t_bp,
                t_csr / t_bp,
                100.0 * static_cast<double>(planes.storage_bytes()) /
                    static_cast<double>(m.storage_bytes()));
  }
  std::printf("\n(the decomposition trades one float pass for w binary "
              "passes — profitable while w stays small, as §VII argues)\n");
  return 0;
}
