// Algorithm 1 evaluation: sampling-profiler accuracy and overhead.
// Sweeps the sample-row count and reports (a) the estimation error of
// the per-dim compression rate versus the exact packer, (b) profiling
// latency versus full packing latency, (c) how often the recommended
// tile size matches the true optimum across the corpus.
#include "benchlib/corpus.hpp"
#include "core/sampling.hpp"
#include "core/stats.hpp"
#include "platform/timer.hpp"

#include <cmath>
#include <cstdio>

int main() {
  using namespace bitgb;
  using namespace bitgb::bench;

  const auto corpus = full_corpus(CorpusScale::kTimed);

  std::printf("== Algorithm 1: sampling profile accuracy/overhead ==\n");
  std::printf("%-12s %14s %14s %16s %14s\n", "sample rows", "mean |err| pct",
              "max |err| pct", "optimal hit rate", "time vs pack");

  for (const vidx_t samples : {16, 64, 256, 1024}) {
    double err_sum = 0.0;
    double err_max = 0.0;
    int err_count = 0;
    int hits = 0;
    int total = 0;
    double t_sample = 0.0;
    double t_pack = 0.0;

    for (const auto& e : corpus) {
      if (e.matrix.nnz() == 0) continue;
      Stopwatch sw;
      const SamplingProfile prof = sample_profile(e.matrix, samples, 42);
      t_sample += sw.elapsed_ms();
      sw.reset();
      const auto exact = all_footprints(e.matrix);
      t_pack += sw.elapsed_ms();

      for (int i = 0; i < kNumTileDims; ++i) {
        const double err =
            std::abs(prof.per_dim[static_cast<std::size_t>(i)]
                         .est_compression_pct -
                     exact[static_cast<std::size_t>(i)].compression_pct);
        err_sum += err;
        err_max = std::max(err_max, err);
        ++err_count;
      }
      ++total;
      if (prof.recommended_dim() == optimal_tile_dim(e.matrix)) ++hits;
    }

    std::printf("%-12d %13.2f%% %13.2f%% %15.1f%% %13.2fx\n", samples,
                err_sum / err_count, err_max,
                100.0 * hits / static_cast<double>(total),
                t_pack / t_sample);
  }
  std::printf("\n(full sampling is exact by construction; small samples "
              "trade accuracy for an order-of-magnitude cheaper profile)\n");
  return 0;
}
