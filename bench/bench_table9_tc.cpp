// Table IX reproduction: triangle counting (one masked SpGEMM) on the
// 16 named-matrix analogs, both device profiles — the paper prints
// Pascal and Volta side by side in one table and so do we.
#include "benchlib/algo_table.hpp"
#include "platform/device_profile.hpp"

#include <iostream>

int main() {
  using namespace bitgb;
  using namespace bitgb::bench;

  const auto mats = table9_matrices();
  for (const DeviceProfile& profile : all_profiles()) {
    std::cout << "device profile: " << profile.name << " (stand-in for "
              << profile.paper_gpu << ")\n\n";
    print_algo_table(std::cout, "Table IX (" + profile.name + ")", "TC",
                     run_algo_table(profile, mats, TableAlgo::kTc));
  }
  return 0;
}
