// §III-B reproduction: bit-packing (CSR -> B2SR) conversion overhead.
// The paper reports 3-34 ms across its dataset and argues the one-time
// cost is amortized by repeated use; this bench measures conversion
// latency across matrix sizes plus the break-even point in SpMV calls.
#include "baseline/csrmv.hpp"
#include "core/bmv.hpp"
#include "core/pack.hpp"
#include "platform/timer.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"

#include <cstdio>

int main() {
  using namespace bitgb;

  std::printf("== §III-B: CSR -> B2SR conversion overhead ==\n");
  std::printf("%-22s %10s %10s", "matrix", "n", "nnz");
  for (const int dim : kTileDims) std::printf("   pack-%d(ms)", dim);
  std::printf("\n");

  struct Case {
    const char* name;
    Coo coo;
    Csr m;
  };
  const auto make_case = [](const char* name, Coo coo) {
    Csr m = coo_to_csr(coo);
    return Case{name, std::move(coo), std::move(m)};
  };
  const Case cases[] = {
      make_case("band_1k", gen_banded(1024, 8, 0.6, 1)),
      make_case("band_8k", gen_banded(8192, 8, 0.6, 2)),
      make_case("band_32k", gen_banded(32768, 8, 0.6, 3)),
      make_case("rmat_16k", gen_rmat(14, 300000, 4)),
      make_case("stripe_16k", gen_stripe(16384, 4, 0.7, 5)),
  };

  for (const auto& c : cases) {
    std::printf("%-22s %10d %10lld", c.name, c.m.nrows,
                static_cast<long long>(c.m.nnz()));
    for (const int dim : kTileDims) {
      const double t = time_avg_ms([&] { (void)pack_any(c.m, dim); });
      std::printf(" %12.2f", t);
    }
    std::printf("\n");
  }

  // COO fast path: edge list -> B2SR directly vs routed through CSR.
  std::printf("\n== COO fast path: direct vs CSR-routed (dim 8) ==\n");
  std::printf("%-22s %14s %16s %10s\n", "matrix", "direct(ms)",
              "coo+csr+pack(ms)", "speedup");
  for (const auto& c : cases) {
    const double t_direct =
        time_avg_ms([&] { (void)pack_from_coo<8>(c.coo); });
    const double t_routed =
        time_avg_ms([&] { (void)pack_from_csr<8>(coo_to_csr(c.coo)); });
    std::printf("%-22s %14.2f %16.2f %9.2fx\n", c.name, t_direct, t_routed,
                t_direct > 0.0 ? t_routed / t_direct : 0.0);
  }

  // Break-even: conversion cost over per-SpMV saving.
  std::printf("\n== amortization: SpMV calls to break even ==\n");
  std::printf("%-22s %12s %12s %12s %12s\n", "matrix", "csrmv(ms)",
              "bmv(ms)", "pack(ms)", "break-even");
  for (const auto& c : cases) {
    Csr unit = c.m;
    unit.val.assign(static_cast<std::size_t>(c.m.nnz()), 1.0f);
    std::vector<value_t> x(static_cast<std::size_t>(c.m.ncols), 1.0f);
    std::vector<value_t> y;
    const double t_csr = time_avg_ms([&] { baseline::csrmv(unit, x, y); });

    const B2sr8 a = pack_from_csr<8>(c.m);
    const double t_pack = time_avg_ms([&] { (void)pack_from_csr<8>(c.m); });
    const double t_bmv = time_avg_ms(
        [&] { bmv_bin_full_full<8, PlusTimesOp>(a, x, y); });

    if (t_csr > t_bmv) {
      std::printf("%-22s %12.3f %12.3f %12.2f %10.0f\n", c.name, t_csr,
                  t_bmv, t_pack, t_pack / (t_csr - t_bmv));
    } else {
      std::printf("%-22s %12.3f %12.3f %12.2f %12s\n", c.name, t_csr, t_bmv,
                  t_pack, "never");
    }
  }
  std::printf("(the paper reports 3-34 ms conversions, amortized over "
              "iterative reuse)\n");
  return 0;
}
