// §III-B reproduction: bit-packing (CSR -> B2SR) conversion overhead.
// The paper reports 3-34 ms across its dataset and argues the one-time
// cost is amortized by repeated use; this bench measures conversion
// latency across matrix sizes plus the break-even point in SpMV calls.
#include "baseline/csrmv.hpp"
#include "core/bmv.hpp"
#include "core/pack.hpp"
#include "platform/timer.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"

#include <cstdio>

int main() {
  using namespace bitgb;

  std::printf("== §III-B: CSR -> B2SR conversion overhead ==\n");
  std::printf("%-22s %10s %10s", "matrix", "n", "nnz");
  for (const int dim : kTileDims) std::printf("   pack-%d(ms)", dim);
  std::printf("\n");

  struct Case {
    const char* name;
    Csr m;
  };
  const Case cases[] = {
      {"band_1k", coo_to_csr(gen_banded(1024, 8, 0.6, 1))},
      {"band_8k", coo_to_csr(gen_banded(8192, 8, 0.6, 2))},
      {"band_32k", coo_to_csr(gen_banded(32768, 8, 0.6, 3))},
      {"rmat_16k", coo_to_csr(gen_rmat(14, 300000, 4))},
      {"stripe_16k", coo_to_csr(gen_stripe(16384, 4, 0.7, 5))},
  };

  for (const auto& c : cases) {
    std::printf("%-22s %10d %10lld", c.name, c.m.nrows,
                static_cast<long long>(c.m.nnz()));
    for (const int dim : kTileDims) {
      const double t = time_avg_ms([&] { (void)pack_any(c.m, dim); });
      std::printf(" %12.2f", t);
    }
    std::printf("\n");
  }

  // Break-even: conversion cost over per-SpMV saving.
  std::printf("\n== amortization: SpMV calls to break even ==\n");
  std::printf("%-22s %12s %12s %12s %12s\n", "matrix", "csrmv(ms)",
              "bmv(ms)", "pack(ms)", "break-even");
  for (const auto& c : cases) {
    Csr unit = c.m;
    unit.val.assign(static_cast<std::size_t>(c.m.nnz()), 1.0f);
    std::vector<value_t> x(static_cast<std::size_t>(c.m.ncols), 1.0f);
    std::vector<value_t> y;
    const double t_csr = time_avg_ms([&] { baseline::csrmv(unit, x, y); });

    const B2sr8 a = pack_from_csr<8>(c.m);
    const double t_pack = time_avg_ms([&] { (void)pack_from_csr<8>(c.m); });
    const double t_bmv = time_avg_ms(
        [&] { bmv_bin_full_full<8, PlusTimesOp>(a, x, y); });

    if (t_csr > t_bmv) {
      std::printf("%-22s %12.3f %12.3f %12.2f %10.0f\n", c.name, t_csr,
                  t_bmv, t_pack, t_pack / (t_csr - t_bmv));
    } else {
      std::printf("%-22s %12.3f %12.3f %12.2f %12s\n", c.name, t_csr, t_bmv,
                  t_pack, "never");
    }
  }
  std::printf("(the paper reports 3-34 ms conversions, amortized over "
              "iterative reuse)\n");
  return 0;
}
