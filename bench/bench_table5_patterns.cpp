// Table V reproduction: the pattern-category census of the evaluation
// corpus.  The paper buckets the 521 SuiteSparse binary matrices into
// six categories; our synthetic corpus is generated to the same
// normalized mix — this bench prints the realized census next to the
// paper's percentages.
#include "benchlib/corpus.hpp"

#include <cstdio>
#include <map>

int main() {
  using namespace bitgb;
  using namespace bitgb::bench;

  const auto corpus = full_corpus(CorpusScale::kFull);
  std::map<Pattern, int> counts;
  eidx_t total_nnz = 0;
  for (const auto& e : corpus) {
    ++counts[e.category];
    total_nnz += e.matrix.nnz();
  }

  // The paper's Table V percentages (overlapping; hybrids belong to
  // several categories, hence > 100% summed).
  const std::map<Pattern, double> paper = {
      {Pattern::kDot, 36.66},   {Pattern::kDiagonal, 45.87},
      {Pattern::kBlock, 24.95}, {Pattern::kStripe, 13.05},
      {Pattern::kRoad, 5.18},   {Pattern::kHybrid, 25.72},
  };
  double paper_total = 0.0;
  for (const auto& [p, pct] : paper) paper_total += pct;

  std::printf("== Table V: matrix pattern category census ==\n");
  std::printf("corpus: %zu matrices, %lld total nonzeros\n\n", corpus.size(),
              static_cast<long long>(total_nnz));
  std::printf("%-10s %8s %10s %16s\n", "category", "count", "share",
              "paper (normd)");
  for (const auto& [p, pct] : paper) {
    const double share =
        100.0 * counts[p] / static_cast<double>(corpus.size());
    std::printf("%-10s %8d %9.1f%% %15.1f%%\n", pattern_name(p), counts[p],
                share, 100.0 * pct / paper_total);
  }
  return 0;
}
