// Scaling study: where the bandwidth story kicks in.
//
// The paper's full-precision-vector gains (SSSP/PR/CC, Tables VII/VIII)
// are driven by memory bandwidth: B2SR moves ~32x less matrix data than
// float CSR, which matters exactly when the matrix exceeds the cache.
// The named-analog tables run at cache-resident sizes where that effect
// vanishes (EXPERIMENTS.md discusses this), so this bench sweeps the
// matrix size across the cache boundary and reports the PR (10
// iterations, paper parameters) backend ratio per size: the bit
// backend's relative performance should improve as CSR outgrows the
// cache — the host-side analog of the paper's bandwidth argument.
#include "algorithms/pagerank.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/timer.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"

#include <cstdio>

int main() {
  using namespace bitgb;

  const Context bit_ctx;
  const Context ref_ctx = bit_ctx.with_backend(Backend::kReference);

  std::printf("== scaling: PageRank (10 iters) vs matrix size ==\n");
  std::printf("%-10s %12s %12s %12s %12s %9s\n", "n", "nnz", "CSR(MB)",
              "ref (ms)", "bit (ms)", "ratio");

  for (const vidx_t n : {8192, 32768, 131072, 262144}) {
    gb::GraphOptions opts;
    opts.tile_dim = 8;  // bands pack best at 8 (Figure 5b)
    const gb::Graph g =
        gb::Graph::from_coo(gen_banded(n, 12, 0.8, 42), opts);
    (void)g.packed_t();
    (void)g.unit_adjacency_t();
    (void)g.degrees();

    const double t_ref = time_avg_ms(
        [&] { (void)algo::pagerank(ref_ctx, g); }, 3);
    const double t_bit = time_avg_ms(
        [&] { (void)algo::pagerank(bit_ctx, g); }, 3);

    std::printf("%-10d %12lld %12.1f %12.2f %12.2f %8.2fx\n", n,
                static_cast<long long>(g.num_edges()),
                static_cast<double>(g.unit_adjacency().storage_bytes()) /
                    (1024.0 * 1024.0),
                t_ref, t_bit, t_ref / t_bit);
  }
  std::printf("\n(expected shape: the ratio rises with size — once the "
              "float CSR outgrows the cache, B2SR's ~32x smaller matrix "
              "stream wins the bandwidth it was designed to save)\n");
  return 0;
}
