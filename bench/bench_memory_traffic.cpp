// §VI-C reproduction: the memory-transaction / locality narrative.
// The paper profiles mycielskian8 and finds B2SR cuts global-memory
// load transactions ~4x.  On the host we reproduce the underlying
// quantity — bytes of matrix data one SpMV must read — with the word
// traffic model, across the named analogs and tile sizes.
#include "benchlib/corpus.hpp"
#include "core/stats.hpp"
#include "sparse/generators.hpp"
#include "sparse/convert.hpp"

#include <cstdio>

int main() {
  using namespace bitgb;
  using namespace bitgb::bench;

  std::printf("== §VI-C: SpMV matrix-data traffic, CSR vs B2SR ==\n");
  std::printf("%-22s %12s", "matrix", "CSR(KB)");
  for (const int dim : kTileDims) std::printf("  B2SR-%d(KB) redx", dim);
  std::printf("\n");

  // mycielskian8 is the paper's §VI-C exhibit — include it exactly.
  std::vector<CorpusEntry> mats;
  {
    CorpusEntry m8;
    m8.name = "mycielskian8";
    m8.category = Pattern::kBlock;
    m8.matrix = coo_to_csr(gen_mycielskian(8));
    mats.push_back(std::move(m8));
  }
  for (const char* n : {"ash292", "minnesota", "3dtube", "Erdos02",
                        "mycielskian9", "whitaker3_dual"}) {
    mats.push_back(named_matrix(n));
  }

  for (const auto& e : mats) {
    std::printf("%-22s %12.1f", e.name.c_str(),
                static_cast<double>(e.matrix.storage_bytes()) / 1024.0);
    for (const int dim : kTileDims) {
      const TrafficModel t = spmv_traffic(e.matrix, dim);
      std::printf(" %11.1f %4.1fx",
                  static_cast<double>(t.b2sr_bytes) / 1024.0, t.reduction());
    }
    std::printf("\n");
  }
  std::printf("\n(paper: mycielskian8 load transactions fell 4x, "
              "6630 -> 1826, and L1 hit-rate rose 65.6%% -> 81.8%%)\n");
  return 0;
}
