// Figure 3 reproduction: effect trends with increasing tile dimension
// on the five illustrative matrices (G47, sphere3, cage, will199,
// email-Eu-core analogs):
//   (a) non-empty tile ratio (%)    — rises with tile dim
//   (b) nonzero occupancy in tiles (%) — falls with tile dim
// Also prints the §III-C mycielskian12-style total-byte-size trend
// showing the non-monotone optimum.
#include "benchlib/corpus.hpp"
#include "core/stats.hpp"

#include <cstdio>

int main() {
  using namespace bitgb;
  using namespace bitgb::bench;

  const auto mats = figure3_matrices();

  std::printf("== Figure 3a: non-empty tile ratio (%%) ==\n");
  std::printf("%-16s", "matrix");
  for (const int dim : kTileDims) std::printf(" %6dx%-3d", dim, dim);
  std::printf("\n");
  for (const auto& e : mats) {
    std::printf("%-16s", e.name.c_str());
    for (const int dim : kTileDims) {
      std::printf(" %9.1f", nonempty_tile_ratio_pct(e.matrix, dim));
    }
    std::printf("\n");
  }

  std::printf("\n== Figure 3b: nonzero occupancy in non-empty tiles (%%) ==\n");
  std::printf("%-16s", "matrix");
  for (const int dim : kTileDims) std::printf(" %6dx%-3d", dim, dim);
  std::printf("\n");
  for (const auto& e : mats) {
    std::printf("%-16s", e.name.c_str());
    for (const int dim : kTileDims) {
      std::printf(" %9.1f", nonzero_occupancy_pct(e.matrix, dim));
    }
    std::printf("\n");
  }

  std::printf("\n== §III-C byte-size trend (mycielskian12 analog) ==\n");
  const auto myc = named_matrix("mycielskian12");
  std::printf("CSR: %.2f KB\n",
              static_cast<double>(myc.matrix.storage_bytes()) / 1024.0);
  for (const auto& fp : all_footprints(myc.matrix)) {
    std::printf("B2SR-%-3d: %.2f KB (%.1f%% of CSR)\n", fp.dim,
                static_cast<double>(fp.b2sr_bytes) / 1024.0,
                fp.compression_pct);
  }
  std::printf("(the total does not vary monotonically with tile size —\n"
              " the paper reports the same effect for mycielskian12)\n");
  return 0;
}
