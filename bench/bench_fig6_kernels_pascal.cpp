// Figure 6 reproduction: arithmetic-kernel speedups over the float-CSR
// baseline on the pascal-analog device profile (the GTX 1080 stand-in:
// minimum parallel width — see DESIGN.md's substitution table).
// Panels: (a) bmv_bin_bin_bin, (b) bmv_bin_bin_full,
// (c) bmv_bin_full_full, (d) bmm_bin_bin_sum; series per tile size;
// x axis = nonzero density decade.  Raw points land in fig6_points.csv.
#include "benchlib/kernel_sweep.hpp"
#include "platform/device_profile.hpp"

#include <iostream>

int main() {
  using namespace bitgb;
  using namespace bitgb::bench;

  const DeviceProfile profile = pascal_analog();
  std::cout << "device profile: " << profile.name << " (stand-in for "
            << profile.paper_gpu << ", " << profile.num_threads
            << " thread)\n\n";

  const SweepResult r = run_kernel_sweep(profile, SweepOptions{});
  print_sweep(std::cout, "Figure 6", r);

  write_sweep_csv("fig6a_points.csv", r.bmv_bin_bin_bin);
  write_sweep_csv("fig6b_points.csv", r.bmv_bin_bin_full);
  write_sweep_csv("fig6c_points.csv", r.bmv_bin_full_full);
  write_sweep_csv("fig6d_points.csv", r.bmm_bin_bin_sum);
  std::cout << "raw points written to fig6{a,b,c,d}_points.csv\n";
  return 0;
}
