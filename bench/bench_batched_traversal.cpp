// Batched multi-source traversal: one BMM frontier sweep vs N
// sequential single-source runs.
//
// The batch engine's claim is that packing up to 64 frontiers into the
// bit-columns of a FrontierBatch turns 64 BMV sweeps per level into one
// BMM sweep, so a 64-query batch should cost a small multiple of ONE
// BFS, not 64 of them.  This harness measures, per generator-corpus
// graph:
//
//   bit seq     — 64 sequential single-source bfs() runs, bit backend
//   bit batched — one msbfs() over the same 64 sources, bit backend
//   ref batched — msbfs() on the reference backend (column loop),
//                 the framework-baseline cost of the same batch
//
// and prints the sequential/batched speedup per graph plus the overall
// geometric mean.  Sources are the same evenly spaced batch the
// Tables VII/VIII MSBFS row uses (benchlib batch_sources).
//
// Expected shape of the result: large wins wherever the 64 wavefronts
// overlap tiles (scale-free, grid, hybrid graphs — the shared adjacency
// sweep then serves many lanes per word op); parity at best on a long
// -diameter band graph with evenly spread sources, whose disjoint
// wavefronts give the batch nothing to amortize while sequential BFS
// stays on its word-granular active-list push path.  The band row is
// kept deliberately as the honest worst case; against the reference
// framework batch (the GraphBLAST-substitute column loop) the bit
// engine wins everywhere by 1-2 orders of magnitude.
#include "algorithms/bfs.hpp"
#include "algorithms/msbfs.hpp"
#include "platform/context.hpp"
#include "benchlib/algo_table.hpp"
#include "benchlib/reporting.hpp"
#include "platform/timer.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

int main() {
  using namespace bitgb;

  const Context bit_ctx;  // bit backend, auto variant, hardware threads
  const Context ref_ctx = bit_ctx.with_backend(Backend::kReference);

  const std::vector<std::pair<std::string, Coo>> graphs = {
      {"rmat_s12", gen_rmat(12, 32768, 1)},
      {"road_64x64", gen_road(64, 64, 0.01, 2)},
      {"band_4096", gen_banded(4096, 8, 0.6, 3)},
      {"hybrid_2048", gen_hybrid(2048, 4)},
  };

  std::printf("Batched multi-source traversal: 64-source msbfs vs 64 "
              "sequential bfs (ms, avg of %d)\n\n",
              kRunsPerMeasurement);
  std::printf("%-12s %10s %12s %12s %12s %9s\n", "graph", "verts",
              "bit seq", "bit batched", "ref batched", "speedup");

  std::vector<double> speedups;
  for (const auto& [name, edges] : graphs) {
    const gb::Graph g = gb::Graph::from_coo(edges);
    (void)g.packed_t();      // warm the one-time conversions
    (void)g.adjacency_t();
    const std::vector<vidx_t> sources = bench::batch_sources(g.num_vertices());

    const double seq_ms = time_avg_ms([&] {
      for (const vidx_t s : sources) {
        (void)algo::bfs(bit_ctx, g, {s});
      }
    });
    const double batched_ms = time_avg_ms(
        [&] { (void)algo::msbfs(bit_ctx, g, {sources}); });
    const double ref_batched_ms = time_avg_ms(
        [&] { (void)algo::msbfs(ref_ctx, g, {sources}); });

    const double speedup = batched_ms > 0.0 ? seq_ms / batched_ms : 0.0;
    speedups.push_back(speedup);
    std::printf("%-12s %10d %12.3f %12.3f %12.3f %8.1fx\n", name.c_str(),
                g.num_vertices(), seq_ms, batched_ms, ref_batched_ms,
                speedup);
  }

  std::printf("\ngeomean sequential/batched speedup: %.1fx\n",
              bench::geomean(speedups));
  return 0;
}
