// Table VII reproduction: SpMV-based graph algorithm performance
// (BFS, SSSP, PR, CC) on the 16 named-matrix analogs, GraphBLAST-
// substitute baseline vs Bit-GraphBLAS, pascal-analog device profile.
// Each matrix gets an "algorithm" row (whole run) and a "kernel" row
// (time inside mxv/vxm kernels only), averaged over 5 runs — the
// paper's exact reporting format.
#include "benchlib/algo_table.hpp"
#include "platform/device_profile.hpp"

#include <iostream>

int main() {
  using namespace bitgb;
  using namespace bitgb::bench;

  const DeviceProfile profile = pascal_analog();
  std::cout << "device profile: " << profile.name << " (stand-in for "
            << profile.paper_gpu << ")\n\n";
  print_spmv_algorithm_table(std::cout, profile, "Table VII (pascal-analog)",
                             table7_matrices());
  return 0;
}
