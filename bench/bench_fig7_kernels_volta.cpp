// Figure 7 reproduction: the same arithmetic-kernel sweep as Figure 6,
// on the volta-analog device profile (the Titan V stand-in: full
// parallel width of the host).  Comparing against the Figure-6 output
// shows how the B2SR-vs-CSR gap responds to more parallel resources —
// the axis the paper's two-GPU comparison probes.  The Volta-specific
// warp-synchronization overhead the paper discusses (§VI-E) has no host
// analog and is out of scope (EXPERIMENTS.md).
#include "benchlib/kernel_sweep.hpp"
#include "platform/device_profile.hpp"

#include <iostream>

int main() {
  using namespace bitgb;
  using namespace bitgb::bench;

  const DeviceProfile profile = volta_analog();
  std::cout << "device profile: " << profile.name << " (stand-in for "
            << profile.paper_gpu << ", " << profile.num_threads
            << " threads)\n\n";

  const SweepResult r = run_kernel_sweep(profile, SweepOptions{});
  print_sweep(std::cout, "Figure 7", r);

  write_sweep_csv("fig7a_points.csv", r.bmv_bin_bin_bin);
  write_sweep_csv("fig7b_points.csv", r.bmv_bin_bin_full);
  write_sweep_csv("fig7c_points.csv", r.bmv_bin_full_full);
  write_sweep_csv("fig7d_points.csv", r.bmm_bin_bin_sum);
  std::cout << "raw points written to fig7{a,b,c,d}_points.csv\n";
  return 0;
}
