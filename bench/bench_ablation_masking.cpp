// Ablation: masking strategy for masked vxm (paper §V BFS discussion).
//
// GraphBLAST early-exits per output element on the mask; the paper
// argues that inside a warp-per-tile-row kernel early exit only causes
// divergence, and instead ANDs the bitmask right before the output
// store.  The host analog of "divergence" is a per-row branch in the
// inner loop vs a branch-free word-AND at store time.  This bench
// compares the shipped bitmask-at-store kernel against an early-exit
// variant implemented here, across visited-fraction levels.
#include "core/bmv.hpp"
#include "core/pack.hpp"
#include "platform/timer.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"

#include <cstdio>
#include <random>

namespace bitgb {
namespace {

// Early-exit variant: checks the mask per bit-row *inside* the tile
// loop (the strategy the paper rejects for warp kernels).
template <int Dim>
void bmv_bbb_masked_early_exit(const B2srT<Dim>& a, const PackedVecT<Dim>& x,
                               const PackedVecT<Dim>& mask, bool complement,
                               PackedVecT<Dim>& y) {
  using word_t = typename TileTraits<Dim>::word_t;
  y.resize(a.nrows);
  parallel_for(vidx_t{0}, a.n_tile_rows(), [&](vidx_t tr) {
    const auto lo = a.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto hi = a.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    if (lo == hi) return;
    word_t mword = mask.words[static_cast<std::size_t>(tr)];
    if (complement) mword = static_cast<word_t>(~mword);
    if (mword == 0) return;  // whole tile-row masked off
    word_t out = 0;
    for (vidx_t t = lo; t < hi; ++t) {
      const word_t xw = x.words[static_cast<std::size_t>(
          a.tile_colind[static_cast<std::size_t>(t)])];
      if (xw == 0) continue;
      const auto words = a.tile(t);
      for (int r = 0; r < Dim; ++r) {
        if (get_bit(mword, r) == 0) continue;      // early exit per row
        if (get_bit(out, r) != 0) continue;        // already found
        if ((words[static_cast<std::size_t>(r)] & xw) != 0) {
          out = set_bit(out, r);
        }
      }
    }
    y.words[static_cast<std::size_t>(tr)] =
        static_cast<word_t>(out & mword);
  });
  if (a.nrows % Dim != 0 && !y.words.empty()) {
    y.words.back() = static_cast<word_t>(y.words.back() &
                                         low_mask<word_t>(a.nrows % Dim));
  }
}

}  // namespace
}  // namespace bitgb

int main() {
  using namespace bitgb;

  const Csr m = coo_to_csr(gen_banded(16384, 16, 0.6, 1));
  const B2sr32 a = pack_from_csr<32>(m);

  std::printf("== ablation: bitmask-at-store (ours) vs early-exit ==\n");
  std::printf("matrix: band 16384, nnz %lld, B2SR-32\n\n",
              static_cast<long long>(m.nnz()));
  std::printf("%-18s %14s %16s %10s\n", "visited fraction",
              "at-store (ms)", "early-exit (ms)", "ratio");

  std::mt19937_64 rng(2);
  for (const double visited_frac : {0.0, 0.25, 0.5, 0.75, 0.95}) {
    PackedVec32 frontier(m.ncols);
    PackedVec32 visited(m.nrows);
    std::bernoulli_distribution in_frontier(0.3);
    std::bernoulli_distribution is_visited(visited_frac);
    for (vidx_t i = 0; i < m.ncols; ++i) {
      if (in_frontier(rng)) frontier.set(i);
    }
    for (vidx_t i = 0; i < m.nrows; ++i) {
      if (is_visited(rng)) visited.set(i);
    }

    PackedVec32 y;
    const double t_store = time_avg_ms(
        [&] { bmv_bin_bin_bin_masked(a, frontier, visited, true, y); });
    PackedVec32 y2;
    const double t_early = time_avg_ms(
        [&] { bmv_bbb_masked_early_exit(a, frontier, visited, true, y2); });
    if (y.words != y2.words) {
      std::printf("MISMATCH at visited=%.2f\n", visited_frac);
      return 1;
    }
    std::printf("%-18.2f %14.3f %16.3f %9.2fx\n", visited_frac, t_store,
                t_early, t_early / t_store);
  }
  std::printf("\n(the paper's rationale: in warp kernels the early exit "
              "only adds divergence; the at-store AND is branch-free)\n");
  return 0;
}
