// Ablation: packing layout choices (paper §III-B, Figure 2).
//   1. row-major vs column-major tile packing: the kernels read tiles
//      row by row, so column-major storage pays one tile transpose per
//      access — this quantifies why the library stores bit-rows.
//   2. nibble-packed B2SR-4 (two bit-rows per byte): halves tile bytes
//      on extremely sparse matrices at the cost of unpack shifts.
#include "core/bmv.hpp"
#include "core/pack.hpp"
#include "platform/timer.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"

#include <cstdio>

namespace bitgb {
namespace {

// BMV over column-major-stored tiles: transposes each tile in registers
// before the row-wise dot (what a column-major default would cost).
void bmv_bbf_colmajor(const B2sr32& a_colmajor, const PackedVec32& x,
                      std::vector<value_t>& y) {
  y.assign(static_cast<std::size_t>(a_colmajor.nrows), 0.0f);
  parallel_for(vidx_t{0}, a_colmajor.n_tile_rows(), [&](vidx_t tr) {
    const auto lo = a_colmajor.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto hi = a_colmajor.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    if (lo == hi) return;
    std::int32_t acc[32] = {};
    std::uint32_t rows[32];
    for (vidx_t t = lo; t < hi; ++t) {
      const std::uint32_t xw = x.words[static_cast<std::size_t>(
          a_colmajor.tile_colind[static_cast<std::size_t>(t)])];
      if (xw == 0) continue;
      transpose_tile<32>(
          a_colmajor.bits.data() + static_cast<std::size_t>(t) * 32, rows);
      for (int r = 0; r < 32; ++r) {
        acc[r] += popcount<std::uint32_t>(rows[r] & xw);
      }
    }
    const vidx_t r0 = tr * 32;
    const vidx_t rend = std::min<vidx_t>(a_colmajor.nrows, r0 + 32);
    for (vidx_t r = r0; r < rend; ++r) {
      y[static_cast<std::size_t>(r)] = static_cast<value_t>(acc[r - r0]);
    }
  });
}

// BMV over nibble-packed B2SR-4 (bin-bin-full), unpacking nibbles on
// the fly.
void bmv_bbf_nibble(const NibbleB2sr4& a, const PackedVec4& x,
                    std::vector<value_t>& y) {
  y.assign(static_cast<std::size_t>(a.nrows), 0.0f);
  parallel_for(vidx_t{0}, a.n_tile_rows(), [&](vidx_t tr) {
    const auto lo = a.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto hi = a.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    if (lo == hi) return;
    std::int32_t acc[4] = {};
    for (vidx_t t = lo; t < hi; ++t) {
      const std::uint8_t xw = x.words[static_cast<std::size_t>(
          a.tile_colind[static_cast<std::size_t>(t)])];
      if (xw == 0) continue;
      for (int r = 0; r < 4; ++r) {
        acc[r] += popcount<std::uint8_t>(
            static_cast<std::uint8_t>(a.row(t, r) & xw));
      }
    }
    const vidx_t r0 = tr * 4;
    const vidx_t rend = std::min<vidx_t>(a.nrows, r0 + 4);
    for (vidx_t r = r0; r < rend; ++r) {
      y[static_cast<std::size_t>(r)] = static_cast<value_t>(acc[r - r0]);
    }
  });
}

}  // namespace
}  // namespace bitgb

int main() {
  using namespace bitgb;

  // --- row-major vs column-major ---
  const Csr m = coo_to_csr(gen_banded(8192, 24, 0.7, 1));
  const B2sr32 row_major = pack_from_csr<32>(m);
  // Column-major storage of the same tiles == row-major tiles of A^T's
  // blocks transposed in place; build it by transposing each tile.
  B2sr32 col_major = row_major;
  for (vidx_t t = 0; t < row_major.nnz_tiles(); ++t) {
    transpose_tile<32>(
        row_major.bits.data() + static_cast<std::size_t>(t) * 32,
        col_major.bits.data() + static_cast<std::size_t>(t) * 32);
  }

  PackedVec32 x(m.ncols);
  for (vidx_t i = 0; i < m.ncols; i += 2) x.set(i);

  std::vector<value_t> y_row;
  std::vector<value_t> y_col;
  const double t_row =
      time_avg_ms([&] { bmv_bin_bin_full(row_major, x, y_row); });
  const double t_col =
      time_avg_ms([&] { bmv_bbf_colmajor(col_major, x, y_col); });
  bool match = y_row == y_col;

  std::printf("== ablation: tile packing layout (band 8192, B2SR-32) ==\n");
  std::printf("row-major (shipped):      %8.3f ms\n", t_row);
  std::printf("column-major + transpose: %8.3f ms  (%.2fx slower)\n", t_col,
              t_col / t_row);
  std::printf("results match: %s\n\n", match ? "yes" : "NO");
  if (!match) return 1;

  // --- nibble-packed B2SR-4 ---
  const Csr sparse = coo_to_csr(gen_random(32768, 65536, 2));
  const B2sr4 b4 = pack_from_csr<4>(sparse);
  const NibbleB2sr4 n4 = to_nibble4(b4);
  PackedVec4 x4(sparse.ncols);
  for (vidx_t i = 0; i < sparse.ncols; i += 3) x4.set(i);

  std::vector<value_t> y_b4;
  std::vector<value_t> y_n4;
  const double t_b4 = time_avg_ms([&] { bmv_bin_bin_full(b4, x4, y_b4); });
  const double t_n4 = time_avg_ms([&] { bmv_bbf_nibble(n4, x4, y_n4); });
  match = y_b4 == y_n4;

  std::printf("== ablation: nibble-packed B2SR-4 (scatter 32768) ==\n");
  std::printf("byte-per-row tiles:   %8.3f ms, %9zu tile bytes\n", t_b4,
              b4.bits.size());
  std::printf("nibble-packed tiles:  %8.3f ms, %9zu tile bytes (%.0f%%)\n",
              t_n4, n4.bytes.size(),
              100.0 * static_cast<double>(n4.bytes.size()) /
                  static_cast<double>(b4.bits.size()));
  std::printf("results match: %s\n", match ? "yes" : "NO");
  return match ? 0 : 1;
}
