// Query-serving benchmark: the serving::Server under closed-loop
// saturation, open-loop Poisson arrivals, and the multi-tenant
// scenarios (BENCH_serving.json).
//
// Four experiments:
//
//   saturation — every query submitted at once (a full backlog), once
//     with max_batch = 1 (the worker pool alone) and once with the
//     64-way auto-batcher.  The QPS ratio is the serving payoff of the
//     batch engine: under backlog, pop_batch widens toward 64 and each
//     wave's msbfs amortizes one BMM frontier sweep per level across
//     the whole wave.
//
//   open-loop — a Poisson arrival process at several rates bracketing
//     the unbatched capacity, both modes at each rate.  Reported:
//     submit-to-reply latency percentiles (p50/p99/p999), achieved
//     QPS, and the admission-control shed counts.  Above unbatched
//     capacity the batched server keeps answering (wider waves) where
//     the unbatched one sheds at the door — latency degrades into
//     throughput instead of collapse.
//
//   multi-graph — the same closed-loop storm fired round-robin across
//     a three-graph GraphRegistry: the batcher partitions each popped
//     run by graph, so the cell reports how much wave width survives
//     tenancy (mean wave vs the single-graph saturation cell).
//
//   mixed-kinds — one graph, the storm drawing uniformly from all four
//     QueryKinds: per-kind completion counts plus the executed
//     wave-width histogram, the adaptive batcher's decision record.
//
//   cancellation-overhead — the batched saturation burst run with no
//     deadlines (no CancelToken armed: zero polling) vs with a
//     far-future default deadline (every wave arms a token, polled at
//     every level boundary).  The pair guards the hot path: the
//     cooperative-cancellation poll must stay in the noise.
//
// Before any measurement, every batched answer is verified
// bit-identical against a serial algo::bfs pass; a mismatch fails the
// run (exit 1).  The batched/unbatched saturation speedup is asserted
// against the >= 2.9x floor (the PR-2 payoff this trajectory must not
// regress); BITGB_BENCH_NO_PERF_GATE=1 downgrades the gate to a
// warning for runs on contended machines (the ctest smoke lane sets
// it — timing under `ctest -j` is not meaningful).  Results go to
// BENCH_serving.json (schema bitgb-serving-bench-v4, see BUILDING.md),
// including the persistence roundtrip cell (snapshot load vs
// MatrixMarket re-ingest + prewarm).
#include "algorithms/bfs.hpp"
#include "benchlib/reporting.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/parallel.hpp"
#include "platform/timer.hpp"
#include "serving/server.hpp"
#include "sparse/convert.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

namespace {

using namespace bitgb;
using serving::QueryKind;
using serving::Reply;
using serving::Server;
using serving::ServerOptions;
using serving::Status;

constexpr int kSaturationQueries = 1024;
constexpr int kOpenLoopQueries = 1500;
constexpr std::size_t kOpenLoopQueueCap = 256;

std::vector<vidx_t> random_sources(int count, vidx_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vidx_t> pick(0, n - 1);
  std::vector<vidx_t> sources(static_cast<std::size_t>(count));
  for (auto& s : sources) s = pick(rng);
  return sources;
}

ServerOptions server_options(int max_batch, std::size_t queue_capacity,
                             std::chrono::milliseconds default_deadline =
                                 std::chrono::milliseconds{0}) {
  ServerOptions opts;
  opts.workers = std::min(8, hardware_width());
  opts.queue_capacity = queue_capacity;
  opts.max_batch = max_batch;
  opts.default_deadline = default_deadline;
  return opts;
}

/// Closed-loop burst: submit everything, then drain.  QPS over the
/// whole burst; every reply must be kOk (capacity covers the burst).
/// A non-zero `default_deadline` arms a CancelToken on every wave (the
/// cancellation-overhead cell passes a far-future one so the deadline
/// never fires but the per-level poll runs).
bench::ServingSaturation run_saturation(const gb::Graph& g,
                                        const std::vector<vidx_t>& sources,
                                        int max_batch, const char* mode,
                                        std::chrono::milliseconds
                                            default_deadline =
                                                std::chrono::milliseconds{0}) {
  Server server(g, server_options(max_batch,
                                  static_cast<std::size_t>(sources.size()),
                                  default_deadline));
  std::vector<std::future<Reply>> futs;
  futs.reserve(sources.size());
  Stopwatch watch;
  for (const vidx_t s : sources) {
    futs.push_back(server.submit(QueryKind::kBfs, s));
  }
  for (auto& f : futs) {
    if (f.get().status != Status::kOk) {
      std::fprintf(stderr, "saturation burst shed a query (capacity bug)\n");
      std::exit(1);
    }
  }
  const double ms = watch.elapsed_ms();
  server.shutdown();
  bench::ServingSaturation cell;
  cell.mode = mode;
  cell.queries = static_cast<int>(sources.size());
  cell.qps = 1000.0 * static_cast<double>(sources.size()) / ms;
  cell.mean_wave = server.stats().mean_wave_width();
  return cell;
}

/// Open-loop: Poisson arrivals on an absolute schedule (no coordinated
/// omission — a late submitter submits immediately and the lateness
/// shows up in the measured latency).
bench::ServingRatePoint run_open_loop(const gb::Graph& g,
                                      const std::vector<vidx_t>& sources,
                                      int max_batch, const char* mode,
                                      double arrival_qps, std::uint64_t seed) {
  Server server(g, server_options(max_batch, kOpenLoopQueueCap));
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> gap_s(arrival_qps);

  const auto t0 = serving::clock::now();
  std::vector<std::future<Reply>> futs;
  std::vector<serving::clock::time_point> submitted;
  futs.reserve(sources.size());
  submitted.reserve(sources.size());
  auto due = t0;
  for (const vidx_t s : sources) {
    due += std::chrono::duration_cast<serving::clock::duration>(
        std::chrono::duration<double>(gap_s(rng)));
    std::this_thread::sleep_until(due);
    submitted.push_back(serving::clock::now());
    futs.push_back(server.submit(QueryKind::kBfs, s));
  }

  std::vector<double> latencies_ms;
  latencies_ms.reserve(futs.size());
  auto last_done = t0;
  for (std::size_t i = 0; i < futs.size(); ++i) {
    const Reply r = futs[i].get();
    if (r.status != Status::kOk) continue;
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(r.completed - submitted[i])
            .count());
    last_done = std::max(last_done, r.completed);
  }
  server.shutdown();
  const auto st = server.stats();

  bench::ServingRatePoint pt;
  pt.mode = mode;
  pt.arrival_qps = arrival_qps;
  pt.offered = static_cast<int>(sources.size());
  pt.completed = st.completed;
  pt.shed_queue_full = st.shed_queue_full;
  pt.shed_deadline = st.shed_deadline;
  const double span_ms =
      std::chrono::duration<double, std::milli>(last_done - t0).count();
  pt.achieved_qps =
      span_ms > 0.0 ? 1000.0 * static_cast<double>(st.completed) / span_ms
                    : 0.0;
  pt.p50_ms = bench::percentile(latencies_ms, 50.0);
  pt.p99_ms = bench::percentile(latencies_ms, 99.0);
  pt.p999_ms = bench::percentile(latencies_ms, 99.9);
  pt.mean_wave = st.mean_wave_width();
  return pt;
}

/// Snapshot the stats a scenario cell reports.
bench::ServingScenario scenario_from_stats(const char* name, int graphs,
                                           int queries, double ms,
                                           const serving::ServerStats& st) {
  bench::ServingScenario cell;
  cell.name = name;
  cell.graphs = graphs;
  cell.queries = queries;
  cell.qps = ms > 0.0 ? 1000.0 * static_cast<double>(queries) / ms : 0.0;
  cell.mean_wave = st.mean_wave_width();
  cell.widest_wave = st.widest_wave;
  for (std::size_t k = 0; k < serving::kNumQueryKinds; ++k) {
    cell.completed_by_kind.emplace_back(
        serving::query_kind_name(static_cast<QueryKind>(k)),
        st.completed_by_kind[k]);
  }
  cell.wave_width_hist.assign(st.wave_width_hist.begin(),
                              st.wave_width_hist.end());
  return cell;
}

/// Multi-graph storm: the saturation burst fired round-robin across a
/// three-graph registry.  Partitioning by graph caps the achievable
/// wave width at ~storm/graphs, so mean_wave vs the single-graph cell
/// is the price of tenancy.
bench::ServingScenario run_multi_graph(std::uint64_t seed) {
  serving::GraphRegistry reg;
  const char* names[] = {"hybrid_4096", "rmat_s11", "road_64x64"};
  reg.add(names[0], gb::Graph::from_coo(gen_hybrid(4096, 4)));
  reg.add(names[1], gb::Graph::from_coo(gen_rmat(11, 16384, 9)));
  reg.add(names[2], gb::Graph::from_coo(gen_road(64, 64, 0.02, 13)));
  Server server(reg, server_options(FrontierBatch::kMaxBatch,
                                    kSaturationQueries));
  std::mt19937_64 rng(seed);
  std::vector<std::future<Reply>> futs;
  futs.reserve(kSaturationQueries);
  Stopwatch watch;
  for (int i = 0; i < kSaturationQueries; ++i) {
    const char* name = names[rng() % 3];
    const vidx_t n = reg.lookup(name)->graph().num_vertices();
    futs.push_back(server.submit(
        name, QueryKind::kBfs,
        static_cast<vidx_t>(rng() % static_cast<std::uint64_t>(n))));
  }
  for (auto& f : futs) {
    if (f.get().status != Status::kOk) {
      std::fprintf(stderr, "multi-graph storm shed a query\n");
      std::exit(1);
    }
  }
  const double ms = watch.elapsed_ms();
  server.shutdown();
  return scenario_from_stats("multi-graph", 3, kSaturationQueries, ms,
                             server.stats());
}

/// Mixed-kind storm: one graph, all four QueryKinds drawn uniformly.
bench::ServingScenario run_mixed_kinds(const gb::Graph& g,
                                       std::uint64_t seed) {
  Server server(g, server_options(FrontierBatch::kMaxBatch,
                                  kSaturationQueries));
  std::mt19937_64 rng(seed);
  std::vector<std::future<Reply>> futs;
  futs.reserve(kSaturationQueries);
  Stopwatch watch;
  for (int i = 0; i < kSaturationQueries; ++i) {
    const auto kind =
        static_cast<QueryKind>(rng() % serving::kNumQueryKinds);
    const auto source = static_cast<vidx_t>(
        rng() % static_cast<std::uint64_t>(g.num_vertices()));
    futs.push_back(kind == QueryKind::kPagerank
                       ? server.submit_pagerank()
                       : server.submit(kind, source));
  }
  for (auto& f : futs) {
    if (f.get().status != Status::kOk) {
      std::fprintf(stderr, "mixed-kind storm shed a query\n");
      std::exit(1);
    }
  }
  const double ms = watch.elapsed_ms();
  server.shutdown();
  return scenario_from_stats("mixed-kinds", 1, kSaturationQueries, ms,
                             server.stats());
}

/// Persistence roundtrip: the same graph brought to serving readiness
/// by MatrixMarket re-ingest (parse + from_coo + prewarm) and by
/// Graph::load of a prewarmed snapshot, each timed as the min of
/// kPersistRuns.  The loaded graph's BFS answers are verified
/// bit-identical against the original before anything is reported.
bench::ServingPersistence run_persistence(const gb::Graph& g,
                                          const std::string& graph_name) {
  namespace fs = std::filesystem;
  constexpr int kPersistRuns = 3;
  const fs::path dir =
      fs::temp_directory_path() / ("bitgb-bench-" + graph_name);
  fs::create_directories(dir);
  const std::string mm_path = (dir / "graph.mtx").string();
  const std::string snap_path = (dir / "graph.bgbs").string();

  // The text the cold path re-ingests: the graph's own adjacency, so
  // both paths reconstruct the identical object.  from_coo re-runs the
  // default preprocessing, but the adjacency is already symmetrized and
  // loop-free — a fixed point of both passes.
  write_matrix_market_file(mm_path, csr_to_coo(g.adjacency()));

  bench::ServingPersistence cell;
  cell.save_ms = std::numeric_limits<double>::infinity();
  cell.reingest_ms = std::numeric_limits<double>::infinity();
  cell.load_ms = std::numeric_limits<double>::infinity();
  gb::GraphOptions opts;
  opts.tile_dim = g.tile_dim();  // pin: sampling is not part of the cell
  for (int run = 0; run < kPersistRuns; ++run) {
    Stopwatch save_watch;
    g.save(snap_path, gb::kBitFormats);
    cell.save_ms = std::min(cell.save_ms, save_watch.elapsed_ms());

    Stopwatch ingest_watch;
    const gb::Graph reingested =
        gb::Graph::from_coo(read_matrix_market_file(mm_path), opts);
    reingested.prewarm(gb::kBitFormats);
    cell.reingest_ms = std::min(cell.reingest_ms, ingest_watch.elapsed_ms());

    Stopwatch load_watch;
    const gb::Graph loaded = gb::Graph::load(snap_path);
    cell.load_ms = std::min(cell.load_ms, load_watch.elapsed_ms());

    if ((loaded.formats() & gb::kBitFormats) != gb::kBitFormats ||
        loaded.fingerprint() != g.fingerprint() ||
        reingested.fingerprint() != g.fingerprint()) {
      std::fprintf(stderr, "persistence roundtrip changed the graph\n");
      std::exit(1);
    }
    const Context serial_ctx = Context{}.with_threads(1);
    for (const vidx_t s : {vidx_t{0}, g.num_vertices() / 2}) {
      if (algo::bfs(serial_ctx, loaded, {s}).levels !=
          algo::bfs(serial_ctx, g, {s}).levels) {
        std::fprintf(stderr, "loaded snapshot served different answers\n");
        std::exit(1);
      }
    }
  }
  std::error_code ec;
  cell.snapshot_bytes = fs::file_size(snap_path, ec);
  cell.mm_bytes = fs::file_size(mm_path, ec);
  fs::remove_all(dir, ec);
  return cell;
}

void print_scenario(const bench::ServingScenario& s) {
  std::printf("  %-12s %2d graph(s) %10.0f q/s   mean wave %5.1f   widest %llu\n",
              s.name.c_str(), s.graphs, s.qps, s.mean_wave,
              static_cast<unsigned long long>(s.widest_wave));
  std::printf("    by kind:");
  for (const auto& [kind, done] : s.completed_by_kind) {
    std::printf(" %s=%llu", kind.c_str(),
                static_cast<unsigned long long>(done));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  const std::string graph_name = "hybrid_4096";
  const gb::Graph g = gb::Graph::from_coo(gen_hybrid(4096, 4));
  g.prewarm(gb::kBitFormats);
  const int workers = std::min(8, hardware_width());
  std::printf("serving bench: %s, %d vertices, %lld edges, %d worker(s)\n\n",
              graph_name.c_str(), g.num_vertices(),
              static_cast<long long>(g.num_edges()), workers);

  // --- Correctness gate: batched answers vs serial pass --------------
  bool verified = true;
  {
    const auto sources = random_sources(128, g.num_vertices(), 11);
    const Context serial_ctx = Context{}.with_threads(1);
    Server server(g, server_options(FrontierBatch::kMaxBatch,
                                    sources.size()));
    std::vector<std::future<Reply>> futs;
    for (const vidx_t s : sources) {
      futs.push_back(server.submit(QueryKind::kBfs, s));
    }
    for (std::size_t i = 0; i < futs.size(); ++i) {
      const Reply r = futs[i].get();
      if (r.status != Status::kOk ||
          r.levels != algo::bfs(serial_ctx, g, {sources[i]}).levels) {
        verified = false;
      }
    }
    if (!verified) {
      std::fprintf(stderr,
                   "FAIL: batched served answers differ from serial bfs\n");
      return 1;
    }
    std::printf("verified: 128 batched answers bit-identical to serial "
                "bfs\n\n");
  }

  // --- Saturation ablation -------------------------------------------
  const auto burst =
      random_sources(kSaturationQueries, g.num_vertices(), 17);
  // Warm both paths once before timing.
  (void)run_saturation(g, random_sources(128, g.num_vertices(), 5), 1, "warm");
  (void)run_saturation(g, random_sources(128, g.num_vertices(), 6),
                       FrontierBatch::kMaxBatch, "warm");
  // The speedup is a regression gate (>= kSpeedupFloor); one noisy
  // neighbour can sink a single run, so measure up to kGateAttempts
  // times and keep the best pair.  BITGB_BENCH_NO_PERF_GATE=1 (the
  // ctest smoke lane) takes the first measurement and only warns.
  constexpr double kSpeedupFloor = 2.9;
  constexpr int kGateAttempts = 3;
  const bool gate_enabled = std::getenv("BITGB_BENCH_NO_PERF_GATE") == nullptr;
  bench::ServingSaturation unbatched, batched;
  double speedup = 0.0;
  for (int attempt = 0; attempt < kGateAttempts; ++attempt) {
    const auto un = run_saturation(g, burst, 1, "unbatched");
    const auto ba = run_saturation(g, burst, FrontierBatch::kMaxBatch,
                                   "batched");
    const double s = un.qps > 0.0 ? ba.qps / un.qps : 0.0;
    if (s > speedup) {
      unbatched = un;
      batched = ba;
      speedup = s;
    }
    if (!gate_enabled || speedup >= kSpeedupFloor) break;
  }
  std::printf("saturation (%d-query closed-loop burst):\n",
              kSaturationQueries);
  std::printf("  %-10s %10.0f q/s   mean wave %5.1f\n", "unbatched",
              unbatched.qps, unbatched.mean_wave);
  std::printf("  %-10s %10.0f q/s   mean wave %5.1f   %.1fx\n", "batched",
              batched.qps, batched.mean_wave, speedup);
  if (speedup < kSpeedupFloor) {
    std::fprintf(stderr,
                 "%s: batched/unbatched speedup %.2fx below the %.1fx floor\n",
                 gate_enabled ? "FAIL" : "warning (gate disabled)", speedup,
                 kSpeedupFloor);
    if (gate_enabled) return 1;
  }

  // --- Cancellation overhead -----------------------------------------
  // Same batched burst, polling off (no deadline => no token armed)
  // vs polling on (a far-future default deadline arms a token on every
  // wave; bfs/msbfs poll it at every level boundary but it never
  // fires).  The delta is the pure cost of the cooperative poll.
  const auto cancel_off = run_saturation(g, burst, FrontierBatch::kMaxBatch,
                                         "polling-off");
  const auto cancel_on =
      run_saturation(g, burst, FrontierBatch::kMaxBatch, "polling-on",
                     std::chrono::milliseconds{3600 * 1000});
  bench::ServingCancellation cancellation;
  cancellation.polling_off_qps = cancel_off.qps;
  cancellation.polling_on_qps = cancel_on.qps;
  std::printf("\ncancellation overhead (batched burst, deadline token "
              "armed vs not):\n");
  std::printf("  %-12s %10.0f q/s\n", "polling off", cancel_off.qps);
  std::printf("  %-12s %10.0f q/s   overhead %+.1f%%\n", "polling on",
              cancel_on.qps, cancellation.overhead_pct());

  // --- Open-loop latency profile -------------------------------------
  // Rates bracket the unbatched capacity: comfortably under, at, and
  // over it (where only the auto-batcher has headroom).
  const std::vector<double> rates = {0.5 * unbatched.qps, 1.0 * unbatched.qps,
                                     2.0 * unbatched.qps};
  std::vector<bench::ServingRatePoint> points;
  std::printf("\nopen-loop Poisson arrivals (%d offered per cell):\n",
              kOpenLoopQueries);
  std::printf("  %-10s %12s %10s %8s %8s %8s %8s %6s\n", "mode",
              "arrival q/s", "done q/s", "p50 ms", "p99 ms", "p999 ms",
              "shed", "wave");
  std::uint64_t seed = 23;
  for (const double rate : rates) {
    for (const auto& [mode, max_batch] :
         {std::pair<const char*, int>{"unbatched", 1},
          std::pair<const char*, int>{"batched", FrontierBatch::kMaxBatch}}) {
      const auto srcs =
          random_sources(kOpenLoopQueries, g.num_vertices(), seed);
      const auto pt = run_open_loop(g, srcs, max_batch, mode, rate, seed);
      std::printf("  %-10s %12.0f %10.0f %8.2f %8.2f %8.2f %8llu %6.1f\n",
                  pt.mode.c_str(), pt.arrival_qps, pt.achieved_qps, pt.p50_ms,
                  pt.p99_ms, pt.p999_ms,
                  static_cast<unsigned long long>(pt.shed_queue_full +
                                                  pt.shed_deadline),
                  pt.mean_wave);
      points.push_back(pt);
      ++seed;
    }
  }

  // --- Multi-tenant scenarios ----------------------------------------
  std::printf("\nmulti-tenant scenarios (%d-query closed-loop storms):\n",
              kSaturationQueries);
  const auto multi_graph = run_multi_graph(31);
  print_scenario(multi_graph);
  const auto mixed_kinds = run_mixed_kinds(g, 37);
  print_scenario(mixed_kinds);

  // --- Persistence roundtrip -----------------------------------------
  // The warm-restart cell: MatrixMarket re-ingest (parse + from_coo +
  // prewarm — the old restart path) vs Graph::load of a snapshot that
  // carries the prewarmed caches.  Bit-identity of served answers is
  // asserted before any timing counts.
  const auto persistence = run_persistence(g, graph_name);
  std::printf("\npersistence roundtrip (%s):\n", graph_name.c_str());
  std::printf("  snapshot %8.1f KiB   save     %8.2f ms\n",
              static_cast<double>(persistence.snapshot_bytes) / 1024.0,
              persistence.save_ms);
  std::printf("  mm text  %8.1f KiB   reingest %8.2f ms\n",
              static_cast<double>(persistence.mm_bytes) / 1024.0,
              persistence.reingest_ms);
  std::printf("  %-8s %8s       load     %8.2f ms   %.1fx faster than "
              "reingest\n", "", "", persistence.load_ms,
              persistence.load_speedup());

  bench::write_serving_bench_json("BENCH_serving.json", graph_name,
                                  g.num_vertices(), g.num_edges(), workers,
                                  verified, {unbatched, batched}, speedup,
                                  kSpeedupFloor, points,
                                  {multi_graph, mixed_kinds}, cancellation,
                                  persistence);
  std::printf("\nwrote BENCH_serving.json (batched/unbatched saturation "
              "speedup: %.2fx)\n", speedup);
  return 0;
}
