#include "benchlib/reporting.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>

namespace bitgb::bench {

int density_bucket(double density) {
  if (density <= 0.0) return -7;
  const int b = static_cast<int>(std::floor(std::log10(density)));
  return std::clamp(b, -7, -1);
}

std::string bucket_label(int bucket) {
  return "E" + std::to_string(bucket);
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

void print_sweep_figure(std::ostream& os, const std::string& title,
                        const std::vector<SweepPoint>& points) {
  os << "== " << title << " ==\n";
  os << "geomean speedup over baseline, by nnz-density decade\n";
  os << std::left << std::setw(10) << "tile";
  for (int b = -7; b <= -1; ++b) {
    os << std::right << std::setw(9) << bucket_label(b);
  }
  os << std::right << std::setw(9) << "avg" << std::setw(10) << "max"
     << "  max@matrix\n";

  for (const int dim : {4, 8, 16, 32}) {
    std::map<int, std::vector<double>> buckets;
    std::vector<double> all;
    double max_speedup = 0.0;
    std::string max_matrix;
    for (const auto& p : points) {
      if (p.tile_dim != dim || p.speedup <= 0.0) continue;
      buckets[density_bucket(p.density)].push_back(p.speedup);
      all.push_back(p.speedup);
      if (p.speedup > max_speedup) {
        max_speedup = p.speedup;
        max_matrix = p.matrix;
      }
    }
    os << std::left << std::setw(10)
       << (std::to_string(dim) + "x" + std::to_string(dim));
    for (int b = -7; b <= -1; ++b) {
      const auto it = buckets.find(b);
      if (it == buckets.end()) {
        os << std::right << std::setw(9) << "-";
      } else {
        os << std::right << std::setw(9) << std::fixed
           << std::setprecision(2) << geomean(it->second);
      }
    }
    os << std::right << std::setw(9) << std::fixed << std::setprecision(2)
       << geomean(all) << std::setw(9) << std::setprecision(1)
       << max_speedup << "x  " << max_matrix << "\n";
  }
  os << "\n";
}

void write_sweep_csv(const std::string& path,
                     const std::vector<SweepPoint>& points) {
  std::ofstream f(path);
  if (!f) return;  // CSV is best-effort; the printed figure is canonical
  f << "matrix,density,tile_dim,speedup\n";
  for (const auto& p : points) {
    f << p.matrix << ',' << p.density << ',' << p.tile_dim << ','
      << p.speedup << '\n';
  }
}

std::string speedup_str(double baseline, double ours) {
  if (ours <= 0.0) return "-";
  const double s = baseline / ours;
  std::ostringstream ss;
  if (s >= 10.0) {
    ss << static_cast<long long>(std::llround(s)) << "x";
  } else {
    ss << std::fixed << std::setprecision(1) << s << "x";
  }
  return ss.str();
}

std::vector<KernelSpeedup> kernel_speedups(
    const std::vector<KernelBenchRecord>& records) {
  std::vector<KernelSpeedup> out;
  for (const auto& scalar : records) {
    if (scalar.variant != "scalar" || scalar.ms_per_op <= 0.0) continue;
    for (const auto& simd : records) {
      if (simd.variant != "simd" || simd.kernel != scalar.kernel ||
          simd.tile_dim != scalar.tile_dim ||
          simd.threads != scalar.threads || simd.ms_per_op <= 0.0) {
        continue;
      }
      out.push_back(KernelSpeedup{scalar.kernel, scalar.tile_dim,
                                  scalar.ms_per_op / simd.ms_per_op,
                                  scalar.threads});
      break;
    }
  }
  return out;
}

double geomean_speedup_for_dim(const std::vector<KernelSpeedup>& speedups,
                               int tile_dim) {
  std::vector<double> xs;
  for (const auto& s : speedups) {
    if (s.tile_dim == tile_dim && s.threads == 1 && s.speedup > 0.0) {
      xs.push_back(s.speedup);
    }
  }
  return geomean(xs);
}

void write_kernel_bench_json(const std::string& path,
                             const std::string& simd_backend, int threads,
                             const std::string& fixture,
                             const std::vector<KernelBenchRecord>& records) {
  std::ofstream f(path);
  if (!f) return;  // best-effort, like write_sweep_csv
  const auto speedups = kernel_speedups(records);
  f << "{\n";
  f << "  \"schema\": \"bitgb-kernel-bench-v2\",\n";
  f << "  \"host\": {\"simd_backend\": \"" << simd_backend
    << "\", \"threads\": " << threads << "},\n";
  f << "  \"fixture\": \"" << fixture << "\",\n";
  f << "  \"records\": [\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& r = records[i];
    f << "    {\"kernel\": \"" << r.kernel << "\", \"tile_dim\": "
      << r.tile_dim << ", \"variant\": \"" << r.variant
      << "\", \"threads\": " << r.threads
      << ", \"ms_per_op\": " << r.ms_per_op << ", \"gteps\": " << r.gteps
      << '}' << (i + 1 < records.size() ? "," : "") << '\n';
  }
  f << "  ],\n";
  f << "  \"speedups\": [\n";
  for (std::size_t i = 0; i < speedups.size(); ++i) {
    const auto& s = speedups[i];
    f << "    {\"kernel\": \"" << s.kernel << "\", \"tile_dim\": "
      << s.tile_dim << ", \"threads\": " << s.threads
      << ", \"speedup\": " << s.speedup << '}'
      << (i + 1 < speedups.size() ? "," : "") << '\n';
  }
  f << "  ],\n";
  f << "  \"geomean_speedup_by_dim\": {";
  bool first = true;
  for (const int dim : {4, 8, 16, 32}) {
    const double g = geomean_speedup_for_dim(speedups, dim);
    if (g <= 0.0) continue;
    f << (first ? "" : ", ") << '"' << dim << "\": " << g;
    first = false;
  }
  f << "}\n";
  f << "}\n";
}

void print_kernel_bench(std::ostream& os,
                        const std::vector<KernelBenchRecord>& records) {
  os << std::left << std::setw(26) << "kernel" << std::setw(6) << "dim"
     << std::setw(14) << "variant" << std::right << std::setw(9) << "threads"
     << std::setw(12) << "ms/op" << std::setw(10) << "GTEPS" << "\n";
  for (const auto& r : records) {
    os << std::left << std::setw(26) << r.kernel << std::setw(6) << r.tile_dim
       << std::setw(14) << r.variant << std::right << std::setw(9)
       << r.threads << std::setw(12) << std::fixed << std::setprecision(4)
       << r.ms_per_op << std::setw(10) << std::setprecision(3) << r.gteps
       << "\n";
  }
  const auto speedups = kernel_speedups(records);
  os << "\nsimd over scalar, geomean by tile dim (threads=1):";
  for (const int dim : {4, 8, 16, 32}) {
    const double g = geomean_speedup_for_dim(speedups, dim);
    if (g <= 0.0) continue;
    os << "  " << dim << "x" << dim << ": " << std::fixed
       << std::setprecision(2) << g << "x";
  }
  os << "\n";
}

void print_algo_table(std::ostream& os, const std::string& title,
                      const std::string& algo_name,
                      const std::vector<AlgoRow>& rows) {
  os << "== " << title << " : " << algo_name << " ==\n";
  os << std::left << std::setw(24) << "matrix" << std::setw(10) << "level"
     << std::right << std::setw(12) << "GBlst(ms)" << std::setw(12)
     << "Ours(ms)" << std::setw(10) << "Speedup" << "\n";
  for (const auto& r : rows) {
    os << std::left << std::setw(24) << r.matrix << std::setw(10)
       << "algorithm" << std::right << std::setw(12) << std::fixed
       << std::setprecision(3) << r.baseline_algo_ms << std::setw(12)
       << r.ours_algo_ms << std::setw(10)
       << speedup_str(r.baseline_algo_ms, r.ours_algo_ms) << "\n";
    os << std::left << std::setw(24) << "" << std::setw(10) << "kernel"
       << std::right << std::setw(12) << std::fixed << std::setprecision(3)
       << r.baseline_kernel_ms << std::setw(12) << r.ours_kernel_ms
       << std::setw(10)
       << speedup_str(r.baseline_kernel_ms, r.ours_kernel_ms) << "\n";
  }
  os << "\n";
}

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double rank =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] + frac * (xs[hi] - xs[lo]);
}

void write_serving_bench_json(const std::string& path,
                              const std::string& graph_name, vidx_t vertices,
                              eidx_t edges, int workers, bool verified,
                              const std::vector<ServingSaturation>& saturation,
                              double batched_speedup, double speedup_floor,
                              const std::vector<ServingRatePoint>& rates,
                              const std::vector<ServingScenario>& scenarios,
                              const ServingCancellation& cancellation,
                              const ServingPersistence& persistence) {
  std::ofstream f(path);
  if (!f) return;  // best-effort, like write_sweep_csv
  f << "{\n";
  f << "  \"schema\": \"bitgb-serving-bench-v4\",\n";
  f << "  \"graph\": {\"name\": \"" << graph_name
    << "\", \"vertices\": " << vertices << ", \"edges\": " << edges << "},\n";
  f << "  \"workers\": " << workers << ",\n";
  f << "  \"verified_bit_identical\": " << (verified ? "true" : "false")
    << ",\n";
  f << "  \"saturation\": [\n";
  for (std::size_t i = 0; i < saturation.size(); ++i) {
    const auto& s = saturation[i];
    f << "    {\"mode\": \"" << s.mode << "\", \"queries\": " << s.queries
      << ", \"qps\": " << s.qps << ", \"mean_wave\": " << s.mean_wave << '}'
      << (i + 1 < saturation.size() ? "," : "") << '\n';
  }
  f << "  ],\n";
  f << "  \"saturation_batched_speedup\": " << batched_speedup << ",\n";
  f << "  \"saturation_speedup_floor\": " << speedup_floor << ",\n";
  f << "  \"cancellation_overhead\": {\"polling_off_qps\": "
    << cancellation.polling_off_qps
    << ", \"polling_on_qps\": " << cancellation.polling_on_qps
    << ", \"overhead_pct\": " << cancellation.overhead_pct() << "},\n";
  f << "  \"persistence\": {\"snapshot_bytes\": " << persistence.snapshot_bytes
    << ", \"mm_bytes\": " << persistence.mm_bytes
    << ", \"save_ms\": " << persistence.save_ms
    << ", \"reingest_ms\": " << persistence.reingest_ms
    << ", \"load_ms\": " << persistence.load_ms
    << ", \"load_speedup\": " << persistence.load_speedup() << "},\n";
  f << "  \"open_loop\": [\n";
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& r = rates[i];
    f << "    {\"mode\": \"" << r.mode
      << "\", \"arrival_qps\": " << r.arrival_qps
      << ", \"offered\": " << r.offered << ", \"completed\": " << r.completed
      << ", \"shed_queue_full\": " << r.shed_queue_full
      << ", \"shed_deadline\": " << r.shed_deadline
      << ", \"achieved_qps\": " << r.achieved_qps
      << ", \"latency_ms\": {\"p50\": " << r.p50_ms
      << ", \"p99\": " << r.p99_ms << ", \"p999\": " << r.p999_ms
      << "}, \"mean_wave\": " << r.mean_wave << '}'
      << (i + 1 < rates.size() ? "," : "") << '\n';
  }
  f << "  ],\n";
  f << "  \"scenarios\": [\n";
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const auto& s = scenarios[i];
    f << "    {\"name\": \"" << s.name << "\", \"graphs\": " << s.graphs
      << ", \"queries\": " << s.queries << ", \"qps\": " << s.qps
      << ", \"mean_wave\": " << s.mean_wave
      << ", \"widest_wave\": " << s.widest_wave
      << ",\n     \"completed_by_kind\": {";
    for (std::size_t k = 0; k < s.completed_by_kind.size(); ++k) {
      f << '"' << s.completed_by_kind[k].first
        << "\": " << s.completed_by_kind[k].second
        << (k + 1 < s.completed_by_kind.size() ? ", " : "");
    }
    f << "},\n     \"wave_width_hist\": [";
    for (std::size_t b = 0; b < s.wave_width_hist.size(); ++b) {
      f << s.wave_width_hist[b]
        << (b + 1 < s.wave_width_hist.size() ? ", " : "");
    }
    f << "]}" << (i + 1 < scenarios.size() ? "," : "") << '\n';
  }
  f << "  ]\n";
  f << "}\n";
}

}  // namespace bitgb::bench
