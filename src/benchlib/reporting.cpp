#include "benchlib/reporting.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <ostream>

namespace bitgb::bench {

int density_bucket(double density) {
  if (density <= 0.0) return -7;
  const int b = static_cast<int>(std::floor(std::log10(density)));
  return std::clamp(b, -7, -1);
}

std::string bucket_label(int bucket) {
  return "E" + std::to_string(bucket);
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

void print_sweep_figure(std::ostream& os, const std::string& title,
                        const std::vector<SweepPoint>& points) {
  os << "== " << title << " ==\n";
  os << "geomean speedup over baseline, by nnz-density decade\n";
  os << std::left << std::setw(10) << "tile";
  for (int b = -7; b <= -1; ++b) {
    os << std::right << std::setw(9) << bucket_label(b);
  }
  os << std::right << std::setw(9) << "avg" << std::setw(10) << "max"
     << "  max@matrix\n";

  for (const int dim : {4, 8, 16, 32}) {
    std::map<int, std::vector<double>> buckets;
    std::vector<double> all;
    double max_speedup = 0.0;
    std::string max_matrix;
    for (const auto& p : points) {
      if (p.tile_dim != dim || p.speedup <= 0.0) continue;
      buckets[density_bucket(p.density)].push_back(p.speedup);
      all.push_back(p.speedup);
      if (p.speedup > max_speedup) {
        max_speedup = p.speedup;
        max_matrix = p.matrix;
      }
    }
    os << std::left << std::setw(10)
       << (std::to_string(dim) + "x" + std::to_string(dim));
    for (int b = -7; b <= -1; ++b) {
      const auto it = buckets.find(b);
      if (it == buckets.end()) {
        os << std::right << std::setw(9) << "-";
      } else {
        os << std::right << std::setw(9) << std::fixed
           << std::setprecision(2) << geomean(it->second);
      }
    }
    os << std::right << std::setw(9) << std::fixed << std::setprecision(2)
       << geomean(all) << std::setw(9) << std::setprecision(1)
       << max_speedup << "x  " << max_matrix << "\n";
  }
  os << "\n";
}

void write_sweep_csv(const std::string& path,
                     const std::vector<SweepPoint>& points) {
  std::ofstream f(path);
  if (!f) return;  // CSV is best-effort; the printed figure is canonical
  f << "matrix,density,tile_dim,speedup\n";
  for (const auto& p : points) {
    f << p.matrix << ',' << p.density << ',' << p.tile_dim << ','
      << p.speedup << '\n';
  }
}

std::string speedup_str(double baseline, double ours) {
  if (ours <= 0.0) return "-";
  const double s = baseline / ours;
  std::ostringstream ss;
  if (s >= 10.0) {
    ss << static_cast<long long>(std::llround(s)) << "x";
  } else {
    ss << std::fixed << std::setprecision(1) << s << "x";
  }
  return ss.str();
}

void print_algo_table(std::ostream& os, const std::string& title,
                      const std::string& algo_name,
                      const std::vector<AlgoRow>& rows) {
  os << "== " << title << " : " << algo_name << " ==\n";
  os << std::left << std::setw(24) << "matrix" << std::setw(10) << "level"
     << std::right << std::setw(12) << "GBlst(ms)" << std::setw(12)
     << "Ours(ms)" << std::setw(10) << "Speedup" << "\n";
  for (const auto& r : rows) {
    os << std::left << std::setw(24) << r.matrix << std::setw(10)
       << "algorithm" << std::right << std::setw(12) << std::fixed
       << std::setprecision(3) << r.baseline_algo_ms << std::setw(12)
       << r.ours_algo_ms << std::setw(10)
       << speedup_str(r.baseline_algo_ms, r.ours_algo_ms) << "\n";
    os << std::left << std::setw(24) << "" << std::setw(10) << "kernel"
       << std::right << std::setw(12) << std::fixed << std::setprecision(3)
       << r.baseline_kernel_ms << std::setw(12) << r.ours_kernel_ms
       << std::setw(10)
       << speedup_str(r.baseline_kernel_ms, r.ours_kernel_ms) << "\n";
  }
  os << "\n";
}

}  // namespace bitgb::bench
