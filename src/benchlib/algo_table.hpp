// Algorithm-table driver — Tables VII, VIII (BFS/SSSP/PR/CC) and IX
// (TC): per named-matrix analog, the algorithm and in-kernel latency of
// the GraphBLAST-substitute baseline vs the B2SR bit backend, averaged
// over the paper's 5-run protocol.
#pragma once

#include "benchlib/corpus.hpp"
#include "benchlib/reporting.hpp"
#include "platform/device_profile.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace bitgb::bench {

enum class TableAlgo { kBfs, kSssp, kPr, kCc, kTc, kMsBfs };

[[nodiscard]] const char* algo_name(TableAlgo a);

/// The deterministic source batch the MSBFS row measures: up to 64
/// evenly spaced vertex ids (bench_batched_traversal reuses it, so both
/// harnesses time the same workload shape; the concurrent-queries
/// example instead draws random sources to simulate live traffic).
[[nodiscard]] std::vector<vidx_t> batch_sources(vidx_t n);

/// Measure one algorithm over the given matrices under the given device
/// profile (its thread width and kernel variant become the per-run
/// Context; nothing global is touched).  Format conversion / transposes
/// are prewarmed outside the timed region (the paper amortizes the
/// one-time conversion, §III-B, and its tables report algorithm time
/// only).
[[nodiscard]] std::vector<AlgoRow> run_algo_table(
    const DeviceProfile& profile, const std::vector<CorpusEntry>& matrices,
    TableAlgo algo);

/// Run & print the full SpMV-algorithm table (BFS, SSSP, PR, CC) —
/// one block per algorithm, the paper's Table VII/VIII content.
void print_spmv_algorithm_table(std::ostream& os,
                                const DeviceProfile& profile,
                                const std::string& title,
                                const std::vector<CorpusEntry>& matrices);

}  // namespace bitgb::bench
