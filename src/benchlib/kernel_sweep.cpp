#include "benchlib/kernel_sweep.hpp"

#include "baseline/csrgemm.hpp"
#include "baseline/csrmv.hpp"
#include "core/bmm.hpp"
#include "core/bmv.hpp"
#include "core/pack.hpp"
#include "platform/timer.hpp"

#include <ostream>
#include <random>

namespace bitgb::bench {

namespace {

// Deterministic half-zero multiplier vector, as the BMV schemes see in
// frontier-style workloads.
std::vector<value_t> make_vector(vidx_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution zero(0.5);
  std::uniform_real_distribution<float> val(0.5f, 2.0f);
  std::vector<value_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = zero(rng) ? 0.0f : val(rng);
  return v;
}

}  // namespace

SweepResult run_kernel_sweep(const DeviceProfile& profile,
                             const SweepOptions& opts) {
  SweepResult result;
  const Exec exec{profile.variant, profile.num_threads};
  const auto corpus = full_corpus(opts.scale);

  for (const auto& entry : corpus) {
    const Csr& m = entry.matrix;
    if (m.nnz() == 0) continue;
    const double density = m.density();

    // Baseline: float CSR with unit values (how the compared GPU
    // frameworks store a binary adjacency, §III-B).
    Csr unit = m;
    unit.val.assign(static_cast<std::size_t>(m.nnz()), 1.0f);
    const auto xf = make_vector(m.ncols, 0xBEEF);

    std::vector<value_t> y;
    const double t_csrmv =
        time_avg_ms([&] { baseline::csrmv(unit, xf, y, exec); });

    const bool do_bmm = m.nnz() <= opts.bmm_nnz_cap;
    double t_csrgemm = 0.0;
    if (do_bmm) {
      t_csrgemm = time_avg_ms([&] { (void)baseline::csrgemm(unit, unit, exec); });
    }

    for (const int dim : kTileDims) {
      dispatch_tile_dim(dim, [&]<int Dim>() {
        const B2srT<Dim> a = pack_from_csr<Dim>(m, exec);
        const auto xb = PackedVecT<Dim>::from_values(xf);

        PackedVecT<Dim> yb;
        const double t_bbb =
            time_avg_ms([&] { bmv_bin_bin_bin(a, xb, yb, exec); });
        result.bmv_bin_bin_bin.push_back(
            {entry.name, density, Dim, t_csrmv / t_bbb});

        std::vector<value_t> yf;
        const double t_bbf =
            time_avg_ms([&] { bmv_bin_bin_full(a, xb, yf, exec); });
        result.bmv_bin_bin_full.push_back(
            {entry.name, density, Dim, t_csrmv / t_bbf});

        const double t_bff = time_avg_ms(
            [&] { bmv_bin_full_full<Dim, PlusTimesOp>(a, xf, yf, exec); });
        result.bmv_bin_full_full.push_back(
            {entry.name, density, Dim, t_csrmv / t_bff});

        if (do_bmm) {
          const double t_bmm =
              time_avg_ms([&] { (void)bmm_bin_bin_sum(a, a, exec); });
          result.bmm_bin_bin_sum.push_back(
              {entry.name, density, Dim, t_csrgemm / t_bmm});
        }
        return 0;
      });
    }
  }
  return result;
}

void print_sweep(std::ostream& os, const std::string& figure_name,
                 const SweepResult& r) {
  print_sweep_figure(os, figure_name + "a: bmv_bin_bin_bin() vs csrmv",
                     r.bmv_bin_bin_bin);
  print_sweep_figure(os, figure_name + "b: bmv_bin_bin_full() vs csrmv",
                     r.bmv_bin_bin_full);
  print_sweep_figure(os, figure_name + "c: bmv_bin_full_full() vs csrmv",
                     r.bmv_bin_full_full);
  print_sweep_figure(os, figure_name + "d: bmm_bin_bin_sum() vs csrgemm",
                     r.bmm_bin_bin_sum);
}

}  // namespace bitgb::bench
