// Evaluation corpus — the SuiteSparse-dataset substitute.
//
// Two corpora back the reproduction:
//
// 1. full_corpus(): 521 synthetic binary square matrices distributed
//    across the paper's six Table-V pattern categories in the paper's
//    own proportions (normalized from Table V's overlapping percentages:
//    dot 36.66, diagonal 45.87, block 24.95, stripe 13.05, road 5.18,
//    hybrid 25.72), with log-uniform sizes and densities.  This stands
//    in for "all 521 binary square matrices in the SuiteSparse Matrix
//    Collection" (§VI-A) in Figure 5 and the Figure 6/7 sweeps.
//
// 2. named_corpus(): structural analogs of every matrix named in
//    Tables VII, VIII and IX, built from the same structural family the
//    real matrix belongs to (mycielskianN by the actual Mycielski
//    construction; meshes as bands; road networks as grids; power-law
//    graphs as RMAT), each tagged with the paper's pattern category for
//    that matrix.  Sizes are scaled to laptop class; EXPERIMENTS.md
//    records the mapping.
//
// Corpus generation is deterministic (fixed seeds).
#pragma once

#include "sparse/csr.hpp"
#include "sparse/generators.hpp"

#include <string>
#include <vector>

namespace bitgb::bench {

struct CorpusEntry {
  std::string name;
  Pattern category = Pattern::kDot;
  Csr matrix;  ///< binary square
};

/// How large a corpus to build.  kSmoke keeps unit tests fast; kFull is
/// the 521-matrix evaluation corpus; kTimed is the subsample used for
/// the kernel-timing sweeps (Figures 6/7), sized to finish in seconds.
enum class CorpusScale { kSmoke, kTimed, kFull };

/// Number of matrices per scale (kFull == 521, as the paper).
[[nodiscard]] int corpus_size(CorpusScale scale);

/// The synthetic pattern corpus.
[[nodiscard]] std::vector<CorpusEntry> full_corpus(CorpusScale scale);

/// Named analogs of the matrices in Tables VII/VIII (SpMV algorithms).
[[nodiscard]] std::vector<CorpusEntry> table7_matrices();

/// Named analogs of the matrices in Table IX (triangle counting).
[[nodiscard]] std::vector<CorpusEntry> table9_matrices();

/// The five matrices of Figure 3 (tile-size trend curves).
[[nodiscard]] std::vector<CorpusEntry> figure3_matrices();

/// One named analog by name (throws std::out_of_range if unknown);
/// names are the paper's (e.g. "mycielskian9", "ash292").
[[nodiscard]] CorpusEntry named_matrix(const std::string& name);

}  // namespace bitgb::bench
