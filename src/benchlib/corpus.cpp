#include "benchlib/corpus.hpp"

#include "sparse/convert.hpp"

#include <cmath>
#include <random>
#include <stdexcept>

namespace bitgb::bench {

namespace {

// Table V percentages, normalized (they overlap in the paper because
// hybrids count toward several categories; the normalized mix keeps the
// same relative weights).
struct CategoryShare {
  Pattern p;
  double share;
};
constexpr CategoryShare kShares[] = {
    {Pattern::kDot, 36.66},   {Pattern::kDiagonal, 45.87},
    {Pattern::kBlock, 24.95}, {Pattern::kStripe, 13.05},
    {Pattern::kRoad, 5.18},   {Pattern::kHybrid, 25.72},
};

double total_share() {
  double t = 0.0;
  for (const auto& s : kShares) t += s.share;
  return t;
}

struct ScaleParams {
  int count;
  vidx_t min_n;
  vidx_t max_n;
};

ScaleParams scale_params(CorpusScale scale) {
  switch (scale) {
    case CorpusScale::kSmoke: return {24, 32, 256};
    case CorpusScale::kTimed: return {64, 256, 4096};
    case CorpusScale::kFull: return {521, 64, 8192};
  }
  return {24, 32, 256};
}

CorpusEntry make_named(std::string name, Pattern cat, Coo edges) {
  CorpusEntry e;
  e.name = std::move(name);
  e.category = cat;
  e.matrix = coo_to_csr(pattern_of(edges));
  return e;
}

}  // namespace

int corpus_size(CorpusScale scale) { return scale_params(scale).count; }

std::vector<CorpusEntry> full_corpus(CorpusScale scale) {
  const ScaleParams sp = scale_params(scale);
  std::vector<CorpusEntry> out;
  out.reserve(static_cast<std::size_t>(sp.count));

  const double norm = total_share();
  std::mt19937_64 rng(0xC0FFEE);
  std::uniform_real_distribution<double> u(0.0, 1.0);

  int made = 0;
  for (std::size_t ci = 0; ci < std::size(kShares); ++ci) {
    const auto& cs = kShares[ci];
    int quota = static_cast<int>(
        std::lround(cs.share / norm * static_cast<double>(sp.count)));
    if (ci + 1 == std::size(kShares)) quota = sp.count - made;  // exact total
    for (int i = 0; i < quota; ++i) {
      // Log-uniform size and density, the axes the paper sweeps.
      const double ln = std::log(static_cast<double>(sp.min_n)) +
                        u(rng) * (std::log(static_cast<double>(sp.max_n)) -
                                  std::log(static_cast<double>(sp.min_n)));
      const auto n = static_cast<vidx_t>(std::lround(std::exp(ln)));
      const double log_density = -4.5 + u(rng) * 3.5;  // 1e-4.5 .. 1e-1
      const double density = std::pow(10.0, log_density);

      CorpusEntry e;
      e.category = cs.p;
      e.name = std::string(pattern_name(cs.p)) + "_" + std::to_string(made);
      e.matrix = coo_to_csr(
          gen_pattern(cs.p, n, density, 0x9E3779B9u + static_cast<std::uint64_t>(made)));
      out.push_back(std::move(e));
      ++made;
    }
  }
  return out;
}

CorpusEntry named_matrix(const std::string& name) {
  // Structural families, sizes scaled to laptop class where the
  // original is large; EXPERIMENTS.md records original -> analog.
  // Categories are the paper's §VI-E assignment: delaunay_n14/se/debr
  // stripe; Erdos02/mycielskian*/EX3/net25 block; the rest diagonal.
  if (name == "delaunay_n14") {
    return make_named(name, Pattern::kStripe, gen_stripe(4096, 3, 0.75, 1));
  }
  if (name == "se") {
    return make_named(name, Pattern::kStripe, gen_stripe(2048, 2, 0.8, 2));
  }
  if (name == "debr") {
    return make_named(name, Pattern::kStripe, gen_stripe(4096, 6, 0.7, 3));
  }
  if (name == "ash292") {
    return make_named(name, Pattern::kDiagonal, gen_banded(292, 12, 0.35, 4));
  }
  if (name == "netz4504_dual") {
    return make_named(name, Pattern::kDiagonal, gen_banded(1174, 6, 0.5, 5));
  }
  if (name == "minnesota") {
    return make_named(name, Pattern::kDiagonal, gen_road(51, 52, 0.01, 6));
  }
  if (name == "jagmesh6") {
    return make_named(name, Pattern::kDiagonal, gen_banded(1377, 8, 0.45, 7));
  }
  if (name == "uk") {
    return make_named(name, Pattern::kDiagonal,
                      gen_chain_of_cliques(512, 8, 8));
  }
  if (name == "whitaker3_dual") {
    return make_named(name, Pattern::kDiagonal, gen_banded(8192, 6, 0.5, 9));
  }
  if (name == "rajat07") {
    return make_named(name, Pattern::kDiagonal, gen_banded(4770, 4, 0.6, 10));
  }
  if (name == "3dtube") {
    return make_named(name, Pattern::kDiagonal, gen_banded(4096, 48, 0.5, 11));
  }
  if (name == "Erdos02") {
    return make_named(name, Pattern::kBlock, gen_rmat(13, 50000, 12));
  }
  if (name == "mycielskian9") {
    return make_named(name, Pattern::kBlock, gen_mycielskian(9));
  }
  if (name == "mycielskian10") {
    return make_named(name, Pattern::kBlock, gen_mycielskian(10));
  }
  if (name == "mycielskian12") {
    return make_named(name, Pattern::kBlock, gen_mycielskian(12));
  }
  if (name == "mycielskian13") {
    return make_named(name, Pattern::kBlock, gen_mycielskian(13));
  }
  if (name == "EX3") {
    return make_named(name, Pattern::kBlock,
                      gen_block(1821, 64, 24, 0.4, 13, true));
  }
  if (name == "net25") {
    return make_named(name, Pattern::kBlock,
                      gen_block(4096, 96, 20, 0.35, 14, true));
  }
  if (name == "sstmodel") {
    return make_named(name, Pattern::kDiagonal, gen_banded(3345, 10, 0.4, 15));
  }
  if (name == "jagmesh2") {
    return make_named(name, Pattern::kDiagonal, gen_banded(1009, 8, 0.45, 16));
  }
  if (name == "lock2232") {
    return make_named(name, Pattern::kDiagonal, gen_banded(2232, 14, 0.4, 17));
  }
  if (name == "ramage02") {
    return make_named(name, Pattern::kDiagonal, gen_banded(1476, 60, 0.5, 18));
  }
  if (name == "s4dkt3m2") {
    return make_named(name, Pattern::kDiagonal, gen_banded(4096, 18, 0.45, 19));
  }
  if (name == "opt1") {
    return make_named(name, Pattern::kDiagonal, gen_banded(3846, 40, 0.4, 20));
  }
  if (name == "trdheim") {
    return make_named(name, Pattern::kDiagonal, gen_banded(4096, 30, 0.5, 21));
  }
  if (name == "vsp_c-60_data_cti_cs4") {
    return make_named(name, Pattern::kHybrid, gen_hybrid(6000, 22));
  }
  // Figure 3's five curves.
  if (name == "G47") {
    return make_named(name, Pattern::kDot,
                      gen_random(1000, 20000, 23));
  }
  if (name == "sphere3") {
    return make_named(name, Pattern::kDiagonal, gen_banded(258, 10, 0.6, 24));
  }
  if (name == "cage") {
    return make_named(name, Pattern::kDiagonal, gen_banded(366, 5, 0.7, 25));
  }
  if (name == "will199") {
    return make_named(name, Pattern::kStripe, gen_stripe(199, 3, 0.7, 26));
  }
  if (name == "email-Eu-core") {
    return make_named(name, Pattern::kDot, gen_rmat(10, 25000, 27));
  }
  throw std::out_of_range("unknown named matrix: " + name);
}

std::vector<CorpusEntry> table7_matrices() {
  std::vector<CorpusEntry> out;
  for (const char* name :
       {"delaunay_n14", "se", "debr", "ash292", "netz4504_dual", "minnesota",
        "jagmesh6", "uk", "whitaker3_dual", "rajat07", "3dtube", "Erdos02",
        "mycielskian9", "EX3", "net25", "mycielskian10"}) {
    out.push_back(named_matrix(name));
  }
  return out;
}

std::vector<CorpusEntry> table9_matrices() {
  std::vector<CorpusEntry> out;
  for (const char* name :
       {"delaunay_n14", "se", "debr", "sstmodel", "jagmesh2", "lock2232",
        "ramage02", "s4dkt3m2", "opt1", "trdheim", "3dtube", "mycielskian12",
        "Erdos02", "mycielskian9", "mycielskian13", "vsp_c-60_data_cti_cs4"}) {
    out.push_back(named_matrix(name));
  }
  return out;
}

std::vector<CorpusEntry> figure3_matrices() {
  std::vector<CorpusEntry> out;
  for (const char* name :
       {"G47", "sphere3", "cage", "will199", "email-Eu-core"}) {
    out.push_back(named_matrix(name));
  }
  return out;
}

}  // namespace bitgb::bench
