// Table / figure rendering for the benchmark binaries.
//
// Figures are printed as density-bucketed geometric-mean speedup series
// (the same series the paper's log-log scatter plots show) plus an
// optional CSV dump for external plotting; tables are printed with
// aligned columns in the paper's row layout.
#pragma once

#include "sparse/types.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace bitgb::bench {

/// One measured point of a kernel sweep (Figures 6/7).
struct SweepPoint {
  std::string matrix;
  double density = 0.0;   ///< nnz / n^2 (the x axis)
  int tile_dim = 0;       ///< 4/8/16/32 (the series)
  double speedup = 0.0;   ///< ours vs baseline (the y axis)
};

/// Density decade buckets E-07 .. E-01 as in the figures' x axis.
[[nodiscard]] int density_bucket(double density);
[[nodiscard]] std::string bucket_label(int bucket);

/// Print one figure panel: per tile-dim series of geomean speedup per
/// density bucket, plus overall average and max speedup per dim (the
/// numbers quoted in §VI-D).
void print_sweep_figure(std::ostream& os, const std::string& title,
                        const std::vector<SweepPoint>& points);

/// Write the raw points as CSV (matrix,density,tile_dim,speedup).
void write_sweep_csv(const std::string& path,
                     const std::vector<SweepPoint>& points);

/// Geometric mean (returns 0 for empty input).
[[nodiscard]] double geomean(const std::vector<double>& xs);

/// One row of the algorithm tables (VII/VIII): baseline & ours, ms.
struct AlgoRow {
  std::string matrix;
  double baseline_algo_ms = 0.0;
  double ours_algo_ms = 0.0;
  double baseline_kernel_ms = 0.0;
  double ours_kernel_ms = 0.0;
};

/// Print an algorithm table block: for each matrix, the
/// algorithm/kernel latency pair and the speedup column, in the paper's
/// "GBlst | Ours | Speedup" layout.
void print_algo_table(std::ostream& os, const std::string& title,
                      const std::string& algo_name,
                      const std::vector<AlgoRow>& rows);

/// Format "12.3x" style speedup.
[[nodiscard]] std::string speedup_str(double baseline, double ours);

// ---------------------------------------------------------------------
// Kernel micro-bench trajectory (BENCH_kernels.json)
// ---------------------------------------------------------------------
//
// bench_micro_kernels emits a machine-readable record of per-kernel
// throughput for every (kernel, tile dim, variant, threads) cell so
// each PR leaves a comparable perf point behind.  Schema
// ("bitgb-kernel-bench-v2", documented in BUILDING.md): host
// provenance (SIMD backend, hardware threads, fixture), the raw
// records — each carrying the worker-thread count it ran under — the
// simd-vs-scalar speedup of every matched pair, and the per-tile-dim
// geomean of the single-threaded speedups (the trajectory headline,
// kept thread-independent so it stays comparable with the v1 history).

/// One measured cell of the kernel micro-bench.
struct KernelBenchRecord {
  std::string kernel;    ///< e.g. "bmv_bin_bin_bin"
  int tile_dim = 0;      ///< 4/8/16/32 (0 = tile-size-independent)
  std::string variant;   ///< "scalar" / "simd" / "csr-baseline"
  double ms_per_op = 0.0;  ///< average wall-clock per kernel call
  double gteps = 0.0;      ///< giga traversed edges (nnz) per second
  int threads = 1;         ///< worker threads the cell ran under
};

/// Speedup of the "simd" cell over the "scalar" cell with the same
/// (kernel, tile_dim, threads); cells without a matched pair are
/// skipped.
struct KernelSpeedup {
  std::string kernel;
  int tile_dim = 0;
  double speedup = 0.0;  ///< scalar ms / simd ms
  int threads = 1;
};

[[nodiscard]] std::vector<KernelSpeedup> kernel_speedups(
    const std::vector<KernelBenchRecord>& records);

/// Geometric mean of the single-threaded (threads == 1) speedups
/// recorded for one tile dim (0 when the dim has none).
[[nodiscard]] double geomean_speedup_for_dim(
    const std::vector<KernelSpeedup>& speedups, int tile_dim);

/// Write the v2 JSON document.  `simd_backend` / `threads` (the host's
/// hardware width) / `fixture` are provenance; speedups and per-dim
/// geomeans are derived here so every emitter agrees on the math.
void write_kernel_bench_json(const std::string& path,
                             const std::string& simd_backend, int threads,
                             const std::string& fixture,
                             const std::vector<KernelBenchRecord>& records);

/// Print the same content as an aligned table (the human-readable twin
/// of the JSON dump).
void print_kernel_bench(std::ostream& os,
                        const std::vector<KernelBenchRecord>& records);

// ---------------------------------------------------------------------
// Query-serving trajectory (BENCH_serving.json)
// ---------------------------------------------------------------------
//
// bench_serving emits one machine-readable record per PR of the serving
// core's behavior: the closed-loop saturation ablation (auto-batched vs
// unbatched QPS over the same request stream — the 64-way amortization
// headline), the open-loop latency profile (p50/p99/p999 against
// Poisson arrivals at several rates, with admission-control shed
// counts), the multi-tenant scenarios (a storm across a 3-graph
// registry, and a mixed stream of all four query kinds, each with
// per-kind counts and the executed wave-width histogram), and the
// cancellation-overhead cell (the batched saturation burst with the
// per-wave deadline token armed vs unarmed — the guard that keeps the
// cooperative-cancellation poll off the hot path's critical cost), and
// the persistence roundtrip cell (snapshot load vs MatrixMarket
// re-ingest + prewarm — the warm-restart payoff).
// Schema "bitgb-serving-bench-v4", documented in BUILDING.md.

/// Tail-aware percentile with linear interpolation between order
/// statistics; `p` in [0, 100].  Returns 0 for empty input.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// One closed-loop saturation cell (all queries submitted at once).
struct ServingSaturation {
  std::string mode;        ///< "batched" / "unbatched"
  int queries = 0;
  double qps = 0.0;        ///< completed / wall-clock
  double mean_wave = 0.0;  ///< mean queries per executed wave
};

/// One open-loop cell: Poisson arrivals at `arrival_qps` against one
/// server configuration.
struct ServingRatePoint {
  std::string mode;        ///< "batched" / "unbatched"
  double arrival_qps = 0.0;
  int offered = 0;
  std::uint64_t completed = 0;
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  double achieved_qps = 0.0;  ///< completed / wall-clock
  double p50_ms = 0.0;        ///< submit-to-reply, kOk queries only
  double p99_ms = 0.0;
  double p999_ms = 0.0;
  double mean_wave = 0.0;
};

/// One multi-tenant scenario cell (v2): a closed-loop storm against a
/// registry (multi-graph) or a mixed-kind stream against one graph.
struct ServingScenario {
  std::string name;   ///< "multi-graph" / "mixed-kinds"
  int graphs = 0;     ///< registered graphs the storm spanned
  int queries = 0;
  double qps = 0.0;          ///< completed / wall-clock
  double mean_wave = 0.0;    ///< mean queries per executed wave
  std::uint64_t widest_wave = 0;
  /// Completed count per query kind, keyed by query_kind_name.
  std::vector<std::pair<std::string, std::uint64_t>> completed_by_kind;
  /// Executed wave widths, bucketed [1][2][3-4]...[33-64].
  std::vector<std::uint64_t> wave_width_hist;
};

/// The cancellation-overhead cell (v3): the batched saturation burst
/// run twice — once with no deadlines (no CancelToken armed, zero
/// polling) and once with a far-future default deadline (every wave
/// arms a token and polls it at every level boundary).  The polling
/// cost must stay in the noise; overhead_pct is the trajectory metric.
struct ServingCancellation {
  double polling_off_qps = 0.0;
  double polling_on_qps = 0.0;
  [[nodiscard]] double overhead_pct() const {
    return polling_off_qps > 0.0
               ? 100.0 * (polling_off_qps - polling_on_qps) / polling_off_qps
               : 0.0;
  }
};

/// The persistence roundtrip cell (v4): the warm-restart payoff.  The
/// same graph is brought to serving readiness two ways — re-ingesting
/// the MatrixMarket text (parse + from_coo + prewarm, the cold path
/// every restart used to pay) and loading the snapshot (one sequential
/// checksummed read, caches landing pre-built) — after verifying the
/// loaded graph answers queries bit-identically.
struct ServingPersistence {
  std::uint64_t snapshot_bytes = 0;  ///< on-disk snapshot size
  std::uint64_t mm_bytes = 0;        ///< on-disk MatrixMarket size
  double save_ms = 0.0;              ///< Graph::save (durable write)
  double reingest_ms = 0.0;          ///< parse + build + prewarm
  double load_ms = 0.0;              ///< Graph::load
  [[nodiscard]] double load_speedup() const {
    return load_ms > 0.0 ? reingest_ms / load_ms : 0.0;
  }
};

/// Write the v4 JSON document.  `batched_speedup` is the saturation
/// headline (batched QPS / unbatched QPS) and `speedup_floor` the
/// regression gate it is asserted against; `verified` records that the
/// served answers were checked bit-identical against a serial pass;
/// `scenarios` holds the multi-tenant cells (empty is valid — the
/// array is still emitted, so consumers can rely on the key);
/// `persistence` is the snapshot-vs-reingest roundtrip cell.
void write_serving_bench_json(const std::string& path,
                              const std::string& graph_name, vidx_t vertices,
                              eidx_t edges, int workers, bool verified,
                              const std::vector<ServingSaturation>& saturation,
                              double batched_speedup, double speedup_floor,
                              const std::vector<ServingRatePoint>& rates,
                              const std::vector<ServingScenario>& scenarios,
                              const ServingCancellation& cancellation,
                              const ServingPersistence& persistence);

}  // namespace bitgb::bench
