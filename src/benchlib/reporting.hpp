// Table / figure rendering for the benchmark binaries.
//
// Figures are printed as density-bucketed geometric-mean speedup series
// (the same series the paper's log-log scatter plots show) plus an
// optional CSV dump for external plotting; tables are printed with
// aligned columns in the paper's row layout.
#pragma once

#include "sparse/types.hpp"

#include <iosfwd>
#include <string>
#include <vector>

namespace bitgb::bench {

/// One measured point of a kernel sweep (Figures 6/7).
struct SweepPoint {
  std::string matrix;
  double density = 0.0;   ///< nnz / n^2 (the x axis)
  int tile_dim = 0;       ///< 4/8/16/32 (the series)
  double speedup = 0.0;   ///< ours vs baseline (the y axis)
};

/// Density decade buckets E-07 .. E-01 as in the figures' x axis.
[[nodiscard]] int density_bucket(double density);
[[nodiscard]] std::string bucket_label(int bucket);

/// Print one figure panel: per tile-dim series of geomean speedup per
/// density bucket, plus overall average and max speedup per dim (the
/// numbers quoted in §VI-D).
void print_sweep_figure(std::ostream& os, const std::string& title,
                        const std::vector<SweepPoint>& points);

/// Write the raw points as CSV (matrix,density,tile_dim,speedup).
void write_sweep_csv(const std::string& path,
                     const std::vector<SweepPoint>& points);

/// Geometric mean (returns 0 for empty input).
[[nodiscard]] double geomean(const std::vector<double>& xs);

/// One row of the algorithm tables (VII/VIII): baseline & ours, ms.
struct AlgoRow {
  std::string matrix;
  double baseline_algo_ms = 0.0;
  double ours_algo_ms = 0.0;
  double baseline_kernel_ms = 0.0;
  double ours_kernel_ms = 0.0;
};

/// Print an algorithm table block: for each matrix, the
/// algorithm/kernel latency pair and the speedup column, in the paper's
/// "GBlst | Ours | Speedup" layout.
void print_algo_table(std::ostream& os, const std::string& title,
                      const std::string& algo_name,
                      const std::vector<AlgoRow>& rows);

/// Format "12.3x" style speedup.
[[nodiscard]] std::string speedup_str(double baseline, double ours);

}  // namespace bitgb::bench
