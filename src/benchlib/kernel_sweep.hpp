// Kernel sweep driver — Figures 6 and 7.
//
// For every corpus matrix and every B2SR tile size, measures the
// speedup of each BMV scheme over the float-CSR SpMV baseline
// (cusparseScsrmv substitute) and of the BMM sum kernel over the
// float-CSR SpGEMM baseline (cusparseScsrgemm substitute), exactly the
// panels of the paper's Figures 6a-6d (Pascal) and 7a-7d (Volta).
// The same driver is run once per device profile.
#pragma once

#include "benchlib/corpus.hpp"
#include "benchlib/reporting.hpp"
#include "platform/device_profile.hpp"

#include <iosfwd>
#include <vector>

namespace bitgb::bench {

struct SweepResult {
  std::vector<SweepPoint> bmv_bin_bin_bin;    ///< panel (a)
  std::vector<SweepPoint> bmv_bin_bin_full;   ///< panel (b)
  std::vector<SweepPoint> bmv_bin_full_full;  ///< panel (c)
  std::vector<SweepPoint> bmm_bin_bin_sum;    ///< panel (d)
};

struct SweepOptions {
  CorpusScale scale = CorpusScale::kTimed;
  /// Skip the SpGEMM comparison above this nnz (the float baseline's
  /// A*A blows up quadratically on dense corpus entries; the paper's
  /// SpGEMM panel likewise covers the sparser population).
  eidx_t bmm_nnz_cap = 60000;
};

/// Run the sweep under the given device profile (its thread width and
/// kernel variant are passed per call as an Exec; no global state).
[[nodiscard]] SweepResult run_kernel_sweep(const DeviceProfile& profile,
                                           const SweepOptions& opts);

/// Print all four panels in paper order.
void print_sweep(std::ostream& os, const std::string& figure_name,
                 const SweepResult& r);

}  // namespace bitgb::bench
