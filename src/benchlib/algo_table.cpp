#include "benchlib/algo_table.hpp"

#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/msbfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/tc.hpp"
#include "platform/timer.hpp"

#include <algorithm>
#include <ostream>

namespace bitgb::bench {

const char* algo_name(TableAlgo a) {
  switch (a) {
    case TableAlgo::kBfs: return "BFS";
    case TableAlgo::kSssp: return "SSSP";
    case TableAlgo::kPr: return "PR";
    case TableAlgo::kCc: return "CC";
    case TableAlgo::kTc: return "TC";
    case TableAlgo::kMsBfs: return "MSBFS";
  }
  return "?";
}

std::vector<vidx_t> batch_sources(vidx_t n) {
  const int batch = static_cast<int>(
      std::min<vidx_t>(n, FrontierBatch::kMaxBatch));
  std::vector<vidx_t> sources(static_cast<std::size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    sources[static_cast<std::size_t>(b)] =
        static_cast<vidx_t>(static_cast<std::int64_t>(b) * n / batch);
  }
  return sources;
}

namespace {

// Traversals start from the maximum-degree vertex so every matrix gets
// a substantive run (row 0 of a block/scatter analog can be isolated).
vidx_t pick_source(const gb::Graph& g) {
  const auto& deg = g.degrees();
  vidx_t best = 0;
  for (vidx_t v = 1; v < g.num_vertices(); ++v) {
    if (deg[static_cast<std::size_t>(v)] > deg[static_cast<std::size_t>(best)]) {
      best = v;
    }
  }
  return best;
}

SplitTiming measure(const gb::Graph& g, TableAlgo algo, gb::Backend backend) {
  switch (algo) {
    case TableAlgo::kBfs:
      return time_split_ms(
          [&, s = pick_source(g)] { (void)algo::bfs(g, s, backend); });
    case TableAlgo::kSssp:
      return time_split_ms(
          [&, s = pick_source(g)] { (void)algo::sssp(g, s, backend); });
    case TableAlgo::kPr:
      return time_split_ms([&] { (void)algo::pagerank(g, backend); });
    case TableAlgo::kCc:
      return time_split_ms(
          [&] { (void)algo::connected_components(g, backend); });
    case TableAlgo::kTc:
      return time_split_ms([&] { (void)algo::triangle_count(g, backend); });
    case TableAlgo::kMsBfs: {
      if (g.num_vertices() == 0) return {};  // no sources to batch
      return time_split_ms([&, srcs = batch_sources(g.num_vertices())] {
        (void)algo::msbfs(g, srcs, backend);
      });
    }
  }
  return {};
}

}  // namespace

std::vector<AlgoRow> run_algo_table(const std::vector<CorpusEntry>& matrices,
                                    TableAlgo algo) {
  std::vector<AlgoRow> rows;
  for (const auto& entry : matrices) {
    gb::GraphOptions opts;  // tile size auto-selected by sampling
    const gb::Graph g = gb::Graph::from_csr(entry.matrix, opts);

    // Warm the one-time conversions so the measurement covers the
    // algorithm itself (the paper's accounting).
    (void)g.packed();
    (void)g.packed_t();
    (void)g.adjacency_t();
    (void)g.unit_adjacency();
    (void)g.unit_adjacency_t();
    (void)g.lower();
    (void)g.packed_lower();
    (void)g.degrees();

    const SplitTiming ref = measure(g, algo, gb::Backend::kReference);
    const SplitTiming bit = measure(g, algo, gb::Backend::kBit);
    rows.push_back({entry.name, ref.algorithm_ms, bit.algorithm_ms,
                    ref.kernel_ms, bit.kernel_ms});
  }
  return rows;
}

void print_spmv_algorithm_table(std::ostream& os, const std::string& title,
                                const std::vector<CorpusEntry>& matrices) {
  for (const TableAlgo algo :
       {TableAlgo::kBfs, TableAlgo::kSssp, TableAlgo::kPr, TableAlgo::kCc,
        TableAlgo::kMsBfs}) {
    print_algo_table(os, title, algo_name(algo),
                     run_algo_table(matrices, algo));
  }
}

}  // namespace bitgb::bench
