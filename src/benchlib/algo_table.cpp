#include "benchlib/algo_table.hpp"

#include "algorithms/bfs.hpp"
#include "algorithms/cc.hpp"
#include "algorithms/msbfs.hpp"
#include "algorithms/pagerank.hpp"
#include "algorithms/sssp.hpp"
#include "algorithms/tc.hpp"
#include "algorithms/workspace.hpp"
#include "platform/context.hpp"
#include "platform/timer.hpp"

#include <algorithm>
#include <ostream>

namespace bitgb::bench {

const char* algo_name(TableAlgo a) {
  switch (a) {
    case TableAlgo::kBfs: return "BFS";
    case TableAlgo::kSssp: return "SSSP";
    case TableAlgo::kPr: return "PR";
    case TableAlgo::kCc: return "CC";
    case TableAlgo::kTc: return "TC";
    case TableAlgo::kMsBfs: return "MSBFS";
  }
  return "?";
}

std::vector<vidx_t> batch_sources(vidx_t n) {
  const int batch = static_cast<int>(
      std::min<vidx_t>(n, FrontierBatch::kMaxBatch));
  std::vector<vidx_t> sources(static_cast<std::size_t>(batch));
  for (int b = 0; b < batch; ++b) {
    sources[static_cast<std::size_t>(b)] =
        static_cast<vidx_t>(static_cast<std::int64_t>(b) * n / batch);
  }
  return sources;
}

namespace {

// Traversals start from the maximum-degree vertex so every matrix gets
// a substantive run (row 0 of a block/scatter analog can be isolated).
vidx_t pick_source(const gb::Graph& g) {
  const auto& deg = g.degrees();
  vidx_t best = 0;
  for (vidx_t v = 1; v < g.num_vertices(); ++v) {
    if (deg[static_cast<std::size_t>(v)] > deg[static_cast<std::size_t>(best)]) {
      best = v;
    }
  }
  return best;
}

SplitTiming measure(const DeviceProfile& profile, const gb::Graph& g,
                    TableAlgo algo, Backend backend) {
  KernelTimeSink sink;
  const Context ctx = context_for(profile, &sink).with_backend(backend);
  // One reusable workspace per measurement: the steady-state serving
  // shape (repeat queries reuse scratch and result capacity).
  algo::Workspace ws;
  switch (algo) {
    case TableAlgo::kBfs:
      return time_split_ms(sink, [&, s = pick_source(g),
                                  out = algo::BfsResult{}]() mutable {
        algo::bfs(ctx, g, {s}, ws, out);
      });
    case TableAlgo::kSssp:
      return time_split_ms(sink, [&, s = pick_source(g),
                                  out = algo::SsspResult{}]() mutable {
        algo::sssp(ctx, g, {s}, ws, out);
      });
    case TableAlgo::kPr:
      return time_split_ms(sink, [&, out = algo::PageRankResult{}]() mutable {
        algo::pagerank(ctx, g, {}, ws, out);
      });
    case TableAlgo::kCc:
      return time_split_ms(sink, [&, out = algo::CcResult{}]() mutable {
        algo::connected_components(ctx, g, {}, ws, out);
      });
    case TableAlgo::kTc:
      return time_split_ms(sink, [&, out = algo::TcResult{}]() mutable {
        algo::triangle_count(ctx, g, {}, ws, out);
      });
    case TableAlgo::kMsBfs: {
      if (g.num_vertices() == 0) return {};  // no sources to batch
      return time_split_ms(sink, [&, srcs = batch_sources(g.num_vertices()),
                                  out = algo::MsBfsResult{}]() mutable {
        algo::msbfs(ctx, g, {srcs}, ws, out);
      });
    }
  }
  return {};
}

}  // namespace

std::vector<AlgoRow> run_algo_table(const DeviceProfile& profile,
                                    const std::vector<CorpusEntry>& matrices,
                                    TableAlgo algo) {
  std::vector<AlgoRow> rows;
  for (const auto& entry : matrices) {
    gb::GraphOptions opts;  // tile size auto-selected by sampling
    opts.ingest = Exec{profile.variant, profile.num_threads};
    const gb::Graph g = gb::Graph::from_csr(entry.matrix, opts);

    // Prewarm the one-time conversions so the measurement covers the
    // algorithm itself (the paper's accounting).
    g.prewarm(gb::kAllFormats);

    const SplitTiming ref = measure(profile, g, algo, Backend::kReference);
    const SplitTiming bit = measure(profile, g, algo, Backend::kBit);
    rows.push_back({entry.name, ref.algorithm_ms, bit.algorithm_ms,
                    ref.kernel_ms, bit.kernel_ms});
  }
  return rows;
}

void print_spmv_algorithm_table(std::ostream& os, const DeviceProfile& profile,
                                const std::string& title,
                                const std::vector<CorpusEntry>& matrices) {
  for (const TableAlgo algo :
       {TableAlgo::kBfs, TableAlgo::kSssp, TableAlgo::kPr, TableAlgo::kCc,
        TableAlgo::kMsBfs}) {
    print_algo_table(os, title, algo_name(algo),
                     run_algo_table(profile, matrices, algo));
  }
}

}  // namespace bitgb::bench
