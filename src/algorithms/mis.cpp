#include "algorithms/mis.hpp"

#include "graphblas/ops.hpp"

#include <limits>

namespace bitgb::algo {

namespace {

// splitmix64: deterministic per-vertex priority for Luby rounds.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

template <typename MaxMxvFn>
void luby_loop(const gb::Graph& g, std::uint64_t seed, Workspace& ws,
               MisResult& res, MaxMxvFn&& max_mxv) {
  const vidx_t n = g.num_vertices();
  res.in_set.assign(static_cast<std::size_t>(n), 0);
  res.rounds = 0;

  auto& candidate = ws.slot<std::vector<std::uint8_t>>("mis.candidate");
  auto& prio = ws.slot<std::vector<value_t>>("mis.prio");
  auto& nbr_max = ws.slot<std::vector<value_t>>("mis.nbr_max");
  candidate.assign(static_cast<std::size_t>(n), 1);
  prio.resize(static_cast<std::size_t>(n));
  vidx_t remaining = n;

  while (remaining > 0) {
    ++res.rounds;
    // Candidates draw priorities; settled vertices are -inf so they
    // cannot dominate anyone (max-times identity).
    for (vidx_t v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      prio[vi] = candidate[vi]
                     ? static_cast<value_t>(
                           (mix(seed ^ (static_cast<std::uint64_t>(v) +
                                        res.rounds * 0x10001ull)) >>
                            40) +
                           1)
                     : MaxTimesOp::identity;
    }
    // nbr_max[v] = max over neighbours of prio (max-times semiring).
    max_mxv(prio, nbr_max);

    // Winners: candidates whose priority beats the whole neighbourhood.
    for (vidx_t v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (!candidate[vi]) continue;
      if (prio[vi] > nbr_max[vi] ||
          nbr_max[vi] == MaxTimesOp::identity) {
        res.in_set[vi] = 1;
      }
    }
    // Adjacent winners can only arise from a priority-hash tie (the
    // comparison above is strict); resolve deterministically by vertex
    // id — the ascending scan demotes the larger endpoint, so the kept
    // winners form an independent set and demoted vertices stay
    // candidates for later rounds.
    for (vidx_t v = 0; v < n; ++v) {
      if (!res.in_set[static_cast<std::size_t>(v)]) continue;
      for (const vidx_t u : g.adjacency().row_cols(v)) {
        if (u > v) res.in_set[static_cast<std::size_t>(u)] = 0;
      }
    }
    // Winners and their neighbourhoods leave the candidate pool.
    for (vidx_t v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (!res.in_set[vi]) continue;
      if (candidate[vi]) {
        candidate[vi] = 0;
        --remaining;
      }
      for (const vidx_t u : g.adjacency().row_cols(v)) {
        const auto ui = static_cast<std::size_t>(u);
        if (candidate[ui]) {
          candidate[ui] = 0;
          --remaining;
        }
      }
    }
  }
}

}  // namespace

void maximal_independent_set(const Context& ctx, const gb::Graph& g,
                             const MisParams& /*params*/, Workspace& ws,
                             MisResult& out) {
  if (ctx.backend == Backend::kReference) {
    const Csr& a = g.adjacency();
    luby_loop(g, ctx.seed, ws, out,
              [&](const std::vector<value_t>& x, std::vector<value_t>& y) {
                gb::ref_mxv<MaxTimesOp>(ctx, a, x, y);
              });
    return;
  }
  dispatch_tile_dim(g.tile_dim(), [&]<int Dim>() {
    const auto& a = g.packed().as<Dim>();
    luby_loop(g, ctx.seed, ws, out,
              [&](const std::vector<value_t>& x, std::vector<value_t>& y) {
                gb::bit_mxv<Dim, MaxTimesOp>(ctx, a, x, y);
              });
    return 0;
  });
}

MisResult maximal_independent_set(const Context& ctx, const gb::Graph& g,
                                  const MisParams& params) {
  Workspace ws;
  MisResult out;
  maximal_independent_set(ctx, g, params, ws, out);
  return out;
}

bool is_valid_mis(const Csr& a, const std::vector<std::uint8_t>& in_set) {
  for (vidx_t v = 0; v < a.nrows; ++v) {
    const auto vi = static_cast<std::size_t>(v);
    bool has_set_neighbour = false;
    for (const vidx_t u : a.row_cols(v)) {
      if (in_set[static_cast<std::size_t>(u)]) {
        if (in_set[vi]) return false;  // edge inside the set
        has_set_neighbour = true;
      }
    }
    if (!in_set[vi] && !has_set_neighbour) return false;  // not maximal
  }
  return true;
}

}  // namespace bitgb::algo
