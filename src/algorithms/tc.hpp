// Triangle Counting — arithmetic semiring, masked SpGEMM (paper §V,
// following Azad–Buluc and Wolf: count = sum((L * L^T) .* L) with L the
// strict lower triangle of the adjacency matrix).
//
// The bit backend fuses the reduction into the masked BMM
// (bmm_bin_bin_sum_masked — "we fuse the reduction sum kernel with
// mxm() and directly perform atomicAdd to [the] global sum", §V); the
// reference backend is the GraphBLAST-style masked dot-product SpGEMM
// over float CSR.
#pragma once

#include "algorithms/workspace.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"

#include <cstdint>

namespace bitgb::algo {

struct TcParams {};

struct TcResult {
  std::int64_t triangles = 0;
};

/// Workspace form for API uniformity (TC's reduction is a scalar; it
/// carries no reusable scratch, so `ws` is accepted and unused).
void triangle_count(const Context& ctx, const gb::Graph& g,
                    const TcParams& params, Workspace& ws, TcResult& out);

/// Convenience form.
[[nodiscard]] std::int64_t triangle_count(const Context& ctx,
                                          const gb::Graph& g,
                                          const TcParams& params = {});

/// Sorted-adjacency-intersection gold reference.
[[nodiscard]] std::int64_t tc_gold(const Csr& a);

}  // namespace bitgb::algo
