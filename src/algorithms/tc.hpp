// Triangle Counting — arithmetic semiring, masked SpGEMM (paper §V,
// following Azad–Buluc and Wolf: count = sum((L * L^T) .* L) with L the
// strict lower triangle of the adjacency matrix).
//
// The bit backend fuses the reduction into the masked BMM
// (bmm_bin_bin_sum_masked — "we fuse the reduction sum kernel with
// mxm() and directly perform atomicAdd to [the] global sum", §V); the
// reference backend is the GraphBLAST-style masked dot-product SpGEMM
// over float CSR.
#pragma once

#include "graphblas/graph.hpp"

#include <cstdint>

namespace bitgb::algo {

[[nodiscard]] std::int64_t triangle_count(const gb::Graph& g,
                                          gb::Backend backend);

/// Sorted-adjacency-intersection gold reference.
[[nodiscard]] std::int64_t tc_gold(const Csr& a);

}  // namespace bitgb::algo
