// Single-Source Shortest Path — tropical min-plus semiring (paper §V).
//
// GraphBLAS Bellman-Ford: per iteration the distance vector is relaxed
// through bmv_bin_full_full<MinPlus> — 0s of the adjacency matrix act
// as +infinity (unreachable), set bits contribute dist[j] + 1 (unit
// weights: the homogeneous graphs the paper targets carry no weights).
// Iteration stops when no distance improves (at most |V|-1 rounds).
#pragma once

#include "algorithms/workspace.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"

#include <vector>

namespace bitgb::algo {

struct SsspParams {
  vidx_t source = 0;
};

struct SsspResult {
  std::vector<value_t> dist;  ///< +inf where unreachable
  int iterations = 0;
};

/// Zero-allocation form: scratch lives in `ws`, result buffers reuse
/// `out`'s capacity.
void sssp(const Context& ctx, const gb::Graph& g, const SsspParams& params,
          Workspace& ws, SsspResult& out);

/// Convenience form (allocates internally).
[[nodiscard]] SsspResult sssp(const Context& ctx, const gb::Graph& g,
                              const SsspParams& params);

/// Serial Bellman-Ford gold reference over unit weights.
[[nodiscard]] std::vector<value_t> sssp_gold(const Csr& a, vidx_t source);

}  // namespace bitgb::algo
