// Single-Source Shortest Path — tropical min-plus semiring (paper §V).
//
// GraphBLAS Bellman-Ford: per iteration the distance vector is relaxed
// through bmv_bin_full_full<MinPlus> — 0s of the adjacency matrix act
// as +infinity (unreachable), set bits contribute dist[j] + 1 (unit
// weights: the homogeneous graphs the paper targets carry no weights).
// Iteration stops when no distance improves (at most |V|-1 rounds).
#pragma once

#include "graphblas/graph.hpp"

#include <vector>

namespace bitgb::algo {

struct SsspResult {
  std::vector<value_t> dist;  ///< +inf where unreachable
  int iterations = 0;
};

[[nodiscard]] SsspResult sssp(const gb::Graph& g, vidx_t source,
                              gb::Backend backend);

/// Serial Bellman-Ford gold reference over unit weights.
[[nodiscard]] std::vector<value_t> sssp_gold(const Csr& a, vidx_t source);

}  // namespace bitgb::algo
