// Workspace — caller-owned reusable scratch for the algorithms.
//
// Every algorithm has two entry points: a convenience form that
// allocates its scratch internally, and a form taking a Workspace&
// plus a Result& out-parameter.  The workspace keeps each named
// scratch buffer (frontiers, level/visited vectors, SpGEMM scratch,
// FastSV label arrays, ...) alive between calls, and the out-parameter
// reuses the result buffers' capacity, so a steady-state query loop —
// the serving shape of the ROADMAP north star — performs zero heap
// allocations per query after the first.
//
// A Workspace is intentionally NOT thread-safe: it models one serving
// thread's scratch.  Concurrent queries each own a workspace (see
// examples/concurrent_queries.cpp); the *Graph* is what they share.
#pragma once

#include <any>
#include <map>
#include <string>
#include <string_view>

namespace bitgb::algo {

class Workspace {
 public:
  /// The T-typed slot named `key`, default-constructed on first use (or
  /// when a previous user left a different type there — e.g. the same
  /// workspace reused across Graphs with different tile dims).  The
  /// steady-state path is a heterogeneous map lookup: no allocation.
  template <typename T>
  [[nodiscard]] T& slot(std::string_view key) {
    auto it = slots_.find(key);
    if (it == slots_.end()) {
      it = slots_.emplace(std::string(key), std::any()).first;
    }
    if (it->second.type() != typeid(T)) it->second.emplace<T>();
    return *std::any_cast<T>(&it->second);
  }

  /// Drop every buffer (frees the memory; next run re-allocates).
  void clear() { slots_.clear(); }

  [[nodiscard]] std::size_t size() const { return slots_.size(); }

 private:
  std::map<std::string, std::any, std::less<>> slots_;
};

}  // namespace bitgb::algo
