#include "algorithms/coloring.hpp"

#include "graphblas/ops.hpp"

#include <algorithm>

namespace bitgb::algo {

namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

// Smallest color not used by v's already-colored neighbours — the
// greedy rule that keeps the palette within max-degree + 1.
std::int32_t smallest_free_color(const Csr& a,
                                 const std::vector<std::int32_t>& color,
                                 vidx_t v, std::vector<std::uint8_t>& used) {
  const auto cols = a.row_cols(v);
  if (used.size() < cols.size() + 1) used.resize(cols.size() + 1);
  std::fill(used.begin(),
            used.begin() + static_cast<std::ptrdiff_t>(cols.size() + 1), 0);
  for (const vidx_t u : cols) {
    const auto cu = color[static_cast<std::size_t>(u)];
    if (cu >= 0 && cu <= static_cast<std::int32_t>(cols.size())) {
      used[static_cast<std::size_t>(cu)] = 1;
    }
  }
  std::int32_t c = 0;
  while (used[static_cast<std::size_t>(c)]) ++c;
  return c;
}

template <typename MaxMxvFn>
void jp_loop(const gb::Graph& g, std::uint64_t seed, Workspace& ws,
             ColoringResult& res, MaxMxvFn&& max_mxv) {
  const vidx_t n = g.num_vertices();
  res.color.assign(static_cast<std::size_t>(n), -1);
  res.num_colors = 0;

  auto& prio = ws.slot<std::vector<value_t>>("gc.prio");
  auto& nbr_max = ws.slot<std::vector<value_t>>("gc.nbr_max");
  auto& used = ws.slot<std::vector<std::uint8_t>>("gc.used");
  prio.resize(static_cast<std::size_t>(n));
  vidx_t uncolored = n;
  int round = 0;

  while (uncolored > 0) {
    ++round;
    // Uncolored vertices draw fresh priorities; colored ones are -inf.
    for (vidx_t v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      prio[vi] =
          res.color[vi] < 0
              ? static_cast<value_t>(
                    (mix(seed ^ (static_cast<std::uint64_t>(v) +
                                 static_cast<std::uint64_t>(round) *
                                     0x10001ull)) >>
                     40) +
                    1)
              : MaxTimesOp::identity;
    }
    max_mxv(prio, nbr_max);
    // Local maxima of the uncolored subgraph win this round.  A vertex
    // compares only against *uncolored* neighbours, which is exactly
    // what the -inf priorities of colored vertices arrange.  Winners of
    // one round form an independent set (strict comparison; hash ties
    // resolved by the ascending id order of the assignment loop below,
    // since an already-assigned smaller neighbour's color is visible to
    // the larger one), so the greedy rule keeps colors <= maxdeg + 1.
    for (vidx_t v = 0; v < n; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      if (res.color[vi] >= 0) continue;
      if (prio[vi] > nbr_max[vi] || nbr_max[vi] == MaxTimesOp::identity) {
        const std::int32_t c =
            smallest_free_color(g.adjacency(), res.color, v, used);
        res.color[vi] = c;
        res.num_colors = std::max(res.num_colors, c + 1);
        --uncolored;
      }
    }
  }
}

}  // namespace

void greedy_coloring(const Context& ctx, const gb::Graph& g,
                     const ColoringParams& /*params*/, Workspace& ws,
                     ColoringResult& out) {
  if (ctx.backend == Backend::kReference) {
    const Csr& a = g.adjacency();
    jp_loop(g, ctx.seed, ws, out,
            [&](const std::vector<value_t>& x, std::vector<value_t>& y) {
              gb::ref_mxv<MaxTimesOp>(ctx, a, x, y);
            });
    return;
  }
  dispatch_tile_dim(g.tile_dim(), [&]<int Dim>() {
    const auto& a = g.packed().as<Dim>();
    jp_loop(g, ctx.seed, ws, out,
            [&](const std::vector<value_t>& x, std::vector<value_t>& y) {
              gb::bit_mxv<Dim, MaxTimesOp>(ctx, a, x, y);
            });
    return 0;
  });
}

ColoringResult greedy_coloring(const Context& ctx, const gb::Graph& g,
                               const ColoringParams& params) {
  Workspace ws;
  ColoringResult out;
  greedy_coloring(ctx, g, params, ws, out);
  return out;
}

bool is_valid_coloring(const Csr& a, const std::vector<std::int32_t>& color) {
  for (vidx_t v = 0; v < a.nrows; ++v) {
    if (color[static_cast<std::size_t>(v)] < 0) return false;
    for (const vidx_t u : a.row_cols(v)) {
      if (color[static_cast<std::size_t>(u)] ==
          color[static_cast<std::size_t>(v)]) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace bitgb::algo
