// Multi-source BFS — the batched traversal engine's flagship algorithm.
//
// Up to 64 BFS traversals run concurrently, their frontiers packed as
// the bit-columns of a FrontierBatch.  Per level the whole batch is
// expanded by ONE masked BMM sweep over the B2SR tiles of A^T (bit
// backend) or by one masked pull per column (reference backend) — the
// same §V output-store masking as single-source BFS, lifted from a bit
// vector to a bit matrix.  One traversal of the adjacency structure is
// thereby amortized across the whole batch: the bit backend's cost per
// level is one 64-bit OR per adjacency bit regardless of how many of
// the 64 frontiers are live — the "serve many concurrent queries"
// scaling batched frameworks (Gunrock's batched workloads, GraphBLAST's
// frontier-matrix mxm) get from batching, executed at the bit level.
//
// Output: the level *matrix* — levels[v * batch + b] is the BFS level
// of vertex v from sources[b] (0 at the source, kUnreached if never
// visited), bit-for-bit equal to `batch` independent single-source
// bfs() runs.
#pragma once

#include "algorithms/bfs.hpp"
#include "algorithms/workspace.hpp"
#include "core/frontier_batch.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"

#include <cstdint>
#include <vector>

namespace bitgb::algo {

struct MsBfsParams {
  std::vector<vidx_t> sources;  ///< 1..64 start vertices
};

struct MsBfsResult {
  std::vector<std::int32_t> levels;  ///< n * batch, row-major by vertex
  int batch = 0;
  int iterations = 0;  ///< deepest non-empty level across the batch

  /// Level of vertex v in the traversal from sources[b].
  [[nodiscard]] std::int32_t level(vidx_t v, int b) const {
    return levels[static_cast<std::size_t>(v) *
                      static_cast<std::size_t>(batch) +
                  static_cast<std::size_t>(b)];
  }

  /// Extract column b as a single-source bfs()-shaped level vector.
  [[nodiscard]] std::vector<std::int32_t> column(vidx_t n, int b) const {
    std::vector<std::int32_t> out(static_cast<std::size_t>(n));
    for (vidx_t v = 0; v < n; ++v) out[static_cast<std::size_t>(v)] = level(v, b);
    return out;
  }
};

/// Batched BFS from 1..64 sources (throws std::invalid_argument on an
/// empty or oversized batch, or an out-of-range source).  Zero-
/// allocation form: scratch lives in `ws`, result buffers reuse `out`'s
/// capacity.
void msbfs(const Context& ctx, const gb::Graph& g, const MsBfsParams& params,
           Workspace& ws, MsBfsResult& out);

/// Convenience form (allocates internally).
[[nodiscard]] MsBfsResult msbfs(const Context& ctx, const gb::Graph& g,
                                const MsBfsParams& params);

/// Batched reachability: bit b of row v answers "does sources[b] reach
/// v?" (a source reaches itself).  This is msbfs's visited matrix —
/// the Boolean closure the batch engine hands to batched_cc.
[[nodiscard]] FrontierBatch batched_reach(const Context& ctx,
                                          const gb::Graph& g,
                                          const std::vector<vidx_t>& sources);

/// Workspace form: the returned reference points into `ws` and stays
/// valid until the next msbfs/batched_reach call on that workspace —
/// the zero-copy wave loop batched_cc runs on.
const FrontierBatch& batched_reach(const Context& ctx, const gb::Graph& g,
                                   const std::vector<vidx_t>& sources,
                                   Workspace& ws);

/// Scatter column b of the level matrix into a bfs()-shaped level
/// vector, reusing `out`'s capacity — the serving auto-batcher's
/// per-query result path (one call per coalesced query, no per-vertex
/// level() indexing arithmetic in the caller).
void scatter_levels(const MsBfsResult& res, int b,
                    std::vector<std::int32_t>& out);

/// Scatter reach column b of a batched_reach bit-matrix into a dense
/// byte vector: out[v] = 1 iff sources[b] reaches v.
void scatter_reached(const FrontierBatch& reach, int b,
                     std::vector<std::uint8_t>& out);

/// Gold reference: `batch` independent serial queue-BFS runs, assembled
/// into the same row-major level matrix.
[[nodiscard]] std::vector<std::int32_t> msbfs_gold(
    const Csr& a, const std::vector<vidx_t>& sources);

}  // namespace bitgb::algo
