#include "algorithms/cc.hpp"

#include "graphblas/ops.hpp"

#include <cassert>
#include <numeric>

namespace bitgb::algo {

namespace {

template <typename MxvFn>
void fastsv_loop(vidx_t n, Workspace& ws, CcResult& res, MxvFn&& min_mxv) {
  assert(n < (vidx_t{1} << 24));  // float carries ids exactly
  res.iterations = 0;

  auto& f = ws.slot<std::vector<value_t>>("cc.f");
  auto& gf = ws.slot<std::vector<value_t>>("cc.gf");
  auto& mngf = ws.slot<std::vector<value_t>>("cc.mngf");
  f.resize(static_cast<std::size_t>(n));
  std::iota(f.begin(), f.end(), 0.0f);
  gf = f;  // grandparents (f[f] with f = identity)

  bool changed = true;
  while (changed) {
    changed = false;
    ++res.iterations;

    // 1. minimum neighbour grandparent.
    min_mxv(gf, mngf);

    // 2&3. hooking.  mngf[u] == identity(+inf) for isolated vertices.
    for (vidx_t u = 0; u < n; ++u) {
      const value_t m = mngf[static_cast<std::size_t>(u)];
      if (!(m < static_cast<value_t>(n))) continue;  // +inf: no neighbour
      // stochastic hooking: hook u's parent to m.
      const auto fu = static_cast<std::size_t>(f[static_cast<std::size_t>(u)]);
      if (m < f[fu]) {
        f[fu] = m;
        changed = true;
      }
      // aggressive hooking: hook u itself.
      if (m < f[static_cast<std::size_t>(u)]) {
        f[static_cast<std::size_t>(u)] = m;
        changed = true;
      }
    }

    // 4. shortcutting.
    for (vidx_t u = 0; u < n; ++u) {
      const auto fu = static_cast<std::size_t>(f[static_cast<std::size_t>(u)]);
      if (f[fu] < f[static_cast<std::size_t>(u)]) {
        f[static_cast<std::size_t>(u)] = f[fu];
        changed = true;
      }
    }

    // 5. recompute grandparents.
    for (vidx_t u = 0; u < n; ++u) {
      const auto fu = static_cast<std::size_t>(f[static_cast<std::size_t>(u)]);
      gf[static_cast<std::size_t>(u)] = f[fu];
    }
  }

  res.component.resize(static_cast<std::size_t>(n));
  for (vidx_t u = 0; u < n; ++u) {
    res.component[static_cast<std::size_t>(u)] =
        static_cast<vidx_t>(f[static_cast<std::size_t>(u)]);
  }
}

}  // namespace

void connected_components(const Context& ctx, const gb::Graph& g,
                          const CcParams& /*params*/, Workspace& ws,
                          CcResult& out) {
  const vidx_t n = g.num_vertices();
  if (ctx.backend == Backend::kReference) {
    const Csr& a = g.adjacency();
    fastsv_loop(n, ws, out,
                [&](const std::vector<value_t>& x, std::vector<value_t>& y) {
                  gb::ref_mxv<MinIdentityOp>(ctx, a, x, y);
                });
    return;
  }
  dispatch_tile_dim(g.tile_dim(), [&]<int Dim>() {
    const auto& a = g.packed().as<Dim>();
    fastsv_loop(n, ws, out,
                [&](const std::vector<value_t>& x, std::vector<value_t>& y) {
                  gb::bit_mxv<Dim, MinIdentityOp>(ctx, a, x, y);
                });
    return 0;
  });
}

CcResult connected_components(const Context& ctx, const gb::Graph& g,
                              const CcParams& params) {
  Workspace ws;
  CcResult out;
  connected_components(ctx, g, params, ws, out);
  return out;
}

std::vector<vidx_t> cc_gold(const Csr& a) {
  std::vector<vidx_t> parent(static_cast<std::size_t>(a.nrows));
  std::iota(parent.begin(), parent.end(), vidx_t{0});

  const auto find = [&](vidx_t x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };

  for (vidx_t u = 0; u < a.nrows; ++u) {
    for (const vidx_t v : a.row_cols(u)) {
      const vidx_t ru = find(u);
      const vidx_t rv = find(v);
      if (ru != rv) parent[static_cast<std::size_t>(std::max(ru, rv))] =
          std::min(ru, rv);
    }
  }
  // Normalize to the minimum vertex id of each component.
  std::vector<vidx_t> comp(static_cast<std::size_t>(a.nrows));
  for (vidx_t u = 0; u < a.nrows; ++u) {
    comp[static_cast<std::size_t>(u)] = find(u);
  }
  return comp;
}

}  // namespace bitgb::algo
