// PageRank — arithmetic semiring (paper §V).
//
// Per iteration the rank vector is multiplied by the column-stochastic
// adjacency matrix.  The paper keeps the matrix binary and divides each
// contribution by the source vertex's out-degree through an auxiliary
// v_out_degree vector; this implementation folds the divide into a
// pre-scaled vector (x[j] = pr[j] / outdeg[j]) before the mxv — the
// same arithmetic, one pass earlier.  Dangling vertices redistribute
// their mass uniformly.  Paper parameters (§VI-A): max 10 iterations,
// alpha = 0.85, epsilon = 1e-9.
#pragma once

#include "algorithms/workspace.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"

#include <vector>

namespace bitgb::algo {

struct PageRankParams {
  int max_iterations = 10;   ///< paper §VI-A
  value_t alpha = 0.85f;     ///< paper §VI-A
  double epsilon = 1e-9;     ///< paper §VI-A ("pdfilon")
};

struct PageRankResult {
  std::vector<value_t> rank;
  int iterations = 0;
};

/// Zero-allocation form: scratch lives in `ws`, result buffers reuse
/// `out`'s capacity.
void pagerank(const Context& ctx, const gb::Graph& g,
              const PageRankParams& params, Workspace& ws,
              PageRankResult& out);

/// Convenience form (allocates internally).
[[nodiscard]] PageRankResult pagerank(const Context& ctx, const gb::Graph& g,
                                      const PageRankParams& params = {});

/// Serial gold reference: identical formula, no framework machinery.
[[nodiscard]] std::vector<value_t> pagerank_gold(
    const Csr& a, const PageRankParams& params = {});

}  // namespace bitgb::algo
