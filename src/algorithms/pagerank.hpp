// PageRank — arithmetic semiring (paper §V).
//
// Per iteration the rank vector is multiplied by the column-stochastic
// adjacency matrix.  The paper keeps the matrix binary and divides each
// contribution by the source vertex's out-degree through an auxiliary
// v_out_degree vector; this implementation folds the divide into a
// pre-scaled vector (x[j] = pr[j] / outdeg[j]) before the mxv — the
// same arithmetic, one pass earlier.  Dangling vertices redistribute
// their mass uniformly.  Paper parameters (§VI-A): max 10 iterations,
// alpha = 0.85, epsilon = 1e-9.
#pragma once

#include "graphblas/graph.hpp"

#include <vector>

namespace bitgb::algo {

struct PageRankOptions {
  int max_iterations = 10;   ///< paper §VI-A
  value_t alpha = 0.85f;     ///< paper §VI-A
  double epsilon = 1e-9;     ///< paper §VI-A ("pdfilon")
};

struct PageRankResult {
  std::vector<value_t> rank;
  int iterations = 0;
};

[[nodiscard]] PageRankResult pagerank(const gb::Graph& g, gb::Backend backend,
                                      const PageRankOptions& opts = {});

/// Serial gold reference: identical formula, no framework machinery.
[[nodiscard]] std::vector<value_t> pagerank_gold(
    const Csr& a, const PageRankOptions& opts = {});

}  // namespace bitgb::algo
