// Breadth-First Search — Boolean semiring (paper §V).
//
// Per iteration, vxm() expands the frontier one hop; the visited mask is
// applied to drop already-seen vertices.  The bit backend uses
// bmv_bin_bin_bin_masked with the mask AND-ed at the output store (no
// early exit — §V explains early exit would diverge the warp that owns
// a tile-row).  The reference backend is the GraphBLAST-style
// direction-optimized push/pull with early exit.
//
// API shape (all algorithms follow it): `Result run(const Context&,
// const Graph&, Params)`, plus a Workspace + out-parameter overload
// that reuses scratch and result capacity so steady-state queries make
// zero heap allocations.
//
// Output: BFS level per vertex (0 for the source), kUnreached if never
// visited.
#pragma once

#include "algorithms/workspace.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"

#include <cstdint>
#include <vector>

namespace bitgb::algo {

inline constexpr std::int32_t kUnreached = -1;

struct BfsParams {
  vidx_t source = 0;
};

struct BfsResult {
  std::vector<std::int32_t> levels;
  int iterations = 0;
};

/// Zero-allocation form: scratch lives in `ws`, result buffers reuse
/// `out`'s capacity.
void bfs(const Context& ctx, const gb::Graph& g, const BfsParams& params,
         Workspace& ws, BfsResult& out);

/// Convenience form (allocates internally).
[[nodiscard]] BfsResult bfs(const Context& ctx, const gb::Graph& g,
                            const BfsParams& params);

/// Serial gold reference (queue BFS) for validation.
[[nodiscard]] std::vector<std::int32_t> bfs_gold(const Csr& a, vidx_t source);

}  // namespace bitgb::algo
