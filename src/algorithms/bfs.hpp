// Breadth-First Search — Boolean semiring (paper §V).
//
// Per iteration, vxm() expands the frontier one hop; the visited mask is
// applied to drop already-seen vertices.  The bit backend uses
// bmv_bin_bin_bin_masked with the mask AND-ed at the output store (no
// early exit — §V explains early exit would diverge the warp that owns
// a tile-row).  The reference backend is the GraphBLAST-style
// direction-optimized push/pull with early exit.
//
// Output: BFS level per vertex (0 for the source), kUnreached if never
// visited.
#pragma once

#include "graphblas/graph.hpp"

#include <cstdint>
#include <vector>

namespace bitgb::algo {

inline constexpr std::int32_t kUnreached = -1;

struct BfsResult {
  std::vector<std::int32_t> levels;
  int iterations = 0;
};

[[nodiscard]] BfsResult bfs(const gb::Graph& g, vidx_t source,
                            gb::Backend backend);

/// Serial gold reference (queue BFS) for validation.
[[nodiscard]] std::vector<std::int32_t> bfs_gold(const Csr& a, vidx_t source);

}  // namespace bitgb::algo
