// Maximal Independent Set — tropical max-times semiring (paper
// Table IV lists MIS and graph coloring as the max-times / Boolean
// semiring algorithms Bit-GraphBLAS supports).
//
// Luby's algorithm in GraphBLAS form: every candidate vertex draws a
// deterministic pseudo-random priority (seeded from the Context's RNG
// seed); one mxv over the max-times semiring gives each vertex its
// neighbourhood's maximum priority; a vertex whose own priority beats
// every neighbour's joins the set, and its neighbourhood (one Boolean
// mxv) leaves the candidate pool.  Expected O(log n) rounds.
#pragma once

#include "algorithms/workspace.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"

#include <cstdint>
#include <vector>

namespace bitgb::algo {

struct MisParams {};

struct MisResult {
  std::vector<std::uint8_t> in_set;  ///< 1 if the vertex is in the MIS
  int rounds = 0;
};

/// Zero-allocation form: scratch lives in `ws`, result buffers reuse
/// `out`'s capacity.  Priorities derive from ctx.seed.
void maximal_independent_set(const Context& ctx, const gb::Graph& g,
                             const MisParams& params, Workspace& ws,
                             MisResult& out);

/// Convenience form (allocates internally).
[[nodiscard]] MisResult maximal_independent_set(const Context& ctx,
                                                const gb::Graph& g,
                                                const MisParams& params = {});

/// Validity check: returns true iff `in_set` is independent (no edge
/// inside the set) and maximal (every outside vertex has a neighbour
/// inside).  Used by tests and by the coloring algorithm.
[[nodiscard]] bool is_valid_mis(const Csr& a,
                                const std::vector<std::uint8_t>& in_set);

}  // namespace bitgb::algo
