#include "algorithms/msbfs.hpp"

#include "graphblas/ops.hpp"

#include <algorithm>

namespace bitgb::algo {

namespace {

/// Direction choice for the batch (bit backend): push while the rows
/// holding live frontier words occupy fewer than half the tile-rows.
/// The pull sweep costs one pass over every stored tile plus an O(n)
/// store; the push costs only the active tile-rows' tiles — on
/// long-diameter graphs (band / road) the union of 64 thin wavefronts
/// still touches a small fraction of the matrix, and push keeps the
/// whole batched traversal frontier-proportional, exactly as the
/// direction-optimized single-source BFS.
bool use_push(std::size_t active_tile_rows, vidx_t n_tile_rows) {
  return static_cast<vidx_t>(active_tile_rows) < n_tile_rows / 2;
}

/// The shared traversal loop.  On return `visited` is the reach
/// bit-matrix (bit (v, b) set iff sources[b] reaches v) — msbfs drops
/// it, batched_reach returns it.
void run_msbfs(const Context& ctx, const gb::Graph& g,
               const std::vector<vidx_t>& sources, Workspace& ws,
               MsBfsResult& res, FrontierBatch& visited) {
  const vidx_t n = g.num_vertices();
  ctx.check_alloc();  // fault-injection hook at the sizing prologue
  auto& frontier = ws.slot<FrontierBatch>("msbfs.frontier");
  frontier.assign_sources(n, sources);  // in-place: reuses the row buffer
  const int batch = frontier.batch;
  visited = frontier;
  auto& next = ws.slot<FrontierBatch>("msbfs.next");
  next.resize(n, batch);

  res.batch = batch;
  res.iterations = 0;
  res.levels.assign(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(batch),
      kUnreached);
  for (int b = 0; b < batch; ++b) {
    res.levels[static_cast<std::size_t>(sources[static_cast<std::size_t>(b)]) *
                   static_cast<std::size_t>(batch) +
               static_cast<std::size_t>(b)] = 0;
  }

  // Rows currently holding a live frontier word, and their tile-rows
  // (rebuilt per level; both stay frontier-proportional on the push
  // path).
  auto& frontier_rows = ws.slot<std::vector<vidx_t>>("msbfs.frontier_rows");
  frontier_rows.assign(sources.begin(), sources.end());
  std::sort(frontier_rows.begin(), frontier_rows.end());
  frontier_rows.erase(
      std::unique(frontier_rows.begin(), frontier_rows.end()),
      frontier_rows.end());
  auto& touched = ws.slot<std::vector<vidx_t>>("msbfs.touched");
  auto& active_tr = ws.slot<std::vector<vidx_t>>("msbfs.active_tr");
  touched.clear();
  const int dim = g.tile_dim();
  const vidx_t n_tile_rows = (n + dim - 1) / dim;

  std::int32_t level = 0;
  while (!frontier_rows.empty()) {
    // Level boundary: fault hook, then the cooperative-cancellation
    // poll — an expired wave stops here with the levels (and the
    // visited/reach matrix) it has scattered so far; res.iterations
    // counts completed levels only.
    ctx.check_kernel();
    if (ctx.cancelled()) return;
    ++level;
    touched.clear();
    // One batched expansion per level: every live frontier advances one
    // hop.  The pull forms consume A^T (vxm(f, A) == mxv(A^T, f)); the
    // push form consumes A itself and costs only the active tile-rows.
    active_tr.clear();
    if (ctx.backend == Backend::kBit) {
      for (const vidx_t v : frontier_rows) active_tr.push_back(v / dim);
      std::sort(active_tr.begin(), active_tr.end());
      active_tr.erase(std::unique(active_tr.begin(), active_tr.end()),
                      active_tr.end());
    }
    if (ctx.backend == Backend::kReference) {
      gb::ref_mxm_frontier_masked(ctx, g.adjacency_t(), frontier, visited,
                                  next);
      for (vidx_t v = 0; v < n; ++v) {
        if (next.rows[static_cast<std::size_t>(v)] != 0) touched.push_back(v);
      }
    } else if (use_push(active_tr.size(), n_tile_rows)) {
      KernelTimerScope timer(ctx.timer);
      dispatch_tile_dim(dim, [&]<int Dim>() {
        bmm_frontier_push_masked(g.packed().as<Dim>(), frontier, active_tr,
                                 visited, /*complement=*/true, next, touched);
        return 0;
      });
    } else {
      dispatch_tile_dim(dim, [&]<int Dim>() {
        gb::bit_mxm_frontier_masked<Dim>(ctx, g.packed_t().as<Dim>(), frontier,
                                         visited, next);
        return 0;
      });
      for (vidx_t v = 0; v < n; ++v) {
        if (next.rows[static_cast<std::size_t>(v)] != 0) touched.push_back(v);
      }
    }

    // Scatter the newly reached (vertex, lane) pairs, fold them into
    // visited, and rotate next into frontier — clearing only the rows
    // that are actually dirty, so a sparse level stays sparse-priced.
    for (const vidx_t v : frontier_rows) {
      frontier.rows[static_cast<std::size_t>(v)] = 0;
    }
    for (const vidx_t v : touched) {
      const FrontierBatch::word_t w = next.rows[static_cast<std::size_t>(v)];
      next.rows[static_cast<std::size_t>(v)] = 0;
      frontier.rows[static_cast<std::size_t>(v)] = w;
      visited.rows[static_cast<std::size_t>(v)] |= w;
      for_each_set_bit(w, [&](int b) {
        res.levels[static_cast<std::size_t>(v) *
                       static_cast<std::size_t>(batch) +
                   static_cast<std::size_t>(b)] = level;
      });
    }
    std::swap(frontier_rows, touched);
    if (!frontier_rows.empty()) res.iterations = level;
  }
}

}  // namespace

void msbfs(const Context& ctx, const gb::Graph& g, const MsBfsParams& params,
           Workspace& ws, MsBfsResult& out) {
  auto& visited = ws.slot<FrontierBatch>("msbfs.visited");
  run_msbfs(ctx, g, params.sources, ws, out, visited);
}

MsBfsResult msbfs(const Context& ctx, const gb::Graph& g,
                  const MsBfsParams& params) {
  Workspace ws;
  MsBfsResult out;
  msbfs(ctx, g, params, ws, out);
  return out;
}

const FrontierBatch& batched_reach(const Context& ctx, const gb::Graph& g,
                                   const std::vector<vidx_t>& sources,
                                   Workspace& ws) {
  auto& res = ws.slot<MsBfsResult>("msbfs.reach_res");
  auto& visited = ws.slot<FrontierBatch>("msbfs.visited");
  run_msbfs(ctx, g, sources, ws, res, visited);
  return visited;
}

FrontierBatch batched_reach(const Context& ctx, const gb::Graph& g,
                            const std::vector<vidx_t>& sources) {
  Workspace ws;
  return batched_reach(ctx, g, sources, ws);
}

void scatter_levels(const MsBfsResult& res, int b,
                    std::vector<std::int32_t>& out) {
  const auto batch = static_cast<std::size_t>(res.batch);
  const std::size_t n = batch == 0 ? 0 : res.levels.size() / batch;
  out.resize(n);
  const std::int32_t* col = res.levels.data() + static_cast<std::size_t>(b);
  for (std::size_t v = 0; v < n; ++v) out[v] = col[v * batch];
}

void scatter_reached(const FrontierBatch& reach, int b,
                     std::vector<std::uint8_t>& out) {
  const auto n = static_cast<std::size_t>(reach.n);
  out.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    out[v] = static_cast<std::uint8_t>(get_bit(reach.rows[v], b));
  }
}

std::vector<std::int32_t> msbfs_gold(const Csr& a,
                                     const std::vector<vidx_t>& sources) {
  const auto batch = sources.size();
  std::vector<std::int32_t> levels(static_cast<std::size_t>(a.nrows) * batch,
                                   kUnreached);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto col = bfs_gold(a, sources[b]);
    for (vidx_t v = 0; v < a.nrows; ++v) {
      levels[static_cast<std::size_t>(v) * batch + b] =
          col[static_cast<std::size_t>(v)];
    }
  }
  return levels;
}

}  // namespace bitgb::algo
