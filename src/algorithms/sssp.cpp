#include "algorithms/sssp.hpp"

#include "graphblas/ops.hpp"

#include <limits>

namespace bitgb::algo {

namespace {

constexpr value_t kInf = std::numeric_limits<value_t>::infinity();

template <typename MxvFn>
void sssp_loop(vidx_t n, vidx_t source, Workspace& ws, SsspResult& res,
               MxvFn&& relax) {
  res.dist.assign(static_cast<std::size_t>(n), kInf);
  res.dist[static_cast<std::size_t>(source)] = 0.0f;
  res.iterations = 0;

  auto& relaxed = ws.slot<std::vector<value_t>>("sssp.relaxed");
  for (vidx_t iter = 1; iter < n; ++iter) {
    relax(res.dist, relaxed);
    bool changed = false;
    for (std::size_t i = 0; i < res.dist.size(); ++i) {
      if (relaxed[i] < res.dist[i]) {
        res.dist[i] = relaxed[i];
        changed = true;
      }
    }
    res.iterations = static_cast<int>(iter);
    if (!changed) break;
  }
}

}  // namespace

void sssp(const Context& ctx, const gb::Graph& g, const SsspParams& params,
          Workspace& ws, SsspResult& out) {
  const vidx_t n = g.num_vertices();
  if (ctx.backend == Backend::kReference) {
    // GraphBLAST's min-plus semiring loads the stored edge weight per
    // nonzero; the faithful baseline does too (unit weights here).
    const Csr& a = g.unit_adjacency();
    sssp_loop(n, params.source, ws, out,
              [&](const std::vector<value_t>& d, std::vector<value_t>& y) {
                gb::ref_mxv_weighted<MinPlusOp>(ctx, a, d, y);
              });
    return;
  }
  dispatch_tile_dim(g.tile_dim(), [&]<int Dim>() {
    const auto& a = g.packed().as<Dim>();
    sssp_loop(n, params.source, ws, out,
              [&](const std::vector<value_t>& d, std::vector<value_t>& y) {
                gb::bit_mxv<Dim, MinPlusOp>(ctx, a, d, y);
              });
    return 0;
  });
}

SsspResult sssp(const Context& ctx, const gb::Graph& g,
                const SsspParams& params) {
  Workspace ws;
  SsspResult out;
  sssp(ctx, g, params, ws, out);
  return out;
}

std::vector<value_t> sssp_gold(const Csr& a, vidx_t source) {
  std::vector<value_t> dist(static_cast<std::size_t>(a.nrows), kInf);
  dist[static_cast<std::size_t>(source)] = 0.0f;
  bool changed = true;
  while (changed) {
    changed = false;
    for (vidx_t u = 0; u < a.nrows; ++u) {
      const value_t du = dist[static_cast<std::size_t>(u)];
      if (du == kInf) continue;
      for (const vidx_t v : a.row_cols(u)) {
        if (du + 1.0f < dist[static_cast<std::size_t>(v)]) {
          dist[static_cast<std::size_t>(v)] = du + 1.0f;
          changed = true;
        }
      }
    }
  }
  return dist;
}

}  // namespace bitgb::algo
