// Connected Components — FastSV over the tropical min semiring
// (paper §V, following GraphBLAST's adoption of the FastSV
// linear-algebraic CC algorithm of Zhang, Azad & Buluc).
//
// Each vertex carries a parent label f; per round:
//   1. mngf[u]  = min over neighbours v of gf[v]      (mxv, min)
//   2. stochastic hooking:  f[f[u]] <- min(f[f[u]], mngf[u])
//   3. aggressive hooking:  f[u]    <- min(f[u], mngf[u])
//   4. shortcutting:        f[u]    <- min(f[u], f[f[u]])
//   5. gf = f[f];  repeat until f stops changing.
//
// Labels are carried in the float vector the mxv operates on; float
// holds vertex ids exactly up to 2^24, far above the corpus sizes
// (enforced by an assert).
#pragma once

#include "algorithms/workspace.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"

#include <vector>

namespace bitgb::algo {

struct CcParams {};

struct CcResult {
  std::vector<vidx_t> component;  ///< min vertex id of each component
  int iterations = 0;
};

/// Zero-allocation form: scratch lives in `ws`, result buffers reuse
/// `out`'s capacity.
void connected_components(const Context& ctx, const gb::Graph& g,
                          const CcParams& params, Workspace& ws,
                          CcResult& out);

/// Convenience form (allocates internally).
[[nodiscard]] CcResult connected_components(const Context& ctx,
                                            const gb::Graph& g,
                                            const CcParams& params = {});

/// Union-find gold reference.
[[nodiscard]] std::vector<vidx_t> cc_gold(const Csr& a);

}  // namespace bitgb::algo
