#include "algorithms/bfs.hpp"

#include "graphblas/ops.hpp"

#include <deque>

namespace bitgb::algo {

namespace {

template <int Dim>
BfsResult bfs_bit(const gb::Graph& g, vidx_t source) {
  const auto& a = g.packed().as<Dim>();
  const auto& at = g.packed_t().as<Dim>();
  const vidx_t n = g.num_vertices();

  BfsResult res;
  res.levels.assign(static_cast<std::size_t>(n), kUnreached);
  res.levels[static_cast<std::size_t>(source)] = 0;

  PackedVecT<Dim> frontier(n);
  PackedVecT<Dim> visited(n);
  PackedVecT<Dim> next(n);
  frontier.set(source);
  visited.set(source);
  eidx_t frontier_count = 1;
  // Word indices where the frontier is non-zero: keeps a sparse level's
  // cost proportional to the frontier, not the matrix.
  std::vector<vidx_t> active = {source / Dim};
  std::vector<vidx_t> touched;

  std::int32_t level = 0;
  while (frontier_count > 0) {
    ++level;
    // Direction optimization, as in GraphBLAST: push (frontier-
    // proportional, active-list) while the frontier is sparse, pull
    // (full masked mxv over A^T) once it densifies.  Both apply the
    // visited mask at the output store (§V).
    // `next` is all-zero here: the scatter loop below clears every word
    // it reads, and the pull kernel rewrites the whole vector.
    const bool push = frontier_count < n / gb::kPushPullDenominator;
    touched.clear();
    if (push) {
      KernelTimerScope timer;
      bmv_bin_bin_bin_push_masked(a, frontier, active, visited,
                                  /*complement=*/true, next, touched);
    } else {
      gb::bit_vxm_bool_masked<Dim>(at, frontier, visited, next);
      for (std::size_t w = 0; w < next.words.size(); ++w) {
        if (next.words[w] != 0) touched.push_back(static_cast<vidx_t>(w));
      }
    }
    // Scatter levels, fold the new frontier into visited, and reset the
    // old frontier's words (only its active words are dirty).
    for (const vidx_t w : active) {
      frontier.words[static_cast<std::size_t>(w)] = 0;
    }
    frontier_count = 0;
    for (const vidx_t wi : touched) {
      const auto w = static_cast<std::size_t>(wi);
      const auto word = next.words[w];
      next.words[w] = 0;
      frontier.words[w] = word;
      frontier_count += popcount(word);
      visited.words[w] = static_cast<typename TileTraits<Dim>::word_t>(
          visited.words[w] | word);
      for_each_set_bit(word, [&](int j) {
        const auto v = w * Dim + static_cast<std::size_t>(j);
        res.levels[v] = level;
      });
    }
    std::swap(active, touched);
    if (frontier_count > 0) res.iterations = level;
  }
  return res;
}

BfsResult bfs_ref(const gb::Graph& g, vidx_t source) {
  const Csr& a = g.adjacency();
  const Csr& at = g.adjacency_t();
  const vidx_t n = g.num_vertices();

  BfsResult res;
  res.levels.assign(static_cast<std::size_t>(n), kUnreached);
  res.levels[static_cast<std::size_t>(source)] = 0;

  std::vector<std::uint8_t> visited(static_cast<std::size_t>(n), 0);
  visited[static_cast<std::size_t>(source)] = 1;
  std::vector<vidx_t> frontier = {source};

  std::int32_t level = 0;
  std::vector<std::uint8_t> frontier_dense;
  std::vector<std::uint8_t> next_dense;
  while (!frontier.empty()) {
    ++level;
    std::vector<vidx_t> next;
    if (static_cast<vidx_t>(frontier.size()) <
        n / gb::kPushPullDenominator) {
      // Push: sparse frontier through A's rows.
      next = gb::ref_vxm_bool_push(a, frontier, visited);
    } else {
      // Pull: dense scan of A^T rows with early exit.
      frontier_dense.assign(static_cast<std::size_t>(n), 0);
      for (const vidx_t u : frontier) {
        frontier_dense[static_cast<std::size_t>(u)] = 1;
      }
      gb::ref_vxm_bool_pull(at, frontier_dense, visited, next_dense);
      for (vidx_t v = 0; v < n; ++v) {
        if (next_dense[static_cast<std::size_t>(v)]) next.push_back(v);
      }
    }
    if (next.empty()) break;
    for (const vidx_t v : next) {
      visited[static_cast<std::size_t>(v)] = 1;
      res.levels[static_cast<std::size_t>(v)] = level;
    }
    frontier = std::move(next);
    res.iterations = level;
  }
  return res;
}

}  // namespace

BfsResult bfs(const gb::Graph& g, vidx_t source, gb::Backend backend) {
  if (backend == gb::Backend::kReference) return bfs_ref(g, source);
  return dispatch_tile_dim(g.tile_dim(), [&]<int Dim>() {
    return bfs_bit<Dim>(g, source);
  });
}

std::vector<std::int32_t> bfs_gold(const Csr& a, vidx_t source) {
  std::vector<std::int32_t> levels(static_cast<std::size_t>(a.nrows),
                                   kUnreached);
  levels[static_cast<std::size_t>(source)] = 0;
  std::deque<vidx_t> q = {source};
  while (!q.empty()) {
    const vidx_t u = q.front();
    q.pop_front();
    for (const vidx_t v : a.row_cols(u)) {
      if (levels[static_cast<std::size_t>(v)] == kUnreached) {
        levels[static_cast<std::size_t>(v)] =
            levels[static_cast<std::size_t>(u)] + 1;
        q.push_back(v);
      }
    }
  }
  return levels;
}

}  // namespace bitgb::algo
