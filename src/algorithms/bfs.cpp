#include "algorithms/bfs.hpp"

#include "graphblas/ops.hpp"

#include <deque>

namespace bitgb::algo {

namespace {

template <int Dim>
void bfs_bit(const Context& ctx, const gb::Graph& g, vidx_t source,
             Workspace& ws, BfsResult& res) {
  const auto& a = g.packed().as<Dim>();
  const auto& at = g.packed_t().as<Dim>();
  const vidx_t n = g.num_vertices();

  ctx.check_alloc();  // fault-injection hook at the sizing prologue
  res.levels.assign(static_cast<std::size_t>(n), kUnreached);
  res.levels[static_cast<std::size_t>(source)] = 0;
  res.iterations = 0;

  auto& frontier = ws.slot<PackedVecT<Dim>>("bfs.frontier");
  auto& visited = ws.slot<PackedVecT<Dim>>("bfs.visited");
  auto& next = ws.slot<PackedVecT<Dim>>("bfs.next");
  frontier.resize(n);
  visited.resize(n);
  next.resize(n);
  frontier.set(source);
  visited.set(source);
  eidx_t frontier_count = 1;
  // Word indices where the frontier is non-zero: keeps a sparse level's
  // cost proportional to the frontier, not the matrix.
  auto& active = ws.slot<std::vector<vidx_t>>("bfs.active");
  auto& touched = ws.slot<std::vector<vidx_t>>("bfs.touched");
  active.assign(1, source / Dim);
  touched.clear();

  std::int32_t level = 0;
  while (frontier_count > 0) {
    // Level boundary: the fault hook may throw, the cancellation poll
    // returns early with the levels scattered so far (a valid prefix —
    // res.iterations reflects completed levels only).
    ctx.check_kernel();
    if (ctx.cancelled()) return;
    ++level;
    // Direction optimization, as in GraphBLAST: push (frontier-
    // proportional, active-list) while the frontier is sparse, pull
    // (full masked mxv over A^T) once it densifies.  Both apply the
    // visited mask at the output store (§V).
    // `next` is all-zero here: the scatter loop below clears every word
    // it reads, and the pull kernel rewrites the whole vector.
    const bool push = frontier_count < n / gb::kPushPullDenominator;
    touched.clear();
    if (push) {
      KernelTimerScope timer(ctx.timer);
      bmv_bin_bin_bin_push_masked(a, frontier, active, visited,
                                  /*complement=*/true, next, touched);
    } else {
      gb::bit_vxm_bool_masked<Dim>(ctx, at, frontier, visited, next);
      for (std::size_t w = 0; w < next.words.size(); ++w) {
        if (next.words[w] != 0) touched.push_back(static_cast<vidx_t>(w));
      }
    }
    // Scatter levels, fold the new frontier into visited, and reset the
    // old frontier's words (only its active words are dirty).
    for (const vidx_t w : active) {
      frontier.words[static_cast<std::size_t>(w)] = 0;
    }
    frontier_count = 0;
    for (const vidx_t wi : touched) {
      const auto w = static_cast<std::size_t>(wi);
      const auto word = next.words[w];
      next.words[w] = 0;
      frontier.words[w] = word;
      frontier_count += popcount(word);
      visited.words[w] = static_cast<typename TileTraits<Dim>::word_t>(
          visited.words[w] | word);
      for_each_set_bit(word, [&](int j) {
        const auto v = w * Dim + static_cast<std::size_t>(j);
        res.levels[v] = level;
      });
    }
    std::swap(active, touched);
    if (frontier_count > 0) res.iterations = level;
  }
}

void bfs_ref(const Context& ctx, const gb::Graph& g, vidx_t source,
             Workspace& ws, BfsResult& res) {
  const Csr& a = g.adjacency();
  const Csr& at = g.adjacency_t();
  const vidx_t n = g.num_vertices();

  ctx.check_alloc();  // fault-injection hook at the sizing prologue
  res.levels.assign(static_cast<std::size_t>(n), kUnreached);
  res.levels[static_cast<std::size_t>(source)] = 0;
  res.iterations = 0;

  auto& visited = ws.slot<std::vector<std::uint8_t>>("bfs.ref.visited");
  visited.assign(static_cast<std::size_t>(n), 0);
  visited[static_cast<std::size_t>(source)] = 1;
  auto& frontier = ws.slot<std::vector<vidx_t>>("bfs.ref.frontier");
  frontier.assign(1, source);

  std::int32_t level = 0;
  auto& frontier_dense =
      ws.slot<std::vector<std::uint8_t>>("bfs.ref.frontier_dense");
  auto& next_dense = ws.slot<std::vector<std::uint8_t>>("bfs.ref.next_dense");
  auto& next = ws.slot<std::vector<vidx_t>>("bfs.ref.next");
  while (!frontier.empty()) {
    ctx.check_kernel();
    if (ctx.cancelled()) return;
    ++level;
    next.clear();
    if (static_cast<vidx_t>(frontier.size()) <
        n / gb::kPushPullDenominator) {
      // Push: sparse frontier through A's rows (out-param: the slot's
      // capacity survives the query loop).
      gb::ref_vxm_bool_push(ctx, a, frontier, visited, next);
    } else {
      // Pull: dense scan of A^T rows with early exit.
      frontier_dense.assign(static_cast<std::size_t>(n), 0);
      for (const vidx_t u : frontier) {
        frontier_dense[static_cast<std::size_t>(u)] = 1;
      }
      gb::ref_vxm_bool_pull(ctx, at, frontier_dense, visited, next_dense);
      for (vidx_t v = 0; v < n; ++v) {
        if (next_dense[static_cast<std::size_t>(v)]) next.push_back(v);
      }
    }
    if (next.empty()) break;
    for (const vidx_t v : next) {
      visited[static_cast<std::size_t>(v)] = 1;
      res.levels[static_cast<std::size_t>(v)] = level;
    }
    std::swap(frontier, next);
    res.iterations = level;
  }
}

}  // namespace

void bfs(const Context& ctx, const gb::Graph& g, const BfsParams& params,
         Workspace& ws, BfsResult& out) {
  if (ctx.backend == Backend::kReference) {
    bfs_ref(ctx, g, params.source, ws, out);
    return;
  }
  dispatch_tile_dim(g.tile_dim(), [&]<int Dim>() {
    bfs_bit<Dim>(ctx, g, params.source, ws, out);
    return 0;
  });
}

BfsResult bfs(const Context& ctx, const gb::Graph& g,
              const BfsParams& params) {
  Workspace ws;
  BfsResult out;
  bfs(ctx, g, params, ws, out);
  return out;
}

std::vector<std::int32_t> bfs_gold(const Csr& a, vidx_t source) {
  std::vector<std::int32_t> levels(static_cast<std::size_t>(a.nrows),
                                   kUnreached);
  levels[static_cast<std::size_t>(source)] = 0;
  std::deque<vidx_t> q = {source};
  while (!q.empty()) {
    const vidx_t u = q.front();
    q.pop_front();
    for (const vidx_t v : a.row_cols(u)) {
      if (levels[static_cast<std::size_t>(v)] == kUnreached) {
        levels[static_cast<std::size_t>(v)] =
            levels[static_cast<std::size_t>(u)] + 1;
        q.push_back(v);
      }
    }
  }
  return levels;
}

}  // namespace bitgb::algo
