#include "algorithms/batched_cc.hpp"

#include "algorithms/msbfs.hpp"

#include <limits>

namespace bitgb::algo {

void batched_cc(const Context& ctx, const gb::Graph& g,
                const BatchedCcParams& /*params*/, Workspace& ws,
                BatchedCcResult& res) {
  constexpr vidx_t kUnassigned = std::numeric_limits<vidx_t>::max();
  const vidx_t n = g.num_vertices();

  ctx.check_alloc();  // fault-injection hook at the sizing prologue
  res.component.assign(static_cast<std::size_t>(n), kUnassigned);
  res.waves = 0;

  auto& seeds = ws.slot<std::vector<vidx_t>>("bcc.seeds");
  vidx_t cursor = 0;  // every vertex below it is assigned or seeded
  while (cursor < n) {
    // Wave boundary: cancellation leaves a valid prefix — every vertex
    // labelled so far keeps its final component id, the rest stay
    // unassigned (the inner msbfs loop also polls per level).
    if (ctx.cancelled()) return;
    seeds.clear();
    while (cursor < n &&
           seeds.size() < static_cast<std::size_t>(FrontierBatch::kMaxBatch)) {
      if (res.component[static_cast<std::size_t>(cursor)] == kUnassigned) {
        seeds.push_back(cursor);
      }
      ++cursor;
    }
    if (seeds.empty()) break;

    // One batched_reach wave, run through the shared msbfs machinery
    // with this workspace's scratch; the returned reference stays valid
    // until the next wave reuses it, which is after the labelling loop.
    const FrontierBatch& reach = batched_reach(ctx, g, seeds, ws);
    // A token that fired inside the reach leaves it incomplete — the
    // lowest-set-lane rule below would then assign non-final labels, so
    // discard the wave and return the prefix of fully labelled waves.
    if (ctx.cancelled()) return;
    ++res.waves;
    for (vidx_t v = 0; v < n; ++v) {
      const FrontierBatch::word_t w = reach.rows[static_cast<std::size_t>(v)];
      if (w != 0 && res.component[static_cast<std::size_t>(v)] == kUnassigned) {
        // Seeds are ascending, so the lowest set lane is the smallest
        // seed reaching v — the component's minimum vertex id.
        res.component[static_cast<std::size_t>(v)] =
            seeds[static_cast<std::size_t>(ctz(w))];
      }
    }
  }
}

BatchedCcResult batched_cc(const Context& ctx, const gb::Graph& g,
                           const BatchedCcParams& params) {
  Workspace ws;
  BatchedCcResult out;
  batched_cc(ctx, g, params, ws, out);
  return out;
}

}  // namespace bitgb::algo
