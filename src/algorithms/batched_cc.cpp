#include "algorithms/batched_cc.hpp"

#include "algorithms/msbfs.hpp"

#include <limits>

namespace bitgb::algo {

BatchedCcResult batched_cc(const gb::Graph& g, gb::Backend backend) {
  constexpr vidx_t kUnassigned = std::numeric_limits<vidx_t>::max();
  const vidx_t n = g.num_vertices();

  BatchedCcResult res;
  res.component.assign(static_cast<std::size_t>(n), kUnassigned);

  std::vector<vidx_t> seeds;
  vidx_t cursor = 0;  // every vertex below it is assigned or seeded
  while (cursor < n) {
    seeds.clear();
    while (cursor < n &&
           seeds.size() < static_cast<std::size_t>(FrontierBatch::kMaxBatch)) {
      if (res.component[static_cast<std::size_t>(cursor)] == kUnassigned) {
        seeds.push_back(cursor);
      }
      ++cursor;
    }
    if (seeds.empty()) break;

    const FrontierBatch reach = batched_reach(g, seeds, backend);
    ++res.waves;
    for (vidx_t v = 0; v < n; ++v) {
      const FrontierBatch::word_t w = reach.rows[static_cast<std::size_t>(v)];
      if (w != 0 && res.component[static_cast<std::size_t>(v)] == kUnassigned) {
        // Seeds are ascending, so the lowest set lane is the smallest
        // seed reaching v — the component's minimum vertex id.
        res.component[static_cast<std::size_t>(v)] =
            seeds[static_cast<std::size_t>(ctz(w))];
      }
    }
  }
  return res;
}

}  // namespace bitgb::algo
