#include "algorithms/batched_cc.hpp"

#include "algorithms/msbfs.hpp"

#include <limits>

namespace bitgb::algo {

void batched_cc(const Context& ctx, const gb::Graph& g,
                const BatchedCcParams& /*params*/, Workspace& ws,
                BatchedCcResult& res) {
  constexpr vidx_t kUnassigned = std::numeric_limits<vidx_t>::max();
  const vidx_t n = g.num_vertices();

  res.component.assign(static_cast<std::size_t>(n), kUnassigned);
  res.waves = 0;

  auto& seeds = ws.slot<std::vector<vidx_t>>("bcc.seeds");
  vidx_t cursor = 0;  // every vertex below it is assigned or seeded
  while (cursor < n) {
    seeds.clear();
    while (cursor < n &&
           seeds.size() < static_cast<std::size_t>(FrontierBatch::kMaxBatch)) {
      if (res.component[static_cast<std::size_t>(cursor)] == kUnassigned) {
        seeds.push_back(cursor);
      }
      ++cursor;
    }
    if (seeds.empty()) break;

    // One batched_reach wave, run through the shared msbfs machinery
    // with this workspace's scratch; the returned reference stays valid
    // until the next wave reuses it, which is after the labelling loop.
    const FrontierBatch& reach = batched_reach(ctx, g, seeds, ws);
    ++res.waves;
    for (vidx_t v = 0; v < n; ++v) {
      const FrontierBatch::word_t w = reach.rows[static_cast<std::size_t>(v)];
      if (w != 0 && res.component[static_cast<std::size_t>(v)] == kUnassigned) {
        // Seeds are ascending, so the lowest set lane is the smallest
        // seed reaching v — the component's minimum vertex id.
        res.component[static_cast<std::size_t>(v)] =
            seeds[static_cast<std::size_t>(ctz(w))];
      }
    }
  }
}

BatchedCcResult batched_cc(const Context& ctx, const gb::Graph& g,
                           const BatchedCcParams& params) {
  Workspace ws;
  BatchedCcResult out;
  batched_cc(ctx, g, params, ws, out);
  return out;
}

}  // namespace bitgb::algo
