#include "algorithms/pagerank.hpp"

#include "graphblas/ops.hpp"

#include <cmath>

namespace bitgb::algo {

namespace {

// One PR iteration given y = A^T * (pr / outdeg): combine with the
// teleport and dangling terms.  Returns the L1 delta.
double combine_iteration(const std::vector<value_t>& y, value_t alpha,
                         value_t teleport, value_t dangling_mass,
                         std::vector<value_t>& pr) {
  double delta = 0.0;
  for (std::size_t i = 0; i < pr.size(); ++i) {
    const value_t next = teleport + alpha * (y[i] + dangling_mass);
    delta += std::abs(static_cast<double>(next - pr[i]));
    pr[i] = next;
  }
  return delta;
}

template <typename MxvFn>
void pagerank_loop(const Context& ctx, const gb::Graph& g,
                   const PageRankParams& opts, Workspace& ws,
                   PageRankResult& res, MxvFn&& mxv) {
  const vidx_t n = g.num_vertices();
  const auto& deg = g.degrees();

  ctx.check_alloc();  // fault-injection hook at the sizing prologue
  const value_t init = 1.0f / static_cast<value_t>(n);
  res.rank.assign(static_cast<std::size_t>(n), init);
  res.iterations = 0;
  const value_t teleport = (1.0f - opts.alpha) / static_cast<value_t>(n);

  auto& scaled = ws.slot<std::vector<value_t>>("pr.scaled");
  auto& y = ws.slot<std::vector<value_t>>("pr.y");
  scaled.assign(static_cast<std::size_t>(n), 0.0f);
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // Iteration boundary: the fault hook may throw; a fired cancel
    // token stops the power iteration with res.rank holding the last
    // completed iterate and res.iterations counting it — the "expired
    // query stops burning its budget" contract the serving batcher
    // relies on.
    ctx.check_kernel();
    if (ctx.cancelled()) return;
    // Pre-scale by out-degree (the v_out_degree divide) and collect the
    // dangling mass.  The sum runs in double: accumulating n float
    // terms of magnitude ~1/n in a float loses the tail once the
    // accumulator dwarfs the increments, and the lost mass shows up as
    // a convergence floor near epsilon on large dangling-heavy graphs.
    double dangling = 0.0;
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      if (deg[i] > 0) {
        scaled[i] = res.rank[i] / static_cast<value_t>(deg[i]);
      } else {
        scaled[i] = 0.0f;
        dangling += static_cast<double>(res.rank[i]);
      }
    }
    mxv(scaled, y);
    const double delta = combine_iteration(
        y, opts.alpha, teleport,
        static_cast<value_t>(dangling / static_cast<double>(n)), res.rank);
    res.iterations = iter + 1;
    if (delta < opts.epsilon) break;
  }
}

}  // namespace

void pagerank(const Context& ctx, const gb::Graph& g,
              const PageRankParams& params, Workspace& ws,
              PageRankResult& out) {
  if (ctx.backend == Backend::kReference) {
    // GraphBLAST's arithmetic semiring loads the stored float per
    // nonzero (the column-stochastic matrix's values); the faithful
    // baseline pays that traffic.
    const Csr& at = g.unit_adjacency_t();
    pagerank_loop(ctx, g, params, ws, out,
                  [&](const std::vector<value_t>& x, std::vector<value_t>& y) {
                    gb::ref_mxv_weighted<PlusTimesOp>(ctx, at, x, y);
                  });
    return;
  }
  dispatch_tile_dim(g.tile_dim(), [&]<int Dim>() {
    const auto& at = g.packed_t().as<Dim>();
    pagerank_loop(ctx, g, params, ws, out,
                  [&](const std::vector<value_t>& x, std::vector<value_t>& y) {
                    gb::bit_mxv<Dim, PlusTimesOp>(ctx, at, x, y);
                  });
    return 0;
  });
}

PageRankResult pagerank(const Context& ctx, const gb::Graph& g,
                        const PageRankParams& params) {
  Workspace ws;
  PageRankResult out;
  pagerank(ctx, g, params, ws, out);
  return out;
}

std::vector<value_t> pagerank_gold(const Csr& a, const PageRankParams& opts) {
  const vidx_t n = a.nrows;
  const Csr at = transpose(a);
  const auto deg = out_degrees(a);
  std::vector<value_t> pr(static_cast<std::size_t>(n),
                          1.0f / static_cast<value_t>(n));
  const value_t teleport = (1.0f - opts.alpha) / static_cast<value_t>(n);
  std::vector<value_t> scaled(static_cast<std::size_t>(n));
  for (int iter = 0; iter < opts.max_iterations; ++iter) {
    // Double accumulation, exactly as pagerank_loop above.
    double dangling = 0.0;
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      if (deg[i] > 0) {
        scaled[i] = pr[i] / static_cast<value_t>(deg[i]);
      } else {
        scaled[i] = 0.0f;
        dangling += static_cast<double>(pr[i]);
      }
    }
    const auto dangling_mass =
        static_cast<value_t>(dangling / static_cast<double>(n));
    std::vector<value_t> next(static_cast<std::size_t>(n));
    double delta = 0.0;
    for (vidx_t v = 0; v < n; ++v) {
      value_t acc = 0.0f;
      for (const vidx_t u : at.row_cols(v)) {
        acc += scaled[static_cast<std::size_t>(u)];
      }
      const value_t nv = teleport + opts.alpha * (acc + dangling_mass);
      delta += std::abs(
          static_cast<double>(nv - pr[static_cast<std::size_t>(v)]));
      next[static_cast<std::size_t>(v)] = nv;
    }
    pr = std::move(next);
    if (delta < opts.epsilon) break;
  }
  return pr;
}

}  // namespace bitgb::algo
