#include "algorithms/tc.hpp"

#include "baseline/csrgemm.hpp"
#include "core/pack.hpp"
#include "graphblas/ops.hpp"
#include "platform/timer.hpp"

#include <cmath>

namespace bitgb::algo {

void triangle_count(const Context& ctx, const gb::Graph& g,
                    const TcParams& /*params*/, Workspace& /*ws*/,
                    TcResult& out) {
  if (ctx.backend == Backend::kReference) {
    const Csr& l = g.lower();
    KernelTimerScope timer(ctx.timer);
    // sum((L * L^T) .* L) via the masked dot formulation.
    out.triangles = static_cast<std::int64_t>(
        std::llround(baseline::csrgemm_masked_sum(l, l, l, ctx.exec())));
    return;
  }
  // The L pack is a cached one-time conversion (paper §III-B amortizes
  // it over repeated use); only the masked BMM is the TC kernel.
  const B2srAny& lb = g.packed_lower();
  out.triangles = dispatch_tile_dim(g.tile_dim(), [&]<int Dim>() {
    return gb::bit_mxm_masked_sum<Dim>(ctx, lb.as<Dim>(), lb.as<Dim>(),
                                       lb.as<Dim>());
  });
}

std::int64_t triangle_count(const Context& ctx, const gb::Graph& g,
                            const TcParams& params) {
  Workspace ws;
  TcResult out;
  triangle_count(ctx, g, params, ws, out);
  return out.triangles;
}

std::int64_t tc_gold(const Csr& a) {
  // For every edge (u,v) with u > v, count common neighbours w < v:
  // each triangle u > v > w counted exactly once.
  std::int64_t count = 0;
  const Csr l = lower_triangle(a);
  for (vidx_t u = 0; u < l.nrows; ++u) {
    const auto ucols = l.row_cols(u);
    for (const vidx_t v : ucols) {
      const auto vcols = l.row_cols(v);
      // Sorted intersection of l.row(u) and l.row(v).
      std::size_t p = 0;
      std::size_t q = 0;
      while (p < ucols.size() && q < vcols.size()) {
        if (ucols[p] < vcols[q]) {
          ++p;
        } else if (vcols[q] < ucols[p]) {
          ++q;
        } else {
          ++count;
          ++p;
          ++q;
        }
      }
    }
  }
  return count;
}

}  // namespace bitgb::algo
