// Greedy graph coloring via independent-set peeling (paper Table IV's
// "GC" row: Boolean / max-times semiring domain).
//
// Jones–Plassmann style: repeatedly extract a maximal independent set
// of the still-uncolored subgraph and give it the next color.  Each
// round reuses the MIS machinery (max-times mxv); uncolored-subgraph
// restriction is expressed through the candidate mask rather than
// rebuilding the matrix.
#pragma once

#include "graphblas/graph.hpp"

#include <cstdint>
#include <vector>

namespace bitgb::algo {

struct ColoringResult {
  std::vector<std::int32_t> color;  ///< 0-based color per vertex
  int num_colors = 0;
};

[[nodiscard]] ColoringResult greedy_coloring(const gb::Graph& g,
                                             gb::Backend backend,
                                             std::uint64_t seed = 0);

/// True iff no edge connects two vertices of the same color and every
/// vertex is colored.
[[nodiscard]] bool is_valid_coloring(const Csr& a,
                                     const std::vector<std::int32_t>& color);

}  // namespace bitgb::algo
