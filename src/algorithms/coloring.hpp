// Greedy graph coloring via independent-set peeling (paper Table IV's
// "GC" row: Boolean / max-times semiring domain).
//
// Jones–Plassmann style: repeatedly extract a maximal independent set
// of the still-uncolored subgraph and give it the next color.  Each
// round reuses the MIS machinery (max-times mxv, priorities seeded
// from the Context's RNG seed); uncolored-subgraph restriction is
// expressed through the candidate mask rather than rebuilding the
// matrix.
#pragma once

#include "algorithms/workspace.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"

#include <cstdint>
#include <vector>

namespace bitgb::algo {

struct ColoringParams {};

struct ColoringResult {
  std::vector<std::int32_t> color;  ///< 0-based color per vertex
  int num_colors = 0;
};

/// Zero-allocation form: scratch lives in `ws`, result buffers reuse
/// `out`'s capacity.  Priorities derive from ctx.seed.
void greedy_coloring(const Context& ctx, const gb::Graph& g,
                     const ColoringParams& params, Workspace& ws,
                     ColoringResult& out);

/// Convenience form (allocates internally).
[[nodiscard]] ColoringResult greedy_coloring(const Context& ctx,
                                             const gb::Graph& g,
                                             const ColoringParams& params = {});

/// True iff no edge connects two vertices of the same color and every
/// vertex is colored.
[[nodiscard]] bool is_valid_coloring(const Csr& a,
                                     const std::vector<std::int32_t>& color);

}  // namespace bitgb::algo
