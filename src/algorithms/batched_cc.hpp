// Batched connected components — component labelling by waves of
// batched reachability.
//
// Instead of FastSV's per-vertex label propagation (cc.hpp), the batch
// engine labels up to 64 components per traversal: each wave seeds the
// 64 smallest still-unlabelled vertex ids, runs one batched_reach (a
// single BMM-swept msbfs), and labels every reached vertex with the
// smallest seed that reaches it.  Because seeds are taken in ascending
// id order and a wave labels the *entire* component of every seed, the
// smallest seed reaching a vertex is exactly the minimum vertex id of
// its component — the same normalization cc_gold and
// connected_components() produce, so all three agree bit-for-bit.
//
// On graphs with many components (road networks, block scatters) this
// amortizes one adjacency sweep per level across 64 component searches;
// a connected graph degenerates to one wave of one useful lane.
#pragma once

#include "algorithms/workspace.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"

#include <vector>

namespace bitgb::algo {

struct BatchedCcParams {};

struct BatchedCcResult {
  std::vector<vidx_t> component;  ///< min vertex id of each component
  int waves = 0;                  ///< batched_reach sweeps performed
};

/// Workspace form: scratch lives in `ws`, result buffers reuse `out`'s
/// capacity.
void batched_cc(const Context& ctx, const gb::Graph& g,
                const BatchedCcParams& params, Workspace& ws,
                BatchedCcResult& out);

/// Convenience form (allocates internally).
[[nodiscard]] BatchedCcResult batched_cc(const Context& ctx,
                                         const gb::Graph& g,
                                         const BatchedCcParams& params = {});

}  // namespace bitgb::algo
