// Graph persistence — Graph::save / Graph::load over the snapshot
// container (sparse/snapshot.hpp).
//
// save() persists the canonical CSR plus the requested format caches;
// load() is the warm-restart fast path: every persisted format lands
// directly in the Lazy cache (the once-lambdas skip recomputation for
// populated slots), so a loaded serving graph answers its first query
// without re-parsing text or re-packing B2SR.
//
// Loads are paranoid by design: the snapshot container has already
// proven magic/version/CRCs by the time this layer runs, and this layer
// adds the STRUCTURAL defenses — Csr/B2sr validate(), cross-format
// dimension and nnz agreement, degrees recomputation, and the content
// fingerprint — so a CRC-clean but logically inconsistent file can
// never become a serving graph.  Any failure throws SnapshotError and
// the partially built Graph is destroyed on unwind.
#include "graphblas/graph.hpp"

#include "core/tile_traits.hpp"
#include "sparse/csr.hpp"
#include "sparse/snapshot.hpp"

#include <cstring>
#include <string>
#include <utility>

namespace bitgb::gb {

namespace {

using snap::SectionId;
using snap::SnapshotError;

[[noreturn]] void invalid(const std::string& what) {
  throw SnapshotError(SnapshotError::Kind::kInvalidStructure, what);
}

void add_b2sr_sections(snap::SnapshotWriter& w, const B2srAny& m,
                       SectionId rowptr, SectionId colind, SectionId bits) {
  m.visit([&](const auto& b) {
    w.add_vector(rowptr, b.tile_rowptr);
    w.add_vector(colind, b.tile_colind);
    w.add_vector(bits, b.bits);
  });
}

/// Decode one persisted B2SR (all three sections must be present — the
/// writer emits trios, so a partial trio is corruption) and prove its
/// invariants before it may enter a cache.
B2srAny load_b2sr(const snap::Snapshot& s, SectionId rowptr, SectionId colind,
                  SectionId bits, vidx_t nrows, vidx_t ncols, eidx_t want_nnz,
                  const char* what) {
  const auto& h = s.header();
  if (h.tile_dim == 0) {
    throw SnapshotError(SnapshotError::Kind::kMalformed,
                        std::string(what) +
                            ": B2SR sections present but header tile_dim is 0");
  }
  return dispatch_tile_dim(static_cast<int>(h.tile_dim), [&]<int Dim>() {
    B2srT<Dim> b;
    b.nrows = nrows;
    b.ncols = ncols;
    b.tile_rowptr = s.vec<vidx_t>(rowptr);
    b.tile_colind = s.vec<vidx_t>(colind);
    using word_t = typename B2srT<Dim>::word_t;
    const auto sp = s.section(bits);
    if (sp.size() % sizeof(word_t) != 0) {
      throw SnapshotError(SnapshotError::Kind::kMalformed,
                          std::string(what) + ": bit store is not a whole "
                                              "number of tile words");
    }
    b.bits.resize(sp.size() / sizeof(word_t));
    if (!b.bits.empty()) std::memcpy(b.bits.data(), sp.data(), sp.size());
    if (!b.validate()) {
      invalid(std::string(what) + ": B2SR failed structural validation");
    }
    if (want_nnz >= 0 && b.nnz() != want_nnz) {
      invalid(std::string(what) + ": B2SR nonzero count disagrees with CSR");
    }
    return B2srAny(std::move(b));
  });
}

/// A persisted trio must be all-present or all-absent.
void require_trio(const snap::Snapshot& s, SectionId a, SectionId b,
                  SectionId c, const char* what) {
  const int present = int(s.has(a)) + int(s.has(b)) + int(s.has(c));
  if (present != 0 && present != 3) {
    throw SnapshotError(SnapshotError::Kind::kMalformed,
                        std::string(what) + ": partial B2SR section trio");
  }
}

void require_pair(const snap::Snapshot& s, SectionId a, SectionId b,
                  const char* what) {
  if (s.has(a) != s.has(b)) {
    throw SnapshotError(SnapshotError::Kind::kMalformed,
                        std::string(what) + ": partial CSR section pair");
  }
}

Csr load_csr_pair(const snap::Snapshot& s, SectionId rowptr, SectionId colind,
                  vidx_t nrows, vidx_t ncols, const char* what) {
  Csr a;
  a.nrows = nrows;
  a.ncols = ncols;
  a.rowptr = s.vec<vidx_t>(rowptr);
  a.colind = s.vec<vidx_t>(colind);
  if (!a.validate()) {
    invalid(std::string(what) + ": CSR failed structural validation");
  }
  return a;
}

}  // namespace

void Graph::save(const std::string& path, FormatSet want,
                 FaultInjector* fault) const {
  // The unit-valued copies re-derive in O(nnz) with no graph analysis;
  // persisting nnz floats to save that would bloat every snapshot.
  want &= ~(kFmtUnitCsr | kFmtUnitCsrT);
  prewarm(want);

  const bool any_b2sr =
      (want & (kFmtB2sr | kFmtB2srT | kFmtB2srLower)) != 0;
  snap::SnapshotHeader h;
  h.tile_dim = any_b2sr ? static_cast<std::uint32_t>(tile_dim())
                        : static_cast<std::uint32_t>(opts_.tile_dim);
  h.nrows = csr_.nrows;
  h.ncols = csr_.ncols;
  h.nnz = csr_.nnz();
  h.fingerprint = fingerprint();
  h.flags = (opts_.symmetrize ? snap::kFlagSymmetrized : 0u) |
            (opts_.strip_self_loops ? snap::kFlagLoopsStripped : 0u);

  snap::SnapshotWriter w(h);
  w.add_vector(SectionId::kCsrRowptr, csr_.rowptr);
  w.add_vector(SectionId::kCsrColind, csr_.colind);
  if ((want & kFmtCsrT) != 0) {
    const Csr& t = adjacency_t();
    w.add_vector(SectionId::kCsrTRowptr, t.rowptr);
    w.add_vector(SectionId::kCsrTColind, t.colind);
  }
  if ((want & kFmtLower) != 0) {
    const Csr& lo = lower();
    w.add_vector(SectionId::kLowerRowptr, lo.rowptr);
    w.add_vector(SectionId::kLowerColind, lo.colind);
  }
  if ((want & kFmtDegrees) != 0) {
    w.add_vector(SectionId::kDegrees, degrees());
  }
  if ((want & kFmtB2sr) != 0) {
    add_b2sr_sections(w, packed(), SectionId::kB2srRowptr,
                      SectionId::kB2srColind, SectionId::kB2srBits);
  }
  if ((want & kFmtB2srT) != 0) {
    add_b2sr_sections(w, packed_t(), SectionId::kB2srTRowptr,
                      SectionId::kB2srTColind, SectionId::kB2srTBits);
  }
  if ((want & kFmtB2srLower) != 0) {
    add_b2sr_sections(w, packed_lower(), SectionId::kB2srLowerRowptr,
                      SectionId::kB2srLowerColind, SectionId::kB2srLowerBits);
  }
  w.write_file(path, fault);
}

// Analysis opt-out, audited: load() fills the Lazy slots directly —
// the warm-restart seam — without taking the per-slot mutexes.  That is
// race-free because `g` is a local being constructed here; no second
// thread can hold a reference until load() returns.  "Unpublished
// object" is not a capability Thread Safety Analysis can see, so the
// seam opts out wholesale rather than sprinkling ten lock acquisitions
// over a single-threaded constructor path.
Graph Graph::load(const std::string& path) NO_THREAD_SAFETY_ANALYSIS {
  const snap::Snapshot s = snap::Snapshot::read_file(path);
  const auto& h = s.header();

  Graph g;
  g.opts_.symmetrize = (h.flags & snap::kFlagSymmetrized) != 0;
  g.opts_.strip_self_loops = (h.flags & snap::kFlagLoopsStripped) != 0;
  g.opts_.tile_dim = static_cast<int>(h.tile_dim);

  // Canonical adjacency: mandatory, validated, fingerprint-checked.
  Csr a = load_csr_pair(s, SectionId::kCsrRowptr, SectionId::kCsrColind,
                        h.nrows, h.ncols, "adjacency");
  if (a.nnz() != h.nnz) invalid("adjacency nnz disagrees with the header");
  if (snap::csr_fingerprint(a) != h.fingerprint) {
    invalid("content fingerprint disagrees with the header");
  }
  g.csr_ = std::move(a);

  Lazy& l = *g.lazy_;
  l.fp = h.fingerprint;
  FormatSet built = kFmtCsr;

  require_pair(s, SectionId::kCsrTRowptr, SectionId::kCsrTColind, "transpose");
  if (s.has(SectionId::kCsrTRowptr)) {
    Csr t = load_csr_pair(s, SectionId::kCsrTRowptr, SectionId::kCsrTColind,
                          h.ncols, h.nrows, "transpose");
    if (t.nnz() != h.nnz) invalid("transpose nnz disagrees with adjacency");
    l.csr_t = std::move(t);
    built |= kFmtCsrT;
  }

  require_pair(s, SectionId::kLowerRowptr, SectionId::kLowerColind, "lower");
  if (s.has(SectionId::kLowerRowptr)) {
    Csr lo = load_csr_pair(s, SectionId::kLowerRowptr, SectionId::kLowerColind,
                           h.nrows, h.ncols, "lower");
    if (lo.nnz() > h.nnz) invalid("lower triangle has more nonzeros than A");
    l.lower = std::move(lo);
    built |= kFmtLower;
  }

  if (s.has(SectionId::kDegrees)) {
    auto deg = s.vec<vidx_t>(SectionId::kDegrees);
    // Cheap to recompute, so verify instead of trusting: the persisted
    // vector must equal what the adjacency defines.
    if (deg != out_degrees(g.csr_)) {
      invalid("degree vector disagrees with the adjacency");
    }
    l.degrees = std::move(deg);
    built |= kFmtDegrees;
  }

  require_trio(s, SectionId::kB2srRowptr, SectionId::kB2srColind,
               SectionId::kB2srBits, "b2sr");
  if (s.has(SectionId::kB2srRowptr)) {
    l.b2sr = load_b2sr(s, SectionId::kB2srRowptr, SectionId::kB2srColind,
                       SectionId::kB2srBits, h.nrows, h.ncols, h.nnz, "b2sr");
    built |= kFmtB2sr;
  }
  require_trio(s, SectionId::kB2srTRowptr, SectionId::kB2srTColind,
               SectionId::kB2srTBits, "b2sr_t");
  if (s.has(SectionId::kB2srTRowptr)) {
    l.b2sr_t = load_b2sr(s, SectionId::kB2srTRowptr, SectionId::kB2srTColind,
                         SectionId::kB2srTBits, h.ncols, h.nrows, h.nnz,
                         "b2sr_t");
    built |= kFmtB2srT;
  }
  require_trio(s, SectionId::kB2srLowerRowptr, SectionId::kB2srLowerColind,
               SectionId::kB2srLowerBits, "b2sr_lower");
  if (s.has(SectionId::kB2srLowerRowptr)) {
    // L's nnz is only independently known when L itself rides along;
    // otherwise validate structure and bounds.
    const eidx_t lower_nnz = l.lower ? l.lower->nnz() : eidx_t{-1};
    l.b2sr_lower =
        load_b2sr(s, SectionId::kB2srLowerRowptr, SectionId::kB2srLowerColind,
                  SectionId::kB2srLowerBits, h.nrows, h.ncols, lower_nnz,
                  "b2sr_lower");
    if (lower_nnz < 0 && l.b2sr_lower->nnz() > h.nnz) {
      invalid("b2sr_lower has more nonzeros than A");
    }
    built |= kFmtB2srLower;
  }

  l.built.store(built, std::memory_order_release);
  return g;
}

}  // namespace bitgb::gb
