#include "graphblas/graph.hpp"

#include "core/pack.hpp"
#include "core/sampling.hpp"
#include "sparse/convert.hpp"

namespace bitgb::gb {

namespace {

int choose_tile_dim(const Csr& a, const GraphOptions& opts) {
  if (opts.tile_dim != 0) return opts.tile_dim;
  // The §III-C workflow: sample, estimate compression per dim, pick the
  // best.  Seed fixed for reproducibility.
  const SamplingProfile prof = sample_profile(a, opts.sample_rows, 0x5eed);
  return prof.recommended_dim();
}

}  // namespace

Graph Graph::from_coo(const Coo& edges, const GraphOptions& opts) {
  return from_csr(coo_to_csr(pattern_of(edges)), opts);
}

Graph Graph::from_csr(Csr adjacency, const GraphOptions& opts) {
  Graph g;
  adjacency.val.clear();  // homogeneous: pattern only
  if (opts.strip_self_loops) adjacency = strip_diagonal(adjacency);
  if (opts.symmetrize) adjacency = symmetrize(adjacency);
  g.tile_dim_ = choose_tile_dim(adjacency, opts);
  g.csr_ = std::move(adjacency);
  return g;
}

const Csr& Graph::adjacency_t() const {
  if (!csr_t_) csr_t_ = transpose(csr_);
  return *csr_t_;
}

const B2srAny& Graph::packed() const {
  if (!b2sr_) b2sr_ = pack_any(csr_, tile_dim_);
  return *b2sr_;
}

const B2srAny& Graph::packed_t() const {
  if (!b2sr_t_) b2sr_t_ = pack_any(adjacency_t(), tile_dim_);
  return *b2sr_t_;
}

const Csr& Graph::unit_adjacency() const {
  if (!unit_csr_) {
    Csr u = csr_;
    u.val.assign(static_cast<std::size_t>(u.nnz()), 1.0f);
    unit_csr_ = std::move(u);
  }
  return *unit_csr_;
}

const Csr& Graph::unit_adjacency_t() const {
  if (!unit_csr_t_) {
    Csr u = adjacency_t();
    u.val.assign(static_cast<std::size_t>(u.nnz()), 1.0f);
    unit_csr_t_ = std::move(u);
  }
  return *unit_csr_t_;
}

const Csr& Graph::lower() const {
  if (!lower_) lower_ = lower_triangle(csr_);
  return *lower_;
}

const B2srAny& Graph::packed_lower() const {
  if (!b2sr_lower_) b2sr_lower_ = pack_any(lower(), tile_dim_);
  return *b2sr_lower_;
}

const std::vector<vidx_t>& Graph::degrees() const {
  if (!degrees_) degrees_ = out_degrees(csr_);
  return *degrees_;
}

}  // namespace bitgb::gb
