#include "graphblas/graph.hpp"

#include "core/pack.hpp"
#include "core/sampling.hpp"
#include "sparse/convert.hpp"
#include "sparse/snapshot.hpp"

namespace bitgb::gb {

namespace {

/// Private `built` bits for the two lazily-decided scalars that are not
/// public formats.  They live above bit 8 (kFmtDegrees) and are masked
/// out of formats().
constexpr FormatSet kBuiltTileDim = 1u << 30;
constexpr FormatSet kBuiltFingerprint = 1u << 31;
constexpr FormatSet kPublicFormatMask = kAllFormats;

/// The one audited escape for the whole lazy cache: double-checked
/// publication.  The fast path reads `built` with acquire order and, on
/// a set bit, reads the slot with NO lock — safe because the slot was
/// fully constructed before the release fetch_or that set the bit, and
/// is immutable afterwards.  Thread Safety Analysis cannot express
/// "guarded until published, lock-free after", so the helper opts out;
/// every slot access in this translation unit funnels through here.
///
/// A build() that throws leaves the slot empty and the bit clear — the
/// next caller retries, matching the std::call_once semantics this
/// replaces (without TSan's pthread_once exceptional-retry deadlock).
template <typename T, typename Build>
const T& materialize(std::atomic<FormatSet>& built, FormatSet bit,
                     Mutex& mu, std::optional<T>& slot,
                     Build&& build) NO_THREAD_SAFETY_ANALYSIS {
  if ((built.load(std::memory_order_acquire) & bit) == 0) {
    const MutexLock lk(mu);
    // Relaxed is enough under the mutex: the lock orders us after any
    // prior critical section that set the bit.
    if ((built.load(std::memory_order_relaxed) & bit) == 0) {
      if (!slot) slot.emplace(build());
      built.fetch_or(bit, std::memory_order_release);
    }
  }
  return *slot;
}

}  // namespace

Graph Graph::from_coo(const Coo& edges, const GraphOptions& opts) {
  return from_csr(coo_to_csr(pattern_of(edges)), opts);
}

Graph Graph::from_csr(Csr adjacency, const GraphOptions& opts) {
  Graph g;
  adjacency.val.clear();  // homogeneous: pattern only
  if (opts.strip_self_loops) adjacency = strip_diagonal(adjacency);
  if (opts.symmetrize) adjacency = symmetrize(adjacency);
  g.csr_ = std::move(adjacency);
  g.opts_ = opts;
  return g;
}

int Graph::tile_dim() const {
  Lazy& l = *lazy_;
  return materialize(l.built, kBuiltTileDim, l.dim_mu, l.tile_dim, [&] {
    if (opts_.tile_dim != 0) return opts_.tile_dim;
    // The §III-C workflow, run at the first B2SR-side request rather
    // than at construction: sample, estimate compression per dim, pick
    // the best.  Seeded from GraphOptions for reproducibility.
    const SamplingProfile prof =
        sample_profile(csr_, opts_.sample_rows, opts_.sample_seed);
    return prof.recommended_dim();
  });
}

const Csr& Graph::adjacency_t() const {
  Lazy& l = *lazy_;
  return materialize(l.built, kFmtCsrT, l.csr_t_mu, l.csr_t,
                     [&] { return transpose(csr_); });
}

const B2srAny& Graph::packed() const {
  Lazy& l = *lazy_;
  return materialize(l.built, kFmtB2sr, l.b2sr_mu, l.b2sr, [&] {
    return pack_any(csr_, tile_dim(), opts_.ingest);
  });
}

const B2srAny& Graph::packed_t() const {
  Lazy& l = *lazy_;
  return materialize(l.built, kFmtB2srT, l.b2sr_t_mu, l.b2sr_t, [&] {
    return pack_any(adjacency_t(), tile_dim(), opts_.ingest);
  });
}

const Csr& Graph::unit_adjacency() const {
  Lazy& l = *lazy_;
  return materialize(l.built, kFmtUnitCsr, l.unit_mu, l.unit_csr, [&] {
    Csr u = csr_;
    u.val.assign(static_cast<std::size_t>(u.nnz()), 1.0f);
    return u;
  });
}

const Csr& Graph::unit_adjacency_t() const {
  Lazy& l = *lazy_;
  return materialize(l.built, kFmtUnitCsrT, l.unit_t_mu, l.unit_csr_t, [&] {
    Csr u = adjacency_t();
    u.val.assign(static_cast<std::size_t>(u.nnz()), 1.0f);
    return u;
  });
}

const Csr& Graph::lower() const {
  Lazy& l = *lazy_;
  return materialize(l.built, kFmtLower, l.lower_mu, l.lower,
                     [&] { return lower_triangle(csr_); });
}

const B2srAny& Graph::packed_lower() const {
  Lazy& l = *lazy_;
  return materialize(l.built, kFmtB2srLower, l.b2sr_lower_mu, l.b2sr_lower,
                     [&] {
                       return pack_any(lower(), tile_dim(), opts_.ingest);
                     });
}

const std::vector<vidx_t>& Graph::degrees() const {
  Lazy& l = *lazy_;
  return materialize(l.built, kFmtDegrees, l.degrees_mu, l.degrees,
                     [&] { return out_degrees(csr_); });
}

FormatSet Graph::formats() const {
  // Mask the private tile-dim / fingerprint bits: they are publication
  // state, not formats.
  return lazy_->built.load(std::memory_order_acquire) & kPublicFormatMask;
}

void Graph::prewarm(FormatSet want) const {
  if (want & kFmtCsrT) (void)adjacency_t();
  if (want & kFmtUnitCsr) (void)unit_adjacency();
  if (want & kFmtUnitCsrT) (void)unit_adjacency_t();
  if (want & kFmtLower) (void)lower();
  if (want & kFmtB2sr) (void)packed();
  if (want & kFmtB2srT) (void)packed_t();
  if (want & kFmtB2srLower) (void)packed_lower();
  if (want & kFmtDegrees) (void)degrees();
}

std::uint64_t Graph::fingerprint() const {
  Lazy& l = *lazy_;
  return materialize(l.built, kBuiltFingerprint, l.fp_mu, l.fp,
                     [&] { return snap::csr_fingerprint(csr_); });
}

Graph Graph::clone() const {
  Graph g;
  g.csr_ = csr_;
  g.opts_ = opts_;
  return g;
}

}  // namespace bitgb::gb
