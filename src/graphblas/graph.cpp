#include "graphblas/graph.hpp"

#include "core/pack.hpp"
#include "core/sampling.hpp"
#include "sparse/convert.hpp"
#include "sparse/snapshot.hpp"

namespace bitgb::gb {

Graph Graph::from_coo(const Coo& edges, const GraphOptions& opts) {
  return from_csr(coo_to_csr(pattern_of(edges)), opts);
}

Graph Graph::from_csr(Csr adjacency, const GraphOptions& opts) {
  Graph g;
  adjacency.val.clear();  // homogeneous: pattern only
  if (opts.strip_self_loops) adjacency = strip_diagonal(adjacency);
  if (opts.symmetrize) adjacency = symmetrize(adjacency);
  g.csr_ = std::move(adjacency);
  g.opts_ = opts;
  return g;
}

int Graph::tile_dim() const {
  Lazy& l = *lazy_;
  std::call_once(l.dim_once, [&] {
    if (opts_.tile_dim != 0) {
      l.tile_dim = opts_.tile_dim;
      return;
    }
    // The §III-C workflow, run at the first B2SR-side request rather
    // than at construction: sample, estimate compression per dim, pick
    // the best.  Seeded from GraphOptions for reproducibility.
    const SamplingProfile prof =
        sample_profile(csr_, opts_.sample_rows, opts_.sample_seed);
    l.tile_dim = prof.recommended_dim();
  });
  return l.tile_dim;
}

const Csr& Graph::adjacency_t() const {
  Lazy& l = *lazy_;
  std::call_once(l.csr_t_once, [&] {
    if (!l.csr_t) l.csr_t = transpose(csr_);
    l.built.fetch_or(kFmtCsrT, std::memory_order_release);
  });
  return *l.csr_t;
}

const B2srAny& Graph::packed() const {
  Lazy& l = *lazy_;
  std::call_once(l.b2sr_once, [&] {
    if (!l.b2sr) l.b2sr = pack_any(csr_, tile_dim(), opts_.ingest);
    l.built.fetch_or(kFmtB2sr, std::memory_order_release);
  });
  return *l.b2sr;
}

const B2srAny& Graph::packed_t() const {
  Lazy& l = *lazy_;
  std::call_once(l.b2sr_t_once, [&] {
    if (!l.b2sr_t) l.b2sr_t = pack_any(adjacency_t(), tile_dim(), opts_.ingest);
    l.built.fetch_or(kFmtB2srT, std::memory_order_release);
  });
  return *l.b2sr_t;
}

const Csr& Graph::unit_adjacency() const {
  Lazy& l = *lazy_;
  std::call_once(l.unit_once, [&] {
    Csr u = csr_;
    u.val.assign(static_cast<std::size_t>(u.nnz()), 1.0f);
    l.unit_csr = std::move(u);
    l.built.fetch_or(kFmtUnitCsr, std::memory_order_release);
  });
  return *l.unit_csr;
}

const Csr& Graph::unit_adjacency_t() const {
  Lazy& l = *lazy_;
  std::call_once(l.unit_t_once, [&] {
    Csr u = adjacency_t();
    u.val.assign(static_cast<std::size_t>(u.nnz()), 1.0f);
    l.unit_csr_t = std::move(u);
    l.built.fetch_or(kFmtUnitCsrT, std::memory_order_release);
  });
  return *l.unit_csr_t;
}

const Csr& Graph::lower() const {
  Lazy& l = *lazy_;
  std::call_once(l.lower_once, [&] {
    if (!l.lower) l.lower = lower_triangle(csr_);
    l.built.fetch_or(kFmtLower, std::memory_order_release);
  });
  return *l.lower;
}

const B2srAny& Graph::packed_lower() const {
  Lazy& l = *lazy_;
  std::call_once(l.b2sr_lower_once, [&] {
    if (!l.b2sr_lower) l.b2sr_lower = pack_any(lower(), tile_dim(), opts_.ingest);
    l.built.fetch_or(kFmtB2srLower, std::memory_order_release);
  });
  return *l.b2sr_lower;
}

const std::vector<vidx_t>& Graph::degrees() const {
  Lazy& l = *lazy_;
  std::call_once(l.degrees_once, [&] {
    if (!l.degrees) l.degrees = out_degrees(csr_);
    l.built.fetch_or(kFmtDegrees, std::memory_order_release);
  });
  return *l.degrees;
}

FormatSet Graph::formats() const {
  return lazy_->built.load(std::memory_order_acquire);
}

void Graph::prewarm(FormatSet want) const {
  if (want & kFmtCsrT) (void)adjacency_t();
  if (want & kFmtUnitCsr) (void)unit_adjacency();
  if (want & kFmtUnitCsrT) (void)unit_adjacency_t();
  if (want & kFmtLower) (void)lower();
  if (want & kFmtB2sr) (void)packed();
  if (want & kFmtB2srT) (void)packed_t();
  if (want & kFmtB2srLower) (void)packed_lower();
  if (want & kFmtDegrees) (void)degrees();
}

std::uint64_t Graph::fingerprint() const {
  Lazy& l = *lazy_;
  std::call_once(l.fp_once, [&] {
    if (!l.fp) l.fp = snap::csr_fingerprint(csr_);
  });
  return *l.fp;
}

Graph Graph::clone() const {
  Graph g;
  g.csr_ = csr_;
  g.opts_ = opts_;
  return g;
}

}  // namespace bitgb::gb
