// GraphBLAS operations for both backends.
//
// Every operation takes the caller's Context first — the execution
// descriptor (platform/context.hpp) carrying the kernel variant, the
// thread budget and the optional kernel-time sink.  Nothing here reads
// process-global state, so operations issued from different threads
// with different Contexts never interfere.
//
// The reference backend is the GraphBLAST substitute: float-CSR
// semiring mxv/vxm with masks, a sparse (push) and dense (pull) boolean
// frontier pair with direction optimization, and early exit inside the
// masked pull — the optimizations §II credits GraphBLAST with
// ("exploiting input and output sparsity" / push-pull).
//
// The bit backend routes to the B2SR kernels of src/core; masking is
// applied at the output store (no early exit — the paper's §V design
// choice, because consecutive rows of a tile-row share a warp).
//
// Every operation contributes to the Context's kernel-time sink (when
// set), which is how the bench harness splits "algorithm" from
// "kernel" time in Tables VII/VIII.
#pragma once

#include "core/bmv.hpp"
#include "core/bmm.hpp"
#include "core/frontier_batch.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/timer.hpp"

#include <cstdint>
#include <vector>

namespace bitgb::gb {

// ---------------------------------------------------------------------
// Reference (GraphBLAST-substitute) backend
// ---------------------------------------------------------------------

/// Dense semiring mxv over binary CSR: y[i] = reduce_{j in adj(i)}
/// map(x[j]); rows with no neighbours get Op::identity.
template <typename Op>
void ref_mxv(const Context& ctx, const Csr& a, const std::vector<value_t>& x,
             std::vector<value_t>& y) {
  KernelTimerScope timer(ctx.timer);
  y.assign(static_cast<std::size_t>(a.nrows), Op::identity);
  parallel_for(ctx.threads, vidx_t{0}, a.nrows, [&](vidx_t r) {
    value_t acc = Op::identity;
    for (const vidx_t c : a.row_cols(r)) {
      acc = Op::reduce(acc, Op::map(x[static_cast<std::size_t>(c)]));
    }
    y[static_cast<std::size_t>(r)] = acc;
  });
}

/// Dense semiring mxv over *weighted* CSR: the faithful GraphBLAST
/// behaviour for arithmetic/min-plus semirings, which load one stored
/// float per nonzero (`a` must carry values; a unit-valued copy of a
/// binary adjacency gives identical results with the baseline's real
/// memory traffic).
template <typename Op>
void ref_mxv_weighted(const Context& ctx, const Csr& a,
                      const std::vector<value_t>& x,
                      std::vector<value_t>& y) {
  KernelTimerScope timer(ctx.timer);
  y.assign(static_cast<std::size_t>(a.nrows), Op::identity);
  parallel_for(ctx.threads, vidx_t{0}, a.nrows, [&](vidx_t r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    value_t acc = Op::identity;
    for (std::size_t i = 0; i < cols.size(); ++i) {
      acc = Op::reduce(
          acc, Op::combine(vals[i], x[static_cast<std::size_t>(cols[i])]));
    }
    y[static_cast<std::size_t>(r)] = acc;
  });
}

/// Masked dense semiring mxv; positions failing the mask keep their
/// previous y (y pre-sized by caller).  mask is a dense 0/1 byte vector.
template <typename Op>
void ref_mxv_masked(const Context& ctx, const Csr& a,
                    const std::vector<value_t>& x,
                    const std::vector<std::uint8_t>& mask, bool complement,
                    std::vector<value_t>& y) {
  KernelTimerScope timer(ctx.timer);
  parallel_for(ctx.threads, vidx_t{0}, a.nrows, [&](vidx_t r) {
    const bool pass =
        (mask[static_cast<std::size_t>(r)] != 0) != complement;
    if (!pass) return;  // GraphBLAST-style early exit on the mask
    value_t acc = Op::identity;
    for (const vidx_t c : a.row_cols(r)) {
      acc = Op::reduce(acc, Op::map(x[static_cast<std::size_t>(c)]));
    }
    y[static_cast<std::size_t>(r)] = acc;
  });
}

/// Boolean vxm, push direction: expand a sparse frontier through A's
/// rows, drop visited vertices, produce the new frontier (sorted,
/// deduplicated) into `next` — an out-parameter so steady-state BFS
/// loops reuse its capacity.  visited is a dense 0/1 byte vector.
void ref_vxm_bool_push(const Context& ctx, const Csr& a,
                       const std::vector<vidx_t>& frontier,
                       const std::vector<std::uint8_t>& visited,
                       std::vector<vidx_t>& next);

/// Convenience returning form.
[[nodiscard]] std::vector<vidx_t> ref_vxm_bool_push(
    const Context& ctx, const Csr& a, const std::vector<vidx_t>& frontier,
    const std::vector<std::uint8_t>& visited);

/// Boolean vxm, pull direction: for every unvisited vertex, scan its
/// in-neighbours (rows of A^T) and stop at the first frontier member
/// (early exit).  frontier_dense is 0/1 per vertex; out likewise.
void ref_vxm_bool_pull(const Context& ctx, const Csr& at,
                       const std::vector<std::uint8_t>& frontier_dense,
                       const std::vector<std::uint8_t>& visited,
                       std::vector<std::uint8_t>& out);

/// Direction-optimization threshold: push while |frontier| < n / this.
inline constexpr vidx_t kPushPullDenominator = 32;

/// Batched Boolean frontier expansion, reference backend: one masked
/// dense pull per bit-column of the batch (the GraphBLAST-substitute
/// serves concurrent traversals as independent mxv sweeps — the very
/// N-sweeps cost the bit backend's single BMM sweep amortizes away).
/// `at` is the matrix whose rows are scanned: pass A^T for the vxm-style
/// frontier expansion, exactly as ref_vxm_bool_pull does.  Per column b:
/// next(r, b) = 1 iff visited(r, b) == 0 and some in-neighbour of r is
/// in frontier b (early exit on the first hit, GraphBLAST pull style).
void ref_mxm_frontier_masked(const Context& ctx, const Csr& at,
                             const FrontierBatch& f,
                             const FrontierBatch& visited,
                             FrontierBatch& next);

// ---------------------------------------------------------------------
// Bit (B2SR) backend — thin instrumented wrappers over src/core
// ---------------------------------------------------------------------

template <int Dim>
void bit_vxm_bool_masked(const Context& ctx, const B2srT<Dim>& at,
                         const PackedVecT<Dim>& frontier,
                         const PackedVecT<Dim>& visited,
                         PackedVecT<Dim>& next) {
  KernelTimerScope timer(ctx.timer);
  // vxm(f, A) == mxv(A^T, f); mask = complement(visited).
  bmv_bin_bin_bin_masked(at, frontier, visited, /*complement=*/true, next,
                         ctx.exec());
}

/// Push-direction bit vxm: work proportional to the frontier's tiles.
/// Takes A itself (vxm selects A's rows); pairs with the pull form
/// above for GraphBLAST-style direction optimization.
template <int Dim>
void bit_vxm_bool_masked_push(const Context& ctx, const B2srT<Dim>& a,
                              const PackedVecT<Dim>& frontier,
                              const PackedVecT<Dim>& visited,
                              PackedVecT<Dim>& next) {
  KernelTimerScope timer(ctx.timer);
  bmv_bin_bin_bin_push_masked(a, frontier, visited, /*complement=*/true,
                              next, ctx.exec());
}

template <int Dim, typename Op>
void bit_mxv(const Context& ctx, const B2srT<Dim>& a,
             const std::vector<value_t>& x, std::vector<value_t>& y) {
  KernelTimerScope timer(ctx.timer);
  bmv_bin_full_full<Dim, Op>(a, x, y, ctx.exec());
}

template <int Dim, typename Op>
void bit_mxv_masked(const Context& ctx, const B2srT<Dim>& a,
                    const std::vector<value_t>& x,
                    const PackedVecT<Dim>& mask, bool complement,
                    std::vector<value_t>& y) {
  KernelTimerScope timer(ctx.timer);
  bmv_bin_full_full_masked<Dim, Op>(a, x, mask, complement, y, ctx.exec());
}

template <int Dim>
[[nodiscard]] std::int64_t bit_mxm_masked_sum(const Context& ctx,
                                              const B2srT<Dim>& a,
                                              const B2srT<Dim>& b,
                                              const B2srT<Dim>& mask) {
  KernelTimerScope timer(ctx.timer);
  return bmm_bin_bin_sum_masked(a, b, mask, ctx.exec());
}

/// Batched Boolean frontier expansion, bit backend: ONE BMM sweep over
/// the B2SR tiles of A^T expands all <= 64 frontiers of the batch at
/// once — next = (A^T (.) F) & ~visited, the visited complement AND-ed
/// at the output store (§V masking, lifted to the batch).
template <int Dim>
void bit_mxm_frontier_masked(const Context& ctx, const B2srT<Dim>& at,
                             const FrontierBatch& f,
                             const FrontierBatch& visited,
                             FrontierBatch& next) {
  KernelTimerScope timer(ctx.timer);
  bmm_frontier_masked(at, f, visited, /*complement=*/true, next, ctx.exec());
}

}  // namespace bitgb::gb
