// Semiring catalogue — paper Table IV.
//
// | semiring           | domain      | algorithms        | scheme        |
// |--------------------|-------------|-------------------|---------------|
// | Boolean            | {0,1}       | BFS, diameter,    | bin-bin-bin   |
// |                    |             | MIS, GC           |               |
// | Arithmetic         | R           | LGC, PR, TC       | bin-full-full |
// |                    |             |                   | / bin-bin-full|
// | Tropical min-plus  | R ∪ {+inf}  | SSSP, CC          | bin-full-full |
// | Tropical max-times | R           | MIS, GC           | bin-full-full |
//
// The operator bundles themselves live in core/semiring_ops.hpp (the
// bit kernels are generic over them); this header names them at the
// GraphBLAS level and records which BMV scheme serves each.
#pragma once

#include "core/semiring_ops.hpp"

namespace bitgb::gb {

enum class Semiring {
  kBoolean,        ///< OR-AND over {0,1}
  kArithmetic,     ///< (+, x) over R
  kMinPlus,        ///< tropical (min, +)
  kMaxTimes,       ///< tropical (max, x)
};

[[nodiscard]] constexpr const char* semiring_name(Semiring s) {
  switch (s) {
    case Semiring::kBoolean: return "boolean";
    case Semiring::kArithmetic: return "arithmetic";
    case Semiring::kMinPlus: return "min-plus";
    case Semiring::kMaxTimes: return "max-times";
  }
  return "?";
}

/// BMV scheme Table IV assigns to each semiring.
[[nodiscard]] constexpr const char* semiring_scheme(Semiring s) {
  switch (s) {
    case Semiring::kBoolean: return "bmv_bin_bin_bin";
    case Semiring::kArithmetic: return "bmv_bin_full_full";
    case Semiring::kMinPlus: return "bmv_bin_full_full";
    case Semiring::kMaxTimes: return "bmv_bin_full_full";
  }
  return "?";
}

}  // namespace bitgb::gb
