// Graph — the public-facing handle of the library.
//
// Owns the adjacency matrix in every representation the two execution
// backends need:
//   * binary CSR (and its cached transpose) for the reference backend
//     (the GraphBLAST-substitute baseline) and for packing;
//   * B2SR (and its cached transpose) for the bit backend, at a tile
//     size chosen explicitly or by the sampling profiler (paper §III-C).
//
// Construction symmetrizes and strips self-loops by default — the
// homogeneous-graph preconditions of the paper's algorithms — both
// switchable for directed uses (PR uses the directed adjacency).
#pragma once

#include "core/b2sr.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

#include <cstdint>
#include <optional>

namespace bitgb::gb {

enum class Backend {
  kReference,  ///< float-CSR framework baseline (GraphBLAST substitute)
  kBit,        ///< B2SR bit kernels (this paper)
};

[[nodiscard]] constexpr const char* backend_name(Backend b) {
  return b == Backend::kReference ? "reference-csr" : "bit-b2sr";
}

struct GraphOptions {
  bool symmetrize = true;      ///< undirected adjacency (BFS/SSSP/CC/TC)
  bool strip_self_loops = true;
  int tile_dim = 0;            ///< 4/8/16/32, or 0 = pick via sampling
  vidx_t sample_rows = 256;    ///< Algorithm-1 sample size when tile_dim==0
};

class Graph {
 public:
  /// Build from an edge list (values, if any, are dropped: homogeneous).
  [[nodiscard]] static Graph from_coo(const Coo& edges,
                                      const GraphOptions& opts = {});

  /// Build from an existing binary CSR (takes a copy).
  [[nodiscard]] static Graph from_csr(Csr adjacency,
                                      const GraphOptions& opts = {});

  [[nodiscard]] vidx_t num_vertices() const { return csr_.nrows; }
  [[nodiscard]] eidx_t num_edges() const { return csr_.nnz(); }
  [[nodiscard]] int tile_dim() const { return tile_dim_; }

  /// Binary adjacency, CSR.
  [[nodiscard]] const Csr& adjacency() const { return csr_; }
  /// Transposed adjacency (cached on first use).
  [[nodiscard]] const Csr& adjacency_t() const;
  /// Unit-valued (1.0f per nonzero) copies, cached — what the float-CSR
  /// framework baseline actually stores and reads for the value-loading
  /// semirings (SSSP/PR), per §III-B: frameworks "use float to carry
  /// the elements".
  [[nodiscard]] const Csr& unit_adjacency() const;
  [[nodiscard]] const Csr& unit_adjacency_t() const;
  /// B2SR-packed adjacency (cached on first use).
  [[nodiscard]] const B2srAny& packed() const;
  /// B2SR of the transpose (cached on first use).
  [[nodiscard]] const B2srAny& packed_t() const;

  /// Strict lower triangle L (cached) — the TC operand (paper §V).
  [[nodiscard]] const Csr& lower() const;
  /// B2SR of L (cached; the one-time conversion the paper amortizes).
  [[nodiscard]] const B2srAny& packed_lower() const;

  /// Out-degrees (the PR auxiliary vector, paper §V).
  [[nodiscard]] const std::vector<vidx_t>& degrees() const;

 private:
  Csr csr_;
  int tile_dim_ = 32;
  mutable std::optional<Csr> csr_t_;
  mutable std::optional<Csr> unit_csr_;
  mutable std::optional<Csr> unit_csr_t_;
  mutable std::optional<Csr> lower_;
  mutable std::optional<B2srAny> b2sr_;
  mutable std::optional<B2srAny> b2sr_t_;
  mutable std::optional<B2srAny> b2sr_lower_;
  mutable std::optional<std::vector<vidx_t>> degrees_;
};

}  // namespace bitgb::gb
