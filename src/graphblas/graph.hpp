// Graph — the public-facing handle of the library: a lazy, thread-safe
// multi-format view of one adjacency matrix.
//
// Construction stores only the binary CSR (symmetrized and self-loop-
// stripped by default — the homogeneous-graph preconditions of the
// paper's algorithms; both switchable, PR uses the directed adjacency).
// Every other representation materializes on first use under a per-slot
// mutex with double-checked atomic publication (see materialize() in
// graph.cpp) and is immutable afterwards, so any number of concurrent
// queries can share one const Graph:
//
//   * CSR transpose and unit-valued (1.0f per nonzero) copies for the
//     reference backend (the GraphBLAST-substitute baseline reads one
//     stored float per nonzero for the value-loading semirings, §III-B);
//   * B2SR and transposed B2SR for the bit backend, at a tile size
//     chosen explicitly or — on the first B2SR request, not at
//     construction — by the sampling profiler (paper §III-C);
//   * the strict lower triangle and its B2SR for TC (paper §V), and
//     the out-degree vector for PR.
//
// formats() reports which representations exist; prewarm() materializes
// a chosen set eagerly, so a server can pay the one-time conversions
// (the cost the paper amortizes, §III-B) before queries arrive instead
// of on the first query's critical path.
#pragma once

#include "core/b2sr.hpp"
#include "platform/context.hpp"
#include "platform/exec.hpp"
#include "platform/thread_annotations.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

namespace bitgb::gb {

using bitgb::Backend;       // historical spelling gb::Backend
using bitgb::backend_name;  // NOLINT(misc-unused-using-decls)

/// The materializable representations, as prewarm()/formats() bits.
enum Format : std::uint32_t {
  kFmtCsr = 1u << 0,        ///< binary CSR (always present)
  kFmtCsrT = 1u << 1,       ///< transposed CSR
  kFmtUnitCsr = 1u << 2,    ///< unit-valued CSR
  kFmtUnitCsrT = 1u << 3,   ///< unit-valued transposed CSR
  kFmtLower = 1u << 4,      ///< strict lower triangle L
  kFmtB2sr = 1u << 5,       ///< B2SR of the adjacency
  kFmtB2srT = 1u << 6,      ///< B2SR of the transpose
  kFmtB2srLower = 1u << 7,  ///< B2SR of L
  kFmtDegrees = 1u << 8,    ///< out-degree vector
};

using FormatSet = std::uint32_t;

/// Everything the reference backend reads.
inline constexpr FormatSet kReferenceFormats =
    kFmtCsr | kFmtCsrT | kFmtUnitCsr | kFmtUnitCsrT | kFmtLower | kFmtDegrees;
/// Everything the bit backend reads.
inline constexpr FormatSet kBitFormats =
    kFmtCsr | kFmtCsrT | kFmtB2sr | kFmtB2srT | kFmtLower | kFmtB2srLower |
    kFmtDegrees;
inline constexpr FormatSet kAllFormats = kReferenceFormats | kBitFormats;

struct GraphOptions {
  bool symmetrize = true;      ///< undirected adjacency (BFS/SSSP/CC/TC)
  bool strip_self_loops = true;
  int tile_dim = 0;            ///< 4/8/16/32, or 0 = pick via sampling
  vidx_t sample_rows = 256;    ///< Algorithm-1 sample size when tile_dim==0
  std::uint64_t sample_seed = 0x5eed;  ///< sampling RNG seed
  /// Execution policy for format materialization (packing, transposes):
  /// the ingest side of the handle, distinct from any query's Context.
  Exec ingest{};
};

class Graph {
 public:
  /// Build from an edge list (values, if any, are dropped: homogeneous).
  [[nodiscard]] static Graph from_coo(const Coo& edges,
                                      const GraphOptions& opts = {});

  /// Build from an existing binary CSR (takes a copy).
  [[nodiscard]] static Graph from_csr(Csr adjacency,
                                      const GraphOptions& opts = {});

  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;
  Graph(const Graph&) = delete;
  Graph& operator=(const Graph&) = delete;

  [[nodiscard]] vidx_t num_vertices() const { return csr_.nrows; }
  [[nodiscard]] eidx_t num_edges() const { return csr_.nnz(); }

  /// The B2SR tile size.  Decided lazily: the first caller runs the
  /// §III-C sampling advisor (unless GraphOptions pinned a dim), so a
  /// reference-only workload never pays for sampling.
  [[nodiscard]] int tile_dim() const;

  /// Binary adjacency, CSR (always materialized).
  [[nodiscard]] const Csr& adjacency() const { return csr_; }
  /// Transposed adjacency (thread-safe, cached on first use — as are
  /// all accessors below).
  [[nodiscard]] const Csr& adjacency_t() const;
  /// Unit-valued (1.0f per nonzero) copies — what the float-CSR
  /// framework baseline actually stores and reads for the value-loading
  /// semirings (SSSP/PR), per §III-B: frameworks "use float to carry
  /// the elements".
  [[nodiscard]] const Csr& unit_adjacency() const;
  [[nodiscard]] const Csr& unit_adjacency_t() const;
  /// B2SR-packed adjacency.
  [[nodiscard]] const B2srAny& packed() const;
  /// B2SR of the transpose.
  [[nodiscard]] const B2srAny& packed_t() const;

  /// Strict lower triangle L — the TC operand (paper §V).
  [[nodiscard]] const Csr& lower() const;
  /// B2SR of L (the one-time conversion the paper amortizes).
  [[nodiscard]] const B2srAny& packed_lower() const;

  /// Out-degrees (the PR auxiliary vector, paper §V).
  [[nodiscard]] const std::vector<vidx_t>& degrees() const;

  /// Which formats are materialized right now (kFmtCsr always set).
  /// Safe to call concurrently with materialization.
  [[nodiscard]] FormatSet formats() const;

  /// Materialize every format in `want` now, off the query path — the
  /// server-side warm-up (kReferenceFormats / kBitFormats /
  /// kAllFormats, or any combination of Format bits).
  void prewarm(FormatSet want) const;

  /// Deep copy (Graphs are move-only; copying a handle is almost always
  /// a mistake, so it is spelled out).  Caches restart cold.
  [[nodiscard]] Graph clone() const;

  /// 64-bit content fingerprint of the canonical adjacency pattern
  /// (cached after the first call).  Equal fingerprints serve
  /// bit-identical queries: snapshots persist it as an integrity
  /// double-check and GraphRegistry::add keys its re-add dedup on it.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Persist this graph as one checksummed snapshot file
  /// (sparse/snapshot.hpp): the canonical CSR plus every format in
  /// `want`, prewarmed first if absent — so a snapshot taken from a
  /// serving registry carries the expensive caches with it.  The
  /// unit-valued CSR copies are never persisted (trivially derived:
  /// 1.0f per nonzero; they re-materialize lazily).  Written
  /// crash-consistently (temp file + fsync + atomic rename); `fault`
  /// threads the FaultInjector io_* knobs through every physical
  /// write.  Throws snap::SnapshotError(kIo) on failure.
  void save(const std::string& path, FormatSet want = kBitFormats,
            FaultInjector* fault = nullptr) const;

  /// Rebuild a Graph from a snapshot: no text re-parse, no re-pack, no
  /// re-prewarm — every persisted format lands directly in the lazy
  /// cache (formats() reports it immediately) and is validate()d, with
  /// cross-format consistency (dims, nnz, fingerprint) checked on top.
  /// Throws snap::SnapshotError (bad magic / truncation / CRC mismatch
  /// / version skew / structural failure); NEVER returns a partially
  /// loaded graph.
  [[nodiscard]] static Graph load(const std::string& path);

 private:
  Graph() = default;

  /// The lazily-materialized cache state, heap-held so the handle stays
  /// movable (mutexes pin their address).  Each slot pairs a Mutex with
  /// an optional: materialization takes the slot's mutex, then
  /// publishes by setting the slot's bit in `built` with release order
  /// so the lock-free fast path (acquire load of `built`) may read the
  /// slot without the lock.  The mutexes are per-slot — mirroring the
  /// per-slot once_flags they replaced — because dependent
  /// materializations (packed needs tile_dim, packed_t/unit_t need
  /// adjacency_t, packed_lower needs lower) lock the dependency's slot
  /// while holding their own; one cache-wide mutex would self-deadlock.
  /// (The once_flags also had to go for a second reason: TSan's
  /// pthread_once interceptor deadlocks on exceptional retry, the same
  /// hazard that shaped GraphSlot's component memo.)
  struct Lazy {
    Mutex dim_mu, csr_t_mu, unit_mu, unit_t_mu, lower_mu, b2sr_mu, b2sr_t_mu,
        b2sr_lower_mu, degrees_mu, fp_mu;
    /// Publication word: public Format bits plus the private tile-dim /
    /// fingerprint bits defined in graph.cpp (masked out of formats()).
    std::atomic<FormatSet> built{kFmtCsr};
    // The optionals double as the load() seam: Graph::load fills them
    // directly (snapshot sections, already validated) before the handle
    // is visible to any second thread, and materialize() skips
    // recomputation for populated slots.
    std::optional<int> tile_dim GUARDED_BY(dim_mu);
    std::optional<Csr> csr_t GUARDED_BY(csr_t_mu);
    std::optional<Csr> unit_csr GUARDED_BY(unit_mu);
    std::optional<Csr> unit_csr_t GUARDED_BY(unit_t_mu);
    std::optional<Csr> lower GUARDED_BY(lower_mu);
    std::optional<B2srAny> b2sr GUARDED_BY(b2sr_mu);
    std::optional<B2srAny> b2sr_t GUARDED_BY(b2sr_t_mu);
    std::optional<B2srAny> b2sr_lower GUARDED_BY(b2sr_lower_mu);
    std::optional<std::vector<vidx_t>> degrees GUARDED_BY(degrees_mu);
    std::optional<std::uint64_t> fp GUARDED_BY(fp_mu);
  };

  Csr csr_;
  GraphOptions opts_{};
  std::unique_ptr<Lazy> lazy_ = std::make_unique<Lazy>();
};

}  // namespace bitgb::gb
