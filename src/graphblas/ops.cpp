#include "graphblas/ops.hpp"

#include <algorithm>

namespace bitgb::gb {

void ref_vxm_bool_push(const Context& ctx, const Csr& a,
                       const std::vector<vidx_t>& frontier,
                       const std::vector<std::uint8_t>& visited,
                       std::vector<vidx_t>& next) {
  KernelTimerScope timer(ctx.timer);
  next.clear();
  for (const vidx_t u : frontier) {
    for (const vidx_t v : a.row_cols(u)) {
      if (!visited[static_cast<std::size_t>(v)]) next.push_back(v);
    }
  }
  std::sort(next.begin(), next.end());
  next.erase(std::unique(next.begin(), next.end()), next.end());
}

std::vector<vidx_t> ref_vxm_bool_push(const Context& ctx, const Csr& a,
                                      const std::vector<vidx_t>& frontier,
                                      const std::vector<std::uint8_t>& visited) {
  std::vector<vidx_t> next;
  ref_vxm_bool_push(ctx, a, frontier, visited, next);
  return next;
}

void ref_vxm_bool_pull(const Context& ctx, const Csr& at,
                       const std::vector<std::uint8_t>& frontier_dense,
                       const std::vector<std::uint8_t>& visited,
                       std::vector<std::uint8_t>& out) {
  KernelTimerScope timer(ctx.timer);
  out.assign(static_cast<std::size_t>(at.nrows), 0);
  parallel_for(ctx.threads, vidx_t{0}, at.nrows, [&](vidx_t v) {
    if (visited[static_cast<std::size_t>(v)]) return;  // early exit on mask
    for (const vidx_t u : at.row_cols(v)) {
      if (frontier_dense[static_cast<std::size_t>(u)]) {
        out[static_cast<std::size_t>(v)] = 1;
        break;  // early exit on first reaching in-neighbour
      }
    }
  });
}

void ref_mxm_frontier_masked(const Context& ctx, const Csr& at,
                             const FrontierBatch& f,
                             const FrontierBatch& visited,
                             FrontierBatch& next) {
  KernelTimerScope timer(ctx.timer);
  next.resize(at.nrows, f.batch);
  // Column loop: the reference framework has no bit-parallel lanes, so
  // each frontier of the batch is its own masked dense pull over A^T.
  for (int b = 0; b < f.batch; ++b) {
    const FrontierBatch::word_t bit = FrontierBatch::word_t{1} << b;
    parallel_for(ctx.threads, vidx_t{0}, at.nrows, [&](vidx_t v) {
      if ((visited.rows[static_cast<std::size_t>(v)] & bit) != 0) {
        return;  // early exit on the mask (GraphBLAST pull style)
      }
      for (const vidx_t u : at.row_cols(v)) {
        if ((f.rows[static_cast<std::size_t>(u)] & bit) != 0) {
          // Row-parallel within one serial column: no write race.
          next.rows[static_cast<std::size_t>(v)] |= bit;
          break;  // early exit on first reaching in-neighbour
        }
      }
    });
  }
}

}  // namespace bitgb::gb
