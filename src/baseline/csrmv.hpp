// Full-precision CSR SpMV — the cusparseScsrmv() substitute.
//
// This is the baseline every BMV speedup in Figures 6/7 is measured
// against: y = A*x with A in CSR carrying one 32-bit float per nonzero.
// Binary matrices are given unit values before benchmarking, exactly as
// the compared GPU frameworks "use float to carry the elements" (§III-B).
// Parallelized row-wise (one row range per thread ≙ the row-split
// csrmv of cuSPARSE) under the caller's Exec thread budget.
#pragma once

#include "platform/exec.hpp"
#include "sparse/csr.hpp"

#include <vector>

namespace bitgb::baseline {

/// y = A * x (plus-times).  A binary A is treated as all-ones.
/// Preconditions: x.size() == A.ncols; y is resized to A.nrows.
void csrmv(const Csr& a, const std::vector<value_t>& x,
           std::vector<value_t>& y, Exec exec = {});

/// y = alpha * A * x + beta * y (the full cusparseScsrmv signature).
void csrmv_axpby(const Csr& a, value_t alpha, const std::vector<value_t>& x,
                 value_t beta, std::vector<value_t>& y, Exec exec = {});

}  // namespace bitgb::baseline
