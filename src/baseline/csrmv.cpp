#include "baseline/csrmv.hpp"

#include "platform/parallel.hpp"

#include <cassert>

namespace bitgb::baseline {

void csrmv(const Csr& a, const std::vector<value_t>& x,
           std::vector<value_t>& y, Exec exec) {
  assert(static_cast<vidx_t>(x.size()) == a.ncols);
  y.assign(static_cast<std::size_t>(a.nrows), 0.0f);
  const bool weighted = !a.val.empty();
  const vidx_t* rowptr = a.rowptr.data();
  const vidx_t* colind = a.colind.data();
  const value_t* val = a.val.data();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  // Value captures only (see parallel.hpp on closure escape) — this is
  // the comparison baseline, so it must not carry avoidable overhead.
  parallel_for(exec.threads, vidx_t{0}, a.nrows, [=](vidx_t r) {
    const auto lo = rowptr[static_cast<std::size_t>(r)];
    const auto hi = rowptr[static_cast<std::size_t>(r) + 1];
    value_t acc = 0.0f;
    for (vidx_t k = lo; k < hi; ++k) {
      const auto i = static_cast<std::size_t>(k);
      const value_t av = weighted ? val[i] : 1.0f;
      acc += av * xp[static_cast<std::size_t>(colind[i])];
    }
    yp[static_cast<std::size_t>(r)] = acc;
  });
}

void csrmv_axpby(const Csr& a, value_t alpha, const std::vector<value_t>& x,
                 value_t beta, std::vector<value_t>& y, Exec exec) {
  assert(static_cast<vidx_t>(x.size()) == a.ncols);
  assert(static_cast<vidx_t>(y.size()) == a.nrows);
  const bool weighted = !a.val.empty();
  const vidx_t* rowptr = a.rowptr.data();
  const vidx_t* colind = a.colind.data();
  const value_t* val = a.val.data();
  const value_t* xp = x.data();
  value_t* yp = y.data();
  parallel_for(exec.threads, vidx_t{0}, a.nrows, [=](vidx_t r) {
    const auto lo = rowptr[static_cast<std::size_t>(r)];
    const auto hi = rowptr[static_cast<std::size_t>(r) + 1];
    value_t acc = 0.0f;
    for (vidx_t k = lo; k < hi; ++k) {
      const auto i = static_cast<std::size_t>(k);
      const value_t av = weighted ? val[i] : 1.0f;
      acc += av * xp[static_cast<std::size_t>(colind[i])];
    }
    value_t& dst = yp[static_cast<std::size_t>(r)];
    dst = alpha * acc + beta * dst;
  });
}

}  // namespace bitgb::baseline
