#include "baseline/csrmv.hpp"

#include "platform/parallel.hpp"

#include <cassert>

namespace bitgb::baseline {

void csrmv(const Csr& a, const std::vector<value_t>& x,
           std::vector<value_t>& y) {
  assert(static_cast<vidx_t>(x.size()) == a.ncols);
  y.assign(static_cast<std::size_t>(a.nrows), 0.0f);
  const bool weighted = !a.val.empty();
  parallel_for(vidx_t{0}, a.nrows, [&](vidx_t r) {
    const auto lo = a.rowptr[static_cast<std::size_t>(r)];
    const auto hi = a.rowptr[static_cast<std::size_t>(r) + 1];
    value_t acc = 0.0f;
    for (vidx_t k = lo; k < hi; ++k) {
      const auto i = static_cast<std::size_t>(k);
      const value_t av = weighted ? a.val[i] : 1.0f;
      acc += av * x[static_cast<std::size_t>(a.colind[i])];
    }
    y[static_cast<std::size_t>(r)] = acc;
  });
}

void csrmv_axpby(const Csr& a, value_t alpha, const std::vector<value_t>& x,
                 value_t beta, std::vector<value_t>& y) {
  assert(static_cast<vidx_t>(x.size()) == a.ncols);
  assert(static_cast<vidx_t>(y.size()) == a.nrows);
  const bool weighted = !a.val.empty();
  parallel_for(vidx_t{0}, a.nrows, [&](vidx_t r) {
    const auto lo = a.rowptr[static_cast<std::size_t>(r)];
    const auto hi = a.rowptr[static_cast<std::size_t>(r) + 1];
    value_t acc = 0.0f;
    for (vidx_t k = lo; k < hi; ++k) {
      const auto i = static_cast<std::size_t>(k);
      const value_t av = weighted ? a.val[i] : 1.0f;
      acc += av * x[static_cast<std::size_t>(a.colind[i])];
    }
    auto& dst = y[static_cast<std::size_t>(r)];
    dst = alpha * acc + beta * dst;
  });
}

}  // namespace bitgb::baseline
