// Full-precision CSR SpGEMM — the cusparseScsrgemm() substitute.
//
// C = A * B with float values (binary inputs treated as all-ones),
// computed row-by-row with Gustavson's algorithm and a sparse
// accumulator, parallelized over rows.  This is the baseline for the
// Figure 6d/7d BMM comparison and for the GraphBLAST-style TC baseline.
#pragma once

#include "platform/exec.hpp"
#include "sparse/csr.hpp"

namespace bitgb::baseline {

/// C = A * B (plus-times).  Requires a.ncols == b.nrows.
[[nodiscard]] Csr csrgemm(const Csr& a, const Csr& b, Exec exec = {});

/// Masked sum: sum over entries (i,j) in mask of (A*B)(i,j) — the
/// GraphBLAST-style triangle-counting reduction sum(L .* (L*L^T)).
/// `b` is accessed row-wise; pass B = L^T for the TC use.
[[nodiscard]] double csrgemm_masked_sum(const Csr& a, const Csr& b,
                                        const Csr& mask, Exec exec = {});

}  // namespace bitgb::baseline
