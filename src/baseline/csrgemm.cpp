#include "baseline/csrgemm.hpp"

#include "platform/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <utility>
#include <vector>

namespace bitgb::baseline {

namespace {

// Per-thread sparse accumulator (Gustavson SPA) with a generation marker
// so it is cleared in O(touched) instead of O(ncols) per row.
struct Spa {
  std::vector<value_t> acc;
  std::vector<int> mark;
  std::vector<vidx_t> touched;
  int gen = 0;

  void ensure(vidx_t ncols) {
    if (acc.size() < static_cast<std::size_t>(ncols)) {
      acc.assign(static_cast<std::size_t>(ncols), 0.0f);
      mark.assign(static_cast<std::size_t>(ncols), -1);
    }
  }
};

thread_local Spa tls_spa;

}  // namespace

Csr csrgemm(const Csr& a, const Csr& b, Exec exec) {
  assert(a.ncols == b.nrows);
  const bool aw = !a.val.empty();
  const bool bw = !b.val.empty();

  std::vector<std::vector<std::pair<vidx_t, value_t>>> rows(
      static_cast<std::size_t>(a.nrows));

  parallel_for(exec.threads, vidx_t{0}, a.nrows, [&](vidx_t r) {
    Spa& spa = tls_spa;
    spa.ensure(b.ncols);
    const int g = ++spa.gen;
    spa.touched.clear();

    const auto alo = a.rowptr[static_cast<std::size_t>(r)];
    const auto ahi = a.rowptr[static_cast<std::size_t>(r) + 1];
    for (vidx_t ka = alo; ka < ahi; ++ka) {
      const auto ia = static_cast<std::size_t>(ka);
      const vidx_t j = a.colind[ia];
      const value_t av = aw ? a.val[ia] : 1.0f;
      const auto blo = b.rowptr[static_cast<std::size_t>(j)];
      const auto bhi = b.rowptr[static_cast<std::size_t>(j) + 1];
      for (vidx_t kb = blo; kb < bhi; ++kb) {
        const auto ib = static_cast<std::size_t>(kb);
        const vidx_t c = b.colind[ib];
        const value_t bv = bw ? b.val[ib] : 1.0f;
        const auto ci = static_cast<std::size_t>(c);
        if (spa.mark[ci] != g) {
          spa.mark[ci] = g;
          spa.acc[ci] = 0.0f;
          spa.touched.push_back(c);
        }
        spa.acc[ci] += av * bv;
      }
    }
    std::sort(spa.touched.begin(), spa.touched.end());
    auto& out = rows[static_cast<std::size_t>(r)];
    out.reserve(spa.touched.size());
    for (const vidx_t c : spa.touched) {
      out.emplace_back(c, spa.acc[static_cast<std::size_t>(c)]);
    }
  });

  Csr c;
  c.nrows = a.nrows;
  c.ncols = b.ncols;
  c.rowptr.assign(static_cast<std::size_t>(a.nrows) + 1, 0);
  std::size_t total = 0;
  for (const auto& row : rows) total += row.size();
  c.colind.reserve(total);
  c.val.reserve(total);
  for (vidx_t r = 0; r < a.nrows; ++r) {
    for (const auto& [col, v] : rows[static_cast<std::size_t>(r)]) {
      c.colind.push_back(col);
      c.val.push_back(v);
    }
    c.rowptr[static_cast<std::size_t>(r) + 1] =
        static_cast<vidx_t>(c.colind.size());
  }
  return c;
}

double csrgemm_masked_sum(const Csr& a, const Csr& b, const Csr& mask,
                          Exec exec) {
  assert(a.ncols == b.ncols);  // dot formulation: C(i,j) = A(i,:) . B(j,:)
  assert(mask.nrows == a.nrows && mask.ncols == b.nrows);
  const bool aw = !a.val.empty();
  const bool bw = !b.val.empty();

  std::vector<double> partial(static_cast<std::size_t>(a.nrows), 0.0);
  parallel_for(exec.threads, vidx_t{0}, mask.nrows, [&](vidx_t i) {
    double s = 0.0;
    const auto mcols = mask.row_cols(i);
    const auto acols = a.row_cols(i);
    const auto avals = a.row_vals(i);
    for (const vidx_t j : mcols) {
      const auto bcols = b.row_cols(j);
      const auto bvals = b.row_vals(j);
      // Sorted-merge dot product of row i of A with row j of B.
      std::size_t p = 0;
      std::size_t q = 0;
      while (p < acols.size() && q < bcols.size()) {
        if (acols[p] < bcols[q]) {
          ++p;
        } else if (bcols[q] < acols[p]) {
          ++q;
        } else {
          const value_t av = aw ? avals[p] : 1.0f;
          const value_t bv = bw ? bvals[q] : 1.0f;
          s += static_cast<double>(av) * static_cast<double>(bv);
          ++p;
          ++q;
        }
      }
    }
    partial[static_cast<std::size_t>(i)] = s;
  });
  double sum = 0.0;
  for (const double s : partial) sum += s;
  return sum;
}

}  // namespace bitgb::baseline
