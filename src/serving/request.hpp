// Serving request/reply types — the admission-side vocabulary of the
// query server (the "frame" half of Gunrock's frame/enactor split: what
// a request is, is independent of how a worker executes it).
//
// A Request is one single-source traversal query (BFS levels or
// reachability) with an optional deadline; a Reply carries the result
// plus the serving telemetry (status, how long it queued, how wide the
// msbfs wave it rode was).  Results travel through std::future — the
// submitting thread keeps the future, the worker that executes the
// query fulfills the promise, and shed requests are fulfilled
// immediately with a shed status so no future is ever left dangling.
#pragma once

#include "sparse/types.hpp"

#include <chrono>
#include <cstdint>
#include <future>
#include <vector>

namespace bitgb::serving {

using clock = std::chrono::steady_clock;

/// The query kinds the auto-batcher can coalesce: both are
/// single-source traversals, so up to 64 of a kind collapse into one
/// msbfs / batched_reach wave (PR 2 measured 3.0x geomean for exactly
/// this amortization).
enum class QueryKind : std::uint8_t {
  kBfs,    ///< single-source BFS level vector
  kReach,  ///< single-source reachability (level != unreached)
};

[[nodiscard]] constexpr const char* query_kind_name(QueryKind k) {
  return k == QueryKind::kBfs ? "bfs" : "reach";
}

/// Why a reply carries no result.
enum class Status : std::uint8_t {
  kOk,            ///< result fields are valid
  kShedQueueFull, ///< admission refused: queue at capacity
  kShedDeadline,  ///< expired in the queue before a worker reached it
};

[[nodiscard]] constexpr const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kShedQueueFull: return "shed-queue-full";
    default: return "shed-deadline";
  }
}

struct Reply {
  Status status = Status::kOk;
  QueryKind kind = QueryKind::kBfs;
  vidx_t source = 0;

  /// kBfs: level per vertex (algo::kUnreached if never visited) —
  /// bit-identical to a standalone algo::bfs run from `source`.
  std::vector<std::int32_t> levels;
  /// kReach: 1 iff `source` reaches the vertex (a source reaches
  /// itself) — bit-identical to levels != kUnreached.
  std::vector<std::uint8_t> reached;

  /// How many queries shared the wave that produced this reply
  /// (1 = executed unbatched).
  int batch_width = 0;
  /// Admission-to-execution queueing delay.
  double queue_ms = 0.0;
  /// When the worker fulfilled the promise — submit-side latency
  /// accounting without a clock call on the future-wait side.
  clock::time_point completed{};
};

struct Request {
  QueryKind kind = QueryKind::kBfs;
  vidx_t source = 0;
  /// Absolute expiry: a worker that reaches the request after this
  /// instant sheds it unexecuted (admission control's second gate;
  /// clock::time_point::max() = no deadline).
  clock::time_point deadline = clock::time_point::max();
  /// Stamped by Server::submit; queue_ms telemetry measures from here.
  clock::time_point submitted{};
  std::promise<Reply> promise;
};

}  // namespace bitgb::serving
