// Serving request/reply types — the admission-side vocabulary of the
// query server (the "frame" half of Gunrock's frame/enactor split: what
// a request is, is independent of how a worker executes it).
//
// A Request is one query — a single-source traversal (BFS levels or
// reachability) or a whole-graph analytic (PageRank, connected
// components) — against one registered graph, with an optional
// deadline.  The request carries its graph as a GraphRef snapshot
// resolved at admission: a registry remove() mid-flight cannot dangle
// it, because shared ownership keeps the slot alive until the reply is
// scattered.  Results travel through std::future — the submitting
// thread keeps the future, the worker that executes the query fulfills
// the promise, and shed requests are fulfilled immediately with a shed
// status so no future is ever left dangling.
#pragma once

#include "algorithms/pagerank.hpp"
#include "serving/registry.hpp"
#include "sparse/types.hpp"

#include <chrono>
#include <cstdint>
#include <future>
#include <iterator>
#include <string>
#include <vector>

namespace bitgb::serving {

using clock = std::chrono::steady_clock;

/// The query kinds the serving core executes.  The traversal pair
/// coalesces: up to 64 of a kind collapse into one msbfs /
/// batched_reach wave (PR 2 measured 3.0x geomean for exactly this
/// amortization).  kComponents waves share one memoized batched_cc per
/// graph registration; kPagerank runs per-request on the worker's
/// Workspace (its params ride in the request, so two requests rarely
/// describe the same computation).
enum class QueryKind : std::uint8_t {
  kBfs,         ///< single-source BFS level vector
  kReach,       ///< single-source reachability (level != unreached)
  kPagerank,    ///< whole-graph PageRank (params in the request)
  kComponents,  ///< whole-graph connected components (memoized per slot)
};

/// Enumerator count — the size of every per-kind table (queue FIFOs,
/// counters, the name table below).
inline constexpr std::size_t kNumQueryKinds = 4;
static_assert(static_cast<std::size_t>(QueryKind::kComponents) + 1 ==
                  kNumQueryKinds,
              "QueryKind grew: bump kNumQueryKinds and extend every "
              "per-kind table (query_kind_name, queue FIFOs, stats)");

[[nodiscard]] constexpr const char* query_kind_name(QueryKind k) {
  constexpr const char* kNames[] = {"bfs", "reach", "pagerank",
                                    "components"};
  static_assert(std::size(kNames) == kNumQueryKinds,
                "query_kind_name table out of sync with QueryKind");
  return kNames[static_cast<std::size_t>(k)];
}

/// Why a reply carries no result (the full Status lifecycle — who
/// fulfills which status on which path — is tabulated in BUILDING.md's
/// "Failure model" section).
enum class Status : std::uint8_t {
  kOk,            ///< result fields are valid
  kShedQueueFull, ///< admission refused: queue at capacity
  kShedDeadline,  ///< expired before or during execution (a wave that
                  ///< expires mid-flight aborts cooperatively and
                  ///< sheds; `iterations` records how far it got)
  kBadGraph,      ///< no graph registered under the requested name
  kShedShutdown,  ///< submitted after shutdown() closed admission
  kShedCircuitOpen, ///< the slot's circuit breaker is open (recent
                    ///< consecutive internal errors): shed fast without
                    ///< touching the graph until the cool-down re-probe
  kInternalError, ///< the executing wave threw (allocator exhaustion, a
                  ///< kernel fault); `error` carries the what() text.
                  ///< The worker survives — only this wave's requests
                  ///< are affected
};

inline constexpr std::size_t kNumStatuses = 7;
static_assert(static_cast<std::size_t>(Status::kInternalError) + 1 ==
                  kNumStatuses,
              "Status grew: bump kNumStatuses and extend status_name");

[[nodiscard]] constexpr const char* status_name(Status s) {
  constexpr const char* kNames[] = {
      "ok",            "shed-queue-full",   "shed-deadline", "bad-graph",
      "shed-shutdown", "shed-circuit-open", "internal-error"};
  static_assert(std::size(kNames) == kNumStatuses,
                "status_name table out of sync with Status");
  return kNames[static_cast<std::size_t>(s)];
}

struct Reply {
  Status status = Status::kOk;
  QueryKind kind = QueryKind::kBfs;
  vidx_t source = 0;

  /// Which registration answered: the slot's name and generation.  A
  /// reply that raced a registry remove() still names the snapshot it
  /// was served from (empty for kShedQueueFull/kBadGraph replies that
  /// never resolved a slot).
  std::string graph;
  std::uint64_t graph_generation = 0;

  /// kBfs: level per vertex (algo::kUnreached if never visited) —
  /// bit-identical to a standalone algo::bfs run from `source`.
  std::vector<std::int32_t> levels;
  /// kReach: 1 iff `source` reaches the vertex (a source reaches
  /// itself) — bit-identical to levels != kUnreached.
  std::vector<std::uint8_t> reached;
  /// kPagerank: the rank vector — bit-identical to algo::pagerank under
  /// the worker's descriptor with the request's params.
  std::vector<value_t> rank;
  /// kComponents: min vertex id per component — element-identical to
  /// algo::connected_components / algo::batched_cc.
  std::vector<vidx_t> component;
  /// kPagerank: iterations run; kComponents: reach waves of the
  /// (possibly memoized) labelling.  On a kShedDeadline reply whose
  /// wave was aborted mid-flight, this records how many iterations ran
  /// before the cancel token fired (< the requested max — the proof the
  /// wave stopped burning its budget).
  int iterations = 0;

  /// kInternalError only: the contained exception's what() text.
  std::string error;

  /// How many queries shared the wave that produced this reply
  /// (1 = executed unbatched).
  int batch_width = 0;
  /// Admission-to-execution queueing delay.
  double queue_ms = 0.0;
  /// When the worker fulfilled the promise — submit-side latency
  /// accounting without a clock call on the future-wait side.
  clock::time_point completed{};
};

struct Request {
  QueryKind kind = QueryKind::kBfs;
  vidx_t source = 0;
  /// The graph snapshot this query runs against, resolved at admission
  /// (shared ownership: outlives any concurrent registry remove()).
  GraphRef slot;
  /// kPagerank only: the iteration/damping parameters.
  algo::PageRankParams pagerank{};
  /// Absolute expiry: a worker that reaches the request after this
  /// instant sheds it unexecuted (admission control's second gate;
  /// clock::time_point::max() = no deadline).
  clock::time_point deadline = clock::time_point::max();
  /// Stamped by Server::submit; queue_ms telemetry measures from here.
  clock::time_point submitted{};
  std::promise<Reply> promise;
};

}  // namespace bitgb::serving
