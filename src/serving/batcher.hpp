// Auto-batcher — the enactor half of the serving core.
//
// A worker hands it a run of same-kind requests (what RequestQueue's
// pop_batch produced); the batcher sheds the ones whose deadline
// already passed, coalesces the survivors' sources into ONE
// msbfs / batched_reach wave over the shared Graph, and scatters the
// per-source columns of the wave's result back into each request's
// promise (algo::scatter_levels / scatter_reached).  A single-request
// batch skips the wave and runs the plain single-source path — which
// is also the whole execution story of the unbatched ablation
// (max_batch = 1).
//
// Batched and unbatched answers are bit-identical: msbfs's level
// matrix equals independent bfs() runs column for column (test_batched
// proves the engine property, test_serving proves it end to end
// through the server).
//
// The batcher is stateless per call: all scratch lives in the caller's
// Workspace slots, so a long-lived serving worker executes any number
// of waves with zero steady-state allocations on the wave path.
#pragma once

#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "serving/request.hpp"

#include "algorithms/workspace.hpp"

#include <vector>

namespace bitgb::serving {

/// What one serve() call did, for the server's counters.
struct BatchOutcome {
  int executed = 0;       ///< requests answered kOk
  int shed_deadline = 0;  ///< requests expired before execution
  int width = 0;          ///< sources coalesced into the wave (0 = none ran)
};

/// Serve `batch` (all the same QueryKind, 1..64 requests) on behalf of
/// one worker: shed expired requests, run the survivors as one wave,
/// fulfill every promise.  `batch` is left in moved-from state.
BatchOutcome serve_batch(const Context& ctx, const gb::Graph& g,
                         std::vector<Request>& batch, algo::Workspace& ws);

}  // namespace bitgb::serving
