// Auto-batcher — the enactor half of the serving core.
//
// A worker hands it a run of same-kind requests (what RequestQueue's
// pop_batch produced); the batcher sheds the ones whose deadline
// already passed, partitions the survivors by graph slot (a popped run
// may span registered graphs), and executes each partition:
//
//   kBfs / kReach — the partition's sources coalesce into ONE
//     msbfs / batched_reach wave, with the per-source columns scattered
//     back into each request's promise (algo::scatter_levels /
//     scatter_reached).  A single-request partition skips the wave and
//     runs the plain single-source path — which is also the whole
//     execution story of the unbatched ablation (max_batch = 1).
//   kComponents — the whole partition shares the slot's memoized
//     batched_cc labelling (computed by the first components query of
//     the registration, from any worker; a registry re-add makes a new
//     slot, so the memo can never go stale).
//   kPagerank — each request runs individually on the worker's
//     Workspace with the params it carried; two pagerank requests
//     rarely describe the same computation, so there is nothing to
//     coalesce.
//
// Batched and unbatched answers are bit-identical: msbfs's level
// matrix equals independent bfs() runs column for column (test_batched
// proves the engine property, test_serving proves it end to end
// through the server).
//
// The batcher is stateless per call: all scratch lives in the caller's
// Workspace slots, so a long-lived serving worker executes any number
// of waves with zero steady-state allocations on the wave path.
//
// Failure domains (see BUILDING.md "Failure model"): each wave is its
// own containment boundary.  A wave that throws — allocator
// exhaustion, a kernel fault, anything escaping the algorithms —
// fulfills exactly its own requests with Status::kInternalError (the
// exception text rides in Reply::error), records the failure on the
// slot's circuit breaker, and the worker carries on with the next
// partition; serve_batch itself never lets an exception escape past
// its own scratch setup.  A wave whose every rider's deadline passes
// mid-flight is aborted cooperatively: the batcher arms a per-wave
// CancelToken with the LATEST deadline aboard (the wave runs while
// anyone still wants it), the algorithms poll it at level/iteration
// boundaries, and an aborted wave's requests shed with
// Status::kShedDeadline — Reply::iterations recording how far the wave
// got before it stopped burning dead work.  A slot whose breaker is
// open sheds its whole partition instantly with kShedCircuitOpen.
#pragma once

#include "platform/context.hpp"
#include "serving/request.hpp"

#include "algorithms/workspace.hpp"

#include "core/frontier_batch.hpp"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

namespace bitgb::serving {

/// What one serve() call did, for the server's counters.
struct BatchOutcome {
  int executed = 0;       ///< requests answered kOk
  int shed_deadline = 0;  ///< requests expired before or during execution
  int shed_circuit = 0;   ///< requests shed by an open circuit breaker
  int failed = 0;         ///< requests fulfilled kInternalError (their
                          ///< wave threw; the worker survived)
  int waves = 0;          ///< execution waves run (>1 when the popped
                          ///< run spanned graphs, or for pagerank)
  int widest = 0;         ///< widest wave of this call (0 = none ran)
};

/// Serve `batch` (all the same QueryKind, 1..64 requests, possibly
/// spanning graphs) on behalf of one worker: shed expired requests,
/// partition by slot, gate each partition through its slot's circuit
/// breaker (tuned by `breaker`), run each admitted partition as one
/// cancellable wave, fulfill every promise.  Counts accumulate into
/// `outcome` AS requests resolve — an out-parameter so a throw (see
/// below) cannot discard the accounting of already-fulfilled requests.
/// Each executed wave's width is appended to `wave_widths` (not
/// cleared — the caller owns the scratch) for the server's histogram.
/// `batch` is left in moved-from state.
///
/// Exception safety: a throwing wave is contained inside this call —
/// its requests resolve kInternalError, later partitions still run.
/// serve_batch only lets an exception escape if its OWN scratch setup
/// fails (e.g. OOM sizing the partition vector); even then every
/// already-resolved request has been counted in `outcome`, and the
/// caller fails whatever is still unfulfilled via fail_unfulfilled.
void serve_batch(const Context& ctx, const CircuitBreakerPolicy& breaker,
                 std::vector<Request>& batch, algo::Workspace& ws,
                 std::vector<int>& wave_widths, BatchOutcome& outcome);

/// Last-ditch containment: fulfill every request in `batch` whose
/// promise is still unsatisfied with kInternalError (carrying `what`),
/// returning how many were filled.  Idempotent over partially-served
/// batches — already-fulfilled promises are skipped, so the worker can
/// sweep the whole batch after a serve_batch throw without knowing how
/// far it got.  Never throws.
int fail_unfulfilled(std::vector<Request>& batch, const char* what) noexcept;

/// AdaptiveBatch — the depth-feedback coalescing-window policy.
///
/// Replaces the static max_batch knob: instead of always popping up to
/// the cap, each worker sizes its next pop from an asymmetric EWMA of
/// the load signal (queue depth at wave completion, and the width the
/// wave actually ran at).  The signal attacks fast (a burst widens the
/// window within a wave or two, so saturation throughput reaches the
/// 64-way amortization almost immediately) and decays slow (an on/off
/// arrival gap does not collapse the window between bursts); with no
/// backlog the signal settles at 1 and the worker returns to latency-
/// optimal single-query pops.
///
/// The policy is deliberately a pure, lock-free value — one instance
/// per worker, no shared state, and therefore nothing for a GUARDED_BY
/// annotation to guard (the thread-safety audit stops here by design) —
/// and is property-tested in isolation
/// (test_serving_adaptive) against recorded arrival traces: the window
/// is monotone in sustained queue depth, never exceeds the cap, and
/// decays back to 1 when the queue drains.
class AdaptiveBatch {
 public:
  explicit AdaptiveBatch(int cap = FrontierBatch::kMaxBatch)
      : cap_(std::clamp(cap, 1, FrontierBatch::kMaxBatch)) {}

  /// Record one wave's observation — the queue depth after the pop and
  /// the widest wave the pop produced — and return the window for the
  /// next pop.
  int update(std::size_t queue_depth, int wave_width) {
    const double x = static_cast<double>(
        std::max<std::size_t>(queue_depth,
                              static_cast<std::size_t>(
                                  std::max(1, wave_width))));
    const double alpha = x > signal_ ? kAttack : kDecay;
    signal_ += alpha * (x - signal_);
    // The deadband matters: the EWMA only asymptotes toward 1 on a
    // drained queue, so a bare ceil() would pin the window at 2
    // forever.  Subtracting a sliver lets the geometric decay land.
    window_ = std::clamp(static_cast<int>(std::ceil(signal_ - kDeadband)),
                         1, cap_);
    return window_;
  }

  [[nodiscard]] int window() const { return window_; }
  [[nodiscard]] int cap() const { return cap_; }

 private:
  static constexpr double kAttack = 0.7;  ///< backlog: widen fast
  static constexpr double kDecay = 0.3;   ///< drain: narrow smoothly
  static constexpr double kDeadband = 1.0 / 16.0;  ///< lets decay reach 1

  int cap_;
  double signal_ = 1.0;
  int window_ = 1;
};

}  // namespace bitgb::serving
