#include "serving/queue.hpp"

#include <algorithm>

namespace bitgb::serving {

RequestQueue::RequestQueue(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

PushOutcome RequestQueue::try_push(Request&& r) {
  {
    const MutexLock lk(m_);
    if (closed_) return PushOutcome::kClosed;
    if (total_locked() >= capacity_) return PushOutcome::kFull;
    kinds_[static_cast<std::size_t>(r.kind)].push_back(std::move(r));
  }
  // One waiter per push: a batch pop drains several pushes, so waking
  // all workers for every arrival would only stampede the mutex.
  cv_.notify_one();
  return PushOutcome::kAccepted;
}

std::size_t RequestQueue::pop_batch(std::vector<Request>& out, int max_batch) {
  out.clear();
  const auto take = static_cast<std::size_t>(std::max(1, max_batch));
  const MutexLock lk(m_);
  // Explicit wait loop (not a predicate lambda): the thread-safety
  // analysis sees the guarded reads happen with m_ held, which a
  // lambda body would not convey.
  while (!closed_ && total_locked() == 0) cv_.wait(m_);
  if (total_locked() == 0) return 0;  // closed and drained

  // Serve the kind whose head has waited longest (FIFO across kinds);
  // at least one FIFO is non-empty here.
  std::deque<Request>* q = nullptr;
  for (auto& fifo : kinds_) {
    if (fifo.empty()) continue;
    if (q == nullptr || fifo.front().submitted < q->front().submitted) {
      q = &fifo;
    }
  }
  const std::size_t count = std::min(take, q->size());
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(std::move(q->front()));
    q->pop_front();
  }
  return count;
}

void RequestQueue::close() {
  {
    const MutexLock lk(m_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t RequestQueue::depth() const {
  const MutexLock lk(m_);
  return total_locked();
}

}  // namespace bitgb::serving
