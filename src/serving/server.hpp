// Server — the query-serving core over the Context API.
//
// One Server owns a bounded MPMC request queue (admission control:
// shed-on-full plus per-request deadlines) feeding a pool of long-lived
// serving workers.  Each worker owns a Context + Workspace pair — the
// per-thread descriptor model examples/concurrent_queries demonstrates,
// made durable — and drains the queue in up-to-64-wide same-kind
// batches that the auto-batcher (serving/batcher.hpp) executes as one
// msbfs / batched_reach wave over the ONE shared, prewarmed Graph.
//
// The architecture is Gunrock's frame/enactor split on the host:
// submit() is the frame (validate, stamp, admit), the workers are the
// enactors (pop, coalesce, execute, scatter), and the Graph handle —
// lazy, immutable-after-materialization — is what makes any worker
// count safe (PR 5's Context redesign).  Under light load a pop
// returns one request and the worker runs the plain single-source
// path; under backlog pops widen toward 64 and the bit engine's
// batched amortization kicks in automatically — latency degrades into
// throughput instead of collapse.
//
// Serving workers default to serial (threads = 1) Contexts: the worker
// pool itself is the parallelism, and the batch dimension — not the
// tile-row loop — is where a loaded server scales.
#pragma once

#include "core/frontier_batch.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "serving/queue.hpp"
#include "serving/request.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace bitgb::serving {

struct ServerOptions {
  /// Serving workers (0 = hardware width).
  int workers = 0;
  /// Bounded queue depth; admission sheds beyond it.
  std::size_t queue_capacity = 1024;
  /// Widest wave the auto-batcher may form (clamped to
  /// FrontierBatch::kMaxBatch; 1 = unbatched, the ablation baseline).
  int max_batch = FrontierBatch::kMaxBatch;
  /// Per-worker execution descriptor.  Serial thread budget by
  /// default — a serving worker's parallelism axis is the batch, and
  /// the worker pool supplies the concurrency.
  Context context = Context{}.with_threads(1);
  /// Deadline applied by submit() when the caller passes none
  /// (zero = requests without an explicit deadline never expire).
  std::chrono::milliseconds default_deadline{0};
};

/// Monotonic counters, snapshot via Server::stats().  submitted ==
/// completed + shed_queue_full + shed_deadline once the server is
/// drained (every future is always fulfilled).
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;        ///< answered kOk
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t waves = 0;            ///< serve_batch calls that executed
  std::uint64_t batched_queries = 0;  ///< kOk queries summed over waves
  std::uint64_t widest_wave = 0;

  /// Mean queries per executed wave — the auto-batching payoff metric.
  [[nodiscard]] double mean_wave_width() const {
    return waves == 0 ? 0.0
                      : static_cast<double>(batched_queries) /
                            static_cast<double>(waves);
  }
};

class Server {
 public:
  /// Starts the workers immediately.  The Graph must outlive the
  /// Server; prewarm it (gb::kBitFormats) first so no query pays the
  /// one-time format conversions.
  Server(const gb::Graph& g, ServerOptions opts = {});

  /// Drains and joins (shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one query.  The future is always eventually fulfilled:
  /// kOk from a worker, kShedQueueFull immediately when the queue is
  /// at capacity, or kShedDeadline if it expires before execution.
  /// Throws std::invalid_argument on an out-of-range source.
  std::future<Reply> submit(QueryKind kind, vidx_t source);
  std::future<Reply> submit(QueryKind kind, vidx_t source,
                            clock::time_point deadline);

  /// Stop admission, serve everything already queued, join the
  /// workers.  Idempotent; submit() after shutdown sheds.
  void shutdown();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] int worker_count() const {
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] const ServerOptions& options() const { return opts_; }

 private:
  void worker_main();

  const gb::Graph& graph_;
  ServerOptions opts_;
  RequestQueue queue_;
  std::vector<std::thread> workers_;
  std::mutex shutdown_mutex_;
  bool stopped_ = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> waves_{0};
  std::atomic<std::uint64_t> batched_queries_{0};
  std::atomic<std::uint64_t> widest_wave_{0};
};

}  // namespace bitgb::serving
