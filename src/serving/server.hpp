// Server — the multi-tenant query-serving core over the Context API.
//
// One Server owns a bounded MPMC request queue (admission control:
// shed-on-full plus per-request deadlines) feeding a pool of long-lived
// serving workers.  Each worker owns a Context + Workspace pair — the
// per-thread descriptor model examples/concurrent_queries demonstrates,
// made durable — and drains the queue in same-kind batches that the
// auto-batcher (serving/batcher.hpp) executes as msbfs / batched_reach
// waves (BFS / reach), memoized batched_cc reads (components), or
// per-request pagerank runs, over the graphs of a GraphRegistry.
//
// Multi-tenancy: submit() takes a graph name, resolved against the
// registry ONCE at admission into a shared GraphRef snapshot.  An
// unknown name resolves the future immediately with Status::kBadGraph;
// a registry remove() racing in-flight queries is safe because every
// queued request co-owns its slot — the graph drains with its last
// reply.  The single-graph constructor remains for the embedded case:
// it wraps the caller's Graph in an anonymous slot and the nameless
// submit() overloads route to it.
//
// Batching is adaptive by default: each worker sizes its next pop from
// an AdaptiveBatch depth-feedback window (1..max_batch) instead of
// always popping the cap — backlog widens the window toward the 64-way
// amortization within a wave or two, a drained queue decays it back to
// single-query pops.  ServerOptions::max_batch remains the override
// cap, and adaptive = false restores the static knob exactly
// (max_batch every pop — the ablation baseline uses max_batch = 1).
//
// Serving workers default to serial (threads = 1) Contexts: the worker
// pool itself is the parallelism, and the batch dimension — not the
// tile-row loop — is where a loaded server scales.
#pragma once

#include "core/frontier_batch.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/thread_annotations.hpp"
#include "serving/queue.hpp"
#include "serving/registry.hpp"
#include "serving/request.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <string_view>
#include <thread>
#include <vector>

namespace bitgb::serving {

struct ServerOptions {
  /// Serving workers (0 = hardware width).
  int workers = 0;
  /// Bounded queue depth; admission sheds beyond it.
  std::size_t queue_capacity = 1024;
  /// Widest wave a worker may form (clamped to
  /// FrontierBatch::kMaxBatch) — the adaptive window's cap, or the
  /// fixed pop width when adaptive = false (1 = unbatched, the
  /// ablation baseline).
  int max_batch = FrontierBatch::kMaxBatch;
  /// Depth-feedback window sizing (serving/batcher.hpp AdaptiveBatch).
  /// false = the pre-adaptive static knob: every pop asks for
  /// max_batch.
  bool adaptive = true;
  /// Per-worker execution descriptor.  Serial thread budget by
  /// default — a serving worker's parallelism axis is the batch, and
  /// the worker pool supplies the concurrency.
  Context context = Context{}.with_threads(1);
  /// Deadline applied by submit() when the caller passes none
  /// (zero = requests without an explicit deadline never expire).
  std::chrono::milliseconds default_deadline{0};
  /// Per-slot circuit-breaker tuning: trip_after consecutive internal
  /// errors on one graph slot open its breaker for `cooldown`, during
  /// which its queries shed kShedCircuitOpen instead of executing.
  /// trip_after <= 0 disables the breaker.  The breaker STATE lives in
  /// the slot (shared by every server on the registry); this policy is
  /// this server's tolerance.
  CircuitBreakerPolicy breaker{};
};

/// Wave-width histogram buckets: [1] [2] [3-4] [5-8] [9-16] [17-32]
/// [33-64] — power-of-two bands up to FrontierBatch::kMaxBatch.
inline constexpr std::size_t kWaveHistBuckets = 7;

/// Bucket index for an executed wave width (1..64).
[[nodiscard]] constexpr std::size_t wave_hist_bucket(int width) {
  std::size_t b = 0;
  for (int top = 1; top < width; top *= 2) ++b;
  return b < kWaveHistBuckets ? b : kWaveHistBuckets - 1;
}

/// Monotonic counters, snapshot via Server::stats().  Conservation
/// invariant — every admitted query resolves exactly one way, so once
/// the server is drained:
///
///   submitted == completed + failed + shed_queue_full + shed_deadline
///              + shed_bad_graph + shed_shutdown + shed_circuit_open
///
/// (accounted() computes the right-hand side).  The invariant holds
/// under fault injection too: a contained wave failure moves its
/// requests from completed to failed, never loses them.
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;        ///< answered kOk
  std::uint64_t failed = 0;           ///< answered kInternalError (their
                                      ///< wave threw; contained)
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t shed_bad_graph = 0;   ///< unknown graph name at submit
  std::uint64_t shed_shutdown = 0;    ///< submitted after shutdown()
  std::uint64_t shed_circuit_open = 0;  ///< slot's breaker was open
  std::uint64_t waves = 0;            ///< execution waves run
  std::uint64_t batched_queries = 0;  ///< kOk queries summed over waves
  std::uint64_t widest_wave = 0;

  /// Per-kind admission/completion counters, indexed by QueryKind.
  std::array<std::uint64_t, kNumQueryKinds> submitted_by_kind{};
  std::array<std::uint64_t, kNumQueryKinds> completed_by_kind{};

  /// Executed wave widths, bucketed (see wave_hist_bucket) — the
  /// adaptive batcher's observable decision record.
  std::array<std::uint64_t, kWaveHistBuckets> wave_width_hist{};

  /// Adaptive-window transitions: pops whose window grew / shrank
  /// relative to the worker's previous one (0/0 when adaptive = false).
  std::uint64_t window_grew = 0;
  std::uint64_t window_shrank = 0;

  /// Registry durability counters, mirrored from the backing
  /// GraphRegistry at stats() time (all 0 in single-graph mode).  They
  /// count REGISTRY events, not queries, so they are deliberately
  /// outside the accounted() conservation invariant.
  std::uint64_t registry_dedup_hits = 0;  ///< re-adds that reused a graph
  std::uint64_t graphs_recovered = 0;     ///< manifest entries recovered
  std::uint64_t graphs_quarantined = 0;   ///< entries missing/quarantined

  /// Everything submitted queries can resolve to — equals `submitted`
  /// once the server is drained (the conservation invariant the chaos
  /// suite asserts under faults, churn, and shutdown).
  [[nodiscard]] std::uint64_t accounted() const {
    return completed + failed + shed_queue_full + shed_deadline +
           shed_bad_graph + shed_shutdown + shed_circuit_open;
  }

  /// Mean queries per executed wave — the auto-batching payoff metric.
  [[nodiscard]] double mean_wave_width() const {
    return waves == 0 ? 0.0
                      : static_cast<double>(batched_queries) /
                            static_cast<double>(waves);
  }
};

class Server {
 public:
  /// Multi-tenant form: serve every graph registered in `registry`
  /// (which must outlive the Server; add/remove stay allowed while
  /// serving).  Starts the workers immediately.
  Server(const GraphRegistry& registry, ServerOptions opts = {});

  /// Single-graph form: the embedded case.  The Graph must outlive the
  /// Server; prewarm it (gb::kBitFormats) first so no query pays the
  /// one-time format conversions.  Nameless submit() overloads route
  /// here.
  Server(const gb::Graph& g, ServerOptions opts = {});

  /// Drains and joins (shutdown()).
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Admit one query against a named graph.  The future is always
  /// eventually fulfilled: kOk from a worker, kShedQueueFull
  /// immediately when the queue is at capacity, kShedShutdown
  /// immediately when shutdown() already closed admission,
  /// kShedDeadline if it expires before or during execution,
  /// kShedCircuitOpen if its slot's breaker is open, kInternalError if
  /// its wave threw (contained), or kBadGraph immediately when no
  /// graph is registered under `graph`.  Throws std::invalid_argument
  /// on an out-of-range source for the traversal kinds (whole-graph
  /// kinds ignore `source`).
  std::future<Reply> submit(std::string_view graph, QueryKind kind,
                            vidx_t source = 0);
  std::future<Reply> submit(std::string_view graph, QueryKind kind,
                            vidx_t source, clock::time_point deadline);

  /// PageRank with explicit params (carried in the request; the
  /// nameless form routes to the single-graph slot).  Params are
  /// validated at the door — NaN or out-of-[0,1) damping, a
  /// non-positive iteration budget, or a non-positive tolerance throw
  /// std::invalid_argument BEFORE admission, so a malformed request
  /// can never poison a worker or spin an unbounded iteration.
  std::future<Reply> submit_pagerank(
      std::string_view graph, const algo::PageRankParams& params = {},
      clock::time_point deadline = clock::time_point::max());
  std::future<Reply> submit_pagerank(
      const algo::PageRankParams& params = {},
      clock::time_point deadline = clock::time_point::max());

  /// Single-graph submits (the embedded constructor's slot; on a
  /// registry server these reply kBadGraph).
  std::future<Reply> submit(QueryKind kind, vidx_t source);
  std::future<Reply> submit(QueryKind kind, vidx_t source,
                            clock::time_point deadline);

  /// Stop admission, serve everything already queued, join the
  /// workers.  Idempotent.  submit() after shutdown is defined
  /// behaviour, not a race: the future resolves immediately with
  /// Status::kShedShutdown — it never hangs, and the conservation
  /// invariant still counts it.
  void shutdown() EXCLUDES(shutdown_mutex_);

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] int worker_count() const EXCLUDES(shutdown_mutex_) {
    const MutexLock lk(shutdown_mutex_);
    return static_cast<int>(workers_.size());
  }
  [[nodiscard]] const ServerOptions& options() const { return opts_; }

 private:
  explicit Server(ServerOptions opts);  // common init; workers started after
  void start_workers() EXCLUDES(shutdown_mutex_);
  void worker_main();
  std::future<Reply> submit_resolved(GraphRef slot, QueryKind kind,
                                     vidx_t source,
                                     const algo::PageRankParams& params,
                                     clock::time_point deadline);
  [[nodiscard]] clock::time_point default_deadline_now() const;
  /// Fulfill a request admission refused (shed/bad-graph) — the future
  /// still resolves immediately.
  std::future<Reply> refuse(QueryKind kind, vidx_t source, Status status,
                            const GraphSlot* slot);

  const GraphRegistry* registry_ = nullptr;  ///< null in single-graph mode
  GraphRef default_slot_;                    ///< null in registry mode
  ServerOptions opts_;
  RequestQueue queue_;
  mutable Mutex shutdown_mutex_;
  /// The worker threads: spawned once under the lock at construction,
  /// joined exactly once under it at shutdown.
  std::vector<std::thread> workers_ GUARDED_BY(shutdown_mutex_);
  bool stopped_ GUARDED_BY(shutdown_mutex_) = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_queue_full_{0};
  std::atomic<std::uint64_t> shed_deadline_{0};
  std::atomic<std::uint64_t> shed_bad_graph_{0};
  std::atomic<std::uint64_t> shed_shutdown_{0};
  std::atomic<std::uint64_t> shed_circuit_open_{0};
  std::atomic<std::uint64_t> waves_{0};
  std::atomic<std::uint64_t> batched_queries_{0};
  std::atomic<std::uint64_t> widest_wave_{0};
  std::array<std::atomic<std::uint64_t>, kNumQueryKinds> submitted_by_kind_{};
  std::array<std::atomic<std::uint64_t>, kNumQueryKinds> completed_by_kind_{};
  std::array<std::atomic<std::uint64_t>, kWaveHistBuckets> wave_hist_{};
  std::atomic<std::uint64_t> window_grew_{0};
  std::atomic<std::uint64_t> window_shrank_{0};
};

}  // namespace bitgb::serving
