#include "serving/registry.hpp"

#include <algorithm>
#include <utility>

namespace bitgb::serving {

GraphRef GraphRegistry::add(std::string name, gb::Graph g,
                            gb::FormatSet warm) {
  // Prewarm before publication: materialization is the expensive part,
  // so it runs outside the lock and no query ever observes a cold slot.
  g.prewarm(warm);
  std::uint64_t generation;
  {
    const std::lock_guard<std::mutex> lk(m_);
    generation = next_generation_++;
  }
  auto slot = std::make_shared<const GraphSlot>(name, generation,
                                               std::move(g));
  const std::lock_guard<std::mutex> lk(m_);
  for (auto& [n, s] : slots_) {
    if (n == name) {
      s = slot;  // replace: the old slot drains via its in-flight refs
      return slot;
    }
  }
  slots_.emplace_back(std::move(name), slot);
  return slot;
}

bool GraphRegistry::remove(std::string_view name) {
  const std::lock_guard<std::mutex> lk(m_);
  const auto it = std::find_if(slots_.begin(), slots_.end(),
                               [&](const auto& p) { return p.first == name; });
  if (it == slots_.end()) return false;
  slots_.erase(it);
  return true;
}

GraphRef GraphRegistry::lookup(std::string_view name) const {
  const std::lock_guard<std::mutex> lk(m_);
  const auto it = std::find_if(slots_.begin(), slots_.end(),
                               [&](const auto& p) { return p.first == name; });
  return it == slots_.end() ? nullptr : it->second;
}

std::vector<std::string> GraphRegistry::names() const {
  const std::lock_guard<std::mutex> lk(m_);
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const auto& [n, s] : slots_) out.push_back(n);
  return out;
}

std::size_t GraphRegistry::size() const {
  const std::lock_guard<std::mutex> lk(m_);
  return slots_.size();
}

}  // namespace bitgb::serving
