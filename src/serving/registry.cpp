#include "serving/registry.hpp"

#include "sparse/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

namespace bitgb::serving {

namespace {

constexpr const char* kManifestMagic = "bitgb-manifest-v1";

std::string fp_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return std::string(buf);
}

std::string snapshot_filename(std::uint64_t fp) {
  return "snap-" + fp_hex(fp) + ".bgbs";
}

}  // namespace

const char* recovery_status_name(RecoveryStatus s) {
  switch (s) {
    case RecoveryStatus::kRecovered: return "recovered";
    case RecoveryStatus::kMissing: return "missing";
    case RecoveryStatus::kQuarantined: return "quarantined";
  }
  return "?";
}

GraphRef GraphRegistry::add(std::string name, gb::Graph g,
                            gb::FormatSet warm) {
  // Re-add dedup: an identical graph (by content fingerprint) already
  // registered under this name keeps its prewarmed format caches; only
  // the slot (generation, memos, breaker state) is replaced.  The
  // fingerprint is two CRC passes over the CSR — noise next to the
  // prewarm it saves.
  {
    GraphRef existing;
    {
      const SharedLock lk(m_);
      const auto it =
          std::find_if(slots_.begin(), slots_.end(),
                       [&](const auto& p) { return p.first == name; });
      if (it != slots_.end()) existing = it->second;
    }
    if (existing && existing->shared_graph() &&
        existing->graph().num_vertices() == g.num_vertices() &&
        existing->graph().num_edges() == g.num_edges() &&
        (existing->graph().formats() & warm) == warm &&
        existing->graph().fingerprint() == g.fingerprint()) {
      std::uint64_t generation;
      {
        const MutexLock lk(m_);
        generation = next_generation_++;
      }
      auto slot = std::make_shared<const GraphSlot>(
          name, generation, existing->shared_graph());
      dedup_hits_.fetch_add(1, std::memory_order_relaxed);
      const MutexLock lk(m_);
      for (auto& [n, s] : slots_) {
        if (n == name) {
          s = slot;
          return slot;
        }
      }
      slots_.emplace_back(std::move(name), slot);
      return slot;
    }
  }

  // Prewarm before publication: materialization is the expensive part,
  // so it runs outside the lock and no query ever observes a cold slot.
  g.prewarm(warm);
  std::uint64_t generation;
  {
    const MutexLock lk(m_);
    generation = next_generation_++;
  }
  auto slot = std::make_shared<const GraphSlot>(name, generation,
                                               std::move(g));
  const MutexLock lk(m_);
  for (auto& [n, s] : slots_) {
    if (n == name) {
      s = slot;  // replace: the old slot drains via its in-flight refs
      return slot;
    }
  }
  slots_.emplace_back(std::move(name), slot);
  return slot;
}

bool GraphRegistry::remove(std::string_view name) {
  const MutexLock lk(m_);
  const auto it = std::find_if(slots_.begin(), slots_.end(),
                               [&](const auto& p) { return p.first == name; });
  if (it == slots_.end()) return false;
  slots_.erase(it);
  return true;
}

GraphRef GraphRegistry::lookup(std::string_view name) const {
  const SharedLock lk(m_);
  const auto it = std::find_if(slots_.begin(), slots_.end(),
                               [&](const auto& p) { return p.first == name; });
  return it == slots_.end() ? nullptr : it->second;
}

std::vector<std::string> GraphRegistry::names() const {
  const SharedLock lk(m_);
  std::vector<std::string> out;
  out.reserve(slots_.size());
  for (const auto& [n, s] : slots_) out.push_back(n);
  return out;
}

std::size_t GraphRegistry::size() const {
  const SharedLock lk(m_);
  return slots_.size();
}

void GraphRegistry::save_all(const std::string& dir, gb::FormatSet formats,
                             FaultInjector* fault) const {
  // Stable view: persisting is slow (it may prewarm), so it runs on a
  // snapshot of the map, not under the lock.  A concurrent add/remove
  // changes what a LATER save_all captures, exactly like any other
  // point-in-time backup.
  std::vector<std::pair<std::string, GraphRef>> view;
  {
    const SharedLock lk(m_);
    view = slots_;
  }
  for (const auto& [name, slot] : view) {
    if (name.find('\n') != std::string::npos) {
      throw snap::SnapshotError(
          snap::SnapshotError::Kind::kMalformed,
          "registration name contains a newline; cannot be manifested");
    }
    (void)slot;
  }

  std::filesystem::create_directories(dir);

  // One snapshot file per distinct graph content (deduped slots share a
  // fingerprint and therefore a file), then the manifest — written LAST
  // so a crash anywhere above leaves the old manifest naming only files
  // that were already durably renamed.
  std::ostringstream manifest;
  manifest << kManifestMagic << '\n';
  std::vector<std::uint64_t> written;
  for (const auto& [name, slot] : view) {
    const gb::Graph& g = slot->graph();
    const std::uint64_t fp = g.fingerprint();
    const std::string file = snapshot_filename(fp);
    if (std::find(written.begin(), written.end(), fp) == written.end()) {
      g.save((std::filesystem::path(dir) / file).string(), formats, fault);
      written.push_back(fp);
    }
    // Name goes last: it is the one field that may contain spaces.
    manifest << file << ' ' << fp_hex(fp) << ' ' << name << '\n';
  }

  const std::string text = manifest.str();
  std::vector<std::byte> bytes(text.size());
  if (!text.empty()) std::memcpy(bytes.data(), text.data(), text.size());
  snap::atomic_write_file(
      (std::filesystem::path(dir) / kManifestFile).string(), bytes, fault);
}

RecoveryReport GraphRegistry::recover(const std::string& dir,
                                      gb::FormatSet warm) {
  RecoveryReport report;
  const auto manifest_path = std::filesystem::path(dir) / kManifestFile;
  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) return report;  // nothing was ever saved — an empty restart

  std::string line;
  if (!std::getline(in, line) || line != kManifestMagic) {
    throw snap::SnapshotError(snap::SnapshotError::Kind::kMalformed,
                              "unrecognized manifest header in " +
                                  manifest_path.string());
  }

  while (std::getline(in, line)) {
    if (line.empty()) continue;
    RecoveryEntry entry;
    // `<file> <fp-hex16> <name...>` — name last, spaces allowed.
    const auto sp1 = line.find(' ');
    const auto sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
    if (sp2 == std::string::npos || sp2 + 1 >= line.size()) {
      entry.file = line;
      entry.status = RecoveryStatus::kQuarantined;
      entry.error = "malformed manifest line";
      quarantined_.fetch_add(1, std::memory_order_relaxed);
      report.entries.push_back(std::move(entry));
      continue;
    }
    entry.file = line.substr(0, sp1);
    const std::string fp_str = line.substr(sp1 + 1, sp2 - sp1 - 1);
    entry.name = line.substr(sp2 + 1);
    std::uint64_t want_fp = 0;
    bool fp_ok = fp_str.size() == 16;
    for (const char c : fp_str) {
      const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
      if (!hex) { fp_ok = false; break; }
      want_fp = (want_fp << 4) |
                static_cast<std::uint64_t>(c <= '9' ? c - '0' : c - 'a' + 10);
    }

    const auto snap_path = std::filesystem::path(dir) / entry.file;
    std::error_code ec;
    if (!fp_ok) {
      entry.status = RecoveryStatus::kQuarantined;
      entry.error = "malformed fingerprint in manifest";
    } else if (!std::filesystem::exists(snap_path, ec)) {
      entry.status = RecoveryStatus::kMissing;
      entry.error = "snapshot file does not exist";
    } else {
      try {
        gb::Graph g = gb::Graph::load(snap_path.string());
        if (g.fingerprint() != want_fp) {
          throw snap::SnapshotError(
              snap::SnapshotError::Kind::kInvalidStructure,
              "snapshot fingerprint disagrees with the manifest");
        }
        add(entry.name, std::move(g), warm);
        entry.status = RecoveryStatus::kRecovered;
      } catch (const std::exception& e) {
        // Quarantine, never crash: the snapshot stays on disk for
        // forensics and every OTHER entry still recovers.
        entry.status = RecoveryStatus::kQuarantined;
        entry.error = e.what();
      }
    }
    if (entry.status == RecoveryStatus::kRecovered) {
      recovered_.fetch_add(1, std::memory_order_relaxed);
    } else {
      quarantined_.fetch_add(1, std::memory_order_relaxed);
    }
    report.entries.push_back(std::move(entry));
  }
  return report;
}

}  // namespace bitgb::serving
