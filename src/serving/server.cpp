#include "serving/server.hpp"

#include "algorithms/workspace.hpp"
#include "platform/parallel.hpp"
#include "serving/batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace bitgb::serving {

Server::Server(const gb::Graph& g, ServerOptions opts)
    : graph_(g), opts_(opts), queue_(opts.queue_capacity) {
  opts_.max_batch =
      std::clamp(opts_.max_batch, 1, FrontierBatch::kMaxBatch);
  const int n = opts_.workers <= 0 ? hardware_width()
                                   : std::min(opts_.workers, kMaxWorkerWidth);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

Server::~Server() { shutdown(); }

std::future<Reply> Server::submit(QueryKind kind, vidx_t source) {
  const auto deadline =
      opts_.default_deadline.count() > 0
          ? clock::now() + opts_.default_deadline
          : clock::time_point::max();
  return submit(kind, source, deadline);
}

std::future<Reply> Server::submit(QueryKind kind, vidx_t source,
                                  clock::time_point deadline) {
  if (source < 0 || source >= graph_.num_vertices()) {
    throw std::invalid_argument("serving: source " + std::to_string(source) +
                                " out of range [0, " +
                                std::to_string(graph_.num_vertices()) + ")");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);

  Request r;
  r.kind = kind;
  r.source = source;
  r.deadline = deadline;
  r.submitted = clock::now();
  std::future<Reply> fut = r.promise.get_future();
  if (!queue_.try_push(std::move(r))) {
    // Shed at the door: the queue is at capacity (or the server is
    // shutting down).  try_push left the request intact, so the
    // promise is still ours to fulfill.
    shed_queue_full_.fetch_add(1, std::memory_order_relaxed);
    Reply reply;
    reply.status = Status::kShedQueueFull;
    reply.kind = kind;
    reply.source = source;
    reply.completed = clock::now();
    r.promise.set_value(std::move(reply));
  }
  return fut;
}

void Server::worker_main() {
  // The long-lived per-worker execution state: one descriptor, one
  // scratch arena.  Steady state allocates nothing on the wave path.
  const Context ctx = opts_.context;
  algo::Workspace ws;
  std::vector<Request> batch;
  batch.reserve(static_cast<std::size_t>(opts_.max_batch));
  while (queue_.pop_batch(batch, opts_.max_batch) > 0) {
    const BatchOutcome outcome = serve_batch(ctx, graph_, batch, ws);
    completed_.fetch_add(static_cast<std::uint64_t>(outcome.executed),
                         std::memory_order_relaxed);
    shed_deadline_.fetch_add(static_cast<std::uint64_t>(outcome.shed_deadline),
                             std::memory_order_relaxed);
    if (outcome.width > 0) {
      waves_.fetch_add(1, std::memory_order_relaxed);
      batched_queries_.fetch_add(static_cast<std::uint64_t>(outcome.width),
                                 std::memory_order_relaxed);
      std::uint64_t prev = widest_wave_.load(std::memory_order_relaxed);
      const auto width = static_cast<std::uint64_t>(outcome.width);
      while (prev < width && !widest_wave_.compare_exchange_weak(
                                 prev, width, std::memory_order_relaxed)) {
      }
    }
  }
}

void Server::shutdown() {
  // Serialized so an explicit shutdown() and the destructor's cannot
  // race on the joins.
  const std::lock_guard<std::mutex> lk(shutdown_mutex_);
  if (stopped_) return;
  queue_.close();
  for (auto& w : workers_) w.join();
  stopped_ = true;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.waves = waves_.load(std::memory_order_relaxed);
  s.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  s.widest_wave = widest_wave_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace bitgb::serving
