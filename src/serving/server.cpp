#include "serving/server.hpp"

#include "algorithms/workspace.hpp"
#include "platform/parallel.hpp"
#include "serving/batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace bitgb::serving {

namespace {

/// Name of the slot the single-graph constructor wraps the caller's
/// Graph in; nameless submits route here.
constexpr const char* kDefaultGraphName = "default";

bool is_traversal(QueryKind kind) {
  return kind == QueryKind::kBfs || kind == QueryKind::kReach;
}

/// Admission-time parameter gate for pagerank: a malformed request is
/// the CALLER's bug, so it throws at submit instead of poisoning a
/// worker.  Every comparison is written NaN-hostile: `!(x >= 0)` is
/// true for NaN where `x < 0` is not.
void validate_pagerank_params(const algo::PageRankParams& p) {
  if (!(p.alpha >= 0.0f) || p.alpha >= 1.0f) {
    throw std::invalid_argument(
        "serving: pagerank damping alpha must be in [0, 1), got " +
        std::to_string(p.alpha));
  }
  if (p.max_iterations <= 0) {
    throw std::invalid_argument(
        "serving: pagerank max_iterations must be positive, got " +
        std::to_string(p.max_iterations));
  }
  if (!(p.epsilon > 0.0)) {
    throw std::invalid_argument(
        "serving: pagerank epsilon must be positive, got " +
        std::to_string(p.epsilon));
  }
}

}  // namespace

Server::Server(ServerOptions opts)
    : opts_(opts), queue_(opts.queue_capacity) {
  opts_.max_batch =
      std::clamp(opts_.max_batch, 1, FrontierBatch::kMaxBatch);
}

Server::Server(const GraphRegistry& registry, ServerOptions opts)
    : Server(opts) {
  registry_ = &registry;
  start_workers();
}

Server::Server(const gb::Graph& g, ServerOptions opts) : Server(opts) {
  default_slot_ =
      std::make_shared<const GraphSlot>(kDefaultGraphName, 0, &g);
  start_workers();
}

void Server::start_workers() {
  const int n = opts_.workers <= 0 ? hardware_width()
                                   : std::min(opts_.workers, kMaxWorkerWidth);
  // Construction is single-threaded, but workers_ is guarded by the
  // shutdown mutex (its other writer is the joining shutdown()), so the
  // spawn loop holds it too — uncontended here, and the static analysis
  // gets one consistent story for the container.
  const MutexLock lk(shutdown_mutex_);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
}

Server::~Server() { shutdown(); }

clock::time_point Server::default_deadline_now() const {
  return opts_.default_deadline.count() > 0
             ? clock::now() + opts_.default_deadline
             : clock::time_point::max();
}

std::future<Reply> Server::refuse(QueryKind kind, vidx_t source,
                                  Status status, const GraphSlot* slot) {
  Reply reply;
  reply.status = status;
  reply.kind = kind;
  reply.source = source;
  if (slot != nullptr) {
    reply.graph = slot->name();
    reply.graph_generation = slot->generation();
  }
  reply.completed = clock::now();
  std::promise<Reply> p;
  std::future<Reply> fut = p.get_future();
  p.set_value(std::move(reply));
  return fut;
}

std::future<Reply> Server::submit(std::string_view graph, QueryKind kind,
                                  vidx_t source) {
  return submit(graph, kind, source, default_deadline_now());
}

std::future<Reply> Server::submit(std::string_view graph, QueryKind kind,
                                  vidx_t source, clock::time_point deadline) {
  GraphRef slot = registry_ != nullptr ? registry_->lookup(graph)
                  : (default_slot_ && graph == default_slot_->name())
                      ? default_slot_
                      : nullptr;
  return submit_resolved(std::move(slot), kind, source, {}, deadline);
}

std::future<Reply> Server::submit(QueryKind kind, vidx_t source) {
  return submit(kind, source, default_deadline_now());
}

std::future<Reply> Server::submit(QueryKind kind, vidx_t source,
                                  clock::time_point deadline) {
  return submit_resolved(default_slot_, kind, source, {}, deadline);
}

std::future<Reply> Server::submit_pagerank(std::string_view graph,
                                           const algo::PageRankParams& params,
                                           clock::time_point deadline) {
  validate_pagerank_params(params);
  GraphRef slot = registry_ != nullptr ? registry_->lookup(graph)
                  : (default_slot_ && graph == default_slot_->name())
                      ? default_slot_
                      : nullptr;
  return submit_resolved(std::move(slot), QueryKind::kPagerank, 0, params,
                         deadline);
}

std::future<Reply> Server::submit_pagerank(const algo::PageRankParams& params,
                                           clock::time_point deadline) {
  validate_pagerank_params(params);
  return submit_resolved(default_slot_, QueryKind::kPagerank, 0, params,
                         deadline);
}

std::future<Reply> Server::submit_resolved(GraphRef slot, QueryKind kind,
                                           vidx_t source,
                                           const algo::PageRankParams& params,
                                           clock::time_point deadline) {
  if (slot == nullptr) {
    // Unknown name: accounted, and the future resolves immediately —
    // a routing miss is an answer, not an exception, because the
    // registry may legitimately have changed between the caller's
    // lookup and this submit.
    submitted_.fetch_add(1, std::memory_order_relaxed);
    submitted_by_kind_[static_cast<std::size_t>(kind)].fetch_add(
        1, std::memory_order_relaxed);
    shed_bad_graph_.fetch_add(1, std::memory_order_relaxed);
    return refuse(kind, source, Status::kBadGraph, nullptr);
  }
  if (is_traversal(kind) &&
      (source < 0 || source >= slot->graph().num_vertices())) {
    throw std::invalid_argument(
        "serving: source " + std::to_string(source) + " out of range [0, " +
        std::to_string(slot->graph().num_vertices()) + ") on graph '" +
        slot->name() + "'");
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  submitted_by_kind_[static_cast<std::size_t>(kind)].fetch_add(
      1, std::memory_order_relaxed);

  Request r;
  r.kind = kind;
  r.source = source;
  r.slot = std::move(slot);
  r.pagerank = params;
  r.deadline = deadline;
  r.submitted = clock::now();
  std::future<Reply> fut = r.promise.get_future();
  const PushOutcome push = queue_.try_push(std::move(r));
  if (push != PushOutcome::kAccepted) {
    // Shed at the door — with the honest reason: kFull is overload
    // (queue at capacity), kClosed is a submit after shutdown() closed
    // admission.  Either way try_push left the request intact, so the
    // promise is still ours to fulfill: the future always resolves,
    // never hangs.
    const Status status = push == PushOutcome::kClosed
                              ? Status::kShedShutdown
                              : Status::kShedQueueFull;
    auto& counter = push == PushOutcome::kClosed ? shed_shutdown_
                                                 : shed_queue_full_;
    counter.fetch_add(1, std::memory_order_relaxed);
    Reply reply;
    reply.status = status;
    reply.kind = kind;
    reply.source = source;
    reply.graph = r.slot->name();
    reply.graph_generation = r.slot->generation();
    reply.completed = clock::now();
    r.promise.set_value(std::move(reply));
  }
  return fut;
}

void Server::worker_main() {
  // The long-lived per-worker execution state: one descriptor, one
  // scratch arena, one adaptive window.  Steady state allocates
  // nothing on the wave path.
  const Context ctx = opts_.context;
  algo::Workspace ws;
  AdaptiveBatch adapt(opts_.max_batch);
  std::vector<Request> batch;
  std::vector<int> wave_widths;
  batch.reserve(static_cast<std::size_t>(opts_.max_batch));
  wave_widths.reserve(static_cast<std::size_t>(opts_.max_batch));
  int window = opts_.adaptive ? adapt.window() : opts_.max_batch;
  while (queue_.pop_batch(batch, window) > 0) {
    const QueryKind kind = batch.front().kind;
    wave_widths.clear();
    BatchOutcome outcome;
    try {
      serve_batch(ctx, opts_.breaker, batch, ws, wave_widths, outcome);
    } catch (const std::exception& e) {
      // Last-ditch containment.  serve_batch contains wave failures
      // itself; reaching here means its own scratch setup threw (e.g.
      // OOM sizing the partition vector).  Everything already resolved
      // is already counted in `outcome`; whatever is still pending gets
      // kInternalError now — the worker survives, no promise is ever
      // abandoned.
      outcome.failed += fail_unfulfilled(batch, e.what());
    } catch (...) {
      outcome.failed += fail_unfulfilled(batch, "unknown exception");
    }
    completed_.fetch_add(static_cast<std::uint64_t>(outcome.executed),
                         std::memory_order_relaxed);
    completed_by_kind_[static_cast<std::size_t>(kind)].fetch_add(
        static_cast<std::uint64_t>(outcome.executed),
        std::memory_order_relaxed);
    shed_deadline_.fetch_add(static_cast<std::uint64_t>(outcome.shed_deadline),
                             std::memory_order_relaxed);
    failed_.fetch_add(static_cast<std::uint64_t>(outcome.failed),
                      std::memory_order_relaxed);
    shed_circuit_open_.fetch_add(
        static_cast<std::uint64_t>(outcome.shed_circuit),
        std::memory_order_relaxed);
    if (outcome.waves > 0) {
      waves_.fetch_add(static_cast<std::uint64_t>(outcome.waves),
                       std::memory_order_relaxed);
      batched_queries_.fetch_add(static_cast<std::uint64_t>(outcome.executed),
                                 std::memory_order_relaxed);
      for (const int w : wave_widths) {
        wave_hist_[wave_hist_bucket(w)].fetch_add(1,
                                                  std::memory_order_relaxed);
      }
      std::uint64_t prev = widest_wave_.load(std::memory_order_relaxed);
      const auto width = static_cast<std::uint64_t>(outcome.widest);
      while (prev < width && !widest_wave_.compare_exchange_weak(
                                 prev, width, std::memory_order_relaxed)) {
      }
    }
    if (opts_.adaptive) {
      // Feed the window policy what this wave saw: the backlog left
      // behind and the widest wave the pop actually produced.
      const int next = adapt.update(queue_.depth(), outcome.widest);
      if (next > window) {
        window_grew_.fetch_add(1, std::memory_order_relaxed);
      } else if (next < window) {
        window_shrank_.fetch_add(1, std::memory_order_relaxed);
      }
      window = next;
    }
  }
}

void Server::shutdown() {
  // Serialized so an explicit shutdown() and the destructor's cannot
  // race on the joins.
  const MutexLock lk(shutdown_mutex_);
  if (stopped_) return;
  queue_.close();
  for (auto& w : workers_) w.join();
  stopped_ = true;
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.shed_queue_full = shed_queue_full_.load(std::memory_order_relaxed);
  s.shed_deadline = shed_deadline_.load(std::memory_order_relaxed);
  s.shed_bad_graph = shed_bad_graph_.load(std::memory_order_relaxed);
  s.shed_shutdown = shed_shutdown_.load(std::memory_order_relaxed);
  s.shed_circuit_open = shed_circuit_open_.load(std::memory_order_relaxed);
  s.waves = waves_.load(std::memory_order_relaxed);
  s.batched_queries = batched_queries_.load(std::memory_order_relaxed);
  s.widest_wave = widest_wave_.load(std::memory_order_relaxed);
  for (std::size_t k = 0; k < kNumQueryKinds; ++k) {
    s.submitted_by_kind[k] =
        submitted_by_kind_[k].load(std::memory_order_relaxed);
    s.completed_by_kind[k] =
        completed_by_kind_[k].load(std::memory_order_relaxed);
  }
  for (std::size_t b = 0; b < kWaveHistBuckets; ++b) {
    s.wave_width_hist[b] = wave_hist_[b].load(std::memory_order_relaxed);
  }
  s.window_grew = window_grew_.load(std::memory_order_relaxed);
  s.window_shrank = window_shrank_.load(std::memory_order_relaxed);
  if (registry_ != nullptr) {
    s.registry_dedup_hits = registry_->dedup_hits();
    s.graphs_recovered = registry_->recovered_count();
    s.graphs_quarantined = registry_->quarantined_count();
  }
  return s;
}

}  // namespace bitgb::serving
