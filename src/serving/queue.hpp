// Bounded MPMC request queue with kind-segregated batch pops.
//
// The admission side (any number of submitter threads) pushes with
// try_push, which refuses — instead of blocking — when the queue is at
// capacity: overload sheds at the door with a bounded queue depth, so
// queueing delay stays bounded under any arrival rate (the shed-on-full
// half of the server's admission control).
//
// The execution side (the serving workers) pops with pop_batch, which
// returns up to max_batch requests *of one kind* in a single lock hold.
// Pending requests wait in one FIFO per QueryKind (all sharing the
// capacity bound), so a worker's pop IS the auto-batcher's admission
// step: the queue naturally hands over the longest same-kind run that
// has accumulated while every worker was busy — deeper backlog, wider
// msbfs waves, which is exactly the load-adaptive batching the bit
// engine's 64-way amortization wants.  Across kinds, pop_batch serves
// the FIFO whose head request has waited longest.  A popped run may
// span graphs — the batcher partitions it per graph slot before
// executing.
#pragma once

#include "platform/thread_annotations.hpp"
#include "serving/request.hpp"

#include <array>
#include <cstddef>
#include <deque>
#include <vector>

namespace bitgb::serving {

/// What happened to a try_push — the two refusals are distinct because
/// the server sheds them with different statuses (kShedQueueFull vs
/// kShedShutdown).
enum class PushOutcome : std::uint8_t {
  kAccepted,  ///< enqueued; a worker now owns fulfilling the promise
  kFull,      ///< refused: queue at capacity (request left with caller)
  kClosed,    ///< refused: close() already ran (request left with caller)
};

class RequestQueue {
 public:
  explicit RequestQueue(std::size_t capacity);

  /// Admission: enqueue if open and total depth < capacity.  On
  /// refusal (kFull/kClosed) `r` is left untouched — the promise stays
  /// with the caller to shed.
  [[nodiscard]] PushOutcome try_push(Request&& r) EXCLUDES(m_);

  /// Pop up to max_batch requests of one kind, appended to `out`
  /// (which is cleared first).  Blocks while the queue is empty and
  /// open; returns the number popped, 0 only when closed and drained.
  std::size_t pop_batch(std::vector<Request>& out, int max_batch)
      EXCLUDES(m_);

  /// Close admission.  Pending requests still drain through pop_batch;
  /// once empty, pop_batch returns 0 to every worker.
  void close() EXCLUDES(m_);

  [[nodiscard]] std::size_t depth() const EXCLUDES(m_);
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  [[nodiscard]] std::size_t total_locked() const REQUIRES(m_) {
    std::size_t total = 0;
    for (const auto& q : kinds_) total += q.size();
    return total;
  }

  const std::size_t capacity_;
  mutable Mutex m_;
  CondVar cv_;
  /// Pending requests, one FIFO per QueryKind.
  std::array<std::deque<Request>, kNumQueryKinds> kinds_ GUARDED_BY(m_);
  bool closed_ GUARDED_BY(m_) = false;
};

}  // namespace bitgb::serving
