#include "serving/batcher.hpp"

#include "algorithms/bfs.hpp"
#include "algorithms/msbfs.hpp"
#include "core/frontier_batch.hpp"

#include <cassert>
#include <chrono>
#include <utility>

namespace bitgb::serving {

namespace {

double ms_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Fulfill one request with a shed status (no result payload).
void shed(Request& r, Status status, clock::time_point now) {
  Reply reply;
  reply.status = status;
  reply.kind = r.kind;
  reply.source = r.source;
  reply.queue_ms = ms_between(r.submitted, now);
  reply.completed = now;
  r.promise.set_value(std::move(reply));
}

/// Single-request fast path: the plain single-source algorithms — also
/// the execution model of the unbatched (max_batch = 1) ablation.
void serve_single(const Context& ctx, const gb::Graph& g, Request& r,
                  algo::Workspace& ws, clock::time_point started) {
  auto& out = ws.slot<algo::BfsResult>("serving.bfs_out");
  algo::bfs(ctx, g, {r.source}, ws, out);

  Reply reply;
  reply.status = Status::kOk;
  reply.kind = r.kind;
  reply.source = r.source;
  reply.batch_width = 1;
  reply.queue_ms = ms_between(r.submitted, started);
  if (r.kind == QueryKind::kBfs) {
    reply.levels = out.levels;
  } else {
    reply.reached.resize(out.levels.size());
    for (std::size_t v = 0; v < out.levels.size(); ++v) {
      reply.reached[v] =
          static_cast<std::uint8_t>(out.levels[v] != algo::kUnreached);
    }
  }
  reply.completed = clock::now();
  r.promise.set_value(std::move(reply));
}

}  // namespace

BatchOutcome serve_batch(const Context& ctx, const gb::Graph& g,
                         std::vector<Request>& batch, algo::Workspace& ws) {
  BatchOutcome outcome;
  if (batch.empty()) return outcome;
  assert(batch.size() <=
         static_cast<std::size_t>(FrontierBatch::kMaxBatch));

  // Deadline gate: anything that expired while queued is shed without
  // touching the graph — under overload the wave stays full of queries
  // someone is still waiting for.
  const clock::time_point started = clock::now();
  auto& live = ws.slot<std::vector<Request*>>("serving.live");
  live.clear();
  for (auto& r : batch) {
    if (r.deadline < started) {
      shed(r, Status::kShedDeadline, started);
      ++outcome.shed_deadline;
    } else {
      live.push_back(&r);
    }
  }
  if (live.empty()) return outcome;
  outcome.width = static_cast<int>(live.size());
  outcome.executed = static_cast<int>(live.size());

  if (live.size() == 1) {
    serve_single(ctx, g, *live.front(), ws, started);
    return outcome;
  }

  // The wave: every live source rides one batched traversal.
  auto& sources = ws.slot<std::vector<vidx_t>>("serving.sources");
  sources.clear();
  for (const Request* r : live) sources.push_back(r->source);

  const QueryKind kind = live.front()->kind;
  if (kind == QueryKind::kBfs) {
    auto& params = ws.slot<algo::MsBfsParams>("serving.msbfs_params");
    params.sources = sources;
    auto& out = ws.slot<algo::MsBfsResult>("serving.msbfs_out");
    algo::msbfs(ctx, g, params, ws, out);
    const clock::time_point done = clock::now();
    for (std::size_t b = 0; b < live.size(); ++b) {
      Request& r = *live[b];
      Reply reply;
      reply.status = Status::kOk;
      reply.kind = r.kind;
      reply.source = r.source;
      reply.batch_width = static_cast<int>(live.size());
      reply.queue_ms = ms_between(r.submitted, started);
      algo::scatter_levels(out, static_cast<int>(b), reply.levels);
      reply.completed = done;
      r.promise.set_value(std::move(reply));
    }
  } else {
    const FrontierBatch& reach = algo::batched_reach(ctx, g, sources, ws);
    const clock::time_point done = clock::now();
    for (std::size_t b = 0; b < live.size(); ++b) {
      Request& r = *live[b];
      Reply reply;
      reply.status = Status::kOk;
      reply.kind = r.kind;
      reply.source = r.source;
      reply.batch_width = static_cast<int>(live.size());
      reply.queue_ms = ms_between(r.submitted, started);
      algo::scatter_reached(reach, static_cast<int>(b), reply.reached);
      reply.completed = done;
      r.promise.set_value(std::move(reply));
    }
  }
  return outcome;
}

}  // namespace bitgb::serving
