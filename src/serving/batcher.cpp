#include "serving/batcher.hpp"

#include "algorithms/bfs.hpp"
#include "algorithms/msbfs.hpp"
#include "algorithms/pagerank.hpp"
#include "core/frontier_batch.hpp"

#include <cassert>
#include <chrono>
#include <utility>

namespace bitgb::serving {

namespace {

double ms_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Fulfill one request with a shed status (no result payload).
void shed(Request& r, Status status, clock::time_point now) {
  Reply reply;
  reply.status = status;
  reply.kind = r.kind;
  reply.source = r.source;
  if (r.slot) {
    reply.graph = r.slot->name();
    reply.graph_generation = r.slot->generation();
  }
  reply.queue_ms = ms_between(r.submitted, now);
  reply.completed = now;
  r.promise.set_value(std::move(reply));
}

/// The serving-telemetry header every kOk reply carries.
Reply ok_reply(const Request& r, int width, clock::time_point started) {
  Reply reply;
  reply.status = Status::kOk;
  reply.kind = r.kind;
  reply.source = r.source;
  reply.graph = r.slot->name();
  reply.graph_generation = r.slot->generation();
  reply.batch_width = width;
  reply.queue_ms = ms_between(r.submitted, started);
  return reply;
}

/// Single-request traversal fast path: the plain single-source
/// algorithms — also the execution model of the unbatched (max_batch =
/// 1) ablation.
void serve_single_traversal(const Context& ctx, Request& r,
                            algo::Workspace& ws,
                            clock::time_point started) {
  const gb::Graph& g = r.slot->graph();
  auto& out = ws.slot<algo::BfsResult>("serving.bfs_out");
  algo::bfs(ctx, g, {r.source}, ws, out);

  Reply reply = ok_reply(r, 1, started);
  if (r.kind == QueryKind::kBfs) {
    reply.levels = out.levels;
  } else {
    reply.reached.resize(out.levels.size());
    for (std::size_t v = 0; v < out.levels.size(); ++v) {
      reply.reached[v] =
          static_cast<std::uint8_t>(out.levels[v] != algo::kUnreached);
    }
  }
  reply.completed = clock::now();
  r.promise.set_value(std::move(reply));
}

/// One same-graph traversal wave: every live source rides one batched
/// msbfs / batched_reach sweep.
void serve_traversal_wave(const Context& ctx,
                          std::vector<Request*>::iterator first,
                          std::vector<Request*>::iterator last,
                          algo::Workspace& ws, clock::time_point started) {
  const auto width = static_cast<int>(last - first);
  if (width == 1) {
    serve_single_traversal(ctx, **first, ws, started);
    return;
  }
  const gb::Graph& g = (*first)->slot->graph();
  auto& sources = ws.slot<std::vector<vidx_t>>("serving.sources");
  sources.clear();
  for (auto it = first; it != last; ++it) sources.push_back((*it)->source);

  const QueryKind kind = (*first)->kind;
  if (kind == QueryKind::kBfs) {
    auto& params = ws.slot<algo::MsBfsParams>("serving.msbfs_params");
    params.sources = sources;
    auto& out = ws.slot<algo::MsBfsResult>("serving.msbfs_out");
    algo::msbfs(ctx, g, params, ws, out);
    const clock::time_point done = clock::now();
    for (auto it = first; it != last; ++it) {
      Request& r = **it;
      Reply reply = ok_reply(r, width, started);
      algo::scatter_levels(out, static_cast<int>(it - first), reply.levels);
      reply.completed = done;
      r.promise.set_value(std::move(reply));
    }
  } else {
    const FrontierBatch& reach = algo::batched_reach(ctx, g, sources, ws);
    const clock::time_point done = clock::now();
    for (auto it = first; it != last; ++it) {
      Request& r = **it;
      Reply reply = ok_reply(r, width, started);
      algo::scatter_reached(reach, static_cast<int>(it - first),
                            reply.reached);
      reply.completed = done;
      r.promise.set_value(std::move(reply));
    }
  }
}

/// One same-graph components wave: every request in the partition reads
/// the slot's memoized labelling (the first ever reader computes it).
void serve_components_wave(const Context& ctx,
                           std::vector<Request*>::iterator first,
                           std::vector<Request*>::iterator last,
                           algo::Workspace& ws, clock::time_point started) {
  const auto width = static_cast<int>(last - first);
  const GraphSlot& slot = *(*first)->slot;
  const algo::BatchedCcResult& cc = slot.components(ctx, ws);
  const clock::time_point done = clock::now();
  for (auto it = first; it != last; ++it) {
    Request& r = **it;
    Reply reply = ok_reply(r, width, started);
    reply.component = cc.component;
    reply.iterations = cc.waves;
    reply.completed = done;
    r.promise.set_value(std::move(reply));
  }
}

/// PageRank runs per-request: the params travelled in the request, the
/// scratch is the worker's own Workspace.
void serve_pagerank(const Context& ctx, Request& r, algo::Workspace& ws,
                    clock::time_point started) {
  const gb::Graph& g = r.slot->graph();
  auto& out = ws.slot<algo::PageRankResult>("serving.pagerank_out");
  algo::pagerank(ctx, g, r.pagerank, ws, out);

  Reply reply = ok_reply(r, 1, started);
  reply.rank = out.rank;
  reply.iterations = out.iterations;
  reply.completed = clock::now();
  r.promise.set_value(std::move(reply));
}

}  // namespace

BatchOutcome serve_batch(const Context& ctx, std::vector<Request>& batch,
                         algo::Workspace& ws,
                         std::vector<int>& wave_widths) {
  BatchOutcome outcome;
  if (batch.empty()) return outcome;
  assert(batch.size() <=
         static_cast<std::size_t>(FrontierBatch::kMaxBatch));

  // Deadline gate: anything that expired while queued is shed without
  // touching the graph — under overload the wave stays full of queries
  // someone is still waiting for.
  const clock::time_point started = clock::now();
  auto& live = ws.slot<std::vector<Request*>>("serving.live");
  live.clear();
  for (auto& r : batch) {
    if (r.deadline < started) {
      shed(r, Status::kShedDeadline, started);
      ++outcome.shed_deadline;
    } else {
      live.push_back(&r);
    }
  }
  if (live.empty()) return outcome;
  outcome.executed = static_cast<int>(live.size());

  // Partition by graph slot: a popped run is same-kind but may span
  // registered graphs, and a wave can only sweep one adjacency.  FIFO
  // order within each partition is preserved (stable partitioning by
  // first-seen slot), so a graph's own queries still serve in order.
  auto record_wave = [&](int width) {
    ++outcome.waves;
    outcome.widest = std::max(outcome.widest, width);
    wave_widths.push_back(width);
  };
  const QueryKind kind = live.front()->kind;
  auto begin = live.begin();
  while (begin != live.end()) {
    const GraphSlot* slot = (*begin)->slot.get();
    auto end = std::stable_partition(
        begin, live.end(),
        [slot](const Request* r) { return r->slot.get() == slot; });
    const auto width = static_cast<int>(end - begin);
    switch (kind) {
      case QueryKind::kBfs:
      case QueryKind::kReach:
        serve_traversal_wave(ctx, begin, end, ws, started);
        record_wave(width);
        break;
      case QueryKind::kComponents:
        serve_components_wave(ctx, begin, end, ws, started);
        record_wave(width);
        break;
      case QueryKind::kPagerank:
        // Nothing to coalesce: params differ per request, so each one
        // is its own width-1 wave on the worker's workspace.
        for (auto it = begin; it != end; ++it) {
          serve_pagerank(ctx, **it, ws, started);
          record_wave(1);
        }
        break;
    }
    begin = end;
  }
  return outcome;
}

}  // namespace bitgb::serving
