#include "serving/batcher.hpp"

#include "algorithms/bfs.hpp"
#include "algorithms/msbfs.hpp"
#include "algorithms/pagerank.hpp"
#include "core/frontier_batch.hpp"
#include "platform/cancel.hpp"

#include <cassert>
#include <chrono>
#include <exception>
#include <utility>

namespace bitgb::serving {

namespace {

using RequestIt = std::vector<Request*>::iterator;

double ms_between(clock::time_point from, clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Fulfill a promise that MAY already be satisfied (a wave that threw
/// partway fulfilled a prefix of its requests first).  Returns whether
/// this call did the fulfilling.  Never throws: promise_already_
/// satisfied is expected here, and anything else would mean the promise
/// has no shared state — either way the right move is to move on.
bool try_fulfill(Request& r, Reply&& reply) noexcept {
  try {
    r.promise.set_value(std::move(reply));
    return true;
  } catch (const std::future_error&) {
    return false;
  }
}

/// Fulfill one request with a shed status (no result payload).
/// `iterations` > 0 records a cooperatively-aborted wave's progress.
void shed(Request& r, Status status, clock::time_point now,
          int iterations = 0) {
  Reply reply;
  reply.status = status;
  reply.kind = r.kind;
  reply.source = r.source;
  if (r.slot) {
    reply.graph = r.slot->name();
    reply.graph_generation = r.slot->generation();
  }
  reply.iterations = iterations;
  reply.queue_ms = ms_between(r.submitted, now);
  reply.completed = now;
  try_fulfill(r, std::move(reply));
}

/// Fulfill one request with kInternalError carrying the contained
/// exception's text.  Returns whether the promise was still pending
/// (false = the wave fulfilled it kOk before throwing).
bool fulfill_error(Request& r, const char* what, clock::time_point now) {
  Reply reply;
  reply.status = Status::kInternalError;
  reply.kind = r.kind;
  reply.source = r.source;
  if (r.slot) {
    reply.graph = r.slot->name();
    reply.graph_generation = r.slot->generation();
  }
  reply.error = what != nullptr ? what : "unknown exception";
  reply.queue_ms = ms_between(r.submitted, now);
  reply.completed = now;
  return try_fulfill(r, std::move(reply));
}

/// The serving-telemetry header every kOk reply carries.
Reply ok_reply(const Request& r, int width, clock::time_point started) {
  Reply reply;
  reply.status = Status::kOk;
  reply.kind = r.kind;
  reply.source = r.source;
  reply.graph = r.slot->name();
  reply.graph_generation = r.slot->generation();
  reply.batch_width = width;
  reply.queue_ms = ms_between(r.submitted, started);
  return reply;
}

/// The latest deadline aboard [first, last): the wave keeps running
/// while ANY rider still wants the answer, so the per-wave cancel
/// token arms with the maximum.  time_point::max() = nobody expires.
clock::time_point wave_deadline(RequestIt first, RequestIt last) {
  clock::time_point latest = clock::time_point::min();
  for (auto it = first; it != last; ++it) {
    latest = std::max(latest, (*it)->deadline);
  }
  return latest;
}

/// How one wave resolved its requests (kOk vs mid-flight shed).
struct WaveServed {
  int ok = 0;
  int shed = 0;
};

/// Single-request traversal fast path: the plain single-source
/// algorithms — also the execution model of the unbatched (max_batch =
/// 1) ablation.
WaveServed serve_single_traversal(const Context& ctx, Request& r,
                                  algo::Workspace& ws,
                                  clock::time_point started) {
  CancelToken token(r.deadline);
  const Context wctx = r.deadline < clock::time_point::max()
                           ? ctx.with_cancel(&token)
                           : ctx;
  const gb::Graph& g = r.slot->graph();
  auto& out = ws.slot<algo::BfsResult>("serving.bfs_out");
  algo::bfs(wctx, g, {r.source}, ws, out);
  if (token.cancelled()) {
    shed(r, Status::kShedDeadline, clock::now());
    return {0, 1};
  }

  Reply reply = ok_reply(r, 1, started);
  if (r.kind == QueryKind::kBfs) {
    reply.levels = out.levels;
  } else {
    reply.reached.resize(out.levels.size());
    for (std::size_t v = 0; v < out.levels.size(); ++v) {
      reply.reached[v] =
          static_cast<std::uint8_t>(out.levels[v] != algo::kUnreached);
    }
  }
  reply.completed = clock::now();
  try_fulfill(r, std::move(reply));
  return {1, 0};
}

/// One same-graph traversal wave: every live source rides one batched
/// msbfs / batched_reach sweep under a shared cancel token armed with
/// the wave's LATEST deadline — the wave aborts mid-flight only once
/// every rider has expired, so cancellation never discards work
/// somebody is still waiting on.
WaveServed serve_traversal_wave(const Context& ctx, RequestIt first,
                                RequestIt last, algo::Workspace& ws,
                                clock::time_point started) {
  const auto width = static_cast<int>(last - first);
  if (width == 1) {
    return serve_single_traversal(ctx, **first, ws, started);
  }
  const clock::time_point latest = wave_deadline(first, last);
  CancelToken token(latest);
  const Context wctx =
      latest < clock::time_point::max() ? ctx.with_cancel(&token) : ctx;

  const gb::Graph& g = (*first)->slot->graph();
  auto& sources = ws.slot<std::vector<vidx_t>>("serving.sources");
  sources.clear();
  for (auto it = first; it != last; ++it) sources.push_back((*it)->source);

  const QueryKind kind = (*first)->kind;
  if (kind == QueryKind::kBfs) {
    auto& params = ws.slot<algo::MsBfsParams>("serving.msbfs_params");
    params.sources = sources;
    auto& out = ws.slot<algo::MsBfsResult>("serving.msbfs_out");
    algo::msbfs(wctx, g, params, ws, out);
    if (token.cancelled()) {
      const clock::time_point now = clock::now();
      for (auto it = first; it != last; ++it) {
        shed(**it, Status::kShedDeadline, now);
      }
      return {0, width};
    }
    const clock::time_point done = clock::now();
    for (auto it = first; it != last; ++it) {
      Request& r = **it;
      Reply reply = ok_reply(r, width, started);
      algo::scatter_levels(out, static_cast<int>(it - first), reply.levels);
      reply.completed = done;
      try_fulfill(r, std::move(reply));
    }
  } else {
    const FrontierBatch& reach = algo::batched_reach(wctx, g, sources, ws);
    if (token.cancelled()) {
      const clock::time_point now = clock::now();
      for (auto it = first; it != last; ++it) {
        shed(**it, Status::kShedDeadline, now);
      }
      return {0, width};
    }
    const clock::time_point done = clock::now();
    for (auto it = first; it != last; ++it) {
      Request& r = **it;
      Reply reply = ok_reply(r, width, started);
      algo::scatter_reached(reach, static_cast<int>(it - first),
                            reply.reached);
      reply.completed = done;
      try_fulfill(r, std::move(reply));
    }
  }
  return {width, 0};
}

/// One same-graph components wave: every request in the partition reads
/// the slot's memoized labelling (the first ever reader computes it).
/// The memo is computed with the cancel token STRIPPED: the memo caches
/// whatever the compute produced, and a partially-labelled graph must
/// never become the registration's answer.  Fault injection stays armed
/// — a throwing memo attempt is retryable (the slot treats it as not
/// having run), so a poisoned attempt is never cached either.
WaveServed serve_components_wave(const Context& ctx, RequestIt first,
                                 RequestIt last, algo::Workspace& ws,
                                 clock::time_point started) {
  const auto width = static_cast<int>(last - first);
  const GraphSlot& slot = *(*first)->slot;
  const algo::BatchedCcResult& cc =
      slot.components(ctx.with_cancel(nullptr), ws);
  const clock::time_point done = clock::now();
  for (auto it = first; it != last; ++it) {
    Request& r = **it;
    Reply reply = ok_reply(r, width, started);
    reply.component = cc.component;
    reply.iterations = cc.waves;
    reply.completed = done;
    try_fulfill(r, std::move(reply));
  }
  return {width, 0};
}

/// PageRank runs per-request: the params travelled in the request, the
/// scratch is the worker's own Workspace.  An expired request aborts at
/// the next iteration boundary; the shed reply's `iterations` records
/// how many iterations ran before the token fired (< the requested
/// max — the proof the query stopped burning its budget).
WaveServed serve_pagerank(const Context& ctx, Request& r, algo::Workspace& ws,
                          clock::time_point started) {
  CancelToken token(r.deadline);
  const Context wctx = r.deadline < clock::time_point::max()
                           ? ctx.with_cancel(&token)
                           : ctx;
  const gb::Graph& g = r.slot->graph();
  auto& out = ws.slot<algo::PageRankResult>("serving.pagerank_out");
  algo::pagerank(wctx, g, r.pagerank, ws, out);
  if (token.cancelled()) {
    shed(r, Status::kShedDeadline, clock::now(), out.iterations);
    return {0, 1};
  }

  Reply reply = ok_reply(r, 1, started);
  reply.rank = out.rank;
  reply.iterations = out.iterations;
  reply.completed = clock::now();
  try_fulfill(r, std::move(reply));
  return {1, 0};
}

}  // namespace

int fail_unfulfilled(std::vector<Request>& batch, const char* what) noexcept {
  int filled = 0;
  for (auto& r : batch) {
    if (fulfill_error(r, what, clock::now())) ++filled;
  }
  return filled;
}

void serve_batch(const Context& ctx, const CircuitBreakerPolicy& breaker,
                 std::vector<Request>& batch, algo::Workspace& ws,
                 std::vector<int>& wave_widths, BatchOutcome& outcome) {
  if (batch.empty()) return;
  assert(batch.size() <=
         static_cast<std::size_t>(FrontierBatch::kMaxBatch));

  // Deadline gate: anything that expired while queued is shed without
  // touching the graph — under overload the wave stays full of queries
  // someone is still waiting for.
  const clock::time_point started = clock::now();
  auto& live = ws.slot<std::vector<Request*>>("serving.live");
  live.clear();
  for (auto& r : batch) {
    if (r.deadline < started) {
      shed(r, Status::kShedDeadline, started);
      ++outcome.shed_deadline;
    } else {
      live.push_back(&r);
    }
  }
  if (live.empty()) return;

  // Partition by graph slot: a popped run is same-kind but may span
  // registered graphs, and a wave can only sweep one adjacency.  FIFO
  // order within each partition is preserved (stable partitioning by
  // first-seen slot), so a graph's own queries still serve in order.
  auto record_wave = [&](int width) {
    ++outcome.waves;
    outcome.widest = std::max(outcome.widest, width);
    wave_widths.push_back(width);
  };
  // Resolve one wave's WaveServed into the outcome + breaker: a wave
  // with at least one kOk answer is health evidence (close the
  // breaker); a fully-shed wave judged nothing (release any probe).
  auto settle_wave = [&](const WaveServed& served, CircuitBreaker& cb,
                         int width) {
    outcome.executed += served.ok;
    outcome.shed_deadline += served.shed;
    if (served.ok > 0) {
      cb.record_success();
      record_wave(width);
    } else {
      cb.abandon_probe();
    }
  };
  // A wave threw: contain it.  Every request of the wave that was not
  // already fulfilled kOk before the throw resolves kInternalError; the
  // breaker records the failure.
  auto settle_throw = [&](RequestIt first, RequestIt last,
                          CircuitBreaker& cb, const char* what) {
    const clock::time_point now = clock::now();
    int errs = 0;
    for (auto it = first; it != last; ++it) {
      if (fulfill_error(**it, what, now)) ++errs;
    }
    outcome.failed += errs;
    outcome.executed += static_cast<int>(last - first) - errs;
    cb.record_failure(breaker, now);
  };

  const QueryKind kind = live.front()->kind;
  auto begin = live.begin();
  while (begin != live.end()) {
    const GraphSlot* slot = (*begin)->slot.get();
    auto end = std::stable_partition(
        begin, live.end(),
        [slot](const Request* r) { return r->slot.get() == slot; });
    const auto width = static_cast<int>(end - begin);
    CircuitBreaker& cb = slot->breaker();

    // Circuit gate: an open breaker sheds the whole partition without
    // touching the graph — the fast-fail that keeps a poisoned slot
    // from eating worker time and caller deadlines.  allow() may claim
    // the half-open probe; every path below resolves it.
    if (!cb.allow(breaker, clock::now())) {
      const clock::time_point now = clock::now();
      for (auto it = begin; it != end; ++it) {
        shed(**it, Status::kShedCircuitOpen, now);
      }
      outcome.shed_circuit += width;
      begin = end;
      continue;
    }

    // Fault-injection wave hook (deterministic induced delay): placed
    // AFTER the deadline gate so an injected stall exercises the
    // mid-flight cancellation path, not the pre-wave shed.
    if (ctx.fault != nullptr) ctx.fault->on_wave();

    switch (kind) {
      case QueryKind::kBfs:
      case QueryKind::kReach:
        try {
          settle_wave(serve_traversal_wave(ctx, begin, end, ws, started),
                      cb, width);
        } catch (const std::exception& e) {
          settle_throw(begin, end, cb, e.what());
        } catch (...) {
          settle_throw(begin, end, cb, "unknown exception");
        }
        break;
      case QueryKind::kComponents:
        try {
          settle_wave(serve_components_wave(ctx, begin, end, ws, started),
                      cb, width);
        } catch (const std::exception& e) {
          settle_throw(begin, end, cb, e.what());
        } catch (...) {
          settle_throw(begin, end, cb, "unknown exception");
        }
        break;
      case QueryKind::kPagerank:
        // Nothing to coalesce: params differ per request, so each one
        // is its own width-1 wave — and its own failure domain (one
        // throwing pagerank does not fail its partition neighbours).
        // The breaker re-gates each request: K failures here trip it
        // mid-partition and the remainder sheds fast.
        for (auto it = begin; it != end; ++it) {
          if (it != begin && !cb.allow(breaker, clock::now())) {
            shed(**it, Status::kShedCircuitOpen, clock::now());
            ++outcome.shed_circuit;
            continue;
          }
          try {
            settle_wave(serve_pagerank(ctx, **it, ws, started), cb, 1);
          } catch (const std::exception& e) {
            settle_throw(it, it + 1, cb, e.what());
          } catch (...) {
            settle_throw(it, it + 1, cb, "unknown exception");
          }
        }
        break;
    }
    begin = end;
  }
}

}  // namespace bitgb::serving
