// GraphRegistry — named, prewarmed graphs behind one server.
//
// Production traffic is many datasets, not one: the registry maps graph
// names to GraphSlot entries, each holding a prewarmed gb::Graph plus
// the per-registration metadata the serving layer needs.  Lookups are
// snapshot-consistent: submit() resolves a name to a
// shared_ptr<const GraphSlot> once at admission, the Request carries
// that snapshot, and a concurrent remove() (or a replacing add()) only
// drops the registry's own reference — every in-flight query keeps its
// graph alive through shared ownership and drains safely, after which
// the slot (and its Graph) is freed by the last reply.
//
// Each registration gets a monotonically increasing generation.  A
// re-add under the same name is a NEW slot with a NEW generation, which
// is what invalidates memoized whole-graph results: the kComponents
// memo lives inside the slot, so a stale answer cannot outlive the
// registration that produced it.
#pragma once

#include "algorithms/batched_cc.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace bitgb::serving {

/// One registered graph: the handle, its registration identity, and the
/// memoized whole-graph results every same-generation query shares.
class GraphSlot {
 public:
  /// Owning slot (the registry path; the Graph moves in).
  GraphSlot(std::string name, std::uint64_t generation, gb::Graph g)
      : name_(std::move(name)),
        generation_(generation),
        owned_(std::move(g)),
        graph_(&*owned_) {}

  /// Borrowing slot (the single-graph Server constructor; the caller
  /// guarantees the Graph outlives the slot).
  GraphSlot(std::string name, std::uint64_t generation, const gb::Graph* g)
      : name_(std::move(name)), generation_(generation), graph_(g) {}

  GraphSlot(const GraphSlot&) = delete;
  GraphSlot& operator=(const GraphSlot&) = delete;

  [[nodiscard]] const gb::Graph& graph() const { return *graph_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// The memoized connected-components labelling: the first kComponents
  /// query on this slot pays one batched_cc over the whole graph (under
  /// the caller's descriptor and workspace); every later query — from
  /// any worker — reads the shared result.  Thread-safe; the memo dies
  /// with the slot, so a registry re-add (new slot, new generation) can
  /// never serve a stale labelling.
  [[nodiscard]] const algo::BatchedCcResult& components(
      const Context& ctx, algo::Workspace& ws) const {
    std::call_once(cc_once_, [&] {
      algo::batched_cc(ctx, *graph_, {}, ws, cc_);
    });
    return cc_;
  }

 private:
  std::string name_;
  std::uint64_t generation_ = 0;
  std::optional<gb::Graph> owned_;
  const gb::Graph* graph_ = nullptr;
  mutable std::once_flag cc_once_;
  mutable algo::BatchedCcResult cc_;
};

using GraphRef = std::shared_ptr<const GraphSlot>;

/// Concurrent name → GraphSlot map.  add/remove/lookup may race freely;
/// a lookup returns the slot registered at that instant (or null), and
/// holding the returned GraphRef is what keeps the slot alive.
class GraphRegistry {
 public:
  GraphRegistry() = default;
  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Register `name`, replacing any previous registration (the old slot
  /// stays alive for its in-flight queries).  The graph is prewarmed
  /// (`warm` formats, off the query path) before the slot becomes
  /// visible, so no query pays a one-time conversion.  Returns the new
  /// slot.
  GraphRef add(std::string name, gb::Graph g,
               gb::FormatSet warm = gb::kBitFormats);

  /// Drop `name` from the map.  In-flight queries holding the slot
  /// drain safely; returns false if the name was not registered.
  bool remove(std::string_view name);

  /// Snapshot lookup: the slot registered under `name` right now, or
  /// null.  The returned reference stays valid across any later
  /// remove()/add().
  [[nodiscard]] GraphRef lookup(std::string_view name) const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

 private:
  mutable std::mutex m_;
  std::vector<std::pair<std::string, GraphRef>> slots_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace bitgb::serving
