// GraphRegistry — named, prewarmed graphs behind one server.
//
// Production traffic is many datasets, not one: the registry maps graph
// names to GraphSlot entries, each holding a prewarmed gb::Graph plus
// the per-registration metadata the serving layer needs.  Lookups are
// snapshot-consistent: submit() resolves a name to a
// shared_ptr<const GraphSlot> once at admission, the Request carries
// that snapshot, and a concurrent remove() (or a replacing add()) only
// drops the registry's own reference — every in-flight query keeps its
// graph alive through shared ownership and drains safely, after which
// the slot (and its Graph) is freed by the last reply.
//
// Each registration gets a monotonically increasing generation.  A
// re-add under the same name is a NEW slot with a NEW generation, which
// is what invalidates memoized whole-graph results: the kComponents
// memo lives inside the slot, so a stale answer cannot outlive the
// registration that produced it.
#pragma once

#include "algorithms/batched_cc.hpp"
#include "graphblas/graph.hpp"
#include "platform/context.hpp"
#include "platform/fault_injector.hpp"
#include "platform/thread_annotations.hpp"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace bitgb::serving {

/// Circuit-breaker tuning (policy lives with the Server so one registry
/// can back servers with different tolerances; the STATE lives in the
/// slot, because health is a property of a registration).
/// trip_after <= 0 disables the breaker entirely.
struct CircuitBreakerPolicy {
  /// Consecutive internal errors on one slot before it trips open.
  int trip_after = 3;
  /// How long a tripped slot sheds fast before admitting one re-probe.
  std::chrono::milliseconds cooldown{100};
};

/// Per-slot failure-domain gate.  Closed (the normal state) admits
/// everything; `trip_after` consecutive wave failures open it, and an
/// open breaker sheds instantly — a slot whose graph reliably kills
/// waves (poisoned data, an allocation pattern that exhausts memory)
/// stops consuming worker time and stops timing out its callers.
/// After `cooldown`, exactly one request is admitted as a half-open
/// probe: success closes the breaker, failure re-opens it for another
/// cooldown.  All state is atomic — every worker of every server
/// sharing the slot consults the same breaker.
class CircuitBreaker {
 public:
  using clock = std::chrono::steady_clock;

  /// May this wave execute?  Claims the half-open probe when it says
  /// yes to a cooled-down breaker — the caller MUST then resolve the
  /// probe via record_success / record_failure / abandon_probe.
  [[nodiscard]] bool allow(const CircuitBreakerPolicy& p,
                           clock::time_point now) {
    if (p.trip_after <= 0) return true;
    const auto open_until = open_until_.load(std::memory_order_acquire);
    if (open_until == 0) return true;  // closed
    if (now.time_since_epoch().count() < open_until) return false;  // open
    // Half-open: admit one probe at a time; everyone else sheds until
    // the probe resolves.
    bool expected = false;
    return probe_in_flight_.compare_exchange_strong(
        expected, true, std::memory_order_acq_rel);
  }

  /// A wave on this slot completed OK: close the breaker.
  void record_success() {
    consecutive_.store(0, std::memory_order_relaxed);
    open_until_.store(0, std::memory_order_release);
    probe_in_flight_.store(false, std::memory_order_release);
  }

  /// A wave on this slot died with an internal error.
  void record_failure(const CircuitBreakerPolicy& p, clock::time_point now) {
    const int n = consecutive_.fetch_add(1, std::memory_order_acq_rel) + 1;
    if (p.trip_after > 0 && n >= p.trip_after) {
      if (open_until_.exchange(
              (now + p.cooldown).time_since_epoch().count(),
              std::memory_order_acq_rel) == 0) {
        trips_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    probe_in_flight_.store(false, std::memory_order_release);
  }

  /// The admitted probe never executed (e.g. its whole wave was
  /// deadline-shed): release the probe claim, judging nothing.
  void abandon_probe() {
    probe_in_flight_.store(false, std::memory_order_release);
  }

  [[nodiscard]] bool is_open(clock::time_point now) const {
    const auto open_until = open_until_.load(std::memory_order_acquire);
    return open_until != 0 && now.time_since_epoch().count() < open_until;
  }
  [[nodiscard]] int consecutive_failures() const {
    return consecutive_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t trips() const {
    return trips_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<int> consecutive_{0};
  /// steady_clock ticks-since-epoch until which the breaker is open;
  /// 0 = closed.
  std::atomic<clock::rep> open_until_{0};
  std::atomic<bool> probe_in_flight_{false};
  std::atomic<std::uint64_t> trips_{0};
};

/// One registered graph: the handle, its registration identity, and the
/// memoized whole-graph results every same-generation query shares.
class GraphSlot {
 public:
  /// Owning slot (the registry path; the Graph moves in).
  GraphSlot(std::string name, std::uint64_t generation, gb::Graph g)
      : name_(std::move(name)),
        generation_(generation),
        owned_(std::make_shared<const gb::Graph>(std::move(g))),
        graph_(owned_.get()) {}

  /// Sharing slot (the fingerprint-dedup re-add path: a NEW generation
  /// over the SAME prewarmed graph, so memoized whole-graph results
  /// reset without re-paying the format conversions).
  GraphSlot(std::string name, std::uint64_t generation,
            std::shared_ptr<const gb::Graph> g)
      : name_(std::move(name)),
        generation_(generation),
        owned_(std::move(g)),
        graph_(owned_.get()) {}

  /// Borrowing slot (the single-graph Server constructor; the caller
  /// guarantees the Graph outlives the slot).
  GraphSlot(std::string name, std::uint64_t generation, const gb::Graph* g)
      : name_(std::move(name)), generation_(generation), graph_(g) {}

  GraphSlot(const GraphSlot&) = delete;
  GraphSlot& operator=(const GraphSlot&) = delete;

  [[nodiscard]] const gb::Graph& graph() const { return *graph_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// The shared ownership handle (null for a borrowing slot) — what the
  /// registry's dedup re-add grafts into the replacement slot.
  [[nodiscard]] const std::shared_ptr<const gb::Graph>& shared_graph() const {
    return owned_;
  }

  /// The memoized connected-components labelling: the first kComponents
  /// query on this slot pays one batched_cc over the whole graph (under
  /// the caller's descriptor and workspace); every later query — from
  /// any worker — reads the shared result.  Thread-safe; the memo dies
  /// with the slot, so a registry re-add (new slot, new generation) can
  /// never serve a stale labelling.
  /// If the labelling computation throws (allocator exhaustion, an
  /// injected kernel fault), the attempt is treated as not having
  /// happened: the exception propagates to the failing wave (which
  /// contains it as kInternalError) and the NEXT components query
  /// retries the memo — a poisoned attempt is never cached.
  ///
  /// Double-checked mutex rather than std::call_once: the exceptional
  /// retry is load-bearing here, and ThreadSanitizer's pthread_once
  /// interceptor does not understand an exception unwinding out of the
  /// callable — the once-flag stays locked and every later caller
  /// deadlocks.  A plain mutex + release-published flag has identical
  /// semantics (throw under the lock leaves the memo unset, RAII
  /// releases the lock, the next caller retries) and is clean under
  /// every sanitizer; the ready-path cost is one acquire load.
  [[nodiscard]] const algo::BatchedCcResult& components(
      const Context& ctx, algo::Workspace& ws) const EXCLUDES(cc_mutex_) {
    if (!cc_ready_.load(std::memory_order_acquire)) {
      const MutexLock lock(cc_mutex_);
      if (!cc_ready_.load(std::memory_order_relaxed)) {
        algo::batched_cc(ctx, *graph_, {}, ws, cc_);
        cc_ready_.store(true, std::memory_order_release);
      }
    }
    return published_components();
  }

  /// The slot's failure-domain gate (state only — the trip/cooldown
  /// policy rides with each Server's options).
  [[nodiscard]] CircuitBreaker& breaker() const { return breaker_; }

 private:
  /// The double-checked publication escape, in one audited spot: once
  /// cc_ready_ is observed true with acquire ordering, cc_ was fully
  /// written before the matching release store and is immutable for
  /// the slot's remaining lifetime — the lock-free read cannot race.
  /// The analysis cannot express release/acquire publication, hence
  /// the targeted opt-out on exactly this accessor.
  [[nodiscard]] const algo::BatchedCcResult& published_components() const
      NO_THREAD_SAFETY_ANALYSIS {
    return cc_;
  }

  std::string name_;
  std::uint64_t generation_ = 0;
  std::shared_ptr<const gb::Graph> owned_;
  const gb::Graph* graph_ = nullptr;
  mutable Mutex cc_mutex_;
  /// Publication flag for cc_: set (release) only after the labelling
  /// is complete, read (acquire) on the lock-free fast path.
  mutable std::atomic<bool> cc_ready_{false};
  mutable algo::BatchedCcResult cc_ GUARDED_BY(cc_mutex_);
  mutable CircuitBreaker breaker_;
};

using GraphRef = std::shared_ptr<const GraphSlot>;

/// What GraphRegistry::recover decided about one manifest entry.
enum class RecoveryStatus {
  kRecovered,    ///< snapshot loaded, validated, and registered
  kMissing,      ///< the manifest names a file that does not exist
  kQuarantined,  ///< the snapshot exists but failed validation — left on
                 ///< disk for forensics, NOT registered, NOT deleted
};

[[nodiscard]] const char* recovery_status_name(RecoveryStatus s);

struct RecoveryEntry {
  std::string name;      ///< registration name from the manifest
  std::string file;      ///< snapshot filename (relative to the dir)
  RecoveryStatus status = RecoveryStatus::kQuarantined;
  std::string error;     ///< what fired, for kMissing/kQuarantined
};

/// The outcome of one recover() pass: per-entry verdicts in manifest
/// order.  Quarantine is a first-class result, not an exception — one
/// corrupt snapshot must never take down the registrations that were
/// durably intact.
struct RecoveryReport {
  std::vector<RecoveryEntry> entries;

  [[nodiscard]] std::size_t recovered() const {
    return count(RecoveryStatus::kRecovered);
  }
  [[nodiscard]] std::size_t quarantined() const {
    return count(RecoveryStatus::kQuarantined);
  }
  [[nodiscard]] std::size_t missing() const {
    return count(RecoveryStatus::kMissing);
  }

 private:
  [[nodiscard]] std::size_t count(RecoveryStatus s) const {
    std::size_t n = 0;
    for (const auto& e : entries) n += (e.status == s) ? 1 : 0;
    return n;
  }
};

/// Concurrent name → GraphSlot map.  add/remove/lookup may race freely;
/// a lookup returns the slot registered at that instant (or null), and
/// holding the returned GraphRef is what keeps the slot alive.
///
/// Durability: save_all() persists every registration as a checksummed
/// snapshot plus a manifest; recover() replays a manifest on a fresh
/// process, quarantining anything torn or corrupted.  The manifest is
/// written LAST and atomically, so a crash mid-save_all leaves the
/// previous manifest pointing at the previous (complete) snapshot set.
class GraphRegistry {
 public:
  GraphRegistry() = default;
  GraphRegistry(const GraphRegistry&) = delete;
  GraphRegistry& operator=(const GraphRegistry&) = delete;

  /// Register `name`, replacing any previous registration (the old slot
  /// stays alive for its in-flight queries).  The graph is prewarmed
  /// (`warm` formats, off the query path) before the slot becomes
  /// visible, so no query pays a one-time conversion.  Returns the new
  /// slot.
  ///
  /// Re-add dedup: when the name is already registered with a graph of
  /// the SAME content fingerprint (and the existing graph already has
  /// every `warm` format materialized), the new slot shares the
  /// existing prewarmed graph instead of prewarming `g` — a new
  /// generation (memoized whole-graph results reset) at zero conversion
  /// cost.  dedup_hits() counts these.
  GraphRef add(std::string name, gb::Graph g,
               gb::FormatSet warm = gb::kBitFormats) EXCLUDES(m_);

  /// Drop `name` from the map.  In-flight queries holding the slot
  /// drain safely; returns false if the name was not registered.
  bool remove(std::string_view name) EXCLUDES(m_);

  /// Snapshot lookup: the slot registered under `name` right now, or
  /// null.  The returned reference stays valid across any later
  /// remove()/add().  Readers take the shared side of the map lock, so
  /// a serving fleet's lookups never serialize against each other —
  /// only against registrations, which are rare and slow anyway.
  [[nodiscard]] GraphRef lookup(std::string_view name) const EXCLUDES(m_);

  [[nodiscard]] std::vector<std::string> names() const EXCLUDES(m_);
  [[nodiscard]] std::size_t size() const EXCLUDES(m_);

  /// Name of the manifest file save_all writes / recover reads.
  static constexpr const char* kManifestFile = "MANIFEST";

  /// Persist every current registration into `dir` (created if absent):
  /// one snapshot file per distinct graph fingerprint
  /// (snap-<fingerprint>.bgbs, carrying the `formats` caches), then the
  /// manifest, atomically and last.  Registration names may not contain
  /// newlines (the manifest is line-oriented) — such names throw
  /// snap::SnapshotError(kMalformed) before anything is written.
  /// `fault` threads the io_* FaultInjector knobs through every write.
  void save_all(const std::string& dir,
                gb::FormatSet formats = gb::kBitFormats,
                FaultInjector* fault = nullptr) const EXCLUDES(m_);

  /// Warm restart: replay `dir`'s manifest, registering every snapshot
  /// that loads and validates cleanly (prewarmed to `warm` — free when
  /// the snapshot carried those formats) and quarantining the rest.  A
  /// missing manifest is an empty report (nothing was ever saved — not
  /// an error).  Never throws on a bad snapshot; the report says what
  /// happened to each entry, and recovered_count()/quarantined_count()
  /// accumulate across calls for ServerStats.
  /// The report is the ONLY place quarantine verdicts surface —
  /// dropping it silently discards corruption diagnoses, hence
  /// [[nodiscard]] (discard deliberately with (void) if you only want
  /// the registrations).
  [[nodiscard]] RecoveryReport recover(
      const std::string& dir,
      gb::FormatSet warm = gb::kBitFormats) EXCLUDES(m_);

  /// Re-adds that reused an existing prewarmed graph (same name, same
  /// fingerprint) instead of re-prewarming.
  [[nodiscard]] std::uint64_t dedup_hits() const {
    return dedup_hits_.load(std::memory_order_relaxed);
  }
  /// Manifest entries recovered / not-recovered over this registry's
  /// lifetime (all recover() calls); kMissing counts as quarantined
  /// here — both mean "manifested but not serving".
  [[nodiscard]] std::uint64_t recovered_count() const {
    return recovered_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t quarantined_count() const {
    return quarantined_.load(std::memory_order_relaxed);
  }

 private:
  mutable SharedMutex m_;
  std::vector<std::pair<std::string, GraphRef>> slots_ GUARDED_BY(m_);
  std::uint64_t next_generation_ GUARDED_BY(m_) = 1;
  std::atomic<std::uint64_t> dedup_hits_{0};
  std::atomic<std::uint64_t> recovered_{0};
  std::atomic<std::uint64_t> quarantined_{0};
};

}  // namespace bitgb::serving
