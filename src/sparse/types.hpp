// Fundamental index and value types.
//
// The paper's artifact (like cuSPARSE) uses 32-bit indices and float
// values; the whole library follows suit.  Binary adjacency matrices
// carry implicit value 1.0f, so formats for binary matrices omit the
// value array entirely (that omission is the point of the paper).
#pragma once

#include <cstdint>

namespace bitgb {

using vidx_t = std::int32_t;  ///< vertex / row / column index
using eidx_t = std::int64_t;  ///< edge / nonzero index (nnz can exceed 2^31)
using value_t = float;        ///< full-precision element (paper: 32-bit float)

}  // namespace bitgb
