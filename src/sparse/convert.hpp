// Format conversions (COO <-> CSR).
#pragma once

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace bitgb {

/// Build CSR from COO.  Input need not be sorted; duplicates are merged
/// (values summed, pattern kept single) as in Coo::sort_and_dedup.
[[nodiscard]] Csr coo_to_csr(const Coo& a);

/// Expand CSR back to (sorted) COO.
[[nodiscard]] Coo csr_to_coo(const Csr& a);

/// Dense row-major expansion for small-matrix tests and gold references.
[[nodiscard]] std::vector<value_t> csr_to_dense(const Csr& a);

/// Build a binary CSR from a dense row-major 0/1 matrix (test helper).
[[nodiscard]] Csr dense_to_csr(const std::vector<value_t>& dense, vidx_t nrows,
                               vidx_t ncols);

}  // namespace bitgb
