// Format conversions (COO <-> CSR, COO -> B2SR).
#pragma once

#include "core/b2sr.hpp"
#include "platform/exec.hpp"
#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

namespace bitgb {

/// Build CSR from COO.  Input need not be sorted; duplicates are merged
/// (values summed, pattern kept single) as in Coo::sort_and_dedup.
[[nodiscard]] Csr coo_to_csr(const Coo& a);

/// Stream a COO edge list straight into B2SR, skipping the CSR
/// materialization (and its full nnz sort) entirely: entries are
/// bucketed by tile-row, each tile-row discovers its distinct tile
/// columns with a generation-marked accumulator, and bits scatter in
/// one pass.  Input order is irrelevant and duplicates collapse (bit
/// OR is idempotent); values, if any, are ignored — a stored entry is
/// a 1, exactly as pack_from_csr treats CSR entries.  Bit-for-bit
/// identical to pack_from_csr(coo_to_csr(a)) (test_pack_pipeline).
template <int Dim>
[[nodiscard]] B2srT<Dim> pack_from_coo(const Coo& a, Exec exec = {});

/// Runtime-dim COO packing.
[[nodiscard]] B2srAny pack_coo_any(const Coo& a, int dim,
                                   Exec exec = {});

/// Expand CSR back to (sorted) COO.
[[nodiscard]] Coo csr_to_coo(const Csr& a);

/// Dense row-major expansion for small-matrix tests and gold references.
[[nodiscard]] std::vector<value_t> csr_to_dense(const Csr& a);

/// Build a binary CSR from a dense row-major 0/1 matrix (test helper).
[[nodiscard]] Csr dense_to_csr(const std::vector<value_t>& dense, vidx_t nrows,
                               vidx_t ncols);

}  // namespace bitgb
