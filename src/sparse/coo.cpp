#include "sparse/coo.hpp"

#include <algorithm>
#include <numeric>

namespace bitgb {

void Coo::sort_and_dedup() {
  const eidx_t n = nnz();
  if (n == 0) return;
  std::vector<eidx_t> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), eidx_t{0});
  std::sort(order.begin(), order.end(), [&](eidx_t a, eidx_t b) {
    const auto ia = static_cast<std::size_t>(a);
    const auto ib = static_cast<std::size_t>(b);
    if (row[ia] != row[ib]) return row[ia] < row[ib];
    return col[ia] < col[ib];
  });

  std::vector<vidx_t> new_row;
  std::vector<vidx_t> new_col;
  std::vector<value_t> new_val;
  new_row.reserve(static_cast<std::size_t>(n));
  new_col.reserve(static_cast<std::size_t>(n));
  if (!val.empty()) new_val.reserve(static_cast<std::size_t>(n));

  for (eidx_t k = 0; k < n; ++k) {
    const auto i = static_cast<std::size_t>(order[static_cast<std::size_t>(k)]);
    if (!new_row.empty() && new_row.back() == row[i] &&
        new_col.back() == col[i]) {
      if (!val.empty()) new_val.back() += val[i];  // MM duplicate convention
      continue;
    }
    new_row.push_back(row[i]);
    new_col.push_back(col[i]);
    if (!val.empty()) new_val.push_back(val[i]);
  }
  row = std::move(new_row);
  col = std::move(new_col);
  val = std::move(new_val);
}

bool Coo::validate() const {
  if (nrows < 0 || ncols < 0) return false;
  if (row.size() != col.size()) return false;
  if (!val.empty() && val.size() != row.size()) return false;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (row[i] < 0 || row[i] >= nrows) return false;
    if (col[i] < 0 || col[i] >= ncols) return false;
  }
  return true;
}

Coo with_unit_values(const Coo& a) {
  Coo out = a;
  out.val.assign(out.row.size(), 1.0f);
  return out;
}

Coo pattern_of(const Coo& a) {
  Coo out = a;
  out.val.clear();
  return out;
}

}  // namespace bitgb
