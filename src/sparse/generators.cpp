#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <unordered_set>

namespace bitgb {

namespace {

// 64-bit mix for pair-dedup hashing.
std::uint64_t edge_key(vidx_t r, vidx_t c) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(r)) << 32) |
         static_cast<std::uint32_t>(c);
}

}  // namespace

const char* pattern_name(Pattern p) {
  switch (p) {
    case Pattern::kDot: return "dot";
    case Pattern::kDiagonal: return "diagonal";
    case Pattern::kBlock: return "block";
    case Pattern::kStripe: return "stripe";
    case Pattern::kRoad: return "road";
    case Pattern::kHybrid: return "hybrid";
  }
  return "?";
}

Coo gen_random(vidx_t n, eidx_t nnz_target, std::uint64_t seed) {
  Coo out;
  out.nrows = n;
  out.ncols = n;
  if (n <= 1) return out;
  const eidx_t cap = static_cast<eidx_t>(n) * (n - 1);
  nnz_target = std::min(nnz_target, cap);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vidx_t> pick(0, n - 1);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz_target) * 2);
  while (static_cast<eidx_t>(seen.size()) < nnz_target) {
    const vidx_t r = pick(rng);
    const vidx_t c = pick(rng);
    if (r == c) continue;
    if (seen.insert(edge_key(r, c)).second) out.push(r, c);
  }
  out.sort_and_dedup();
  return out;
}

Coo gen_banded(vidx_t n, vidx_t bandwidth, double fill, std::uint64_t seed) {
  Coo out;
  out.nrows = n;
  out.ncols = n;
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution keep(std::clamp(fill, 0.0, 1.0));
  for (vidx_t r = 0; r < n; ++r) {
    const vidx_t lo = std::max<vidx_t>(0, r - bandwidth);
    const vidx_t hi = std::min<vidx_t>(n - 1, r + bandwidth);
    for (vidx_t c = lo; c <= hi; ++c) {
      if (c == r) continue;
      if (keep(rng)) out.push(r, c);
    }
  }
  out.sort_and_dedup();
  return out;
}

Coo gen_block(vidx_t n, vidx_t block_size, int nblocks, double fill,
              std::uint64_t seed, bool off_diagonal_blocks) {
  Coo out;
  out.nrows = n;
  out.ncols = n;
  if (n == 0 || block_size == 0 || nblocks == 0) return out;
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution keep(std::clamp(fill, 0.0, 1.0));
  std::uniform_int_distribution<vidx_t> origin(
      0, std::max<vidx_t>(0, n - block_size));
  for (int b = 0; b < nblocks; ++b) {
    const vidx_t r0 = origin(rng);
    const vidx_t c0 = off_diagonal_blocks ? origin(rng) : r0;
    for (vidx_t dr = 0; dr < block_size; ++dr) {
      for (vidx_t dc = 0; dc < block_size; ++dc) {
        const vidx_t r = r0 + dr;
        const vidx_t c = c0 + dc;
        if (r == c) continue;
        if (keep(rng)) out.push(r, c);
      }
    }
  }
  out.sort_and_dedup();
  return out;
}

Coo gen_stripe(vidx_t n, int nstripes, double fill, std::uint64_t seed) {
  Coo out;
  out.nrows = n;
  out.ncols = n;
  if (n <= 1) return out;
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution keep(std::clamp(fill, 0.0, 1.0));
  std::uniform_int_distribution<vidx_t> off(0, n - 1);
  // Small integer slopes give the "lines in various directions" look.
  std::uniform_int_distribution<int> slope_pick(1, 3);
  std::bernoulli_distribution flip(0.5);
  for (int s = 0; s < nstripes; ++s) {
    const int slope = slope_pick(rng) * (flip(rng) ? 1 : -1);
    const vidx_t offset = off(rng);
    for (vidx_t r = 0; r < n; ++r) {
      const auto c64 =
          (static_cast<std::int64_t>(r) * slope + offset) % n;
      const vidx_t c = static_cast<vidx_t>(c64 < 0 ? c64 + n : c64);
      if (c == r) continue;
      if (keep(rng)) out.push(r, c);
    }
  }
  out.sort_and_dedup();
  return out;
}

Coo gen_road(vidx_t width, vidx_t height, double rewire, std::uint64_t seed) {
  Coo out;
  const vidx_t n = width * height;
  out.nrows = n;
  out.ncols = n;
  if (n == 0) return out;
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution do_rewire(std::clamp(rewire, 0.0, 1.0));
  std::uniform_int_distribution<vidx_t> pick(0, n - 1);
  auto id = [width](vidx_t x, vidx_t y) { return y * width + x; };
  for (vidx_t y = 0; y < height; ++y) {
    for (vidx_t x = 0; x < width; ++x) {
      const vidx_t u = id(x, y);
      if (x + 1 < width) {
        vidx_t v = id(x + 1, y);
        if (do_rewire(rng)) v = pick(rng);
        if (u != v) {
          out.push(u, v);
          out.push(v, u);
        }
      }
      if (y + 1 < height) {
        vidx_t v = id(x, y + 1);
        if (do_rewire(rng)) v = pick(rng);
        if (u != v) {
          out.push(u, v);
          out.push(v, u);
        }
      }
    }
  }
  out.sort_and_dedup();
  return out;
}

Coo gen_hybrid(vidx_t n, std::uint64_t seed) {
  // Union of a narrow band, a few blocks, and light random scatter —
  // Table V's "combination of more than two patterns above".
  const Coo band = gen_banded(n, std::max<vidx_t>(2, n / 256), 0.6, seed);
  const Coo blocks =
      gen_block(n, std::max<vidx_t>(4, n / 64), 6, 0.4, seed + 1, true);
  const Coo dots = gen_random(n, static_cast<eidx_t>(n) * 2, seed + 2);
  Coo out;
  out.nrows = n;
  out.ncols = n;
  for (const Coo* part : {&band, &blocks, &dots}) {
    out.row.insert(out.row.end(), part->row.begin(), part->row.end());
    out.col.insert(out.col.end(), part->col.begin(), part->col.end());
  }
  out.sort_and_dedup();
  return out;
}

Coo gen_rmat(int scale, eidx_t nnz_target, std::uint64_t seed) {
  const vidx_t n = static_cast<vidx_t>(1) << scale;
  Coo out;
  out.nrows = n;
  out.ncols = n;
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  // Graph500 partition probabilities.
  constexpr double a = 0.57;
  constexpr double b = 0.19;
  constexpr double c = 0.19;
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(nnz_target) * 2);
  eidx_t attempts = 0;
  const eidx_t max_attempts = nnz_target * 16 + 1024;
  while (static_cast<eidx_t>(seen.size()) < nnz_target &&
         attempts++ < max_attempts) {
    vidx_t r = 0;
    vidx_t cc = 0;
    for (int bit = scale - 1; bit >= 0; --bit) {
      const double p = u(rng);
      if (p < a) {
        // upper-left: nothing to add
      } else if (p < a + b) {
        cc |= (static_cast<vidx_t>(1) << bit);
      } else if (p < a + b + c) {
        r |= (static_cast<vidx_t>(1) << bit);
      } else {
        r |= (static_cast<vidx_t>(1) << bit);
        cc |= (static_cast<vidx_t>(1) << bit);
      }
    }
    if (r == cc) continue;
    if (seen.insert(edge_key(r, cc)).second) out.push(r, cc);
  }
  out.sort_and_dedup();
  return out;
}

Coo gen_mycielskian(int k) {
  // mycielskian2 = K2; each step maps G(V,E) with n nodes to a graph on
  // 2n+1 nodes: copies u_i, shadows w_i (adjacent to N(u_i)), apex z
  // adjacent to all shadows.  This reproduces the SuiteSparse
  // mycielskianN graphs exactly (they are defined by this construction).
  std::vector<std::pair<vidx_t, vidx_t>> edges = {{0, 1}};
  vidx_t n = 2;
  for (int step = 2; step < k; ++step) {
    std::vector<std::pair<vidx_t, vidx_t>> next = edges;
    // shadow w_i = n + i, apex z = 2n.
    for (const auto& [u, v] : edges) {
      next.emplace_back(n + u, v);
      next.emplace_back(u, n + v);
    }
    for (vidx_t i = 0; i < n; ++i) next.emplace_back(n + i, 2 * n);
    edges = std::move(next);
    n = 2 * n + 1;
  }
  Coo out;
  out.nrows = n;
  out.ncols = n;
  for (const auto& [u, v] : edges) {
    out.push(u, v);
    out.push(v, u);
  }
  out.sort_and_dedup();
  return out;
}

Coo gen_chain_of_cliques(vidx_t nchains, vidx_t clique, std::uint64_t seed) {
  Coo out;
  const vidx_t n = nchains * clique;
  out.nrows = n;
  out.ncols = n;
  std::mt19937_64 rng(seed);
  std::bernoulli_distribution keep(0.8);
  for (vidx_t b = 0; b < nchains; ++b) {
    const vidx_t base = b * clique;
    for (vidx_t i = 0; i < clique; ++i) {
      for (vidx_t j = i + 1; j < clique; ++j) {
        if (keep(rng)) {
          out.push(base + i, base + j);
          out.push(base + j, base + i);
        }
      }
    }
    // Ring link to the next clique.
    const vidx_t u = base + clique - 1;
    const vidx_t v = ((b + 1) % nchains) * clique;
    if (u != v) {
      out.push(u, v);
      out.push(v, u);
    }
  }
  out.sort_and_dedup();
  return out;
}

Coo gen_pattern(Pattern p, vidx_t n, double density, std::uint64_t seed) {
  const double d = std::clamp(density, 0.0, 0.5);
  const auto nnz =
      static_cast<eidx_t>(d * static_cast<double>(n) * static_cast<double>(n));
  switch (p) {
    case Pattern::kDot:
      return gen_random(n, nnz, seed);
    case Pattern::kDiagonal: {
      // band fill 0.5 => bandwidth so that 2*bw*0.5*n ≈ nnz
      const vidx_t bw = std::max<vidx_t>(
          1, static_cast<vidx_t>(static_cast<double>(nnz) / n));
      return gen_banded(n, bw, 0.5, seed);
    }
    case Pattern::kBlock: {
      const vidx_t bs = std::max<vidx_t>(4, n / 32);
      const double per_block = 0.5 * bs * bs;
      const int nb = std::max(1, static_cast<int>(
                                     static_cast<double>(nnz) / per_block));
      return gen_block(n, bs, nb, 0.5, seed, true);
    }
    case Pattern::kStripe: {
      const int ns = std::max(
          1, static_cast<int>(static_cast<double>(nnz) / (0.6 * n)));
      return gen_stripe(n, ns, 0.6, seed);
    }
    case Pattern::kRoad: {
      const vidx_t side = std::max<vidx_t>(
          2, static_cast<vidx_t>(std::sqrt(static_cast<double>(n))));
      return gen_road(side, side, 0.02, seed);
    }
    case Pattern::kHybrid:
      return gen_hybrid(n, seed);
  }
  return gen_random(n, nnz, seed);
}

}  // namespace bitgb
