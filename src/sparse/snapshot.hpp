// Durable graph snapshots — the versioned, checksummed on-disk
// container for the library's formats.
//
// Bit-GraphBLAS's premise is that the packed representation is small
// enough to keep and move cheaply (the paper's Fig. 5 compression
// results); this file is where "keep" becomes literal.  A snapshot
// persists the canonical binary CSR plus any prewarmed derived formats
// (transposes, lower triangle, B2SR packings, degrees), so a restart
// re-materializes a serving graph with one sequential read — no
// MatrixMarket re-parse, no re-pack, no re-prewarm.
//
// File layout (all integers little-endian, no padding between
// sections; BUILDING.md "Durable snapshots" documents the same table):
//
//   fixed header — 64 bytes:
//     0   magic            8 bytes  "B2GBSNAP"
//     8   version          u32      kFormatVersion (exact match required)
//     12  tile_dim         u32      0, or 4/8/16/32 when B2SR rides
//     16  nrows            i32      canonical adjacency dims
//     20  ncols            i32
//     24  nnz              i64      canonical adjacency nonzeros
//     32  fingerprint      u64      csr_fingerprint() of the adjacency
//     40  flags            u32      kFlagSymmetrized | kFlagLoopsStripped
//     44  section_count    u32
//     48  reserved         12 bytes zero
//     60  header_crc       u32      crc32c of bytes [0, 60)
//
//   then section_count sections, each:
//     0   id               u32      SectionId
//     4   reserved         u32      zero
//     8   payload_bytes    u64
//     16  payload_crc      u32      crc32c of the payload
//     20  header_crc       u32      crc32c of bytes [0, 20) of this header
//     24  payload          payload_bytes bytes
//
// Version policy: the first 12 bytes (magic + version) and the 64-byte
// header with its trailing CRC are frozen across versions; a loader
// accepts exactly its own kFormatVersion and throws kVersionSkew for
// anything else (snapshots are caches — regenerating beats migrating).
//
// Every load is validated in depth order: magic, header CRC, version,
// field sanity, per-section header CRCs and bounds, payload CRCs, and
// finally the structural invariants of the decoded formats
// (Csr::validate / B2srT::validate plus cross-format consistency) in
// the Graph::load layer.  A failed load throws SnapshotError and never
// yields a partial object.
//
// Writes are crash-consistent: everything goes to `path + ".tmp"`,
// fsync, close, atomic rename over `path`, then a best-effort fsync of
// the directory.  A crash at ANY point leaves either the old file or
// the new one — plus possibly a stale .tmp that recovery ignores.
// FaultInjector's io_* knobs (platform/fault_injector.hpp) make every
// branch of that story deterministically testable.
#pragma once

#include "platform/fault_injector.hpp"
#include "sparse/csr.hpp"
#include "sparse/types.hpp"

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace bitgb::snap {

inline constexpr char kMagic[8] = {'B', '2', 'G', 'B', 'S', 'N', 'A', 'P'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::size_t kHeaderBytes = 64;
inline constexpr std::size_t kSectionHeaderBytes = 24;

/// Header flag bits: the GraphOptions preprocessing the adjacency
/// already went through (a loaded graph must not re-symmetrize).
inline constexpr std::uint32_t kFlagSymmetrized = 1u << 0;
inline constexpr std::uint32_t kFlagLoopsStripped = 1u << 1;

/// The typed payloads a v1 snapshot may carry.  Grouped by format;
/// matrix dims are implied by the header (transposes swap them), so a
/// section is a bare array.  An id outside this set fails the load with
/// kMalformed — the version pins the vocabulary.
enum class SectionId : std::uint32_t {
  kCsrRowptr = 1,   ///< canonical adjacency rowptr (vidx_t)
  kCsrColind = 2,   ///< canonical adjacency colind (vidx_t)
  kCsrTRowptr = 3,  ///< transposed adjacency
  kCsrTColind = 4,
  kLowerRowptr = 5,  ///< strict lower triangle L
  kLowerColind = 6,
  kDegrees = 7,  ///< out-degree vector (vidx_t, size nrows)
  kB2srRowptr = 16,  ///< B2SR of the adjacency (tile_rowptr / tile_colind
  kB2srColind = 17,  ///< in vidx_t, bits in the dim's word type)
  kB2srBits = 18,
  kB2srTRowptr = 19,  ///< B2SR of the transpose
  kB2srTColind = 20,
  kB2srTBits = 21,
  kB2srLowerRowptr = 22,  ///< B2SR of L
  kB2srLowerColind = 23,
  kB2srLowerBits = 24,
};

/// Everything a failed snapshot read/write throws.  kind() tells the
/// corruption-fuzz suite (and recovery telemetry) WHICH defense fired.
class SnapshotError : public std::runtime_error {
 public:
  enum class Kind {
    kIo,            ///< open/read/write/rename failed (or injected)
    kBadMagic,      ///< not a snapshot file
    kVersionSkew,   ///< a different format version (regenerate, don't parse)
    kTruncated,     ///< file ends before the declared bytes
    kCrcMismatch,   ///< a checksum caught flipped bits
    kMalformed,     ///< framing lies (unknown id, bad sizes, trailing bytes)
    kInvalidStructure,  ///< CRC-clean but structurally invalid content
  };

  SnapshotError(Kind kind, const std::string& msg)
      : std::runtime_error(msg), kind_(kind) {}

  [[nodiscard]] Kind kind() const { return kind_; }

 private:
  Kind kind_;
};

/// The fixed-header fields (section_count is filled by the writer).
struct SnapshotHeader {
  std::uint32_t version = kFormatVersion;
  std::uint32_t tile_dim = 0;  ///< 0 = no B2SR sections aboard
  vidx_t nrows = 0;
  vidx_t ncols = 0;
  eidx_t nnz = 0;
  std::uint64_t fingerprint = 0;
  std::uint32_t flags = 0;
  std::uint32_t section_count = 0;
};

/// 64-bit content fingerprint of a binary CSR pattern (dims + rowptr +
/// colind; values ignored).  Equal fingerprints mean bit-identical
/// query results, which is what snapshot integrity double-checks and
/// GraphRegistry::add's re-add dedup keys on.
[[nodiscard]] std::uint64_t csr_fingerprint(const Csr& a);

/// Crash-consistent small-file write (temp + fsync + rename + directory
/// fsync), shared by the snapshot writer and the registry manifest.
/// `fault`, when set, threads the io_* FaultPlan knobs through every
/// physical write.  Throws SnapshotError(kIo) on failure.
void atomic_write_file(const std::string& path, std::span<const std::byte> bytes,
                       FaultInjector* fault = nullptr);

/// Builds and durably writes one snapshot.  Section data is NOT copied:
/// the caller's arrays must stay alive until write_file() returns (they
/// are the Graph's own format caches in practice).
class SnapshotWriter {
 public:
  explicit SnapshotWriter(SnapshotHeader header) : header_(header) {}

  void add_section(SectionId id, const void* data, std::size_t bytes);

  template <typename T, typename A>
  void add_vector(SectionId id, const std::vector<T, A>& v) {
    add_section(id, v.data(), v.size() * sizeof(T));
  }

  /// Serialize header + sections to `path` via atomic_write_file's
  /// temp/fsync/rename protocol (one write syscall per header and per
  /// payload, so the io_* fault knobs index meaningful boundaries).
  void write_file(const std::string& path, FaultInjector* fault = nullptr) const;

 private:
  SnapshotHeader header_;
  struct Sec {
    SectionId id;
    const void* data;
    std::size_t bytes;
    std::uint32_t crc;
  };
  std::vector<Sec> sections_;
};

/// A fully validated in-memory snapshot: read_file() performs every
/// container-level check (magic, CRCs, version, framing) before
/// returning; typed extraction is then infallible modulo element-size
/// mismatches.  Section payloads are spans into the one file buffer.
class Snapshot {
 public:
  /// Offsets are exposed for the corruption fuzz and tooling: the fuzz
  /// suite truncates/flips at exactly these boundaries.
  struct SectionInfo {
    SectionId id;
    std::size_t header_offset;   ///< of the 24-byte section header
    std::size_t payload_offset;  ///< first payload byte
    std::size_t payload_bytes;
  };

  [[nodiscard]] static Snapshot read_file(const std::string& path);

  [[nodiscard]] const SnapshotHeader& header() const { return header_; }
  [[nodiscard]] const std::vector<SectionInfo>& sections() const {
    return index_;
  }
  [[nodiscard]] bool has(SectionId id) const;

  /// Payload bytes of `id`; throws kMalformed if absent.
  [[nodiscard]] std::span<const std::byte> section(SectionId id) const;

  /// Decode a section as a vector of T (any allocator — B2SR bit
  /// stores use the 64-byte-aligned one).  Throws kMalformed when the
  /// payload is not a whole number of elements.
  template <typename T, typename A = std::allocator<T>>
  [[nodiscard]] std::vector<T, A> vec(SectionId id) const {
    const auto sp = section(id);
    if (sp.size() % sizeof(T) != 0) {
      throw SnapshotError(SnapshotError::Kind::kMalformed,
                          "section payload is not a whole number of elements");
    }
    std::vector<T, A> out(sp.size() / sizeof(T));
    if (!out.empty()) std::memcpy(out.data(), sp.data(), sp.size());
    return out;
  }

 private:
  Snapshot() = default;

  SnapshotHeader header_;
  /// Raw file image.  Stored as char — the element type istream::read
  /// writes natively — and viewed as bytes via std::as_bytes, so no
  /// pointer reinterpretation happens anywhere on the read path.
  std::vector<char> file_;
  std::vector<SectionInfo> index_;
};

}  // namespace bitgb::snap
