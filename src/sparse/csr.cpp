#include "sparse/csr.hpp"

#include <algorithm>
#include <cstdint>

namespace bitgb {

double Csr::density() const {
  if (nrows == 0 || ncols == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(nrows) * static_cast<double>(ncols));
}

std::size_t Csr::storage_bytes() const {
  const std::size_t n = static_cast<std::size_t>(nnz());
  return (rowptr.size() + n) * sizeof(vidx_t) + n * sizeof(value_t);
}

bool Csr::validate() const {
  if (nrows < 0 || ncols < 0) return false;
  if (rowptr.size() != static_cast<std::size_t>(nrows) + 1) return false;
  if (rowptr.front() != 0) return false;
  if (rowptr.back() != static_cast<vidx_t>(colind.size())) return false;
  if (!val.empty() && val.size() != colind.size()) return false;
  for (vidx_t r = 0; r < nrows; ++r) {
    const auto lo = rowptr[static_cast<std::size_t>(r)];
    const auto hi = rowptr[static_cast<std::size_t>(r) + 1];
    if (lo > hi) return false;
    for (vidx_t k = lo; k < hi; ++k) {
      const vidx_t c = colind[static_cast<std::size_t>(k)];
      if (c < 0 || c >= ncols) return false;
      if (k > lo && colind[static_cast<std::size_t>(k) - 1] >= c) return false;
    }
  }
  return true;
}

Csr transpose(const Csr& a) {
  Csr t;
  t.nrows = a.ncols;
  t.ncols = a.nrows;
  t.rowptr.assign(static_cast<std::size_t>(t.nrows) + 1, 0);

  // Counting pass over column indices.
  for (const vidx_t c : a.colind) {
    ++t.rowptr[static_cast<std::size_t>(c) + 1];
  }
  for (std::size_t i = 1; i < t.rowptr.size(); ++i) {
    t.rowptr[i] += t.rowptr[i - 1];
  }

  t.colind.resize(a.colind.size());
  const bool weighted = !a.val.empty();
  if (weighted) t.val.resize(a.val.size());

  std::vector<vidx_t> cursor(t.rowptr.begin(), t.rowptr.end() - 1);
  for (vidx_t r = 0; r < a.nrows; ++r) {
    const auto lo = a.rowptr[static_cast<std::size_t>(r)];
    const auto hi = a.rowptr[static_cast<std::size_t>(r) + 1];
    for (vidx_t k = lo; k < hi; ++k) {
      const vidx_t c = a.colind[static_cast<std::size_t>(k)];
      const auto dst = static_cast<std::size_t>(cursor[static_cast<std::size_t>(c)]++);
      t.colind[dst] = r;
      if (weighted) t.val[dst] = a.val[static_cast<std::size_t>(k)];
    }
  }
  // Row-major emission over sorted source rows keeps each output row's
  // column indices sorted, so no per-row sort is needed.
  return t;
}

Csr lower_triangle(const Csr& a) {
  Csr l;
  l.nrows = a.nrows;
  l.ncols = a.ncols;
  l.rowptr.assign(static_cast<std::size_t>(a.nrows) + 1, 0);
  const bool weighted = !a.val.empty();
  for (vidx_t r = 0; r < a.nrows; ++r) {
    const auto lo = a.rowptr[static_cast<std::size_t>(r)];
    const auto hi = a.rowptr[static_cast<std::size_t>(r) + 1];
    for (vidx_t k = lo; k < hi; ++k) {
      const vidx_t c = a.colind[static_cast<std::size_t>(k)];
      if (c < r) {
        l.colind.push_back(c);
        if (weighted) l.val.push_back(a.val[static_cast<std::size_t>(k)]);
      }
    }
    l.rowptr[static_cast<std::size_t>(r) + 1] =
        static_cast<vidx_t>(l.colind.size());
  }
  return l;
}

Csr symmetrize(const Csr& a) {
  const Csr t = transpose(a);
  Csr s;
  s.nrows = a.nrows;
  s.ncols = a.ncols;
  s.rowptr.assign(static_cast<std::size_t>(a.nrows) + 1, 0);
  const bool weighted = !a.val.empty() || !t.val.empty();
  for (vidx_t r = 0; r < a.nrows; ++r) {
    // Merge the sorted rows of a and a^T.
    auto ac = a.row_cols(r);
    auto tc = t.row_cols(r);
    auto av = a.row_vals(r);
    auto tv = t.row_vals(r);
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ac.size() || j < tc.size()) {
      vidx_t c;
      value_t v = 1.0f;
      if (j >= tc.size() || (i < ac.size() && ac[i] < tc[j])) {
        c = ac[i];
        if (!av.empty()) v = av[i];
        ++i;
      } else if (i >= ac.size() || tc[j] < ac[i]) {
        c = tc[j];
        if (!tv.empty()) v = tv[j];
        ++j;
      } else {  // present in both
        c = ac[i];
        const value_t va = av.empty() ? 1.0f : av[i];
        const value_t vb = tv.empty() ? 1.0f : tv[j];
        v = std::max(va, vb);
        ++i;
        ++j;
      }
      s.colind.push_back(c);
      if (weighted) s.val.push_back(v);
    }
    s.rowptr[static_cast<std::size_t>(r) + 1] =
        static_cast<vidx_t>(s.colind.size());
  }
  return s;
}

Csr strip_diagonal(const Csr& a) {
  Csr d;
  d.nrows = a.nrows;
  d.ncols = a.ncols;
  d.rowptr.assign(static_cast<std::size_t>(a.nrows) + 1, 0);
  const bool weighted = !a.val.empty();
  for (vidx_t r = 0; r < a.nrows; ++r) {
    const auto lo = a.rowptr[static_cast<std::size_t>(r)];
    const auto hi = a.rowptr[static_cast<std::size_t>(r) + 1];
    for (vidx_t k = lo; k < hi; ++k) {
      const vidx_t c = a.colind[static_cast<std::size_t>(k)];
      if (c != r) {
        d.colind.push_back(c);
        if (weighted) d.val.push_back(a.val[static_cast<std::size_t>(k)]);
      }
    }
    d.rowptr[static_cast<std::size_t>(r) + 1] =
        static_cast<vidx_t>(d.colind.size());
  }
  return d;
}

std::vector<vidx_t> out_degrees(const Csr& a) {
  std::vector<vidx_t> deg(static_cast<std::size_t>(a.nrows));
  for (vidx_t r = 0; r < a.nrows; ++r) {
    deg[static_cast<std::size_t>(r)] =
        a.rowptr[static_cast<std::size_t>(r) + 1] -
        a.rowptr[static_cast<std::size_t>(r)];
  }
  return deg;
}

bool is_symmetric(const Csr& a) {
  if (a.nrows != a.ncols) return false;
  const Csr t = transpose(a);
  return t.rowptr == a.rowptr && t.colind == a.colind;
}

}  // namespace bitgb
