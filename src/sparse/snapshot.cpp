#include "sparse/snapshot.hpp"

#include "platform/crc32c.hpp"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

namespace bitgb::snap {

static_assert(std::endian::native == std::endian::little,
              "the snapshot format stores native little-endian integers");

namespace {

using Kind = SnapshotError::Kind;

void put_bytes(std::vector<std::byte>& buf, std::size_t off, const void* src,
               std::size_t n) {
  std::memcpy(buf.data() + off, src, n);
}

template <typename T>
void put(std::vector<std::byte>& buf, std::size_t off, T v) {
  put_bytes(buf, off, &v, sizeof(T));
}

template <typename T>
T get(std::span<const std::byte> buf, std::size_t off) {
  T v;
  std::memcpy(&v, buf.data() + off, sizeof(T));
  return v;
}

[[nodiscard]] std::string errno_text() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): cold error path; the racy
  // worst case is a garbled message in an exception already being
  // thrown, and strerror_r's two signatures make a portable wrapper
  // noisier than the exposure justifies.
  return std::string(std::strerror(errno));
}

/// Thrown for the injected short-write "crash": the writer must NOT
/// clean up its temp file (a real crash would not), unlike every other
/// failure.  Still a SnapshotError(kIo) to callers.
class InjectedCrash : public SnapshotError {
 public:
  explicit InjectedCrash(const std::string& msg)
      : SnapshotError(Kind::kIo, msg) {}
};

/// One physical write with the fault hooks threaded through.
void full_write(int fd, const void* data, std::size_t len,
                FaultInjector* fault, const std::string& path) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::vector<unsigned char> corrupted;  // only allocated on a bit flip
  if (fault != nullptr) {
    const auto f = fault->on_io_write(len);
    using K = FaultInjector::IoWriteFault::Kind;
    switch (f.kind) {
      case K::kNone:
        break;
      case K::kError:
        throw SnapshotError(Kind::kIo, "injected I/O error (ENOSPC analog) "
                                       "writing " + path);
      case K::kShortWrite: {
        // Half the buffer lands, then the "process dies": write, throw
        // through the no-cleanup path, leave the torn file behind.
        std::size_t half = len / 2;
        while (half > 0) {
          const ssize_t n = ::write(fd, p, half);
          if (n < 0) {
            if (errno == EINTR) continue;
            break;
          }
          p += n;
          half -= static_cast<std::size_t>(n);
        }
        throw InjectedCrash("injected short write (simulated crash) on " +
                            path);
      }
      case K::kBitFlip:
        corrupted.assign(p, p + len);
        corrupted[f.bit / 8] ^= static_cast<unsigned char>(1u << (f.bit % 8));
        p = corrupted.data();
        break;
    }
  }
  std::size_t left = len;
  while (left > 0) {
    const ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw SnapshotError(Kind::kIo,
                          "write failed on " + path + ": " + errno_text());
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void fsync_parent_dir(const std::string& path) {
  // Best-effort: the rename is durable once the directory entry is
  // flushed; failure here (exotic filesystems) degrades durability, not
  // consistency, so it is not fatal.
  const auto slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    (void)::close(dfd);
  }
}

std::vector<std::byte> encode_header(const SnapshotHeader& h) {
  std::vector<std::byte> buf(kHeaderBytes, std::byte{0});
  put_bytes(buf, 0, kMagic, sizeof(kMagic));
  put(buf, 8, h.version);
  put(buf, 12, h.tile_dim);
  put(buf, 16, h.nrows);
  put(buf, 20, h.ncols);
  put(buf, 24, h.nnz);
  put(buf, 32, h.fingerprint);
  put(buf, 40, h.flags);
  put(buf, 44, h.section_count);
  put(buf, 60, crc32c(buf.data(), 60));
  return buf;
}

std::vector<std::byte> encode_section_header(SectionId id,
                                             std::uint64_t payload_bytes,
                                             std::uint32_t payload_crc) {
  std::vector<std::byte> buf(kSectionHeaderBytes, std::byte{0});
  put(buf, 0, static_cast<std::uint32_t>(id));
  put(buf, 8, payload_bytes);
  put(buf, 16, payload_crc);
  put(buf, 20, crc32c(buf.data(), 20));
  return buf;
}

[[nodiscard]] bool known_section_id(std::uint32_t id) {
  return (id >= 1 && id <= 7) || (id >= 16 && id <= 24);
}

}  // namespace

std::uint64_t csr_fingerprint(const Csr& a) {
  std::uint32_t hi = crc32c(&a.nrows, sizeof(a.nrows));
  hi = crc32c(&a.ncols, sizeof(a.ncols), hi);
  hi = crc32c(a.rowptr.data(), a.rowptr.size() * sizeof(vidx_t), hi);
  const std::uint32_t lo =
      crc32c(a.colind.data(), a.colind.size() * sizeof(vidx_t));
  return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

void atomic_write_file(const std::string& path,
                       std::span<const std::byte> bytes, FaultInjector* fault) {
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw SnapshotError(Kind::kIo,
                        "cannot create " + tmp + ": " + errno_text());
  }
  try {
    full_write(fd, bytes.data(), bytes.size(), fault, tmp);
    if (::fsync(fd) != 0) {
      throw SnapshotError(Kind::kIo,
                          "fsync failed on " + tmp + ": " + errno_text());
    }
  } catch (const InjectedCrash&) {
    (void)::close(fd);  // a crash leaves its debris behind
    throw;
  } catch (...) {
    (void)::close(fd);
    (void)::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    (void)::unlink(tmp.c_str());
    throw SnapshotError(Kind::kIo,
                        "close failed on " + tmp + ": " + errno_text());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_text();
    (void)::unlink(tmp.c_str());
    throw SnapshotError(Kind::kIo,
                        "rename " + tmp + " -> " + path + " failed: " + why);
  }
  fsync_parent_dir(path);
}

void SnapshotWriter::add_section(SectionId id, const void* data,
                                 std::size_t bytes) {
  sections_.push_back(
      Sec{id, data, bytes, crc32c(bytes == 0 ? "" : data, bytes)});
}

void SnapshotWriter::write_file(const std::string& path,
                                FaultInjector* fault) const {
  // The whole snapshot is assembled as the exact byte stream, then
  // handed to the crash-consistent writer in the same physical-write
  // granularity the fault knobs index: header, then per section its
  // header and payload.  Rather than one flat buffer (payloads may be
  // large and already live in the Graph's caches), the file goes out
  // through a small open/write sequence mirroring atomic_write_file.
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw SnapshotError(Kind::kIo,
                        "cannot create " + tmp + ": " + errno_text());
  }
  try {
    SnapshotHeader h = header_;
    h.version = kFormatVersion;
    h.section_count = static_cast<std::uint32_t>(sections_.size());
    const auto header_bytes = encode_header(h);
    full_write(fd, header_bytes.data(), header_bytes.size(), fault, tmp);
    for (const Sec& s : sections_) {
      const auto sh = encode_section_header(
          s.id, static_cast<std::uint64_t>(s.bytes), s.crc);
      full_write(fd, sh.data(), sh.size(), fault, tmp);
      if (s.bytes > 0) full_write(fd, s.data, s.bytes, fault, tmp);
    }
    if (::fsync(fd) != 0) {
      throw SnapshotError(Kind::kIo,
                          "fsync failed on " + tmp + ": " + errno_text());
    }
  } catch (const InjectedCrash&) {
    (void)::close(fd);
    throw;
  } catch (...) {
    (void)::close(fd);
    (void)::unlink(tmp.c_str());
    throw;
  }
  if (::close(fd) != 0) {
    (void)::unlink(tmp.c_str());
    throw SnapshotError(Kind::kIo,
                        "close failed on " + tmp + ": " + errno_text());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_text();
    (void)::unlink(tmp.c_str());
    throw SnapshotError(Kind::kIo,
                        "rename " + tmp + " -> " + path + " failed: " + why);
  }
  fsync_parent_dir(path);
}

Snapshot Snapshot::read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw SnapshotError(Kind::kIo, "cannot open " + path);
  f.seekg(0, std::ios::end);
  const auto end = f.tellg();
  if (end < 0) throw SnapshotError(Kind::kIo, "cannot size " + path);
  f.seekg(0, std::ios::beg);
  Snapshot s;
  s.file_.resize(static_cast<std::size_t>(end));
  if (!s.file_.empty() &&
      !f.read(s.file_.data(),
              static_cast<std::streamsize>(s.file_.size()))) {
    throw SnapshotError(Kind::kIo, "cannot read " + path);
  }
  const std::span<const std::byte> buf =
      std::as_bytes(std::span<const char>(s.file_));

  // Container validation, outermost defense first: a truncated or
  // foreign file fails before any field is trusted.
  if (buf.size() < kHeaderBytes) {
    throw SnapshotError(Kind::kTruncated,
                        path + ": file shorter than the snapshot header");
  }
  if (std::memcmp(buf.data(), kMagic, sizeof(kMagic)) != 0) {
    throw SnapshotError(Kind::kBadMagic, path + ": not a snapshot (bad magic)");
  }
  if (get<std::uint32_t>(buf, 60) != crc32c(buf.data(), 60)) {
    throw SnapshotError(Kind::kCrcMismatch, path + ": header CRC mismatch");
  }
  SnapshotHeader& h = s.header_;
  h.version = get<std::uint32_t>(buf, 8);
  if (h.version != kFormatVersion) {
    throw SnapshotError(Kind::kVersionSkew,
                        path + ": snapshot format version " +
                            std::to_string(h.version) + " (this build reads " +
                            std::to_string(kFormatVersion) + ")");
  }
  h.tile_dim = get<std::uint32_t>(buf, 12);
  h.nrows = get<vidx_t>(buf, 16);
  h.ncols = get<vidx_t>(buf, 20);
  h.nnz = get<eidx_t>(buf, 24);
  h.fingerprint = get<std::uint64_t>(buf, 32);
  h.flags = get<std::uint32_t>(buf, 40);
  h.section_count = get<std::uint32_t>(buf, 44);
  if (h.tile_dim != 0 && h.tile_dim != 4 && h.tile_dim != 8 &&
      h.tile_dim != 16 && h.tile_dim != 32) {
    throw SnapshotError(Kind::kMalformed,
                        path + ": unsupported tile dim " +
                            std::to_string(h.tile_dim));
  }
  if (h.nrows < 0 || h.ncols < 0 || h.nnz < 0) {
    throw SnapshotError(Kind::kMalformed, path + ": negative dimensions");
  }

  std::size_t off = kHeaderBytes;
  for (std::uint32_t i = 0; i < h.section_count; ++i) {
    if (buf.size() - off < kSectionHeaderBytes) {
      throw SnapshotError(Kind::kTruncated,
                          path + ": file ends inside a section header");
    }
    const std::span<const std::byte> sh = buf.subspan(off, kSectionHeaderBytes);
    if (get<std::uint32_t>(sh, 20) != crc32c(sh.data(), 20)) {
      throw SnapshotError(Kind::kCrcMismatch,
                          path + ": section header CRC mismatch");
    }
    const std::uint32_t raw_id = get<std::uint32_t>(sh, 0);
    if (!known_section_id(raw_id)) {
      throw SnapshotError(Kind::kMalformed,
                          path + ": unknown section id " +
                              std::to_string(raw_id));
    }
    const auto id = static_cast<SectionId>(raw_id);
    for (const SectionInfo& prev : s.index_) {
      if (prev.id == id) {
        throw SnapshotError(Kind::kMalformed,
                            path + ": duplicate section id " +
                                std::to_string(raw_id));
      }
    }
    const std::uint64_t payload_bytes = get<std::uint64_t>(sh, 8);
    const std::size_t payload_off = off + kSectionHeaderBytes;
    if (payload_bytes > buf.size() - payload_off) {
      throw SnapshotError(Kind::kTruncated,
                          path + ": file ends inside a section payload");
    }
    const std::uint32_t want_crc = get<std::uint32_t>(sh, 16);
    if (crc32c(buf.data() + payload_off,
               static_cast<std::size_t>(payload_bytes)) != want_crc) {
      throw SnapshotError(Kind::kCrcMismatch,
                          path + ": payload CRC mismatch in section " +
                              std::to_string(raw_id));
    }
    s.index_.push_back(SectionInfo{id, off, payload_off,
                                   static_cast<std::size_t>(payload_bytes)});
    off = payload_off + static_cast<std::size_t>(payload_bytes);
  }
  if (off != buf.size()) {
    throw SnapshotError(Kind::kMalformed,
                        path + ": trailing bytes after the last section");
  }
  return s;
}

bool Snapshot::has(SectionId id) const {
  return std::any_of(index_.begin(), index_.end(),
                     [&](const SectionInfo& s) { return s.id == id; });
}

std::span<const std::byte> Snapshot::section(SectionId id) const {
  for (const SectionInfo& s : index_) {
    if (s.id == id) {
      return std::as_bytes(std::span<const char>(file_))
          .subspan(s.payload_offset, s.payload_bytes);
    }
  }
  throw SnapshotError(Kind::kMalformed,
                      "required section " +
                          std::to_string(static_cast<std::uint32_t>(id)) +
                          " is absent");
}

}  // namespace bitgb::snap
