#include "sparse/convert.hpp"

namespace bitgb {

Csr coo_to_csr(const Coo& a) {
  Coo sorted = a;
  sorted.sort_and_dedup();

  Csr out;
  out.nrows = sorted.nrows;
  out.ncols = sorted.ncols;
  out.rowptr.assign(static_cast<std::size_t>(sorted.nrows) + 1, 0);
  out.colind = std::move(sorted.col);
  out.val = std::move(sorted.val);
  for (const vidx_t r : sorted.row) {
    ++out.rowptr[static_cast<std::size_t>(r) + 1];
  }
  for (std::size_t i = 1; i < out.rowptr.size(); ++i) {
    out.rowptr[i] += out.rowptr[i - 1];
  }
  return out;
}

Coo csr_to_coo(const Csr& a) {
  Coo out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.col = a.colind;
  out.val = a.val;
  out.row.reserve(a.colind.size());
  for (vidx_t r = 0; r < a.nrows; ++r) {
    const auto lo = a.rowptr[static_cast<std::size_t>(r)];
    const auto hi = a.rowptr[static_cast<std::size_t>(r) + 1];
    for (vidx_t k = lo; k < hi; ++k) out.row.push_back(r);
  }
  return out;
}

std::vector<value_t> csr_to_dense(const Csr& a) {
  std::vector<value_t> d(static_cast<std::size_t>(a.nrows) *
                             static_cast<std::size_t>(a.ncols),
                         0.0f);
  for (vidx_t r = 0; r < a.nrows; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      d[static_cast<std::size_t>(r) * static_cast<std::size_t>(a.ncols) +
        static_cast<std::size_t>(cols[i])] = vals.empty() ? 1.0f : vals[i];
    }
  }
  return d;
}

Csr dense_to_csr(const std::vector<value_t>& dense, vidx_t nrows,
                 vidx_t ncols) {
  Csr out;
  out.nrows = nrows;
  out.ncols = ncols;
  out.rowptr.assign(static_cast<std::size_t>(nrows) + 1, 0);
  for (vidx_t r = 0; r < nrows; ++r) {
    for (vidx_t c = 0; c < ncols; ++c) {
      if (dense[static_cast<std::size_t>(r) * static_cast<std::size_t>(ncols) +
                static_cast<std::size_t>(c)] != 0.0f) {
        out.colind.push_back(c);
      }
    }
    out.rowptr[static_cast<std::size_t>(r) + 1] =
        static_cast<vidx_t>(out.colind.size());
  }
  return out;
}

}  // namespace bitgb
