#include "sparse/convert.hpp"

#include "platform/parallel.hpp"

#include <algorithm>

namespace bitgb {

namespace {

/// Per-thread scratch for the COO->B2SR tile-column discovery: a
/// generation-marked presence array plus the slot each tile column was
/// assigned in the (sorted) tile-row output.  Generations advance
/// monotonically, so stale entries from earlier tile-rows or earlier
/// matrices never read as current.
struct CooTileSpa {
  std::vector<int> mark;
  std::vector<vidx_t> slot;
  int gen = 0;

  void ensure(std::size_t ntc) {
    if (mark.size() < ntc) {
      mark.assign(ntc, -1);
      slot.assign(ntc, 0);
    }
  }
};

CooTileSpa& tls_coo_spa() {
  thread_local CooTileSpa spa;
  return spa;
}

}  // namespace

template <int Dim>
B2srT<Dim> pack_from_coo(const Coo& a, Exec exec) {
  using word_t = typename TileTraits<Dim>::word_t;
  B2srT<Dim> b;
  b.nrows = a.nrows;
  b.ncols = a.ncols;
  const vidx_t ntr = b.n_tile_rows();
  const auto ntc = static_cast<std::size_t>(b.n_tile_cols());
  const std::size_t nnz = a.row.size();

  // Bucket the entries by tile-row (counting scatter on entry indices;
  // the only serial O(nnz) work in the path).
  std::vector<vidx_t> bucket_count(static_cast<std::size_t>(ntr), 0);
  for (const vidx_t r : a.row) {
    ++bucket_count[static_cast<std::size_t>(r / Dim)];
  }
  std::vector<vidx_t> bucket_off(static_cast<std::size_t>(ntr) + 1);
  parallel_exclusive_scan(exec.threads, bucket_count.data(),
                          bucket_count.size(), bucket_off.data());
  std::vector<std::uint32_t> order(nnz);
  {
    std::vector<vidx_t> cursor(bucket_off.begin(), bucket_off.end() - 1);
    for (std::size_t e = 0; e < nnz; ++e) {
      order[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(a.row[e] / Dim)]++)] =
          static_cast<std::uint32_t>(e);
    }
  }

  // Pass 1: distinct tile columns per tile-row (generation-marked).
  std::vector<vidx_t> counts(static_cast<std::size_t>(ntr), 0);
  parallel_for(exec.threads, vidx_t{0}, ntr, [&](vidx_t tr) {
    auto& spa = tls_coo_spa();
    spa.ensure(ntc);
    const int g = ++spa.gen;
    vidx_t n = 0;
    const auto lo = static_cast<std::size_t>(bucket_off[static_cast<std::size_t>(tr)]);
    const auto hi =
        static_cast<std::size_t>(bucket_off[static_cast<std::size_t>(tr) + 1]);
    for (std::size_t i = lo; i < hi; ++i) {
      const auto tc = static_cast<std::size_t>(a.col[order[i]] / Dim);
      if (spa.mark[tc] != g) {
        spa.mark[tc] = g;
        ++n;
      }
    }
    counts[static_cast<std::size_t>(tr)] = n;
  });
  b.tile_rowptr.resize(static_cast<std::size_t>(ntr) + 1);
  parallel_exclusive_scan(exec.threads, counts.data(), counts.size(),
                          b.tile_rowptr.data());
  const vidx_t ntiles = b.tile_rowptr.back();
  b.tile_colind.resize(static_cast<std::size_t>(ntiles));
  b.bits.assign(static_cast<std::size_t>(ntiles) * Dim, word_t{0});

  // Pass 2: collect + sort the (few) distinct tile columns, then
  // scatter every entry's bit through the slot lookup.
  parallel_for(exec.threads, vidx_t{0}, ntr, [&](vidx_t tr) {
    auto& spa = tls_coo_spa();
    spa.ensure(ntc);
    const int g = ++spa.gen;
    thread_local std::vector<vidx_t> distinct;
    distinct.clear();
    const auto lo = static_cast<std::size_t>(bucket_off[static_cast<std::size_t>(tr)]);
    const auto hi =
        static_cast<std::size_t>(bucket_off[static_cast<std::size_t>(tr) + 1]);
    for (std::size_t i = lo; i < hi; ++i) {
      const vidx_t tc = a.col[order[i]] / Dim;
      if (spa.mark[static_cast<std::size_t>(tc)] != g) {
        spa.mark[static_cast<std::size_t>(tc)] = g;
        distinct.push_back(tc);
      }
    }
    std::sort(distinct.begin(), distinct.end());
    const vidx_t base = b.tile_rowptr[static_cast<std::size_t>(tr)];
    for (std::size_t i = 0; i < distinct.size(); ++i) {
      const vidx_t tc = distinct[i];
      b.tile_colind[static_cast<std::size_t>(base) + i] = tc;
      spa.slot[static_cast<std::size_t>(tc)] =
          base + static_cast<vidx_t>(i);
    }
    for (std::size_t i = lo; i < hi; ++i) {
      const std::uint32_t e = order[i];
      const vidx_t r = a.row[e];
      const vidx_t c = a.col[e];
      auto& w =
          b.bits[static_cast<std::size_t>(spa.slot[static_cast<std::size_t>(
                     c / Dim)]) *
                     Dim +
                 static_cast<std::size_t>(r % Dim)];
      w = static_cast<word_t>(w | (word_t{1} << (c % Dim)));
    }
  });
  return b;
}

B2srAny pack_coo_any(const Coo& a, int dim, Exec exec) {
  return dispatch_tile_dim(
      dim, [&]<int Dim>() { return B2srAny(pack_from_coo<Dim>(a, exec)); });
}

template B2srT<4> pack_from_coo<4>(const Coo&, Exec);
template B2srT<8> pack_from_coo<8>(const Coo&, Exec);
template B2srT<16> pack_from_coo<16>(const Coo&, Exec);
template B2srT<32> pack_from_coo<32>(const Coo&, Exec);

Csr coo_to_csr(const Coo& a) {
  Coo sorted = a;
  sorted.sort_and_dedup();

  Csr out;
  out.nrows = sorted.nrows;
  out.ncols = sorted.ncols;
  out.rowptr.assign(static_cast<std::size_t>(sorted.nrows) + 1, 0);
  out.colind = std::move(sorted.col);
  out.val = std::move(sorted.val);
  for (const vidx_t r : sorted.row) {
    ++out.rowptr[static_cast<std::size_t>(r) + 1];
  }
  for (std::size_t i = 1; i < out.rowptr.size(); ++i) {
    out.rowptr[i] += out.rowptr[i - 1];
  }
  return out;
}

Coo csr_to_coo(const Csr& a) {
  Coo out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.col = a.colind;
  out.val = a.val;
  out.row.reserve(a.colind.size());
  for (vidx_t r = 0; r < a.nrows; ++r) {
    const auto lo = a.rowptr[static_cast<std::size_t>(r)];
    const auto hi = a.rowptr[static_cast<std::size_t>(r) + 1];
    for (vidx_t k = lo; k < hi; ++k) out.row.push_back(r);
  }
  return out;
}

std::vector<value_t> csr_to_dense(const Csr& a) {
  std::vector<value_t> d(static_cast<std::size_t>(a.nrows) *
                             static_cast<std::size_t>(a.ncols),
                         0.0f);
  for (vidx_t r = 0; r < a.nrows; ++r) {
    const auto cols = a.row_cols(r);
    const auto vals = a.row_vals(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      d[static_cast<std::size_t>(r) * static_cast<std::size_t>(a.ncols) +
        static_cast<std::size_t>(cols[i])] = vals.empty() ? 1.0f : vals[i];
    }
  }
  return d;
}

Csr dense_to_csr(const std::vector<value_t>& dense, vidx_t nrows,
                 vidx_t ncols) {
  Csr out;
  out.nrows = nrows;
  out.ncols = ncols;
  out.rowptr.assign(static_cast<std::size_t>(nrows) + 1, 0);
  for (vidx_t r = 0; r < nrows; ++r) {
    for (vidx_t c = 0; c < ncols; ++c) {
      if (dense[static_cast<std::size_t>(r) * static_cast<std::size_t>(ncols) +
                static_cast<std::size_t>(c)] != 0.0f) {
        out.colind.push_back(c);
      }
    }
    out.rowptr[static_cast<std::size_t>(r) + 1] =
        static_cast<vidx_t>(out.colind.size());
  }
  return out;
}

}  // namespace bitgb
