// Compressed Sparse Row matrix.
//
// CSR is the workhorse format: the float baseline (cuSPARSE substitute)
// computes on it, B2SR is packed from it, and the paper's compression
// ratios are all reported against "32-bit floating-point CSR" (§VI-B).
// A binary CSR has an empty `val` (implicit 1.0f per nonzero); its
// storage_bytes() still counts the float array, because that is exactly
// the paper's baseline accounting.
#pragma once

#include "sparse/types.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace bitgb {

struct Csr {
  vidx_t nrows = 0;
  vidx_t ncols = 0;
  std::vector<vidx_t> rowptr;  ///< size nrows+1
  std::vector<vidx_t> colind;  ///< size nnz, sorted within each row
  std::vector<value_t> val;    ///< size nnz, or empty for binary matrices

  [[nodiscard]] eidx_t nnz() const {
    return static_cast<eidx_t>(colind.size());
  }
  [[nodiscard]] bool is_binary() const { return val.empty(); }

  /// Column indices of row r.
  [[nodiscard]] std::span<const vidx_t> row_cols(vidx_t r) const {
    return {colind.data() + rowptr[static_cast<std::size_t>(r)],
            colind.data() + rowptr[static_cast<std::size_t>(r) + 1]};
  }

  /// Values of row r (empty span for binary matrices).
  [[nodiscard]] std::span<const value_t> row_vals(vidx_t r) const {
    if (val.empty()) return {};
    return {val.data() + rowptr[static_cast<std::size_t>(r)],
            val.data() + rowptr[static_cast<std::size_t>(r) + 1]};
  }

  /// Nonzero density: nnz / (nrows*ncols) — the x axis of Figures 6/7.
  [[nodiscard]] double density() const;

  /// Bytes of the full-precision CSR representation this matrix would
  /// occupy as the paper's baseline stores it: (nrows+1 + nnz) * 4-byte
  /// ints + nnz * 4-byte floats — even for binary matrices, because the
  /// compared frameworks "mostly use float to carry the elements" (§III-B).
  [[nodiscard]] std::size_t storage_bytes() const;

  /// Structural invariants: monotone rowptr, in-range sorted columns.
  [[nodiscard]] bool validate() const;
};

/// A^T in CSR — the cusparseScsr2csc() substitute (the paper transposes
/// B2SR by transposing the upper-level CSR this way, §III-A merit 1).
[[nodiscard]] Csr transpose(const Csr& a);

/// Strict lower triangle L of a: entries with col < row.  Triangle
/// counting multiplies L by L^T (paper §V, TC).
[[nodiscard]] Csr lower_triangle(const Csr& a);

/// Symmetrize: a OR a^T (pattern union; values take the max).  Graph
/// algorithms over undirected graphs expect symmetric adjacency.
[[nodiscard]] Csr symmetrize(const Csr& a);

/// Remove diagonal entries (the paper omits self-connectivity in SSSP,
/// §V: "Only 0s along the diagonal are treated as actual zeros").
[[nodiscard]] Csr strip_diagonal(const Csr& a);

/// Out-degree per row (the PR auxiliary vector v_out_degree, §V).
[[nodiscard]] std::vector<vidx_t> out_degrees(const Csr& a);

/// True if the pattern is symmetric (used by test invariants).
[[nodiscard]] bool is_symmetric(const Csr& a);

}  // namespace bitgb
