#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

namespace bitgb {

namespace {

std::string to_lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

struct Header {
  bool pattern = false;
  bool symmetric = false;
  bool skew = false;
};

Header parse_banner(const std::string& line) {
  std::istringstream ss(line);
  std::string tag, object, fmt, field, sym;
  ss >> tag >> object >> fmt >> field >> sym;
  if (tag != "%%MatrixMarket") {
    throw MatrixMarketError("missing %%MatrixMarket banner");
  }
  if (to_lower(object) != "matrix" || to_lower(fmt) != "coordinate") {
    throw MatrixMarketError("only 'matrix coordinate' inputs are supported");
  }
  Header h;
  const std::string f = to_lower(field);
  if (f == "pattern") {
    h.pattern = true;
  } else if (f != "real" && f != "integer" && f != "double") {
    throw MatrixMarketError("unsupported field type: " + field);
  }
  const std::string s = to_lower(sym);
  if (s == "symmetric") {
    h.symmetric = true;
  } else if (s == "skew-symmetric") {
    h.symmetric = true;
    h.skew = true;
  } else if (s != "general") {
    throw MatrixMarketError("unsupported symmetry: " + sym);
  }
  return h;
}

}  // namespace

Coo read_matrix_market(std::istream& in) {
  std::string line;
  if (!std::getline(in, line)) throw MatrixMarketError("empty input");
  const Header h = parse_banner(line);

  // Skip comments, find the size line.
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  long long nr = 0;
  long long nc = 0;
  long long nz = 0;
  {
    std::istringstream ss(line);
    if (!(ss >> nr >> nc >> nz)) {
      throw MatrixMarketError("malformed size line: " + line);
    }
  }
  if (nr < 0 || nc < 0 || nz < 0) throw MatrixMarketError("negative size");
  // Range-check the header against the library's index types before the
  // narrowing casts: a dimension beyond vidx_t would otherwise truncate
  // silently and mis-index every entry, and symmetric inputs store up
  // to two entries per declared nonzero.
  constexpr long long kMaxDim = std::numeric_limits<vidx_t>::max();
  if (nr > kMaxDim || nc > kMaxDim) {
    throw MatrixMarketError("matrix dimensions " + std::to_string(nr) + " x " +
                            std::to_string(nc) + " exceed the 32-bit index "
                            "limit (" + std::to_string(kMaxDim) + ")");
  }
  const long long stored_factor = h.symmetric ? 2 : 1;
  if (nz > std::numeric_limits<eidx_t>::max() / stored_factor) {
    throw MatrixMarketError("declared nonzero count " + std::to_string(nz) +
                            (h.symmetric ? " (x2 symmetric mirroring)" : "") +
                            " exceeds the 64-bit nonzero limit");
  }

  Coo out;
  out.nrows = static_cast<vidx_t>(nr);
  out.ncols = static_cast<vidx_t>(nc);
  // Symmetric inputs mirror every off-diagonal entry, so reserving only
  // nz would force a reallocation mid-parse; 2*nz covers the worst case.
  const auto stored_cap = static_cast<std::size_t>(nz * stored_factor);
  out.row.reserve(stored_cap);
  out.col.reserve(stored_cap);
  if (!h.pattern) out.val.reserve(stored_cap);

  long long seen = 0;
  while (seen < nz && std::getline(in, line)) {
    if (line.empty() || line[0] == '%') continue;
    std::istringstream ss(line);
    long long r1 = 0;
    long long c1 = 0;
    double v = 1.0;
    if (!(ss >> r1 >> c1)) {
      throw MatrixMarketError("malformed entry: " + line);
    }
    if (!h.pattern && !(ss >> v)) {
      throw MatrixMarketError("missing value: " + line);
    }
    if (r1 < 1 || r1 > nr || c1 < 1 || c1 > nc) {
      throw MatrixMarketError("index out of range: " + line);
    }
    const vidx_t r = static_cast<vidx_t>(r1 - 1);
    const vidx_t c = static_cast<vidx_t>(c1 - 1);
    if (h.pattern) {
      out.push(r, c);
      if (h.symmetric && r != c) out.push(c, r);
    } else {
      out.push(r, c, static_cast<value_t>(v));
      if (h.symmetric && r != c) {
        out.push(c, r, static_cast<value_t>(h.skew ? -v : v));
      }
    }
    ++seen;
  }
  if (seen != nz) throw MatrixMarketError("fewer entries than declared");
  // The declared count is a contract in both directions: extra
  // non-comment data after the last declared entry means the size line
  // and the body disagree, and silently dropping the tail would hand
  // back a graph missing edges the file plainly contains.
  while (std::getline(in, line)) {
    const auto pos = line.find_first_not_of(" \t\r");
    if (pos == std::string::npos || line[pos] == '%') continue;
    throw MatrixMarketError("trailing data after the " + std::to_string(nz) +
                            " declared entries: " + line);
  }
  out.sort_and_dedup();
  return out;
}

Coo read_matrix_market_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw MatrixMarketError("cannot open " + path);
  return read_matrix_market(f);
}

void write_matrix_market(std::ostream& out, const Coo& a) {
  const bool pattern = a.is_binary();
  out << "%%MatrixMarket matrix coordinate "
      << (pattern ? "pattern" : "real") << " general\n";
  out << a.nrows << ' ' << a.ncols << ' ' << a.nnz() << '\n';
  for (eidx_t i = 0; i < a.nnz(); ++i) {
    const auto k = static_cast<std::size_t>(i);
    out << (a.row[k] + 1) << ' ' << (a.col[k] + 1);
    if (!pattern) out << ' ' << a.val[k];
    out << '\n';
  }
}

void write_matrix_market_file(const std::string& path, const Coo& a) {
  std::ofstream f(path);
  if (!f) throw MatrixMarketError("cannot open " + path + " for writing");
  write_matrix_market(f, a);
}

}  // namespace bitgb
