// Coordinate-format sparse matrix (edge list).
//
// COO is the interchange format: generators and Matrix Market I/O emit
// COO; everything computational converts to CSR (convert.hpp).  For
// binary matrices `val` is empty and every entry is implicitly 1.0f.
#pragma once

#include "sparse/types.hpp"

#include <vector>

namespace bitgb {

struct Coo {
  vidx_t nrows = 0;
  vidx_t ncols = 0;
  std::vector<vidx_t> row;   ///< row index per nonzero
  std::vector<vidx_t> col;   ///< column index per nonzero
  std::vector<value_t> val;  ///< empty for binary (pattern) matrices

  [[nodiscard]] eidx_t nnz() const { return static_cast<eidx_t>(row.size()); }
  [[nodiscard]] bool is_binary() const { return val.empty(); }

  /// Append one entry.  Binary matrices must stay binary (no val pushes
  /// after pattern pushes and vice versa); enforced by assertions in
  /// validate().
  void push(vidx_t r, vidx_t c) {
    row.push_back(r);
    col.push_back(c);
  }
  void push(vidx_t r, vidx_t c, value_t v) {
    row.push_back(r);
    col.push_back(c);
    val.push_back(v);
  }

  /// Sort entries by (row, col) and merge duplicates.  Duplicate merge
  /// for binary matrices keeps a single entry; for weighted matrices the
  /// values are summed (Matrix Market convention).
  void sort_and_dedup();

  /// Structural sanity: indices in range, val size consistent.
  /// Returns false (and leaves the matrix untouched) on violation.
  [[nodiscard]] bool validate() const;
};

/// Make a weighted copy of a binary COO with all values = 1.0f (the
/// representation the float-CSR baseline computes on).
[[nodiscard]] Coo with_unit_values(const Coo& a);

/// Drop values, keeping only the pattern (the representation B2SR packs).
[[nodiscard]] Coo pattern_of(const Coo& a);

}  // namespace bitgb
