// Synthetic matrix generators — the SuiteSparse dataset substitute.
//
// The paper evaluates on all 521 binary square matrices of the
// SuiteSparse Matrix Collection and buckets them into six nonzero
// pattern categories (paper Table V): dot (random scatter), diagonal
// (band around the main diagonal), block, stripe (lines of various
// slopes), road (regular planar distribution), and hybrid.  That
// collection is not available offline, so these generators produce
// structurally equivalent matrices per category.  Each generator is
// deterministic given its seed, so the corpus (benchlib/corpus.*) is
// reproducible.
//
// All generators emit *binary square* matrices (the paper's population:
// homogeneous graphs); graph-algorithm consumers symmetrize as needed.
#pragma once

#include "sparse/coo.hpp"
#include "sparse/csr.hpp"

#include <cstdint>
#include <vector>

namespace bitgb {

/// Table V pattern categories.
enum class Pattern {
  kDot,       ///< nonzeros scattered uniformly at random (Erdős–Rényi)
  kDiagonal,  ///< band matrix: nonzeros near the main diagonal
  kBlock,     ///< dense square blocks / contours
  kStripe,    ///< one or more lines at various slopes/offsets
  kRoad,      ///< planar grid / mesh (road-network-like regularity)
  kHybrid,    ///< combination of two or more of the above
};

[[nodiscard]] const char* pattern_name(Pattern p);

/// Erdős–Rényi G(n, m): `nnz_target` distinct off-diagonal entries placed
/// uniformly at random ("dot" category).
[[nodiscard]] Coo gen_random(vidx_t n, eidx_t nnz_target, std::uint64_t seed);

/// Band matrix: each row has entries within +-bandwidth of the diagonal,
/// keeping each with probability `fill` ("diagonal" category;
/// analogs: ash292, minnesota, jagmesh6, whitaker3_dual, 3dtube, ...).
[[nodiscard]] Coo gen_banded(vidx_t n, vidx_t bandwidth, double fill,
                             std::uint64_t seed);

/// Block pattern: `nblocks` dense-ish square blocks of size `block_size`
/// placed along (or off) the diagonal with interior density `fill`
/// ("block" category; analogs: Erdos02, net25, EX3).
[[nodiscard]] Coo gen_block(vidx_t n, vidx_t block_size, int nblocks,
                            double fill, std::uint64_t seed,
                            bool off_diagonal_blocks = true);

/// Stripe pattern: `nstripes` lines r -> (slope*r + offset) mod n with
/// per-entry keep probability `fill` ("stripe" category; analogs:
/// delaunay_n14 [as rendered in the paper's table], se, debr).
[[nodiscard]] Coo gen_stripe(vidx_t n, int nstripes, double fill,
                             std::uint64_t seed);

/// 2D grid / road network: width*height nodes, 4-neighbour connectivity
/// with a fraction `rewire` of random long edges ("road" category).
/// The returned matrix has n = width*height rows.
[[nodiscard]] Coo gen_road(vidx_t width, vidx_t height, double rewire,
                           std::uint64_t seed);

/// Hybrid: union of a band, a block set and random scatter ("hybrid").
[[nodiscard]] Coo gen_hybrid(vidx_t n, std::uint64_t seed);

/// RMAT power-law graph (a=0.57,b=0.19,c=0.19,d=0.05 Graph500 defaults);
/// used for social-network-flavoured examples and scale-free analogs.
[[nodiscard]] Coo gen_rmat(int scale, eidx_t nnz_target, std::uint64_t seed);

/// The Mycielski construction applied `k-2` times to K2, producing the
/// mycielskian-k graph of the SuiteSparse collection *exactly* (these
/// are deterministic graphs: mycielskian9 has 383 nodes, mycielskian12
/// has 3071).  Used for the paper's mycielskian9/10/12/13 rows.
[[nodiscard]] Coo gen_mycielskian(int k);

/// Path-of-cliques "small-world chain" used for the `uk`/`se` style
/// long-diameter matrices: `nchains` cliques of `clique` vertices linked
/// in a ring.
[[nodiscard]] Coo gen_chain_of_cliques(vidx_t nchains, vidx_t clique,
                                       std::uint64_t seed);

/// Generate a matrix of the given category at roughly n rows and the
/// requested density (best effort; exact for kDot).  Dispatcher used by
/// the corpus builder.
[[nodiscard]] Coo gen_pattern(Pattern p, vidx_t n, double density,
                              std::uint64_t seed);

}  // namespace bitgb
