// Matrix Market (.mtx) reader/writer.
//
// The paper's dataset is the SuiteSparse Matrix Collection, which is
// distributed in Matrix Market format.  This reader handles the subset
// the collection uses for graphs: `matrix coordinate
// {pattern|real|integer} {general|symmetric}` with 1-based indices and
// '%' comments.  Symmetric inputs are expanded to both triangles, which
// is how SuiteSparse graph consumers interpret them.
#pragma once

#include "sparse/coo.hpp"

#include <iosfwd>
#include <stdexcept>
#include <string>

namespace bitgb {

/// Raised on malformed input.
class MatrixMarketError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Parse a Matrix Market stream into COO (sorted, deduplicated).
/// `pattern` entries produce a binary COO (empty val).
[[nodiscard]] Coo read_matrix_market(std::istream& in);

/// Convenience file loader.
[[nodiscard]] Coo read_matrix_market_file(const std::string& path);

/// Write COO as `coordinate pattern general` (binary) or `coordinate
/// real general` (weighted), 1-based.
void write_matrix_market(std::ostream& out, const Coo& a);
void write_matrix_market_file(const std::string& path, const Coo& a);

}  // namespace bitgb
