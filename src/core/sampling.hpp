// Sampling profiler and tile-size advisor — paper Algorithm 1 (§III-C).
//
// Converting CSR to B2SR pays off only when tiles capture enough
// nonzeros; the paper's answer is an offline *sampled* estimate of the
// compression rate per candidate tile size: pick N random rows, count
// how many distinct tile columns each row's nonzeros fall into per tile
// size k in {4,8,16,32}, and from the per-row (nnz, occupied-bit-row)
// counts estimate the B2SR/CSR size ratio without packing anything.
//
// Estimation model (per tile size k, from the sampled rows):
//   bit-rows occupied per sampled row  ~ |distinct j/k per row|
//   => estimated non-empty tiles ≈ (sum of distinct counts over all
//      rows) / k  (a tile is shared by up to k consecutive rows; the
//      per-row count is an upper bound whose k-row average the sampler
//      uses, matching the spirit of Algorithm 1's ColCounter)
//   => estimated B2SR bytes = index arrays + tiles * k * word_bytes
//   => estimated rate = estimated B2SR bytes / exact CSR bytes.
//
// The estimate is validated against the exact packer in the tests and
// its accuracy/overhead sweep is bench_sampling_profile.
#pragma once

#include "sparse/csr.hpp"
#include "core/tile_traits.hpp"

#include <array>
#include <cstdint>
#include <vector>

namespace bitgb {

struct SampleEstimate {
  int dim = 0;
  double est_compression_pct = 0.0;  ///< estimated B2SR/CSR size, percent
  double est_nonempty_tiles = 0.0;   ///< estimated non-empty tile count
  double est_occupancy_pct = 0.0;    ///< estimated nnz share inside tiles
};

struct SamplingProfile {
  std::array<SampleEstimate, kNumTileDims> per_dim{};
  vidx_t rows_sampled = 0;

  /// The dim with the lowest estimated compression percentage.
  [[nodiscard]] int recommended_dim() const;

  /// True if any dim is estimated to compress (< 100%) — the go/no-go
  /// signal the paper's §III-C workflow gives the user.
  [[nodiscard]] bool worth_converting() const;
};

/// Run Algorithm 1: sample `sample_rows` distinct rows (all rows if
/// sample_rows >= nrows) with the given seed and estimate per-dim
/// compression.
[[nodiscard]] SamplingProfile sample_profile(const Csr& a, vidx_t sample_rows,
                                             std::uint64_t seed);

}  // namespace bitgb
