#include "core/bitplane.hpp"

#include "core/bmv.hpp"
#include "core/pack.hpp"

#include <algorithm>
#include <cmath>

namespace bitgb {

namespace {

// Round a float weight to the clamped integer the decomposition stores.
std::uint32_t quantize(value_t v, int bit_width) {
  const auto max_w = (std::uint32_t{1} << bit_width) - 1;
  const auto r = static_cast<std::int64_t>(std::lround(v));
  if (r <= 0) return 0;
  return std::min<std::uint32_t>(static_cast<std::uint32_t>(r), max_w);
}

}  // namespace

int required_bit_width(const Csr& a) {
  std::int64_t max_w = 1;
  for (const value_t v : a.val) {
    max_w = std::max<std::int64_t>(max_w, std::lround(v));
  }
  int w = 1;
  while ((std::int64_t{1} << w) <= max_w) ++w;
  return w;
}

template <int Dim>
BitPlaneMatrix<Dim> decompose_bitplanes(const Csr& a, int bit_width) {
  BitPlaneMatrix<Dim> out;
  out.nrows = a.nrows;
  out.ncols = a.ncols;
  out.bit_width = bit_width;

  for (int p = 0; p < bit_width; ++p) {
    // Build plane p's pattern: edges whose quantized weight has bit p.
    Csr plane;
    plane.nrows = a.nrows;
    plane.ncols = a.ncols;
    plane.rowptr.assign(static_cast<std::size_t>(a.nrows) + 1, 0);
    for (vidx_t r = 0; r < a.nrows; ++r) {
      const auto cols = a.row_cols(r);
      const auto vals = a.row_vals(r);
      for (std::size_t i = 0; i < cols.size(); ++i) {
        const value_t v = vals.empty() ? 1.0f : vals[i];
        const std::uint32_t q = quantize(v, bit_width);
        if ((q >> p) & 1u) plane.colind.push_back(cols[i]);
      }
      plane.rowptr[static_cast<std::size_t>(r) + 1] =
          static_cast<vidx_t>(plane.colind.size());
    }
    out.planes.push_back(pack_from_csr<Dim>(plane));
  }
  return out;
}

template <int Dim>
void bitplane_spmv(const BitPlaneMatrix<Dim>& a,
                   const std::vector<value_t>& x, std::vector<value_t>& y) {
  y.assign(static_cast<std::size_t>(a.nrows), 0.0f);
  std::vector<value_t> plane_y;
  for (int p = 0; p < a.bit_width; ++p) {
    bmv_bin_full_full<Dim, PlusTimesOp>(a.planes[static_cast<std::size_t>(p)],
                                        x, plane_y);
    const auto scale = static_cast<value_t>(1u << p);
    for (std::size_t i = 0; i < y.size(); ++i) y[i] += scale * plane_y[i];
  }
}

#define BITGB_INSTANTIATE_BITPLANE(Dim)                                  \
  template BitPlaneMatrix<Dim> decompose_bitplanes<Dim>(const Csr&, int); \
  template void bitplane_spmv<Dim>(const BitPlaneMatrix<Dim>&,           \
                                   const std::vector<value_t>&,          \
                                   std::vector<value_t>&)

BITGB_INSTANTIATE_BITPLANE(4);
BITGB_INSTANTIATE_BITPLANE(8);
BITGB_INSTANTIATE_BITPLANE(16);
BITGB_INSTANTIATE_BITPLANE(32);

#undef BITGB_INSTANTIATE_BITPLANE

}  // namespace bitgb
