// Bit-plane decomposition for short integer weights — the paper's §VII
// future-work item, implemented as an extension.
//
// "As the weights for many heterogeneous graphs can be expressed by
// integers or fixed-points, ... Bit-GraphBLAS can also be extended to
// support heterogeneous graphs with short bit-width" — the recipe
// (borrowed from the quantized-NN decomposition the paper cites) is to
// split a matrix with b-bit integer weights into b binary matrices
// (one per bit plane), each stored in B2SR, and compute
//   A * x = sum_p 2^p * (plane_p * x)
// with the already-optimized binary kernels.
#pragma once

#include "core/b2sr.hpp"
#include "core/packed_vector.hpp"
#include "sparse/csr.hpp"

#include <cstdint>
#include <vector>

namespace bitgb {

/// A weighted matrix stored as bit planes of its integer weights.
template <int Dim>
struct BitPlaneMatrix {
  vidx_t nrows = 0;
  vidx_t ncols = 0;
  int bit_width = 0;                  ///< planes stored (weights < 2^w)
  std::vector<B2srT<Dim>> planes;     ///< plane p holds weight bit p

  [[nodiscard]] std::size_t storage_bytes() const {
    std::size_t s = 0;
    for (const auto& p : planes) s += p.storage_bytes();
    return s;
  }
};

/// Decompose a CSR with integer weights in [0, 2^bit_width) into planes.
/// Weights outside the range are clamped; zero weights drop the edge
/// (consistent with "0 means no edge" of the homogeneous case).
template <int Dim>
[[nodiscard]] BitPlaneMatrix<Dim> decompose_bitplanes(const Csr& a,
                                                      int bit_width);

/// y = A * x over arithmetic (+, x) using the plane decomposition:
/// bmv_bin_full_full per plane, scaled by 2^p and summed.
template <int Dim>
void bitplane_spmv(const BitPlaneMatrix<Dim>& a,
                   const std::vector<value_t>& x, std::vector<value_t>& y);

/// Smallest bit width that represents every (rounded) weight of `a`.
[[nodiscard]] int required_bit_width(const Csr& a);

}  // namespace bitgb
