#include "core/bmv.hpp"

#include "platform/simd.hpp"

namespace bitgb {

template <int Dim>
void bmv_bin_bin_bin(const B2srT<Dim>& a, const PackedVecT<Dim>& x,
                     PackedVecT<Dim>& y, Exec exec) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(x.n == a.ncols);
  y.resize(a.nrows);
  const bool use_simd =
      resolve_kernel_variant(exec.variant, HotKernel::kBmvBinBinBin, Dim) ==
      KernelVariant::kSimd;
  const vidx_t* rowptr = a.tile_rowptr.data();
  const vidx_t* colind = a.tile_colind.data();
  const word_t* tiles = a.bits.data();
  const word_t* xw = x.words.data();
  word_t* yw = y.words.data();
  // Value captures only: a by-reference capture would tie the lambda to
  // the caller's stack and force the serial path's loads through memory
  // (see parallel.hpp on closure escape).
  parallel_for(exec.threads, vidx_t{0}, a.n_tile_rows(), [=](vidx_t tr) {
    const vidx_t lo = rowptr[tr];
    const vidx_t hi = rowptr[tr + 1];
    if (lo == hi) return;
    word_t out = 0;
    if (use_simd) {
      out = simd::bbb_row_or<Dim>(tiles, colind, xw, lo, hi);
    } else {
      for (vidx_t t = lo; t < hi; ++t) {
        const word_t xword = xw[static_cast<std::size_t>(colind[t])];
        if (xword == 0) continue;
        const word_t* words = tiles + static_cast<std::size_t>(t) * Dim;
        for (int r = 0; r < Dim; ++r) {
          if ((words[r] & xword) != 0) out = set_bit(out, r);
        }
      }
    }
    yw[static_cast<std::size_t>(tr)] = out;
  });
}

template <int Dim>
void bmv_bin_bin_bin_masked(const B2srT<Dim>& a, const PackedVecT<Dim>& x,
                            const PackedVecT<Dim>& mask, bool complement,
                            PackedVecT<Dim>& y, Exec exec) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(x.n == a.ncols);
  assert(mask.n == a.nrows);
  y.resize(a.nrows);
  const bool use_simd =
      resolve_kernel_variant(exec.variant, HotKernel::kBmvBinBinBinMasked, Dim) ==
      KernelVariant::kSimd;
  const vidx_t* rowptr = a.tile_rowptr.data();
  const vidx_t* colind = a.tile_colind.data();
  const word_t* tiles = a.bits.data();
  const word_t* xw = x.words.data();
  const word_t* mw = mask.words.data();
  word_t* yw = y.words.data();
  parallel_for(exec.threads, vidx_t{0}, a.n_tile_rows(), [=](vidx_t tr) {
    const vidx_t lo = rowptr[tr];
    const vidx_t hi = rowptr[tr + 1];
    if (lo == hi) return;
    word_t out = 0;
    if (use_simd) {
      out = simd::bbb_row_or<Dim>(tiles, colind, xw, lo, hi);
    } else {
      for (vidx_t t = lo; t < hi; ++t) {
        const word_t xword = xw[static_cast<std::size_t>(colind[t])];
        if (xword == 0) continue;
        const word_t* words = tiles + static_cast<std::size_t>(t) * Dim;
        for (int r = 0; r < Dim; ++r) {
          if ((words[r] & xword) != 0) out = set_bit(out, r);
        }
      }
    }
    // Paper §V: no early exit (it would diverge the warp); instead the
    // bitmask is AND-ed right before the output store.
    word_t mword = mw[static_cast<std::size_t>(tr)];
    if (complement) mword = static_cast<word_t>(~mword);
    yw[static_cast<std::size_t>(tr)] = static_cast<word_t>(out & mword);
  });
  // Clamp tail bits beyond nrows (complemented masks set them).
  if (a.nrows % Dim != 0 && !y.words.empty()) {
    using W = typename TileTraits<Dim>::word_t;
    y.words.back() =
        static_cast<W>(y.words.back() & low_mask<W>(a.nrows % Dim));
  }
}

template <int Dim>
void bmv_bin_bin_bin_push_masked(const B2srT<Dim>& a,
                                 const PackedVecT<Dim>& x,
                                 const PackedVecT<Dim>& mask, bool complement,
                                 PackedVecT<Dim>& y, Exec exec) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(x.n == a.nrows);  // vxm: x selects rows of A
  assert(mask.n == a.ncols);
  y.resize(a.ncols);
  const bool concurrent = resolve_width(exec.threads) > 1;
  const vidx_t* rowptr = a.tile_rowptr.data();
  const vidx_t* colind = a.tile_colind.data();
  const word_t* tiles = a.bits.data();
  const word_t* fx = x.words.data();
  const word_t* mw = mask.words.data();
  word_t* yw = y.words.data();
  parallel_for(exec.threads, vidx_t{0}, a.n_tile_rows(), [=](vidx_t tr) {
    const word_t fw = fx[static_cast<std::size_t>(tr)];
    if (fw == 0) return;  // no frontier vertex in this tile-row
    const vidx_t lo = rowptr[tr];
    const vidx_t hi = rowptr[tr + 1];
    for (vidx_t t = lo; t < hi; ++t) {
      const word_t* words = tiles + static_cast<std::size_t>(t) * Dim;
      word_t out = 0;
      for_each_set_bit(fw, [&](int r) {
        out = static_cast<word_t>(out | words[r]);
      });
      if (out == 0) continue;
      const auto j = static_cast<std::size_t>(colind[t]);
      word_t mword = mw[j];
      if (complement) mword = static_cast<word_t>(~mword);
      out = static_cast<word_t>(out & mword);
      if (out != 0) atomic_or_word(&yw[j], out, concurrent);
    }
  });
  // Clamp tail bits beyond ncols (complemented masks set them).
  if (a.ncols % Dim != 0 && !y.words.empty()) {
    y.words.back() =
        static_cast<word_t>(y.words.back() & low_mask<word_t>(a.ncols % Dim));
  }
}

template <int Dim>
void bmv_bin_bin_bin_push_masked(const B2srT<Dim>& a,
                                 const PackedVecT<Dim>& x,
                                 const std::vector<vidx_t>& active,
                                 const PackedVecT<Dim>& mask, bool complement,
                                 PackedVecT<Dim>& y,
                                 std::vector<vidx_t>& touched) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(x.n == a.nrows);
  assert(mask.n == a.ncols);
  assert(static_cast<vidx_t>(y.words.size()) == (a.ncols + Dim - 1) / Dim);
  // Serial over the active tile-rows: the work is frontier-proportional
  // by construction (the GPU analog maps each active tile-row to one
  // warp; the host analog of a sparse frontier doesn't amortize a
  // parallel region).
  const word_t tail_mask =
      (a.ncols % Dim != 0) ? low_mask<word_t>(a.ncols % Dim)
                           : static_cast<word_t>(~word_t{0});
  const auto last_word = y.words.size() - 1;
  const vidx_t* rowptr = a.tile_rowptr.data();
  const vidx_t* colind = a.tile_colind.data();
  const word_t* tiles = a.bits.data();
  for (const vidx_t tr : active) {
    const word_t fw = x.words[static_cast<std::size_t>(tr)];
    if (fw == 0) continue;
    const vidx_t lo = rowptr[tr];
    const vidx_t hi = rowptr[tr + 1];
    for (vidx_t t = lo; t < hi; ++t) {
      const word_t* words = tiles + static_cast<std::size_t>(t) * Dim;
      word_t out = 0;
      for_each_set_bit(fw, [&](int r) {
        out = static_cast<word_t>(out | words[r]);
      });
      if (out == 0) continue;
      const auto j = static_cast<std::size_t>(colind[t]);
      word_t mword = mask.words[j];
      if (complement) mword = static_cast<word_t>(~mword);
      if (j == last_word) mword = static_cast<word_t>(mword & tail_mask);
      out = static_cast<word_t>(out & mword);
      if (out == 0) continue;
      const word_t prev = y.words[j];
      y.words[j] = static_cast<word_t>(prev | out);
      if (prev == 0 && y.words[j] != 0) {
        touched.push_back(static_cast<vidx_t>(j));
      }
    }
  }
}

template <int Dim>
void bmv_bin_bin_full(const B2srT<Dim>& a, const PackedVecT<Dim>& x,
                      std::vector<value_t>& y, Exec exec) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(x.n == a.ncols);
  y.assign(static_cast<std::size_t>(a.nrows), 0.0f);
  const bool use_simd =
      resolve_kernel_variant(exec.variant, HotKernel::kBmvBinBinFull, Dim) ==
      KernelVariant::kSimd;
  const vidx_t* rowptr = a.tile_rowptr.data();
  const vidx_t* colind = a.tile_colind.data();
  const word_t* tiles = a.bits.data();
  const word_t* xw = x.words.data();
  value_t* yp = y.data();
  const vidx_t nrows = a.nrows;
  parallel_for(exec.threads, vidx_t{0}, a.n_tile_rows(), [=](vidx_t tr) {
    const vidx_t lo = rowptr[tr];
    const vidx_t hi = rowptr[tr + 1];
    if (lo == hi) return;
    std::int32_t acc[Dim] = {};
    if (use_simd) {
      simd::bbf_row_accum<Dim>(tiles, colind, xw, lo, hi, acc);
    } else {
      for (vidx_t t = lo; t < hi; ++t) {
        const word_t xword = xw[static_cast<std::size_t>(colind[t])];
        if (xword == 0) continue;
        const word_t* words = tiles + static_cast<std::size_t>(t) * Dim;
        for (int r = 0; r < Dim; ++r) {
          // The paper's core identity: c_i = __popc(A_i & b).
          acc[r] += popcount(static_cast<word_t>(words[r] & xword));
        }
      }
    }
    const vidx_t r0 = tr * Dim;
    const vidx_t rend = std::min<vidx_t>(nrows, r0 + Dim);
    for (vidx_t r = r0; r < rend; ++r) {
      yp[static_cast<std::size_t>(r)] = static_cast<value_t>(acc[r - r0]);
    }
  });
}

template <int Dim>
void bmv_bin_bin_full_masked(const B2srT<Dim>& a, const PackedVecT<Dim>& x,
                             const PackedVecT<Dim>& mask, bool complement,
                             std::vector<value_t>& y, Exec exec) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(x.n == a.ncols);
  assert(mask.n == a.nrows);
  assert(static_cast<vidx_t>(y.size()) == a.nrows);
  const bool use_simd =
      resolve_kernel_variant(exec.variant, HotKernel::kBmvBinBinFullMasked, Dim) ==
      KernelVariant::kSimd;
  const vidx_t* rowptr = a.tile_rowptr.data();
  const vidx_t* colind = a.tile_colind.data();
  const word_t* tiles = a.bits.data();
  const word_t* xw = x.words.data();
  const word_t* mw = mask.words.data();
  value_t* yp = y.data();
  const vidx_t nrows = a.nrows;
  parallel_for(exec.threads, vidx_t{0}, a.n_tile_rows(), [=](vidx_t tr) {
    const vidx_t lo = rowptr[tr];
    const vidx_t hi = rowptr[tr + 1];
    if (lo == hi) return;
    std::int32_t acc[Dim] = {};
    if (use_simd) {
      simd::bbf_row_accum<Dim>(tiles, colind, xw, lo, hi, acc);
    } else {
      for (vidx_t t = lo; t < hi; ++t) {
        const word_t xword = xw[static_cast<std::size_t>(colind[t])];
        if (xword == 0) continue;
        const word_t* words = tiles + static_cast<std::size_t>(t) * Dim;
        for (int r = 0; r < Dim; ++r) {
          acc[r] += popcount(static_cast<word_t>(words[r] & xword));
        }
      }
    }
    word_t mword = mw[static_cast<std::size_t>(tr)];
    if (complement) mword = static_cast<word_t>(~mword);
    const vidx_t r0 = tr * Dim;
    const vidx_t rend = std::min<vidx_t>(nrows, r0 + Dim);
    for (vidx_t r = r0; r < rend; ++r) {
      if (get_bit(mword, static_cast<int>(r - r0)) != 0) {
        yp[static_cast<std::size_t>(r)] = static_cast<value_t>(acc[r - r0]);
      }
    }
  });
}

#define BITGB_INSTANTIATE_BMV(Dim)                                          \
  template void bmv_bin_bin_bin<Dim>(const B2srT<Dim>&,                     \
                                     const PackedVecT<Dim>&,                \
                                     PackedVecT<Dim>&, Exec);      \
  template void bmv_bin_bin_bin_masked<Dim>(                                \
      const B2srT<Dim>&, const PackedVecT<Dim>&, const PackedVecT<Dim>&,    \
      bool, PackedVecT<Dim>&, Exec);                               \
  template void bmv_bin_bin_bin_push_masked<Dim>(                           \
      const B2srT<Dim>&, const PackedVecT<Dim>&, const PackedVecT<Dim>&,    \
      bool, PackedVecT<Dim>&, Exec);                                              \
  template void bmv_bin_bin_bin_push_masked<Dim>(                           \
      const B2srT<Dim>&, const PackedVecT<Dim>&, const std::vector<vidx_t>&,\
      const PackedVecT<Dim>&, bool, PackedVecT<Dim>&,                       \
      std::vector<vidx_t>&);                                                \
  template void bmv_bin_bin_full<Dim>(const B2srT<Dim>&,                    \
                                      const PackedVecT<Dim>&,               \
                                      std::vector<value_t>&, Exec);\
  template void bmv_bin_bin_full_masked<Dim>(                               \
      const B2srT<Dim>&, const PackedVecT<Dim>&, const PackedVecT<Dim>&,    \
      bool, std::vector<value_t>&, Exec)

BITGB_INSTANTIATE_BMV(4);
BITGB_INSTANTIATE_BMV(8);
BITGB_INSTANTIATE_BMV(16);
BITGB_INSTANTIATE_BMV(32);

#undef BITGB_INSTANTIATE_BMV

}  // namespace bitgb
