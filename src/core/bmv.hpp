// Binarized sparse Matrix-Vector kernels (BMV) — paper Table II.
//
// Six schemes over B2SR, named as in the paper:
//
//   bmv_bin_bin_bin          1-bit A, 1-bit x, 1-bit y     (Boolean OR-AND)
//   bmv_bin_bin_full         1-bit A, 1-bit x, 32-bit y    (popcount sums)
//   bmv_bin_full_full<Op>    1-bit A, 32-bit x, 32-bit y   (semiring Op)
//   *_masked                 same, with a bit-mask applied at the output
//                            store (the paper's masking design: "the
//                            bitmask is applied right before the output
//                            store, having bit-wise AND with the negation
//                            of [the] visited vertex vector", §V) —
//                            masked-off positions keep their prior value.
//
// Parallelization: one tile-row per task (the paper's one-warp-per-
// tile-row mapping, §IV "warp-consolidation model"); output rows of
// distinct tile-rows are disjoint, so no atomics are needed on y.
// Within a tile, bit-row r of word w and the packed vector chunk b give
//   y[r] (+)= popc(w & b)          — the paper's core identity
//   A_ij x b_j = c_i = __popc(A_ij & b_j).
//
// The masked variants take the mask as a PackedVec of the same tile dim
// plus `complement` (GraphBLAS structural complement: BFS masks with the
// *negation* of visited).
#pragma once

#include "core/b2sr.hpp"
#include "core/packed_vector.hpp"
#include "core/semiring_ops.hpp"
#include "platform/exec.hpp"
#include "platform/parallel.hpp"
#include "platform/simd.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace bitgb {

// Every kernel takes a trailing Exec (platform/exec.hpp): the variant
// selects the scalar or SIMD inner loop (kAuto = measured per-(kernel,
// dim) preference table) and `threads` bounds the parallel region, so
// concurrent callers with different policies never touch shared state.
// Both variants are bit-identical (integer-exact reductions); the
// active-list push kernel is a frontier-proportional serial scatter
// loop by design.

// --- bin x bin -> bin (Boolean semiring; BFS frontier expansion) ---

template <int Dim>
void bmv_bin_bin_bin(const B2srT<Dim>& a, const PackedVecT<Dim>& x,
                     PackedVecT<Dim>& y, Exec exec = {});

/// Masked: y_bits &= (complement ? ~mask : mask) at store time.
template <int Dim>
void bmv_bin_bin_bin_masked(const B2srT<Dim>& a, const PackedVecT<Dim>& x,
                            const PackedVecT<Dim>& mask, bool complement,
                            PackedVecT<Dim>& y, Exec exec = {});

/// Push-direction boolean vxm: y = x^T (.) A == OR of A's bit-rows
/// selected by x, visiting only tile-rows whose frontier word is
/// non-zero.  This is the sparse-frontier dual of bmv_bin_bin_bin (the
/// same vxm() traversal the paper's BFS performs, §V) and costs work
/// proportional to the frontier's tiles rather than the whole matrix —
/// the direction-optimized BFS uses it while the frontier is sparse.
/// The mask is applied at the output store exactly as in the pull form.
template <int Dim>
void bmv_bin_bin_bin_push_masked(const B2srT<Dim>& a,
                                 const PackedVecT<Dim>& x,
                                 const PackedVecT<Dim>& mask, bool complement,
                                 PackedVecT<Dim>& y, Exec exec = {});

/// Active-list push: like bmv_bin_bin_bin_push_masked, but the caller
/// supplies the indices of x's non-zero words (`active`), and the
/// kernel appends to `touched` the indices of y's words it turned
/// non-zero — so a BFS level costs O(frontier tiles), independent of
/// the matrix size.  `y` must arrive all-zero and correctly sized;
/// duplicate-free `touched` is guaranteed.
template <int Dim>
void bmv_bin_bin_bin_push_masked(const B2srT<Dim>& a,
                                 const PackedVecT<Dim>& x,
                                 const std::vector<vidx_t>& active,
                                 const PackedVecT<Dim>& mask, bool complement,
                                 PackedVecT<Dim>& y,
                                 std::vector<vidx_t>& touched);

// --- bin x bin -> full (counting; y[i] = |adj(i) ∩ x|) ---

template <int Dim>
void bmv_bin_bin_full(const B2srT<Dim>& a, const PackedVecT<Dim>& x,
                      std::vector<value_t>& y, Exec exec = {});

template <int Dim>
void bmv_bin_bin_full_masked(const B2srT<Dim>& a, const PackedVecT<Dim>& x,
                             const PackedVecT<Dim>& mask, bool complement,
                             std::vector<value_t>& y, Exec exec = {});

// --- bin x full -> full (general semiring Op; SSSP/PR/CC) ---

/// Fold one bit-row's contributions into `acc`.  Two paths:
///   * a *full* word (all Dim bits set — the common case inside dense
///     regions of well-packed matrices) maps every x element
///     unconditionally and tree-reduces: branch-free, vectorizable, no
///     loop-carried dependency — the host analog of the GPU's lanes
///     processing a bit-row in lock-step;
///   * any other word walks its set bits with ctz.
/// Tail tiles must pass allow_dense = false (the full-word path reads
/// xp[0..Dim) unconditionally).
template <int Dim, typename Op>
inline void fold_bit_row(typename TileTraits<Dim>::word_t w,
                         const value_t* xp, bool allow_dense, value_t& acc) {
  if (w == 0) return;
  if (allow_dense && w == low_mask<typename TileTraits<Dim>::word_t>(Dim)) {
    value_t cand[Dim];
    for (int j = 0; j < Dim; ++j) cand[j] = Op::map(xp[j]);
    for (int s = Dim / 2; s > 0; s /= 2) {
      for (int j = 0; j < s; ++j) cand[j] = Op::reduce(cand[j], cand[j + s]);
    }
    acc = Op::reduce(acc, cand[0]);
  } else {
    for_each_set_bit(w, [&](int j) { acc = Op::reduce(acc, Op::map(xp[j])); });
  }
}

template <int Dim, typename Op>
void bmv_bin_full_full(const B2srT<Dim>& a, const std::vector<value_t>& x,
                       std::vector<value_t>& y, Exec exec = {}, Op = Op{}) {
  assert(static_cast<vidx_t>(x.size()) == a.ncols);
  y.assign(static_cast<std::size_t>(a.nrows), Op::identity);
  const B2srT<Dim>* ap = &a;
  const value_t* xp_base = x.data();
  value_t* yp = y.data();
  const vidx_t nrows = a.nrows;
  // The rightmost tile column may extend past ncols; it must take the
  // bit-walking path (its words' tail bits are zero, but the dense
  // path loads all Dim x elements unconditionally).
  const vidx_t full_cols = a.ncols / Dim;
  // Value captures only (see parallel.hpp on closure escape).
  parallel_for(exec.threads, vidx_t{0}, a.n_tile_rows(), [=](vidx_t tr) {
    const auto lo = ap->tile_rowptr[static_cast<std::size_t>(tr)];
    const auto hi = ap->tile_rowptr[static_cast<std::size_t>(tr) + 1];
    if (lo == hi) return;
    value_t acc[Dim];
    for (int r = 0; r < Dim; ++r) acc[r] = Op::identity;
    for (vidx_t t = lo; t < hi; ++t) {
      const vidx_t tc = ap->tile_colind[static_cast<std::size_t>(t)];
      const value_t* xp = xp_base + static_cast<std::size_t>(tc) * Dim;
      const bool allow_dense = tc < full_cols;
      const auto words = ap->tile(t);
      for (int r = 0; r < Dim; ++r) {
        fold_bit_row<Dim, Op>(words[static_cast<std::size_t>(r)], xp,
                              allow_dense, acc[r]);
      }
    }
    const vidx_t r0 = tr * Dim;
    const vidx_t rend = std::min<vidx_t>(nrows, r0 + Dim);
    for (vidx_t r = r0; r < rend; ++r) {
      yp[static_cast<std::size_t>(r)] = acc[r - r0];
    }
  });
}

/// Masked semiring BMV: positions whose mask test fails keep their
/// previous y value (y must be pre-sized to nrows by the caller).
template <int Dim, typename Op>
void bmv_bin_full_full_masked(const B2srT<Dim>& a,
                              const std::vector<value_t>& x,
                              const PackedVecT<Dim>& mask, bool complement,
                              std::vector<value_t>& y, Exec exec = {},
                              Op = Op{}) {
  assert(static_cast<vidx_t>(x.size()) == a.ncols);
  assert(static_cast<vidx_t>(y.size()) == a.nrows);
  assert(mask.n == a.nrows);
  parallel_for(exec.threads, vidx_t{0}, a.n_tile_rows(), [&](vidx_t tr) {
    const auto lo = a.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto hi = a.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    if (lo == hi) return;
    value_t acc[Dim];
    for (int r = 0; r < Dim; ++r) acc[r] = Op::identity;
    const vidx_t full_cols = a.ncols / Dim;
    for (vidx_t t = lo; t < hi; ++t) {
      const vidx_t tc = a.tile_colind[static_cast<std::size_t>(t)];
      const value_t* xp = x.data() + static_cast<std::size_t>(tc) * Dim;
      const bool allow_dense = tc < full_cols;
      const auto words = a.tile(t);
      for (int r = 0; r < Dim; ++r) {
        fold_bit_row<Dim, Op>(words[static_cast<std::size_t>(r)], xp,
                              allow_dense, acc[r]);
      }
    }
    using word_t = typename TileTraits<Dim>::word_t;
    word_t mword = mask.words[static_cast<std::size_t>(tr)];
    if (complement) mword = static_cast<word_t>(~mword);
    const vidx_t r0 = tr * Dim;
    const vidx_t rend = std::min<vidx_t>(a.nrows, r0 + Dim);
    for (vidx_t r = r0; r < rend; ++r) {
      if (get_bit(mword, static_cast<int>(r - r0)) != 0) {
        y[static_cast<std::size_t>(r)] = acc[r - r0];
      }
    }
  });
}

// Declarations of the non-template-parameterized kernels are explicit
// per dim; definitions live in bmv.cpp with explicit instantiation.

}  // namespace bitgb
