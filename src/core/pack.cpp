#include "core/pack.hpp"

#include "platform/parallel.hpp"
#include "platform/simd.hpp"

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace bitgb {

namespace {

// ---------------------------------------------------------------------
// Tile-column discovery.  CSR's sorted-column invariant means the
// nonzeros of one row that fall in one tile are consecutive, so a
// single linear pass per row folds them into "runs" — (tile column,
// packed word) pairs, one per (row, tile), already sorted by tile
// column.  The per-tile-row union is then a k-way cursor merge over
// the <= Dim run streams: no per-nonzero sort+unique (the old walk),
// no binary search, and the fill pass just stores each run's word.
// The counting pass (the csr2bsrNnz analog, shared with
// count_nonempty_tiles) and the fill pass drive the same merge through
// a policy, so the two can never drift.
//
// Policy contract, called by merge_tile_row_runs:
//   * policy.tile(tc)      — once per distinct tile column, ascending;
//   * policy.row_word(j, w) — once per member row j of that tile, with
//                             the run's packed word.
// ---------------------------------------------------------------------

/// Per-row runs, stored at the row's CSR offset (a row has at most
/// row-nnz runs, so rowptr[] bounds the slices).  Words are widened to
/// uint32 so one buffer serves every tile dim.
struct RowRuns {
  std::vector<vidx_t> tc;
  std::vector<std::uint32_t> word;
  std::vector<vidx_t> count;
};

template <int Dim>
RowRuns build_row_runs(const Csr& a, bool use_simd, bool with_words,
                       int threads) {
  using word_t = typename TileTraits<Dim>::word_t;
  RowRuns runs;
  runs.tc.resize(a.colind.size());
  // Counting callers (count_nonempty_tiles) only need the run index;
  // skipping the word buffer and the bit scatter keeps the pure count
  // at one transient array and no packing work.
  if (with_words) runs.word.resize(a.colind.size());
  runs.count.assign(static_cast<std::size_t>(a.nrows), 0);
  const vidx_t* cols = a.colind.data();
  const vidx_t* rowptr = a.rowptr.data();
  vidx_t* run_tc = runs.tc.data();
  std::uint32_t* run_word = runs.word.data();
  vidx_t* run_count = runs.count.data();
  parallel_for_static(threads, vidx_t{0}, a.nrows, [=](vidx_t r) {
    const auto lo = static_cast<std::size_t>(
        rowptr[static_cast<std::size_t>(r)]);
    const auto hi = static_cast<std::size_t>(
        rowptr[static_cast<std::size_t>(r) + 1]);
    std::size_t n = 0;
    std::size_t i = lo;
    while (i < hi) {
      const vidx_t tc = cols[i] / Dim;
      const vidx_t base = tc * Dim;
      if (!with_words) {
        const vidx_t limit = base + Dim;
        while (i < hi && cols[i] < limit) ++i;
      } else if (use_simd) {
        word_t w = 0;
        i = simd::pack_scatter_run<Dim>(cols, i, hi, base, w);
        run_word[lo + n] = w;
      } else {
        const vidx_t limit = base + Dim;
        word_t w = 0;
        while (i < hi && cols[i] < limit) {
          w = static_cast<word_t>(w | (word_t{1} << (cols[i] - base)));
          ++i;
        }
        run_word[lo + n] = w;
      }
      run_tc[lo + n] = tc;
      ++n;
    }
    run_count[static_cast<std::size_t>(r)] = static_cast<vidx_t>(n);
  });
  return runs;
}

template <int Dim, typename Policy>
void merge_tile_row_runs(const Csr& a, const RowRuns& runs, vidx_t tr,
                         Policy& policy) {
  constexpr vidx_t kDone = std::numeric_limits<vidx_t>::max();
  const vidx_t r_lo = tr * Dim;
  const vidx_t r_hi = std::min<vidx_t>(a.nrows, r_lo + Dim);
  const int k = static_cast<int>(r_hi - r_lo);
  // A word-free run index (counting callers) feeds the policy zeros.
  const std::uint32_t* words = runs.word.empty() ? nullptr : runs.word.data();
  vidx_t rc[Dim];    // run cursor per row
  vidx_t re[Dim];    // run end per row
  vidx_t tcur[Dim];  // current tile column per row (kDone = exhausted)
  for (int j = 0; j < k; ++j) {
    rc[j] = a.rowptr[static_cast<std::size_t>(r_lo + j)];
    re[j] = rc[j] + runs.count[static_cast<std::size_t>(r_lo + j)];
    tcur[j] = rc[j] < re[j] ? runs.tc[static_cast<std::size_t>(rc[j])] : kDone;
  }
  for (;;) {
    vidx_t tc = kDone;
    for (int j = 0; j < k; ++j) {
      if (tcur[j] < tc) tc = tcur[j];
    }
    if (tc == kDone) return;
    policy.tile(tc);
    for (int j = 0; j < k; ++j) {
      if (tcur[j] != tc) continue;
      policy.row_word(j, words ? words[static_cast<std::size_t>(rc[j])] : 0);
      ++rc[j];
      tcur[j] =
          rc[j] < re[j] ? runs.tc[static_cast<std::size_t>(rc[j])] : kDone;
    }
  }
}

/// Counting policy: distinct tile columns only.
struct CountTilesPolicy {
  vidx_t count = 0;
  void tile(vidx_t) { ++count; }
  void row_word(int, std::uint32_t) {}
};

/// Fill policy: write the tile column and store each member row's run
/// word — the fused colind + bit-packing pass.
template <int Dim>
struct FillTilesPolicy {
  using word_t = typename TileTraits<Dim>::word_t;
  vidx_t* out_colind;  ///< this tile-row's tile_colind slice
  word_t* out_words;   ///< this tile-row's bits slice
  std::ptrdiff_t slot = -1;

  void tile(vidx_t tc) { out_colind[++slot] = tc; }
  void row_word(int j, std::uint32_t w) {
    out_words[static_cast<std::size_t>(slot) * Dim +
              static_cast<std::size_t>(j)] = static_cast<word_t>(w);
  }
};

// --- Pre-rewrite reference path (double sort+unique walk), kept as the
// differential oracle for test_pack_pipeline and the conversion
// ablation bench. ---

template <int Dim>
void collect_tile_cols_reference(const Csr& a, vidx_t tr,
                                 std::vector<vidx_t>& out) {
  out.clear();
  const vidx_t r_lo = tr * Dim;
  const vidx_t r_hi = std::min<vidx_t>(a.nrows, r_lo + Dim);
  for (vidx_t r = r_lo; r < r_hi; ++r) {
    for (const vidx_t c : a.row_cols(r)) {
      out.push_back(c / Dim);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace

vidx_t count_nonempty_tiles(const Csr& a, int dim, Exec exec) {
  return dispatch_tile_dim(dim, [&]<int Dim>() {
    const RowRuns runs = build_row_runs<Dim>(a, /*use_simd=*/false,
                                             /*with_words=*/false,
                                             exec.threads);
    const vidx_t ntr = (a.nrows + Dim - 1) / Dim;
    std::vector<vidx_t> per_row(static_cast<std::size_t>(ntr), 0);
    parallel_for_static(exec.threads, vidx_t{0}, ntr, [&](vidx_t tr) {
      CountTilesPolicy count;
      merge_tile_row_runs<Dim>(a, runs, tr, count);
      per_row[static_cast<std::size_t>(tr)] = count.count;
    });
    vidx_t total = 0;
    for (const vidx_t c : per_row) total += c;
    return total;
  });
}

template <int Dim>
B2srT<Dim> pack_from_csr(const Csr& a, Exec exec) {
  using word_t = typename TileTraits<Dim>::word_t;
  B2srT<Dim> b;
  b.nrows = a.nrows;
  b.ncols = a.ncols;
  const vidx_t ntr = b.n_tile_rows();
  const bool use_simd =
      resolve_kernel_variant(exec.variant, HotKernel::kPackScatter, Dim) ==
      KernelVariant::kSimd;

  // Pass 0: fold every row's nonzeros into (tile column, word) runs —
  // the only O(nnz) work in the pipeline; the bit scatter runs through
  // the SIMD engine here.
  const RowRuns runs =
      build_row_runs<Dim>(a, use_simd, /*with_words=*/true, exec.threads);

  // Pass 1: distinct tile columns per tile-row (csr2bsrNnz analog),
  // then tile_rowptr by parallel prefix sum.
  std::vector<vidx_t> counts(static_cast<std::size_t>(ntr), 0);
  parallel_for_static(exec.threads, vidx_t{0}, ntr, [&](vidx_t tr) {
    CountTilesPolicy count;
    merge_tile_row_runs<Dim>(a, runs, tr, count);
    counts[static_cast<std::size_t>(tr)] = count.count;
  });
  b.tile_rowptr.resize(static_cast<std::size_t>(ntr) + 1);
  parallel_exclusive_scan(exec.threads, counts.data(), counts.size(),
                          b.tile_rowptr.data());
  const vidx_t ntiles = b.tile_rowptr.back();
  b.tile_colind.resize(static_cast<std::size_t>(ntiles));
  b.bits.assign(static_cast<std::size_t>(ntiles) * Dim, word_t{0});

  // Pass 2: the same merge per tile-row writes the tile columns and
  // stores each run's word (no binary search — a (row, tile) pair is
  // exactly one run).
  parallel_for_static(exec.threads, vidx_t{0}, ntr, [&](vidx_t tr) {
    const vidx_t base = b.tile_rowptr[static_cast<std::size_t>(tr)];
    FillTilesPolicy<Dim> fill{
        b.tile_colind.data() + static_cast<std::size_t>(base),
        b.bits.data() + static_cast<std::size_t>(base) * Dim, -1};
    merge_tile_row_runs<Dim>(a, runs, tr, fill);
  });
  return b;
}

template <int Dim>
B2srT<Dim> pack_from_csr_reference(const Csr& a) {
  using word_t = typename TileTraits<Dim>::word_t;
  B2srT<Dim> b;
  b.nrows = a.nrows;
  b.ncols = a.ncols;
  const vidx_t ntr = b.n_tile_rows();
  b.tile_rowptr.assign(static_cast<std::size_t>(ntr) + 1, 0);

  // Pass 1: non-empty tile columns per tile-row via sort+unique.
  std::vector<std::vector<vidx_t>> row_tiles(static_cast<std::size_t>(ntr));
  parallel_for(vidx_t{0}, ntr, [&](vidx_t tr) {
    collect_tile_cols_reference<Dim>(a, tr,
                                     row_tiles[static_cast<std::size_t>(tr)]);
  });
  for (vidx_t tr = 0; tr < ntr; ++tr) {
    b.tile_rowptr[static_cast<std::size_t>(tr) + 1] =
        b.tile_rowptr[static_cast<std::size_t>(tr)] +
        static_cast<vidx_t>(row_tiles[static_cast<std::size_t>(tr)].size());
  }
  const vidx_t ntiles = b.tile_rowptr.back();
  b.tile_colind.resize(static_cast<std::size_t>(ntiles));
  b.bits.assign(static_cast<std::size_t>(ntiles) * Dim, word_t{0});

  // Pass 2: binary-search scatter of each nonzero into its tile word.
  parallel_for(vidx_t{0}, ntr, [&](vidx_t tr) {
    const auto& cols = row_tiles[static_cast<std::size_t>(tr)];
    const vidx_t base = b.tile_rowptr[static_cast<std::size_t>(tr)];
    for (std::size_t i = 0; i < cols.size(); ++i) {
      b.tile_colind[static_cast<std::size_t>(base) + i] = cols[i];
    }
    const vidx_t r_lo = tr * Dim;
    const vidx_t r_hi = std::min<vidx_t>(a.nrows, r_lo + Dim);
    for (vidx_t r = r_lo; r < r_hi; ++r) {
      for (const vidx_t c : a.row_cols(r)) {
        const vidx_t tc = c / Dim;
        const auto it = std::lower_bound(cols.begin(), cols.end(), tc);
        const auto t = base + static_cast<vidx_t>(it - cols.begin());
        auto& w = b.bits[static_cast<std::size_t>(t) * Dim +
                         static_cast<std::size_t>(r - r_lo)];
        w = set_bit(w, static_cast<int>(c % Dim));
      }
    }
  });
  return b;
}

B2srAny pack_any(const Csr& a, int dim, Exec exec) {
  return dispatch_tile_dim(
      dim, [&]<int Dim>() { return B2srAny(pack_from_csr<Dim>(a, exec)); });
}

template <int Dim>
Csr unpack_to_csr(const B2srT<Dim>& b) {
  Csr a;
  a.nrows = b.nrows;
  a.ncols = b.ncols;
  a.rowptr.assign(static_cast<std::size_t>(b.nrows) + 1, 0);
  for (vidx_t tr = 0; tr < b.n_tile_rows(); ++tr) {
    const auto lo = b.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto hi = b.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    const vidx_t r_lo = tr * Dim;
    const vidx_t r_hi = std::min<vidx_t>(b.nrows, r_lo + Dim);
    for (vidx_t r = r_lo; r < r_hi; ++r) {
      for (vidx_t t = lo; t < hi; ++t) {
        const vidx_t c_base = b.tile_colind[static_cast<std::size_t>(t)] * Dim;
        const auto w = b.tile(t)[static_cast<std::size_t>(r - r_lo)];
        for_each_set_bit(w, [&](int j) {
          a.colind.push_back(c_base + j);
        });
      }
      a.rowptr[static_cast<std::size_t>(r) + 1] =
          static_cast<vidx_t>(a.colind.size());
    }
    // Rows past r_hi in this tile-row do not exist; rowptr entries for
    // them are filled by the running total below.
  }
  // Fill any rows that fell outside complete tile rows (none normally;
  // defensive for nrows == 0 edge).
  for (std::size_t i = 1; i < a.rowptr.size(); ++i) {
    a.rowptr[i] = std::max(a.rowptr[i], a.rowptr[i - 1]);
  }
  return a;
}

Csr unpack_any(const B2srAny& b) {
  return b.visit([](const auto& m) { return unpack_to_csr(m); });
}

template <int Dim>
void transpose_tile(const typename TileTraits<Dim>::word_t* in,
                    typename TileTraits<Dim>::word_t* out) {
  using word_t = typename TileTraits<Dim>::word_t;
  for (int c = 0; c < Dim; ++c) {
    word_t w = 0;
    for (int r = 0; r < Dim; ++r) {
      w = static_cast<word_t>(w | (static_cast<word_t>(get_bit(in[r], c)) << r));
    }
    out[c] = w;
  }
}

template <int Dim>
B2srT<Dim> transpose(const B2srT<Dim>& a, Exec exec) {
  B2srT<Dim> t;
  t.nrows = a.ncols;
  t.ncols = a.nrows;
  const vidx_t ntr_t = t.n_tile_rows();  // == a.n_tile_cols()
  const vidx_t ntiles = a.nnz_tiles();

  // CSR -> CSC on the tile index (the upper-level transpose): count,
  // prefix-scan, then a serial index-only pass assigning each source
  // tile its destination slot.  The per-tile bit transposes — the heavy
  // part — run in parallel against the precomputed slots.
  std::vector<vidx_t> counts(static_cast<std::size_t>(ntr_t), 0);
  for (const vidx_t tc : a.tile_colind) {
    ++counts[static_cast<std::size_t>(tc)];
  }
  t.tile_rowptr.resize(static_cast<std::size_t>(ntr_t) + 1);
  parallel_exclusive_scan(exec.threads, counts.data(), counts.size(),
                          t.tile_rowptr.data());
  t.tile_colind.resize(static_cast<std::size_t>(ntiles));
  t.bits.assign(a.bits.size(), typename TileTraits<Dim>::word_t{0});

  std::vector<vidx_t> dst(static_cast<std::size_t>(ntiles));
  {
    std::vector<vidx_t> cursor(t.tile_rowptr.begin(), t.tile_rowptr.end() - 1);
    for (vidx_t k = 0; k < ntiles; ++k) {
      const vidx_t tc = a.tile_colind[static_cast<std::size_t>(k)];
      dst[static_cast<std::size_t>(k)] = cursor[static_cast<std::size_t>(tc)]++;
    }
  }
  parallel_for(exec.threads, vidx_t{0}, a.n_tile_rows(), [&](vidx_t tr) {
    const auto lo = a.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto hi = a.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    for (vidx_t k = lo; k < hi; ++k) {
      const vidx_t d = dst[static_cast<std::size_t>(k)];
      t.tile_colind[static_cast<std::size_t>(d)] = tr;
      transpose_tile<Dim>(
          a.bits.data() + static_cast<std::size_t>(k) * Dim,
          t.bits.data() + static_cast<std::size_t>(d) * Dim);
    }
  });
  return t;
}

B2srAny transpose_any(const B2srAny& a, Exec exec) {
  return a.visit([&](const auto& m) { return B2srAny(transpose(m, exec)); });
}

NibbleB2sr4 pack_nibble4(const Csr& a) { return to_nibble4(pack_from_csr<4>(a)); }

NibbleB2sr4 to_nibble4(const B2sr4& a) {
  NibbleB2sr4 n;
  n.nrows = a.nrows;
  n.ncols = a.ncols;
  n.tile_rowptr = a.tile_rowptr;
  n.tile_colind = a.tile_colind;
  n.bytes.resize(static_cast<std::size_t>(a.nnz_tiles()) * 2);
  for (vidx_t t = 0; t < a.nnz_tiles(); ++t) {
    const auto words = a.tile(t);
    for (int half = 0; half < 2; ++half) {
      const auto lo = static_cast<std::uint8_t>(words[2 * half] & 0x0F);
      const auto hi =
          static_cast<std::uint8_t>((words[2 * half + 1] & 0x0F) << 4);
      n.bytes[static_cast<std::size_t>(t) * 2 + static_cast<std::size_t>(half)] =
          static_cast<std::uint8_t>(lo | hi);
    }
  }
  return n;
}

B2sr4 from_nibble4(const NibbleB2sr4& a) {
  B2sr4 b;
  b.nrows = a.nrows;
  b.ncols = a.ncols;
  b.tile_rowptr = a.tile_rowptr;
  b.tile_colind = a.tile_colind;
  b.bits.resize(static_cast<std::size_t>(a.nnz_tiles()) * 4);
  for (vidx_t t = 0; t < a.nnz_tiles(); ++t) {
    for (int r = 0; r < 4; ++r) {
      b.bits[static_cast<std::size_t>(t) * 4 + static_cast<std::size_t>(r)] =
          a.row(t, r);
    }
  }
  return b;
}

// Explicit instantiations for the four paper tile sizes.
template B2srT<4> pack_from_csr<4>(const Csr&, Exec);
template B2srT<8> pack_from_csr<8>(const Csr&, Exec);
template B2srT<16> pack_from_csr<16>(const Csr&, Exec);
template B2srT<32> pack_from_csr<32>(const Csr&, Exec);
template B2srT<4> pack_from_csr_reference<4>(const Csr&);
template B2srT<8> pack_from_csr_reference<8>(const Csr&);
template B2srT<16> pack_from_csr_reference<16>(const Csr&);
template B2srT<32> pack_from_csr_reference<32>(const Csr&);
template Csr unpack_to_csr<4>(const B2srT<4>&);
template Csr unpack_to_csr<8>(const B2srT<8>&);
template Csr unpack_to_csr<16>(const B2srT<16>&);
template Csr unpack_to_csr<32>(const B2srT<32>&);
template B2srT<4> transpose<4>(const B2srT<4>&, Exec);
template B2srT<8> transpose<8>(const B2srT<8>&, Exec);
template B2srT<16> transpose<16>(const B2srT<16>&, Exec);
template B2srT<32> transpose<32>(const B2srT<32>&, Exec);
template void transpose_tile<4>(const TileTraits<4>::word_t*,
                                TileTraits<4>::word_t*);
template void transpose_tile<8>(const TileTraits<8>::word_t*,
                                TileTraits<8>::word_t*);
template void transpose_tile<16>(const TileTraits<16>::word_t*,
                                 TileTraits<16>::word_t*);
template void transpose_tile<32>(const TileTraits<32>::word_t*,
                                 TileTraits<32>::word_t*);

}  // namespace bitgb
