#include "core/pack.hpp"

#include "platform/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace bitgb {

namespace {

// Per tile-row, the set of non-empty tile columns and, for packing, the
// scatter of nonzeros into tile words.  Both passes walk the CSR rows of
// one tile-row; tile-rows are independent, so both parallelize over
// tile-rows exactly as the paper parallelizes "each tile-row's encoding
// procedure" (§III-B).
template <int Dim>
void collect_tile_cols(const Csr& a, vidx_t tr, std::vector<vidx_t>& out) {
  out.clear();
  const vidx_t r_lo = tr * Dim;
  const vidx_t r_hi = std::min<vidx_t>(a.nrows, r_lo + Dim);
  for (vidx_t r = r_lo; r < r_hi; ++r) {
    for (const vidx_t c : a.row_cols(r)) {
      out.push_back(c / Dim);
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
}

}  // namespace

vidx_t count_nonempty_tiles(const Csr& a, int dim) {
  return dispatch_tile_dim(dim, [&]<int Dim>() {
    const vidx_t ntr = (a.nrows + Dim - 1) / Dim;
    std::vector<vidx_t> per_row(static_cast<std::size_t>(ntr), 0);
    parallel_for(vidx_t{0}, ntr, [&](vidx_t tr) {
      thread_local std::vector<vidx_t> cols;
      collect_tile_cols<Dim>(a, tr, cols);
      per_row[static_cast<std::size_t>(tr)] = static_cast<vidx_t>(cols.size());
    });
    vidx_t total = 0;
    for (const vidx_t c : per_row) total += c;
    return total;
  });
}

template <int Dim>
B2srT<Dim> pack_from_csr(const Csr& a) {
  using word_t = typename TileTraits<Dim>::word_t;
  B2srT<Dim> b;
  b.nrows = a.nrows;
  b.ncols = a.ncols;
  const vidx_t ntr = b.n_tile_rows();
  b.tile_rowptr.assign(static_cast<std::size_t>(ntr) + 1, 0);

  // Pass 1: non-empty tile columns per tile-row (csr2bsrNnz analog).
  std::vector<std::vector<vidx_t>> row_tiles(static_cast<std::size_t>(ntr));
  parallel_for(vidx_t{0}, ntr, [&](vidx_t tr) {
    collect_tile_cols<Dim>(a, tr, row_tiles[static_cast<std::size_t>(tr)]);
  });
  for (vidx_t tr = 0; tr < ntr; ++tr) {
    b.tile_rowptr[static_cast<std::size_t>(tr) + 1] =
        b.tile_rowptr[static_cast<std::size_t>(tr)] +
        static_cast<vidx_t>(row_tiles[static_cast<std::size_t>(tr)].size());
  }
  const vidx_t ntiles = b.tile_rowptr.back();
  b.tile_colind.resize(static_cast<std::size_t>(ntiles));
  b.bits.assign(static_cast<std::size_t>(ntiles) * Dim, word_t{0});

  // Pass 2: scatter the nonzeros into bit-rows (the bit-packing kernel).
  parallel_for(vidx_t{0}, ntr, [&](vidx_t tr) {
    const auto& cols = row_tiles[static_cast<std::size_t>(tr)];
    const vidx_t base = b.tile_rowptr[static_cast<std::size_t>(tr)];
    for (std::size_t i = 0; i < cols.size(); ++i) {
      b.tile_colind[static_cast<std::size_t>(base) + i] = cols[i];
    }
    const vidx_t r_lo = tr * Dim;
    const vidx_t r_hi = std::min<vidx_t>(a.nrows, r_lo + Dim);
    for (vidx_t r = r_lo; r < r_hi; ++r) {
      for (const vidx_t c : a.row_cols(r)) {
        const vidx_t tc = c / Dim;
        // Binary search the tile within this tile-row (columns sorted).
        const auto it = std::lower_bound(cols.begin(), cols.end(), tc);
        const auto t = base + static_cast<vidx_t>(it - cols.begin());
        auto& w = b.bits[static_cast<std::size_t>(t) * Dim +
                         static_cast<std::size_t>(r - r_lo)];
        w = set_bit(w, static_cast<int>(c % Dim));
      }
    }
  });
  return b;
}

B2srAny pack_any(const Csr& a, int dim) {
  return dispatch_tile_dim(
      dim, [&]<int Dim>() { return B2srAny(pack_from_csr<Dim>(a)); });
}

template <int Dim>
Csr unpack_to_csr(const B2srT<Dim>& b) {
  Csr a;
  a.nrows = b.nrows;
  a.ncols = b.ncols;
  a.rowptr.assign(static_cast<std::size_t>(b.nrows) + 1, 0);
  for (vidx_t tr = 0; tr < b.n_tile_rows(); ++tr) {
    const auto lo = b.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto hi = b.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    const vidx_t r_lo = tr * Dim;
    const vidx_t r_hi = std::min<vidx_t>(b.nrows, r_lo + Dim);
    for (vidx_t r = r_lo; r < r_hi; ++r) {
      for (vidx_t t = lo; t < hi; ++t) {
        const vidx_t c_base = b.tile_colind[static_cast<std::size_t>(t)] * Dim;
        const auto w = b.tile(t)[static_cast<std::size_t>(r - r_lo)];
        for_each_set_bit(w, [&](int j) {
          a.colind.push_back(c_base + j);
        });
      }
      a.rowptr[static_cast<std::size_t>(r) + 1] =
          static_cast<vidx_t>(a.colind.size());
    }
    // Rows past r_hi in this tile-row do not exist; rowptr entries for
    // them are filled by the running total below.
  }
  // Fill any rows that fell outside complete tile rows (none normally;
  // defensive for nrows == 0 edge).
  for (std::size_t i = 1; i < a.rowptr.size(); ++i) {
    a.rowptr[i] = std::max(a.rowptr[i], a.rowptr[i - 1]);
  }
  return a;
}

Csr unpack_any(const B2srAny& b) {
  return b.visit([](const auto& m) { return unpack_to_csr(m); });
}

template <int Dim>
void transpose_tile(const typename TileTraits<Dim>::word_t* in,
                    typename TileTraits<Dim>::word_t* out) {
  using word_t = typename TileTraits<Dim>::word_t;
  for (int c = 0; c < Dim; ++c) {
    word_t w = 0;
    for (int r = 0; r < Dim; ++r) {
      w = static_cast<word_t>(w | (static_cast<word_t>(get_bit(in[r], c)) << r));
    }
    out[c] = w;
  }
}

template <int Dim>
B2srT<Dim> transpose(const B2srT<Dim>& a) {
  B2srT<Dim> t;
  t.nrows = a.ncols;
  t.ncols = a.nrows;
  const vidx_t ntr_t = t.n_tile_rows();  // == a.n_tile_cols()
  t.tile_rowptr.assign(static_cast<std::size_t>(ntr_t) + 1, 0);

  // CSR -> CSC on the tile index (the upper-level transpose).
  for (const vidx_t tc : a.tile_colind) {
    ++t.tile_rowptr[static_cast<std::size_t>(tc) + 1];
  }
  for (std::size_t i = 1; i < t.tile_rowptr.size(); ++i) {
    t.tile_rowptr[i] += t.tile_rowptr[i - 1];
  }
  t.tile_colind.resize(a.tile_colind.size());
  t.bits.assign(a.bits.size(), typename TileTraits<Dim>::word_t{0});

  std::vector<vidx_t> cursor(t.tile_rowptr.begin(), t.tile_rowptr.end() - 1);
  for (vidx_t tr = 0; tr < a.n_tile_rows(); ++tr) {
    const auto lo = a.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto hi = a.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    for (vidx_t k = lo; k < hi; ++k) {
      const vidx_t tc = a.tile_colind[static_cast<std::size_t>(k)];
      const vidx_t dst = cursor[static_cast<std::size_t>(tc)]++;
      t.tile_colind[static_cast<std::size_t>(dst)] = tr;
      transpose_tile<Dim>(
          a.bits.data() + static_cast<std::size_t>(k) * Dim,
          t.bits.data() + static_cast<std::size_t>(dst) * Dim);
    }
  }
  return t;
}

B2srAny transpose_any(const B2srAny& a) {
  return a.visit([](const auto& m) { return B2srAny(transpose(m)); });
}

NibbleB2sr4 pack_nibble4(const Csr& a) { return to_nibble4(pack_from_csr<4>(a)); }

NibbleB2sr4 to_nibble4(const B2sr4& a) {
  NibbleB2sr4 n;
  n.nrows = a.nrows;
  n.ncols = a.ncols;
  n.tile_rowptr = a.tile_rowptr;
  n.tile_colind = a.tile_colind;
  n.bytes.resize(static_cast<std::size_t>(a.nnz_tiles()) * 2);
  for (vidx_t t = 0; t < a.nnz_tiles(); ++t) {
    const auto words = a.tile(t);
    for (int half = 0; half < 2; ++half) {
      const auto lo = static_cast<std::uint8_t>(words[2 * half] & 0x0F);
      const auto hi =
          static_cast<std::uint8_t>((words[2 * half + 1] & 0x0F) << 4);
      n.bytes[static_cast<std::size_t>(t) * 2 + static_cast<std::size_t>(half)] =
          static_cast<std::uint8_t>(lo | hi);
    }
  }
  return n;
}

B2sr4 from_nibble4(const NibbleB2sr4& a) {
  B2sr4 b;
  b.nrows = a.nrows;
  b.ncols = a.ncols;
  b.tile_rowptr = a.tile_rowptr;
  b.tile_colind = a.tile_colind;
  b.bits.resize(static_cast<std::size_t>(a.nnz_tiles()) * 4);
  for (vidx_t t = 0; t < a.nnz_tiles(); ++t) {
    for (int r = 0; r < 4; ++r) {
      b.bits[static_cast<std::size_t>(t) * 4 + static_cast<std::size_t>(r)] =
          a.row(t, r);
    }
  }
  return b;
}

// Explicit instantiations for the four paper tile sizes.
template B2srT<4> pack_from_csr<4>(const Csr&);
template B2srT<8> pack_from_csr<8>(const Csr&);
template B2srT<16> pack_from_csr<16>(const Csr&);
template B2srT<32> pack_from_csr<32>(const Csr&);
template Csr unpack_to_csr<4>(const B2srT<4>&);
template Csr unpack_to_csr<8>(const B2srT<8>&);
template Csr unpack_to_csr<16>(const B2srT<16>&);
template Csr unpack_to_csr<32>(const B2srT<32>&);
template B2srT<4> transpose<4>(const B2srT<4>&);
template B2srT<8> transpose<8>(const B2srT<8>&);
template B2srT<16> transpose<16>(const B2srT<16>&);
template B2srT<32> transpose<32>(const B2srT<32>&);
template void transpose_tile<4>(const TileTraits<4>::word_t*,
                                TileTraits<4>::word_t*);
template void transpose_tile<8>(const TileTraits<8>::word_t*,
                                TileTraits<8>::word_t*);
template void transpose_tile<16>(const TileTraits<16>::word_t*,
                                 TileTraits<16>::word_t*);
template void transpose_tile<32>(const TileTraits<32>::word_t*,
                                 TileTraits<32>::word_t*);

}  // namespace bitgb
