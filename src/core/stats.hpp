// Storage statistics of the B2SR format — the quantities behind
// Table I, Figure 3 (tile trends) and Figure 5 (compression results).
#pragma once

#include "core/b2sr.hpp"
#include "sparse/csr.hpp"

#include <array>
#include <cstddef>

namespace bitgb {

/// Compression ratio as the paper defines it (§VI-B):
///   B2SR size / float-CSR size, in percent < 100 means compressed.
[[nodiscard]] double compression_ratio(std::size_t b2sr_bytes,
                                       std::size_t csr_bytes);

/// Fraction (%) of tiles of the dim x dim grid that are non-empty —
/// the y-axis of Figure 3a.
[[nodiscard]] double nonempty_tile_ratio_pct(const Csr& a, int dim);

/// Average nonzero occupancy (%) inside the *non-empty* tiles —
/// the y-axis of Figure 3b.
[[nodiscard]] double nonzero_occupancy_pct(const Csr& a, int dim);

/// Per-dim storage summary of a matrix.
struct FormatFootprint {
  int dim = 0;
  std::size_t b2sr_bytes = 0;
  vidx_t nonempty_tiles = 0;
  double compression_pct = 0.0;  ///< vs float CSR, <100 == compressed
};

/// Footprints for all four B2SR variants (packs each; exact, not
/// sampled — the sampled estimate is core/sampling.hpp).
[[nodiscard]] std::array<FormatFootprint, kNumTileDims> all_footprints(
    const Csr& a);

/// The dim with the smallest B2SR byte size — the "optimal" series of
/// Figure 5b.
[[nodiscard]] int optimal_tile_dim(const Csr& a);

/// Per-tile space saving factor of Table I: bytes of a dense dim x dim
/// float tile over bytes of its bit packing.
[[nodiscard]] double per_tile_saving(int dim);

/// Word traffic model for the §VI-C locality narrative: bytes of matrix
/// data a full SpMV must read in each format (CSR: rowptr+colind+val
/// touched once; B2SR: index arrays + bit tiles).  The ratio reproduces
/// the "global memory load transactions reduced by 4x" style numbers.
struct TrafficModel {
  std::size_t csr_bytes = 0;
  std::size_t b2sr_bytes = 0;
  [[nodiscard]] double reduction() const {
    return b2sr_bytes == 0 ? 0.0
                           : static_cast<double>(csr_bytes) /
                                 static_cast<double>(b2sr_bytes);
  }
};

[[nodiscard]] TrafficModel spmv_traffic(const Csr& a, int dim);

}  // namespace bitgb
