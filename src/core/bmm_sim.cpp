#include "core/bmm_sim.hpp"

#include "core/pack.hpp"
#include "platform/warp_sim.hpp"

#include <cassert>
#include <vector>

namespace bitgb::sim {

std::int64_t bmm_bin_bin_sum_sim(const B2sr32& a, const B2sr32& b) {
  assert(a.ncols == b.nrows);
  std::int64_t C = 0;  // the single full-precision destination

  std::uint32_t bcol[32];  // column-major view of one B tile

  for (vidx_t bx = 0; bx < a.n_tile_rows(); ++bx) {
    const vidx_t A_row_start = a.tile_rowptr[static_cast<std::size_t>(bx)];
    const vidx_t A_row_end = a.tile_rowptr[static_cast<std::size_t>(bx) + 1];
    if (A_row_start == A_row_end) continue;

    Warp warp;
    // register int Cm[32] per lane.
    std::int64_t Cm[kWarpSize][kWarpSize] = {};

    const std::uint32_t* Asub =
        a.bits.data() + static_cast<std::size_t>(A_row_start) * 32;

    for (vidx_t i = A_row_start; i < A_row_end; ++i) {
      const vidx_t A_col = a.tile_colind[static_cast<std::size_t>(i)];
      const vidx_t B_row_start =
          b.tile_rowptr[static_cast<std::size_t>(A_col)];
      const vidx_t B_row_end =
          b.tile_rowptr[static_cast<std::size_t>(A_col) + 1];

      for (vidx_t j = B_row_start; j < B_row_end; ++j) {
        // The artifact packed B column-major; reconstruct those words.
        transpose_tile<32>(
            b.bits.data() + static_cast<std::size_t>(j) * 32, bcol);

        // r1 = Bsub[(j-B_row_start)*32 + laneid] (a bit-column per lane),
        // then r2 = __shfl_sync(0xFFFFFFFF, r1, k) broadcasts column k.
        const auto r1 = warp.gather([&](int laneid) {
          return bcol[static_cast<std::size_t>(laneid)];
        });

        warp.for_each_lane([&](int laneid) {
          const std::uint32_t r0 =
              Asub[static_cast<std::size_t>(i - A_row_start) * 32 +
                   static_cast<std::size_t>(laneid)];
          for (int k = 0; k < kWarpSize; ++k) {  // #pragma unroll
            const std::uint32_t r2 = r1[static_cast<std::size_t>(k)];
            Cm[laneid][k] += popcount<std::uint32_t>(r0 & r2);
          }
        });
      }
    }

    // Registers summed, then atomicAdd to the global destination.
    std::int64_t sum = 0;
    warp.for_each_lane([&](int laneid) {
      for (int k = 0; k < kWarpSize; ++k) sum += Cm[laneid][k];
    });
    C += sum;
  }
  return C;
}

}  // namespace bitgb::sim
