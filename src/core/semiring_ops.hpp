// Semiring operator bundles for the full-precision BMV schemes.
//
// Paper Table IV maps semirings to algorithms:
//   Boolean {0,1}            -> BFS (bin-bin-bin)
//   Arithmetic (R, +, x)     -> PR, TC (bin-full-full / bin-bin-full)
//   Tropical min-plus        -> SSSP, CC (bin-full-full)
//   Tropical max-times       -> MIS, GC (bin-full-full)
//
// Because the matrix is binary, the "multiply" of the semiring collapses
// to a map over the vector element at each adjacent column: an adjacency
// 1 contributes map(x[j]); an adjacency 0 contributes the identity (the
// paper's SSSP rule "the 0s in the adjacency matrix are identified as
// infinite", §V).  Each bundle therefore provides:
//   identity  — the reduction identity (annihilates absent edges),
//   map(x)    — contribution of an adjacent column holding x,
//   reduce(a,b) — the additive reduction.
#pragma once

#include "sparse/types.hpp"

#include <algorithm>
#include <limits>

namespace bitgb {

/// Arithmetic (+, x) with unit edge weights: y[i] = sum_{j in adj(i)} x[j].
/// PR runs this on a pre-scaled vector (x[j]/outdeg[j] folded in before
/// the mxv — algebraically the paper's v_out_degree divide, §V).
///
/// `combine(a, x)` is the general semiring multiply with an explicit
/// stored value `a`: the float-CSR reference backend (the GraphBLAST
/// substitute) uses it, because GraphBLAST's arithmetic semirings load
/// one float per nonzero — the very traffic B2SR eliminates.  `map(x)`
/// is the binary-matrix specialization (a == 1 implicitly).
struct PlusTimesOp {
  static constexpr value_t identity = 0.0f;
  static value_t map(value_t x) { return x; }
  static value_t combine(value_t a, value_t x) { return a * x; }
  static value_t reduce(value_t a, value_t b) { return a + b; }
};

/// Tropical min-plus with unit edge weights: y[i] = min_{j} (x[j] + 1).
/// SSSP relaxation over a homogeneous (unit-weight) graph.
struct MinPlusOp {
  static constexpr value_t identity = std::numeric_limits<value_t>::infinity();
  static value_t map(value_t x) { return x + 1.0f; }
  static value_t combine(value_t a, value_t x) { return x + a; }
  static value_t reduce(value_t a, value_t b) { return std::min(a, b); }
};

/// Tropical min with identity map: y[i] = min_{j} x[j].
/// The FastSV connected-components hook (paper §V, CC) — a select2nd
/// style multiply, so combine ignores the stored value.
struct MinIdentityOp {
  static constexpr value_t identity = std::numeric_limits<value_t>::infinity();
  static value_t map(value_t x) { return x; }
  static value_t combine(value_t, value_t x) { return x; }
  static value_t reduce(value_t a, value_t b) { return std::min(a, b); }
};

/// Tropical max-times with unit weights: y[i] = max_{j} x[j].
/// Used by MIS/graph-coloring style algorithms (paper Table IV).
struct MaxTimesOp {
  static constexpr value_t identity = -std::numeric_limits<value_t>::infinity();
  static value_t map(value_t x) { return x; }
  static value_t combine(value_t a, value_t x) { return a * x; }
  static value_t reduce(value_t a, value_t b) { return std::max(a, b); }
};

}  // namespace bitgb
