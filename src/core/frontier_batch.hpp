// FrontierBatch — up to 64 packed frontiers as the bit-columns of an
// n x B bit-matrix (the batched multi-source traversal operand).
//
// The paper's headline bit-level win generalizes from vectors to
// matrices: where a single BFS expands one frontier with a BMV sweep,
// a *batch* of frontiers packed side by side turns B sparse-matrix
// -vector sweeps into one bit-matrix-matrix (BMM) sweep over the same
// B2SR tiles (§IV Listing 2 is the sum-only instance; here the product
// matrix itself is the result).  Row v holds one machine word whose bit
// b answers "is vertex v in frontier b?", so expanding all B frontiers
// costs one 64-bit OR per adjacency bit — the traversal of the
// adjacency structure is amortized across the whole batch.
//
// The layout is row-major by vertex (one std::uint64_t per vertex)
// rather than tile-packed by Dim: the batch word is the *inner*
// dimension the kernels stream, so it is independent of the tile size
// of the adjacency operand and the same FrontierBatch works against
// B2SR-4 through B2SR-32 without repacking.
//
// Invariants (checked by validate()):
//   * 1 <= batch <= kMaxBatch and rows.size() == n;
//   * lane-tail bits (bit indices >= batch) are zero in every row —
//     the matrix analog of PackedVec's zero tail bits, which the
//     complemented-mask kernels rely on exactly as bmv does.
#pragma once

#include "core/b2sr.hpp"
#include "platform/exec.hpp"
#include "platform/intrinsics.hpp"
#include "platform/simd.hpp"
#include "sparse/types.hpp"

#include <cstdint>
#include <vector>

namespace bitgb {

struct FrontierBatch {
  using word_t = std::uint64_t;
  static constexpr int kMaxBatch = 64;  ///< frontiers per word

  vidx_t n = 0;               ///< vertices (rows)
  int batch = 0;              ///< logical frontier count (columns), <= 64
  std::vector<word_t> rows;   ///< n words; bit b of rows[v] = v in frontier b

  FrontierBatch() = default;
  FrontierBatch(vidx_t nverts, int nbatch) { resize(nverts, nbatch); }

  /// Resize and zero every bit (always reassigns, like PackedVecT).
  void resize(vidx_t nverts, int nbatch) {
    n = nverts;
    batch = nbatch;
    rows.assign(static_cast<std::size_t>(nverts), word_t{0});
  }

  void clear_bits() { rows.assign(rows.size(), word_t{0}); }

  /// Mask with one bit per *live* lane (low `batch` bits set).
  [[nodiscard]] word_t lane_mask() const { return low_mask<word_t>(batch); }

  [[nodiscard]] bool get(vidx_t v, int b) const {
    return get_bit(rows[static_cast<std::size_t>(v)], b) != 0;
  }
  void set(vidx_t v, int b) {
    auto& w = rows[static_cast<std::size_t>(v)];
    w = set_bit(w, b);
  }
  void reset(vidx_t v, int b) {
    auto& w = rows[static_cast<std::size_t>(v)];
    w = static_cast<word_t>(w & ~(word_t{1} << b));
  }

  /// Total set bits across the batch (sum of all frontier sizes).
  [[nodiscard]] eidx_t count() const {
    eidx_t c = 0;
    for (const word_t w : rows) c += popcount(w);
    return c;
  }

  /// Set bits of one frontier column.
  [[nodiscard]] eidx_t column_count(int b) const {
    eidx_t c = 0;
    for (const word_t w : rows) c += static_cast<eidx_t>(get_bit(w, b));
    return c;
  }

  [[nodiscard]] bool any() const {
    for (const word_t w : rows) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Extract frontier column b as a dense bool vector.
  [[nodiscard]] std::vector<bool> column(int b) const {
    std::vector<bool> out(static_cast<std::size_t>(n));
    for (vidx_t v = 0; v < n; ++v) out[static_cast<std::size_t>(v)] = get(v, b);
    return out;
  }

  /// Seed batch: frontier b holds exactly sources[b].  Throws
  /// std::invalid_argument on an empty/oversized batch or an
  /// out-of-range source (duplicates are allowed: independent columns).
  [[nodiscard]] static FrontierBatch from_sources(
      vidx_t nverts, const std::vector<vidx_t>& sources);

  /// In-place form of from_sources: same validation, but reuses this
  /// batch's row buffer — the zero-allocation path msbfs's Workspace
  /// overload seeds its frontier through.
  void assign_sources(vidx_t nverts, const std::vector<vidx_t>& sources);

  /// Structural invariants: batch in [1, kMaxBatch], row count == n,
  /// no lane-tail bits.
  [[nodiscard]] bool validate() const;
};

// ---------------------------------------------------------------------
// Batched Boolean expansion kernels (the BMM frontier sweep)
// ---------------------------------------------------------------------
//
// next = A (.) F over the Boolean OR-AND semiring, where F is the
// n x batch frontier bit-matrix:
//
//   next[i] = OR_{j in adj(i)} F[j]
//
// i.e. one mxv per bit-column, fused into a single sweep over A's B2SR
// tiles: per set adjacency bit one 64-bit OR folds the corresponding
// frontier row into all lanes at once.  Parallel over tile-rows (the
// warp-consolidation mapping); output rows of distinct tile-rows are
// disjoint, so no atomics.  Requires f.n == a.ncols; next is resized to
// a.nrows with f's batch width.

/// The pull kernels take a trailing Exec (platform/exec.hpp) selecting
/// the scalar or SIMD accumulation and the thread budget; the reduction
/// is a 64-bit OR, so the variants are bit-identical.  The push kernel
/// is a frontier-proportional scatter and stays scalar by design.
template <int Dim>
void bmm_frontier(const B2srT<Dim>& a, const FrontierBatch& f,
                  FrontierBatch& next, Exec exec = {});

/// Masked form: the mask row word is AND-ed right before the output
/// store (the paper's §V masking design lifted to the batch), so
/// masked-off (row, lane) positions store zero.  complement applies the
/// GraphBLAS structural complement — BFS passes visited with
/// complement=true.  Lane-tail bits a complemented mask would set are
/// clamped, preserving the FrontierBatch invariant.
template <int Dim>
void bmm_frontier_masked(const B2srT<Dim>& a, const FrontierBatch& f,
                         const FrontierBatch& mask, bool complement,
                         FrontierBatch& next, Exec exec = {});

/// Push-direction batched expansion (the batch analog of the BMV
/// active-list push): work proportional to the frontier's tile-rows
/// rather than the whole matrix, which keeps long-diameter traversals
/// (road / band graphs) frontier-proportional exactly as the
/// direction-optimized single-source BFS is.  Takes A itself (vxm
/// selects A's rows): next[c] |= f[r] for every set bit (r, c) of an
/// active tile-row, mask AND-ed per store.  The caller supplies the
/// sorted tile-row indices holding live frontier rows (`active`);
/// `next` must arrive all-zero and sized to a.ncols with f's batch
/// width; the kernel appends to `touched` each row of `next` it turns
/// non-zero (duplicate-free).  Serial, like the BMV active-list push —
/// a sparse frontier does not amortize a parallel region.
template <int Dim>
void bmm_frontier_push_masked(const B2srT<Dim>& a, const FrontierBatch& f,
                              const std::vector<vidx_t>& active,
                              const FrontierBatch& mask, bool complement,
                              FrontierBatch& next,
                              std::vector<vidx_t>& touched);

}  // namespace bitgb
