#include "core/bmm.hpp"

#include "platform/parallel.hpp"

#include <cassert>
#include <vector>

namespace bitgb {

template <int Dim>
std::int64_t bmm_bin_bin_sum(const B2srT<Dim>& a, const B2srT<Dim>& b) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(a.ncols == b.nrows);
  std::vector<std::int64_t> partial(
      static_cast<std::size_t>(a.n_tile_rows()), 0);
  // Gustavson over tiles: for A tile (i,k), walk B's tile-row k.  The
  // contribution of the pair to the total is
  //   sum_r sum_{t set in Arow_r} popc(Brow_t)
  // == the register reduction of Listing 2 folded into the sum.
  parallel_for(vidx_t{0}, a.n_tile_rows(), [&](vidx_t tr) {
    const auto alo = a.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto ahi = a.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    std::int64_t sum = 0;
    for (vidx_t ta = alo; ta < ahi; ++ta) {
      const vidx_t k = a.tile_colind[static_cast<std::size_t>(ta)];
      const auto awords = a.tile(ta);
      // popcount of each B row word in B's tile-row k, summed per bit t:
      // brow_pop[t] = sum over B tiles in row k of popc(row t).
      std::int32_t brow_pop[Dim] = {};
      const auto blo = b.tile_rowptr[static_cast<std::size_t>(k)];
      const auto bhi = b.tile_rowptr[static_cast<std::size_t>(k) + 1];
      if (blo == bhi) continue;
      for (vidx_t tb = blo; tb < bhi; ++tb) {
        const auto bwords = b.tile(tb);
        for (int t = 0; t < Dim; ++t) {
          brow_pop[t] += popcount(bwords[static_cast<std::size_t>(t)]);
        }
      }
      for (int r = 0; r < Dim; ++r) {
        const word_t w = awords[static_cast<std::size_t>(r)];
        for_each_set_bit(w, [&](int t) { sum += brow_pop[t]; });
      }
    }
    partial[static_cast<std::size_t>(tr)] = sum;
  });
  std::int64_t total = 0;
  for (const std::int64_t s : partial) total += s;
  return total;
}

template <int Dim>
std::int64_t bmm_bin_bin_sum_masked(const B2srT<Dim>& a, const B2srT<Dim>& b,
                                    const B2srT<Dim>& mask) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(a.ncols == b.ncols);
  assert(mask.nrows == a.nrows);
  assert(mask.ncols == b.nrows);
  std::vector<std::int64_t> partial(
      static_cast<std::size_t>(mask.n_tile_rows()), 0);
  parallel_for(vidx_t{0}, mask.n_tile_rows(), [&](vidx_t tr) {
    const auto mlo = mask.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto mhi = mask.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    if (mlo == mhi) return;
    const auto alo = a.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto ahi = a.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    if (alo == ahi) return;
    std::int64_t sum = 0;
    for (vidx_t tm = mlo; tm < mhi; ++tm) {
      const vidx_t j = mask.tile_colind[static_cast<std::size_t>(tm)];
      const auto mwords = mask.tile(tm);
      const auto blo = b.tile_rowptr[static_cast<std::size_t>(j)];
      const auto bhi = b.tile_rowptr[static_cast<std::size_t>(j) + 1];
      if (blo == bhi) continue;
      // Merge-join A's tile-row tr with B's tile-row j on tile column.
      vidx_t pa = alo;
      vidx_t pb = blo;
      while (pa < ahi && pb < bhi) {
        const vidx_t ca = a.tile_colind[static_cast<std::size_t>(pa)];
        const vidx_t cb = b.tile_colind[static_cast<std::size_t>(pb)];
        if (ca < cb) {
          ++pa;
        } else if (cb < ca) {
          ++pb;
        } else {
          const auto awords = a.tile(pa);
          const auto bwords = b.tile(pb);
          // For each mask bit (r, c): (A*B^T) block entry (r, c) gets
          // popc(Arow_r & Brow_c) from this aligned tile pair — the
          // Listing-2 bit-dot (r0 & shfl(r1, k)), mask applied before
          // the atomicAdd as in bmm_bin_bin_sum_masked (paper §V TC).
          for (int r = 0; r < Dim; ++r) {
            const word_t mrow = mwords[static_cast<std::size_t>(r)];
            if (mrow == 0) continue;
            const word_t arow = awords[static_cast<std::size_t>(r)];
            if (arow == 0) continue;
            for_each_set_bit(mrow, [&](int c) {
              sum += popcount(static_cast<word_t>(
                  arow & bwords[static_cast<std::size_t>(c)]));
            });
          }
          ++pa;
          ++pb;
        }
      }
    }
    partial[static_cast<std::size_t>(tr)] = sum;
  });
  std::int64_t total = 0;
  for (const std::int64_t s : partial) total += s;
  return total;
}

#define BITGB_INSTANTIATE_BMM(Dim)                                      \
  template std::int64_t bmm_bin_bin_sum<Dim>(const B2srT<Dim>&,         \
                                             const B2srT<Dim>&);        \
  template std::int64_t bmm_bin_bin_sum_masked<Dim>(                    \
      const B2srT<Dim>&, const B2srT<Dim>&, const B2srT<Dim>&)

BITGB_INSTANTIATE_BMM(4);
BITGB_INSTANTIATE_BMM(8);
BITGB_INSTANTIATE_BMM(16);
BITGB_INSTANTIATE_BMM(32);

#undef BITGB_INSTANTIATE_BMM

}  // namespace bitgb
