#include "core/bmm.hpp"

#include "platform/parallel.hpp"
#include "platform/simd.hpp"

#include <atomic>
#include <cassert>

namespace bitgb {

template <int Dim>
std::int64_t bmm_bin_bin_sum(const B2srT<Dim>& a, const B2srT<Dim>& b,
                             Exec exec) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(a.ncols == b.nrows);
  const bool use_simd =
      resolve_kernel_variant(exec.variant, HotKernel::kBmmBinBinSum, Dim) ==
      KernelVariant::kSimd;
  const vidx_t* a_rowptr = a.tile_rowptr.data();
  const vidx_t* a_colind = a.tile_colind.data();
  const word_t* a_tiles = a.bits.data();
  const vidx_t* b_rowptr = b.tile_rowptr.data();
  const word_t* b_tiles = b.bits.data();
  // One relaxed fetch_add per tile-row instead of a partial vector
  // allocated per call: integer addition commutes, so the reduction
  // order is irrelevant and the result stays deterministic.
  std::atomic<std::int64_t> total{0};
  std::atomic<std::int64_t>* totalp = &total;
  // Gustavson over tiles: for A tile (i,k), walk B's tile-row k.  The
  // contribution of the pair to the total is
  //   sum_r sum_{t set in Arow_r} popc(Brow_t)
  // == the register reduction of Listing 2 folded into the sum.
  // Value captures only (see parallel.hpp on closure escape).
  parallel_for(exec.threads, vidx_t{0}, a.n_tile_rows(), [=](vidx_t tr) {
    const vidx_t alo = a_rowptr[tr];
    const vidx_t ahi = a_rowptr[tr + 1];
    if (alo == ahi) return;
    std::int64_t sum = 0;
    for (vidx_t ta = alo; ta < ahi; ++ta) {
      const vidx_t k = a_colind[ta];
      const word_t* awords = a_tiles + static_cast<std::size_t>(ta) * Dim;
      // popcount of each B row word in B's tile-row k, summed per bit t:
      // brow_pop[t] = sum over B tiles in row k of popc(row t).
      const vidx_t blo = b_rowptr[k];
      const vidx_t bhi = b_rowptr[k + 1];
      if (blo == bhi) continue;
      std::int32_t brow_pop[Dim] = {};
      if (use_simd) {
        simd::rows_pop_accum<Dim>(b_tiles, blo, bhi, brow_pop);
      } else {
        for (vidx_t tb = blo; tb < bhi; ++tb) {
          const word_t* bwords = b_tiles + static_cast<std::size_t>(tb) * Dim;
          for (int t = 0; t < Dim; ++t) brow_pop[t] += popcount(bwords[t]);
        }
      }
      for (int r = 0; r < Dim; ++r) {
        const word_t w = awords[r];
        for_each_set_bit(w, [&](int t) { sum += brow_pop[t]; });
      }
    }
    totalp->fetch_add(sum, std::memory_order_relaxed);
  });
  return total.load(std::memory_order_relaxed);
}

template <int Dim>
std::int64_t bmm_bin_bin_sum_masked(const B2srT<Dim>& a, const B2srT<Dim>& b,
                                    const B2srT<Dim>& mask,
                                    Exec exec) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(a.ncols == b.ncols);
  assert(mask.nrows == a.nrows);
  assert(mask.ncols == b.nrows);
  const bool use_simd =
      resolve_kernel_variant(exec.variant, HotKernel::kBmmBinBinSumMasked, Dim) ==
      KernelVariant::kSimd;
  const vidx_t* a_rowptr = a.tile_rowptr.data();
  const vidx_t* a_colind = a.tile_colind.data();
  const word_t* a_tiles = a.bits.data();
  const vidx_t* b_rowptr = b.tile_rowptr.data();
  const vidx_t* b_colind = b.tile_colind.data();
  const word_t* b_tiles = b.bits.data();
  const vidx_t* m_rowptr = mask.tile_rowptr.data();
  const vidx_t* m_colind = mask.tile_colind.data();
  const word_t* m_tiles = mask.bits.data();
  std::atomic<std::int64_t> total{0};
  std::atomic<std::int64_t>* totalp = &total;
  parallel_for(exec.threads, vidx_t{0}, mask.n_tile_rows(), [=](vidx_t tr) {
    // Empty-tile-row early-outs: no mask tiles or no A tiles in this
    // tile-row means no (i, j) pair can contribute.
    const vidx_t mlo = m_rowptr[tr];
    const vidx_t mhi = m_rowptr[tr + 1];
    if (mlo == mhi) return;
    const vidx_t alo = a_rowptr[tr];
    const vidx_t ahi = a_rowptr[tr + 1];
    if (alo == ahi) return;
    std::int64_t sum = 0;
    for (vidx_t tm = mlo; tm < mhi; ++tm) {
      const vidx_t j = m_colind[tm];
      const vidx_t blo = b_rowptr[j];
      const vidx_t bhi = b_rowptr[j + 1];
      if (blo == bhi) continue;  // B's tile-row j is empty
      const word_t* mwords = m_tiles + static_cast<std::size_t>(tm) * Dim;
      // Merge-join A's tile-row tr with B's tile-row j on tile column.
      vidx_t pa = alo;
      vidx_t pb = blo;
      while (pa < ahi && pb < bhi) {
        const vidx_t ca = a_colind[pa];
        const vidx_t cb = b_colind[pb];
        if (ca < cb) {
          ++pa;
        } else if (cb < ca) {
          ++pb;
        } else {
          const word_t* awords = a_tiles + static_cast<std::size_t>(pa) * Dim;
          const word_t* bwords = b_tiles + static_cast<std::size_t>(pb) * Dim;
          // For each mask bit (r, c): (A*B^T) block entry (r, c) gets
          // popc(Arow_r & Brow_c) from this aligned tile pair — the
          // Listing-2 bit-dot (r0 & shfl(r1, k)), mask applied before
          // the atomicAdd as in bmm_bin_bin_sum_masked (paper §V TC).
          if (use_simd) {
            sum += simd::masked_pair_dot<Dim>(awords, bwords, mwords);
          } else {
            for (int r = 0; r < Dim; ++r) {
              const word_t mrow = mwords[r];
              if (mrow == 0) continue;
              const word_t arow = awords[r];
              if (arow == 0) continue;
              for_each_set_bit(mrow, [&](int c) {
                sum += popcount(static_cast<word_t>(arow & bwords[c]));
              });
            }
          }
          ++pa;
          ++pb;
        }
      }
    }
    totalp->fetch_add(sum, std::memory_order_relaxed);
  });
  return total.load(std::memory_order_relaxed);
}

#define BITGB_INSTANTIATE_BMM(Dim)                                      \
  template std::int64_t bmm_bin_bin_sum<Dim>(                           \
      const B2srT<Dim>&, const B2srT<Dim>&, Exec);             \
  template std::int64_t bmm_bin_bin_sum_masked<Dim>(                    \
      const B2srT<Dim>&, const B2srT<Dim>&, const B2srT<Dim>&,          \
      Exec)

BITGB_INSTANTIATE_BMM(4);
BITGB_INSTANTIATE_BMM(8);
BITGB_INSTANTIATE_BMM(16);
BITGB_INSTANTIATE_BMM(32);

#undef BITGB_INSTANTIATE_BMM

}  // namespace bitgb
