// Binarized sparse Matrix-Matrix kernels (BMM) — paper Table III.
//
// The paper's BMM reduces the whole product to one full-precision scalar
// ("The output C is a single variable in full precision, summing up the
// nonzeros of the resulting bit matrix", §IV Listing 2):
//
//   bmm_bin_bin_sum(A, B)          = sum over all entries of the
//                                    counting product A * B
//   bmm_bin_bin_sum_masked(A,B,M)  = sum over entries (i,j) with
//                                    M(i,j)=1 of (A * B^T)(i,j)
//
// The masked scheme is stated in A*B^T (dot) form because that is both
// what Listing 2 computes at the bit level — popc(r0 & shfl(r1,k)) dots
// a bit-row of A against a bit-row of B — and what triangle counting
// needs: with A = B = M = L (strict lower triangle), the result is
// sum((L*L^T) .* L) = the triangle count (paper §V, TC).  It merge-joins
// the tile rows of A and B on tile-column index, so no transposition is
// materialized.
//
// The unmasked scheme computes the conventional A*B (Gustavson over
// tiles).  Its inner loop uses the identity
//   sum_c (A*B)(block)(r,c) = sum_{t in Arow_r} popc(Brow_t),
// i.e. one popcount per set bit of A — the same word-level work as the
// paper's kernel after the register reduction is folded in.
//
// bit_spgemm (bit_spgemm.hpp) additionally produces a *matrix* result in
// B2SR for the Boolean product — an extension beyond the paper's
// sum-only kernel, needed by multi-hop reachability style uses.
#pragma once

#include "core/b2sr.hpp"
#include "platform/exec.hpp"
#include "platform/simd.hpp"

#include <cstdint>

namespace bitgb {

// Both kernels take a trailing Exec (platform/exec.hpp) selecting the
// scalar or SIMD inner loop and the thread budget; the reductions are
// integer sums, so the variants are bit-identical.

/// Sum over the counting product A*B (requires a.ncols == b.nrows).
template <int Dim>
[[nodiscard]] std::int64_t bmm_bin_bin_sum(const B2srT<Dim>& a,
                                           const B2srT<Dim>& b,
                                           Exec exec = {});

/// Masked dot-product sum: sum_{(i,j): M(i,j)=1} (A * B^T)(i,j).
/// Requires a.ncols == b.ncols (shared inner dimension) and
/// mask.nrows == a.nrows, mask.ncols == b.nrows.
template <int Dim>
[[nodiscard]] std::int64_t bmm_bin_bin_sum_masked(const B2srT<Dim>& a,
                                                  const B2srT<Dim>& b,
                                                  const B2srT<Dim>& mask,
                                                  Exec exec = {});

}  // namespace bitgb
