#include "core/bit_spgemm.hpp"

#include "platform/parallel.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <vector>

namespace bitgb {

namespace {

// Per-thread tile accumulator (SPA over tile columns) with generation
// marking, mirroring the float SpGEMM baseline's accumulator.
template <int Dim>
struct TileSpa {
  using word_t = typename TileTraits<Dim>::word_t;
  std::vector<word_t> acc;      // n_tile_cols * Dim words
  std::vector<int> mark;        // generation per tile col
  std::vector<vidx_t> touched;  // tile cols hit this row
  int gen = 0;

  void ensure(vidx_t ntc) {
    if (mark.size() < static_cast<std::size_t>(ntc)) {
      mark.assign(static_cast<std::size_t>(ntc), -1);
      acc.assign(static_cast<std::size_t>(ntc) * Dim, word_t{0});
    }
  }
};

template <int Dim>
TileSpa<Dim>& tls_tile_spa() {
  thread_local TileSpa<Dim> spa;
  return spa;
}

}  // namespace

template <int Dim>
B2srT<Dim> bit_spgemm(const B2srT<Dim>& a, const B2srT<Dim>& b) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(a.ncols == b.nrows);

  const vidx_t ntr = a.n_tile_rows();
  const vidx_t ntc = b.n_tile_cols();

  struct RowResult {
    std::vector<vidx_t> cols;
    std::vector<word_t> words;  // cols.size() * Dim
  };
  std::vector<RowResult> rows(static_cast<std::size_t>(ntr));

  parallel_for(vidx_t{0}, ntr, [&](vidx_t tr) {
    auto& spa = tls_tile_spa<Dim>();
    spa.ensure(ntc);
    const int g = ++spa.gen;
    spa.touched.clear();

    const auto alo = a.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto ahi = a.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    for (vidx_t ta = alo; ta < ahi; ++ta) {
      const vidx_t k = a.tile_colind[static_cast<std::size_t>(ta)];
      const auto awords = a.tile(ta);
      const auto blo = b.tile_rowptr[static_cast<std::size_t>(k)];
      const auto bhi = b.tile_rowptr[static_cast<std::size_t>(k) + 1];
      for (vidx_t tb = blo; tb < bhi; ++tb) {
        const vidx_t j = b.tile_colind[static_cast<std::size_t>(tb)];
        const auto bwords = b.tile(tb);
        const auto ji = static_cast<std::size_t>(j);
        if (spa.mark[ji] != g) {
          spa.mark[ji] = g;
          std::fill_n(spa.acc.begin() + static_cast<std::ptrdiff_t>(ji) * Dim,
                      Dim, word_t{0});
          spa.touched.push_back(j);
        }
        word_t* cacc = spa.acc.data() + ji * Dim;
        for (int r = 0; r < Dim; ++r) {
          const word_t arow = awords[static_cast<std::size_t>(r)];
          if (arow == 0) continue;
          word_t crow = cacc[r];
          for_each_set_bit(arow, [&](int t) {
            crow = static_cast<word_t>(crow |
                                       bwords[static_cast<std::size_t>(t)]);
          });
          cacc[r] = crow;
        }
      }
    }

    std::sort(spa.touched.begin(), spa.touched.end());
    auto& out = rows[static_cast<std::size_t>(tr)];
    for (const vidx_t j : spa.touched) {
      const word_t* cacc = spa.acc.data() + static_cast<std::size_t>(j) * Dim;
      bool any = false;
      for (int r = 0; r < Dim; ++r) any = any || (cacc[r] != 0);
      if (!any) continue;  // all products annihilated
      out.cols.push_back(j);
      out.words.insert(out.words.end(), cacc, cacc + Dim);
    }
  });

  B2srT<Dim> c;
  c.nrows = a.nrows;
  c.ncols = b.ncols;
  c.tile_rowptr.assign(static_cast<std::size_t>(ntr) + 1, 0);
  std::size_t total = 0;
  for (const auto& row : rows) total += row.cols.size();
  c.tile_colind.reserve(total);
  c.bits.reserve(total * Dim);
  for (vidx_t tr = 0; tr < ntr; ++tr) {
    const auto& row = rows[static_cast<std::size_t>(tr)];
    c.tile_colind.insert(c.tile_colind.end(), row.cols.begin(),
                         row.cols.end());
    c.bits.insert(c.bits.end(), row.words.begin(), row.words.end());
    c.tile_rowptr[static_cast<std::size_t>(tr) + 1] =
        static_cast<vidx_t>(c.tile_colind.size());
  }
  return c;
}

B2srAny bit_spgemm_any(const B2srAny& a, const B2srAny& b) {
  if (a.tile_dim() != b.tile_dim()) {
    throw std::invalid_argument("bit_spgemm_any: mismatched tile dims");
  }
  return dispatch_tile_dim(a.tile_dim(), [&]<int Dim>() {
    return B2srAny(bit_spgemm(a.as<Dim>(), b.as<Dim>()));
  });
}

template B2srT<4> bit_spgemm<4>(const B2srT<4>&, const B2srT<4>&);
template B2srT<8> bit_spgemm<8>(const B2srT<8>&, const B2srT<8>&);
template B2srT<16> bit_spgemm<16>(const B2srT<16>&, const B2srT<16>&);
template B2srT<32> bit_spgemm<32>(const B2srT<32>&, const B2srT<32>&);

}  // namespace bitgb
