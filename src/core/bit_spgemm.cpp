#include "core/bit_spgemm.hpp"

#include "platform/parallel.hpp"
#include "platform/simd.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <vector>

namespace bitgb {

namespace {

// Per-thread tile accumulator (SPA over tile columns) with generation
// marking, mirroring the float SpGEMM baseline's accumulator.
template <int Dim>
struct TileSpa {
  using word_t = typename TileTraits<Dim>::word_t;
  std::vector<word_t> acc;      // n_tile_cols * Dim words
  std::vector<int> mark;        // generation per tile col
  std::vector<vidx_t> touched;  // tile cols hit this row
  int gen = 0;

  void ensure(vidx_t ntc) {
    if (mark.size() < static_cast<std::size_t>(ntc)) {
      mark.assign(static_cast<std::size_t>(ntc), -1);
      acc.assign(static_cast<std::size_t>(ntc) * Dim, word_t{0});
    }
  }
};

template <int Dim>
TileSpa<Dim>& tls_tile_spa() {
  thread_local TileSpa<Dim> spa;
  return spa;
}

/// One (A, B) tile pair accumulated into the SPA slot:
///   cacc[r] |= OR_{t set in awords[r]} bwords[t].
/// For dims 4/8 the whole B tile fits one machine word, so the row OR
/// selects shifted byte lanes from a register instead of re-loading
/// bwords[t] per set bit.
template <int Dim>
[[gnu::always_inline]] inline void accumulate_tile_pair(
    const typename TileTraits<Dim>::word_t* awords,
    const typename TileTraits<Dim>::word_t* bwords,
    typename TileTraits<Dim>::word_t* cacc) {
  using word_t = typename TileTraits<Dim>::word_t;
  if constexpr (Dim == 8) {
    std::uint64_t btile;
    std::memcpy(&btile, bwords, sizeof btile);
    if (btile == 0) return;
    for (int r = 0; r < Dim; ++r) {
      const word_t arow = awords[r];
      if (arow == 0) continue;
      word_t crow = cacc[r];
      for_each_set_bit(arow, [&](int t) {
        crow = static_cast<word_t>(crow | ((btile >> (8 * t)) & 0xFF));
      });
      cacc[r] = crow;
    }
  } else if constexpr (Dim == 4) {
    std::uint32_t btile;
    std::memcpy(&btile, bwords, sizeof btile);
    if (btile == 0) return;
    for (int r = 0; r < Dim; ++r) {
      const word_t arow = awords[r];
      if (arow == 0) continue;
      word_t crow = cacc[r];
      for_each_set_bit(arow, [&](int t) {
        crow = static_cast<word_t>(crow | ((btile >> (8 * t)) & 0x0F));
      });
      cacc[r] = crow;
    }
  } else {
    for (int r = 0; r < Dim; ++r) {
      const word_t arow = awords[r];
      if (arow == 0) continue;
      word_t crow = cacc[r];
      for_each_set_bit(arow, [&](int t) {
        crow = static_cast<word_t>(crow | bwords[static_cast<std::size_t>(t)]);
      });
      cacc[r] = crow;
    }
  }
}

/// True when the Dim accumulator words of one drained tile are all
/// zero (every product annihilated) — word-OR reduction, whole-tile
/// loads for the small dims.
template <int Dim>
[[gnu::always_inline]] inline bool tile_is_zero(
    const typename TileTraits<Dim>::word_t* words) {
  if constexpr (Dim == 8) {
    std::uint64_t v;
    std::memcpy(&v, words, sizeof v);
    return v == 0;
  } else if constexpr (Dim == 4) {
    std::uint32_t v;
    std::memcpy(&v, words, sizeof v);
    return v == 0;
  } else {
    typename TileTraits<Dim>::word_t any = 0;
    for (int r = 0; r < Dim; ++r) any |= words[r];
    return any == 0;
  }
}

}  // namespace

template <int Dim>
B2srT<Dim> bit_spgemm(const B2srT<Dim>& a, const B2srT<Dim>& b,
                      Exec exec) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(a.ncols == b.nrows);
  const bool use_simd =
      resolve_kernel_variant(exec.variant, HotKernel::kSpgemmAccum, Dim) ==
      KernelVariant::kSimd;

  const vidx_t ntr = a.n_tile_rows();
  const vidx_t ntc = b.n_tile_cols();
  const vidx_t* a_rowptr = a.tile_rowptr.data();
  const vidx_t* a_colind = a.tile_colind.data();
  const word_t* a_tiles = a.bits.data();
  const vidx_t* b_rowptr = b.tile_rowptr.data();
  const vidx_t* b_colind = b.tile_colind.data();
  const word_t* b_tiles = b.bits.data();

  // Phase 1 (symbolic): structural upper bound of output tiles per
  // tile-row — marks only, no bit work.  Tiles that annihilate
  // numerically are compacted away after the fill.
  std::vector<vidx_t> upper(static_cast<std::size_t>(ntr), 0);
  parallel_for(exec.threads, vidx_t{0}, ntr, [&](vidx_t tr) {
    const vidx_t alo = a_rowptr[tr];
    const vidx_t ahi = a_rowptr[tr + 1];
    if (alo == ahi) return;  // empty A tile-row: no output
    auto& spa = tls_tile_spa<Dim>();
    spa.ensure(ntc);
    const int g = ++spa.gen;
    vidx_t count = 0;
    for (vidx_t ta = alo; ta < ahi; ++ta) {
      const vidx_t k = a_colind[ta];
      const vidx_t blo = b_rowptr[k];
      const vidx_t bhi = b_rowptr[k + 1];
      for (vidx_t tb = blo; tb < bhi; ++tb) {
        const auto j = static_cast<std::size_t>(b_colind[tb]);
        if (spa.mark[j] != g) {
          spa.mark[j] = g;
          ++count;
        }
      }
    }
    upper[static_cast<std::size_t>(tr)] = count;
  });

  std::vector<vidx_t> offs(static_cast<std::size_t>(ntr) + 1);
  parallel_exclusive_scan(exec.threads, upper.data(), upper.size(),
                          offs.data());
  const vidx_t ub_total = offs.back();

  B2srT<Dim> c;
  c.nrows = a.nrows;
  c.ncols = b.ncols;
  c.tile_colind.resize(static_cast<std::size_t>(ub_total));
  c.bits.assign(static_cast<std::size_t>(ub_total) * Dim, word_t{0});
  std::vector<vidx_t> actual(static_cast<std::size_t>(ntr), 0);

  // Phase 2 (numeric): Gustavson over tiles into the SPA, then drain
  // the touched tiles — sorted, annihilated tiles skipped — straight
  // into this tile-row's pre-sized slot range.
  parallel_for(exec.threads, vidx_t{0}, ntr, [&](vidx_t tr) {
    const vidx_t alo = a_rowptr[tr];
    const vidx_t ahi = a_rowptr[tr + 1];
    if (alo == ahi) return;
    auto& spa = tls_tile_spa<Dim>();
    spa.ensure(ntc);
    const int g = ++spa.gen;
    spa.touched.clear();
    for (vidx_t ta = alo; ta < ahi; ++ta) {
      const vidx_t k = a_colind[ta];
      const word_t* awords = a_tiles + static_cast<std::size_t>(ta) * Dim;
      const vidx_t blo = b_rowptr[k];
      const vidx_t bhi = b_rowptr[k + 1];
      for (vidx_t tb = blo; tb < bhi; ++tb) {
        const vidx_t j = b_colind[tb];
        const auto ji = static_cast<std::size_t>(j);
        if (spa.mark[ji] != g) {
          spa.mark[ji] = g;
          std::fill_n(spa.acc.begin() + static_cast<std::ptrdiff_t>(ji) * Dim,
                      Dim, word_t{0});
          spa.touched.push_back(j);
        }
        if (use_simd) {
          simd::spgemm_tile_accum<Dim>(
              awords, b_tiles + static_cast<std::size_t>(tb) * Dim,
              spa.acc.data() + ji * Dim);
        } else {
          accumulate_tile_pair<Dim>(
              awords, b_tiles + static_cast<std::size_t>(tb) * Dim,
              spa.acc.data() + ji * Dim);
        }
      }
    }

    std::sort(spa.touched.begin(), spa.touched.end());
    const auto base = static_cast<std::size_t>(offs[static_cast<std::size_t>(tr)]);
    std::size_t out = 0;
    for (const vidx_t j : spa.touched) {
      const word_t* cacc = spa.acc.data() + static_cast<std::size_t>(j) * Dim;
      if (tile_is_zero<Dim>(cacc)) continue;  // all products annihilated
      c.tile_colind[base + out] = j;
      std::memcpy(c.bits.data() + (base + out) * Dim, cacc,
                  sizeof(word_t) * Dim);
      ++out;
    }
    actual[static_cast<std::size_t>(tr)] = static_cast<vidx_t>(out);
  });

  // Phase 3: final tile_rowptr and compaction of the rows whose
  // annihilated tiles left gaps.  An in-place left shift is unsafe to
  // parallelize (a later row's destination can overlap an earlier
  // row's still-unread source once slack accumulates), so compact into
  // fresh arrays: sources and destinations never alias, and each row
  // owns a disjoint destination range.
  c.tile_rowptr.resize(static_cast<std::size_t>(ntr) + 1);
  parallel_exclusive_scan(exec.threads, actual.data(), actual.size(),
                          c.tile_rowptr.data());
  const vidx_t total = c.tile_rowptr.back();
  if (total != ub_total) {
    decltype(c.tile_colind) packed_colind(static_cast<std::size_t>(total));
    decltype(c.bits) packed_bits(static_cast<std::size_t>(total) * Dim);
    parallel_for(exec.threads, vidx_t{0}, ntr, [&](vidx_t tr) {
      const auto src = static_cast<std::size_t>(offs[static_cast<std::size_t>(tr)]);
      const auto dst =
          static_cast<std::size_t>(c.tile_rowptr[static_cast<std::size_t>(tr)]);
      const auto n = static_cast<std::size_t>(actual[static_cast<std::size_t>(tr)]);
      if (n == 0) return;
      std::copy_n(c.tile_colind.begin() + static_cast<std::ptrdiff_t>(src), n,
                  packed_colind.begin() + static_cast<std::ptrdiff_t>(dst));
      std::copy_n(c.bits.begin() + static_cast<std::ptrdiff_t>(src * Dim),
                  n * Dim,
                  packed_bits.begin() + static_cast<std::ptrdiff_t>(dst * Dim));
    });
    c.tile_colind = std::move(packed_colind);
    c.bits = std::move(packed_bits);
  }
  return c;
}

template <int Dim>
B2srT<Dim> bit_spgemm_reference(const B2srT<Dim>& a, const B2srT<Dim>& b,
                                Exec exec) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(a.ncols == b.nrows);

  const vidx_t ntr = a.n_tile_rows();
  const vidx_t ntc = b.n_tile_cols();

  struct RowResult {
    std::vector<vidx_t> cols;
    std::vector<word_t> words;  // cols.size() * Dim
  };
  std::vector<RowResult> rows(static_cast<std::size_t>(ntr));

  parallel_for(exec.threads, vidx_t{0}, ntr, [&](vidx_t tr) {
    auto& spa = tls_tile_spa<Dim>();
    spa.ensure(ntc);
    const int g = ++spa.gen;
    spa.touched.clear();

    const auto alo = a.tile_rowptr[static_cast<std::size_t>(tr)];
    const auto ahi = a.tile_rowptr[static_cast<std::size_t>(tr) + 1];
    for (vidx_t ta = alo; ta < ahi; ++ta) {
      const vidx_t k = a.tile_colind[static_cast<std::size_t>(ta)];
      const auto awords = a.tile(ta);
      const auto blo = b.tile_rowptr[static_cast<std::size_t>(k)];
      const auto bhi = b.tile_rowptr[static_cast<std::size_t>(k) + 1];
      for (vidx_t tb = blo; tb < bhi; ++tb) {
        const vidx_t j = b.tile_colind[static_cast<std::size_t>(tb)];
        const auto bwords = b.tile(tb);
        const auto ji = static_cast<std::size_t>(j);
        if (spa.mark[ji] != g) {
          spa.mark[ji] = g;
          std::fill_n(spa.acc.begin() + static_cast<std::ptrdiff_t>(ji) * Dim,
                      Dim, word_t{0});
          spa.touched.push_back(j);
        }
        word_t* cacc = spa.acc.data() + ji * Dim;
        for (int r = 0; r < Dim; ++r) {
          const word_t arow = awords[static_cast<std::size_t>(r)];
          if (arow == 0) continue;
          word_t crow = cacc[r];
          for_each_set_bit(arow, [&](int t) {
            crow = static_cast<word_t>(crow |
                                       bwords[static_cast<std::size_t>(t)]);
          });
          cacc[r] = crow;
        }
      }
    }

    std::sort(spa.touched.begin(), spa.touched.end());
    auto& out = rows[static_cast<std::size_t>(tr)];
    for (const vidx_t j : spa.touched) {
      const word_t* cacc = spa.acc.data() + static_cast<std::size_t>(j) * Dim;
      bool any = false;
      for (int r = 0; r < Dim; ++r) any = any || (cacc[r] != 0);
      if (!any) continue;  // all products annihilated
      out.cols.push_back(j);
      out.words.insert(out.words.end(), cacc, cacc + Dim);
    }
  });

  B2srT<Dim> c;
  c.nrows = a.nrows;
  c.ncols = b.ncols;
  c.tile_rowptr.assign(static_cast<std::size_t>(ntr) + 1, 0);
  std::size_t total = 0;
  for (const auto& row : rows) total += row.cols.size();
  c.tile_colind.reserve(total);
  c.bits.reserve(total * Dim);
  for (vidx_t tr = 0; tr < ntr; ++tr) {
    const auto& row = rows[static_cast<std::size_t>(tr)];
    c.tile_colind.insert(c.tile_colind.end(), row.cols.begin(),
                         row.cols.end());
    c.bits.insert(c.bits.end(), row.words.begin(), row.words.end());
    c.tile_rowptr[static_cast<std::size_t>(tr) + 1] =
        static_cast<vidx_t>(c.tile_colind.size());
  }
  return c;
}

B2srAny bit_spgemm_any(const B2srAny& a, const B2srAny& b, Exec exec) {
  if (a.tile_dim() != b.tile_dim()) {
    throw std::invalid_argument("bit_spgemm_any: mismatched tile dims");
  }
  return dispatch_tile_dim(a.tile_dim(), [&]<int Dim>() {
    return B2srAny(bit_spgemm(a.as<Dim>(), b.as<Dim>(), exec));
  });
}

#define BITGB_INSTANTIATE_SPGEMM(Dim)                                     \
  template B2srT<Dim> bit_spgemm<Dim>(const B2srT<Dim>&,                  \
                                      const B2srT<Dim>&, Exec);  \
  template B2srT<Dim> bit_spgemm_reference<Dim>(const B2srT<Dim>&,        \
                                                const B2srT<Dim>&, Exec)

BITGB_INSTANTIATE_SPGEMM(4);
BITGB_INSTANTIATE_SPGEMM(8);
BITGB_INSTANTIATE_SPGEMM(16);
BITGB_INSTANTIATE_SPGEMM(32);

#undef BITGB_INSTANTIATE_SPGEMM

}  // namespace bitgb
