#include "core/bmv_sim.hpp"

#include "platform/warp_sim.hpp"

#include <cassert>

namespace bitgb::sim {

void bmv_bin_bin_full_sim(const B2sr32& a, const PackedVec32& x,
                          std::vector<value_t>& y) {
  assert(x.n == a.ncols);
  y.assign(static_cast<std::size_t>(a.nrows), 0.0f);

  // One thread block (= one warp, warp-consolidation model) per tile
  // row `bx`; transcription of Listing 1.
  for (vidx_t bx = 0; bx < a.n_tile_rows(); ++bx) {
    const vidx_t row_start = a.tile_rowptr[static_cast<std::size_t>(bx)];
    const vidx_t row_end = a.tile_rowptr[static_cast<std::size_t>(bx) + 1];
    if (row_start == row_end) continue;

    const std::uint32_t* Asub =
        a.bits.data() + static_cast<std::size_t>(row_start) * 32;
    const std::uint32_t* Bsub = x.words.data();

    Warp warp;
    std::uint32_t Cm[kWarpSize] = {};  // register Cm[1] per lane
    for (vidx_t i = row_start; i < row_end; ++i) {
      warp.for_each_lane([&](int laneid) {
        const std::uint32_t r0 =
            Asub[static_cast<std::size_t>(i - row_start) * 32 +
                 static_cast<std::size_t>(laneid)];
        const std::uint32_t r1 =
            Bsub[static_cast<std::size_t>(
                a.tile_colind[static_cast<std::size_t>(i)])];
        Cm[laneid] += static_cast<std::uint32_t>(
            popcount<std::uint32_t>(r0 & r1));
      });
    }
    // Csub[laneid] += Cm[0];
    const vidx_t r0 = bx * 32;
    warp.for_each_lane([&](int laneid) {
      const vidx_t r = r0 + laneid;
      if (r < a.nrows) {
        y[static_cast<std::size_t>(r)] += static_cast<value_t>(Cm[laneid]);
      }
    });
  }
}

void bmv_bin_bin_bin_sim(const B2sr32& a, const PackedVec32& x,
                         PackedVec32& y) {
  assert(x.n == a.ncols);
  y.resize(a.nrows);

  for (vidx_t bx = 0; bx < a.n_tile_rows(); ++bx) {
    const vidx_t row_start = a.tile_rowptr[static_cast<std::size_t>(bx)];
    const vidx_t row_end = a.tile_rowptr[static_cast<std::size_t>(bx) + 1];
    if (row_start == row_end) continue;

    const std::uint32_t* Asub =
        a.bits.data() + static_cast<std::size_t>(row_start) * 32;

    Warp warp;
    bool reached[kWarpSize] = {};
    for (vidx_t i = row_start; i < row_end; ++i) {
      const std::uint32_t r1 =
          x.words[static_cast<std::size_t>(
              a.tile_colind[static_cast<std::size_t>(i)])];
      warp.for_each_lane([&](int laneid) {
        const std::uint32_t r0 =
            Asub[static_cast<std::size_t>(i - row_start) * 32 +
                 static_cast<std::size_t>(laneid)];
        reached[laneid] = reached[laneid] || ((r0 & r1) != 0);
      });
    }
    // The boolean output word is produced with __ballot_sync — one bit
    // per lane, exactly the frontier-word store of the bit backend.
    const std::uint32_t word =
        warp.ballot([&](int laneid) { return reached[laneid]; });
    y.words[static_cast<std::size_t>(bx)] = word;
  }
}

BallotPacked pack_vector_ballot(const std::vector<value_t>& f) {
  BallotPacked out;
  const auto n = static_cast<vidx_t>(f.size());
  out.normalized.resize(n);
  const vidx_t nwords = (n + 31) / 32;
  out.raw_brev.resize(static_cast<std::size_t>(nwords));

  Warp warp;
  for (vidx_t wi = 0; wi < nwords; ++wi) {
    // BVal[i] = __brev(__ballot_sync(0xFFFFFFFF, f[i] > 0)): ballot
    // puts lane L's predicate at bit L (LSB first); __brev flips it to
    // the paper's MSB-first convention.
    const std::uint32_t ballot = warp.ballot([&](int lane) {
      const vidx_t idx = wi * 32 + lane;
      return idx < n && f[static_cast<std::size_t>(idx)] > 0.0f;
    });
    out.raw_brev[static_cast<std::size_t>(wi)] = brev(ballot);
    // Library convention is LSB-first == the raw ballot word.
    out.normalized.words[static_cast<std::size_t>(wi)] = ballot;
  }
  return out;
}

}  // namespace bitgb::sim
