// Warp-simulated BMM — paper Listing 2, transcribed.
//
// One warp per tile-row of A; the outer loop walks A's tiles (i,k), the
// inner loop walks B's tile-row k; __shfl_sync broadcasts B's packed
// words across the lanes so every lane can dot its A bit-row against
// all 32 of them; the 32 per-lane registers Cm[0..31] avoid the race the
// paper mentions; their grand total is atomically added to the scalar C.
//
// In the artifact, B's tiles are packed column-major (the paper's
// default packing, Figure 2), so Bsub[j*32 + laneid] is a bit-*column*
// and popc(r0 & shfl(r1, k)) is a genuine row-by-column product term.
// This library stores tiles row-major, so the sim loads B's tile through
// an on-the-fly tile transpose — the same words the artifact would have
// fetched.  The result equals the counting sum over A*B and the tests
// assert bit-exact agreement with the portable bmm_bin_bin_sum.
#pragma once

#include "core/b2sr.hpp"

#include <cstdint>

namespace bitgb::sim {

/// Listing 2: sum over the counting product A*B, warp program per
/// tile-row (B2SR-32).
[[nodiscard]] std::int64_t bmm_bin_bin_sum_sim(const B2sr32& a,
                                               const B2sr32& b);

}  // namespace bitgb::sim
