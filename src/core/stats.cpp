#include "core/stats.hpp"

#include "core/pack.hpp"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace bitgb {

double compression_ratio(std::size_t b2sr_bytes, std::size_t csr_bytes) {
  if (csr_bytes == 0) return 0.0;
  return 100.0 * static_cast<double>(b2sr_bytes) /
         static_cast<double>(csr_bytes);
}

double nonempty_tile_ratio_pct(const Csr& a, int dim) {
  const auto ntr = static_cast<double>((a.nrows + dim - 1) / dim);
  const auto ntc = static_cast<double>((a.ncols + dim - 1) / dim);
  const double total = ntr * ntc;
  if (total == 0.0) return 0.0;
  return 100.0 * static_cast<double>(count_nonempty_tiles(a, dim)) / total;
}

double nonzero_occupancy_pct(const Csr& a, int dim) {
  const vidx_t tiles = count_nonempty_tiles(a, dim);
  if (tiles == 0) return 0.0;
  const double capacity = static_cast<double>(tiles) *
                          static_cast<double>(dim) * static_cast<double>(dim);
  return 100.0 * static_cast<double>(a.nnz()) / capacity;
}

std::array<FormatFootprint, kNumTileDims> all_footprints(const Csr& a) {
  std::array<FormatFootprint, kNumTileDims> out{};
  const std::size_t csr_bytes = a.storage_bytes();
  for (int i = 0; i < kNumTileDims; ++i) {
    const int dim = kTileDims[i];
    const B2srAny b = pack_any(a, dim);
    out[static_cast<std::size_t>(i)] = FormatFootprint{
        dim, b.storage_bytes(), b.nnz_tiles(),
        compression_ratio(b.storage_bytes(), csr_bytes)};
  }
  return out;
}

int optimal_tile_dim(const Csr& a) {
  const auto fps = all_footprints(a);
  std::size_t best_bytes = std::numeric_limits<std::size_t>::max();
  int best_dim = kTileDims[0];
  for (const auto& fp : fps) {
    if (fp.b2sr_bytes < best_bytes) {
      best_bytes = fp.b2sr_bytes;
      best_dim = fp.dim;
    }
  }
  return best_dim;
}

double per_tile_saving(int dim) {
  // Dense dim x dim float tile vs dim words of the packing type.
  const std::size_t float_bytes =
      static_cast<std::size_t>(dim) * static_cast<std::size_t>(dim) *
      sizeof(float);
  std::size_t word_bytes = 0;
  switch (dim) {
    case 4: word_bytes = 4 * sizeof(std::uint8_t); break;    // 16x
    case 8: word_bytes = 8 * sizeof(std::uint8_t); break;    // 32x
    case 16: word_bytes = 16 * sizeof(std::uint16_t); break; // 32x
    case 32: word_bytes = 32 * sizeof(std::uint32_t); break; // 32x
    default: return 0.0;
  }
  return static_cast<double>(float_bytes) / static_cast<double>(word_bytes);
}

TrafficModel spmv_traffic(const Csr& a, int dim) {
  TrafficModel t;
  t.csr_bytes = a.storage_bytes();
  const B2srAny b = pack_any(a, dim);
  t.b2sr_bytes = b.storage_bytes();
  return t;
}

}  // namespace bitgb
