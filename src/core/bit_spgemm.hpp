// General bit SpGEMM: C = A (.) B over the Boolean semiring, with the
// result materialized in B2SR.
//
// This extends the paper's sum-only BMM (§IV) to a full matrix product,
// which multi-hop reachability / transitive-closure style algorithms
// need.  The tile-level inner step is the Boolean bit-matrix product
//   Crow_r |= OR_{t set in Arow_r} Brow_t
// computed entirely with word ops; the upper level is Gustavson's
// row-merge over the tile index, parallel over tile rows.
#pragma once

#include "core/b2sr.hpp"

namespace bitgb {

template <int Dim>
[[nodiscard]] B2srT<Dim> bit_spgemm(const B2srT<Dim>& a, const B2srT<Dim>& b);

/// Runtime-dim dispatch (both operands must hold the same tile dim).
[[nodiscard]] B2srAny bit_spgemm_any(const B2srAny& a, const B2srAny& b);

}  // namespace bitgb
