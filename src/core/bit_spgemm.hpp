// General bit SpGEMM: C = A (.) B over the Boolean semiring, with the
// result materialized in B2SR.
//
// This extends the paper's sum-only BMM (§IV) to a full matrix product,
// which multi-hop reachability / transitive-closure style algorithms
// need.  The tile-level inner step is the Boolean bit-matrix product
//   Crow_r |= OR_{t set in Arow_r} Brow_t
// computed entirely with word ops; the upper level is Gustavson's
// row-merge over the tile index, parallel over tile rows.
#pragma once

#include "core/b2sr.hpp"
#include "platform/exec.hpp"
#include "platform/simd.hpp"

namespace bitgb {

/// Two-phase flat-output product: a symbolic pass sizes each tile-row
/// (structural upper bound), the numeric pass fills pre-sized
/// tile_rowptr/colind/words arrays straight from the generation-marked
/// tile SPA — the tile-pair accumulate runs through the SIMD engine's
/// spgemm_tile_accum behind the usual scalar/simd/auto dispatch — and
/// a final compaction drops the rare all-annihilated tiles (a stored B
/// tile can have zero rows, so a structurally reachable output tile
/// can still come out empty).
template <int Dim>
[[nodiscard]] B2srT<Dim> bit_spgemm(const B2srT<Dim>& a, const B2srT<Dim>& b,
                                    Exec exec = {});

/// The pre-rewrite implementation (per-tile-row vector-of-vectors
/// staging), kept as the differential oracle for test_pack_pipeline.
template <int Dim>
[[nodiscard]] B2srT<Dim> bit_spgemm_reference(const B2srT<Dim>& a,
                                              const B2srT<Dim>& b,
                                              Exec exec = {});

/// Runtime-dim dispatch (both operands must hold the same tile dim).
[[nodiscard]] B2srAny bit_spgemm_any(const B2srAny& a, const B2srAny& b,
                                     Exec exec = {});

}  // namespace bitgb
