// Tile-size traits: the packing-word table of the paper (Table I).
//
//   tile        CSR storage (at most)   binarized packing    saving/tile
//   4 x 4       4x4 float               4 x 1 unsigned char  16x
//   8 x 8       8x8 float               8 x 1 unsigned char  32x
//   16 x 16     16x16 float             16 x 1 unsigned short 32x
//   32 x 32     32x32 float             32 x 1 unsigned int  32x
//
// One word per bit-row; for dim 4 only the low 4 bits of the byte are
// used (the paper's optional nibble packing that shares one byte across
// two rows is implemented separately in pack.hpp as NibbleTile4).
#pragma once

#include "platform/intrinsics.hpp"

#include <cstdint>
#include <stdexcept>

namespace bitgb {

template <int Dim>
struct TileTraits;

template <>
struct TileTraits<4> {
  using word_t = std::uint8_t;
  static constexpr int dim = 4;
};

template <>
struct TileTraits<8> {
  using word_t = std::uint8_t;
  static constexpr int dim = 8;
};

template <>
struct TileTraits<16> {
  using word_t = std::uint16_t;
  static constexpr int dim = 16;
};

template <>
struct TileTraits<32> {
  using word_t = std::uint32_t;
  static constexpr int dim = 32;
};

/// The tile dims the paper explores (B2SR-4 .. B2SR-32), in order.
inline constexpr int kTileDims[] = {4, 8, 16, 32};
inline constexpr int kNumTileDims = 4;

/// Invoke fn.template operator()<Dim>() for the given runtime dim.
/// Returns fn's result; throws std::invalid_argument on an unsupported
/// dim.  This is the single dispatch point from runtime tile size to the
/// templated kernels.
template <typename Fn>
decltype(auto) dispatch_tile_dim(int dim, Fn&& fn) {
  switch (dim) {
    case 4: return fn.template operator()<4>();
    case 8: return fn.template operator()<8>();
    case 16: return fn.template operator()<16>();
    case 32: return fn.template operator()<32>();
    default: throw std::invalid_argument("unsupported tile dim");
  }
}

}  // namespace bitgb
