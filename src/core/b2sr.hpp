// Bit-Block Compressed Sparse Row (B2SR) — the paper's storage format.
//
// Two-level structure (paper §III, Figure 1):
//   * upper level: CSR over dim x dim tiles — `tile_rowptr` (size
//     n_tile_rows + 1) and `tile_colind` (size number of non-empty
//     tiles), exactly BSR's index structure;
//   * lower level: each non-empty tile stored dense as bits, `Dim` words
//     of `Dim` bits each.
//
// Word layout: word r of a tile is bit-row r; bit j (LSB = 0) of that
// word is column j inside the tile.  (The CUDA artifact's
// __brev(__ballot_sync(...)) packing produces the reversed bit order;
// the choice is an internal convention — see DESIGN.md §5 — and the
// warp-sim packers reproduce the paper's exact sequence for validation.)
//
// Tail tiles on the right/bottom edge of a matrix whose size is not a
// multiple of Dim keep their out-of-range bits zero; every algorithm
// relies on that invariant (checked by validate()).
#pragma once

#include "core/tile_traits.hpp"
#include "platform/aligned_alloc.hpp"
#include "sparse/types.hpp"

#include <cstddef>
#include <span>
#include <variant>
#include <vector>

namespace bitgb {

template <int Dim>
struct B2srT {
  using word_t = typename TileTraits<Dim>::word_t;
  /// The tile store starts on a 64-byte boundary, so tile offsets are
  /// cache-line-deterministic and line splits in the SIMD engine's
  /// streaming loads are minimized.  The engine still uses unaligned
  /// loads throughout: an individual tile's offset (t * Dim words) is
  /// not itself line-aligned in general.
  using bits_vector = std::vector<word_t, AlignedAllocator<word_t, kTileStoreAlign>>;
  static constexpr int dim = Dim;

  vidx_t nrows = 0;  ///< rows of the original matrix
  vidx_t ncols = 0;  ///< columns of the original matrix
  std::vector<vidx_t> tile_rowptr;  ///< size n_tile_rows()+1 (TileRowPtr)
  std::vector<vidx_t> tile_colind;  ///< size nnz_tiles() (TileColInd)
  bits_vector bits;                 ///< nnz_tiles()*Dim words (BitTiles)

  /// nTileRow = (nRows + tileDim - 1) / tileDim (paper §III-A).
  [[nodiscard]] vidx_t n_tile_rows() const {
    return (nrows + Dim - 1) / Dim;
  }
  [[nodiscard]] vidx_t n_tile_cols() const {
    return (ncols + Dim - 1) / Dim;
  }
  [[nodiscard]] vidx_t nnz_tiles() const {
    return static_cast<vidx_t>(tile_colind.size());
  }

  /// The Dim words of tile t (bit-rows, top to bottom).
  [[nodiscard]] std::span<const word_t> tile(vidx_t t) const {
    return {bits.data() + static_cast<std::size_t>(t) * Dim,
            static_cast<std::size_t>(Dim)};
  }
  [[nodiscard]] std::span<word_t> tile_mut(vidx_t t) {
    return {bits.data() + static_cast<std::size_t>(t) * Dim,
            static_cast<std::size_t>(Dim)};
  }

  /// Number of nonzero elements (popcount over all tiles).
  [[nodiscard]] eidx_t nnz() const {
    eidx_t n = 0;
    for (const word_t w : bits) n += popcount(w);
    return n;
  }

  /// Bytes the format occupies: the two index arrays plus the packed
  /// tiles — the numerator of the paper's compression ratio (§VI-B).
  [[nodiscard]] std::size_t storage_bytes() const {
    return tile_rowptr.size() * sizeof(vidx_t) +
           tile_colind.size() * sizeof(vidx_t) + bits.size() * sizeof(word_t);
  }

  /// Structural invariants: monotone rowptr, sorted in-range tile
  /// columns, word count = Dim * tiles, no bits outside the matrix, and
  /// no stored all-zero tile (non-empty tiles only, per the format's
  /// definition).
  [[nodiscard]] bool validate() const;
};

using B2sr4 = B2srT<4>;
using B2sr8 = B2srT<8>;
using B2sr16 = B2srT<16>;
using B2sr32 = B2srT<32>;

/// Type-erased B2SR for runtime tile-size selection (the sampling
/// advisor picks a dim at run time; the GraphBLAS layer stores this).
class B2srAny {
 public:
  B2srAny() = default;
  explicit B2srAny(B2sr4 m) : v_(std::move(m)) {}
  explicit B2srAny(B2sr8 m) : v_(std::move(m)) {}
  explicit B2srAny(B2sr16 m) : v_(std::move(m)) {}
  explicit B2srAny(B2sr32 m) : v_(std::move(m)) {}

  [[nodiscard]] int tile_dim() const {
    return std::visit([](const auto& m) { return m.dim; }, v_);
  }
  [[nodiscard]] vidx_t nrows() const {
    return std::visit([](const auto& m) { return m.nrows; }, v_);
  }
  [[nodiscard]] vidx_t ncols() const {
    return std::visit([](const auto& m) { return m.ncols; }, v_);
  }
  [[nodiscard]] eidx_t nnz() const {
    return std::visit([](const auto& m) { return m.nnz(); }, v_);
  }
  [[nodiscard]] vidx_t nnz_tiles() const {
    return std::visit([](const auto& m) { return m.nnz_tiles(); }, v_);
  }
  [[nodiscard]] std::size_t storage_bytes() const {
    return std::visit([](const auto& m) { return m.storage_bytes(); }, v_);
  }

  template <int Dim>
  [[nodiscard]] const B2srT<Dim>& as() const {
    return std::get<B2srT<Dim>>(v_);
  }

  /// visit(fn): fn(const B2srT<Dim>&) for the held alternative.
  template <typename Fn>
  decltype(auto) visit(Fn&& fn) const {
    return std::visit(std::forward<Fn>(fn), v_);
  }

 private:
  std::variant<B2sr4, B2sr8, B2sr16, B2sr32> v_;
};

}  // namespace bitgb
