// Binarized dense vector, packed at tile granularity.
//
// For the bin-vector BMV schemes the multiplier vector is "binarized
// into the column-major order with [tileDim] consecutive elements
// compacted" into one word (paper §IV, Listing 1 discussion), so that a
// vector chunk can be fetched with the same indexing system as the tiles
// and AND-ed against a bit-row directly.  Word k holds elements
// [k*Dim, (k+1)*Dim); bit j of word k is element k*Dim + j, matching the
// B2SR bit-row convention.
#pragma once

#include "core/tile_traits.hpp"
#include "sparse/types.hpp"

#include <vector>

namespace bitgb {

template <int Dim>
struct PackedVecT {
  using word_t = typename TileTraits<Dim>::word_t;
  static constexpr int dim = Dim;

  vidx_t n = 0;                ///< logical element count
  std::vector<word_t> words;   ///< ceil(n / Dim) words; tail bits zero

  PackedVecT() = default;
  explicit PackedVecT(vidx_t size) { resize(size); }

  void resize(vidx_t size) {
    n = size;
    words.assign(static_cast<std::size_t>((size + Dim - 1) / Dim), word_t{0});
  }

  void clear_bits() { words.assign(words.size(), word_t{0}); }

  [[nodiscard]] bool get(vidx_t i) const {
    return get_bit(words[static_cast<std::size_t>(i / Dim)],
                   static_cast<int>(i % Dim)) != 0;
  }
  void set(vidx_t i) {
    auto& w = words[static_cast<std::size_t>(i / Dim)];
    w = set_bit(w, static_cast<int>(i % Dim));
  }
  void reset(vidx_t i) {
    auto& w = words[static_cast<std::size_t>(i / Dim)];
    w = static_cast<word_t>(w & ~(word_t{1} << (i % Dim)));
  }

  /// Count of set bits (frontier size).
  [[nodiscard]] eidx_t count() const {
    eidx_t c = 0;
    for (const word_t w : words) c += popcount(w);
    return c;
  }
  [[nodiscard]] bool any() const {
    for (const word_t w : words) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Binarize a full-precision vector: bit i set iff v[i] != 0 — the
  /// vector-binarization step the paper performs before a bin-vector BMV.
  static PackedVecT from_values(const std::vector<value_t>& v) {
    PackedVecT out(static_cast<vidx_t>(v.size()));
    for (vidx_t i = 0; i < out.n; ++i) {
      if (v[static_cast<std::size_t>(i)] != 0.0f) out.set(i);
    }
    return out;
  }

  static PackedVecT from_bools(const std::vector<bool>& v) {
    PackedVecT out(static_cast<vidx_t>(v.size()));
    for (vidx_t i = 0; i < out.n; ++i) {
      if (v[static_cast<std::size_t>(i)]) out.set(i);
    }
    return out;
  }

  [[nodiscard]] std::vector<bool> to_bools() const {
    std::vector<bool> out(static_cast<std::size_t>(n));
    for (vidx_t i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = get(i);
    return out;
  }
};

using PackedVec4 = PackedVecT<4>;
using PackedVec8 = PackedVecT<8>;
using PackedVec16 = PackedVecT<16>;
using PackedVec32 = PackedVecT<32>;

}  // namespace bitgb
