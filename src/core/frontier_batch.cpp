#include "core/frontier_batch.hpp"

#include "platform/parallel.hpp"
#include "platform/simd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

namespace bitgb {

void FrontierBatch::assign_sources(vidx_t nverts,
                                   const std::vector<vidx_t>& sources) {
  if (sources.empty() ||
      sources.size() > static_cast<std::size_t>(kMaxBatch)) {
    throw std::invalid_argument(
        "FrontierBatch::from_sources: batch size must be in [1, 64], got " +
        std::to_string(sources.size()));
  }
  for (const vidx_t s : sources) {
    if (s < 0 || s >= nverts) {
      throw std::invalid_argument("FrontierBatch::from_sources: source " +
                                  std::to_string(s) + " outside [0, " +
                                  std::to_string(nverts) + ")");
    }
  }
  resize(nverts, static_cast<int>(sources.size()));  // reuses capacity
  for (std::size_t b = 0; b < sources.size(); ++b) {
    set(sources[b], static_cast<int>(b));
  }
}

FrontierBatch FrontierBatch::from_sources(vidx_t nverts,
                                          const std::vector<vidx_t>& sources) {
  FrontierBatch out;
  out.assign_sources(nverts, sources);
  return out;
}

bool FrontierBatch::validate() const {
  if (batch < 1 || batch > kMaxBatch) return false;
  if (rows.size() != static_cast<std::size_t>(n)) return false;
  const word_t lanes = lane_mask();
  for (const word_t w : rows) {
    if ((w & ~lanes) != 0) return false;  // lane-tail bits must stay zero
  }
  return true;
}

namespace {

// Shared tile sweep: accumulate OR_{j in adj(i)} f.rows[j] for the Dim
// rows of one tile-row into acc.  Set bits of a tail tile-column never
// exceed ncols (the B2SR zero-tail invariant), so f.rows[base + j] is
// always in range.  The SIMD path streams the tile words through the
// engine's bit-to-lane OR accumulation (platform/simd.hpp).
template <int Dim>
inline void accumulate_tile_row(const B2srT<Dim>& a, const FrontierBatch& f,
                                vidx_t tr, bool use_simd,
                                FrontierBatch::word_t* acc) {
  using word_t = typename TileTraits<Dim>::word_t;
  const vidx_t* rowptr = a.tile_rowptr.data();
  const vidx_t lo = rowptr[tr];
  const vidx_t hi = rowptr[tr + 1];
  if (use_simd) {
    simd::frontier_row_accum<Dim>(a.bits.data(), a.tile_colind.data(), lo, hi,
                                  f.rows.data(), f.rows.size(), acc);
    return;
  }
  const vidx_t* colind = a.tile_colind.data();
  const word_t* tiles = a.bits.data();
  for (vidx_t t = lo; t < hi; ++t) {
    const auto base = static_cast<std::size_t>(colind[t]) *
                      static_cast<std::size_t>(Dim);
    const word_t* words = tiles + static_cast<std::size_t>(t) * Dim;
    for (int r = 0; r < Dim; ++r) {
      const auto w = words[r];
      if (w == 0) continue;
      for_each_set_bit(w, [&](int j) {
        acc[r] |= f.rows[base + static_cast<std::size_t>(j)];
      });
    }
  }
}

}  // namespace

template <int Dim>
void bmm_frontier(const B2srT<Dim>& a, const FrontierBatch& f,
                  FrontierBatch& next, Exec exec) {
  assert(f.n == a.ncols);
  next.resize(a.nrows, f.batch);
  const bool use_simd =
      resolve_kernel_variant(exec.variant, HotKernel::kFrontierPull, Dim) ==
      KernelVariant::kSimd;
  const FrontierBatch::word_t lanes = f.lane_mask();
  // Value captures only (see parallel.hpp on closure escape).
  const B2srT<Dim>* ap = &a;
  const FrontierBatch* fp = &f;
  FrontierBatch::word_t* next_rows = next.rows.data();
  const vidx_t nrows = a.nrows;
  const vidx_t* rowptr = a.tile_rowptr.data();
  parallel_for(exec.threads, vidx_t{0}, a.n_tile_rows(), [=](vidx_t tr) {
    const auto lo = rowptr[tr];
    const auto hi = rowptr[tr + 1];
    if (lo == hi) return;
    FrontierBatch::word_t acc[Dim] = {};
    accumulate_tile_row<Dim>(*ap, *fp, tr, use_simd, acc);
    const vidx_t r0 = tr * Dim;
    const vidx_t rend = std::min<vidx_t>(nrows, r0 + Dim);
    for (vidx_t r = r0; r < rend; ++r) {
      next_rows[static_cast<std::size_t>(r)] = acc[r - r0] & lanes;
    }
  });
}

template <int Dim>
void bmm_frontier_masked(const B2srT<Dim>& a, const FrontierBatch& f,
                         const FrontierBatch& mask, bool complement,
                         FrontierBatch& next, Exec exec) {
  assert(f.n == a.ncols);
  assert(mask.n == a.nrows);
  assert(mask.batch == f.batch);
  next.resize(a.nrows, f.batch);
  const bool use_simd =
      resolve_kernel_variant(exec.variant, HotKernel::kFrontierPullMasked, Dim) ==
      KernelVariant::kSimd;
  const FrontierBatch::word_t lanes = f.lane_mask();
  const B2srT<Dim>* ap = &a;
  const FrontierBatch* fp = &f;
  const FrontierBatch::word_t* mask_rows = mask.rows.data();
  FrontierBatch::word_t* next_rows = next.rows.data();
  const vidx_t nrows = a.nrows;
  const vidx_t* rowptr = a.tile_rowptr.data();
  parallel_for(exec.threads, vidx_t{0}, a.n_tile_rows(), [=](vidx_t tr) {
    const auto lo = rowptr[tr];
    const auto hi = rowptr[tr + 1];
    if (lo == hi) return;
    FrontierBatch::word_t acc[Dim] = {};
    accumulate_tile_row<Dim>(*ap, *fp, tr, use_simd, acc);
    const vidx_t r0 = tr * Dim;
    const vidx_t rend = std::min<vidx_t>(nrows, r0 + Dim);
    for (vidx_t r = r0; r < rend; ++r) {
      // §V masking lifted to the batch: AND right before the store; the
      // lane mask clamps the tail lanes a complemented mask turns on.
      FrontierBatch::word_t mword = mask_rows[static_cast<std::size_t>(r)];
      if (complement) mword = ~mword;
      next_rows[static_cast<std::size_t>(r)] = acc[r - r0] & mword & lanes;
    }
  });
}

template <int Dim>
void bmm_frontier_push_masked(const B2srT<Dim>& a, const FrontierBatch& f,
                              const std::vector<vidx_t>& active,
                              const FrontierBatch& mask, bool complement,
                              FrontierBatch& next,
                              std::vector<vidx_t>& touched) {
  using word_t = typename TileTraits<Dim>::word_t;
  assert(f.n == a.nrows);
  assert(mask.n == a.ncols);
  assert(next.n == a.ncols && next.batch == f.batch);
  const vidx_t* rowptr = a.tile_rowptr.data();
  const vidx_t* colind = a.tile_colind.data();
  const word_t* tiles = a.bits.data();
  for (const vidx_t tr : active) {
    const vidx_t lo = rowptr[tr];
    const vidx_t hi = rowptr[tr + 1];
    if (lo == hi) continue;
    const vidx_t v0 = tr * Dim;
    const int rows_here = static_cast<int>(
        std::min<vidx_t>(a.nrows - v0, static_cast<vidx_t>(Dim)));
    for (vidx_t t = lo; t < hi; ++t) {
      const word_t* words = tiles + static_cast<std::size_t>(t) * Dim;
      const auto base = static_cast<std::size_t>(colind[t]) *
                        static_cast<std::size_t>(Dim);
      for (int r = 0; r < rows_here; ++r) {
        const FrontierBatch::word_t fw =
            f.rows[static_cast<std::size_t>(v0) + static_cast<std::size_t>(r)];
        if (fw == 0) continue;
        const auto w = words[r];
        if (w == 0) continue;
        for_each_set_bit(w, [&](int j) {
          const std::size_t c = base + static_cast<std::size_t>(j);
          FrontierBatch::word_t mword = mask.rows[c];
          if (complement) mword = ~mword;
          // fw carries no lane-tail bits, so neither does the store.
          const FrontierBatch::word_t nw = fw & mword;
          if (nw == 0) return;
          const FrontierBatch::word_t prev = next.rows[c];
          const FrontierBatch::word_t merged = prev | nw;
          if (merged != prev) {
            if (prev == 0) touched.push_back(static_cast<vidx_t>(c));
            next.rows[c] = merged;
          }
        });
      }
    }
  }
}

#define BITGB_INSTANTIATE_BMM_FRONTIER(Dim)                                \
  template void bmm_frontier<Dim>(const B2srT<Dim>&, const FrontierBatch&, \
                                  FrontierBatch&, Exec);          \
  template void bmm_frontier_masked<Dim>(const B2srT<Dim>&,                \
                                         const FrontierBatch&,             \
                                         const FrontierBatch&, bool,       \
                                         FrontierBatch&, Exec);   \
  template void bmm_frontier_push_masked<Dim>(                             \
      const B2srT<Dim>&, const FrontierBatch&, const std::vector<vidx_t>&, \
      const FrontierBatch&, bool, FrontierBatch&, std::vector<vidx_t>&)

BITGB_INSTANTIATE_BMM_FRONTIER(4);
BITGB_INSTANTIATE_BMM_FRONTIER(8);
BITGB_INSTANTIATE_BMM_FRONTIER(16);
BITGB_INSTANTIATE_BMM_FRONTIER(32);

#undef BITGB_INSTANTIATE_BMM_FRONTIER

}  // namespace bitgb
