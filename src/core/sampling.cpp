#include "core/sampling.hpp"

#include <algorithm>
#include <numeric>
#include <random>
#include <unordered_set>

namespace bitgb {

int SamplingProfile::recommended_dim() const {
  int best = per_dim[0].dim;
  double best_pct = per_dim[0].est_compression_pct;
  for (const auto& e : per_dim) {
    if (e.est_compression_pct < best_pct) {
      best_pct = e.est_compression_pct;
      best = e.dim;
    }
  }
  return best;
}

bool SamplingProfile::worth_converting() const {
  return std::any_of(per_dim.begin(), per_dim.end(), [](const auto& e) {
    return e.est_compression_pct < 100.0;
  });
}

SamplingProfile sample_profile(const Csr& a, vidx_t sample_rows,
                               std::uint64_t seed) {
  SamplingProfile prof;

  // Random index set S (Algorithm 1, line "N random indices").
  std::vector<vidx_t> rows;
  if (sample_rows >= a.nrows) {
    rows.resize(static_cast<std::size_t>(a.nrows));
    std::iota(rows.begin(), rows.end(), vidx_t{0});
  } else {
    std::mt19937_64 rng(seed);
    std::uniform_int_distribution<vidx_t> pick(0, a.nrows - 1);
    std::unordered_set<vidx_t> chosen;
    while (static_cast<vidx_t>(chosen.size()) < sample_rows) {
      chosen.insert(pick(rng));
    }
    rows.assign(chosen.begin(), chosen.end());
    std::sort(rows.begin(), rows.end());
  }
  prof.rows_sampled = static_cast<vidx_t>(rows.size());

  for (int di = 0; di < kNumTileDims; ++di) {
    const int k = kTileDims[di];

    // Algorithm 1's ColCounter, evaluated per *tile-row*: each sampled
    // anchor row selects the k-row window (tile-row) containing it; the
    // window's distinct tile columns are counted exactly.  Averaging
    // per-tile-row counts over the sampled windows gives an unbiased
    // estimate of the non-empty tile count (full sampling reproduces
    // the exact packer's count).
    double sampled_nnz = 0.0;       // nonzeros in sampled windows
    double sampled_tiles = 0.0;     // non-empty tiles in sampled windows
    double windows = 0.0;
    vidx_t last_window = -1;
    std::vector<vidx_t> cols;
    for (const vidx_t r : rows) {
      const vidx_t tr = r / k;
      if (tr == last_window) continue;  // rows sorted: dedup windows
      last_window = tr;
      windows += 1.0;
      cols.clear();
      const vidx_t r_lo = tr * k;
      const vidx_t r_hi = std::min<vidx_t>(a.nrows, r_lo + k);
      for (vidx_t rr = r_lo; rr < r_hi; ++rr) {
        const auto rc = a.row_cols(rr);
        sampled_nnz += static_cast<double>(rc.size());
        for (const vidx_t c : rc) cols.push_back(c / k);
      }
      std::sort(cols.begin(), cols.end());
      cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
      sampled_tiles += static_cast<double>(cols.size());
    }

    const double n_tile_rows = static_cast<double>((a.nrows + k - 1) / k);
    const double window_scale = windows == 0.0 ? 0.0 : n_tile_rows / windows;
    const double est_tiles = sampled_tiles * window_scale;
    const double est_nnz = sampled_nnz * window_scale;

    std::size_t word_bytes = 1;
    switch (k) {
      case 4: word_bytes = 1; break;
      case 8: word_bytes = 1; break;
      case 16: word_bytes = 2; break;
      case 32: word_bytes = 4; break;
      default: break;
    }
    const double est_b2sr_bytes =
        (static_cast<double>((a.nrows + k - 1) / k) + 1.0) * sizeof(vidx_t) +
        est_tiles * sizeof(vidx_t) +
        est_tiles * k * static_cast<double>(word_bytes);

    const double csr_bytes =
        (static_cast<double>(a.nrows) + 1.0 + static_cast<double>(a.nnz())) *
            sizeof(vidx_t) +
        static_cast<double>(a.nnz()) * sizeof(value_t);

    SampleEstimate e;
    e.dim = k;
    e.est_nonempty_tiles = est_tiles;
    e.est_compression_pct =
        csr_bytes <= 0.0 ? 0.0 : 100.0 * est_b2sr_bytes / csr_bytes;
    e.est_occupancy_pct =
        est_tiles <= 0.0
            ? 0.0
            : 100.0 * est_nnz / (est_tiles * static_cast<double>(k) *
                                 static_cast<double>(k));
    prof.per_dim[static_cast<std::size_t>(di)] = e;
  }
  return prof;
}

}  // namespace bitgb
