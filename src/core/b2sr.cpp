#include "core/b2sr.hpp"

#include <algorithm>

namespace bitgb {

template <int Dim>
bool B2srT<Dim>::validate() const {
  if (nrows < 0 || ncols < 0) return false;
  if (tile_rowptr.size() != static_cast<std::size_t>(n_tile_rows()) + 1) {
    return false;
  }
  if (!tile_rowptr.empty() && tile_rowptr.front() != 0) return false;
  if (!tile_rowptr.empty() &&
      tile_rowptr.back() != static_cast<vidx_t>(tile_colind.size())) {
    return false;
  }
  if (bits.size() != tile_colind.size() * static_cast<std::size_t>(Dim)) {
    return false;
  }

  const vidx_t ntc = n_tile_cols();
  for (vidx_t tr = 0; tr < n_tile_rows(); ++tr) {
    const auto lo = tile_rowptr[static_cast<std::size_t>(tr)];
    const auto hi = tile_rowptr[static_cast<std::size_t>(tr) + 1];
    if (lo > hi) return false;
    const vidx_t valid_rows = std::min<vidx_t>(Dim, nrows - tr * Dim);
    for (vidx_t t = lo; t < hi; ++t) {
      const vidx_t tc = tile_colind[static_cast<std::size_t>(t)];
      if (tc < 0 || tc >= ntc) return false;
      if (t > lo && tile_colind[static_cast<std::size_t>(t) - 1] >= tc) {
        return false;
      }
      const auto words = tile(t);
      const vidx_t valid_cols = std::min<vidx_t>(Dim, ncols - tc * Dim);
      const auto col_mask = low_mask<word_t>(static_cast<int>(valid_cols));
      bool any = false;
      for (vidx_t r = 0; r < Dim; ++r) {
        const word_t w = words[static_cast<std::size_t>(r)];
        if (r >= valid_rows && w != 0) return false;  // bits below matrix
        if ((w & static_cast<word_t>(~col_mask)) != 0) {
          return false;  // bits right of matrix
        }
        any = any || (w != 0);
      }
      if (!any) return false;  // stored empty tile
    }
  }
  return true;
}

template struct B2srT<4>;
template struct B2srT<8>;
template struct B2srT<16>;
template struct B2srT<32>;

}  // namespace bitgb
