// CSR <-> B2SR conversion (bit packing).
//
// The pipeline mirrors the paper's (§III-B): first the tile index
// structure is derived from the CSR nonzero coordinates — the
// cusparseXcsr2bsrNnz() substitute — then each tile-row is encoded in
// parallel, packing each non-empty tile's elements into bit-rows.
// The conversion is a one-time cost the paper amortizes over repeated
// graph use; bench_conversion_overhead measures it.
#pragma once

#include "core/b2sr.hpp"
#include "platform/exec.hpp"
#include "platform/simd.hpp"
#include "sparse/csr.hpp"

#include <cstdint>
#include <vector>

namespace bitgb {

/// Number of non-empty dim x dim tiles of `a` — the
/// cusparseXcsr2bsrNnz() substitute.  No tiles are materialized and no
/// bits are packed; the count shares the pack pipeline's run index
/// (one transient O(nnz) array of tile columns) and its tile-row
/// merge, so count_nonempty_tiles and pack_from_csr can never
/// disagree.  The storage statistics (stats.hpp) and Figure 3 trends
/// build on it.
[[nodiscard]] vidx_t count_nonempty_tiles(const Csr& a, int dim,
                                          Exec exec = {});

/// Pack a CSR matrix (pattern; values, if any, are ignored — a nonzero
/// is a 1) into B2SR with the given tile dim.  Fused count+fill over a
/// k-way tile-column merge (CSR's sorted columns make each row's tile
/// sequence pre-sorted); the bit scatter runs through the SIMD engine
/// behind the usual scalar/simd/auto variant dispatch.
template <int Dim>
[[nodiscard]] B2srT<Dim> pack_from_csr(const Csr& a, Exec exec = {});

/// The pre-rewrite packer (per-nonzero sort+unique walk plus
/// binary-search scatter), kept as the differential oracle: the
/// rewritten pipeline must be bit-for-bit identical to this
/// (test_pack_pipeline) and the conversion bench ablates the two.
template <int Dim>
[[nodiscard]] B2srT<Dim> pack_from_csr_reference(const Csr& a);

/// Runtime-dim packing.
[[nodiscard]] B2srAny pack_any(const Csr& a, int dim, Exec exec = {});

/// Unpack back to a binary CSR (sorted columns).  Round-trips exactly:
/// unpack(pack(a)) has the same pattern as a.
template <int Dim>
[[nodiscard]] Csr unpack_to_csr(const B2srT<Dim>& b);

[[nodiscard]] Csr unpack_any(const B2srAny& b);

/// B2SR of A^T: the upper level is transposed CSR->CSC (the paper uses
/// cusparseScsr2csc for this, §III-A merit 1) and each tile is
/// bit-transposed — equivalently, the column-major packing of A's tiles
/// re-read as row-major (paper Figure 2).
template <int Dim>
[[nodiscard]] B2srT<Dim> transpose(const B2srT<Dim>& a, Exec exec = {});

[[nodiscard]] B2srAny transpose_any(const B2srAny& a, Exec exec = {});

/// In-register bit transpose of one Dim x Dim tile (row words in ->
/// row words of the transposed tile out).  Exposed for tests and for
/// the packing ablation.
template <int Dim>
void transpose_tile(const typename TileTraits<Dim>::word_t* in,
                    typename TileTraits<Dim>::word_t* out);

// --- Nibble-packed B2SR-4 (paper §III-B: "we use half of the space in
// an unsigned char to allow 4-bit (nibble) packing").  Two bit-rows
// share one byte: row 2k in the low nibble, row 2k+1 in the high
// nibble, so a 4x4 tile costs 2 bytes instead of 4. ---

struct NibbleB2sr4 {
  vidx_t nrows = 0;
  vidx_t ncols = 0;
  std::vector<vidx_t> tile_rowptr;
  std::vector<vidx_t> tile_colind;
  std::vector<std::uint8_t> bytes;  ///< 2 bytes per tile

  [[nodiscard]] vidx_t n_tile_rows() const { return (nrows + 3) / 4; }
  [[nodiscard]] vidx_t nnz_tiles() const {
    return static_cast<vidx_t>(tile_colind.size());
  }
  [[nodiscard]] std::size_t storage_bytes() const {
    return tile_rowptr.size() * sizeof(vidx_t) +
           tile_colind.size() * sizeof(vidx_t) + bytes.size();
  }
  /// Bit-row r of tile t (low 4 bits valid).
  [[nodiscard]] std::uint8_t row(vidx_t t, int r) const {
    const std::uint8_t b =
        bytes[static_cast<std::size_t>(t) * 2 + static_cast<std::size_t>(r / 2)];
    return static_cast<std::uint8_t>((r % 2 == 0) ? (b & 0x0F) : (b >> 4));
  }
};

[[nodiscard]] NibbleB2sr4 pack_nibble4(const Csr& a);
[[nodiscard]] NibbleB2sr4 to_nibble4(const B2sr4& a);
[[nodiscard]] B2sr4 from_nibble4(const NibbleB2sr4& a);

}  // namespace bitgb
