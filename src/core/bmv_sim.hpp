// Warp-simulated BMV — paper Listing 1, transcribed.
//
// These kernels run the paper's exact CUDA algorithm on the host warp
// model (platform/warp_sim.hpp): one warp per 32x32 tile-row, lane r
// owning bit-row r, the bit-dot computed as popc(r0 & r1) per tile, and
// the per-lane register accumulator stored to C at the end.  They exist
// to validate the algorithm (tests assert bit-identical results against
// the portable kernels in bmv.hpp); the portable kernels are the ones
// benchmarked.
//
// Only the 32x32 variant is transcribed — the listing in the paper is
// for B2SR-32; the other dims differ only in the thread mapping
// (Figure 4), which the portable kernels cover.
#pragma once

#include "core/b2sr.hpp"
#include "core/packed_vector.hpp"

#include <vector>

namespace bitgb::sim {

/// Listing 1: bmv_bin_bin_full for B2SR-32.  C[r] += popc(A_r & B_tile).
void bmv_bin_bin_full_sim(const B2sr32& a, const PackedVec32& x,
                          std::vector<value_t>& y);

/// Boolean variant of the same warp program (bit store via ballot).
void bmv_bin_bin_bin_sim(const B2sr32& a, const PackedVec32& x,
                         PackedVec32& y);

/// Column-major bit packing of a full-precision vector with the paper's
/// exact intrinsic sequence (Figure 2):
///   BVal[i] = __brev(__ballot_sync(0xFFFFFFFF, f[i] > 0))
/// followed by normalization to the library's LSB-first convention.
/// Returns the packed vector plus the raw (MSB-first) ballot words so
/// tests can check the __brev relationship the paper describes.
struct BallotPacked {
  PackedVec32 normalized;                ///< library bit order (LSB first)
  std::vector<std::uint32_t> raw_brev;   ///< the paper's BVal words
};

[[nodiscard]] BallotPacked pack_vector_ballot(const std::vector<value_t>& f);

}  // namespace bitgb::sim
