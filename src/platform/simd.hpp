// SIMD multi-tile kernel engine — the CPU analog of the paper's
// one-warp-per-tile-row mapping (§IV, warp-consolidation model).
//
// On the GPU a warp processes a whole B2SR tile per instruction; on the
// host the same data-level parallelism comes from streaming a tile-row's
// contiguous tile words through vector registers: 8 B2SR-4 tiles or
// 4 B2SR-8 tiles per 256-bit AVX2 load, one B2SR-16 tile per load, a
// quarter B2SR-32 tile per load.  The per-row reductions map onto
//   * compare-with-zero + movemask for the Boolean OR-AND kernels
//     (the whole tile-row output word materializes as a mask register),
//   * byte-lane popcount via the Mula pshufb nibble-LUT approach with
//     per-row accumulation in integer lanes for the counting kernels,
//   * bit-to-lane mask expansion + lane-wise OR for the 64-wide
//     FrontierBatch accumulation.
//
// Backend selection is two-staged, as a GPU build is:
//   * build time: AVX2 and SSE4.2 code paths are compiled whenever the
//     toolchain supports function target attributes (gcc/clang on
//     x86-64) and BITGB_SIMD is ON; no -march flag is required, though
//     -march=native lets the *scalar* paths vectorize too (see
//     BUILDING.md);
//   * run time: the first kernel call CPUID-probes the host
//     (__builtin_cpu_supports) and caches the strongest supported
//     backend; a machine without AVX2/SSE4.2 silently runs the portable
//     SWAR/scalar fallback.
//
// Every helper is integer-exact (OR / popcount-add are associative and
// commutative), so each backend is bit-for-bit identical to the scalar
// kernels — asserted over the oracle corpus by test_simd_parity.
//
// Kernel-variant plumbing: kernels take a trailing Exec
// (platform/exec.hpp) whose variant defaults to kAuto — resolved
// through the measured per-(kernel, dim) preference table below, NOT
// through any process-wide setting.  There is no global variant state:
// benchmarks ablate scalar vs SIMD by passing an explicit Exec, and two
// concurrent queries can pin different sides through their Contexts.
#pragma once

#include "core/tile_traits.hpp"
#include "sparse/types.hpp"

#include <cstdint>

namespace bitgb {

/// Which implementation of a hot kernel to run.  kAuto defers to the
/// per-(kernel, dim) preference table (preferred_variant); the explicit
/// values pin one side.
enum class KernelVariant { kAuto = 0, kScalar, kSimd };

/// The hot kernels that exist in both variants — the rows of the kAuto
/// preference table (preferred_variant below).
enum class HotKernel {
  kBmvBinBinBin,
  kBmvBinBinBinMasked,
  kBmvBinBinFull,
  kBmvBinBinFullMasked,
  kBmmBinBinSum,
  kBmmBinBinSumMasked,
  kFrontierPull,
  kFrontierPullMasked,
  kPackScatter,
  kSpgemmAccum,
};

/// The variant an unpinned process should run for one (kernel, tile
/// dim) cell.  When the scalar paths were compiled under a wide ISA
/// (-march=native on an AVX2+ host) the auto-vectorized scalar loops
/// beat the hand-written engine in a few cells (the committed
/// BENCH_kernels.json records which); this table encodes those
/// measured winners instead of blanket-preferring SIMD.  On a default
/// build (no -march) the engine wins every cell and the table is
/// all-kSimd.  Never returns kAuto.
[[nodiscard]] KernelVariant preferred_variant(HotKernel k, int dim);

/// Resolve a requested variant to kScalar or kSimd.  Explicit values
/// win; kAuto resolves through the per-(kernel, dim) preference table.
/// The overload without kernel context keeps the historical blanket-
/// kSimd default (for callers with no HotKernel row).  Pure functions
/// of their arguments: no process state, no environment.
[[nodiscard]] KernelVariant resolve_kernel_variant(KernelVariant requested);
[[nodiscard]] KernelVariant resolve_kernel_variant(KernelVariant requested,
                                                   HotKernel k, int dim);

[[nodiscard]] const char* kernel_variant_name(KernelVariant v);

/// Parse "scalar" / "simd" / "auto" (as Context::from_env accepts).
/// Returns false on anything else.
[[nodiscard]] bool parse_kernel_variant(const char* s, KernelVariant& out);

namespace simd {

/// Instruction-set backend of the engine, strongest first.
enum class Backend { kAvx2, kSse42, kScalar };

/// Runtime-verified backend: the strongest compiled-in backend the host
/// CPU actually supports (CPUID-checked once, then cached).
[[nodiscard]] Backend active_backend();

[[nodiscard]] const char* backend_name(Backend b);

/// True when active_backend() is a vector backend (not kScalar).
[[nodiscard]] bool vector_backend_available();

// ---------------------------------------------------------------------
// Tile-row inner loops.  All take raw pointers into the B2SR arrays:
// `tiles` is the contiguous tile-word store (tile t occupies
// tiles[t*Dim .. t*Dim+Dim)), `colind` the tile-column index array,
// and [lo, hi) the tile range of one tile-row.  Results are exactly the
// scalar kernels' (integer-exact reductions).
// ---------------------------------------------------------------------

/// Boolean pull BMV inner loop: the output word of one tile-row,
///   out bit r = OR_t ((tiles[t][r] & xwords[colind[t]]) != 0).
template <int Dim>
[[nodiscard]] typename TileTraits<Dim>::word_t bbb_row_or(
    const typename TileTraits<Dim>::word_t* tiles, const vidx_t* colind,
    const typename TileTraits<Dim>::word_t* xwords, vidx_t lo, vidx_t hi);

/// Counting pull BMV inner loop: acc[r] += popc(tiles[t][r] &
/// xwords[colind[t]]) over the tile range.
template <int Dim>
void bbf_row_accum(const typename TileTraits<Dim>::word_t* tiles,
                   const vidx_t* colind,
                   const typename TileTraits<Dim>::word_t* xwords, vidx_t lo,
                   vidx_t hi, std::int32_t* acc);

/// BMM row-popcount accumulation: pop[r] += popc(tiles[t][r]) over a
/// contiguous tile range (B's tile-row in bmm_bin_bin_sum).
template <int Dim>
void rows_pop_accum(const typename TileTraits<Dim>::word_t* tiles, vidx_t lo,
                    vidx_t hi, std::int32_t* pop);

/// Masked BMM tile-pair dot: sum over rows r and set bits c of
/// mwords[r] of popc(awords[r] & bwords[c]) — one aligned (A, B^T, M)
/// tile triple of bmm_bin_bin_sum_masked.
template <int Dim>
[[nodiscard]] std::int64_t masked_pair_dot(
    const typename TileTraits<Dim>::word_t* awords,
    const typename TileTraits<Dim>::word_t* bwords,
    const typename TileTraits<Dim>::word_t* mwords);

/// FrontierBatch pull accumulation over one tile-row:
///   acc[r] |= frows[colind[t]*Dim + j] for every set bit (r, j),
/// where acc holds Dim batch words.  `nfrows` is the frontier row
/// count; tail tile-columns whose block would read past it take the
/// scalar per-bit path (set bits never point past nfrows).
template <int Dim>
void frontier_row_accum(const typename TileTraits<Dim>::word_t* tiles,
                        const vidx_t* colind, vidx_t lo, vidx_t hi,
                        const std::uint64_t* frows, std::size_t nfrows,
                        std::uint64_t* acc);

/// Ingest bit-scatter: consume the run of sorted CSR column indices
/// cols[i..n) that fall inside one tile (base <= c < base + Dim), OR
/// `1 << (c - base)` for each into `w`, and return the index one past
/// the run.  The AVX2 path shifts eight columns per iteration
/// (variable-shift + lane OR-reduce); the scalar body is the per-column
/// loop.  Exact for any sorted input, including duplicates (OR is
/// idempotent).
template <int Dim>
[[nodiscard]] std::size_t pack_scatter_run(const vidx_t* cols, std::size_t i,
                                           std::size_t n, vidx_t base,
                                           typename TileTraits<Dim>::word_t& w);

/// SpGEMM tile-pair accumulate into the SPA slot:
///   cacc[r] |= OR_{t set in awords[r]} bwords[t]  for r in [0, Dim).
/// Dims 4/8 run a branch-light SWAR broadcast (whole tile per machine
/// word, one column of A distributing one B row across the byte
/// lanes); dims 16/32 use the AVX2 bit-to-lane select OR.  Pure OR
/// algebra, so every path is bit-identical to the row-walk.
template <int Dim>
void spgemm_tile_accum(const typename TileTraits<Dim>::word_t* awords,
                       const typename TileTraits<Dim>::word_t* bwords,
                       typename TileTraits<Dim>::word_t* cacc);

}  // namespace simd
}  // namespace bitgb
