// CRC32C (Castagnoli) — the checksum of the snapshot subsystem.
//
// The Castagnoli polynomial is chosen over CRC32 (zlib) because x86-64
// ships it in hardware: SSE4.2's crc32 instruction folds 8 bytes per
// cycle-ish, so checksumming a snapshot runs at memory speed and the
// save/load paths never trade integrity for throughput.  Dispatch
// follows the kernel engine's two-stage model (platform/simd.cpp): the
// SSE4.2 body is compiled behind a function target attribute (no -march
// required), CPUID-probed once at runtime, and a host without SSE4.2 —
// or a BITGB_SIMD_DISABLE build — runs the slice-by-8 software path.
// Both paths are bit-identical (asserted by test_snapshot's parity
// fuzz).
//
// API: composable "finished" values, like zlib's crc32() — pass 0 for a
// fresh checksum, or a previous result to extend it over more bytes:
//
//   std::uint32_t c = crc32c(a.data(), a.size());
//   c = crc32c(b.data(), b.size(), c);   // == crc32c over a||b
//
// (Internally the state is bit-inverted per the CRC32C specification;
// callers never see the raw register.)
#pragma once

#include <cstddef>
#include <cstdint>

namespace bitgb {

/// CRC32C of `len` bytes at `data`, continuing from `crc` (0 = fresh).
/// RFC 3720 test vectors: crc32c("123456789", 9) == 0xE3069283.
[[nodiscard]] std::uint32_t crc32c(const void* data, std::size_t len,
                                   std::uint32_t crc = 0);

namespace detail {

/// The portable slice-by-8 software path, callable directly so the
/// parity suite can diff it against the dispatched result on SSE4.2
/// hosts.  Same composable-value semantics as crc32c().
[[nodiscard]] std::uint32_t crc32c_sw(const void* data, std::size_t len,
                                      std::uint32_t crc = 0);

/// True when the dispatched crc32c() runs the SSE4.2 hardware body.
[[nodiscard]] bool crc32c_hw_active();

}  // namespace detail

}  // namespace bitgb
