#include "platform/timer.hpp"

namespace bitgb {

namespace {
// Thread local: algorithms drive kernels from the calling thread, and
// the OpenMP parallelism lives *inside* a kernel invocation, so the
// calling thread's accumulator sees every kernel exactly once.
thread_local double g_kernel_ms = 0.0;
}  // namespace

double kernel_time_ms() { return g_kernel_ms; }

void reset_kernel_time() { g_kernel_ms = 0.0; }

KernelTimerScope::KernelTimerScope() = default;

KernelTimerScope::~KernelTimerScope() { g_kernel_ms += watch_.elapsed_ms(); }

}  // namespace bitgb
