// Exec — the per-call execution policy of the core kernels.
//
// Every hot kernel takes a trailing Exec instead of reading process
// state: which inner-loop variant to run (scalar or SIMD) and how many
// worker threads the parallel regions may use.  Two kernels running
// concurrently on different threads can therefore use different
// variants and thread budgets — the enabling property of the
// Context/Descriptor execution API (graph queries carry their policy
// with them instead of mutating globals).
//
// The default Exec{} is kAuto (per-(kernel, dim) preference table) at
// full hardware width.  An Exec converts implicitly from a bare
// KernelVariant, so pinning one side reads as before:
//   bmv_bin_bin_bin(a, x, y, KernelVariant::kScalar);
#pragma once

#include "platform/cancel.hpp"
#include "platform/simd.hpp"

namespace bitgb {

struct Exec {
  KernelVariant variant = KernelVariant::kAuto;
  /// Worker-thread budget for parallel regions: 0 = all hardware
  /// threads, 1 = serial (never touches the pool), n = n workers
  /// (honored up to parallel.hpp's kMaxWorkerWidth ceiling).
  int threads = 0;
  /// Cooperative-cancellation token forwarded from Context (null =
  /// never cancelled).  Kernels MAY poll it between coarse chunks of a
  /// long sweep; none is required to — the algorithm-level poll at
  /// level/iteration boundaries is the latency guarantee, and a kernel
  /// that ignores the token simply bounds cancellation latency at one
  /// sweep.
  const CancelToken* cancel = nullptr;

  constexpr Exec() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): a bare KernelVariant
  // is an Exec at default width by design (see header comment).
  constexpr Exec(KernelVariant v, int nthreads = 0,
                 const CancelToken* cancel_tok = nullptr)
      : variant(v), threads(nthreads), cancel(cancel_tok) {}

  /// The serial policy (1 thread, auto variant).
  [[nodiscard]] static constexpr Exec serial() {
    return Exec{KernelVariant::kAuto, 1};
  }
};

}  // namespace bitgb
