// Lane-accurate warp execution model (GPU substitute).
//
// The paper's BMV/BMM kernels (Listings 1 and 2) are written against a
// 32-lane CUDA warp and its collective intrinsics.  No GPU is available
// in this environment, so this module provides a deterministic host-side
// warp model with the same primitives:
//
//   * Warp::ballot  — CUDA __ballot_sync(0xFFFFFFFF, pred): bit N of the
//     result is lane N's predicate (LSB = lane 0).
//   * Warp::gather  — CUDA __shfl_sync value exchange: gather[src] is
//     what __shfl_sync(full_mask, value, src) returns to every lane.
//   * atomic_add/atomic_min/atomic_or — device atomics used by the
//     4/8/16-tile variants of bmv_bin_full_full (paper §V).
//
// Kernels written against this model (src/core/bmv_sim.cpp,
// src/core/bmm_sim.cpp) transcribe the paper's listings nearly verbatim;
// unit tests prove them equivalent to the portable OpenMP kernels, which
// is how the reproduction validates the paper's algorithms without CUDA
// hardware.
//
// The model assumes full-warp participation (mask 0xFFFFFFFF), which is
// what all of the paper's kernels use: collectives are expressed as a
// gather over all 32 lanes evaluated in lane order, which matches CUDA's
// semantics for convergent full-mask collectives exactly.
#pragma once

#include <array>
#include <cstdint>

namespace bitgb::sim {

inline constexpr int kWarpSize = 32;
inline constexpr std::uint32_t kFullMask = 0xFFFFFFFFu;

/// Deterministic 32-lane warp executor.
///
/// Kernels use the gather-style API:
///
///   warp.for_each_lane([&](int lane){ ... });        // lane-local work
///   auto word = warp.ballot([&](int lane){ return pred(lane); });
///   auto vals = warp.gather([&](int lane){ return value(lane); });
///   // vals[src] == __shfl_sync(kFullMask, value, src)
class Warp {
 public:
  /// Run independent (lane-local) work for every lane of the warp.
  template <typename Fn>
  void for_each_lane(Fn&& fn) {
    for (int lane = 0; lane < kWarpSize; ++lane) fn(lane);
  }

  /// __ballot_sync over the full warp: bit N of the result is the
  /// predicate produced by lane N.
  template <typename PredFn>
  [[nodiscard]] std::uint32_t ballot(PredFn&& pred) {
    std::uint32_t word = 0;
    for (int lane = 0; lane < kWarpSize; ++lane) {
      if (pred(lane)) word |= (1u << static_cast<unsigned>(lane));
    }
    return word;
  }

  /// Gather each lane's register into an array; array[src] is what
  /// __shfl_sync(kFullMask, value, src) would return to every lane.
  template <typename ValFn>
  [[nodiscard]] std::array<std::uint32_t, kWarpSize> gather(ValFn&& val) {
    std::array<std::uint32_t, kWarpSize> out{};
    for (int lane = 0; lane < kWarpSize; ++lane) {
      out[static_cast<std::size_t>(lane)] = val(lane);
    }
    return out;
  }
};

/// Device-atomic analogs.  The portable kernels use OpenMP atomics; the
/// warp-sim kernels run single threaded but keep the calls so the code
/// reads like the CUDA original.
inline void atomic_add(float& target, float v) { target += v; }
inline void atomic_add(std::int32_t& target, std::int32_t v) { target += v; }
inline void atomic_min(float& target, float v) {
  if (v < target) target = v;
}
inline void atomic_or(std::uint32_t& target, std::uint32_t v) { target |= v; }

}  // namespace bitgb::sim
