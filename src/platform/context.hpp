// Context — the execution descriptor every operation threads through.
//
// The public API is GraphBLAST-shaped (PAPERS.md: Yang et al.): the
// caller builds a descriptor carrying every execution knob and passes
// it to each operation, instead of free functions reading process-wide
// state.  A Context is cheap to copy, immutable-by-convention while a
// query runs, and *per query*: two queries running concurrently in one
// process can use different backends, kernel variants, thread budgets,
// timer sinks and RNG seeds over the same shared Graph — the property
// the ROADMAP's concurrent-serving north star needs and which
// process-global knobs made structurally impossible.
//
// No hot path reads globals or environment variables; the environment
// is one-time construction sugar (Context::from_env), which is also the
// single place BITGB_KERNEL_VARIANT / BITGB_THREADS are parsed and
// validated.
#pragma once

#include "platform/cancel.hpp"
#include "platform/exec.hpp"
#include "platform/fault_injector.hpp"
#include "platform/simd.hpp"
#include "platform/timer.hpp"

#include <cstdint>

namespace bitgb {

/// Which execution backend serves an operation.
enum class Backend {
  kReference,  ///< float-CSR framework baseline (GraphBLAST substitute)
  kBit,        ///< B2SR bit kernels (this paper)
};

[[nodiscard]] constexpr const char* backend_name(Backend b) {
  return b == Backend::kReference ? "reference-csr" : "bit-b2sr";
}

struct Context {
  /// Backend the algorithms route through.
  Backend backend = Backend::kBit;
  /// Kernel inner-loop variant (kAuto = per-(kernel, dim) table).
  KernelVariant variant = KernelVariant::kAuto;
  /// Worker-thread budget for this query's parallel regions:
  /// 0 = all hardware threads, 1 = serial (a concurrently-served query
  /// typically runs serial and lets the batch dimension scale instead).
  /// Explicit budgets are honored up to parallel.hpp's kMaxWorkerWidth
  /// ceiling (oversubscription is allowed but bounded).
  int threads = 0;
  /// Optional kernel-time sink (platform/timer.hpp); null = no timing.
  KernelTimeSink* timer = nullptr;
  /// Seed for the randomized algorithms (MIS / coloring priorities).
  std::uint64_t seed = 0x5eed;
  /// Optional cooperative-cancellation token (platform/cancel.hpp):
  /// algorithms poll it at level/iteration boundaries and return early
  /// with a valid prefix when it fires.  Null = never cancelled.
  const CancelToken* cancel = nullptr;
  /// Optional deterministic fault injector (platform/fault_injector.hpp)
  /// for failure-containment tests; null — the production default —
  /// disables every hook.
  FaultInjector* fault = nullptr;

  /// The core-kernel execution policy slice of this descriptor.
  [[nodiscard]] constexpr Exec exec() const {
    return Exec{variant, threads, cancel};
  }

  /// The cancellation poll (one branch when no token is armed).
  [[nodiscard]] bool cancelled() const {
    return cancel != nullptr && cancel->cancelled();
  }

  /// Fault-injection hooks — no-ops (one branch) without an injector.
  /// Algorithms place check_alloc() where their result/scratch buffers
  /// are sized and check_kernel() at each level/iteration boundary.
  void check_alloc() const {
    if (fault != nullptr) fault->on_alloc();
  }
  void check_kernel() const {
    if (fault != nullptr) fault->on_kernel();
  }

  /// Fluent copies — `ctx.with_backend(Backend::kReference)` reads as
  /// the descriptor algebra of GraphBLAST descriptors.
  [[nodiscard]] constexpr Context with_backend(Backend b) const {
    Context c = *this;
    c.backend = b;
    return c;
  }
  [[nodiscard]] constexpr Context with_variant(KernelVariant v) const {
    Context c = *this;
    c.variant = v;
    return c;
  }
  [[nodiscard]] constexpr Context with_threads(int n) const {
    Context c = *this;
    c.threads = n;
    return c;
  }
  [[nodiscard]] constexpr Context with_timer(KernelTimeSink* sink) const {
    Context c = *this;
    c.timer = sink;
    return c;
  }
  [[nodiscard]] constexpr Context with_seed(std::uint64_t s) const {
    Context c = *this;
    c.seed = s;
    return c;
  }
  [[nodiscard]] constexpr Context with_cancel(const CancelToken* tok) const {
    Context c = *this;
    c.cancel = tok;
    return c;
  }
  [[nodiscard]] constexpr Context with_fault(FaultInjector* inj) const {
    Context c = *this;
    c.fault = inj;
    return c;
  }

  /// One-time environment sugar — THE single place the library touches
  /// getenv.  Reads and validates:
  ///   BITGB_KERNEL_VARIANT   "scalar" | "simd" | "auto"
  ///   BITGB_THREADS          integer >= 1 (no trailing junk)
  ///   BITGB_BACKEND          "bit" | "reference"
  /// and throws std::invalid_argument naming the variable and the
  /// offending value on anything else — garbage fails loudly instead of
  /// silently falling back.  Unset variables keep the defaults above.
  [[nodiscard]] static Context from_env();
};

}  // namespace bitgb
