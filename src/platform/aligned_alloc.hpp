// Cache-line-aligned allocation for the B2SR tile store.
//
// The SIMD kernel engine (platform/simd.hpp) streams a tile-row's tiles
// through vector registers with 16/32-byte loads.  Aligning the `bits`
// array to 64 bytes makes every tile's cache-line phase deterministic
// (offset t*Dim words from a line boundary), which minimizes — not
// eliminates — line-straddling loads; the engine therefore always
// issues unaligned (loadu) vector loads.  The allocator is a drop-in
// std::vector allocator: value-equality with any other instance of
// itself, so vectors move/swap freely.
#pragma once

#include <cstddef>
#include <new>

namespace bitgb {

template <typename T, std::size_t Align>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two no weaker than alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Align}));
  }
  void deallocate(T* p, std::size_t) noexcept {
    ::operator delete(p, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&,
                         const AlignedAllocator&) noexcept {
    return true;
  }
};

/// B2SR tile words live on 64-byte boundaries (one x86 cache line).
inline constexpr std::size_t kTileStoreAlign = 64;

}  // namespace bitgb
