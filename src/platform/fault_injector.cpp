#include "platform/fault_injector.hpp"

#include <thread>

namespace bitgb {

namespace {

/// splitmix64 — the stateless mixer: full-avalanche, so consecutive
/// counter values produce independent-looking draws from one seed.
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool FaultInjector::bernoulli(double rate, std::uint64_t counter) {
  if (rate <= 0.0) return false;
  // 53 mantissa bits of the mixed counter → a uniform draw in [0, 1).
  const double u = static_cast<double>(splitmix64(plan_.seed ^ counter) >> 11) *
                   0x1.0p-53;
  return u < rate;
}

void FaultInjector::on_kernel() {
  const std::uint64_t n =
      kernels_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (plan_.kernel_delay.count() > 0) {
    std::this_thread::sleep_for(plan_.kernel_delay);
  }
  if ((plan_.kernel_fault_after != 0 && n == plan_.kernel_fault_after) ||
      bernoulli(plan_.kernel_fault_rate, n ^ 0xfee1deadULL)) {
    thrown_.fetch_add(1, std::memory_order_relaxed);
    throw FaultInjectedError(
        "injected kernel fault (FaultPlan kernel_fault_after/rate)");
  }
}

FaultInjector::IoWriteFault FaultInjector::on_io_write(std::size_t len) {
  const std::uint64_t n =
      io_writes_.fetch_add(1, std::memory_order_relaxed) + 1;
  IoWriteFault f;
  // One-shot triggers first (deterministic scheduling beats the storm
  // rate when both would fire); the crash simulation outranks the clean
  // error so a test arming both sees the torn-temp-file path.
  if (plan_.io_short_write_after != 0 && n == plan_.io_short_write_after) {
    f.kind = IoWriteFault::Kind::kShortWrite;
  } else if ((plan_.io_error_after != 0 && n == plan_.io_error_after) ||
             bernoulli(plan_.io_error_rate, n ^ 0x10fa11ULL)) {
    f.kind = IoWriteFault::Kind::kError;
  } else if (plan_.io_bit_flip_after != 0 && n == plan_.io_bit_flip_after &&
             len > 0) {
    f.kind = IoWriteFault::Kind::kBitFlip;
    f.bit = static_cast<std::size_t>(splitmix64(plan_.seed ^ n ^
                                                0xb17f11bULL) %
                                     (static_cast<std::uint64_t>(len) * 8));
  }
  if (f.kind != IoWriteFault::Kind::kNone) {
    thrown_.fetch_add(1, std::memory_order_relaxed);
  }
  return f;
}

void FaultInjector::on_wave() {
  waves_.fetch_add(1, std::memory_order_relaxed);
  if (plan_.wave_delay.count() > 0) {
    std::this_thread::sleep_for(plan_.wave_delay);
  }
}

}  // namespace bitgb
