// Portable bit-manipulation intrinsics.
//
// The paper's kernels lean on four CUDA integer intrinsics: __popc,
// __brev, __ballot_sync and __shfl_sync (paper §IV).  The first two are
// pure word-local operations and map 1:1 onto host instructions; this
// header provides them for every word width B2SR uses (8/16/32/64 bit).
// The warp-collective ones (__ballot_sync / __shfl_sync) need a lane
// model and live in warp_sim.hpp.
#pragma once

#include <bit>
#include <cstdint>
#include <type_traits>

namespace bitgb {

// Unsigned-integer concept for the packing word of a bit-tile.
template <typename W>
concept PackWord = std::is_unsigned_v<W> && !std::is_same_v<W, bool>;

/// Population count (CUDA __popc / __popcll analog).
template <PackWord W>
[[nodiscard]] constexpr int popcount(W w) noexcept {
  return std::popcount(w);
}

/// Bit reversal over the full word (CUDA __brev analog).
template <PackWord W>
[[nodiscard]] constexpr W brev(W w) noexcept {
  W r = 0;
  for (int i = 0; i < static_cast<int>(sizeof(W) * 8); ++i) {
    r = static_cast<W>(r << 1) | ((w >> i) & W{1});
  }
  return r;
}

/// Bit reversal restricted to the low `nbits` bits (for 4-bit nibble tiles
/// and for sub-word tile dims where only the low `tileDim` bits are used).
template <PackWord W>
[[nodiscard]] constexpr W brev_low(W w, int nbits) noexcept {
  W r = 0;
  for (int i = 0; i < nbits; ++i) {
    r = static_cast<W>(r << 1) | ((w >> i) & W{1});
  }
  return r;
}

/// Count of leading zeros (CUDA __clz analog).
template <PackWord W>
[[nodiscard]] constexpr int clz(W w) noexcept {
  return std::countl_zero(w);
}

/// Count of trailing zeros; returns bit width for w == 0.
template <PackWord W>
[[nodiscard]] constexpr int ctz(W w) noexcept {
  return std::countr_zero(w);
}

/// Extract bit `i` (LSB = bit 0) as 0/1.
template <PackWord W>
[[nodiscard]] constexpr unsigned get_bit(W w, int i) noexcept {
  return static_cast<unsigned>((w >> i) & W{1});
}

/// Return `w` with bit `i` set.
template <PackWord W>
[[nodiscard]] constexpr W set_bit(W w, int i) noexcept {
  return static_cast<W>(w | (W{1} << i));
}

/// Mask with the low `n` bits set (n may equal the word width).
template <PackWord W>
[[nodiscard]] constexpr W low_mask(int n) noexcept {
  const int width = static_cast<int>(sizeof(W) * 8);
  if (n >= width) return static_cast<W>(~W{0});
  return static_cast<W>((W{1} << n) - W{1});
}

/// Iterate the positions of set bits in `w`, lowest first, invoking
/// `fn(int bit_index)` for each.  This is the scalar backbone of
/// bmv_bin_full_full: visiting the columns a bit-row is adjacent to.
template <PackWord W, typename Fn>
constexpr void for_each_set_bit(W w, Fn&& fn) {
  while (w != 0) {
    const int b = ctz(w);
    fn(b);
    w = static_cast<W>(w & (w - W{1}));  // clear lowest set bit
  }
}

}  // namespace bitgb
