// FaultInjector — deterministic, seeded fault injection for the
// execution paths the serving layer must contain.
//
// Production failure modes (allocator exhaustion, a throwing kernel, a
// wave that takes far longer than its deadline budgeted) are impossible
// to schedule reliably from a test, so the injector makes them
// *schedulable*: algorithms call `on_alloc()` where they size their big
// buffers and `on_kernel()` at every level/iteration boundary (the same
// boundaries the CancelToken is polled at), the serving batcher calls
// `on_wave()` as each execution wave starts, and the injector decides —
// from nothing but its configuration, its seed, and its own call
// counters — whether that call throws std::bad_alloc, throws
// FaultInjectedError, or sleeps.  Every decision is a pure function of
// (seed, counter value), so a single-worker test replays exactly, and a
// multi-worker storm is reproducible in distribution.
//
// The injector is threaded through Context (ctx.fault); a null pointer
// — the production default — costs one branch per hook and is the
// reason the hooks are inline.  All counters are atomics: one injector
// may be shared by every worker of a Server.
//
// Knobs (all off by default; see FaultPlan):
//   bad_alloc_after / kernel_fault_after — one-shot: the Nth call to
//     the corresponding hook throws, later calls pass.  Use for "the
//     first wave fails, the second must be clean" containment tests.
//   alloc_fault_rate / kernel_fault_rate — seeded Bernoulli per call
//     (splitmix64 of seed ^ counter): sustained storms for chaos
//     suites and for tripping circuit breakers.
//   wave_delay / kernel_delay — deterministic sleeps per wave start /
//     per kernel boundary: make deadlines expire mid-flight on
//     schedule, so cancellation paths are testable without timing
//     luck.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>

namespace bitgb {

/// The exception an armed kernel fault throws — distinct from
/// std::bad_alloc so tests can tell the two containment paths apart.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const char* what_arg)
      : std::runtime_error(what_arg) {}
};

/// The injector's immutable configuration (0 / zero-duration = off).
struct FaultPlan {
  std::uint64_t seed = 0x5eedfau;  ///< drives the rate-based decisions

  /// One-shot triggers: the Nth on_alloc()/on_kernel() call throws
  /// (1 = the very first), then the trigger is spent.
  std::uint64_t bad_alloc_after = 0;
  std::uint64_t kernel_fault_after = 0;

  /// Sustained seeded Bernoulli rates in [0, 1): each hook call throws
  /// with this probability, decided by splitmix64(seed ^ counter).
  double alloc_fault_rate = 0.0;
  double kernel_fault_rate = 0.0;

  /// Deterministic induced latency: every wave start / kernel boundary
  /// sleeps this long.  The lever that makes deadlines fire mid-wave.
  std::chrono::microseconds wave_delay{0};
  std::chrono::microseconds kernel_delay{0};

  /// I/O faults, consulted by the snapshot writer's on_io_write() hook
  /// before every physical write (sparse/snapshot.hpp):
  ///   io_error_after — one-shot: the Nth write fails cleanly (the
  ///     ENOSPC analog; the writer unlinks its temp file and throws a
  ///     typed error — the atomic-rename contract holds, the previous
  ///     snapshot survives).
  ///   io_short_write_after — one-shot: the Nth write is torn halfway
  ///     and the writer "crashes" (throws WITHOUT cleanup), leaving a
  ///     truncated temp file on disk — the mid-write-crash debris
  ///     recovery must ignore.
  ///   io_bit_flip_after — one-shot: one seeded bit of the Nth write's
  ///     payload flips silently and the write SUCCEEDS — durable
  ///     on-disk corruption the load-side CRCs must catch.
  ///   io_error_rate — sustained seeded Bernoulli write failures (the
  ///     flaky-disk storm knob).
  std::uint64_t io_error_after = 0;
  std::uint64_t io_short_write_after = 0;
  std::uint64_t io_bit_flip_after = 0;
  double io_error_rate = 0.0;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan = {}) : plan_(plan) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Hook at an algorithm's buffer-sizing prologue.  Throws
  /// std::bad_alloc when armed for this call.
  void on_alloc() {
    const std::uint64_t n = allocs_.fetch_add(1, std::memory_order_relaxed) + 1;
    if ((plan_.bad_alloc_after != 0 && n == plan_.bad_alloc_after) ||
        bernoulli(plan_.alloc_fault_rate, n ^ 0xa110cULL)) {
      thrown_.fetch_add(1, std::memory_order_relaxed);
      throw std::bad_alloc();
    }
  }

  /// Hook at a level/iteration boundary.  Sleeps `kernel_delay`, then
  /// throws FaultInjectedError when armed for this call.
  void on_kernel();

  /// Hook at a serving wave start.  Sleeps `wave_delay`.
  void on_wave();

  /// What the snapshot writer should do with one physical write of
  /// `len` bytes.  The injector only DECIDES; the writer enacts —
  /// kError / kShortWrite make the writer throw (with / without temp
  /// cleanup), kBitFlip makes it flip bit `bit` of its buffer and write
  /// the corrupted bytes successfully.
  struct IoWriteFault {
    enum class Kind : std::uint8_t { kNone, kError, kShortWrite, kBitFlip };
    Kind kind = Kind::kNone;
    std::size_t bit = 0;  ///< kBitFlip only: bit index within the buffer
  };

  /// Hook before one physical snapshot write.  Pure decision function
  /// of (plan, seed, write counter) — never throws, never sleeps.
  [[nodiscard]] IoWriteFault on_io_write(std::size_t len);

  /// Observability for tests: how many times each hook ran.
  [[nodiscard]] std::uint64_t alloc_checks() const {
    return allocs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t kernel_checks() const {
    return kernels_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t waves() const {
    return waves_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t io_writes() const {
    return io_writes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t faults_thrown() const {
    return thrown_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const FaultPlan& plan() const { return plan_; }

 private:
  [[nodiscard]] bool bernoulli(double rate, std::uint64_t counter);

  FaultPlan plan_;
  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> kernels_{0};
  std::atomic<std::uint64_t> waves_{0};
  std::atomic<std::uint64_t> io_writes_{0};
  std::atomic<std::uint64_t> thrown_{0};
};

}  // namespace bitgb
